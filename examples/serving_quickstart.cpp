// Serving quickstart: drive a running fwdecayd over loopback — the
// README "Serving" example, and the worker the server-smoke script
// (scripts/server_smoke.sh) runs before and after crashing the daemon.
//
// Usage:
//   serving_quickstart <port> [--batches N] [--seq-start S]
//                      [--no-register] [--min-acked M]
//
// Default mode registers a query, ingests N batches of a deterministic
// trace, polls the non-destructive result, and prints the server's
// counter snapshot. `--no-register` targets the query the *previous*
// run registered (query id 1) — that is the post-restart verification:
// the recovered daemon must still hold it. `--min-acked M` turns the
// stats snapshot into an assertion: exit nonzero unless the server has
// at least M acknowledged (i.e. fsynced) batches.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dsms/batch.h"
#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "server/client.h"

namespace {

constexpr std::size_t kBatchSize = 200;
constexpr char kGsql[] =
    "select destIP, count(*), sum(len) from TCP group by destIP";

}  // namespace

int main(int argc, char** argv) {
  using namespace fwdecay;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <port> [--batches N] [--seq-start S] "
                 "[--no-register] [--min-acked M]\n",
                 argv[0]);
    return 2;
  }
  const auto port = static_cast<std::uint16_t>(std::atoi(argv[1]));
  std::uint64_t batches = 3;
  std::uint64_t seq_start = 1;
  std::uint64_t min_acked = 0;
  bool do_register = true;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--batches") == 0 && i + 1 < argc) {
      batches = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seq-start") == 0 && i + 1 < argc) {
      seq_start = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--min-acked") == 0 && i + 1 < argc) {
      min_acked = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--no-register") == 0) {
      do_register = false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  server::Client client;
  std::string error;
  if (!client.Connect(port, &error) ||
      !client.Hello(/*tenant=*/"default", &error)) {
    std::fprintf(stderr, "connect/hello failed: %s\n", error.c_str());
    return 1;
  }

  std::uint64_t query_id = 1;  // first registration's handle
  if (do_register) {
    server::ErrCode code = server::ErrCode::kNone;
    if (!client.RegisterQuery("top-dst", kGsql, /*two_level=*/false,
                              &query_id, &code, &error)) {
      std::fprintf(stderr, "register failed (code %d): %s\n",
                   static_cast<int>(code), error.c_str());
      return 1;
    }
    std::printf("registered query_id=%llu: %s\n",
                static_cast<unsigned long long>(query_id), kGsql);
  }

  // Deterministic trace: the same seed on every run, offset by
  // --seq-start, so pre-crash and post-restart invocations extend one
  // continuous stream instead of replaying the same packets.
  dsms::TraceConfig cfg;
  cfg.seed = 42;
  cfg.num_servers = 40;
  dsms::PacketGenerator gen(cfg);
  const auto packets =
      gen.Generate((seq_start - 1 + batches) * kBatchSize);

  for (std::uint64_t b = 0; b < batches; ++b) {
    const std::size_t off = (seq_start - 1 + b) * kBatchSize;
    dsms::PacketBatch batch(kBatchSize);
    for (std::size_t i = 0; i < kBatchSize; ++i) {
      (void)batch.Append(packets[off + i]);
    }
    server::IngestReply reply;
    // kBusy is backpressure, not failure: back off and resend the same
    // client_seq (the server dedupes nothing — an unacked batch was
    // never applied).
    while (true) {
      if (!client.Ingest(seq_start + b, batch, &reply, &error)) {
        std::fprintf(stderr, "ingest transport failure: %s\n",
                     error.c_str());
        return 1;
      }
      if (!reply.busy) break;
      std::printf("busy (queue_depth=%u), retrying\n", reply.queue_depth);
    }
    if (!reply.ok) {
      std::fprintf(stderr, "ingest refused (code %d): %s\n",
                   static_cast<int>(reply.code), reply.message.c_str());
      return 1;
    }
    std::printf("acked client_seq=%llu global_seq=%llu\n",
                static_cast<unsigned long long>(seq_start + b),
                static_cast<unsigned long long>(reply.global_seq));
  }

  dsms::ResultSet result;
  server::ErrCode code = server::ErrCode::kNone;
  if (!client.PollResult(query_id, &result, &code, &error)) {
    std::fprintf(stderr, "poll failed (code %d): %s\n",
                 static_cast<int>(code), error.c_str());
    return 1;
  }
  std::printf("poll (%zu rows):\n%s", result.rows.size(),
              result.ToString().c_str());

  server::WireStats stats;
  if (!client.Stats(&stats, &error)) {
    std::fprintf(stderr, "stats failed: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "stats: global_seq=%llu batches_acked=%llu backpressure=%llu "
      "groups_shed=%llu queries=%u tenants=%u\n",
      static_cast<unsigned long long>(stats.global_seq),
      static_cast<unsigned long long>(stats.batches_acked),
      static_cast<unsigned long long>(stats.backpressure_total),
      static_cast<unsigned long long>(stats.groups_shed_total),
      stats.queries, stats.tenants);
  if (stats.batches_acked < min_acked) {
    std::fprintf(stderr,
                 "VERIFY FAILED: batches_acked=%llu < required %llu — "
                 "acknowledged batches were lost across the restart\n",
                 static_cast<unsigned long long>(stats.batches_acked),
                 static_cast<unsigned long long>(min_acked));
    return 1;
  }
  return 0;
}
