// Distributed aggregation (Section VI-B): several sites observe disjoint
// parts of a packet stream, each maintains forward-decayed summaries with
// the SAME decay function and landmark, and a coordinator merges them.
// The merged answers match a single site that saw everything — for
// counts/sums exactly, for sketches within their error bounds.
//
// This is the property the paper highlights for distributed streaming
// systems (and for MapReduce-style processing in the conclusion).

#include <cstdio>
#include <vector>

#include "core/aggregates.h"
#include "core/count_distinct.h"
#include "core/decay.h"
#include "core/forward_decay.h"
#include "core/heavy_hitters.h"
#include "core/quantiles.h"
#include "dsms/netgen.h"

int main() {
  using namespace fwdecay;

  constexpr int kSites = 4;
  dsms::TraceConfig cfg;
  cfg.rate_pps = 40000.0;
  cfg.num_servers = 2000;
  cfg.seed = 31;
  dsms::PacketGenerator gen(cfg);
  const auto packets = gen.Generate(400000);
  const double t = packets.back().time;

  const ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);

  // Per-site summaries plus a single-site reference over the union.
  std::vector<DecayedMoments<MonomialG>> moments(kSites, DecayedMoments<MonomialG>(decay));
  std::vector<DecayedHeavyHitters<MonomialG>> hh;
  std::vector<DecayedQuantiles<MonomialG>> quant;
  std::vector<DecayedDistinct<MonomialG>> distinct;
  for (int s = 0; s < kSites; ++s) {
    hh.emplace_back(decay, 0.01);
    quant.emplace_back(decay, /*universe_bits=*/11, 0.01);
    distinct.emplace_back(decay, 2048, 1.05);
  }
  DecayedMoments<MonomialG> single(decay);
  DecayedHeavyHitters<MonomialG> single_hh(decay, 0.01);

  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto& p = packets[i];
    // Round-robin partitioning: each site sees a disjoint quarter.
    const int s = static_cast<int>(i % kSites);
    moments[s].Add(p.time, p.len);
    hh[s].Add(p.time, dsms::DestKey(p));
    quant[s].Add(p.time, p.len);
    distinct[s].Add(p.time, p.dest_ip);
    single.Add(p.time, p.len);
    single_hh.Add(p.time, dsms::DestKey(p));
  }

  // Coordinator: fold sites 1..k-1 into site 0.
  for (int s = 1; s < kSites; ++s) {
    moments[0].Merge(moments[s]);
    hh[0].Merge(hh[s]);
    quant[0].Merge(quant[s]);
    distinct[0].Merge(distinct[s]);
  }

  std::printf("decayed count   merged %12.2f   single site %12.2f\n",
              moments[0].Count(t), single.Count(t));
  std::printf("decayed sum     merged %12.2f   single site %12.2f\n",
              moments[0].Sum(t), single.Sum(t));
  std::printf("decayed average merged %12.4f   single site %12.4f\n",
              *moments[0].Average(), *single.Average());
  std::printf("decayed median  merged %12llu\n",
              static_cast<unsigned long long>(quant[0].Quantile(0.5)));
  std::printf("decayed distinct dests (sketch) %12.1f\n",
              distinct[0].Estimate(t));

  const auto merged_hh = hh[0].Query(t, 0.02);
  const auto single_top = single_hh.Query(t, 0.02);
  std::printf("\ntop decayed heavy hitters (merged vs single site):\n");
  const std::size_t n = std::min<std::size_t>(5, merged_hh.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  %016llx  %10.2f   |   %016llx  %10.2f\n",
                static_cast<unsigned long long>(merged_hh[i].key),
                merged_hh[i].decayed_count,
                static_cast<unsigned long long>(single_top[i].key),
                single_top[i].decayed_count);
  }
  std::printf(
      "\nCounts and sums merge exactly; the sketches (heavy hitters,\n"
      "quantiles, distinct) merge within their eps guarantees — no\n"
      "coordination during the stream, just one exchange at query time.\n");
  return 0;
}
