// Quickstart: the paper's running example (Examples 1-3) computed with the
// fwdecay public API.
//
// Stream: {(105,4), (107,8), (103,3), (108,6), (104,4)}, landmark L = 100,
// forward decay g(n) = n^2, evaluated at t = 110. The paper's numbers:
//   weights {0.25, 0.49, 0.09, 0.64, 0.16}
//   C = 1.63   S = 9.67   A = 5.93
//   heavy hitters at phi = 0.2: items 4, 6, 8.

#include <cstdio>

#include "core/aggregates.h"
#include "core/decay.h"
#include "core/forward_decay.h"
#include "core/heavy_hitters.h"

int main() {
  using namespace fwdecay;

  // The example stream: (timestamp, value) pairs; note the out-of-order
  // arrivals — forward decay does not care (Section VI-B).
  const std::pair<Timestamp, double> stream[] = {
      {105, 4}, {107, 8}, {103, 3}, {108, 6}, {104, 4}};
  const Timestamp kLandmark = 100.0;
  const Timestamp kQueryTime = 110.0;

  ForwardDecay<MonomialG> decay(MonomialG(2.0), kLandmark);

  std::printf("Decayed weights at t = %.0f (g(n) = n^2, L = %.0f):\n",
              kQueryTime, kLandmark);
  for (const auto& [ts, value] : stream) {
    std::printf("  item (%.0f, %g): w = %.2f\n", ts, value,
                decay.Weight(ts, kQueryTime));
  }

  // Count / Sum / Average / Variance in O(1) state (Theorem 1).
  DecayedMoments<MonomialG> moments(decay);
  for (const auto& [ts, value] : stream) moments.Add(ts, value);
  std::printf("\nC = %.2f  (paper: 1.63)\n", moments.Count(kQueryTime));
  std::printf("S = %.2f  (paper: 9.67)\n", moments.Sum(kQueryTime));
  std::printf("A = %.2f  (paper: 5.93)\n", *moments.Average());

  // Min / Max (Definition 6).
  DecayedMin<MonomialG> mn(decay);
  DecayedMax<MonomialG> mx(decay);
  for (const auto& [ts, value] : stream) {
    mn.Add(ts, value);
    mx.Add(ts, value);
  }
  std::printf("MIN = %.2f, MAX = %.2f\n", *mn.Value(kQueryTime),
              *mx.Value(kQueryTime));

  // Heavy hitters (Example 3): items with decayed count >= phi * C.
  DecayedHeavyHitters<MonomialG> hh(decay, /*eps=*/0.01);
  for (const auto& [ts, value] : stream) {
    hh.Add(ts, static_cast<std::uint64_t>(value));
  }
  std::printf("\nphi = 0.2 heavy hitters (paper: 4, 6, 8):\n");
  for (const auto& h : hh.Query(kQueryTime, 0.2)) {
    std::printf("  item %llu: decayed count %.2f\n",
                static_cast<unsigned long long>(h.key), h.decayed_count);
  }
  return 0;
}
