// Metrics histogram: the forward-decay application most engineers have
// already used without knowing it — the exponentially decaying latency
// reservoir of the Dropwizard / Coda Hale metrics library.
//
// A service's request latency regime shifts abruptly (a dependency slows
// down at t = 120 s). A plain uniform reservoir keeps averaging the old
// regime in; the decaying reservoir's percentiles track the shift within
// seconds, because item weights exp(alpha * (t_i - L)) make the recent
// past dominate.

#include <cstdio>

#include "core/decaying_reservoir.h"
#include "sampling/reservoir.h"
#include "util/random.h"

int main() {
  using namespace fwdecay;

  Rng workload(7);
  // alpha = 0.03/s: ~half the sample mass from the last ~25 seconds.
  DecayingReservoir decayed(/*k=*/1028, /*alpha=*/0.03, /*start=*/0.0);
  ReservoirSampler<double> uniform(1028);
  Rng uniform_rng(8);

  std::printf("%8s  %28s  %28s\n", "", "decaying reservoir", "uniform reservoir");
  std::printf("%8s  %8s %9s %9s  %8s %9s %9s\n", "t (s)", "median", "p95",
              "p99", "median", "p95", "p99");

  const double kRate = 200.0;  // requests per second
  double t = 0.0;
  for (int i = 0; i < static_cast<int>(300 * kRate); ++i) {
    t += workload.NextExponential(kRate);
    // Latency regime: ~20 ms baseline; jumps to ~80 ms at t = 120 s.
    const double base = t < 120.0 ? 20.0 : 80.0;
    const double latency_ms = base + workload.NextExponential(0.25);
    decayed.Update(t, latency_ms);
    uniform.Add(latency_ms, uniform_rng);

    // Report every 30 seconds.
    if (i % static_cast<int>(30 * kRate) == 0 && i > 0) {
      const auto snap = decayed.Snapshot();
      std::vector<double> u = uniform.sample();
      std::printf("%8.0f  %8.1f %9.1f %9.1f  %8.1f %9.1f %9.1f\n", t,
                  snap.median, snap.p95, snap.p99, Percentile(u, 0.5),
                  Percentile(u, 0.95), Percentile(u, 0.99));
    }
  }

  std::printf(
      "\nAfter the regime shift at t = 120 s the decaying reservoir's\n"
      "median converges to ~84 ms within one report interval, while the\n"
      "uniform reservoir is still blending both regimes at t = 300 s.\n"
      "(No rescaling thread needed: the log-domain keys never overflow.)\n");
  return 0;
}
