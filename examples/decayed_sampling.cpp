// Decayed sampling (Section V + Corollary 1): maintains exponentially
// decayed samples over a stream whose tuples arrive OUT OF ORDER with
// arbitrary real timestamps — the case prior work (Aggarwal's biased
// reservoir) cannot handle and forward decay makes trivial.
//
// The stream interleaves two traffic regimes: source A dominates the
// first half, source B the second. An exponentially decayed sample taken
// at the end should be dominated by B; an undecayed sample stays ~50/50.

#include <cstdio>
#include <map>

#include "core/decay.h"
#include "core/forward_decay.h"
#include "dsms/netgen.h"
#include "sampling/priority_sampling.h"
#include "sampling/reservoir.h"
#include "sampling/weighted_reservoir.h"
#include "util/random.h"

namespace {

using namespace fwdecay;

// Tags items 1..5 by which fifth of the stream they arrived in.
int Phase(double ts, double span) {
  return static_cast<int>(ts / span * 5.0) + 1;
}

void PrintHistogram(const char* label, const std::map<int, int>& hist,
                    std::size_t total) {
  std::printf("%-34s", label);
  for (int phase = 1; phase <= 5; ++phase) {
    const auto it = hist.find(phase);
    const int c = it == hist.end() ? 0 : it->second;
    std::printf("  %4.0f%%", 100.0 * c / static_cast<double>(total));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Out-of-order trace: true timestamps jittered by up to 2 seconds in
  // delivery order (Section VI-B scenario).
  dsms::TraceConfig cfg;
  cfg.rate_pps = 20000.0;
  cfg.reorder_jitter = 2.0;
  cfg.seed = 11;
  dsms::PacketGenerator gen(cfg);
  const auto packets = gen.Generate(200000);
  const double span = 10.0;  // seconds of traffic

  int inversions = 0;
  for (std::size_t i = 1; i < packets.size(); ++i) {
    inversions += packets[i].time < packets[i - 1].time;
  }
  std::printf("stream has %d out-of-order deliveries out of %zu packets\n\n",
              inversions, packets.size());

  Rng rng(5);

  // Undecayed uniform reservoir.
  ReservoirSampler<double> uniform(2000);
  // Exponentially decayed sample (rate 0.5/s) via weighted reservoir —
  // Corollary 1: identical to BACKWARD exponential decay, but works with
  // arbitrary timestamps and arrival order in O(k) space.
  ForwardDecay<ExponentialG> decay(ExponentialG(0.5), 0.0);
  WeightedReservoirSampler<double, ExponentialG> decayed(decay, 2000);
  // Priority sampling with the same weights (the PRISAMP UDAF).
  PrioritySampler<double, ExponentialG> prio(decay, 2000);

  for (const auto& p : packets) {
    uniform.Add(p.time, rng);
    decayed.Add(p.time, p.time, rng);
    prio.Add(p.time, p.time, rng);
  }

  std::printf("%-34s  %s\n", "fraction of sample from phase:",
              "  1st   2nd   3rd   4th   5th");
  auto histogram = [&](const std::vector<double>& sample) {
    std::map<int, int> hist;
    for (double ts : sample) ++hist[Phase(ts, span)];
    return hist;
  };
  PrintHistogram("uniform reservoir (no decay)", histogram(uniform.sample()),
                 uniform.sample().size());
  PrintHistogram("weighted reservoir, exp decay", histogram(decayed.Sample()),
                 decayed.Sample().size());
  std::map<int, int> prio_hist;
  std::size_t prio_total = 0;
  for (const auto& entry : prio.Sample()) {
    ++prio_hist[Phase(entry.ts, span)];
    ++prio_total;
  }
  PrintHistogram("priority sampling, exp decay", prio_hist, prio_total);

  // Priority sampling also estimates decayed subset sums (e.g. "decayed
  // count of packets from the last two seconds").
  const double t = span;
  const double est = prio.EstimateDecayedSubsetSum(
      t, [&](const double& ts) { return ts >= span - 2.0; });
  std::printf(
      "\npriority-sampling estimate of the decayed count of the last two\n"
      "seconds of traffic: %.1f (decayed total %.1f)\n",
      est, prio.EstimateDecayedCount(t));
  std::printf(
      "\nThe decayed samples concentrate on the most recent phases while\n"
      "the uniform sample spreads evenly — and none of this required the\n"
      "stream to be in timestamp order.\n");
  return 0;
}
