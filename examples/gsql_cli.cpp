// gsql_cli — command-line front end for the mini DSMS: run a GSQL query
// over a synthetic trace (or a recorded trace file) and print the result
// table or CSV. The closest thing in this repo to "using the product".
//
// Usage:
//   gsql_cli [options] "<gsql query>"
//
// Options:
//   --rate <pps>        synthetic trace rate (default 50000)
//   --seconds <s>       synthetic trace duration (default 60)
//   --servers <n>       distinct destination hosts (default 5000)
//   --skew <z>          Zipf skew of destinations (default 1.1)
//   --seed <n>          generator seed (default 42)
//   --jitter <s>        out-of-order delivery jitter (default 0)
//   --trace <path>      replay a recorded trace instead of generating
//   --save-trace <path> save the generated trace for later replay
//   --two-level         enable the GS-style low/high aggregation split
//   --bucket <s>        tumbling emission every s seconds (default: one
//                       result table over the whole input)
//   --csv               print CSV instead of the aligned table
//
// Examples:
//   gsql_cli "select tb, destIP, count(*) from TCP
//             group by time/60 as tb, destIP order by 3 desc limit 10"
//   gsql_cli --bucket 60 "select tb, PRISAMP(srcIP, expweight(time,60,1))
//             from TCP group by time/60 as tb"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "dsms/trace_io.h"
#include "dsms/tumbling.h"
#include "dsms/udafs.h"

namespace {

using namespace fwdecay::dsms;

struct CliOptions {
  TraceConfig trace;
  double seconds = 60.0;
  std::string trace_path;
  std::string save_trace_path;
  bool two_level = false;
  double bucket_seconds = 0.0;
  bool csv = false;
  std::string query;
};

[[noreturn]] void Usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: gsql_cli [--rate N] [--seconds S] [--servers N] "
               "[--skew Z] [--seed N] [--jitter S] [--trace PATH] "
               "[--save-trace PATH] [--two-level] [--bucket S] [--csv] "
               "\"<gsql>\"\n");
  std::exit(2);
}

double NumArg(int argc, char** argv, int* i) {
  if (*i + 1 >= argc) Usage("missing option value");
  return std::strtod(argv[++*i], nullptr);
}

CliOptions Parse(int argc, char** argv) {
  CliOptions opts;
  opts.trace.rate_pps = 50000.0;
  opts.trace.num_servers = 5000;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--rate") == 0) {
      opts.trace.rate_pps = NumArg(argc, argv, &i);
    } else if (std::strcmp(arg, "--seconds") == 0) {
      opts.seconds = NumArg(argc, argv, &i);
    } else if (std::strcmp(arg, "--servers") == 0) {
      opts.trace.num_servers =
          static_cast<std::uint32_t>(NumArg(argc, argv, &i));
    } else if (std::strcmp(arg, "--skew") == 0) {
      opts.trace.server_skew = NumArg(argc, argv, &i);
    } else if (std::strcmp(arg, "--seed") == 0) {
      opts.trace.seed = static_cast<std::uint64_t>(NumArg(argc, argv, &i));
    } else if (std::strcmp(arg, "--jitter") == 0) {
      opts.trace.reorder_jitter = NumArg(argc, argv, &i);
    } else if (std::strcmp(arg, "--trace") == 0) {
      if (i + 1 >= argc) Usage("missing --trace path");
      opts.trace_path = argv[++i];
    } else if (std::strcmp(arg, "--save-trace") == 0) {
      if (i + 1 >= argc) Usage("missing --save-trace path");
      opts.save_trace_path = argv[++i];
    } else if (std::strcmp(arg, "--two-level") == 0) {
      opts.two_level = true;
    } else if (std::strcmp(arg, "--bucket") == 0) {
      opts.bucket_seconds = NumArg(argc, argv, &i);
    } else if (std::strcmp(arg, "--csv") == 0) {
      opts.csv = true;
    } else if (arg[0] == '-') {
      Usage("unknown option");
    } else if (opts.query.empty()) {
      opts.query = arg;
    } else {
      Usage("multiple queries given");
    }
  }
  if (opts.query.empty()) Usage("no query given");
  return opts;
}

void PrintResult(const ResultSet& rs, bool csv) {
  if (!csv) {
    std::fputs(rs.ToString().c_str(), stdout);
    return;
  }
  for (std::size_t c = 0; c < rs.columns.size(); ++c) {
    std::printf("%s%s", c == 0 ? "" : ",", rs.columns[c].c_str());
  }
  std::printf("\n");
  for (const auto& row : rs.rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%s", c == 0 ? "" : ",", row[c].ToString().c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterPaperUdafs();
  const CliOptions opts = Parse(argc, argv);

  std::string error;
  CompiledQuery::Options plan_opts;
  plan_opts.two_level = opts.two_level;
  auto plan = CompiledQuery::Compile(opts.query, &error, plan_opts);
  if (plan == nullptr) {
    std::fprintf(stderr, "query error: %s\n", error.c_str());
    return 1;
  }

  std::vector<Packet> packets;
  if (!opts.trace_path.empty()) {
    auto loaded = ReadTrace(opts.trace_path, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "trace error: %s\n", error.c_str());
      return 1;
    }
    packets = *std::move(loaded);
  } else {
    PacketGenerator gen(opts.trace);
    packets = gen.Generate(
        static_cast<std::size_t>(opts.trace.rate_pps * opts.seconds));
  }
  if (!opts.save_trace_path.empty()) {
    if (!WriteTrace(opts.save_trace_path, packets, &error)) {
      std::fprintf(stderr, "trace error: %s\n", error.c_str());
      return 1;
    }
  }

  if (opts.bucket_seconds > 0.0) {
    TumblingRunner runner(plan.get(), opts.bucket_seconds,
                          [&](std::int64_t bucket, ResultSet rs) {
                            std::printf("-- bucket %lld --\n",
                                        static_cast<long long>(bucket));
                            PrintResult(rs, opts.csv);
                          });
    for (const Packet& p : packets) runner.Consume(p);
    runner.Flush();
  } else {
    auto exec = plan->NewExecution();
    for (const Packet& p : packets) exec->Consume(p);
    PrintResult(exec->Finish(), opts.csv);
    std::fprintf(stderr, "%llu tuples aggregated, %zu groups\n",
                 static_cast<unsigned long long>(exec->tuples_aggregated()),
                 exec->GroupCount());
  }
  return 0;
}
