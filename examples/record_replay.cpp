// Record/replay: capture a synthetic trace to a file, replay it through
// the engine, and verify the replayed results match the live run — the
// workflow for debugging a production query offline, and a demonstration
// that every layer of the system is deterministic given its inputs.
//
// The second half exercises the crash-recovery path on top of the same
// trace: checkpoint mid-replay, simulate a crash that destroys the
// execution (plus an injected disk fault on the *next* snapshot attempt,
// which must leave the old snapshot untouched), restore, and resume from
// the recorded stream position to the identical final table.

#include <cstdio>
#include <string>
#include <vector>

#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "dsms/trace_io.h"
#include "dsms/udafs.h"
#include "util/fault_fs.h"

int main() {
  using namespace fwdecay::dsms;
  RegisterPaperUdafs();

  // 1. Generate and immediately record a trace.
  TraceConfig cfg;
  cfg.rate_pps = 20000.0;
  cfg.flow_structured = true;  // realistic flow-bursty key pattern
  cfg.seed = 77;
  PacketGenerator gen(cfg);
  const auto live = gen.Generate(20000 * 30);  // 30 seconds

  const std::string path = "/tmp/fwdecay_example_trace.bin";
  std::string error;
  if (!WriteTrace(path, live, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("recorded %zu packets to %s\n", live.size(), path.c_str());

  // 2. Replay from disk.
  auto replayed = ReadTrace(path, &error);
  if (!replayed.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // 3. Run the same decayed query over both and compare.
  const char* gsql =
      "select tb, sum(len*(time % 60)*(time % 60))/3600.0, "
      "count(distinct destIP) from TCP group by time/60 as tb";
  auto plan = CompiledQuery::Compile(gsql, &error);
  if (plan == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  auto run = [&](const std::vector<Packet>& packets) {
    auto exec = plan->NewExecution();
    for (const Packet& p : packets) exec->Consume(p);
    return exec->Finish();
  };
  const ResultSet a = run(live);
  const ResultSet b = run(*replayed);

  std::printf("\nlive run:\n%s\nreplayed run:\n%s\n", a.ToString().c_str(),
              b.ToString().c_str());
  bool identical = a.rows.size() == b.rows.size();
  for (std::size_t i = 0; identical && i < a.rows.size(); ++i) {
    for (std::size_t c = 0; c < a.rows[i].size(); ++c) {
      identical = identical && a.rows[i][c] == b.rows[i][c];
    }
  }
  std::printf("results identical: %s\n", identical ? "yes" : "NO");

  // 4. Crash-recovery on the replayed trace: checkpoint halfway, "crash"
  // the execution, restore a fresh one, resume, and compare.
  using fwdecay::FaultFs;
  using fwdecay::FaultPoint;
  using fwdecay::ScopedFaultPlan;
  const std::string snap = "/tmp/fwdecay_example_snapshot.bin";
  const std::size_t half = replayed->size() / 2;

  auto primary = plan->NewExecution();
  for (std::size_t i = 0; i < half; ++i) primary->Consume((*replayed)[i]);
  if (!primary->Checkpoint(snap, &error)) {
    std::fprintf(stderr, "checkpoint failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("\ncheckpointed at packet %llu to %s\n",
              static_cast<unsigned long long>(primary->packets_consumed()),
              snap.c_str());

  // A later checkpoint attempt dies mid-write (injected torn write).
  // Atomic-rename discipline keeps the half-way snapshot intact.
  for (std::size_t i = half; i < half + 1000; ++i) {
    primary->Consume((*replayed)[i]);
  }
  {
    ScopedFaultPlan torn(FaultPoint::kTornWrite, /*byte_limit=*/64);
    if (primary->Checkpoint(snap, &error)) {
      std::fprintf(stderr, "injected fault did not fire\n");
      return 1;
    }
    std::printf("simulated crash during re-checkpoint: %s\n", error.c_str());
  }
  FaultFs::Instance().RemoveStaleTemp(FaultFs::TempPathFor(snap));
  primary.reset();  // the "crash": all in-memory state is gone

  auto restored = plan->NewExecution();
  if (!restored->Restore(snap, &error)) {
    std::fprintf(stderr, "restore failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("restored; resuming at packet %llu\n",
              static_cast<unsigned long long>(restored->packets_consumed()));
  for (std::size_t i = restored->packets_consumed(); i < replayed->size();
       ++i) {
    restored->Consume((*replayed)[i]);
  }
  const ResultSet c = restored->Finish();
  bool recovered = b.rows.size() == c.rows.size();
  for (std::size_t i = 0; recovered && i < b.rows.size(); ++i) {
    for (std::size_t col = 0; col < b.rows[i].size(); ++col) {
      recovered = recovered && b.rows[i][col] == c.rows[i][col];
    }
  }
  std::printf("recovered results identical: %s\n", recovered ? "yes" : "NO");

  std::remove(path.c_str());
  std::remove(snap.c_str());
  return identical && recovered ? 0 : 1;
}
