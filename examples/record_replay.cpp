// Record/replay: capture a synthetic trace to a file, replay it through
// the engine, and verify the replayed results match the live run — the
// workflow for debugging a production query offline, and a demonstration
// that every layer of the system is deterministic given its inputs.

#include <cstdio>
#include <string>
#include <vector>

#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "dsms/trace_io.h"
#include "dsms/udafs.h"

int main() {
  using namespace fwdecay::dsms;
  RegisterPaperUdafs();

  // 1. Generate and immediately record a trace.
  TraceConfig cfg;
  cfg.rate_pps = 20000.0;
  cfg.flow_structured = true;  // realistic flow-bursty key pattern
  cfg.seed = 77;
  PacketGenerator gen(cfg);
  const auto live = gen.Generate(20000 * 30);  // 30 seconds

  const std::string path = "/tmp/fwdecay_example_trace.bin";
  std::string error;
  if (!WriteTrace(path, live, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::printf("recorded %zu packets to %s\n", live.size(), path.c_str());

  // 2. Replay from disk.
  auto replayed = ReadTrace(path, &error);
  if (!replayed.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // 3. Run the same decayed query over both and compare.
  const char* gsql =
      "select tb, sum(len*(time % 60)*(time % 60))/3600.0, "
      "count(distinct destIP) from TCP group by time/60 as tb";
  auto plan = CompiledQuery::Compile(gsql, &error);
  if (plan == nullptr) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  auto run = [&](const std::vector<Packet>& packets) {
    auto exec = plan->NewExecution();
    for (const Packet& p : packets) exec->Consume(p);
    return exec->Finish();
  };
  const ResultSet a = run(live);
  const ResultSet b = run(*replayed);

  std::printf("\nlive run:\n%s\nreplayed run:\n%s\n", a.ToString().c_str(),
              b.ToString().c_str());
  bool identical = a.rows.size() == b.rows.size();
  for (std::size_t i = 0; identical && i < a.rows.size(); ++i) {
    for (std::size_t c = 0; c < a.rows[i].size(); ++c) {
      identical = identical && a.rows[i][c] == b.rows[i][c];
    }
  }
  std::printf("results identical: %s\n", identical ? "yes" : "NO");
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
