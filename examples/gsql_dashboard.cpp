// GSQL dashboard: a tour of the query language over one trace — the
// deployment story of Section VI ("no extensions to the query language
// or the DSMS"): forward decay rides on plain arithmetic plus ordinary
// (weighted) UDAFs.

#include <cstdio>
#include <string>

#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "dsms/udafs.h"
#include "util/metrics.h"

int main() {
  using namespace fwdecay::dsms;
  RegisterPaperUdafs();

  TraceConfig cfg;
  cfg.rate_pps = 20000.0;
  cfg.num_servers = 300;
  cfg.ports_per_server = 2;
  cfg.seed = 99;
  PacketGenerator gen(cfg);
  const auto packets = gen.Generate(120 * 20000);  // two minutes

  const char* queries[] = {
      // Tumbling-window traffic totals (GS's classic time-bucket idiom).
      "select tb, count(*), sum(len) from TCP group by time/60 as tb",
      // The paper's quadratic forward-decayed byte count per minute.
      "select tb, sum(len*(time % 60)*(time % 60))/3600.0 from TCP "
      "group by time/60 as tb",
      // Decayed average packet size: ratio of decayed sum to count.
      "select tb, sum(len*(time % 60)*(time % 60)) / "
      "sum((time % 60)*(time % 60) + 1) from TCP group by time/60 as tb",
      // Forward-decayed median packet length via the q-digest UDAF.
      "select tb, FDQUANTILE(len, (time % 60)*(time % 60) + 1, 0.5, 11) "
      "from TCP group by time/60 as tb",
      // Decayed distinct destinations (dominance-norm UDAF).
      "select tb, FDDISTINCT(destIP, (time % 60)*(time % 60) + 1) from TCP "
      "group by time/60 as tb",
      // Per-protocol breakdown with a WHERE clause.
      "select tb, protocol, count(*), avg(len) from PKT "
      "where len > 100 group by time/60 as tb, protocol",
      // Weighted sample of sources under exponential decay (PRISAMP).
      "select tb, PRISAMP(srcPort, exp((time % 60)/10.0), 6) from TCP "
      "group by time/60 as tb",
  };

  for (const char* gsql : queries) {
    std::string error;
    auto plan = CompiledQuery::Compile(gsql, &error);
    if (plan == nullptr) {
      std::fprintf(stderr, "compile error for [%s]: %s\n", gsql,
                   error.c_str());
      return 1;
    }
    auto exec = plan->NewExecution();
    for (const Packet& p : packets) exec->Consume(p);
    std::printf(">> %s\n%s\n", gsql, exec->Finish().ToString().c_str());
  }

  // The engine instruments itself (DESIGN.md §9): compile times, tuple
  // throughput, and batch latency quantiles for everything above were
  // recorded as a side effect. Scrape them the way a Prometheus
  // endpoint would.
  std::string exposition;
  fwdecay::metrics::MetricsRegistry::Instance().RenderPrometheus(&exposition);
  std::printf(">> /metrics\n%s", exposition.c_str());
  return 0;
}
