// Engine observability tour (DESIGN.md §9): the DSMS instruments
// itself with the paper's own machinery. Counters are plain atomics,
// but every *time-windowed* statistic — tuple arrival rate, batch and
// fsync latency quantiles — is forward-decayed: rates use
// DecayedCount<ExponentialG> (Definition 5) and latency reservoirs use
// the log-key decaying reservoir (Section V), so neither needs a
// background rescaling thread.
//
// This example runs the ingest pipeline end to end (batched ingest,
// sharded ingest, checkpoint + restore), lets a StatsReporter thread
// emit periodic reports, registers an application-level metric of its
// own, and finally scrapes the registry the way a Prometheus /metrics
// endpoint would.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "dsms/batch.h"
#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "dsms/udafs.h"
#include "util/metrics.h"

namespace {

std::vector<fwdecay::dsms::PacketBatch> Rebatch(
    const std::vector<fwdecay::dsms::Packet>& trace) {
  using fwdecay::dsms::PacketBatch;
  std::vector<PacketBatch> batches;
  PacketBatch batch(PacketBatch::kDefaultCapacity);
  for (const auto& p : trace) {
    batch.Append(p);
    if (batch.full()) {
      batches.push_back(std::move(batch));
      batch = PacketBatch(PacketBatch::kDefaultCapacity);
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

}  // namespace

int main() {
  using namespace fwdecay;
  using namespace fwdecay::dsms;
  RegisterPaperUdafs();

  auto& registry = metrics::MetricsRegistry::Instance();

  // Application code can register its own families alongside the
  // engine's; names must match ^fwdecay_[a-z0-9_]+$ (checked).
  metrics::Counter* demo_runs = registry.GetCounter(
      "fwdecay_example_runs_total", "Completed engine_metrics example runs.");

  // Periodic reporting: a background thread renders the registry every
  // period. The default sink writes the exposition to stderr; here a
  // custom sink just proves liveness without drowning stdout.
  metrics::StatsReporter reporter(
      &registry, /*period_seconds=*/0.05, [](const std::string& text) {
        std::printf("[stats-report] %zu bytes of exposition\n", text.size());
      });

  TraceConfig cfg;
  cfg.flow_structured = true;
  cfg.num_servers = 500;
  cfg.ports_per_server = 4;
  cfg.seed = 7;
  PacketGenerator gen(cfg);
  const auto trace = gen.Generate(200000);
  const auto batches = Rebatch(trace);

  std::string error;
  CompiledQuery::Options opts;
  opts.two_level = true;
  opts.low_level_slots = 1024;
  auto plan = CompiledQuery::Compile(
      "select destPort, count(*), sum(len), avg(len) from TCP "
      "group by destPort",
      &error, opts);
  if (plan == nullptr) {
    std::fprintf(stderr, "compile error: %s\n", error.c_str());
    return 1;
  }

  // Batched single-execution ingest with a mid-stream checkpoint: the
  // checkpoint/restore cycle also exercises the fault_fs I/O counters
  // and the fsync latency reservoir.
  const std::string ckpt = "engine_metrics.ckpt";
  auto exec = plan->NewExecution();
  for (std::size_t i = 0; i < batches.size(); ++i) {
    exec->Consume(batches[i]);
    if (i == batches.size() / 2 && !exec->Checkpoint(ckpt, &error)) {
      std::fprintf(stderr, "checkpoint failed: %s\n", error.c_str());
      return 1;
    }
  }
  auto restored = plan->NewExecution();
  if (!restored->Restore(ckpt, &error)) {
    std::fprintf(stderr, "restore failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("single execution: %llu tuples, %zu groups "
              "(restored checkpoint holds %llu tuples)\n",
              static_cast<unsigned long long>(exec->tuples_aggregated()),
              exec->GroupCount(),
              static_cast<unsigned long long>(restored->tuples_aggregated()));
  exec->Finish();
  restored->Finish();
  std::remove(ckpt.c_str());

  // Sharded ingest: per-shard counters land in labelled families
  // (fwdecay_shard_tuples_total{shard="0"} etc.).
  ShardedQueryExecution sharded(*plan, /*num_shards=*/2);
  for (const PacketBatch& b : batches) sharded.Consume(b);
  std::printf("sharded execution: %llu tuples across %zu shards\n",
              static_cast<unsigned long long>(sharded.tuples_aggregated()),
              sharded.num_shards());
  sharded.Finish();

  demo_runs->Increment();

  // Give the reporter a chance to fire at least once, then detach it.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  reporter.Stop();
  std::printf("reporter emitted %llu report(s)\n",
              static_cast<unsigned long long>(reporter.reports_emitted()));

  // The scrape itself: what an HTTP /metrics handler would return.
  std::string exposition;
  registry.RenderPrometheus(&exposition);
  std::printf("\n>> /metrics\n%s", exposition.c_str());

#if !FWDECAY_METRICS_ENABLED
  std::printf("(built with FWDECAY_METRICS=OFF: every call above "
              "compiled to a no-op and the exposition is empty)\n");
#endif
  return 0;
}
