#!/usr/bin/env python3
"""Repo-invariant linter for rules clang-tidy cannot express.

Enforced invariants (each maps to a documented repo convention):

  guard      Include guards in headers must be FWDECAY_<PATH>_H_, where
             <PATH> is the path relative to the source root (src/ stripped),
             upper-cased, with /, ., - mapped to _.  The #endif must carry
             a `// FWDECAY_..._H_` trailing comment.
  random     All randomness flows through util/random.h (explicit-seed
             xoshiro256++).  rand(), srand(), time(nullptr)-seeding and
             std::mt19937 are banned everywhere else: they silently
             destroy run-to-run reproducibility of the experiments.
  throw      Library code (src/) is exception-free Google style; `throw`
             is banned.  Errors are status-style returns (ParseResult) or
             FWDECAY_CHECK aborts.
  assert     Naked assert() / <cassert> are banned in src/, bench/ and
             examples/: FWDECAY_CHECK aborts in every build type and
             prints the failing expression; FWDECAY_DCHECK is the
             debug-only form.  (tests/ may use gtest's assertions.)
  io         All file I/O in library code (src/) flows through
             util/fault_fs.h (crash-safe atomic writes + injectable
             faults).  fopen/fstream in src/ would bypass both the
             durability discipline and the fault-injection tests, so
             they are banned outside src/util/fault_fs.* itself.
             (tests/, bench/ and examples/ may open files directly.)
  locking    Concurrency primitives in library code (src/) must go
             through util/thread_annotations.h: any file mentioning
             std::mutex / std::shared_mutex / std::atomic /
             std::condition_variable must include it, so clang's
             -Wthread-safety analysis (FWDECAY_THREAD_SAFETY=ON) sees
             annotated fwdecay::Mutex types rather than bare std ones.
             Raw pthread_* calls and std::thread::detach() are banned
             in src/, bench/ and examples/ outright: the first bypasses
             the annotated layer entirely, the second leaks threads
             past every join-based shutdown path the tests exercise.
             util/sched.{h,cc} are exempt alongside
             thread_annotations.h: the model checker IS the layer the
             std primitives are wrapped behind (DESIGN.md §10).
  metrics    Two halves of the observability contract (DESIGN.md §9):
             (a) src/dsms/ must not read clocks ad hoc — no std::chrono
             or steady_clock outside util/timer.h / util/metrics.h, so
             every timing site goes through Timer/ScopedTimerSample and
             FWDECAY_METRICS=OFF provably removes all of them; (b) every
             metric name registered via Get{Counter,Gauge,DecayedRate,
             Reservoir}("...") in src/, bench/ and examples/ must match
             ^fwdecay_[a-z0-9_]+$, mirroring the runtime check so bad
             names fail in CI rather than at first scrape.  (tests/ may
             register invalid names: the death tests prove the runtime
             check fires.)
  hotpath    The batched aggregation hot path — the bodies of
             UpdateGroup() and UpdateBatch() in src/ — must not
             construct a std::vector<Value> / ValueColumn: these
             functions run once per group-run per batch, and a
             container construction there reintroduces exactly the
             per-tuple allocation the batch layer exists to remove
             (DESIGN.md §8).  References (`const ValueColumn&`) and
             span parameters are fine; reuse of preallocated member
             scratch is the sanctioned pattern.
  coldmap    The engine's group tables (src/dsms/engine.{h,cc}) must not
             fall back to node-based associative containers:
             std::unordered_map / std::map allocate a node per group and
             chase a pointer per probe, which is exactly the memory-
             bandwidth profile the flat open-addressing tables replaced
             (DESIGN.md §13.1).  A genuinely cold-path use (one-shot
             compile-time bookkeeping, not per-tuple or per-batch work)
             may be annotated `// fwdecay: coldmap-ok(<reason>)` on the
             use's line or the line above.
  escape     Every `// fwdecay: <kind>(<reason>)` analyzer escape
             (relaxed-ok, lock-order-ok, hotpath-lock-ok, taint-ok,
             hotpath-cold, coldmap-ok — the hatches scripts/analyze.py
             and this linter honor)
             must use a known kind and carry a non-empty, non-
             placeholder reason: an unexplained suppression is
             indistinguishable from a silenced bug at review time.
             Stale suppressions are flagged too: analyze.py applies an
             escape to its own line or the line below, so an escape
             annotating a blank/comment-only line suppresses nothing,
             a relaxed-ok with no memory_order_relaxed in reach lost
             its atomic, and a hotpath-lock-ok with no lock
             acquisition in reach lost its lock.

Usage: scripts/lint.py [--root DIR]
Exit status is 0 when clean, 1 when any finding is reported.
"""

import argparse
import pathlib
import re
import sys

SOURCE_DIRS = ("src", "bench", "examples", "tests")
CXX_SUFFIXES = (".h", ".cc", ".cpp")

# util/random.h is the one sanctioned home of PRNG machinery.
RANDOM_EXEMPT = ("src/util/random.h",)

# util/fault_fs is the one sanctioned home of raw file I/O in src/.
IO_EXEMPT = ("src/util/fault_fs.h", "src/util/fault_fs.cc")

# util/thread_annotations.h wraps std::mutex itself and so cannot be
# required to include itself. util/sched.{h,cc} are the model checker's
# own implementation: they deliberately build on the raw std primitives
# (the scheduler's one big mutex + condvar, and the std::atomic mirrors
# inside ModelAtomic) because they ARE the layer everything else routes
# through under -DFWDECAY_SCHED=ON.
LOCKING_EXEMPT = (
    "src/util/thread_annotations.h",
    "src/util/sched.h",
    "src/util/sched.cc",
)

RANDOM_BANNED = re.compile(
    r"(?<![\w:])(?:rand|srand)\s*\(|time\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r"|\bmt19937(?:_64)?\b")
THROW_BANNED = re.compile(r"(?<![\w])throw\b(?!\s*\()")
ASSERT_BANNED = re.compile(r"(?<![\w.])assert\s*\(|#\s*include\s*<cassert>")
IO_BANNED = re.compile(
    r"(?<![\w:])(?:fopen|freopen|open|creat)\s*\("
    r"|\bstd\s*::\s*(?:o|i)?fstream\b|#\s*include\s*<fstream>")
LOCKING_PRIMITIVE = re.compile(
    r"\bstd\s*::\s*(?:mutex|shared_mutex|recursive_mutex|atomic\b"
    r"|condition_variable)")
LOCKING_BANNED = re.compile(r"\bpthread_\w+\s*\(|\.\s*detach\s*\(\s*\)")
THREAD_ANNOTATIONS_INCLUDE = re.compile(
    r'#\s*include\s*"util/thread_annotations\.h"')
METRICS_CLOCK_BANNED = re.compile(r"\bstd\s*::\s*chrono\b|\bsteady_clock\b")
# Matched on raw text: the name is a string literal, which
# strip_comments_and_strings blanks out of `code`.
METRICS_REGISTRATION = re.compile(
    r"Get(?:Counter|Gauge|DecayedRate|Reservoir)\s*\(\s*\"([^\"]*)\"")
METRIC_NAME_OK = re.compile(r"^fwdecay_[a-z0-9_]+$")
HOTPATH_FUNC = re.compile(r"\b(?:UpdateGroup|UpdateBatch)\s*\(")
HOTPATH_CONTAINER = re.compile(
    r"\bstd\s*::\s*vector\s*<\s*Value\s*>|\bValueColumn\b")

# Analyzer escape hatches (`// fwdecay: <kind>(<reason>)`). The negative
# lookahead keeps `namespace fwdecay::server` out of the match; the
# mandatory `(` mirrors analyze.py, whose escape regexes only fire on
# the parenthesized form (a bare `fwdecay: relaxed-ok` in prose is
# documentation, and an unparenthesized real escape suppresses nothing,
# so the analyzer still reports the underlying finding).
ESCAPE_RE = re.compile(r"\bfwdecay:(?!:)\s*([A-Za-z][\w-]*)\s*\(([^()]*)\)")
ESCAPE_KINDS = frozenset(
    ("relaxed-ok", "lock-order-ok", "hotpath-lock-ok", "taint-ok",
     "hotpath-cold", "coldmap-ok"))
# A reason that is only whitespace or a template placeholder explains
# nothing.
ESCAPE_PLACEHOLDER = re.compile(r"^\s*(<[^>]*>)?\s*$")
# Kind-specific anchors: what the escape must be suppressing, expected
# on the escape's own line or the one below (mirroring analyze.py's
# `annotated()` reach).
ESCAPE_ANCHORS = {
    "relaxed-ok": re.compile(r"\bmemory_order_relaxed\b"),
    "hotpath-lock-ok": re.compile(
        r"\b(?:MutexLock|ReaderMutexLock|lock_guard|unique_lock"
        r"|scoped_lock|shared_lock)\b|\.\s*lock\s*\("),
    "coldmap-ok": re.compile(
        r"\bstd\s*::\s*(?:unordered_)?map\b"
        r"|#\s*include\s*<(?:unordered_)?map>"),
}

# Engine group-table files where node-based maps are banned (coldmap).
COLDMAP_FILES = ("src/dsms/engine.h", "src/dsms/engine.cc")
COLDMAP_BANNED = re.compile(
    r"\bstd\s*::\s*(?:unordered_)?map\b"
    r"|#\s*include\s*<(?:unordered_)?map>")
COLDMAP_ESCAPE = re.compile(r"\bfwdecay:(?!:)\s*coldmap-ok\s*\(")


def check_coldmap(rel: str, text: str, code: str, findings: list) -> None:
    raw_lines = text.split("\n")
    for m in COLDMAP_BANNED.finditer(code):
        idx = code[: m.start()].count("\n")
        # An escape on the use's own line or the line above suppresses.
        reach = "\n".join(raw_lines[max(0, idx - 1): idx + 1])
        if COLDMAP_ESCAPE.search(reach):
            continue
        findings.append(
            (rel, idx + 1,
             "coldmap: node-based map in the engine's group-table code "
             "(the flat open-addressing tables are the hot-path "
             "structure, DESIGN.md §13.1; cold-path uses take "
             "`// fwdecay: coldmap-ok(<reason>)`): "
             f"`{m.group(0).strip()}`"))


def check_escapes(rel: str, text: str, code: str, findings: list) -> None:
    raw_lines = text.split("\n")
    code_lines = code.split("\n")
    for idx, raw in enumerate(raw_lines):
        for m in ESCAPE_RE.finditer(raw):
            line = idx + 1
            kind = m.group(1)
            if kind not in ESCAPE_KINDS:
                findings.append(
                    (rel, line,
                     f"escape: unknown analyzer escape kind `{kind}` "
                     "(a typo here silently suppresses nothing; known: "
                     f"{', '.join(sorted(ESCAPE_KINDS))})"))
                continue
            reason = m.group(2)
            if ESCAPE_PLACEHOLDER.match(reason):
                findings.append(
                    (rel, line,
                     f"escape: `fwdecay: {kind}` without a reason — every "
                     "suppression must say why it is sound: "
                     f"`// fwdecay: {kind}(<reason>)`"))
                continue
            # Stale-suppression check over the escape's reach (its line
            # and the next): the stripped code there must contain the
            # kind's anchor, or at least *some* code to annotate.
            reach_code = "\n".join(code_lines[idx:idx + 2])
            anchor = ESCAPE_ANCHORS.get(kind)
            if anchor is not None:
                if not anchor.search(reach_code):
                    findings.append(
                        (rel, line,
                         f"escape: stale `fwdecay: {kind}` — nothing it "
                         "suppresses on this line or the next (the "
                         "annotated code moved or was deleted)"))
            elif not reach_code.strip():
                findings.append(
                    (rel, line,
                     f"escape: stale `fwdecay: {kind}` — it annotates a "
                     "blank or comment-only line, so analyze.py applies "
                     "it to nothing"))


def match_forward(code: str, i: int, open_ch: str, close_ch: str) -> int:
    """Returns the index of the delimiter closing the one at code[i]
    (assumes code[i] == open_ch), or len(code) when unbalanced."""
    depth = 0
    while i < len(code):
        if code[i] == open_ch:
            depth += 1
        elif code[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return len(code)


def check_hotpath(rel: str, code: str, findings: list) -> None:
    for m in HOTPATH_FUNC.finditer(code):
        params_end = match_forward(code, m.end() - 1, "(", ")")
        # Scan past trailer tokens (const/override/annotation macros) to
        # the body `{`; a `;` first means declaration or call site.
        j = params_end + 1
        while j < len(code) and code[j] not in "{;":
            j += 1
        if j >= len(code) or code[j] == ";":
            continue
        body = code[j:match_forward(code, j, "{", "}")]
        for cm in HOTPATH_CONTAINER.finditer(body):
            # References, span element types and nested-name mentions
            # are reads, not constructions: skip `const ValueColumn`,
            # `ValueColumn&`, and `ValueColumn::Rep`-style qualifiers.
            if body[: cm.start()].rstrip().endswith("const"):
                continue
            tail = body[cm.end():].lstrip()
            if tail.startswith(("&", "::")):
                continue
            line = code[: j + cm.start()].count("\n") + 1
            findings.append(
                (rel, line,
                 "hotpath: Value-container construction inside "
                 "UpdateGroup/UpdateBatch (reuse member scratch; "
                 f"see DESIGN.md §8): `{cm.group(0).strip()}`"))


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line
    structure so reported line numbers stay accurate."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif (c == "'" and 0 < i and i + 1 < n
              and text[i - 1] in "0123456789abcdefABCDEF"
              and text[i + 1] in "0123456789abcdefABCDEF"):
            # C++14 digit separator (60'000), not a char literal: an
            # unmatched open quote here would swallow lines of code.
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def expected_guard(relpath: pathlib.PurePosixPath) -> str:
    parts = list(relpath.parts)
    if parts[0] == "src":  # headers are included as "util/check.h" etc.
        parts = parts[1:]
    stem = "/".join(parts)
    return "FWDECAY_" + re.sub(r"[/.\-]", "_", stem.upper()) + "_"


def check_guard(rel: str, text: str, findings: list) -> None:
    want = expected_guard(pathlib.PurePosixPath(rel))
    m = re.search(r"^#ifndef\s+(\S+)\s*\n#define\s+(\S+)", text, re.M)
    if not m:
        findings.append((rel, 1, f"missing include guard (expected {want})"))
        return
    ifndef_line = text[: m.start()].count("\n") + 1
    for got in (m.group(1), m.group(2)):
        if got != want:
            findings.append(
                (rel, ifndef_line, f"include guard {got}, expected {want}"))
            return
    endif = re.search(r"#endif\s*//\s*(\S+)\s*$", text.rstrip())
    if not endif or endif.group(1) != want:
        findings.append(
            (rel, text.count("\n"), f"#endif missing `// {want}` comment"))


def scan_pattern(rel: str, code: str, pattern: re.Pattern, what: str,
                 findings: list) -> None:
    for m in pattern.finditer(code):
        line = code[: m.start()].count("\n") + 1
        findings.append((rel, line, f"{what}: `{m.group(0).strip()}`"))


def lint_file(root: pathlib.Path, path: pathlib.Path, findings: list) -> None:
    rel = path.relative_to(root).as_posix()
    text = path.read_text(encoding="utf-8")
    code = strip_comments_and_strings(text)

    if path.suffix == ".h":
        check_guard(rel, text, findings)
    if rel not in RANDOM_EXEMPT:
        scan_pattern(rel, code, RANDOM_BANNED,
                     "banned PRNG (use util/random.h Rng)", findings)
    if rel.startswith("src/"):
        scan_pattern(rel, code, THROW_BANNED,
                     "throw in exception-free library code", findings)
    if rel.startswith(("src/", "bench/", "examples/")):
        scan_pattern(rel, code, ASSERT_BANNED,
                     "naked assert (use FWDECAY_CHECK/FWDECAY_DCHECK)",
                     findings)
    if rel.startswith("src/") and rel not in IO_EXEMPT:
        scan_pattern(rel, code, IO_BANNED,
                     "raw file I/O in library code (use util/fault_fs.h)",
                     findings)
    if rel.startswith("src/"):
        check_hotpath(rel, code, findings)
    if rel in COLDMAP_FILES:
        check_coldmap(rel, text, code, findings)
    check_escapes(rel, text, code, findings)
    if rel.startswith("src/dsms/"):
        scan_pattern(rel, code, METRICS_CLOCK_BANNED,
                     "ad-hoc clock read in dsms/ (time through util/timer.h "
                     "Timer or util/metrics.h ScopedTimerSample)", findings)
    if not rel.startswith("tests/"):
        for m in METRICS_REGISTRATION.finditer(text):
            if not METRIC_NAME_OK.match(m.group(1)):
                line = text[: m.start()].count("\n") + 1
                findings.append(
                    (rel, line,
                     "metrics: registered name must match "
                     f"^fwdecay_[a-z0-9_]+$: `{m.group(1)}`"))
    if (rel.startswith(("src/", "bench/", "examples/"))
            and rel not in LOCKING_EXEMPT):
        # pthread/detach is banned beyond src/ too: bench and example
        # binaries are the reproduction entry points, and a detached
        # thread there outlives the measurement it was timing.
        scan_pattern(rel, code, LOCKING_BANNED,
                     "raw pthread / detached thread in library code",
                     findings)
    if rel.startswith("src/") and rel not in LOCKING_EXEMPT:
        # The include path is a string literal, so it must be matched on
        # the raw text (strip_comments_and_strings blanks it in `code`).
        m = LOCKING_PRIMITIVE.search(code)
        if m and not THREAD_ANNOTATIONS_INCLUDE.search(text):
            line = code[: m.start()].count("\n") + 1
            findings.append(
                (rel, line,
                 "concurrency primitive without util/thread_annotations.h "
                 "(use fwdecay::Mutex or include the annotation layer)"))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    args = ap.parse_args()
    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent)

    findings = []
    count = 0
    for top in SOURCE_DIRS:
        for path in sorted((root / top).rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                lint_file(root, path, findings)
                count += 1

    for rel, line, msg in findings:
        print(f"{rel}:{line}: {msg}")
    status = "FAILED" if findings else "OK"
    print(f"lint.py: {count} files scanned, {len(findings)} finding(s) "
          f"[{status}]")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
