#!/usr/bin/env python3
"""Semantic analyzer for fwdecay-specific correctness rules.

These are *model-level* invariants of the forward-decay paper that
neither the compiler nor clang-tidy can express; scripts/lint.py handles
the purely syntactic conventions. Four rules:

  backward-age   Forward decay's whole point (Section IV) is that
                 per-item weights are computed from the *landmark*,
                 g(t_i - L), never from the current time. Arithmetic of
                 the form `now - t_i` (current-time minuend, per-item
                 timestamp subtrahend) is backward decay and belongs
                 only in src/core/decay.h, where the paper's backward
                 baselines are deliberately implemented. Window cutoffs
                 (`now - window`, `now - horizon_`) and stream spans
                 (`now - first_ts_`) are aggregate quantities, not
                 per-item ages, and are not flagged.

  exp-pow        exp()/pow() on decay weights overflows once alpha * n
                 grows past ~709; the sanctioned implementations
                 (core/decay.h's ExponentialG / ShiftFactor and the
                 log-domain samplers) rescale or stay in the log domain.
                 Every exp/pow call site must therefore live in a file
                 on the reviewed allowlist below; new call sites must
                 either route through core/decay.h or be added to the
                 allowlist with a written rationale.

  deser-bounds   In Deserialize()/RestoreFrom() bodies, every
                 container allocation (reserve/resize/assign) must be
                 preceded by a bounds check — either against
                 reader->Remaining() or an explicit numeric cap — so a
                 corrupt length header cannot demand an absurd
                 allocation before any payload byte is validated.

  guarded-by     Every fwdecay::Mutex member must protect something:
                 the file must annotate at least one member with
                 FWDECAY_GUARDED_BY(mu) / FWDECAY_PT_GUARDED_BY(mu) for
                 that mutex, and bare std::mutex members are banned in
                 favor of the annotated wrapper (otherwise the clang
                 -Wthread-safety build proves nothing about the class).

Engines: with python clang bindings + libclang available (CI's clang
job), rules backward-age and exp-pow run on the real AST, which sees
through macros and rules out matches in dead token sequences. Without
them (the default dev container has only gcc), a textual engine runs the
same rule set on comment/string-stripped sources. Both engines share
the deser-bounds and guarded-by logic, which is inherently lexical
(function-extent ordering and member-declaration annotations).

Usage: scripts/analyze.py [--root DIR] [--engine auto|ast|text]
Exit status is 0 when clean, 1 when any finding is reported, 2 when a
requested engine is unavailable.
"""

import argparse
import pathlib
import re
import sys

# ---------------------------------------------------------------------------
# Shared rule configuration
# ---------------------------------------------------------------------------

# Current-time identifiers: a subtraction with one of these on the left
# is age arithmetic.
NOW_IDENTIFIERS = {"now", "t_now", "query_time", "current_time"}

# Per-item timestamp shapes: `t_i`, any `.ts` / `->ts` member access, or
# identifiers that name a tuple/packet/item timestamp. Aggregate
# quantities (window, horizon_, first_ts_, landmark, mid) do not match.
ITEM_TS_RE = re.compile(
    r"^(?:t_i|t_j|(?:[A-Za-z_]\w*(?:\.|->))?ts|item_ts|tuple_ts"
    r"|packet_ts|arrival_ts)$")

# The one sanctioned home of backward-age arithmetic: the paper's
# backward decay functions f(t - t_i) in Definition 1 / Section III.
BACKWARD_AGE_ALLOWED = ("src/core/decay.h",)

# exp/pow allowlist. Each entry is a reviewed decision; see the header
# comment of the file in question for the overflow argument.
EXP_POW_ALLOWED = {
    # The sanctioned decay implementations themselves: ExponentialG
    # works on landmark-relative n with ShiftFactor rescaling; the
    # backward F structs are the paper's baselines.
    "src/core/decay.h",
    # Zipf rejection sampler: exp/log of the skew parameter, not decay
    # weights; arguments are bounded by the harmonic-sum inverse.
    "src/util/zipf.cc",
    # GSQL builtins exp()/pow()/expweight()/polyweight(): expweight
    # bounds its argument with fmod(time, period) by construction.
    "src/dsms/expr.cc",
    # Backward polynomial UDAF weight (age + 1)^-2: magnitude <= 1.
    "src/dsms/udafs.cc",
    # Width sizing ceil(e / eps): constant exp(1).
    "src/sketch/count_min.cc",
    # Level-set geometry b^l: level indices are log_b of observed
    # weights, so the power un-does a log of the same magnitude.
    "src/sketch/dominance_norm.cc",
    # Geometric age-grid knots for the Cohen-Strauss combination.
    "src/sketch/backward_sum.cc",
    # Log-domain sampler helpers: exp() of non-positive log-weight
    # differences (A-ExpJ, Algorithm L, priority sampling), <= 1 by
    # construction.
    "src/sampling/reservoir.h",
    "src/sampling/weighted_reservoir.h",
    "src/sampling/priority_sampling.h",
    "src/sampling/with_replacement.h",
}

EXP_POW_CALL_RE = re.compile(r"(?:\bstd\s*::\s*)?\b(exp|pow)\s*\(")

# Functions whose bodies deserialize untrusted bytes.
DESER_FN_RE = re.compile(r"\b(?:Deserialize|RestoreFrom)\s*\([^;]*$")
ALLOC_RE = re.compile(r"\.\s*(reserve|resize|assign)\s*\(")
BOUNDS_GUARD_RE = re.compile(
    r"Remaining\s*\(|>=?\s*\(?\s*(?:std::(?:uint64_t|size_t|uint32_t)\{1\}"
    r"|1u?l{0,2}\s*<<|0x[0-9a-fA-F]+|\d)")

MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:fwdecay\s*::\s*)?Mutex\s+(\w+)\s*;", re.M)
STD_MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?std\s*::\s*(?:shared_|recursive_)?mutex\s+\w+\s*;",
    re.M)
GUARDED_BY_EXEMPT = ("src/util/thread_annotations.h",)

SRC_SUFFIXES = (".h", ".cc")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving newlines so
    reported line numbers stay accurate (same contract as lint.py)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(code: str, pos: int) -> int:
    return code[:pos].count("\n") + 1


# ---------------------------------------------------------------------------
# Rule implementations (textual core, shared by both engines where the
# rule is inherently lexical)
# ---------------------------------------------------------------------------

BACKWARD_AGE_RE = re.compile(
    r"\b(" + "|".join(sorted(NOW_IDENTIFIERS)) +
    r")\s*-\s*([A-Za-z_][\w]*(?:(?:\.|->)[A-Za-z_]\w*)*)")


def rule_backward_age_text(rel: str, code: str, findings: list) -> None:
    if rel in BACKWARD_AGE_ALLOWED:
        return
    for m in BACKWARD_AGE_RE.finditer(code):
        subtrahend = m.group(2)
        if ITEM_TS_RE.match(subtrahend):
            findings.append(
                (rel, line_of(code, m.start()),
                 f"backward-age: `{m.group(0)}` computes a per-item age "
                 "from the current time; forward decay weighs items as "
                 "g(t_i - L) (core/decay.h)"))


def rule_exp_pow_text(rel: str, code: str, findings: list) -> None:
    if rel in EXP_POW_ALLOWED:
        return
    for m in EXP_POW_CALL_RE.finditer(code):
        findings.append(
            (rel, line_of(code, m.start()),
             f"exp-pow: `{m.group(0).strip()}` outside the overflow-"
             "reviewed allowlist; route decay weights through "
             "core/decay.h (ExponentialG / ShiftFactor) or add this "
             "file to EXP_POW_ALLOWED with a rationale"))


def function_extent(code: str, open_brace: int) -> int:
    """Returns the index one past the matching close brace."""
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def rule_deser_bounds(rel: str, code: str, findings: list) -> None:
    for line_match in re.finditer(r"^.*$", code, re.M):
        if not DESER_FN_RE.search(line_match.group(0)):
            continue
        brace = code.find("{", line_match.start())
        if brace == -1:
            continue  # declaration only
        end = function_extent(code, brace)
        body = code[brace:end]
        for alloc in ALLOC_RE.finditer(body):
            if not BOUNDS_GUARD_RE.search(body[: alloc.start()]):
                findings.append(
                    (rel, line_of(code, brace + alloc.start()),
                     f"deser-bounds: `{alloc.group(0).strip()}` in a "
                     "deserialization body with no preceding bounds "
                     "check (reader->Remaining() or an explicit cap)"))


def rule_guarded_by(rel: str, code: str, findings: list) -> None:
    if rel in GUARDED_BY_EXEMPT:
        return
    for m in STD_MUTEX_MEMBER_RE.finditer(code):
        findings.append(
            (rel, line_of(code, m.start()),
             "guarded-by: bare std::mutex member; use the annotated "
             "fwdecay::Mutex so -Wthread-safety can track it"))
    for m in MUTEX_MEMBER_RE.finditer(code):
        name = m.group(1)
        guarded = re.search(
            r"FWDECAY_(?:PT_)?GUARDED_BY\s*\(\s*" + re.escape(name) +
            r"\s*\)", code)
        if not guarded:
            findings.append(
                (rel, line_of(code, m.start()),
                 f"guarded-by: mutex member `{name}` protects no "
                 "annotated member; add FWDECAY_GUARDED_BY(" + name +
                 ") to the data it guards"))


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------

class TextEngine:
    """Runs all four rules on comment/string-stripped sources."""

    name = "text"

    def analyze(self, rel: str, path: pathlib.Path, findings: list) -> None:
        code = strip_comments_and_strings(
            path.read_text(encoding="utf-8"))
        rule_backward_age_text(rel, code, findings)
        rule_exp_pow_text(rel, code, findings)
        rule_deser_bounds(rel, code, findings)
        rule_guarded_by(rel, code, findings)


class AstEngine:
    """libclang-backed engine: backward-age and exp-pow run on the AST
    (sees through macro expansion, ignores disabled #if regions); the
    lexical rules reuse the shared implementations."""

    name = "ast"

    def __init__(self, root: pathlib.Path):
        import clang.cindex as cindex  # raises ImportError when absent
        self.cindex = cindex
        self.index = cindex.Index.create()  # raises when libclang missing
        self.args = ["-x", "c++", "-std=c++20", "-I", str(root / "src")]

    def analyze(self, rel: str, path: pathlib.Path, findings: list) -> None:
        cindex = self.cindex
        tu = self.index.parse(str(path), args=self.args)
        for cur in tu.cursor.walk_preorder():
            if cur.location.file is None or \
                    cur.location.file.name != str(path):
                continue
            if cur.kind == cindex.CursorKind.BINARY_OPERATOR:
                self._check_backward_age(rel, cur, findings)
            elif cur.kind == cindex.CursorKind.CALL_EXPR:
                self._check_exp_pow(rel, cur, findings)
        code = strip_comments_and_strings(
            path.read_text(encoding="utf-8"))
        rule_deser_bounds(rel, code, findings)
        rule_guarded_by(rel, code, findings)

    def _operands(self, cur):
        kids = list(cur.get_children())
        return kids if len(kids) == 2 else None

    def _spelling(self, node) -> str:
        return "".join(t.spelling for t in node.get_tokens())

    def _check_backward_age(self, rel, cur, findings) -> None:
        if rel in BACKWARD_AGE_ALLOWED:
            return
        ops = self._operands(cur)
        if not ops:
            return
        lhs, rhs = (self._spelling(ops[0]), self._spelling(ops[1]))
        toks = [t.spelling for t in cur.get_tokens()]
        if "-" not in toks:
            return
        if lhs in NOW_IDENTIFIERS and ITEM_TS_RE.match(rhs):
            findings.append(
                (rel, cur.location.line,
                 f"backward-age: `{lhs} - {rhs}` computes a per-item "
                 "age from the current time; forward decay weighs items "
                 "as g(t_i - L) (core/decay.h)"))

    def _check_exp_pow(self, rel, cur, findings) -> None:
        if rel in EXP_POW_ALLOWED:
            return
        ref = cur.referenced
        if ref is not None and ref.spelling in ("exp", "pow"):
            findings.append(
                (rel, cur.location.line,
                 f"exp-pow: call to `{ref.spelling}` outside the "
                 "overflow-reviewed allowlist; route decay weights "
                 "through core/decay.h (ExponentialG / ShiftFactor)"))


def make_engine(kind: str, root: pathlib.Path):
    if kind in ("auto", "ast"):
        try:
            return AstEngine(root)
        except Exception as exc:  # ImportError or libclang load failure
            if kind == "ast":
                print(f"analyze.py: AST engine unavailable: {exc}",
                      file=sys.stderr)
                return None
            print(f"analyze.py: libclang unavailable ({exc.__class__.__name__});"
                  " falling back to the textual engine", file=sys.stderr)
    return TextEngine()


def main() -> int:
    ap = argparse.ArgumentParser(
        description="fwdecay semantic analyzer (see module docstring)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("--engine", choices=("auto", "ast", "text"),
                    default="auto")
    args = ap.parse_args()
    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent)

    engine = make_engine(args.engine, root)
    if engine is None:
        return 2

    findings = []
    count = 0
    for path in sorted((root / "src").rglob("*")):
        if path.suffix in SRC_SUFFIXES and path.is_file():
            rel = path.relative_to(root).as_posix()
            engine.analyze(rel, path, findings)
            count += 1

    for rel, line, msg in findings:
        print(f"{rel}:{line}: {msg}")
    status = "FAILED" if findings else "OK"
    print(f"analyze.py[{engine.name}]: {count} files analyzed, "
          f"{len(findings)} finding(s) [{status}]")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
