#!/usr/bin/env python3
"""Semantic analyzer for fwdecay-specific correctness rules.

These are *model-level* invariants of the forward-decay paper that
neither the compiler nor clang-tidy can express; scripts/lint.py handles
the purely syntactic conventions. Nine rules:

  backward-age   Forward decay's whole point (Section IV) is that
                 per-item weights are computed from the *landmark*,
                 g(t_i - L), never from the current time. Arithmetic of
                 the form `now - t_i` (current-time minuend, per-item
                 timestamp subtrahend) is backward decay and belongs
                 only in src/core/decay.h, where the paper's backward
                 baselines are deliberately implemented. Window cutoffs
                 (`now - window`, `now - horizon_`) and stream spans
                 (`now - first_ts_`) are aggregate quantities, not
                 per-item ages, and are not flagged.

  exp-pow        exp()/pow() on decay weights overflows once alpha * n
                 grows past ~709; the sanctioned implementations
                 (core/decay.h's ExponentialG / ShiftFactor and the
                 log-domain samplers) rescale or stay in the log domain.
                 Every exp/pow call site must therefore live in a file
                 on the reviewed allowlist below; new call sites must
                 either route through core/decay.h or be added to the
                 allowlist with a written rationale.

  deser-bounds   In Deserialize()/RestoreFrom() bodies, every
                 container allocation (reserve/resize/assign) must be
                 preceded by a bounds check — either against
                 reader->Remaining() or an explicit numeric cap — so a
                 corrupt length header cannot demand an absurd
                 allocation before any payload byte is validated.

  guarded-by     Every fwdecay::Mutex member must protect something:
                 the file must annotate at least one member with
                 FWDECAY_GUARDED_BY(mu) / FWDECAY_PT_GUARDED_BY(mu) for
                 that mutex, and bare std::mutex members are banned in
                 favor of the annotated wrapper (otherwise the clang
                 -Wthread-safety build proves nothing about the class).

  lock-order     Global (cross-TU) lock-acquisition graph. Every
                 acquisition made while another lock is held adds an
                 edge held -> acquired; calls made under a lock
                 propagate the callee's transitive acquisitions when
                 the bare callee name resolves to exactly one
                 lock-acquiring definition. Lock identity is
                 Class::member when the member name is owned by exactly
                 one class, else file-qualified. Any cycle in the graph
                 (including a self-edge, i.e. re-acquiring a lock of
                 the same identity while holding one) is a potential
                 deadlock and fails the build — the static complement
                 of the deadlock detector inside util/sched.h's
                 schedule explorer (DESIGN.md §10). Intentional
                 exceptions carry `// fwdecay: lock-order-ok(<reason>)`
                 on the acquisition line or the line above.

  atomics-order  `memory_order_relaxed` is the easiest way to write a
                 racy publish: a relaxed flag store orders nothing.
                 Every relaxed use in src/, bench/ and examples/ must
                 (a) live in a file on the RELAXED_ALLOWED audit list
                 and (b) carry `// fwdecay: relaxed-ok(<reason>)` on
                 the same or previous line, stating why ordering is
                 not needed (tests/ are exempt: racy fixtures are the
                 model checker's job). The audited sites are exactly
                 the ones tests/sched_test.cc explores under
                 -DFWDECAY_SCHED=ON weak-memory simulation.

  hotpath-lock   Mutex acquisition inside the batched ingest hot path —
                 the bodies of UpdateBatch() and Consume() — serializes
                 the very code the batch layer parallelizes. Each such
                 acquisition must be annotated
                 `// fwdecay: hotpath-lock-ok(<reason>)` (e.g. "one
                 acquisition amortized over the whole batch"), so a
                 per-tuple lock cannot creep in silently.

  taint          Summary-based interprocedural dataflow from untrusted
                 bytes to allocation/index sinks (DESIGN.md §12).
                 Sources: ByteReader Read*/ReadString (journal,
                 snapshot, trace and frame bytes all arrive through
                 it), RecvExactly'd socket buffers, and numeric parses
                 (ParseU64/strtoull/...) of untrusted text. Sinks:
                 container resize/reserve/assign arguments, `new T[n]`,
                 memcpy/memmove/memset/strncpy lengths,
                 capacity-taking constructors (vector/string/deque/
                 PacketBatch), loop bounds, and index subscripts. A
                 value is cleared ("sanitized") once it crosses an
                 `if (...)`/FWDECAY_CHECK(...) extent containing a
                 comparison, or a std::min/std::clamp — the repo's
                 hostile-count guard idioms. Per-function summaries
                 (param -> sink, param -> out-param, return taint)
                 carry flows across functions and TUs when a bare
                 callee name resolves to exactly one definition
                 (same silence-over-misattribution discipline as
                 lock-order). Audited escapes carry
                 `// fwdecay: taint-ok(<reason>)` on the sink or call
                 line (or the line above).

  hotpath-purity Walks the call graph from the batched-ingest roots —
                 Consume/ConsumeFiltered, UpdateBatch overrides,
                 EvalPredicateBatch/EvalExprBatch, core AddBatch — and
                 proves no reachable heap allocation (new/make_unique/
                 make_shared/to_string/malloc, owning-container
                 construction, growth of non-scratch locals), no
                 `throw`, no virtual dispatch outside the audited
                 AggState vtable set {Update, UpdateBatch}, and no
                 syscall/clock read. Capacity-retained member scratch
                 (trailing `_`, DESIGN.md §8) and caller-owned `->`
                 receivers are the two sanctioned growth targets. Cold
                 branches carry `// fwdecay: hotpath-cold(<reason>)`
                 on the call or site line: on a call it prunes the
                 walk through that edge, on a site it suppresses that
                 site. Calls resolve when the bare name has exactly one
                 definition; names in the audited vtable set traverse
                 every override (any of them can be the dispatch
                 target). This turns PR 4's "zero per-tuple
                 allocation" claim into a CI-enforced invariant; the
                 SIMD/arena hot-path refactor landed on this audited
                 path and stays gated by it.

Engines: with python clang bindings + libclang available (CI's clang
job), rules backward-age and exp-pow run on the real AST, which sees
through macros and rules out matches in dead token sequences. Without
them (the default dev container has only gcc), a textual engine runs the
same rule set on comment/string-stripped sources. Both engines share
the deser-bounds, guarded-by, lock-order, atomics-order and
hotpath-lock logic, which is inherently lexical (function-extent
ordering, member-declaration annotations, and comment-carried escape
hatches). Pass --compile-commands build/compile_commands.json to give
the AST engine each TU's real flags (CI exports the database once and
shares it between the analyzer jobs); bench/ and examples/ fall back to
the textual rules when no database entry covers them.

Usage: scripts/analyze.py [--root DIR] [--engine auto|ast|text]
                          [--compile-commands PATH] [--selftest]
                          [--rules R1,R2,...] [--jobs N]
                          [--findings-out PATH]
--rules selects a comma-separated subset (default: all). --jobs
parallelizes the per-file rules across TUs with a process pool (the
cross-file fixpoints — lock-order, taint, hotpath-purity — stay in the
parent, fed by the same file walk); per-rule wall time prints with the
summary. --findings-out writes the findings to a file (one
`file:line: message` per line) for CI artifacts.
Exit status is 0 when clean, 1 when any finding is reported, 2 when a
requested engine is unavailable or the selftest fails.
"""

import argparse
import os
import pathlib
import re
import sys
import time

# ---------------------------------------------------------------------------
# Shared rule configuration
# ---------------------------------------------------------------------------

# Current-time identifiers: a subtraction with one of these on the left
# is age arithmetic.
NOW_IDENTIFIERS = {"now", "t_now", "query_time", "current_time"}

# Per-item timestamp shapes: `t_i`, any `.ts` / `->ts` member access, or
# identifiers that name a tuple/packet/item timestamp. Aggregate
# quantities (window, horizon_, first_ts_, landmark, mid) do not match.
ITEM_TS_RE = re.compile(
    r"^(?:t_i|t_j|(?:[A-Za-z_]\w*(?:\.|->))?ts|item_ts|tuple_ts"
    r"|packet_ts|arrival_ts)$")

# The one sanctioned home of backward-age arithmetic: the paper's
# backward decay functions f(t - t_i) in Definition 1 / Section III.
BACKWARD_AGE_ALLOWED = ("src/core/decay.h",)

# exp/pow allowlist. Each entry is a reviewed decision; see the header
# comment of the file in question for the overflow argument.
EXP_POW_ALLOWED = {
    # The sanctioned decay implementations themselves: ExponentialG
    # works on landmark-relative n with ShiftFactor rescaling; the
    # backward F structs are the paper's baselines.
    "src/core/decay.h",
    # Zipf rejection sampler: exp/log of the skew parameter, not decay
    # weights; arguments are bounded by the harmonic-sum inverse.
    "src/util/zipf.cc",
    # GSQL builtins exp()/pow()/expweight()/polyweight(): expweight
    # bounds its argument with fmod(time, period) by construction.
    "src/dsms/expr.cc",
    # Backward polynomial UDAF weight (age + 1)^-2: magnitude <= 1.
    "src/dsms/udafs.cc",
    # Width sizing ceil(e / eps): constant exp(1).
    "src/sketch/count_min.cc",
    # Level-set geometry b^l: level indices are log_b of observed
    # weights, so the power un-does a log of the same magnitude.
    "src/sketch/dominance_norm.cc",
    # Geometric age-grid knots for the Cohen-Strauss combination.
    "src/sketch/backward_sum.cc",
    # Log-domain sampler helpers: exp() of non-positive log-weight
    # differences (A-ExpJ, Algorithm L, priority sampling), <= 1 by
    # construction.
    "src/sampling/reservoir.h",
    "src/sampling/weighted_reservoir.h",
    "src/sampling/priority_sampling.h",
    "src/sampling/with_replacement.h",
    # Figure-reproduction ground truth: exp(fmod(time, 60)), argument
    # bounded by the 60-second landmark period per the paper's setup.
    "bench/bench_fig4_hh_eps.cc",
    "bench/bench_fig5_hh_rate.cc",
}

EXP_POW_CALL_RE = re.compile(r"(?:\bstd\s*::\s*)?\b(exp|pow)\s*\(")

# Functions whose bodies deserialize untrusted bytes.
DESER_FN_RE = re.compile(r"\b(?:Deserialize|RestoreFrom)\s*\([^;]*$")
ALLOC_RE = re.compile(r"\.\s*(reserve|resize|assign)\s*\(")
BOUNDS_GUARD_RE = re.compile(
    r"Remaining\s*\(|>=?\s*\(?\s*(?:std::(?:uint64_t|size_t|uint32_t)\{1\}"
    r"|1u?l{0,2}\s*<<|0x[0-9a-fA-F]+|\d)")

MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:fwdecay\s*::\s*)?Mutex\s+(\w+)\s*;", re.M)
STD_MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?std\s*::\s*(?:shared_|recursive_)?mutex\s+\w+\s*;",
    re.M)
# thread_annotations.h wraps std::mutex itself; sched.{h,cc} are the
# model checker — their std::mutex/condvar ARE the implementation of the
# virtual-lock layer and live outside the annotated discipline by
# design (see scripts/lint.py LOCKING_EXEMPT).
GUARDED_BY_EXEMPT = (
    "src/util/thread_annotations.h",
    "src/util/sched.h",
    "src/util/sched.cc",
)

# lock-order: files whose lock usage implements the locking layers
# themselves (their internal std primitives are not participants in the
# library's lock ordering).
LOCK_ORDER_EXEMPT = GUARDED_BY_EXEMPT

# atomics-order: audited homes of memory_order_relaxed. Every entry is
# covered by the memory-order contract comment in util/metrics.h and by
# the sched_test.cc weak-memory fixtures.
RELAXED_ALLOWED = {
    # Monotone counter cells + the ModelAtomic mirror (scheduler grant
    # serializes mirror stores).
    "src/util/metrics.h",
    "src/util/metrics.cc",
    "src/util/sched.h",
    "src/util/sched.cc",
    # SPSC ring own-cursor loads and quiesced-only accessors; the
    # publish/recycle edges themselves are release/acquire (DESIGN.md
    # §14.1) and tests/spsc_ring_test.cc explores them under the
    # weak-memory model in every build.
    "src/util/spsc_ring.h",
    # Router-level offered-packet counter.
    "src/dsms/engine.h",
    "src/dsms/engine.cc",
    # UDAF state-seed allocator (uniqueness needs only RMW atomicity).
    "src/dsms/udafs.cc",
}

RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
RELAXED_OK_RE = re.compile(r"fwdecay:\s*relaxed-ok\s*\(")
LOCK_ORDER_OK_RE = re.compile(r"fwdecay:\s*lock-order-ok\s*\(")
HOTPATH_LOCK_OK_RE = re.compile(r"fwdecay:\s*hotpath-lock-ok\s*\(")

# Hot-path entry points whose bodies must not take locks silently.
HOTPATH_LOCK_FNS = ("UpdateBatch", "Consume")

# taint / hotpath-purity escape hatches (DESIGN.md §12).
TAINT_OK_RE = re.compile(r"fwdecay:\s*taint-ok\s*\(")
HOTPATH_COLD_RE = re.compile(r"fwdecay:\s*hotpath-cold\s*\(")

SRC_SUFFIXES = (".h", ".cc", ".cpp")
SCAN_DIRS = ("src", "bench", "examples")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving newlines so
    reported line numbers stay accurate (same contract as lint.py)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif (c == "'" and 0 < i and i + 1 < n
              and text[i - 1] in "0123456789abcdefABCDEF"
              and text[i + 1] in "0123456789abcdefABCDEF"):
            # C++14 digit separator (60'000), not a char literal: an
            # unmatched open quote here would swallow lines of code.
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(code: str, pos: int) -> int:
    return code[:pos].count("\n") + 1


def annotated(raw_lines, line: int, marker: re.Pattern) -> bool:
    """True when `marker` appears on `line` (1-based) or the line above
    in the ORIGINAL text — escape hatches live in comments, which the
    stripped code no longer contains."""
    for ln in (line, line - 1):
        if 1 <= ln <= len(raw_lines) and marker.search(raw_lines[ln - 1]):
            return True
    return False


# ---------------------------------------------------------------------------
# Rule implementations (textual core, shared by both engines where the
# rule is inherently lexical)
# ---------------------------------------------------------------------------

BACKWARD_AGE_RE = re.compile(
    r"\b(" + "|".join(sorted(NOW_IDENTIFIERS)) +
    r")\s*-\s*([A-Za-z_][\w]*(?:(?:\.|->)[A-Za-z_]\w*)*)")


def rule_backward_age_text(rel: str, code: str, findings: list) -> None:
    if rel in BACKWARD_AGE_ALLOWED:
        return
    for m in BACKWARD_AGE_RE.finditer(code):
        subtrahend = m.group(2)
        if ITEM_TS_RE.match(subtrahend):
            findings.append(
                (rel, line_of(code, m.start()),
                 f"backward-age: `{m.group(0)}` computes a per-item age "
                 "from the current time; forward decay weighs items as "
                 "g(t_i - L) (core/decay.h)"))


def rule_exp_pow_text(rel: str, code: str, findings: list) -> None:
    if rel in EXP_POW_ALLOWED:
        return
    for m in EXP_POW_CALL_RE.finditer(code):
        findings.append(
            (rel, line_of(code, m.start()),
             f"exp-pow: `{m.group(0).strip()}` outside the overflow-"
             "reviewed allowlist; route decay weights through "
             "core/decay.h (ExponentialG / ShiftFactor) or add this "
             "file to EXP_POW_ALLOWED with a rationale"))


def function_extent(code: str, open_brace: int) -> int:
    """Returns the index one past the matching close brace."""
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def rule_deser_bounds(rel: str, code: str, findings: list) -> None:
    for line_match in re.finditer(r"^.*$", code, re.M):
        if not DESER_FN_RE.search(line_match.group(0)):
            continue
        brace = code.find("{", line_match.start())
        if brace == -1:
            continue  # declaration only
        end = function_extent(code, brace)
        body = code[brace:end]
        for alloc in ALLOC_RE.finditer(body):
            if not BOUNDS_GUARD_RE.search(body[: alloc.start()]):
                findings.append(
                    (rel, line_of(code, brace + alloc.start()),
                     f"deser-bounds: `{alloc.group(0).strip()}` in a "
                     "deserialization body with no preceding bounds "
                     "check (reader->Remaining() or an explicit cap)"))


def rule_guarded_by(rel: str, code: str, findings: list) -> None:
    if rel in GUARDED_BY_EXEMPT:
        return
    for m in STD_MUTEX_MEMBER_RE.finditer(code):
        findings.append(
            (rel, line_of(code, m.start()),
             "guarded-by: bare std::mutex member; use the annotated "
             "fwdecay::Mutex so -Wthread-safety can track it"))
    for m in MUTEX_MEMBER_RE.finditer(code):
        name = m.group(1)
        guarded = re.search(
            r"FWDECAY_(?:PT_)?GUARDED_BY\s*\(\s*" + re.escape(name) +
            r"\s*\)", code)
        if not guarded:
            findings.append(
                (rel, line_of(code, m.start()),
                 f"guarded-by: mutex member `{name}` protects no "
                 "annotated member; add FWDECAY_GUARDED_BY(" + name +
                 ") to the data it guards"))


def rule_atomics_order(rel: str, raw: str, code: str, findings: list,
                       allowed=None) -> None:
    allowed = RELAXED_ALLOWED if allowed is None else allowed
    raw_lines = raw.splitlines()
    for m in RELAXED_RE.finditer(code):
        line = line_of(code, m.start())
        if rel not in allowed:
            findings.append(
                (rel, line,
                 "atomics-order: memory_order_relaxed outside the "
                 "audited allowlist; use acq/rel (or seq_cst) or add "
                 "the file to RELAXED_ALLOWED after review"))
        elif not annotated(raw_lines, line, RELAXED_OK_RE):
            findings.append(
                (rel, line,
                 "atomics-order: relaxed use without a "
                 "`// fwdecay: relaxed-ok(<reason>)` annotation on "
                 "this or the previous line"))


# --- lock-order + hotpath-lock machinery ------------------------------------

# `class X : public Y {` / `struct X {`; the extent maps member mutexes
# to their owning class for stable lock identities.
CLASS_DEF_RE = re.compile(
    r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{;()]*)?\{")
ANY_MUTEX_MEMBER_RE = re.compile(
    r"(?:^|[;{])\s*(?:mutable\s+)?(?:fwdecay\s*::\s*)?"
    r"(?:Mutex|sched\s*::\s*ModelMutex|std\s*::\s*(?:shared_|recursive_)?"
    r"mutex)\s+(\w+)\s*;",
    re.M)

# A function definition: name(params) [trailers] [: init-list] {
FUNC_DEF_RE = re.compile(
    r"\b(~?[A-Za-z_]\w*)\s*\(((?:[^;{}()]|\([^()]*\))*)\)\s*"
    r"((?:const|noexcept|final|override|mutable"
    r"|FWDECAY_\w+\s*\((?:[^()]|\([^()]*\))*\))\s*)*"
    r"(?:->\s*[\w:<>&*,\s]+?)?(?::[^{;]*)?\{")
CONTROL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "new", "delete", "do", "else", "case", "operator"))

# RAII acquisition: `MutexLock lock(expr)` and the std lock guards. Only
# the paren form (the brace form would desync the block-depth scan).
RAII_LOCK_RE = re.compile(
    r"\b(?:MutexLock|ModelMutexLock"
    r"|(?:std\s*::\s*)?(?:lock_guard|unique_lock|scoped_lock)"
    r"\s*(?:<[^<>]*>)?)\s+\w+\s*\(\s*([^,();]+)")
EXPLICIT_LOCK_RE = re.compile(
    r"([\w\]](?:[\w.\->\[\]]*?)?)\s*(?:\.|->)\s*Lock\s*\(\s*\)")
EXPLICIT_UNLOCK_RE = re.compile(
    r"([\w\]](?:[\w.\->\[\]]*?)?)\s*(?:\.|->)\s*Unlock\s*\(\s*\)")
# Bare (unqualified) call names only: `Helper(x)` propagates, but
# `obj.size()` / `ptr->Consume()` / `ns::Get()` do not — a method call
# on another object is exactly where bare-name resolution would
# misattribute the callee (e.g. resolve `reservoir_.size()` to the
# locking facade's own size() and fabricate a self-deadlock).
CALL_SITE_RE = re.compile(r"(?<![\w.:>])([A-Za-z_]\w*)\s*\(")
MEMBER_NAME_RE = re.compile(r"([A-Za-z_]\w*)(?:\s*\(\s*\))?\s*$")


def lock_member_name(expr: str):
    """`shard->mu` -> `mu`, `*guard_` -> `guard_`; None when the
    expression has no trailing identifier to name the lock by."""
    m = MEMBER_NAME_RE.search(expr.strip())
    return m.group(1) if m else None


class _Func:
    __slots__ = ("name", "rel", "direct", "calls", "trans", "pending")

    def __init__(self, name, rel):
        self.name = name
        self.rel = rel
        self.direct = set()   # lock labels acquired anywhere in the body
        self.calls = set()    # bare callee names seen in the body
        self.trans = set()    # transitive closure, filled by fixpoint
        self.pending = []     # (held_labels, callee, line) call-under-lock


class LockOrderAnalysis:
    """Cross-file pass: feed every file with add_file(), then finish().

    Pass 1 (during add_file) records, per function definition, the lock
    acquisitions (with the held-set at each acquisition, yielding direct
    nesting edges) and the calls made while locks are held. Pass 2
    (finish) runs a fixpoint over the call graph so a call chain
    f -held A-> g -> h -acquires B- contributes the edge A -> B, then
    reports every cycle in the resulting acquisition graph.
    """

    def __init__(self):
        self.member_owners = {}   # member name -> set of class names
        self.files = []           # (rel, raw, code), scanned in finish()
        self.funcs = []
        self.by_name = {}         # bare name -> [_Func]
        self.edges = {}           # (a, b) -> (rel, line) first witness

    def add_file(self, rel: str, raw: str, code: str) -> None:
        """Collects mutex-member ownership; function bodies are scanned
        in finish(), once ownership is complete across every file (a
        lock used in a .cc must resolve to the class declared in the
        .h, whatever the scan order)."""
        if rel in LOCK_ORDER_EXEMPT:
            return
        self.files.append((rel, raw, code))
        classes = []  # (name, start, end) innermost-wins lookup
        for m in CLASS_DEF_RE.finditer(code):
            brace = code.find("{", m.start())
            classes.append((m.group(1), brace, function_extent(code, brace)))
        for m in ANY_MUTEX_MEMBER_RE.finditer(code):
            owner = None
            best = None
            for name, start, end in classes:
                if start <= m.start() < end and \
                        (best is None or end - start < best):
                    owner, best = name, end - start
            if owner:
                self.member_owners.setdefault(
                    m.group(1), set()).add(owner)

    def _label(self, rel: str, member):
        if member is None:
            return None
        owners = self.member_owners.get(member, set())
        if len(owners) == 1:
            return f"{next(iter(owners))}::{member}"
        # Zero or ambiguous owners: qualify by file so unrelated locks
        # that merely share a member name cannot alias into one node.
        return f"{rel.rsplit('/', 1)[-1]}:{member}"

    def _scan_function(self, rel, fn_name, code, brace, end, raw_lines):
        body = code[brace:end]
        func = _Func(fn_name, rel)
        events = []
        for i, c in enumerate(body):
            if c == "{":
                events.append((i, "open", None))
            elif c == "}":
                events.append((i, "close", None))
        for m in RAII_LOCK_RE.finditer(body):
            events.append((m.start(), "lock", lock_member_name(m.group(1))))
        for m in EXPLICIT_LOCK_RE.finditer(body):
            events.append((m.start(), "lock", lock_member_name(m.group(1))))
        for m in EXPLICIT_UNLOCK_RE.finditer(body):
            events.append(
                (m.start(), "unlock", lock_member_name(m.group(1))))
        for m in CALL_SITE_RE.finditer(body):
            if m.group(1) not in CONTROL_KEYWORDS:
                events.append((m.start(), "call", m.group(1)))
        events.sort(key=lambda e: (e[0], e[1] != "close"))

        depth = 0
        held = []  # (label-or-None, entry depth); None = annotated escape
        for pos, kind, data in events:
            if kind == "open":
                depth += 1
            elif kind == "close":
                depth -= 1
                while held and held[-1][1] > depth:
                    held.pop()
            elif kind == "lock":
                line = line_of(code, brace + pos)
                if annotated(raw_lines, line, LOCK_ORDER_OK_RE):
                    held.append((None, depth))
                    continue
                label = self._label(rel, data)
                for h, _ in held:
                    if h is not None:
                        self.edges.setdefault((h, label), (rel, line))
                if label is not None:
                    func.direct.add(label)
                held.append((label, depth))
            elif kind == "unlock":
                label = self._label(rel, data)
                for i in range(len(held) - 1, -1, -1):
                    if held[i][0] == label:
                        del held[i]
                        break
            elif kind == "call":
                func.calls.add(data)
                held_labels = tuple(h for h, _ in held if h is not None)
                if held_labels:
                    func.pending.append(
                        (held_labels, data, line_of(code, brace + pos)))
        self.funcs.append(func)
        self.by_name.setdefault(fn_name, []).append(func)

    def _resolve(self, callee: str):
        """The transitive acquisitions of a bare callee name — but only
        when exactly one definition of that name acquires locks, so
        overload/shadow ambiguity can silence but never misattribute."""
        acquiring = [f for f in self.by_name.get(callee, ()) if f.trans]
        return acquiring[0].trans if len(acquiring) == 1 else set()

    def finish(self, findings: list) -> None:
        for rel, raw, code in self.files:
            raw_lines = raw.splitlines()
            for m in FUNC_DEF_RE.finditer(code):
                name = m.group(1)
                if name in CONTROL_KEYWORDS:
                    continue
                brace = code.find("{", m.end() - 1)
                end = function_extent(code, brace)
                self._scan_function(rel, name, code, brace, end, raw_lines)
        for f in self.funcs:
            f.trans = set(f.direct)
        changed = True
        while changed:
            changed = False
            for f in self.funcs:
                for callee in f.calls:
                    if callee == f.name:
                        continue
                    extra = self._resolve(callee) - f.trans
                    if extra:
                        f.trans |= extra
                        changed = True
        for f in self.funcs:
            for held_labels, callee, line in f.pending:
                for target in self._resolve(callee):
                    for h in held_labels:
                        self.edges.setdefault((h, target), (f.rel, line))

        adj = {}
        for (a, b) in self.edges:
            adj.setdefault(a, set()).add(b)
        reported = set()
        for (a, b), (rel, line) in sorted(
                self.edges.items(), key=lambda kv: (kv[1], kv[0])):
            cycle = self._path(adj, b, a)
            if cycle is None:
                continue
            nodes = frozenset(cycle) | {a}
            if nodes in reported:
                continue
            reported.add(nodes)
            chain = " -> ".join([a, b] + cycle[1:] + ([a] if a != b else []))
            findings.append(
                (rel, line,
                 f"lock-order: acquisition cycle {chain}; a thread "
                 "holding one side while another holds the other "
                 "deadlocks — impose a single order or annotate with "
                 "`// fwdecay: lock-order-ok(<reason>)`"))

    @staticmethod
    def _path(adj, src, dst):
        """BFS path src..dst (inclusive) or None."""
        if src == dst:
            return [src]
        parent = {src: None}
        queue = [src]
        while queue:
            cur = queue.pop(0)
            for nxt in adj.get(cur, ()):
                if nxt in parent:
                    continue
                parent[nxt] = cur
                if nxt == dst:
                    path = [nxt]
                    while parent[path[-1]] is not None:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                queue.append(nxt)
        return None


def rule_hotpath_lock(rel: str, raw: str, code: str, findings: list) -> None:
    raw_lines = raw.splitlines()
    for m in FUNC_DEF_RE.finditer(code):
        if m.group(1) not in HOTPATH_LOCK_FNS:
            continue
        brace = code.find("{", m.end() - 1)
        end = function_extent(code, brace)
        body = code[brace:end]
        sites = [lm.start() for lm in RAII_LOCK_RE.finditer(body)]
        sites += [lm.start() for lm in EXPLICIT_LOCK_RE.finditer(body)]
        for pos in sorted(sites):
            line = line_of(code, brace + pos)
            if not annotated(raw_lines, line, HOTPATH_LOCK_OK_RE):
                findings.append(
                    (rel, line,
                     f"hotpath-lock: mutex acquisition inside "
                     f"{m.group(1)}() — the batched hot path; annotate "
                     "`// fwdecay: hotpath-lock-ok(<reason>)` if the "
                     "lock is amortized per batch, or move it out"))


# --- taint + hotpath-purity: interprocedural dataflow ------------------------
#
# Both passes run on the comment/string-stripped text shared by the two
# engines: the flows they track (byte reads into locals, guard extents,
# sink extents, bare call sites) are positional-lexical exactly like the
# lock-order pass, so the analysis — and its results — are identical
# with and without libclang. Calls resolve only when the bare name has
# exactly one definition across the tree (silence over misattribution).

# Untrusted-byte sources. ByteReader is the single decode primitive of
# the repo (journal, snapshot, frame, trace and sketch bytes all arrive
# through it), so Read*(…) by NAME is a source wherever it appears —
# including bare calls inside ByteReader itself.
TAINT_READ_RE = re.compile(
    r"\bRead(?:U8|U32|U64|I64|Double)\s*\(\s*(&?\s*[\w.\->\[\]]+)\s*\)")
TAINT_READSTR_RE = re.compile(
    r"\bReadString\s*\(\s*(&?\s*[\w.\->\[\]]+)\s*\)")
# RecvExactly(sock, buf, n, ...): buf holds raw socket bytes.
TAINT_RECV_RE = re.compile(r"\bRecvExactly\s*\(")
# FaultFs::ReadFile(path, &bytes, error): bytes holds raw on-disk
# journal/snapshot/manifest content, as hostile as the socket's.
TAINT_FILEREAD_RE = re.compile(r"\bReadFile\s*\(")
# Numeric parses of untrusted text: the per-digit overflow guard inside
# bounds the *arithmetic*, not the magnitude — the result is as hostile
# as the text it came from.
PARSE_FNS = frozenset({
    "ParseU64", "ParseU64Flag", "ParseI64", "strtoull", "strtoul",
    "strtoll", "strtol", "atoi", "atol", "atoll", "stoul", "stoull",
    "stoi", "stol",
})
TAINT_PARSE_RE = re.compile(
    r"\b(?:" + "|".join(sorted(PARSE_FNS)) + r")\s*\(")
# memcpy(dst, src, n): decodes scalars out of a raw byte buffer.
TAINT_MEMCPY_RE = re.compile(
    r"\b(?:std\s*::\s*)?(memcpy|memmove|memset|strncpy)\s*\(")

# Sinks: where a hostile magnitude becomes an allocation, a copy length,
# a loop trip count, or an index.
TAINT_ALLOC_SINK_RE = re.compile(
    r"(?:\.|->)\s*(resize|reserve|assign)\s*\(")
TAINT_NEW_SINK_RE = re.compile(r"\bnew\s+[\w:<>\s]+\[")
TAINT_CTOR_SINK_RE = re.compile(
    r"\b(vector|string|deque|PacketBatch|ValueColumn)\s*"
    r"(?:<[^;(){}]*>)?\s+(\w+)\s*\(")
TAINT_LOOP_RE = re.compile(r"\b(for|while)\s*\(")
TAINT_INDEX_RE = re.compile(r"[\w\)\]]\s*\[")

# Sanitizer extents: an `if`/CHECK condition containing a comparison, or
# a min/clamp, clears every variable named inside it from that point on.
TAINT_GUARD_RE = re.compile(
    r"\b(?:if|FWDECAY_D?CHECK(?:_[A-Z]+)?)\s*\(|"
    r"\bstd\s*::\s*(?:min|clamp)\s*(?:<[^<>;(){]*>)?\s*\(")
TAINT_GUARD_ALWAYS_RE = re.compile(r"\bstd\s*::\s*(?:min|clamp)\b")
# Comparison presence, ignoring `->` and template argument lists.
_CMP_RE = re.compile(r"(?<![<>\-])(?:[<>]=?|[!=]=)(?![<>])")

TAINT_ASSIGN_RE = re.compile(
    r"([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*|\[[^\[\]]*\])*)\s*"
    r"(?:(\+|-|\*|/|%|\||&|\^|<<|>>)\s*)?=(?![=])")
TAINT_RETURN_RE = re.compile(r"\breturn\b([^;]*);")
# Accessors of a byte/char buffer that yield bounded values, not the
# buffer's hostile length/content: size() is clamped by what was
# actually received, a single byte is 0..255.
_CONTENT_SAFE_SUFFIX_RE = re.compile(
    r"\s*\.\s*(?:size|length|empty|data|c_str|begin|end|front|back)"
    r"\s*\(|\s*\[")
_CONTENT_LOOSE_SUFFIX_RE = re.compile(
    r"\s*\.\s*(?:size|length|empty)\s*\(")

_CONTENT_TYPE_RE = re.compile(
    r"\bstring\b|\bchar\b|u?int8_t\s*(?:\*|\s*>|const)")


def paren_extent(code: str, open_paren: int) -> int:
    """Index of the ')' matching code[open_paren] == '('."""
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def split_top_args(text: str):
    """Splits an argument list on top-level commas."""
    args, depth, start = [], 0, 0
    for i, c in enumerate(text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            args.append(text[start:i])
            start = i + 1
    args.append(text[start:])
    return args


def expr_root(text: str):
    """`&out->seq` -> `out->seq`, `&hdr.len` -> `hdr.len`; the
    normalized member path a taint key names, or None."""
    m = re.match(r"[\s&*(]*([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)",
                 text)
    return re.sub(r"\s+", "", m.group(1)) if m else None


def _key_re(key: str) -> re.Pattern:
    return re.compile(r"(?<![\w.>])" + re.escape(key) + r"(?!\w)")


_MEMBER_CHAIN_RE = re.compile(r"(?:\s*(?:\.|->)\s*\w+)+")


def _member_expr(key: str, text: str, end: int) -> str:
    """The full dotted member expression at an occurrence of `key`
    ending at `end`, normalized (whitespace removed, -> folded to .) —
    `m.floor` and `m->floor` compare equal, and a guard on `m.floor`
    does not launder `m.active`."""
    m = _MEMBER_CHAIN_RE.match(text, end)
    if not m:
        return key
    return key + re.sub(r"\s+", "", m.group(0)).replace("->", ".")


_VALUE_OPAQUE_RE = re.compile(
    r"(?:[\w\[\]\.]|->)*\b(?:[Hh]ash\w*|sizeof)\s*\([^()]*\)")


def _strip_value_opaque(text: str) -> str:
    """sizeof(...) and Hash*(...) results carry no attacker-steerable
    magnitude (a hash of hostile bytes is not a hostile length); strip
    them innermost-first so their arguments stop contributing labels
    to the surrounding expression."""
    prev = None
    while prev != text:
        prev = text
        text = _VALUE_OPAQUE_RE.sub("", text)
    return text


class _TaintFunc:
    __slots__ = ("key", "name", "rel", "brace", "end", "params",
                 "body", "raw_lines", "line_base")

    def __init__(self, key, name, rel, brace, end, params, body,
                 raw_lines, line_base):
        self.key = key
        self.name = name
        self.rel = rel
        self.brace = brace
        self.end = end
        self.params = params      # [(type_text, name, is_out)]
        self.body = body
        self.raw_lines = raw_lines
        self.line_base = line_base  # line of the opening brace, 1-based


class _TaintSummary:
    """What a caller needs to know about a function: which parameters
    reach sinks unguarded, which out-params it writes tainted values
    through, and whether its return value is tainted."""

    def __init__(self):
        self.param_sinks = {}   # idx -> frozenset of "desc @ rel:line"
        self.out_writes = {}    # idx -> frozenset of labels
        self.return_labels = frozenset()

    def state(self):
        return (tuple(sorted((k, v) for k, v in self.param_sinks.items())),
                tuple(sorted((k, v) for k, v in self.out_writes.items())),
                self.return_labels)


def parse_params(params_text: str):
    """[(type_text, name, is_out_param)] for a definition's parameter
    list; unnamed and empty parameters are skipped in place (the index
    still advances so summaries line up with call-site arguments)."""
    out = []
    for piece in split_top_args(params_text):
        piece = piece.split("=", 1)[0].strip()
        m = re.search(r"([A-Za-z_]\w*)\s*$", piece)
        if not m or m.group(1) == piece or piece == "void":
            out.append(("", None, False))
            continue
        ptype = piece[: m.start()].strip()
        is_out = "*" in ptype or ("&" in ptype and "const" not in ptype)
        out.append((ptype, m.group(1), is_out))
    return out


class TaintAnalysis:
    """Cross-file pass: add_file() every file, then finish().

    Each function body is scanned as an ordered event stream — sources,
    assignments, guard-extent exits, sinks, calls, returns — over an
    environment mapping member paths to (kind, labels). Kind `val` is a
    number decoded from untrusted bytes (hostile as a length/index);
    kind `content` is a byte/char buffer (hostile bytes, but its size()
    is bounded by what actually arrived, so only values *derived* from
    it — an indexed byte parse, a memcpy'd scalar — become `val`).
    Labels are `wire` (definitely attacker-reachable) and `p<i>`
    (flows from parameter i — a summary fact, not yet a finding). A
    finding fires only when `wire` reaches a sink with no guard extent
    crossing and no `// fwdecay: taint-ok(<reason>)` annotation."""

    MAX_PASSES = 10

    def __init__(self):
        self.files = []
        self.funcs = []
        self.by_name = {}
        self.summaries = {}
        self._sanitized = set()  # per-function, reset in _analyze_func

    def add_file(self, rel: str, raw: str, code: str) -> None:
        self.files.append((rel, raw, code))

    def _collect(self) -> None:
        for rel, raw, code in self.files:
            raw_lines = raw.splitlines()
            for m in FUNC_DEF_RE.finditer(code):
                name = m.group(1)
                if name in CONTROL_KEYWORDS:
                    continue
                brace = code.find("{", m.end() - 1)
                end = function_extent(code, brace)
                func = _TaintFunc(
                    (rel, name, brace), name, rel, brace, end,
                    parse_params(m.group(2)), code[brace:end], raw_lines,
                    line_of(code, brace))
                self.funcs.append(func)
                self.by_name.setdefault(name, []).append(func)

    def _unique_def(self, name: str):
        defs = self.by_name.get(name, ())
        return defs[0] if len(defs) == 1 else None

    # -- per-function event scan ------------------------------------

    def _guards(self, body: str):
        """[(start, end, always)] extents that sanitize; `always` skips
        the comparison-operator requirement (min/clamp bound by
        construction)."""
        out = []
        for m in TAINT_GUARD_RE.finditer(body):
            op = body.find("(", m.start())
            if op == -1:
                continue
            close = paren_extent(body, op)
            always = bool(TAINT_GUARD_ALWAYS_RE.match(body, m.start())) \
                or bool(re.match(r"FWDECAY_D?CHECK_[A-Z]",
                                 body[m.start():m.start() + 24]))
            text = body[op:close + 1]
            # Strip template argument lists (`static_cast<std::u32>`)
            # before testing for a comparison; `&` stays out of the
            # class so `a < x && b > y` is not mistaken for one.
            if always or _CMP_RE.search(re.sub(r"<[\w:\s,*]*>", "", text)):
                out.append((op, close, text))
        return out

    def _sinks(self, body: str):
        """[(pos, desc, extent_text)]"""
        out = []
        for m in TAINT_ALLOC_SINK_RE.finditer(body):
            op = body.find("(", m.end() - 1)
            out.append((m.start(), f"{m.group(1)}()",
                        body[op + 1:paren_extent(body, op)]))
        for m in TAINT_NEW_SINK_RE.finditer(body):
            close = body.find("]", m.end())
            if close != -1:
                out.append((m.start(), "new[]", body[m.end():close]))
        for m in TAINT_MEMCPY_RE.finditer(body):
            op = body.find("(", m.end() - 1)
            args = split_top_args(body[op + 1:paren_extent(body, op)])
            if len(args) >= 3:
                out.append((m.start(), f"{m.group(1)}() length", args[2]))
        for m in TAINT_CTOR_SINK_RE.finditer(body):
            op = body.find("(", m.end() - 1)
            argtext = body[op + 1:paren_extent(body, op)]
            # Iterator-range construction copies an existing extent —
            # the size is bounded by the source, not a hostile count.
            if re.search(r"[.>]\s*c?(?:begin|end)\s*\(", argtext):
                continue
            out.append((m.start(), f"{m.group(1)} capacity", argtext))
        for m in TAINT_LOOP_RE.finditer(body):
            op = body.find("(", m.end() - 1)
            if op == -1:
                continue
            text = body[op + 1:paren_extent(body, op)]
            if m.group(1) == "for":
                parts = text.split(";")
                if len(parts) < 3:
                    continue  # range-for: bounded by the container
                text = parts[1]
            out.append((m.start(), "loop bound", text))
        for m in TAINT_INDEX_RE.finditer(body):
            op = m.end() - 1
            close = body.find("]", op)
            if close != -1:
                inner = body[op + 1:close]
                if re.search(r"[A-Za-z_]", inner):
                    out.append((m.start(), "index", inner))
        return out

    def _labels_in(self, text: str, env: dict):
        """(labels, kind) of an expression under env."""
        text = _strip_value_opaque(text)
        labels, saw_val, saw_content = set(), False, False
        for key, (kind, ls) in env.items():
            for m in _key_re(key).finditer(text):
                if kind == "content":
                    if _CONTENT_SAFE_SUFFIX_RE.match(text, m.end()):
                        continue
                    labels |= ls
                    saw_content = True
                else:
                    if _member_expr(key, text, m.end()) in \
                            self._sanitized:
                        continue
                    labels |= ls
                    saw_val = True
        return labels, ("content" if saw_content and not saw_val
                        else "val")

    def _content_labels_in(self, text: str, env: dict):
        text = _strip_value_opaque(text)
        labels = set()
        for key, (kind, ls) in env.items():
            if kind != "content":
                continue
            for m in _key_re(key).finditer(text):
                if _CONTENT_LOOSE_SUFFIX_RE.match(text, m.end()):
                    continue
                labels |= ls
        return labels

    def _analyze_func(self, func, emit):
        """One pass over a body; emit is None (summary-only passes) or
        the findings list (final pass). Returns the new summary."""
        body = func.body
        self._sanitized = set()
        env = {}
        for i, (ptype, pname, _) in enumerate(func.params):
            if pname is None:
                continue
            kind = ("content" if _CONTENT_TYPE_RE.search(ptype)
                    else "val")
            env[pname] = (kind, frozenset({f"p{i}"}))
        summary = _TaintSummary()
        guards = self._guards(body)

        events = []
        for m in TAINT_READ_RE.finditer(body):
            events.append((m.start(), 0, "source",
                           ("val", expr_root(m.group(1)))))
        for m in TAINT_READSTR_RE.finditer(body):
            events.append((m.start(), 0, "source",
                           ("content", expr_root(m.group(1)))))
        for regexp in (TAINT_RECV_RE, TAINT_FILEREAD_RE):
            for m in regexp.finditer(body):
                op = body.find("(", m.end() - 1)
                args = split_top_args(
                    body[op + 1:paren_extent(body, op)])
                if len(args) >= 2:
                    events.append((m.start(), 0, "source",
                                   ("content", expr_root(args[1]))))
        # Paren construction from an untrusted buffer propagates:
        # `std::string text(bytes.begin(), bytes.end())`.
        for m in TAINT_CTOR_SINK_RE.finditer(body):
            op = body.find("(", m.end() - 1)
            events.append((m.start(), 1, "ctor",
                           (m.group(2),
                            body[op + 1:paren_extent(body, op)])))
        for m in TAINT_ASSIGN_RE.finditer(body):
            stop = len(body)
            for ch in ";{}":
                p = body.find(ch, m.end())
                if p != -1:
                    stop = min(stop, p)
            events.append((m.start(), 1, "assign",
                           (re.sub(r"\s+", "", m.group(1)),
                            m.group(2), body[m.end():stop])))
        for start, close, text in guards:
            events.append((close, 2, "guard", text))
        for pos, desc, text in self._sinks(body):
            events.append((pos, 3, "sink", (desc, text)))
        # Bare and member call sites both apply summaries; both resolve
        # only on a globally unique definition name, so a method call
        # on another object silences rather than misattributes.
        for regexp in (CALL_SITE_RE, MEMBER_CALL_RE):
            for m in regexp.finditer(body):
                if m.group(1) in CONTROL_KEYWORDS:
                    continue
                op = body.find("(", m.end() - 1)
                events.append((m.start(), 4, "call",
                               (m.group(1),
                                body[op + 1:paren_extent(body, op)])))
        for m in TAINT_RETURN_RE.finditer(body):
            events.append((m.start(), 5, "return", m.group(1)))
        events.sort(key=lambda e: (e[0], e[1]))

        def guarded_here(pos, key_or_text):
            """True when pos sits inside a guard extent that itself
            names the value — `if (n < cap && v[n])` both bounds and
            uses n; the use is governed by the bound."""
            for start, close, text in guards:
                if start <= pos <= close and \
                        _key_re(key_or_text).search(text):
                    return True
            return False

        def record_out_write(path, labels):
            root = path.split(".")[0].split("->")[0]
            for i, (_, pname, is_out) in enumerate(func.params):
                if pname == root and is_out:
                    summary.out_writes[i] = frozenset(
                        summary.out_writes.get(i, frozenset()) | labels)

        def taint(path, kind, labels):
            if not path or not labels:
                return
            prev = env.get(path)
            if prev:
                labels = labels | prev[1]
                kind = prev[0] if prev[0] == "content" else kind
            env[path] = (kind, frozenset(labels))

        for pos, _, etype, data in events:
            if etype == "source":
                kind, path = data
                if path:
                    env[path] = (kind, frozenset({"wire"}))
                    record_out_write(path, {"wire"})
            elif etype == "assign":
                lhs, op, rhs = data
                labels, kind = self._labels_in(rhs, env)
                for m in CALL_SITE_RE.finditer(rhs):
                    callee = self._unique_def(m.group(1))
                    summ = callee and self.summaries.get(callee.key)
                    if summ and summ.return_labels:
                        cp = rhs.find("(", m.end() - 1)
                        cargs = split_top_args(
                            rhs[cp + 1:paren_extent(rhs, cp)])
                        labels |= self._translate(
                            summ.return_labels, cargs, env)
                if TAINT_PARSE_RE.search(rhs):
                    cl = self._content_labels_in(rhs, env)
                    if cl:
                        labels |= cl
                        kind = "val"
                if labels:
                    taint(lhs, kind, labels)
                    record_out_write(lhs, labels)
                elif op is None and "." not in lhs and "->" not in lhs:
                    env.pop(lhs, None)  # strong update: `len = 0;`
            elif etype == "ctor":
                name, argtext = data
                cl = self._content_labels_in(argtext, env)
                if cl:
                    taint(name, "content", cl)
            elif etype == "guard":
                # Only `val` keys are sanitized: a comparison bounds a
                # hostile *number*. A content buffer compared against a
                # magic constant is still hostile bytes afterwards.
                # Member granularity: a guard naming only `m.floor`
                # clears that exact path, not the whole struct.
                for key in [k for k, (kind, _) in env.items()
                            if kind == "val"]:
                    occ = [_member_expr(key, data, m.end())
                           for m in _key_re(key).finditer(data)]
                    if not occ:
                        continue
                    if key in occ:
                        env.pop(key, None)
                    else:
                        self._sanitized.update(occ)
            elif etype == "sink":
                desc, text = data
                self._check_sink(func, pos, desc, text, env, summary,
                                 guarded_here, emit)
            elif etype == "call":
                self._apply_call(func, pos, data, env, summary, taint,
                                 record_out_write, guarded_here, emit)
            elif etype == "return":
                labels, _ = self._labels_in(data, env)
                if labels:
                    summary.return_labels = \
                        summary.return_labels | frozenset(labels)
        return summary

    def _check_sink(self, func, pos, desc, text, env, summary,
                    guarded_here, emit):
        text = _strip_value_opaque(text)
        for key, (kind, labels) in env.items():
            if kind == "content":
                continue
            if not any(_member_expr(key, text, m.end())
                       not in self._sanitized
                       for m in _key_re(key).finditer(text)):
                continue
            if guarded_here(pos, key):
                continue
            where = f"{desc} @ {func.rel}:{self._line(func, pos)}"
            for lbl in labels:
                if lbl.startswith("p"):
                    i = int(lbl[1:])
                    summary.param_sinks[i] = frozenset(
                        summary.param_sinks.get(i, frozenset())
                        | {where})
            if "wire" in labels and emit is not None:
                ln = self._line(func, pos)
                if not annotated(func.raw_lines, ln, TAINT_OK_RE):
                    emit.append(
                        (func.rel, ln,
                         f"taint: `{key}` decoded from untrusted bytes "
                         f"reaches {desc} with no bounds guard on the "
                         "path; check it against Remaining()/an "
                         "explicit cap first, or annotate "
                         "`// fwdecay: taint-ok(<reason>)`"))

    def _translate(self, labels, args, env):
        out = set()
        for lbl in labels:
            if lbl == "wire":
                out.add("wire")
            elif lbl.startswith("p"):
                i = int(lbl[1:])
                if i < len(args):
                    got, _ = self._labels_in(args[i], env)
                    out |= got
        return out

    def _apply_call(self, func, pos, data, env, summary, taint,
                    record_out_write, guarded_here, emit):
        name, argtext = data
        args = split_top_args(argtext)
        if name in ("memcpy", "memmove"):
            if len(args) >= 3:
                cl = self._content_labels_in(args[1], env)
                if cl:
                    path = expr_root(args[0])
                    taint(path, "val", cl)
                    if path:
                        record_out_write(path, cl)
            return
        if name in PARSE_FNS:
            cl = set()
            for arg in args:
                cl |= self._content_labels_in(arg, env)
            if cl:
                for arg in args:
                    if arg.strip().startswith("&"):
                        path = expr_root(arg)
                        taint(path, "val", cl)
                        if path:
                            record_out_write(path, cl)
            return
        callee = self._unique_def(name)
        summ = callee and self.summaries.get(callee.key)
        if not summ:
            return
        for i, arg in enumerate(args):
            sinks = summ.param_sinks.get(i)
            if not sinks:
                continue
            labels, _ = self._labels_in(arg, env)
            if not labels or guarded_here(pos, expr_root(arg) or arg):
                continue
            where = next(iter(sorted(sinks)))
            for lbl in labels:
                if lbl.startswith("p"):
                    j = int(lbl[1:])
                    summary.param_sinks[j] = frozenset(
                        summary.param_sinks.get(j, frozenset())
                        | {where})
            if "wire" in labels and emit is not None:
                ln = self._line(func, pos)
                if not annotated(func.raw_lines, ln, TAINT_OK_RE):
                    emit.append(
                        (func.rel, ln,
                         f"taint: `{expr_root(arg)}` decoded from "
                         f"untrusted bytes flows into argument {i} of "
                         f"{name}(), which reaches {where} with no "
                         "bounds guard; guard before the call or "
                         "annotate `// fwdecay: taint-ok(<reason>)`"))
        for i, wlabels in summ.out_writes.items():
            if i >= len(args):
                continue
            got = self._translate(wlabels, args, env)
            if got:
                path = expr_root(args[i])
                taint(path, "val", got)
                if path:
                    record_out_write(path, got)

    @staticmethod
    def _line(func, body_pos: int) -> int:
        return func.line_base + func.body[:body_pos].count("\n")

    def finish(self, findings: list) -> None:
        self._collect()
        for _ in range(self.MAX_PASSES):
            changed = False
            for func in self.funcs:
                new = self._analyze_func(func, None)
                old = self.summaries.get(func.key)
                if old is None or old.state() != new.state():
                    self.summaries[func.key] = new
                    changed = True
            if not changed:
                break
        for func in self.funcs:
            self._analyze_func(func, findings)


# --- hotpath-purity ---------------------------------------------------------

# Entry points of the batched ingest path (DESIGN.md §8): everything
# reachable from these must stay allocation-, throw- and syscall-free.
HOTPATH_ROOTS = frozenset({
    "Consume", "ConsumeFiltered", "UpdateBatch",
    "EvalPredicateBatch", "EvalExprBatch", "AddBatch",
})
# The one audited virtual hierarchy on the hot path: AggState dispatch
# for per-slot updates. Everything else virtual is flagged.
HOTPATH_VTABLE_ALLOWED = frozenset({"Update", "UpdateBatch"})

PURITY_NEW_RE = re.compile(r"\bnew\b")
PURITY_THROW_RE = re.compile(r"\bthrow\b")
PURITY_ALLOCFN_RE = re.compile(
    r"\b(make_unique|make_shared|to_string|malloc|calloc|realloc"
    r"|strdup)\s*(?:<[^<>;(){}]*>)?\s*\(")
# Owning-container construction in a hot body; `&`/`*` declarators are
# views, not allocations, and are skipped.
PURITY_CONTAINER_RE = re.compile(
    r"(?:^|[;{}])\s*(?:const\s+)?(?:std\s*::\s*)?"
    r"(vector|string|unordered_map|unordered_set|map|set|deque|list"
    r"|ByteWriter|ostringstream|stringstream|PacketBatch|ValueColumn)"
    r"((?:\s*<(?:[^<>]|<[^<>]*>)*>)?)\s*([&*]?)\s*([A-Za-z_]\w*)\s*"
    r"(?=[;({=])", re.M)
# Growth of a container reached through a plain `.` on a local: member
# scratch (trailing `_`) retains capacity across batches (DESIGN.md §8)
# and `->` receivers are caller-owned storage — both sanctioned.
PURITY_GROWTH_RE = re.compile(
    r"(?<![\w.>:\]])([A-Za-z_]\w*)\s*\.\s*"
    r"(push_back|emplace_back|emplace|resize|reserve|insert|append"
    r"|assign|push_front|emplace_front)\s*\(")
PURITY_SYSCALL_RE = re.compile(
    r"\b(open|close|read|write|pread|pwrite|fsync|fdatasync|unlink"
    r"|rename|recv|send|accept|connect|poll|select|socket|sleep"
    r"|usleep|nanosleep|clock_gettime|gettimeofday|mmap|munmap|fork"
    r"|system|getenv|printf|fprintf|fputs|puts|fwrite|fread|fflush"
    r"|NowSeconds|NowNanos|NowMicros)\s*\(")
VIRTUAL_DECL_RE = re.compile(
    r"\bvirtual\b[^;{}()]*?\b([A-Za-z_]\w*)\s*\(")
MEMBER_CALL_RE = re.compile(r"(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")


class _PurityFunc:
    __slots__ = ("key", "name", "rel", "body", "raw_lines", "line_base",
                 "params")

    def __init__(self, key, name, rel, body, raw_lines, line_base,
                 params=""):
        self.key = key
        self.name = name
        self.rel = rel
        self.body = body
        self.raw_lines = raw_lines
        self.line_base = line_base
        self.params = params


class HotpathPurityAnalysis:
    """Cross-file pass: BFS over the call graph from the hot-path roots,
    flagging every reachable impurity. Call edges resolve when the bare
    or member callee name has exactly one definition (silence over
    misattribution); names in the audited vtable set traverse every
    override, since dispatch can land on any of them. A
    `// fwdecay: hotpath-cold(<reason>)` annotation on a call line
    prunes the walk through that edge; on an impurity line it
    suppresses the site."""

    def __init__(self):
        self.files = []
        self.by_name = {}
        self.funcs = []
        self.virtual_names = set()

    def add_file(self, rel: str, raw: str, code: str) -> None:
        if not rel.startswith("src/"):
            return
        self.files.append((rel, raw, code))
        for m in VIRTUAL_DECL_RE.finditer(code):
            self.virtual_names.add(m.group(1))

    def _collect(self) -> None:
        for rel, raw, code in self.files:
            raw_lines = raw.splitlines()
            for m in FUNC_DEF_RE.finditer(code):
                name = m.group(1)
                if name in CONTROL_KEYWORDS:
                    continue
                brace = code.find("{", m.end() - 1)
                end = function_extent(code, brace)
                if m.group(0) and "override" in (m.group(3) or ""):
                    self.virtual_names.add(name)
                func = _PurityFunc((rel, name, brace), name, rel,
                                   code[brace:end], raw_lines,
                                   line_of(code, brace), m.group(2))
                self.funcs.append(func)
                self.by_name.setdefault(name, []).append(func)

    def _chain(self, parent, func):
        names = [func.name]
        cur = func.key
        while cur in parent:
            cur = parent[cur]
            names.append(cur[1])
        return " -> ".join(reversed(names))

    def finish(self, findings: list) -> None:
        self._collect()
        # `Consume` is a root only in its batched form: the per-tuple
        # Consume(Packet) overloads (legacy path, tumbling runner) are
        # convenience surfaces, not the measured ingest path.
        roots = [f for f in self.funcs
                 if f.name in HOTPATH_ROOTS
                 and (f.name != "Consume" or "PacketBatch" in f.params)]
        parent = {}
        queue = list(roots)
        visited = {f.key for f in roots}
        seen_sites = set()
        while queue:
            func = queue.pop(0)
            chain = self._chain(parent, func)
            self._scan_body(func, chain, findings, seen_sites)
            for callee in self._callees(func):
                if callee.key in visited:
                    continue
                visited.add(callee.key)
                parent[callee.key] = func.key
                queue.append(callee)

    def _cold(self, func, pos) -> bool:
        return annotated(func.raw_lines, func.line_base +
                         func.body[:pos].count("\n"), HOTPATH_COLD_RE)

    def _callees(self, func):
        out = []
        for regexp in (CALL_SITE_RE, MEMBER_CALL_RE):
            for m in regexp.finditer(func.body):
                name = m.group(1)
                if name in CONTROL_KEYWORDS or self._cold(func, m.start()):
                    continue
                if name in self.virtual_names:
                    if name in HOTPATH_VTABLE_ALLOWED:
                        out.extend(self.by_name.get(name, ()))
                    continue  # disallowed virtuals are flagged, not walked
                defs = self.by_name.get(name, ())
                if len(defs) == 1:
                    out.append(defs[0])
        return out

    def _scan_body(self, func, chain, findings, seen_sites) -> None:
        body = func.body

        def emit(pos, what):
            line = func.line_base + body[:pos].count("\n")
            site = (func.rel, line, what)
            if site in seen_sites or self._cold(func, pos):
                return
            seen_sites.add(site)
            findings.append(
                (func.rel, line,
                 f"hotpath-purity: {what} on the batched ingest path "
                 f"({chain}); keep the hot path allocation/throw/"
                 "syscall-free (DESIGN.md §12) or mark the cold branch "
                 "`// fwdecay: hotpath-cold(<reason>)`"))

        for m in PURITY_NEW_RE.finditer(body):
            emit(m.start(), "heap allocation (`new`)")
        for m in PURITY_THROW_RE.finditer(body):
            emit(m.start(), "`throw`")
        for m in PURITY_ALLOCFN_RE.finditer(body):
            emit(m.start(), f"heap allocation (`{m.group(1)}`)")
        for m in PURITY_CONTAINER_RE.finditer(body):
            if m.group(3):
                continue  # reference/pointer declarator: a view
            emit(m.start(1),
                 f"owning `{m.group(1)}` constructed per batch "
                 f"(`{m.group(4)}`)")
        for m in PURITY_GROWTH_RE.finditer(body):
            recv = m.group(1)
            if recv.endswith("_"):
                continue  # capacity-retained member scratch
            emit(m.start(),
                 f"`{recv}.{m.group(2)}()` grows a non-scratch local")
        for m in PURITY_SYSCALL_RE.finditer(body):
            emit(m.start(), f"syscall/clock `{m.group(1)}()`")
        for regexp in (CALL_SITE_RE, MEMBER_CALL_RE):
            for m in regexp.finditer(body):
                name = m.group(1)
                if name in self.virtual_names and \
                        name not in HOTPATH_VTABLE_ALLOWED:
                    emit(m.start(),
                         f"virtual dispatch to {name}() outside the "
                         "audited AggState vtable set")


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------

ALL_RULES = frozenset({
    "backward-age", "exp-pow", "deser-bounds", "guarded-by",
    "atomics-order", "hotpath-lock", "lock-order", "taint",
    "hotpath-purity",
})


def _timed(times, rule, fn, *args):
    t0 = time.perf_counter()
    fn(*args)
    times[rule] = times.get(rule, 0.0) + (time.perf_counter() - t0)


class TextEngine:
    """Runs the per-file rules on comment/string-stripped sources."""

    name = "text"

    def analyze(self, rel: str, path: pathlib.Path, raw: str, code: str,
                findings: list, rules=ALL_RULES, times=None) -> None:
        times = {} if times is None else times
        if "backward-age" in rules:
            _timed(times, "backward-age", rule_backward_age_text,
                   rel, code, findings)
        if "exp-pow" in rules:
            _timed(times, "exp-pow", rule_exp_pow_text,
                   rel, code, findings)
        if "deser-bounds" in rules:
            _timed(times, "deser-bounds", rule_deser_bounds,
                   rel, code, findings)
        if "guarded-by" in rules:
            _timed(times, "guarded-by", rule_guarded_by,
                   rel, code, findings)


class AstEngine:
    """libclang-backed engine: backward-age and exp-pow run on the AST
    (sees through macro expansion, ignores disabled #if regions); the
    lexical rules reuse the shared implementations. With a compilation
    database (--compile-commands) each TU parses under its real flags;
    files without an entry (headers, bench/, examples/) fall back to
    the default argument set, or to the textual rules outside src/."""

    name = "ast"

    def __init__(self, root: pathlib.Path, compile_commands=None):
        import clang.cindex as cindex  # raises ImportError when absent
        self.cindex = cindex
        self.index = cindex.Index.create()  # raises when libclang missing
        self.args = ["-x", "c++", "-std=c++20", "-I", str(root / "src")]
        self.db = None
        if compile_commands:
            db_dir = pathlib.Path(compile_commands).resolve()
            if db_dir.is_file():
                db_dir = db_dir.parent
            self.db = cindex.CompilationDatabase.fromDirectory(str(db_dir))

    def _args_for(self, path: pathlib.Path):
        if self.db is not None:
            cmds = self.db.getCompileCommands(str(path.resolve()))
            if cmds:
                argv = list(cmds[0].arguments)
                args, skip = [], True  # first element is the compiler
                for a in argv:
                    if skip:
                        skip = False
                        continue
                    if a == "-o":
                        skip = True
                        continue
                    if a in ("-c", str(path), str(path.resolve())):
                        continue
                    args.append(a)
                return args
        return None

    def analyze(self, rel: str, path: pathlib.Path, raw: str, code: str,
                findings: list, rules=ALL_RULES, times=None) -> None:
        times = {} if times is None else times
        cindex = self.cindex
        args = self._args_for(path)
        if args is None:
            if not rel.startswith("src/"):
                # bench/examples need gtest/benchmark include paths the
                # default args don't carry; the textual rules are exact
                # enough there.
                TextEngine().analyze(rel, path, raw, code, findings,
                                     rules, times)
                return
            args = self.args
        if rules & {"backward-age", "exp-pow"}:
            t0 = time.perf_counter()
            tu = self.index.parse(str(path), args=args)
            for cur in tu.cursor.walk_preorder():
                if cur.location.file is None or \
                        cur.location.file.name != str(path):
                    continue
                if cur.kind == cindex.CursorKind.BINARY_OPERATOR and \
                        "backward-age" in rules:
                    self._check_backward_age(rel, cur, findings)
                elif cur.kind == cindex.CursorKind.CALL_EXPR and \
                        "exp-pow" in rules:
                    self._check_exp_pow(rel, cur, findings)
            # one TU parse serves both AST rules; bill them jointly
            times["backward-age+exp-pow"] = \
                times.get("backward-age+exp-pow", 0.0) \
                + (time.perf_counter() - t0)
        if "deser-bounds" in rules:
            _timed(times, "deser-bounds", rule_deser_bounds,
                   rel, code, findings)
        if "guarded-by" in rules:
            _timed(times, "guarded-by", rule_guarded_by,
                   rel, code, findings)

    def _operands(self, cur):
        kids = list(cur.get_children())
        return kids if len(kids) == 2 else None

    def _spelling(self, node) -> str:
        return "".join(t.spelling for t in node.get_tokens())

    def _check_backward_age(self, rel, cur, findings) -> None:
        if rel in BACKWARD_AGE_ALLOWED:
            return
        ops = self._operands(cur)
        if not ops:
            return
        lhs, rhs = (self._spelling(ops[0]), self._spelling(ops[1]))
        toks = [t.spelling for t in cur.get_tokens()]
        if "-" not in toks:
            return
        if lhs in NOW_IDENTIFIERS and ITEM_TS_RE.match(rhs):
            findings.append(
                (rel, cur.location.line,
                 f"backward-age: `{lhs} - {rhs}` computes a per-item "
                 "age from the current time; forward decay weighs items "
                 "as g(t_i - L) (core/decay.h)"))

    def _check_exp_pow(self, rel, cur, findings) -> None:
        if rel in EXP_POW_ALLOWED:
            return
        ref = cur.referenced
        if ref is not None and ref.spelling in ("exp", "pow"):
            findings.append(
                (rel, cur.location.line,
                 f"exp-pow: call to `{ref.spelling}` outside the "
                 "overflow-reviewed allowlist; route decay weights "
                 "through core/decay.h (ExponentialG / ShiftFactor)"))


def make_engine(kind: str, root: pathlib.Path, compile_commands=None):
    if kind in ("auto", "ast"):
        try:
            return AstEngine(root, compile_commands)
        except Exception as exc:  # ImportError or libclang load failure
            if kind == "ast":
                print(f"analyze.py: AST engine unavailable: {exc}",
                      file=sys.stderr)
                return None
            print(f"analyze.py: libclang unavailable ({exc.__class__.__name__});"
                  " falling back to the textual engine", file=sys.stderr)
    return TextEngine()


# ---------------------------------------------------------------------------
# Selftest: the analyzer's own seeded fixtures. Each known-bad snippet
# MUST produce its finding and each clean snippet must not — so a
# regression in the rules fails CI even when the real tree is clean.
# ---------------------------------------------------------------------------

SELFTEST_CASES = [
    # (name, files {rel: text}, substring expected in findings, or None
    #  when the fixture must be clean)
    ("lock-order inversion detected", {
        "src/a.h": """
struct Alpha { Mutex mu_a; int x FWDECAY_GUARDED_BY(mu_a); };
struct Beta { Mutex mu_b; int y FWDECAY_GUARDED_BY(mu_b); };
void First(Alpha& a, Beta& b) {
  MutexLock la(a.mu_a);
  MutexLock lb(b.mu_b);
}
void Second(Alpha& a, Beta& b) {
  MutexLock lb(b.mu_b);
  MutexLock la(a.mu_a);
}
"""}, "lock-order: acquisition cycle"),
    ("lock-order consistent order clean", {
        "src/a.h": """
struct Alpha { Mutex mu_a; int x FWDECAY_GUARDED_BY(mu_a); };
struct Beta { Mutex mu_b; int y FWDECAY_GUARDED_BY(mu_b); };
void First(Alpha& a, Beta& b) {
  MutexLock la(a.mu_a);
  MutexLock lb(b.mu_b);
}
void Second(Alpha& a, Beta& b) {
  MutexLock la(a.mu_a);
  { MutexLock lb(b.mu_b); }
}
"""}, None),
    ("lock-order interprocedural cycle detected", {
        "src/a.h": """
struct Alpha { Mutex mu_a; int x FWDECAY_GUARDED_BY(mu_a); };
struct Gamma { Mutex mu_c; int z FWDECAY_GUARDED_BY(mu_c); };
void Inner(Gamma& c) { MutexLock l(c.mu_c); }
void Outer(Alpha& a, Gamma& c) {
  MutexLock l(a.mu_a);
  Inner(c);
}
""",
        "src/b.cc": """
void Reversed(Gamma& c, Alpha& a) {
  MutexLock l(c.mu_c);
  MutexLock l2(a.mu_a);
}
"""}, "lock-order: acquisition cycle"),
    ("lock-order annotation accepted", {
        "src/a.h": """
struct Alpha { Mutex mu_a; int x FWDECAY_GUARDED_BY(mu_a); };
struct Beta { Mutex mu_b; int y FWDECAY_GUARDED_BY(mu_b); };
void First(Alpha& a, Beta& b) {
  MutexLock la(a.mu_a);
  MutexLock lb(b.mu_b);
}
void Second(Alpha& a, Beta& b) {
  MutexLock lb(b.mu_b);
  // fwdecay: lock-order-ok(selftest: intentional inversion)
  MutexLock la(a.mu_a);
}
"""}, None),
    ("lock-order self-deadlock detected", {
        "src/a.h": """
struct Alpha { Mutex mu_a; int x FWDECAY_GUARDED_BY(mu_a); };
void Helper(Alpha& a) { MutexLock l(a.mu_a); }
void Entry(Alpha& a) {
  MutexLock l(a.mu_a);
  Helper(a);
}
"""}, "lock-order: acquisition cycle"),
    ("atomics-order unannotated relaxed flagged", {
        "src/util/metrics.h": """
void Touch() { v_.fetch_add(1, std::memory_order_relaxed); }
"""}, "atomics-order: relaxed use without"),
    ("atomics-order non-allowlisted file flagged", {
        "src/core/rogue.h": """
// fwdecay: relaxed-ok(annotated but the file is not audited)
void Touch() { v_.fetch_add(1, std::memory_order_relaxed); }
"""}, "atomics-order: memory_order_relaxed outside"),
    ("atomics-order annotated allowlisted clean", {
        "src/util/metrics.h": """
// fwdecay: relaxed-ok(monotone cell; no dependent data to order)
void Touch() { v_.fetch_add(1, std::memory_order_relaxed); }
"""}, None),
    ("hotpath-lock unannotated flagged", {
        "src/dsms/thing.h": """
struct Thing {
  void Consume(const PacketBatch& batch) {
    MutexLock lock(mu_);
    Apply(batch);
  }
  Mutex mu_;
  int state_ FWDECAY_GUARDED_BY(mu_);
};
"""}, "hotpath-lock: mutex acquisition inside Consume()"),
    ("hotpath-lock explicit Lock flagged", {
        "src/dsms/thing.h": """
void UpdateBatch(const Batch& b) {
  mu_.Lock();
  Apply(b);
  mu_.Unlock();
}
"""}, "hotpath-lock: mutex acquisition inside UpdateBatch()"),
    ("hotpath-lock annotation accepted", {
        "src/dsms/thing.h": """
struct Thing {
  void Consume(const PacketBatch& batch) {
    // fwdecay: hotpath-lock-ok(one acquisition amortized per batch)
    MutexLock lock(mu_);
    Apply(batch);
  }
  Mutex mu_;
  int state_ FWDECAY_GUARDED_BY(mu_);
};
"""}, None),
    ("taint unguarded wire length reaching resize caught", {
        "src/server/load.h": """
bool LoadVec(ByteReader& r, std::vector<int>* out) {
  std::uint32_t n = 0;
  if (!r.ReadU32(&n)) return false;
  out->resize(n);
  return true;
}
"""}, "taint: `n`"),
    ("taint guarded wire length clean", {
        "src/server/load.h": """
bool LoadVec(ByteReader& r, std::vector<int>* out) {
  std::uint32_t n = 0;
  if (!r.ReadU32(&n) || n > r.Remaining()) return false;
  out->resize(n);
  return true;
}
"""}, None),
    ("taint interprocedural flow caught", {
        "src/server/fill.h": """
void FillVec(std::vector<int>* v, std::uint32_t n) { v->resize(n); }
""",
        "src/server/load.h": """
bool LoadVec(ByteReader& r, std::vector<int>* out) {
  std::uint32_t n = 0;
  if (!r.ReadU32(&n)) return false;
  FillVec(out, n);
  return true;
}
"""}, "flows into argument 1 of FillVec()"),
    ("taint interprocedural guarded clean", {
        "src/server/fill.h": """
void FillVec(std::vector<int>* v, std::uint32_t n) { v->resize(n); }
""",
        "src/server/load.h": """
bool LoadVec(ByteReader& r, std::vector<int>* out) {
  std::uint32_t n = 0;
  if (!r.ReadU32(&n) || n > r.Remaining()) return false;
  FillVec(out, n);
  return true;
}
"""}, None),
    ("taint escape annotation accepted", {
        "src/server/load.h": """
bool LoadVec(ByteReader& r, std::vector<int>* out) {
  std::uint32_t n = 0;
  if (!r.ReadU32(&n)) return false;
  // fwdecay: taint-ok(selftest: n is vetted by the harness cap)
  out->resize(n);
  return true;
}
"""}, None),
    ("taint numeric parse of untrusted text caught", {
        "src/server/manifest.h": """
bool LoadCount(ByteReader& r, std::vector<int>* out) {
  std::string text;
  if (!r.ReadString(&text)) return false;
  std::uint64_t v = 0;
  ParseU64(text, &v);
  out->reserve(v);
  return true;
}
"""}, "taint: `v`"),
    ("hotpath-purity vector under Consume caught", {
        "src/dsms/hot.h": """
struct Q {
  void Consume(const PacketBatch& batch) {
    std::vector<int> tmp;
    tmp.push_back(1);
  }
};
"""}, "hotpath-purity: owning `vector`"),
    ("hotpath-purity member scratch clean", {
        "src/dsms/hot.h": """
struct Q {
  void Consume(const PacketBatch& batch) {
    scratch_.clear();
    scratch_.push_back(1);
  }
  std::vector<int> scratch_;
};
"""}, None),
    ("hotpath-purity interprocedural allocation caught", {
        "src/dsms/hot.h": """
inline void RebuildIndex() { auto p = std::make_unique<int>(3); }
struct Q {
  void Consume(const PacketBatch& batch) { RebuildIndex(); }
};
"""}, "heap allocation (`make_unique`)"),
    ("hotpath-purity virtual outside vtable set caught", {
        "src/dsms/hot.h": """
struct AggState {
  virtual void Update(double w) = 0;
  virtual double DebugWeight() const = 0;
};
struct Q {
  void Consume(const PacketBatch& batch) {
    agg_->Update(1.0);
    agg_->DebugWeight();
  }
  AggState* agg_;
};
"""}, "virtual dispatch to DebugWeight()"),
    ("hotpath-purity cold annotation accepted", {
        "src/dsms/hot.h": """
struct Q {
  void Consume(const PacketBatch& batch) {
    if (Stale()) {
      // fwdecay: hotpath-cold(selftest: rebuild is off the fast path)
      RebuildCold();
    }
  }
  void RebuildCold() { big_.reserve(100); }
  std::vector<int> big_;
};
"""}, None),
]


def run_selftest() -> int:
    failures = 0
    for name, files, want in SELFTEST_CASES:
        findings = []
        lock_order = LockOrderAnalysis()
        taint = TaintAnalysis()
        purity = HotpathPurityAnalysis()
        for rel, raw in sorted(files.items()):
            code = strip_comments_and_strings(raw)
            rule_atomics_order(rel, raw, code, findings)
            rule_hotpath_lock(rel, raw, code, findings)
            lock_order.add_file(rel, raw, code)
            taint.add_file(rel, raw, code)
            purity.add_file(rel, raw, code)
        lock_order.finish(findings)
        taint.finish(findings)
        purity.finish(findings)
        msgs = [msg for _, _, msg in findings]
        if want is None:
            ok = not msgs
            detail = "; ".join(msgs)
        else:
            ok = any(want in msg for msg in msgs)
            detail = f"expected a finding containing {want!r}"
        print(f"selftest: {'PASS' if ok else 'FAIL'}: {name}"
              + ("" if ok else f" ({detail})"))
        failures += 0 if ok else 1
    print(f"analyze.py --selftest: {len(SELFTEST_CASES)} cases, "
          f"{failures} failure(s)")
    return 0 if failures == 0 else 2


# Per-file rules run in pool workers; the cross-file fixpoints (which
# need every file's text at once) stay in the parent process.
PER_FILE_RULES = frozenset({
    "backward-age", "exp-pow", "deser-bounds", "guarded-by",
    "atomics-order", "hotpath-lock",
})

_WORKER_STATE = None


def _worker_init(engine_kind, root_str, compile_commands, rules):
    global _WORKER_STATE
    root = pathlib.Path(root_str)
    engine = make_engine(engine_kind, root, compile_commands)
    if engine is None:  # e.g. libclang vanished between fork and init
        engine = TextEngine()
    _WORKER_STATE = (engine, root, frozenset(rules))


def _worker_analyze(rel):
    engine, root, rules = _WORKER_STATE
    path = root / rel
    raw = path.read_text(encoding="utf-8")
    code = strip_comments_and_strings(raw)
    findings, times = [], {}
    engine.analyze(rel, path, raw, code, findings, rules, times)
    if "atomics-order" in rules:
        _timed(times, "atomics-order", rule_atomics_order,
               rel, raw, code, findings)
    if "hotpath-lock" in rules:
        _timed(times, "hotpath-lock", rule_hotpath_lock,
               rel, raw, code, findings)
    return findings, times


def main() -> int:
    ap = argparse.ArgumentParser(
        description="fwdecay semantic analyzer (see module docstring)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("--engine", choices=("auto", "ast", "text"),
                    default="auto")
    ap.add_argument("--compile-commands", default=None, metavar="PATH",
                    help="compile_commands.json for the AST engine "
                         "(CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the embedded known-bad/known-good fixtures "
                         "through the rules and exit")
    ap.add_argument("--rules", default="all", metavar="R1,R2",
                    help="comma-separated rule subset (default: all); "
                         "known rules: " + ",".join(sorted(ALL_RULES)))
    ap.add_argument("--jobs", type=int, default=0, metavar="N",
                    help="process-pool width for the per-file rules "
                         "(default: cpu count; 1 disables the pool)")
    ap.add_argument("--findings-out", default=None, metavar="PATH",
                    help="also write findings (file:line: message per "
                         "line) to PATH, for CI artifacts")
    args = ap.parse_args()
    if args.selftest:
        return run_selftest()
    if args.rules == "all":
        rules = ALL_RULES
    else:
        rules = frozenset(r for r in args.rules.split(",") if r)
        unknown = rules - ALL_RULES
        if unknown:
            print(f"analyze.py: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent)

    engine = make_engine(args.engine, root, args.compile_commands)
    if engine is None:
        return 2
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)

    rels = []
    for top in SCAN_DIRS:
        for path in sorted((root / top).rglob("*")):
            if path.suffix in SRC_SUFFIXES and path.is_file():
                rels.append(path.relative_to(root).as_posix())

    findings = []
    times = {}
    per_file = rules & PER_FILE_RULES
    lock_order = LockOrderAnalysis() if "lock-order" in rules else None
    taint = TaintAnalysis() if "taint" in rules else None
    purity = HotpathPurityAnalysis() if "hotpath-purity" in rules else None

    pooled = per_file and jobs > 1 and len(rels) > 1
    if pooled:
        import multiprocessing as mp
        with mp.Pool(min(jobs, len(rels)), _worker_init,
                     (engine.name, str(root), args.compile_commands,
                      per_file)) as pool:
            for fnd, t in pool.imap_unordered(_worker_analyze, rels):
                findings.extend(fnd)
                for k, v in t.items():
                    times[k] = times.get(k, 0.0) + v
    for rel in rels:
        path = root / rel
        raw = path.read_text(encoding="utf-8")
        code = strip_comments_and_strings(raw)
        if per_file and not pooled:
            engine.analyze(rel, path, raw, code, findings, per_file,
                           times)
            if "atomics-order" in per_file:
                _timed(times, "atomics-order", rule_atomics_order,
                       rel, raw, code, findings)
            if "hotpath-lock" in per_file:
                _timed(times, "hotpath-lock", rule_hotpath_lock,
                       rel, raw, code, findings)
        if lock_order:
            lock_order.add_file(rel, raw, code)
        if taint:
            taint.add_file(rel, raw, code)
        if purity:
            purity.add_file(rel, raw, code)
    if lock_order:
        _timed(times, "lock-order", lock_order.finish, findings)
    if taint:
        _timed(times, "taint", taint.finish, findings)
    if purity:
        _timed(times, "hotpath-purity", purity.finish, findings)

    findings = sorted(set(findings))
    lines = [f"{rel}:{line}: {msg}" for rel, line, msg in findings]
    for line in lines:
        print(line)
    if args.findings_out:
        pathlib.Path(args.findings_out).write_text(
            "".join(l + "\n" for l in lines), encoding="utf-8")
    print("analyze.py: rule wall time: "
          + ", ".join(f"{k} {v:.2f}s" for k, v in sorted(times.items())))
    status = "FAILED" if findings else "OK"
    print(f"analyze.py[{engine.name}]: {len(rels)} files analyzed, "
          f"{len(findings)} finding(s), jobs={jobs} [{status}]")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
