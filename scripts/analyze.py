#!/usr/bin/env python3
"""Semantic analyzer for fwdecay-specific correctness rules.

These are *model-level* invariants of the forward-decay paper that
neither the compiler nor clang-tidy can express; scripts/lint.py handles
the purely syntactic conventions. Seven rules:

  backward-age   Forward decay's whole point (Section IV) is that
                 per-item weights are computed from the *landmark*,
                 g(t_i - L), never from the current time. Arithmetic of
                 the form `now - t_i` (current-time minuend, per-item
                 timestamp subtrahend) is backward decay and belongs
                 only in src/core/decay.h, where the paper's backward
                 baselines are deliberately implemented. Window cutoffs
                 (`now - window`, `now - horizon_`) and stream spans
                 (`now - first_ts_`) are aggregate quantities, not
                 per-item ages, and are not flagged.

  exp-pow        exp()/pow() on decay weights overflows once alpha * n
                 grows past ~709; the sanctioned implementations
                 (core/decay.h's ExponentialG / ShiftFactor and the
                 log-domain samplers) rescale or stay in the log domain.
                 Every exp/pow call site must therefore live in a file
                 on the reviewed allowlist below; new call sites must
                 either route through core/decay.h or be added to the
                 allowlist with a written rationale.

  deser-bounds   In Deserialize()/RestoreFrom() bodies, every
                 container allocation (reserve/resize/assign) must be
                 preceded by a bounds check — either against
                 reader->Remaining() or an explicit numeric cap — so a
                 corrupt length header cannot demand an absurd
                 allocation before any payload byte is validated.

  guarded-by     Every fwdecay::Mutex member must protect something:
                 the file must annotate at least one member with
                 FWDECAY_GUARDED_BY(mu) / FWDECAY_PT_GUARDED_BY(mu) for
                 that mutex, and bare std::mutex members are banned in
                 favor of the annotated wrapper (otherwise the clang
                 -Wthread-safety build proves nothing about the class).

  lock-order     Global (cross-TU) lock-acquisition graph. Every
                 acquisition made while another lock is held adds an
                 edge held -> acquired; calls made under a lock
                 propagate the callee's transitive acquisitions when
                 the bare callee name resolves to exactly one
                 lock-acquiring definition. Lock identity is
                 Class::member when the member name is owned by exactly
                 one class, else file-qualified. Any cycle in the graph
                 (including a self-edge, i.e. re-acquiring a lock of
                 the same identity while holding one) is a potential
                 deadlock and fails the build — the static complement
                 of the deadlock detector inside util/sched.h's
                 schedule explorer (DESIGN.md §10). Intentional
                 exceptions carry `// fwdecay: lock-order-ok(<reason>)`
                 on the acquisition line or the line above.

  atomics-order  `memory_order_relaxed` is the easiest way to write a
                 racy publish: a relaxed flag store orders nothing.
                 Every relaxed use in src/, bench/ and examples/ must
                 (a) live in a file on the RELAXED_ALLOWED audit list
                 and (b) carry `// fwdecay: relaxed-ok(<reason>)` on
                 the same or previous line, stating why ordering is
                 not needed (tests/ are exempt: racy fixtures are the
                 model checker's job). The audited sites are exactly
                 the ones tests/sched_test.cc explores under
                 -DFWDECAY_SCHED=ON weak-memory simulation.

  hotpath-lock   Mutex acquisition inside the batched ingest hot path —
                 the bodies of UpdateBatch() and Consume() — serializes
                 the very code the batch layer parallelizes. Each such
                 acquisition must be annotated
                 `// fwdecay: hotpath-lock-ok(<reason>)` (e.g. "one
                 acquisition amortized over the whole batch"), so a
                 per-tuple lock cannot creep in silently.

Engines: with python clang bindings + libclang available (CI's clang
job), rules backward-age and exp-pow run on the real AST, which sees
through macros and rules out matches in dead token sequences. Without
them (the default dev container has only gcc), a textual engine runs the
same rule set on comment/string-stripped sources. Both engines share
the deser-bounds, guarded-by, lock-order, atomics-order and
hotpath-lock logic, which is inherently lexical (function-extent
ordering, member-declaration annotations, and comment-carried escape
hatches). Pass --compile-commands build/compile_commands.json to give
the AST engine each TU's real flags (CI exports the database once and
shares it between the analyzer jobs); bench/ and examples/ fall back to
the textual rules when no database entry covers them.

Usage: scripts/analyze.py [--root DIR] [--engine auto|ast|text]
                          [--compile-commands PATH] [--selftest]
Exit status is 0 when clean, 1 when any finding is reported, 2 when a
requested engine is unavailable or the selftest fails.
"""

import argparse
import pathlib
import re
import sys

# ---------------------------------------------------------------------------
# Shared rule configuration
# ---------------------------------------------------------------------------

# Current-time identifiers: a subtraction with one of these on the left
# is age arithmetic.
NOW_IDENTIFIERS = {"now", "t_now", "query_time", "current_time"}

# Per-item timestamp shapes: `t_i`, any `.ts` / `->ts` member access, or
# identifiers that name a tuple/packet/item timestamp. Aggregate
# quantities (window, horizon_, first_ts_, landmark, mid) do not match.
ITEM_TS_RE = re.compile(
    r"^(?:t_i|t_j|(?:[A-Za-z_]\w*(?:\.|->))?ts|item_ts|tuple_ts"
    r"|packet_ts|arrival_ts)$")

# The one sanctioned home of backward-age arithmetic: the paper's
# backward decay functions f(t - t_i) in Definition 1 / Section III.
BACKWARD_AGE_ALLOWED = ("src/core/decay.h",)

# exp/pow allowlist. Each entry is a reviewed decision; see the header
# comment of the file in question for the overflow argument.
EXP_POW_ALLOWED = {
    # The sanctioned decay implementations themselves: ExponentialG
    # works on landmark-relative n with ShiftFactor rescaling; the
    # backward F structs are the paper's baselines.
    "src/core/decay.h",
    # Zipf rejection sampler: exp/log of the skew parameter, not decay
    # weights; arguments are bounded by the harmonic-sum inverse.
    "src/util/zipf.cc",
    # GSQL builtins exp()/pow()/expweight()/polyweight(): expweight
    # bounds its argument with fmod(time, period) by construction.
    "src/dsms/expr.cc",
    # Backward polynomial UDAF weight (age + 1)^-2: magnitude <= 1.
    "src/dsms/udafs.cc",
    # Width sizing ceil(e / eps): constant exp(1).
    "src/sketch/count_min.cc",
    # Level-set geometry b^l: level indices are log_b of observed
    # weights, so the power un-does a log of the same magnitude.
    "src/sketch/dominance_norm.cc",
    # Geometric age-grid knots for the Cohen-Strauss combination.
    "src/sketch/backward_sum.cc",
    # Log-domain sampler helpers: exp() of non-positive log-weight
    # differences (A-ExpJ, Algorithm L, priority sampling), <= 1 by
    # construction.
    "src/sampling/reservoir.h",
    "src/sampling/weighted_reservoir.h",
    "src/sampling/priority_sampling.h",
    "src/sampling/with_replacement.h",
    # Figure-reproduction ground truth: exp(fmod(time, 60)), argument
    # bounded by the 60-second landmark period per the paper's setup.
    "bench/bench_fig4_hh_eps.cc",
    "bench/bench_fig5_hh_rate.cc",
}

EXP_POW_CALL_RE = re.compile(r"(?:\bstd\s*::\s*)?\b(exp|pow)\s*\(")

# Functions whose bodies deserialize untrusted bytes.
DESER_FN_RE = re.compile(r"\b(?:Deserialize|RestoreFrom)\s*\([^;]*$")
ALLOC_RE = re.compile(r"\.\s*(reserve|resize|assign)\s*\(")
BOUNDS_GUARD_RE = re.compile(
    r"Remaining\s*\(|>=?\s*\(?\s*(?:std::(?:uint64_t|size_t|uint32_t)\{1\}"
    r"|1u?l{0,2}\s*<<|0x[0-9a-fA-F]+|\d)")

MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:fwdecay\s*::\s*)?Mutex\s+(\w+)\s*;", re.M)
STD_MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?std\s*::\s*(?:shared_|recursive_)?mutex\s+\w+\s*;",
    re.M)
# thread_annotations.h wraps std::mutex itself; sched.{h,cc} are the
# model checker — their std::mutex/condvar ARE the implementation of the
# virtual-lock layer and live outside the annotated discipline by
# design (see scripts/lint.py LOCKING_EXEMPT).
GUARDED_BY_EXEMPT = (
    "src/util/thread_annotations.h",
    "src/util/sched.h",
    "src/util/sched.cc",
)

# lock-order: files whose lock usage implements the locking layers
# themselves (their internal std primitives are not participants in the
# library's lock ordering).
LOCK_ORDER_EXEMPT = GUARDED_BY_EXEMPT

# atomics-order: audited homes of memory_order_relaxed. Every entry is
# covered by the memory-order contract comment in util/metrics.h and by
# the sched_test.cc weak-memory fixtures.
RELAXED_ALLOWED = {
    # Monotone counter cells + the ModelAtomic mirror (scheduler grant
    # serializes mirror stores).
    "src/util/metrics.h",
    "src/util/metrics.cc",
    "src/util/sched.h",
    "src/util/sched.cc",
    # Router-level offered-packet counter.
    "src/dsms/engine.h",
    "src/dsms/engine.cc",
    # UDAF state-seed allocator (uniqueness needs only RMW atomicity).
    "src/dsms/udafs.cc",
}

RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
RELAXED_OK_RE = re.compile(r"fwdecay:\s*relaxed-ok\s*\(")
LOCK_ORDER_OK_RE = re.compile(r"fwdecay:\s*lock-order-ok\s*\(")
HOTPATH_LOCK_OK_RE = re.compile(r"fwdecay:\s*hotpath-lock-ok\s*\(")

# Hot-path entry points whose bodies must not take locks silently.
HOTPATH_LOCK_FNS = ("UpdateBatch", "Consume")

SRC_SUFFIXES = (".h", ".cc", ".cpp")
SCAN_DIRS = ("src", "bench", "examples")


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving newlines so
    reported line numbers stay accurate (same contract as lint.py)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(code: str, pos: int) -> int:
    return code[:pos].count("\n") + 1


def annotated(raw_lines, line: int, marker: re.Pattern) -> bool:
    """True when `marker` appears on `line` (1-based) or the line above
    in the ORIGINAL text — escape hatches live in comments, which the
    stripped code no longer contains."""
    for ln in (line, line - 1):
        if 1 <= ln <= len(raw_lines) and marker.search(raw_lines[ln - 1]):
            return True
    return False


# ---------------------------------------------------------------------------
# Rule implementations (textual core, shared by both engines where the
# rule is inherently lexical)
# ---------------------------------------------------------------------------

BACKWARD_AGE_RE = re.compile(
    r"\b(" + "|".join(sorted(NOW_IDENTIFIERS)) +
    r")\s*-\s*([A-Za-z_][\w]*(?:(?:\.|->)[A-Za-z_]\w*)*)")


def rule_backward_age_text(rel: str, code: str, findings: list) -> None:
    if rel in BACKWARD_AGE_ALLOWED:
        return
    for m in BACKWARD_AGE_RE.finditer(code):
        subtrahend = m.group(2)
        if ITEM_TS_RE.match(subtrahend):
            findings.append(
                (rel, line_of(code, m.start()),
                 f"backward-age: `{m.group(0)}` computes a per-item age "
                 "from the current time; forward decay weighs items as "
                 "g(t_i - L) (core/decay.h)"))


def rule_exp_pow_text(rel: str, code: str, findings: list) -> None:
    if rel in EXP_POW_ALLOWED:
        return
    for m in EXP_POW_CALL_RE.finditer(code):
        findings.append(
            (rel, line_of(code, m.start()),
             f"exp-pow: `{m.group(0).strip()}` outside the overflow-"
             "reviewed allowlist; route decay weights through "
             "core/decay.h (ExponentialG / ShiftFactor) or add this "
             "file to EXP_POW_ALLOWED with a rationale"))


def function_extent(code: str, open_brace: int) -> int:
    """Returns the index one past the matching close brace."""
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def rule_deser_bounds(rel: str, code: str, findings: list) -> None:
    for line_match in re.finditer(r"^.*$", code, re.M):
        if not DESER_FN_RE.search(line_match.group(0)):
            continue
        brace = code.find("{", line_match.start())
        if brace == -1:
            continue  # declaration only
        end = function_extent(code, brace)
        body = code[brace:end]
        for alloc in ALLOC_RE.finditer(body):
            if not BOUNDS_GUARD_RE.search(body[: alloc.start()]):
                findings.append(
                    (rel, line_of(code, brace + alloc.start()),
                     f"deser-bounds: `{alloc.group(0).strip()}` in a "
                     "deserialization body with no preceding bounds "
                     "check (reader->Remaining() or an explicit cap)"))


def rule_guarded_by(rel: str, code: str, findings: list) -> None:
    if rel in GUARDED_BY_EXEMPT:
        return
    for m in STD_MUTEX_MEMBER_RE.finditer(code):
        findings.append(
            (rel, line_of(code, m.start()),
             "guarded-by: bare std::mutex member; use the annotated "
             "fwdecay::Mutex so -Wthread-safety can track it"))
    for m in MUTEX_MEMBER_RE.finditer(code):
        name = m.group(1)
        guarded = re.search(
            r"FWDECAY_(?:PT_)?GUARDED_BY\s*\(\s*" + re.escape(name) +
            r"\s*\)", code)
        if not guarded:
            findings.append(
                (rel, line_of(code, m.start()),
                 f"guarded-by: mutex member `{name}` protects no "
                 "annotated member; add FWDECAY_GUARDED_BY(" + name +
                 ") to the data it guards"))


def rule_atomics_order(rel: str, raw: str, code: str, findings: list,
                       allowed=None) -> None:
    allowed = RELAXED_ALLOWED if allowed is None else allowed
    raw_lines = raw.splitlines()
    for m in RELAXED_RE.finditer(code):
        line = line_of(code, m.start())
        if rel not in allowed:
            findings.append(
                (rel, line,
                 "atomics-order: memory_order_relaxed outside the "
                 "audited allowlist; use acq/rel (or seq_cst) or add "
                 "the file to RELAXED_ALLOWED after review"))
        elif not annotated(raw_lines, line, RELAXED_OK_RE):
            findings.append(
                (rel, line,
                 "atomics-order: relaxed use without a "
                 "`// fwdecay: relaxed-ok(<reason>)` annotation on "
                 "this or the previous line"))


# --- lock-order + hotpath-lock machinery ------------------------------------

# `class X : public Y {` / `struct X {`; the extent maps member mutexes
# to their owning class for stable lock identities.
CLASS_DEF_RE = re.compile(
    r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::[^{;()]*)?\{")
ANY_MUTEX_MEMBER_RE = re.compile(
    r"(?:^|[;{])\s*(?:mutable\s+)?(?:fwdecay\s*::\s*)?"
    r"(?:Mutex|sched\s*::\s*ModelMutex|std\s*::\s*(?:shared_|recursive_)?"
    r"mutex)\s+(\w+)\s*;",
    re.M)

# A function definition: name(params) [trailers] [: init-list] {
FUNC_DEF_RE = re.compile(
    r"\b(~?[A-Za-z_]\w*)\s*\(((?:[^;{}()]|\([^()]*\))*)\)\s*"
    r"((?:const|noexcept|final|override|mutable"
    r"|FWDECAY_\w+\s*\((?:[^()]|\([^()]*\))*\))\s*)*"
    r"(?:->\s*[\w:<>&*,\s]+?)?(?::[^{;]*)?\{")
CONTROL_KEYWORDS = frozenset((
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "new", "delete", "do", "else", "case", "operator"))

# RAII acquisition: `MutexLock lock(expr)` and the std lock guards. Only
# the paren form (the brace form would desync the block-depth scan).
RAII_LOCK_RE = re.compile(
    r"\b(?:MutexLock|ModelMutexLock"
    r"|(?:std\s*::\s*)?(?:lock_guard|unique_lock|scoped_lock)"
    r"\s*(?:<[^<>]*>)?)\s+\w+\s*\(\s*([^,();]+)")
EXPLICIT_LOCK_RE = re.compile(
    r"([\w\]](?:[\w.\->\[\]]*?)?)\s*(?:\.|->)\s*Lock\s*\(\s*\)")
EXPLICIT_UNLOCK_RE = re.compile(
    r"([\w\]](?:[\w.\->\[\]]*?)?)\s*(?:\.|->)\s*Unlock\s*\(\s*\)")
# Bare (unqualified) call names only: `Helper(x)` propagates, but
# `obj.size()` / `ptr->Consume()` / `ns::Get()` do not — a method call
# on another object is exactly where bare-name resolution would
# misattribute the callee (e.g. resolve `reservoir_.size()` to the
# locking facade's own size() and fabricate a self-deadlock).
CALL_SITE_RE = re.compile(r"(?<![\w.:>])([A-Za-z_]\w*)\s*\(")
MEMBER_NAME_RE = re.compile(r"([A-Za-z_]\w*)(?:\s*\(\s*\))?\s*$")


def lock_member_name(expr: str):
    """`shard->mu` -> `mu`, `*guard_` -> `guard_`; None when the
    expression has no trailing identifier to name the lock by."""
    m = MEMBER_NAME_RE.search(expr.strip())
    return m.group(1) if m else None


class _Func:
    __slots__ = ("name", "rel", "direct", "calls", "trans", "pending")

    def __init__(self, name, rel):
        self.name = name
        self.rel = rel
        self.direct = set()   # lock labels acquired anywhere in the body
        self.calls = set()    # bare callee names seen in the body
        self.trans = set()    # transitive closure, filled by fixpoint
        self.pending = []     # (held_labels, callee, line) call-under-lock


class LockOrderAnalysis:
    """Cross-file pass: feed every file with add_file(), then finish().

    Pass 1 (during add_file) records, per function definition, the lock
    acquisitions (with the held-set at each acquisition, yielding direct
    nesting edges) and the calls made while locks are held. Pass 2
    (finish) runs a fixpoint over the call graph so a call chain
    f -held A-> g -> h -acquires B- contributes the edge A -> B, then
    reports every cycle in the resulting acquisition graph.
    """

    def __init__(self):
        self.member_owners = {}   # member name -> set of class names
        self.files = []           # (rel, raw, code), scanned in finish()
        self.funcs = []
        self.by_name = {}         # bare name -> [_Func]
        self.edges = {}           # (a, b) -> (rel, line) first witness

    def add_file(self, rel: str, raw: str, code: str) -> None:
        """Collects mutex-member ownership; function bodies are scanned
        in finish(), once ownership is complete across every file (a
        lock used in a .cc must resolve to the class declared in the
        .h, whatever the scan order)."""
        if rel in LOCK_ORDER_EXEMPT:
            return
        self.files.append((rel, raw, code))
        classes = []  # (name, start, end) innermost-wins lookup
        for m in CLASS_DEF_RE.finditer(code):
            brace = code.find("{", m.start())
            classes.append((m.group(1), brace, function_extent(code, brace)))
        for m in ANY_MUTEX_MEMBER_RE.finditer(code):
            owner = None
            best = None
            for name, start, end in classes:
                if start <= m.start() < end and \
                        (best is None or end - start < best):
                    owner, best = name, end - start
            if owner:
                self.member_owners.setdefault(
                    m.group(1), set()).add(owner)

    def _label(self, rel: str, member):
        if member is None:
            return None
        owners = self.member_owners.get(member, set())
        if len(owners) == 1:
            return f"{next(iter(owners))}::{member}"
        # Zero or ambiguous owners: qualify by file so unrelated locks
        # that merely share a member name cannot alias into one node.
        return f"{rel.rsplit('/', 1)[-1]}:{member}"

    def _scan_function(self, rel, fn_name, code, brace, end, raw_lines):
        body = code[brace:end]
        func = _Func(fn_name, rel)
        events = []
        for i, c in enumerate(body):
            if c == "{":
                events.append((i, "open", None))
            elif c == "}":
                events.append((i, "close", None))
        for m in RAII_LOCK_RE.finditer(body):
            events.append((m.start(), "lock", lock_member_name(m.group(1))))
        for m in EXPLICIT_LOCK_RE.finditer(body):
            events.append((m.start(), "lock", lock_member_name(m.group(1))))
        for m in EXPLICIT_UNLOCK_RE.finditer(body):
            events.append(
                (m.start(), "unlock", lock_member_name(m.group(1))))
        for m in CALL_SITE_RE.finditer(body):
            if m.group(1) not in CONTROL_KEYWORDS:
                events.append((m.start(), "call", m.group(1)))
        events.sort(key=lambda e: (e[0], e[1] != "close"))

        depth = 0
        held = []  # (label-or-None, entry depth); None = annotated escape
        for pos, kind, data in events:
            if kind == "open":
                depth += 1
            elif kind == "close":
                depth -= 1
                while held and held[-1][1] > depth:
                    held.pop()
            elif kind == "lock":
                line = line_of(code, brace + pos)
                if annotated(raw_lines, line, LOCK_ORDER_OK_RE):
                    held.append((None, depth))
                    continue
                label = self._label(rel, data)
                for h, _ in held:
                    if h is not None:
                        self.edges.setdefault((h, label), (rel, line))
                if label is not None:
                    func.direct.add(label)
                held.append((label, depth))
            elif kind == "unlock":
                label = self._label(rel, data)
                for i in range(len(held) - 1, -1, -1):
                    if held[i][0] == label:
                        del held[i]
                        break
            elif kind == "call":
                func.calls.add(data)
                held_labels = tuple(h for h, _ in held if h is not None)
                if held_labels:
                    func.pending.append(
                        (held_labels, data, line_of(code, brace + pos)))
        self.funcs.append(func)
        self.by_name.setdefault(fn_name, []).append(func)

    def _resolve(self, callee: str):
        """The transitive acquisitions of a bare callee name — but only
        when exactly one definition of that name acquires locks, so
        overload/shadow ambiguity can silence but never misattribute."""
        acquiring = [f for f in self.by_name.get(callee, ()) if f.trans]
        return acquiring[0].trans if len(acquiring) == 1 else set()

    def finish(self, findings: list) -> None:
        for rel, raw, code in self.files:
            raw_lines = raw.splitlines()
            for m in FUNC_DEF_RE.finditer(code):
                name = m.group(1)
                if name in CONTROL_KEYWORDS:
                    continue
                brace = code.find("{", m.end() - 1)
                end = function_extent(code, brace)
                self._scan_function(rel, name, code, brace, end, raw_lines)
        for f in self.funcs:
            f.trans = set(f.direct)
        changed = True
        while changed:
            changed = False
            for f in self.funcs:
                for callee in f.calls:
                    if callee == f.name:
                        continue
                    extra = self._resolve(callee) - f.trans
                    if extra:
                        f.trans |= extra
                        changed = True
        for f in self.funcs:
            for held_labels, callee, line in f.pending:
                for target in self._resolve(callee):
                    for h in held_labels:
                        self.edges.setdefault((h, target), (f.rel, line))

        adj = {}
        for (a, b) in self.edges:
            adj.setdefault(a, set()).add(b)
        reported = set()
        for (a, b), (rel, line) in sorted(
                self.edges.items(), key=lambda kv: (kv[1], kv[0])):
            cycle = self._path(adj, b, a)
            if cycle is None:
                continue
            nodes = frozenset(cycle) | {a}
            if nodes in reported:
                continue
            reported.add(nodes)
            chain = " -> ".join([a, b] + cycle[1:] + ([a] if a != b else []))
            findings.append(
                (rel, line,
                 f"lock-order: acquisition cycle {chain}; a thread "
                 "holding one side while another holds the other "
                 "deadlocks — impose a single order or annotate with "
                 "`// fwdecay: lock-order-ok(<reason>)`"))

    @staticmethod
    def _path(adj, src, dst):
        """BFS path src..dst (inclusive) or None."""
        if src == dst:
            return [src]
        parent = {src: None}
        queue = [src]
        while queue:
            cur = queue.pop(0)
            for nxt in adj.get(cur, ()):
                if nxt in parent:
                    continue
                parent[nxt] = cur
                if nxt == dst:
                    path = [nxt]
                    while parent[path[-1]] is not None:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                queue.append(nxt)
        return None


def rule_hotpath_lock(rel: str, raw: str, code: str, findings: list) -> None:
    raw_lines = raw.splitlines()
    for m in FUNC_DEF_RE.finditer(code):
        if m.group(1) not in HOTPATH_LOCK_FNS:
            continue
        brace = code.find("{", m.end() - 1)
        end = function_extent(code, brace)
        body = code[brace:end]
        sites = [lm.start() for lm in RAII_LOCK_RE.finditer(body)]
        sites += [lm.start() for lm in EXPLICIT_LOCK_RE.finditer(body)]
        for pos in sorted(sites):
            line = line_of(code, brace + pos)
            if not annotated(raw_lines, line, HOTPATH_LOCK_OK_RE):
                findings.append(
                    (rel, line,
                     f"hotpath-lock: mutex acquisition inside "
                     f"{m.group(1)}() — the batched hot path; annotate "
                     "`// fwdecay: hotpath-lock-ok(<reason>)` if the "
                     "lock is amortized per batch, or move it out"))


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------

class TextEngine:
    """Runs the per-file rules on comment/string-stripped sources."""

    name = "text"

    def analyze(self, rel: str, path: pathlib.Path, raw: str, code: str,
                findings: list) -> None:
        rule_backward_age_text(rel, code, findings)
        rule_exp_pow_text(rel, code, findings)
        rule_deser_bounds(rel, code, findings)
        rule_guarded_by(rel, code, findings)


class AstEngine:
    """libclang-backed engine: backward-age and exp-pow run on the AST
    (sees through macro expansion, ignores disabled #if regions); the
    lexical rules reuse the shared implementations. With a compilation
    database (--compile-commands) each TU parses under its real flags;
    files without an entry (headers, bench/, examples/) fall back to
    the default argument set, or to the textual rules outside src/."""

    name = "ast"

    def __init__(self, root: pathlib.Path, compile_commands=None):
        import clang.cindex as cindex  # raises ImportError when absent
        self.cindex = cindex
        self.index = cindex.Index.create()  # raises when libclang missing
        self.args = ["-x", "c++", "-std=c++20", "-I", str(root / "src")]
        self.db = None
        if compile_commands:
            db_dir = pathlib.Path(compile_commands).resolve()
            if db_dir.is_file():
                db_dir = db_dir.parent
            self.db = cindex.CompilationDatabase.fromDirectory(str(db_dir))

    def _args_for(self, path: pathlib.Path):
        if self.db is not None:
            cmds = self.db.getCompileCommands(str(path.resolve()))
            if cmds:
                argv = list(cmds[0].arguments)
                args, skip = [], True  # first element is the compiler
                for a in argv:
                    if skip:
                        skip = False
                        continue
                    if a == "-o":
                        skip = True
                        continue
                    if a in ("-c", str(path), str(path.resolve())):
                        continue
                    args.append(a)
                return args
        return None

    def analyze(self, rel: str, path: pathlib.Path, raw: str, code: str,
                findings: list) -> None:
        cindex = self.cindex
        args = self._args_for(path)
        if args is None:
            if not rel.startswith("src/"):
                # bench/examples need gtest/benchmark include paths the
                # default args don't carry; the textual rules are exact
                # enough there.
                rule_backward_age_text(rel, code, findings)
                rule_exp_pow_text(rel, code, findings)
                rule_deser_bounds(rel, code, findings)
                rule_guarded_by(rel, code, findings)
                return
            args = self.args
        tu = self.index.parse(str(path), args=args)
        for cur in tu.cursor.walk_preorder():
            if cur.location.file is None or \
                    cur.location.file.name != str(path):
                continue
            if cur.kind == cindex.CursorKind.BINARY_OPERATOR:
                self._check_backward_age(rel, cur, findings)
            elif cur.kind == cindex.CursorKind.CALL_EXPR:
                self._check_exp_pow(rel, cur, findings)
        rule_deser_bounds(rel, code, findings)
        rule_guarded_by(rel, code, findings)

    def _operands(self, cur):
        kids = list(cur.get_children())
        return kids if len(kids) == 2 else None

    def _spelling(self, node) -> str:
        return "".join(t.spelling for t in node.get_tokens())

    def _check_backward_age(self, rel, cur, findings) -> None:
        if rel in BACKWARD_AGE_ALLOWED:
            return
        ops = self._operands(cur)
        if not ops:
            return
        lhs, rhs = (self._spelling(ops[0]), self._spelling(ops[1]))
        toks = [t.spelling for t in cur.get_tokens()]
        if "-" not in toks:
            return
        if lhs in NOW_IDENTIFIERS and ITEM_TS_RE.match(rhs):
            findings.append(
                (rel, cur.location.line,
                 f"backward-age: `{lhs} - {rhs}` computes a per-item "
                 "age from the current time; forward decay weighs items "
                 "as g(t_i - L) (core/decay.h)"))

    def _check_exp_pow(self, rel, cur, findings) -> None:
        if rel in EXP_POW_ALLOWED:
            return
        ref = cur.referenced
        if ref is not None and ref.spelling in ("exp", "pow"):
            findings.append(
                (rel, cur.location.line,
                 f"exp-pow: call to `{ref.spelling}` outside the "
                 "overflow-reviewed allowlist; route decay weights "
                 "through core/decay.h (ExponentialG / ShiftFactor)"))


def make_engine(kind: str, root: pathlib.Path, compile_commands=None):
    if kind in ("auto", "ast"):
        try:
            return AstEngine(root, compile_commands)
        except Exception as exc:  # ImportError or libclang load failure
            if kind == "ast":
                print(f"analyze.py: AST engine unavailable: {exc}",
                      file=sys.stderr)
                return None
            print(f"analyze.py: libclang unavailable ({exc.__class__.__name__});"
                  " falling back to the textual engine", file=sys.stderr)
    return TextEngine()


# ---------------------------------------------------------------------------
# Selftest: the analyzer's own seeded fixtures. Each known-bad snippet
# MUST produce its finding and each clean snippet must not — so a
# regression in the rules fails CI even when the real tree is clean.
# ---------------------------------------------------------------------------

SELFTEST_CASES = [
    # (name, files {rel: text}, substring expected in findings, or None
    #  when the fixture must be clean)
    ("lock-order inversion detected", {
        "src/a.h": """
struct Alpha { Mutex mu_a; int x FWDECAY_GUARDED_BY(mu_a); };
struct Beta { Mutex mu_b; int y FWDECAY_GUARDED_BY(mu_b); };
void First(Alpha& a, Beta& b) {
  MutexLock la(a.mu_a);
  MutexLock lb(b.mu_b);
}
void Second(Alpha& a, Beta& b) {
  MutexLock lb(b.mu_b);
  MutexLock la(a.mu_a);
}
"""}, "lock-order: acquisition cycle"),
    ("lock-order consistent order clean", {
        "src/a.h": """
struct Alpha { Mutex mu_a; int x FWDECAY_GUARDED_BY(mu_a); };
struct Beta { Mutex mu_b; int y FWDECAY_GUARDED_BY(mu_b); };
void First(Alpha& a, Beta& b) {
  MutexLock la(a.mu_a);
  MutexLock lb(b.mu_b);
}
void Second(Alpha& a, Beta& b) {
  MutexLock la(a.mu_a);
  { MutexLock lb(b.mu_b); }
}
"""}, None),
    ("lock-order interprocedural cycle detected", {
        "src/a.h": """
struct Alpha { Mutex mu_a; int x FWDECAY_GUARDED_BY(mu_a); };
struct Gamma { Mutex mu_c; int z FWDECAY_GUARDED_BY(mu_c); };
void Inner(Gamma& c) { MutexLock l(c.mu_c); }
void Outer(Alpha& a, Gamma& c) {
  MutexLock l(a.mu_a);
  Inner(c);
}
""",
        "src/b.cc": """
void Reversed(Gamma& c, Alpha& a) {
  MutexLock l(c.mu_c);
  MutexLock l2(a.mu_a);
}
"""}, "lock-order: acquisition cycle"),
    ("lock-order annotation accepted", {
        "src/a.h": """
struct Alpha { Mutex mu_a; int x FWDECAY_GUARDED_BY(mu_a); };
struct Beta { Mutex mu_b; int y FWDECAY_GUARDED_BY(mu_b); };
void First(Alpha& a, Beta& b) {
  MutexLock la(a.mu_a);
  MutexLock lb(b.mu_b);
}
void Second(Alpha& a, Beta& b) {
  MutexLock lb(b.mu_b);
  // fwdecay: lock-order-ok(selftest: intentional inversion)
  MutexLock la(a.mu_a);
}
"""}, None),
    ("lock-order self-deadlock detected", {
        "src/a.h": """
struct Alpha { Mutex mu_a; int x FWDECAY_GUARDED_BY(mu_a); };
void Helper(Alpha& a) { MutexLock l(a.mu_a); }
void Entry(Alpha& a) {
  MutexLock l(a.mu_a);
  Helper(a);
}
"""}, "lock-order: acquisition cycle"),
    ("atomics-order unannotated relaxed flagged", {
        "src/util/metrics.h": """
void Touch() { v_.fetch_add(1, std::memory_order_relaxed); }
"""}, "atomics-order: relaxed use without"),
    ("atomics-order non-allowlisted file flagged", {
        "src/core/rogue.h": """
// fwdecay: relaxed-ok(annotated but the file is not audited)
void Touch() { v_.fetch_add(1, std::memory_order_relaxed); }
"""}, "atomics-order: memory_order_relaxed outside"),
    ("atomics-order annotated allowlisted clean", {
        "src/util/metrics.h": """
// fwdecay: relaxed-ok(monotone cell; no dependent data to order)
void Touch() { v_.fetch_add(1, std::memory_order_relaxed); }
"""}, None),
    ("hotpath-lock unannotated flagged", {
        "src/dsms/thing.h": """
struct Thing {
  void Consume(const PacketBatch& batch) {
    MutexLock lock(mu_);
    Apply(batch);
  }
  Mutex mu_;
  int state_ FWDECAY_GUARDED_BY(mu_);
};
"""}, "hotpath-lock: mutex acquisition inside Consume()"),
    ("hotpath-lock explicit Lock flagged", {
        "src/dsms/thing.h": """
void UpdateBatch(const Batch& b) {
  mu_.Lock();
  Apply(b);
  mu_.Unlock();
}
"""}, "hotpath-lock: mutex acquisition inside UpdateBatch()"),
    ("hotpath-lock annotation accepted", {
        "src/dsms/thing.h": """
struct Thing {
  void Consume(const PacketBatch& batch) {
    // fwdecay: hotpath-lock-ok(one acquisition amortized per batch)
    MutexLock lock(mu_);
    Apply(batch);
  }
  Mutex mu_;
  int state_ FWDECAY_GUARDED_BY(mu_);
};
"""}, None),
]


def run_selftest() -> int:
    failures = 0
    for name, files, want in SELFTEST_CASES:
        findings = []
        lock_order = LockOrderAnalysis()
        for rel, raw in sorted(files.items()):
            code = strip_comments_and_strings(raw)
            rule_atomics_order(rel, raw, code, findings)
            rule_hotpath_lock(rel, raw, code, findings)
            lock_order.add_file(rel, raw, code)
        lock_order.finish(findings)
        msgs = [msg for _, _, msg in findings]
        if want is None:
            ok = not msgs
            detail = "; ".join(msgs)
        else:
            ok = any(want in msg for msg in msgs)
            detail = f"expected a finding containing {want!r}"
        print(f"selftest: {'PASS' if ok else 'FAIL'}: {name}"
              + ("" if ok else f" ({detail})"))
        failures += 0 if ok else 1
    print(f"analyze.py --selftest: {len(SELFTEST_CASES)} cases, "
          f"{failures} failure(s)")
    return 0 if failures == 0 else 2


def main() -> int:
    ap = argparse.ArgumentParser(
        description="fwdecay semantic analyzer (see module docstring)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    ap.add_argument("--engine", choices=("auto", "ast", "text"),
                    default="auto")
    ap.add_argument("--compile-commands", default=None, metavar="PATH",
                    help="compile_commands.json for the AST engine "
                         "(CMAKE_EXPORT_COMPILE_COMMANDS=ON)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the embedded known-bad/known-good fixtures "
                         "through the rules and exit")
    args = ap.parse_args()
    if args.selftest:
        return run_selftest()
    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent)

    engine = make_engine(args.engine, root, args.compile_commands)
    if engine is None:
        return 2

    findings = []
    count = 0
    lock_order = LockOrderAnalysis()
    for top in SCAN_DIRS:
        for path in sorted((root / top).rglob("*")):
            if path.suffix not in SRC_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            raw = path.read_text(encoding="utf-8")
            code = strip_comments_and_strings(raw)
            engine.analyze(rel, path, raw, code, findings)
            rule_atomics_order(rel, raw, code, findings)
            rule_hotpath_lock(rel, raw, code, findings)
            lock_order.add_file(rel, raw, code)
            count += 1
    lock_order.finish(findings)

    for rel, line, msg in findings:
        print(f"{rel}:{line}: {msg}")
    status = "FAILED" if findings else "OK"
    print(f"analyze.py[{engine.name}]: {count} files analyzed, "
          f"{len(findings)} finding(s) [{status}]")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
