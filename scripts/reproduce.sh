#!/usr/bin/env bash
# Full reproduction run: build, test, and regenerate every figure of the
# paper's evaluation plus the ablation suite. Outputs land in
# test_output.txt and bench_output.txt at the repo root.
#
# Environment knobs:
#   BUILD_DIR         build tree to (re)use            [default: build]
#   CMAKE_BUILD_TYPE  forwarded to cmake               [default: Release]
#   FWDECAY_AUDIT     ON enables the invariant-contract layer: the fuzz
#                     and property suites then run a full CheckInvariants
#                     audit after every mutating op   [default: OFF]
#   FWDECAY_SHARDS    max shard count for the bench_ingest sweep (powers
#                     of two, 1..N); forwarded as --shards — covers both
#                     the mutex-router ("router-v1") and shared-nothing
#                     pipeline ("spsc-v2") arms        [default: 8]
#   FWDECAY_RING      per-shard SPSC ring capacity in batches (power of
#                     two >= 2); forwarded as --ring      [default: 64]
#   FWDECAY_PIN_CORES ON pins pipeline threads round-robin to cores
#                     (router -> core 0, worker s -> core s+1 mod nproc,
#                     DESIGN.md §14.5); forwarded as --pin [default: OFF]
#   FWDECAY_METRICS   OFF compiles the self-instrumentation layer to
#                     no-ops (DESIGN.md §9); bench_ingest rows record
#                     which setting produced them         [default: ON]
#   FWDECAY_SIMD      on | off | force-scalar (DESIGN.md §13.4):
#                     `off` configures -DFWDECAY_SIMD=OFF (vector arms
#                     compiled out); `force-scalar` keeps the default
#                     build but exports FWDECAY_FORCE_SCALAR=1 so
#                     dispatch pins to the scalar arms at startup —
#                     bench_ingest rows record the arm that actually
#                     ran in their "simd" field          [default: on]
#   FWDECAY_SCHED     ON routes fwdecay::Mutex and sched::Atomic through
#                     the schedule-exploring model checker (DESIGN.md
#                     §10): tests/sched_test.cc then explores real
#                     library interleavings under weak-memory
#                     simulation. Use a dedicated BUILD_DIR — the flag
#                     changes the primitives library-wide [default: OFF]
#   FWDECAY_SCHED_SEED    passed through to the test environment: seeds
#                     the model checker's random-walk exploration so a
#                     CI failure reproduces locally (the failing
#                     schedule also prints an FWSCHED1 replay token).
#   FWDECAY_SCHED_REPLAY  passed through likewise: an FWSCHED1 token
#                     makes sched_test re-run exactly that schedule.
#   FWDECAY_SERVER    ON appends the fwdecayd serving smoke (DESIGN.md
#                     §11): scripts/server_smoke.sh starts the daemon,
#                     ingests, polls, scrapes /metrics, SIGKILLs it,
#                     restarts on the same data dir, and verifies every
#                     acknowledged batch survived       [default: OFF]
#   FWDECAY_ANALYZE   dataflow prepends the interprocedural static
#                     analysis gate (DESIGN.md §12): the analyzer
#                     selftest, then the full-tree taint +
#                     hotpath-purity pass — the same invocation as the
#                     CI `dataflow` job. Any finding aborts the run
#                     before the build.                 [default: off]
#   CMAKE_GENERATOR   only applied when BUILD_DIR is fresh; an existing
#                     tree keeps whatever generator configured it (cmake
#                     hard-errors on a generator mismatch otherwise).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
CMAKE_BUILD_TYPE="${CMAKE_BUILD_TYPE:-Release}"
FWDECAY_AUDIT="${FWDECAY_AUDIT:-OFF}"
FWDECAY_SHARDS="${FWDECAY_SHARDS:-8}"
FWDECAY_RING="${FWDECAY_RING:-64}"
FWDECAY_PIN_CORES="${FWDECAY_PIN_CORES:-OFF}"
FWDECAY_METRICS="${FWDECAY_METRICS:-ON}"
FWDECAY_SIMD="${FWDECAY_SIMD:-on}"
FWDECAY_SCHED="${FWDECAY_SCHED:-OFF}"
FWDECAY_SERVER="${FWDECAY_SERVER:-OFF}"
# FWDECAY_SCHED_SEED / FWDECAY_SCHED_REPLAY are read by sched_test at
# runtime; being exported here is all the passthrough they need.
export FWDECAY_SCHED_SEED="${FWDECAY_SCHED_SEED:-}"
export FWDECAY_SCHED_REPLAY="${FWDECAY_SCHED_REPLAY:-}"
FWDECAY_ANALYZE="${FWDECAY_ANALYZE:-}"

if [[ "${FWDECAY_ANALYZE}" == "dataflow" ]]; then
  # Mirrors CI's `dataflow` job: fixtures must be caught, tree must be
  # clean. Engine selection stays `auto` so the gate also runs on
  # toolchains without python3-clang (the rule set is identical).
  python3 scripts/analyze.py --selftest
  python3 scripts/analyze.py --rules taint,hotpath-purity \
    --findings-out dataflow-findings.txt
fi

# FWDECAY_SIMD: `off` is a build-time switch, `force-scalar` a runtime
# one; both end with the scalar arms carrying the whole run.
SIMD_CMAKE=ON
case "${FWDECAY_SIMD}" in
  on|ON) ;;
  off|OFF) SIMD_CMAKE=OFF ;;
  force-scalar) export FWDECAY_FORCE_SCALAR=1 ;;
  *) echo "FWDECAY_SIMD must be on, off, or force-scalar" >&2; exit 2 ;;
esac

CMAKE_ARGS=(-B "${BUILD_DIR}" -S . "-DCMAKE_BUILD_TYPE=${CMAKE_BUILD_TYPE}"
            "-DFWDECAY_AUDIT=${FWDECAY_AUDIT}"
            "-DFWDECAY_METRICS=${FWDECAY_METRICS}"
            "-DFWDECAY_SIMD=${SIMD_CMAKE}"
            "-DFWDECAY_SCHED=${FWDECAY_SCHED}")
if [[ ! -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  # Fresh tree: prefer Ninja when available, else CMake's default
  # (Makefiles — what README and the tier-1 line use).
  if [[ -n "${CMAKE_GENERATOR:-}" ]]; then
    CMAKE_ARGS+=(-G "${CMAKE_GENERATOR}")
  elif command -v ninja >/dev/null 2>&1; then
    CMAKE_ARGS+=(-G Ninja)
  fi
fi

cmake "${CMAKE_ARGS[@]}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

ctest --test-dir "${BUILD_DIR}" --output-on-failure 2>&1 | tee test_output.txt

{
  for b in "${BUILD_DIR}"/bench/bench_fig*; do "$b"; done
  "./${BUILD_DIR}/bench/bench_micro"
  # Ingest-path throughput sweep (per-tuple / batched / sharded /
  # pipeline); appends a JSON line per mode+shard-count to
  # BENCH_ingest.json at the repo root.
  INGEST_ARGS=("--shards=${FWDECAY_SHARDS}" "--ring=${FWDECAY_RING}")
  if [[ "${FWDECAY_PIN_CORES}" == "ON" ]]; then
    INGEST_ARGS+=(--pin)
  fi
  "./${BUILD_DIR}/bench/bench_ingest" "${INGEST_ARGS[@]}"
} 2>&1 | tee bench_output.txt

if [[ "${FWDECAY_SERVER}" == "ON" ]]; then
  BUILD_DIR="${BUILD_DIR}" scripts/server_smoke.sh 2>&1 \
    | tee server_smoke_output.txt
fi
