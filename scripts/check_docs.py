#!/usr/bin/env python3
"""Documentation checker: intra-repo markdown links and required sections.

Two classes of failure, both cheap to introduce silently and annoying to
discover later:

  links      Every relative markdown link `[text](path)` or
             `[text](path#anchor)` in the repo's *.md files must point
             at an existing file; when an anchor is given, the target
             file must contain a heading whose GitHub-style slug matches.
             Bare-URL and external (scheme://) links are ignored.

  sections   Load-bearing sections other docs and code comments refer to
             must exist: renaming "## 9. Observability" in DESIGN.md
             must fail CI until every referrer is updated, not rot
             quietly.

Usage: scripts/check_docs.py [--root DIR]
Exit status is 0 when clean, 1 when any finding is reported.
"""

import argparse
import pathlib
import re
import sys

# (file, regex the file's headings must satisfy) — one entry per section
# that code comments or sibling docs point at by name.
REQUIRED_SECTIONS = [
    ("DESIGN.md", r"^## 6\. Durability"),
    ("DESIGN.md", r"^### 6\.2 Snapshot format \(`FWDSNAP1`\)"),
    ("DESIGN.md", r"^### 6\.\d+ Trace file format \(`FWDTRC02`\)"),
    ("DESIGN.md", r"^## 8\. Batched columnar ingest"),
    ("DESIGN.md", r"^## 9\. Observability"),
    ("DESIGN.md", r"^## 11\. Serving: the `fwdecayd` daemon"),
    ("DESIGN.md", r"^### 11\.3 Durability: journal \+ snapshot \+ manifest"),
    ("DESIGN.md", r"^## 13\. Memory-bandwidth hot path"),
    ("DESIGN.md", r"^### 13\.1 Open-addressing flat group tables"),
    ("DESIGN.md", r"^### 13\.3 Arena-backed group shells"),
    ("DESIGN.md", r"^### 13\.4 SIMD kernels with runtime dispatch"),
    ("DESIGN.md", r"^## 14\. Shared-nothing parallel ingest pipeline"),
    ("DESIGN.md", r"^### 14\.1 The SPSC ring and its memory-order contract"),
    ("DESIGN.md", r"^### 14\.3 Ownership-transfer rules"),
    ("DESIGN.md", r"^### 14\.4 Why the merge at Finish\(\) is bit-exact"),
    ("DESIGN.md", r"^### 14\.5 Core pinning policy"),
    ("README.md", r"^## Observability"),
    ("README.md", r"^## Build flags"),
    ("README.md", r"^## Serving"),
    ("EXPERIMENTS.md", r"^#+.*[Ii]ngest"),
    ("EXPERIMENTS.md", r"^### Scaling curve"),
]

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$", re.M)
CODE_FENCE = re.compile(r"^```.*?^```", re.M | re.S)


def github_slug(heading: str) -> str:
    """GitHub's anchor algorithm, close enough for this repo: inline code
    markers drop, text lowercases, punctuation (except - and _) drops,
    spaces become hyphens."""
    text = heading.replace("`", "")
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(text: str) -> set:
    slugs = set()
    counts = {}
    for m in HEADING.finditer(CODE_FENCE.sub("", text)):
        slug = github_slug(m.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_links(root: pathlib.Path, md_files: list, findings: list) -> None:
    anchor_cache = {}
    for path in md_files:
        rel = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8")
        for m in LINK.finditer(CODE_FENCE.sub("", text)):
            target = m.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # external scheme
                continue
            line = text[: m.start()].count("\n") + 1
            if target.startswith("#"):
                dest, anchor = path, target[1:]
            else:
                frag = target.split("#", 1)
                dest = (path.parent / frag[0]).resolve()
                anchor = frag[1] if len(frag) > 1 else None
                if not dest.exists():
                    findings.append(
                        (rel, line, f"broken link: {target} (no such file)"))
                    continue
            if anchor is not None and dest.suffix == ".md":
                if dest not in anchor_cache:
                    anchor_cache[dest] = anchors_of(
                        dest.read_text(encoding="utf-8"))
                if anchor not in anchor_cache[dest]:
                    findings.append(
                        (rel, line,
                         f"broken anchor: {target} (no matching heading)"))


def check_sections(root: pathlib.Path, findings: list) -> None:
    for fname, pattern in REQUIRED_SECTIONS:
        path = root / fname
        if not path.exists():
            findings.append((fname, 1, "required file is missing"))
            continue
        if not re.search(pattern, path.read_text(encoding="utf-8"), re.M):
            findings.append(
                (fname, 1, f"required section missing: /{pattern}/"))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script's dir)")
    args = ap.parse_args()
    root = (pathlib.Path(args.root) if args.root
            else pathlib.Path(__file__).resolve().parent.parent)

    md_files = sorted(p for p in root.glob("*.md") if p.is_file())
    findings = []
    check_links(root, md_files, findings)
    check_sections(root, findings)

    for rel, line, msg in findings:
        print(f"{rel}:{line}: {msg}")
    status = "FAILED" if findings else "OK"
    print(f"check_docs.py: {len(md_files)} files scanned, "
          f"{len(findings)} finding(s) [{status}]")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
