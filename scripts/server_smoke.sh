#!/usr/bin/env bash
# End-to-end fwdecayd smoke: start the daemon, register + ingest + poll
# through examples/serving_quickstart, scrape /metrics, SIGKILL the
# process mid-life, restart it on the same data dir, and verify every
# acknowledged batch survived. Then a SIGTERM drain must exit 0.
#
# This is the crash-recovery contract of DESIGN.md §11.3 exercised
# against the real binary from the outside — the in-tree twin of
# tests/server_crash_test.cc, runnable by CI (server-smoke job) and by
# `FWDECAY_SERVER=ON scripts/reproduce.sh`.
#
# Environment knobs:
#   BUILD_DIR   build tree holding fwdecayd + serving_quickstart
#               [default: build]
#   PORT_BASE   ingest port; metrics is PORT_BASE+1  [default: derived
#               from PID so parallel CI jobs do not collide]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
PORT_BASE="${PORT_BASE:-$((20000 + ($$ % 20000)))}"
METRICS_PORT=$((PORT_BASE + 1))

DAEMON="${BUILD_DIR}/src/server/fwdecayd"
CLIENT="${BUILD_DIR}/examples/serving_quickstart"
for bin in "${DAEMON}" "${CLIENT}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "server_smoke: missing ${bin} (build first)" >&2
    exit 1
  fi
done

DATA_DIR="$(mktemp -d)"
LOG="${DATA_DIR}/fwdecayd.log"
DAEMON_PID=""
cleanup() {
  [[ -n "${DAEMON_PID}" ]] && kill -9 "${DAEMON_PID}" 2>/dev/null || true
  rm -rf "${DATA_DIR}"
}
trap cleanup EXIT

start_daemon() {
  "${DAEMON}" --data-dir "${DATA_DIR}" --port "${PORT_BASE}" \
      --metrics-port "${METRICS_PORT}" --checkpoint-interval 2 \
      >>"${LOG}" 2>&1 &
  DAEMON_PID=$!
  # The banner is the readiness signal: both listeners are bound (and,
  # on restart, recovery has already completed) once it prints.
  for _ in $(seq 1 100); do
    grep -q "fwdecayd metrics on" "${LOG}" && return 0
    kill -0 "${DAEMON_PID}" 2>/dev/null || break
    sleep 0.1
  done
  echo "server_smoke: daemon failed to start; log follows" >&2
  cat "${LOG}" >&2
  exit 1
}

scrape() {  # scrape <metric-name-regex>
  python3 - "${METRICS_PORT}" "$1" <<'EOF'
import re, sys, urllib.request
port, pattern = sys.argv[1], sys.argv[2]
body = urllib.request.urlopen(
    f"http://127.0.0.1:{port}/metrics", timeout=10).read().decode()
hits = [l for l in body.splitlines()
        if re.match(pattern, l) and not l.startswith("#")]
if not hits:
    sys.exit(f"metric {pattern!r} missing from /metrics scrape")
print("\n".join(hits))
EOF
}

echo "== start (data dir ${DATA_DIR}, ports ${PORT_BASE}/${METRICS_PORT})"
start_daemon

echo "== register + ingest 5 batches + poll"
"${CLIENT}" "${PORT_BASE}" --batches 5

echo "== scrape /metrics"
scrape 'fwdecay_server_batches_acked_total 5(\.0+)?$'
scrape 'fwdecay_server_registered_queries'

echo "== SIGKILL mid-life"
kill -9 "${DAEMON_PID}"
wait "${DAEMON_PID}" 2>/dev/null || true
: >"${LOG}"

echo "== restart on the same data dir"
start_daemon

echo "== verify: recovered query answers, all 5 acked batches survived"
"${CLIENT}" "${PORT_BASE}" --no-register --min-acked 5 \
    --batches 2 --seq-start 6
# Counters are per-process: the restarted daemon acked exactly the two
# post-restart batches (the five recovered ones live in WireStats /
# the snapshot watermark, which --min-acked just checked).
scrape 'fwdecay_server_recoveries_total 1(\.0+)?$'
scrape 'fwdecay_server_batches_acked_total 2(\.0+)?$'

echo "== SIGTERM drain must exit 0"
kill -TERM "${DAEMON_PID}"
wait "${DAEMON_PID}"
DAEMON_PID=""
grep -q "clean shutdown" "${LOG}"

echo "server_smoke: OK"
