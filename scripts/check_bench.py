#!/usr/bin/env python3
"""Bench-smoke regression gate for the batched ingest path.

`bench_ingest` appends one JSON object per line to BENCH_ingest.json,
and the file is committed — so after a CI run the file is the committed
baseline rows followed by the rows this run just measured. This gate
compares each *fresh* `"mode":"batched"` row against the most recent
*committed* batched row measured under the same conditions (same
`"simd"` dispatch arm, same `"metrics"` setting — cross-arm or
cross-config comparisons would measure the config, not the regression)
and fails when ns/packet regressed by more than --max-regression
(default 10%).

Rows without a `"simd"` field (measured before the dispatch layer
existed) are never used as baselines: the gate arms itself the first
time post-SIMD rows are committed. A fresh row with no same-arm
baseline passes vacuously, loudly.

Usage: scripts/check_bench.py [--json BENCH_ingest.json] [--ref HEAD]
                              [--max-regression 0.10]
Exit status 0 when within budget (or no baseline), 1 on regression.
"""

import argparse
import json
import pathlib
import subprocess
import sys


def parse_rows(text):
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if row.get("bench") == "ingest":
            rows.append(row)
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", default="BENCH_ingest.json")
    ap.add_argument("--ref", default="HEAD",
                    help="git ref holding the committed baseline file")
    ap.add_argument("--max-regression", type=float, default=0.10)
    args = ap.parse_args()

    path = pathlib.Path(args.json)
    current = parse_rows(path.read_text(encoding="utf-8"))

    show = subprocess.run(
        ["git", "show", f"{args.ref}:{args.json}"],
        capture_output=True, text=True)
    committed = parse_rows(show.stdout) if show.returncode == 0 else []

    fresh = current[len(committed):]
    fresh_batched = [r for r in fresh if r.get("mode") == "batched"]
    if not fresh_batched:
        print("check_bench.py: no fresh batched rows to gate [OK]")
        return 0

    failures = 0
    for row in fresh_batched:
        arm = row.get("simd")
        metrics = row.get("metrics")
        if arm is None:
            print(f"check_bench.py: fresh row has no simd field, skipping: "
                  f"{row}")
            continue
        baseline = None
        for cand in committed:
            if (cand.get("mode") == "batched" and cand.get("simd") == arm
                    and cand.get("metrics") == metrics):
                baseline = cand  # last match wins: most recent commit
        if baseline is None:
            print(f"check_bench.py: no committed baseline for "
                  f"simd={arm} metrics={metrics} — passing vacuously "
                  f"(fresh: {row['ns_per_packet']:.2f} ns/packet)")
            continue
        limit = baseline["ns_per_packet"] * (1.0 + args.max_regression)
        verdict = "OK" if row["ns_per_packet"] <= limit else "REGRESSION"
        print(f"check_bench.py: batched simd={arm} metrics={metrics}: "
              f"{row['ns_per_packet']:.2f} ns/packet vs baseline "
              f"{baseline['ns_per_packet']:.2f} "
              f"(limit {limit:.2f}) [{verdict}]")
        if verdict != "OK":
            failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
