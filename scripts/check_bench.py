#!/usr/bin/env python3
"""Bench-smoke regression gate for the batched ingest path.

`bench_ingest` appends one JSON object per line to BENCH_ingest.json,
and the file is committed — so after a CI run the file is the committed
baseline rows followed by the rows this run just measured. This gate
compares each *fresh* `"mode":"batched"`, `"mode":"sharded"` or
`"mode":"pipeline"` row against the most recent *committed* row
measured under the same conditions — same mode, same `"shards"` count,
same `"simd"` dispatch arm, same `"metrics"` setting, same
`"pipeline"` generation ("router-v1" mutex router vs "spsc-v2"
shared-nothing pipeline — a generation switch is a rewrite, not a
regression), and same `"nproc"` (a 2-shard run on a 1-core box and on
an 8-core box measure different machines, not a regression) — and
fails when ns/packet regressed by more than --max-regression
(default 10%).

Rows without a `"simd"` field (measured before the dispatch layer
existed) are never used as baselines: the gate arms itself the first
time post-SIMD rows are committed. A fresh row with no
matching-condition baseline passes vacuously, loudly.

Usage: scripts/check_bench.py [--json BENCH_ingest.json] [--ref HEAD]
                              [--max-regression 0.10]
Exit status 0 when within budget (or no baseline), 1 on regression.
"""

import argparse
import json
import pathlib
import subprocess
import sys


def parse_rows(text):
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if row.get("bench") == "ingest":
            rows.append(row)
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--json", default="BENCH_ingest.json")
    ap.add_argument("--ref", default="HEAD",
                    help="git ref holding the committed baseline file")
    ap.add_argument("--max-regression", type=float, default=0.10)
    args = ap.parse_args()

    path = pathlib.Path(args.json)
    current = parse_rows(path.read_text(encoding="utf-8"))

    show = subprocess.run(
        ["git", "show", f"{args.ref}:{args.json}"],
        capture_output=True, text=True)
    committed = parse_rows(show.stdout) if show.returncode == 0 else []

    fresh = current[len(committed):]
    gated_modes = ("batched", "sharded", "pipeline")
    fresh_gated = [r for r in fresh if r.get("mode") in gated_modes]
    if not fresh_gated:
        print("check_bench.py: no fresh gated rows to gate [OK]")
        return 0

    def conditions(row):
        # Baseline key: a comparison is only meaningful between rows
        # that measured the same code path on the same machine shape.
        return (row.get("mode"), row.get("shards"), row.get("simd"),
                row.get("metrics"), row.get("pipeline"),
                row.get("nproc"))

    failures = 0
    for row in fresh_gated:
        if row.get("simd") is None:
            print(f"check_bench.py: fresh row has no simd field, skipping: "
                  f"{row}")
            continue
        key = conditions(row)
        baseline = None
        for cand in committed:
            if conditions(cand) == key:
                baseline = cand  # last match wins: most recent commit
        label = (f"{row['mode']} shards={row.get('shards')} "
                 f"simd={row.get('simd')} metrics={row.get('metrics')} "
                 f"pipeline={row.get('pipeline')} nproc={row.get('nproc')}")
        if baseline is None:
            print(f"check_bench.py: no committed baseline for {label} — "
                  f"passing vacuously "
                  f"(fresh: {row['ns_per_packet']:.2f} ns/packet)")
            continue
        limit = baseline["ns_per_packet"] * (1.0 + args.max_regression)
        verdict = "OK" if row["ns_per_packet"] <= limit else "REGRESSION"
        print(f"check_bench.py: {label}: "
              f"{row['ns_per_packet']:.2f} ns/packet vs baseline "
              f"{baseline['ns_per_packet']:.2f} "
              f"(limit {limit:.2f}) [{verdict}]")
        if verdict != "OK":
            failures += 1

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
