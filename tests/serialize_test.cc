// Tests for summary serialization (Section VI-B: ship statically
// weighted summaries between sites, then merge): byte-level round trips,
// merge-after-transfer equivalence, and corruption/truncation safety.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/count_distinct.h"
#include "core/heavy_hitters.h"
#include "core/quantiles.h"
#include "sketch/dominance_norm.h"
#include "sketch/kmv.h"
#include "sketch/qdigest.h"
#include "sketch/space_saving.h"
#include "util/bytes.h"
#include "util/random.h"
#include "util/zipf.h"

namespace fwdecay {
namespace {

TEST(ByteStreamTest, RoundTripsAllTypes) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU32(123456u);
  w.WriteU64(0xdeadbeefcafef00dULL);
  w.WriteI64(-42);
  w.WriteDouble(3.14159);
  w.WriteString("forward decay");
  ByteReader r(w.bytes());
  std::uint8_t u8 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  double d = 0.0;
  std::string s;
  EXPECT_TRUE(r.ReadU8(&u8));
  EXPECT_TRUE(r.ReadU32(&u32));
  EXPECT_TRUE(r.ReadU64(&u64));
  EXPECT_TRUE(r.ReadI64(&i64));
  EXPECT_TRUE(r.ReadDouble(&d));
  EXPECT_TRUE(r.ReadString(&s));
  EXPECT_TRUE(r.Exhausted());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(s, "forward decay");
}

TEST(ByteStreamTest, ReadsFailOnExhaustion) {
  ByteWriter w;
  w.WriteU8(1);
  ByteReader r(w.bytes());
  std::uint64_t u64 = 0;
  EXPECT_FALSE(r.ReadU64(&u64));
  std::string s;
  EXPECT_FALSE(r.ReadString(&s));
}

TEST(SerializeTest, WeightedSpaceSavingRoundTrip) {
  Rng rng(1);
  ZipfGenerator zipf(500, 1.2);
  WeightedSpaceSaving original(64);
  for (int i = 0; i < 20000; ++i) {
    original.Update(zipf.Next(rng), 1.0 + rng.NextDouble());
  }
  ByteWriter w;
  original.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto restored = WeightedSpaceSaving::Deserialize(&r);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(r.Exhausted());
  EXPECT_DOUBLE_EQ(restored->TotalWeight(), original.TotalWeight());
  EXPECT_EQ(restored->size(), original.size());
  for (const auto& h : original.Query(0.0)) {
    EXPECT_DOUBLE_EQ(restored->Estimate(h.key), h.estimate);
  }
  // The restored sketch keeps working (heap invariant intact).
  for (int i = 0; i < 5000; ++i) {
    restored->Update(zipf.Next(rng), 1.0);
  }
  EXPECT_LE(restored->size(), 64u);
}

TEST(SerializeTest, WeightedSpaceSavingMergeAfterTransfer) {
  Rng rng(2);
  ZipfGenerator zipf(300, 1.3);
  WeightedSpaceSaving site_a(64);
  WeightedSpaceSaving site_b(64);
  WeightedSpaceSaving direct(64);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t key = zipf.Next(rng);
    (i % 2 == 0 ? site_a : site_b).Update(key, 1.0);
    direct.Update(key, 1.0);
  }
  ByteWriter w;
  site_b.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto shipped = WeightedSpaceSaving::Deserialize(&r);
  ASSERT_TRUE(shipped.has_value());
  site_a.Merge(*shipped);
  EXPECT_NEAR(site_a.TotalWeight(), direct.TotalWeight(), 1e-9);
  // Heavy keys agree within the (doubled) merge error.
  for (const auto& h : direct.Query(0.05)) {
    EXPECT_GE(site_a.Estimate(h.key), h.estimate - 2.0 * 30000.0 / 64.0);
  }
}

TEST(SerializeTest, QDigestRoundTrip) {
  Rng rng(3);
  QDigest original(12, 0.02);
  for (int i = 0; i < 30000; ++i) {
    original.Update(rng.NextBounded(1 << 12), 0.5 + rng.NextDouble());
  }
  original.Compress();
  ByteWriter w;
  original.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto restored = QDigest::Deserialize(&r);
  ASSERT_TRUE(restored.has_value());
  EXPECT_DOUBLE_EQ(restored->TotalWeight(), original.TotalWeight());
  EXPECT_EQ(restored->NodeCount(), original.NodeCount());
  for (double phi : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(restored->Quantile(phi), original.Quantile(phi));
  }
}

TEST(SerializeTest, KmvRoundTripPreservesEstimate) {
  KmvSketch original(256, /*hash_seed=*/7);
  for (std::uint64_t k = 0; k < 50000; ++k) original.Insert(k);
  ByteWriter w;
  original.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto restored = KmvSketch::Deserialize(&r);
  ASSERT_TRUE(restored.has_value());
  EXPECT_DOUBLE_EQ(restored->Estimate(), original.Estimate());
  EXPECT_EQ(restored->hash_seed(), 7u);
  // Union with the original is idempotent (same hashes).
  restored->Merge(original);
  EXPECT_DOUBLE_EQ(restored->Estimate(), original.Estimate());
}

TEST(SerializeTest, DominanceNormRoundTrip) {
  Rng rng(4);
  DominanceNormSketch original(512, 1.1, /*hash_seed=*/9);
  for (int i = 0; i < 20000; ++i) {
    original.Update(rng.NextBounded(2000), std::exp(rng.NextDouble() * 8.0));
  }
  ByteWriter w;
  original.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto restored = DominanceNormSketch::Deserialize(&r);
  ASSERT_TRUE(restored.has_value());
  EXPECT_DOUBLE_EQ(restored->Estimate(), original.Estimate());
  EXPECT_EQ(restored->LevelCount(), original.LevelCount());
}

TEST(SerializeTest, DecayedAggregatesRoundTrip) {
  const ForwardDecay<MonomialG> decay(MonomialG(2.0), 100.0);
  DecayedCount<MonomialG> count(decay);
  DecayedMoments<MonomialG> moments(decay);
  for (double ts : {103.0, 104.0, 105.0, 107.0, 108.0}) {
    count.Add(ts);
    moments.Add(ts, ts - 100.0);
  }
  ByteWriter w;
  count.SerializeTo(&w);
  moments.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto count2 = DecayedCount<MonomialG>::Deserialize(decay, &r);
  auto moments2 = DecayedMoments<MonomialG>::Deserialize(decay, &r);
  ASSERT_TRUE(count2.has_value());
  ASSERT_TRUE(moments2.has_value());
  EXPECT_TRUE(r.Exhausted());
  EXPECT_DOUBLE_EQ(count2->Value(110.0), count.Value(110.0));
  EXPECT_DOUBLE_EQ(moments2->Sum(110.0), moments.Sum(110.0));
  EXPECT_DOUBLE_EQ(*moments2->Variance(), *moments.Variance());
}

TEST(SerializeTest, LandmarkMismatchRejected) {
  const ForwardDecay<MonomialG> sender(MonomialG(2.0), 100.0);
  const ForwardDecay<MonomialG> receiver(MonomialG(2.0), 50.0);
  DecayedCount<MonomialG> count(sender);
  count.Add(105.0);
  ByteWriter w;
  count.SerializeTo(&w);
  ByteReader r(w.bytes());
  EXPECT_FALSE(
      DecayedCount<MonomialG>::Deserialize(receiver, &r).has_value());
}

TEST(SerializeTest, HeavyHittersQuantilesDistinctRoundTrip) {
  Rng rng(5);
  ZipfGenerator zipf(200, 1.4);
  const ForwardDecay<ExponentialG> decay(ExponentialG(0.1), 0.0);
  DecayedHeavyHitters<ExponentialG> hh(decay, 0.02);
  DecayedQuantiles<ExponentialG> quant(decay, 10, 0.02);
  DecayedDistinct<ExponentialG> distinct(decay, 512);
  for (int i = 0; i < 20000; ++i) {
    const double ts = rng.NextDouble() * 50.0;
    hh.Add(ts, zipf.Next(rng));
    quant.Add(ts, rng.NextBounded(1 << 10));
    distinct.Add(ts, rng.NextBounded(1000));
  }
  ByteWriter w;
  hh.SerializeTo(&w);
  quant.SerializeTo(&w);
  distinct.SerializeTo(&w);

  ByteReader r(w.bytes());
  auto hh2 = DecayedHeavyHitters<ExponentialG>::Deserialize(decay, &r);
  auto quant2 = DecayedQuantiles<ExponentialG>::Deserialize(decay, &r);
  auto distinct2 = DecayedDistinct<ExponentialG>::Deserialize(decay, &r);
  ASSERT_TRUE(hh2.has_value());
  ASSERT_TRUE(quant2.has_value());
  ASSERT_TRUE(distinct2.has_value());
  EXPECT_TRUE(r.Exhausted());
  EXPECT_DOUBLE_EQ(hh2->DecayedTotal(50.0), hh.DecayedTotal(50.0));
  EXPECT_EQ(quant2->Quantile(0.5), quant.Quantile(0.5));
  EXPECT_DOUBLE_EQ(distinct2->Estimate(50.0), distinct.Estimate(50.0));
  const auto top1 = hh.Query(50.0, 0.05);
  const auto top2 = hh2->Query(50.0, 0.05);
  ASSERT_EQ(top1.size(), top2.size());
  for (std::size_t i = 0; i < top1.size(); ++i) {
    EXPECT_EQ(top1[i].key, top2[i].key);
    EXPECT_DOUBLE_EQ(top1[i].decayed_count, top2[i].decayed_count);
  }
}

TEST(SerializeTest, TruncatedInputsRejectedEverywhere) {
  Rng rng(6);
  WeightedSpaceSaving ss(16);
  for (int i = 0; i < 100; ++i) ss.Update(rng.NextBounded(50), 1.0);
  QDigest qd(8, 0.1);
  for (int i = 0; i < 100; ++i) qd.Update(rng.NextBounded(256), 1.0);
  KmvSketch kmv(8);
  for (std::uint64_t k = 0; k < 100; ++k) kmv.Insert(k);

  ByteWriter w;
  ss.SerializeTo(&w);
  const std::size_t ss_end = w.bytes().size();
  qd.SerializeTo(&w);
  const std::size_t qd_end = w.bytes().size();
  kmv.SerializeTo(&w);
  const auto& bytes = w.bytes();

  // Every strict prefix of each blob must be rejected, never crash.
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, ss_end / 2,
                          ss_end - 1}) {
    ByteReader r(bytes.data(), len);
    EXPECT_FALSE(WeightedSpaceSaving::Deserialize(&r).has_value())
        << "prefix " << len;
  }
  {
    ByteReader r(bytes.data() + ss_end, (qd_end - ss_end) / 2);
    EXPECT_FALSE(QDigest::Deserialize(&r).has_value());
  }
  {
    ByteReader r(bytes.data() + qd_end, 3);
    EXPECT_FALSE(KmvSketch::Deserialize(&r).has_value());
  }
  // Wrong tag: feeding the q-digest blob to the SpaceSaving parser.
  {
    ByteReader r(bytes.data() + ss_end, bytes.size() - ss_end);
    EXPECT_FALSE(WeightedSpaceSaving::Deserialize(&r).has_value());
  }
}

TEST(SerializeTest, CorruptCountFieldRejected) {
  WeightedSpaceSaving ss(4);
  ss.Update(1, 1.0);
  ByteWriter w;
  ss.SerializeTo(&w);
  auto bytes = w.Take();
  // The entry-count field lives after tag+version+capacity+total: claim
  // more counters than capacity.
  const std::size_t count_offset = 1 + 1 + 8 + 8;
  bytes[count_offset] = 0xff;
  ByteReader r(bytes);
  EXPECT_FALSE(WeightedSpaceSaving::Deserialize(&r).has_value());
}

}  // namespace
}  // namespace fwdecay
