// Edge-case and contract tests across modules: numeric boundaries,
// degenerate inputs, check-macro contracts, and subtle behaviours that
// the main suites don't isolate (EH window straddling, q-digest compress
// idempotence, SpaceSaving ties, bucketed landmarks, Value semantics).

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/forward_decay.h"
#include "core/landmark.h"
#include "dsms/value.h"
#include "sketch/exp_histogram.h"
#include "sketch/qdigest.h"
#include "sketch/space_saving.h"
#include "sketch/tdigest.h"
#include "util/check.h"
#include "util/random.h"

namespace fwdecay {
namespace {

// --- check macros --------------------------------------------------------------

TEST(CheckTest, PassingCheckIsSilent) {
  FWDECAY_CHECK(1 + 1 == 2);
  FWDECAY_CHECK_MSG(true, "never printed");
}

TEST(CheckTest, FailingCheckAborts) {
  EXPECT_DEATH(FWDECAY_CHECK(false), "FWDECAY_CHECK failed");
  EXPECT_DEATH(FWDECAY_CHECK_MSG(false, "context here"), "context here");
}

// --- decay functions at boundaries ----------------------------------------------

TEST(DecayEdgeTest, MonomialAtZeroAge) {
  MonomialG g(2.0);
  EXPECT_DOUBLE_EQ(g.G(0.0), 0.0);
  EXPECT_TRUE(std::isinf(g.LogG(0.0)));
  // An item arriving exactly at the landmark has weight 0 forever.
  ForwardDecay<MonomialG> decay(g, 100.0);
  EXPECT_DOUBLE_EQ(decay.Weight(100.0, 110.0), 0.0);
}

TEST(DecayEdgeTest, ConstructorContractViolations) {
  EXPECT_DEATH(MonomialG(-1.0), "positive");
  EXPECT_DEATH(ExponentialG(0.0), "positive");
  EXPECT_DEATH(PolynomialG({1.0, -2.0}), "non-negative");
  EXPECT_DEATH(PolynomialG({}), "coefficients");
}

TEST(DecayEdgeTest, HugeTimestampsStayFiniteForPolynomials) {
  ForwardDecay<MonomialG> decay(MonomialG(3.0), 0.0);
  const double w = decay.StaticWeight(1e15);
  EXPECT_TRUE(std::isfinite(w));
  EXPECT_DOUBLE_EQ(decay.Weight(1e15, 1e15), 1.0);
}

// --- bucketed landmark policy -----------------------------------------------------

TEST(BucketedForwardDecayTest, MatchesTheGsqlIdiom) {
  // (time % 60)^2 / 3600 at query time = bucket end.
  BucketedForwardDecay<MonomialG> bucketed(MonomialG(2.0), 60.0);
  for (double ti : {61.0, 90.0, 119.0}) {
    const double expected =
        std::pow(std::fmod(ti, 60.0), 2.0) / 3600.0;
    EXPECT_NEAR(bucketed.StaticWeight(ti) / 3600.0, expected, 1e-12);
    EXPECT_NEAR(bucketed.Weight(ti, 119.999), expected * 3600.0 /
                                                   std::pow(59.999, 2.0),
                1e-9);
  }
}

TEST(BucketedForwardDecayTest, CrossBucketWeightIsAContractViolation) {
  BucketedForwardDecay<MonomialG> bucketed(MonomialG(2.0), 60.0);
  EXPECT_DEATH(bucketed.Weight(59.0, 61.0), "different buckets");
}

TEST(BucketedForwardDecayTest, DecayForBucketReproducesPerBucketMath) {
  BucketedForwardDecay<ExponentialG> bucketed(ExponentialG(0.1), 60.0);
  const auto decay = bucketed.DecayForBucket(2);  // [120, 180)
  EXPECT_DOUBLE_EQ(decay.landmark(), 120.0);
  EXPECT_NEAR(decay.StaticWeight(150.0), bucketed.StaticWeight(150.0),
              1e-12);
}

// --- exponential histogram straddling ---------------------------------------------

TEST(EhEdgeTest, WindowLargerThanStreamReturnsNearTotal) {
  EhCount eh(0.1);
  for (int i = 1; i <= 1000; ++i) eh.Insert(static_cast<double>(i));
  const double est = eh.CountInWindow(1000.0, 1e9);
  EXPECT_NEAR(est, 1000.0, 0.1 * 1000.0);
}

TEST(EhEdgeTest, TinyWindowCountsOnlyNewest) {
  EhCount eh(0.1);
  for (int i = 1; i <= 1000; ++i) eh.Insert(static_cast<double>(i));
  // Window covering only the final arrival.
  const double est = eh.CountInWindow(1000.0, 0.5);
  EXPECT_GE(est, 0.0);
  EXPECT_LE(est, 8.0);  // at most a few buckets' worth of slack
}

TEST(EhEdgeTest, DuplicateTimestampsAllowed) {
  EhCount eh(0.1);
  for (int i = 0; i < 100; ++i) eh.Insert(5.0);
  EXPECT_EQ(eh.TotalCount(), 100u);
  EXPECT_NEAR(eh.CountInWindow(5.0, 1.0), 100.0, 11.0);
}

// --- q-digest compress idempotence -------------------------------------------------

TEST(QDigestEdgeTest, RepeatedCompressConvergesAndPreservesWeight) {
  // A single bottom-up pass is not strictly idempotent (merging a parent
  // upward can newly enable its children to merge), but repeated passes
  // must monotonically shrink, converge, keep the total weight exact,
  // and keep quantiles within the error bound.
  Rng rng(1);
  QDigest qd(10, 0.05);
  for (int i = 0; i < 10000; ++i) qd.Update(rng.NextBounded(1 << 10), 1.0);
  qd.Compress();
  std::size_t prev = qd.NodeCount();
  const std::uint64_t median_once = qd.Quantile(0.5);
  for (int pass = 0; pass < 5; ++pass) {
    qd.Compress();
    EXPECT_LE(qd.NodeCount(), prev);
    prev = qd.NodeCount();
  }
  // Median stays within the rank error band (values uniform in [0,1024):
  // eps=0.05 rank slack ~ value slack of ~0.05 * 1024 * 2).
  EXPECT_NEAR(static_cast<double>(qd.Quantile(0.5)),
              static_cast<double>(median_once), 110.0);
  EXPECT_DOUBLE_EQ(qd.TotalWeight(), 10000.0);
}

TEST(QDigestEdgeTest, MaxUniverseValueAccepted) {
  QDigest qd(10, 0.1);
  qd.Update((1 << 10) - 1, 1.0);
  EXPECT_EQ(qd.Quantile(1.0), static_cast<std::uint64_t>((1 << 10) - 1));
  EXPECT_DEATH(qd.Update(1 << 10, 1.0), "universe");
}

TEST(QDigestEdgeTest, WeightSpanningManyOrdersOfMagnitude) {
  QDigest qd(10, 0.01);
  qd.Update(100, 1e-6);
  qd.Update(200, 1.0);
  qd.Update(300, 1e6);
  // Essentially all mass sits at 300.
  EXPECT_EQ(qd.Quantile(0.5), 300u);
  EXPECT_NEAR(qd.Rank(250) / qd.TotalWeight(), 1e-6, 1e-5);
}

// --- SpaceSaving ties and degenerate capacities -------------------------------------

TEST(SpaceSavingEdgeTest, AllKeysIdentical) {
  WeightedSpaceSaving ss(4);
  for (int i = 0; i < 1000; ++i) ss.Update(7, 2.0);
  EXPECT_DOUBLE_EQ(ss.Estimate(7), 2000.0);
  EXPECT_EQ(ss.size(), 1u);
  const auto hh = ss.Query(0.99);
  ASSERT_EQ(hh.size(), 1u);
  EXPECT_DOUBLE_EQ(hh[0].error, 0.0);
}

TEST(SpaceSavingEdgeTest, EqualCountTiesEvictConsistently) {
  WeightedSpaceSaving ss(2);
  ss.Update(1, 1.0);
  ss.Update(2, 1.0);
  ss.Update(3, 1.0);  // evicts one of the ties
  EXPECT_EQ(ss.size(), 2u);
  EXPECT_DOUBLE_EQ(ss.TotalWeight(), 3.0);
  EXPECT_DOUBLE_EQ(ss.Estimate(3), 2.0);  // inherited 1.0 + own 1.0
}

TEST(SpaceSavingEdgeTest, TinyWeightsDoNotUnderflowOrdering) {
  WeightedSpaceSaving ss(4);
  ss.Update(1, 1e-300);
  ss.Update(2, 1e-300);
  ss.Update(1, 1e-300);
  EXPECT_GT(ss.Estimate(1), ss.Estimate(2));
}

// --- t-digest degenerate shapes ------------------------------------------------------

TEST(TDigestEdgeTest, AllIdenticalValues) {
  TDigest td(50.0);
  for (int i = 0; i < 10000; ++i) td.Add(7.0, 1.0);
  EXPECT_DOUBLE_EQ(td.Quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(td.Quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(td.Quantile(1.0), 7.0);
  // Tail clusters have small capacity by design, so identical values
  // still occupy multiple centroids — but far fewer than 2*compression.
  EXPECT_LE(td.CentroidCount(), 100u);
}

TEST(TDigestEdgeTest, RejectsNonFiniteValues) {
  TDigest td(50.0);
  EXPECT_DEATH(td.Add(std::numeric_limits<double>::infinity(), 1.0),
               "finite");
  EXPECT_DEATH(td.Add(std::numeric_limits<double>::quiet_NaN(), 1.0),
               "finite");
}

TEST(TDigestEdgeTest, TwoPointDistributionInterpolates) {
  TDigest td(50.0);
  td.Add(0.0, 1.0);
  td.Add(10.0, 1.0);
  const double q = td.Quantile(0.5);
  EXPECT_GE(q, 0.0);
  EXPECT_LE(q, 10.0);
}

// --- Value semantics -------------------------------------------------------------------

TEST(ValueEdgeTest, DivisionByZeroContracts) {
  using dsms::Value;
  const Value a(std::int64_t{10});
  const Value zero(std::int64_t{0});
  EXPECT_DEATH(a / zero, "division by zero");
  EXPECT_DEATH(a % zero, "modulo by zero");
  // Floating division by zero is IEEE inf, not a contract violation.
  const Value fz(0.0);
  EXPECT_TRUE(std::isinf((a / fz).AsDouble()));
}

TEST(ValueEdgeTest, StringArithmeticRejected) {
  using dsms::Value;
  const Value s(std::string("x"));
  const Value i(std::int64_t{1});
  EXPECT_DEATH(s + i, "arithmetic on string");
  EXPECT_DEATH(Compare(s, i), "comparing string");  // found via ADL
}

TEST(ValueEdgeTest, NegativeIntegerDivisionTruncatesTowardZero) {
  using dsms::Value;
  const Value a(std::int64_t{-7});
  const Value b(std::int64_t{2});
  EXPECT_EQ((a / b).AsInt(), -3);  // C++ semantics, documented behaviour
  EXPECT_EQ((a % b).AsInt(), -1);
}

// --- aggregates with zero-weight inputs ---------------------------------------------

TEST(AggregateEdgeTest, LandmarkItemsContributeNothing) {
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 100.0);
  DecayedMoments<MonomialG> m(decay);
  m.Add(100.0, 1e9);  // weight 0
  m.Add(105.0, 4.0);
  EXPECT_NEAR(m.Sum(110.0), 0.25 * 4.0, 1e-12);
  EXPECT_NEAR(*m.Average(), 4.0, 1e-12);
}

TEST(AggregateEdgeTest, QueryBeforeAnyArrivalIsZero) {
  ForwardDecay<ExponentialG> decay(ExponentialG(0.1), 0.0);
  DecayedCount<ExponentialG> count(decay);
  EXPECT_DOUBLE_EQ(count.Value(100.0), 0.0);
}

}  // namespace
}  // namespace fwdecay
