// Tests for the Deterministic Waves sliding-window counter, and a
// cross-check against exponential histograms on the same stream.

#include <cmath>
#include <deque>

#include <gtest/gtest.h>

#include "sketch/exp_histogram.h"
#include "sketch/waves.h"
#include "util/random.h"

namespace fwdecay {
namespace {

TEST(WaveCountTest, ExactForTinyStreams) {
  WaveCount wave(0.1);
  for (int i = 1; i <= 5; ++i) wave.Insert(static_cast<double>(i));
  EXPECT_EQ(wave.TotalCount(), 5u);
  EXPECT_NEAR(wave.CountInWindow(5.0, 10.0), 5.0, 1.0);
  EXPECT_NEAR(wave.CountInWindow(5.0, 2.5), 2.0, 1.0);
}

TEST(WaveCountTest, WindowCountWithinRelativeError) {
  const double eps = 0.05;
  WaveCount wave(eps);
  std::deque<double> stamps;
  Rng rng(1);
  double t = 0.0;
  for (int i = 0; i < 200000; ++i) {
    t += rng.NextExponential(1000.0);
    wave.Insert(t);
    stamps.push_back(t);
  }
  for (double window : {0.05, 0.5, 5.0, 50.0, 500.0}) {
    double truth = 0.0;
    for (double s : stamps) truth += (s >= t - window);
    const double est = wave.CountInWindow(t, window);
    if (truth < 20) continue;
    EXPECT_NEAR(est, truth, eps * truth + 2.0) << "window=" << window;
  }
}

TEST(WaveCountTest, EmptyWindow) {
  WaveCount wave(0.1);
  wave.Insert(1.0);
  wave.Insert(2.0);
  // Window entirely before the data... cutoff after all arrivals.
  EXPECT_NEAR(wave.CountInWindow(10.0, 1.0), 0.0, 1.0);
}

TEST(WaveCountTest, SpaceIsLogarithmic) {
  const double eps = 0.1;
  WaveCount wave(eps);
  for (int i = 1; i <= 100000; ++i) wave.Insert(static_cast<double>(i));
  // O((1/eps) * log(eps * N)) positions.
  const double bound = (1.0 / eps + 2.0) * (std::log2(0.1 * 100000.0) + 3.0);
  EXPECT_LE(wave.StoredPositions(), static_cast<std::size_t>(bound));
}

TEST(WaveCountTest, AgreesWithExponentialHistogram) {
  const double eps = 0.05;
  WaveCount wave(eps);
  EhCount eh(eps);
  Rng rng(2);
  double t = 0.0;
  for (int i = 0; i < 100000; ++i) {
    t += rng.NextExponential(2000.0);
    wave.Insert(t);
    eh.Insert(t);
  }
  for (double window : {0.1, 1.0, 10.0}) {
    const double w_est = wave.CountInWindow(t, window);
    const double e_est = eh.CountInWindow(t, window);
    // Both are (1 +/- eps) of the same truth.
    EXPECT_NEAR(w_est, e_est, 2.0 * eps * std::max(w_est, e_est) + 4.0)
        << "window=" << window;
  }
}

TEST(WaveCountTest, MonotoneInWindowSize) {
  WaveCount wave(0.1);
  Rng rng(3);
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += rng.NextExponential(500.0);
    wave.Insert(t);
  }
  double prev = -1.0;
  for (double window = 0.1; window < 60.0; window *= 2.0) {
    const double est = wave.CountInWindow(t, window);
    EXPECT_GE(est, prev - 1e-9);
    prev = est;
  }
}

}  // namespace
}  // namespace fwdecay
