// Tests for the weighted q-digest: rank-error guarantees, size bounds,
// merge, and the decayed-quantiles wrapper (Theorem 3).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact_reference.h"
#include "core/quantiles.h"
#include "sketch/qdigest.h"
#include "util/random.h"
#include "util/zipf.h"

namespace fwdecay {
namespace {

TEST(QDigestTest, SingleValueQuantiles) {
  QDigest qd(10, 0.05);
  qd.Update(123, 1.0);
  EXPECT_EQ(qd.Quantile(0.0), 123u);
  EXPECT_EQ(qd.Quantile(0.5), 123u);
  EXPECT_EQ(qd.Quantile(1.0), 123u);
}

TEST(QDigestTest, RankErrorWithinEpsUniform) {
  Rng rng(1);
  const double eps = 0.02;
  QDigest qd(16, eps);
  std::vector<std::uint64_t> values;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = rng.NextBounded(1 << 16);
    values.push_back(v);
    qd.Update(v, 1.0);
  }
  std::sort(values.begin(), values.end());
  for (double phi : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const std::uint64_t est = qd.Quantile(phi);
    // True rank of the answer must be within eps*n of phi*n.
    const auto rank = static_cast<double>(
        std::upper_bound(values.begin(), values.end(), est) - values.begin());
    EXPECT_NEAR(rank, phi * n, eps * n + 1)
        << "phi=" << phi << " est=" << est;
  }
}

TEST(QDigestTest, RankErrorWithinEpsSkewed) {
  Rng rng(2);
  ZipfGenerator zipf(1 << 14, 1.2);
  const double eps = 0.02;
  QDigest qd(14, eps);
  std::vector<std::uint64_t> values;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = zipf.Next(rng) - 1;
    values.push_back(v);
    qd.Update(v, 1.0);
  }
  std::sort(values.begin(), values.end());
  for (double phi : {0.1, 0.5, 0.9, 0.99}) {
    const std::uint64_t est = qd.Quantile(phi);
    // With point masses the correct criterion is two-sided: the rank
    // interval [#(< est), #(<= est)] must intersect phi*n ± eps*n.
    const auto rank_incl = static_cast<double>(
        std::upper_bound(values.begin(), values.end(), est) - values.begin());
    const auto rank_below = static_cast<double>(
        std::lower_bound(values.begin(), values.end(), est) - values.begin());
    EXPECT_GE(rank_incl, phi * n - eps * n - 1) << "phi=" << phi;
    EXPECT_LE(rank_below, phi * n + eps * n + 1) << "phi=" << phi;
  }
}

TEST(QDigestTest, WeightedRankError) {
  // Weighted updates: rank error is relative to total weight.
  Rng rng(3);
  const double eps = 0.02;
  QDigest qd(12, eps);
  std::vector<std::pair<std::uint64_t, double>> items;
  double total = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng.NextBounded(1 << 12);
    const double w = 0.1 + rng.NextDouble() * 9.9;
    items.emplace_back(v, w);
    qd.Update(v, w);
    total += w;
  }
  std::sort(items.begin(), items.end());
  auto true_rank = [&](std::uint64_t v) {
    double r = 0.0;
    for (const auto& [value, w] : items) {
      if (value <= v) r += w;
    }
    return r;
  };
  for (double phi : {0.2, 0.5, 0.8}) {
    const std::uint64_t est = qd.Quantile(phi);
    EXPECT_NEAR(true_rank(est), phi * total, eps * total + 10.0);
  }
}

TEST(QDigestTest, SizeStaysCompressed) {
  Rng rng(4);
  const double eps = 0.05;
  QDigest qd(20, eps);
  for (int i = 0; i < 200000; ++i) {
    qd.Update(rng.NextBounded(1 << 20), 1.0);
  }
  qd.Compress();
  // Space bound: O((1/eps) * log U) nodes = k up to constants.
  const double k = 20.0 / eps;
  EXPECT_LE(qd.NodeCount(), static_cast<std::size_t>(3.0 * k));
}

TEST(QDigestTest, RankIsMonotone) {
  Rng rng(5);
  QDigest qd(10, 0.05);
  for (int i = 0; i < 5000; ++i) qd.Update(rng.NextBounded(1 << 10), 1.0);
  double prev = -1.0;
  for (std::uint64_t v = 0; v < (1 << 10); v += 37) {
    const double r = qd.Rank(v);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(QDigestTest, MergeMatchesUnionStream) {
  Rng rng(6);
  const double eps = 0.02;
  QDigest a(12, eps);
  QDigest b(12, eps);
  QDigest both(12, eps);
  std::vector<std::uint64_t> values;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = rng.NextBounded(1 << 12);
    values.push_back(v);
    (i % 2 == 0 ? a : b).Update(v, 1.0);
    both.Update(v, 1.0);
  }
  a.Merge(b);
  EXPECT_NEAR(a.TotalWeight(), both.TotalWeight(), 1e-9);
  std::sort(values.begin(), values.end());
  for (double phi : {0.25, 0.5, 0.75}) {
    const std::uint64_t est = a.Quantile(phi);
    const auto rank = static_cast<double>(
        std::upper_bound(values.begin(), values.end(), est) - values.begin());
    // Merged digests have (at most) doubled error.
    EXPECT_NEAR(rank, phi * n, 2.0 * eps * n + 1);
  }
}

TEST(QDigestTest, ScaleWeightsKeepsQuantiles) {
  Rng rng(7);
  QDigest qd(10, 0.02);
  for (int i = 0; i < 10000; ++i) qd.Update(rng.NextBounded(1 << 10), 1.0);
  const std::uint64_t median_before = qd.Quantile(0.5);
  qd.ScaleWeights(1e-3);
  EXPECT_EQ(qd.Quantile(0.5), median_before);
}

// --- DecayedQuantiles (Theorem 3) -------------------------------------------

TEST(DecayedQuantilesTest, MatchesExactReferenceUnderPolyDecay) {
  Rng rng(8);
  const double eps = 0.02;
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  DecayedQuantiles<MonomialG> dq(decay, 12, eps);
  ExactDecayedReference ref;
  for (int i = 0; i < 30000; ++i) {
    const double ts = rng.NextDouble() * 100.0;
    const std::uint64_t v = rng.NextBounded(1 << 12);
    dq.Add(ts, v);
    ref.Add(ts, v, static_cast<double>(v));
  }
  const auto w = ForwardWeightFn(MonomialG(2.0), 0.0);
  const double t = 100.0;
  const double total = ref.Count(t, w);
  for (double phi : {0.25, 0.5, 0.75, 0.9}) {
    const std::uint64_t est = dq.Quantile(phi);
    const double rank = ref.Rank(t, w, static_cast<double>(est));
    EXPECT_NEAR(rank, phi * total, eps * total + 1.0) << "phi=" << phi;
  }
}

TEST(DecayedQuantilesTest, QuantileValueIsTimeInvariant) {
  Rng rng(9);
  ForwardDecay<MonomialG> decay(MonomialG(1.0), 0.0);
  DecayedQuantiles<MonomialG> dq(decay, 10, 0.05);
  for (int i = 0; i < 5000; ++i) {
    dq.Add(rng.NextDouble() * 50.0, rng.NextBounded(1 << 10));
  }
  // The phi-quantile does not depend on the query time; only ranks do.
  const std::uint64_t q = dq.Quantile(0.5);
  EXPECT_GT(dq.DecayedTotal(50.0), dq.DecayedTotal(100.0));
  EXPECT_EQ(dq.Quantile(0.5), q);
}

TEST(DecayedQuantilesTest, RecentValuesDominateUnderFastDecay) {
  // Early items have value ~100, late items ~3000: with strong decay the
  // decayed median must come from the late regime.
  ForwardDecay<MonomialG> decay(MonomialG(4.0), 0.0);
  DecayedQuantiles<MonomialG> dq(decay, 12, 0.01);
  Rng rng(10);
  for (int i = 0; i < 2000; ++i) {
    dq.Add(1.0 + rng.NextDouble() * 49.0, 100 + rng.NextBounded(100));
  }
  for (int i = 0; i < 2000; ++i) {
    dq.Add(90.0 + rng.NextDouble() * 10.0, 3000 + rng.NextBounded(100));
  }
  EXPECT_GT(dq.Quantile(0.5), 2000u);
}

TEST(DecayedQuantilesTest, MergeCombinesStreams) {
  Rng rng(11);
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  DecayedQuantiles<MonomialG> a(decay, 10, 0.02);
  DecayedQuantiles<MonomialG> b(decay, 10, 0.02);
  for (int i = 0; i < 10000; ++i) {
    const double ts = rng.NextDouble() * 60.0;
    const std::uint64_t v = rng.NextBounded(1 << 10);
    (i % 2 == 0 ? a : b).Add(ts, v);
  }
  const double before = a.DecayedTotal(60.0) + b.DecayedTotal(60.0);
  a.Merge(b);
  EXPECT_NEAR(a.DecayedTotal(60.0), before, before * 1e-9);
}

}  // namespace
}  // namespace fwdecay
