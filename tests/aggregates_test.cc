// Tests for the O(1)-state decayed aggregates (Section IV-A/B) against
// the paper's worked Example 2 and the exact reference evaluator.

#include <cmath>
#include <optional>

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/exact_reference.h"
#include "util/random.h"

namespace fwdecay {
namespace {

const std::pair<double, double> kExampleStream[] = {
    {105, 4}, {107, 8}, {103, 3}, {108, 6}, {104, 4}};

ForwardDecay<MonomialG> ExampleDecay() {
  return ForwardDecay<MonomialG>(MonomialG(2.0), 100.0);
}

TEST(DecayedCountTest, PaperExample2Count) {
  DecayedCount<MonomialG> count(ExampleDecay());
  for (const auto& [ts, v] : kExampleStream) count.Add(ts);
  EXPECT_NEAR(count.Value(110.0), 1.63, 1e-12);
}

TEST(DecayedMomentsTest, PaperExample2SumAndAverage) {
  DecayedMoments<MonomialG> m(ExampleDecay());
  for (const auto& [ts, v] : kExampleStream) m.Add(ts, v);
  EXPECT_NEAR(m.Sum(110.0), 9.67, 1e-12);
  ASSERT_TRUE(m.Average().has_value());
  EXPECT_NEAR(*m.Average(), 9.67 / 1.63, 1e-12);
}

TEST(DecayedMomentsTest, AverageIsTimeInvariant) {
  // Section IV-A: the decayed average does not change as t advances.
  DecayedMoments<MonomialG> m(ExampleDecay());
  for (const auto& [ts, v] : kExampleStream) m.Add(ts, v);
  const double avg = *m.Average();
  // Count and Sum both shrink with t but their ratio is fixed.
  EXPECT_NEAR(m.Sum(200.0) / m.Count(200.0), avg, 1e-12);
  EXPECT_NEAR(m.Sum(1000.0) / m.Count(1000.0), avg, 1e-12);
}

TEST(DecayedMomentsTest, ConstantValuesAverageToThatValue) {
  // "If all items have the same value v, their average should be v no
  // matter when the query is executed."
  DecayedMoments<ExponentialG> m(
      ForwardDecay<ExponentialG>(ExponentialG(0.2), 0.0));
  for (double ts : {1.0, 5.0, 9.0, 13.0}) m.Add(ts, 7.5);
  EXPECT_NEAR(*m.Average(), 7.5, 1e-12);
  ASSERT_TRUE(m.Variance().has_value());
  EXPECT_NEAR(*m.Variance(), 0.0, 1e-12);
}

TEST(DecayedMomentsTest, MatchesExactReference) {
  Rng rng(99);
  ExactDecayedReference ref;
  DecayedMoments<MonomialG> m(
      ForwardDecay<MonomialG>(MonomialG(1.5), 50.0));
  for (int i = 0; i < 500; ++i) {
    const double ts = 50.0 + rng.NextDouble() * 100.0;
    const double v = rng.NextDouble() * 20.0 - 5.0;
    ref.Add(ts, 0, v);
    m.Add(ts, v);
  }
  const auto w = ForwardWeightFn(MonomialG(1.5), 50.0);
  const double t = 160.0;
  EXPECT_NEAR(m.Count(t), ref.Count(t, w), 1e-9);
  EXPECT_NEAR(m.Sum(t), ref.Sum(t, w), 1e-9);
  EXPECT_NEAR(*m.Average(), *ref.Average(t, w), 1e-9);
  EXPECT_NEAR(*m.Variance(), *ref.Variance(t, w), 1e-9);
}

TEST(DecayedCountTest, MergeEqualsUnion) {
  // Section VI-B: distributed partial aggregates merge exactly.
  Rng rng(5);
  DecayedCount<MonomialG> all(ExampleDecay());
  DecayedCount<MonomialG> left(ExampleDecay());
  DecayedCount<MonomialG> right(ExampleDecay());
  for (int i = 0; i < 200; ++i) {
    const double ts = 100.0 + rng.NextDouble() * 50.0;
    all.Add(ts);
    (i % 2 == 0 ? left : right).Add(ts);
  }
  left.Merge(right);
  EXPECT_NEAR(left.Value(160.0), all.Value(160.0), 1e-9);
}

TEST(DecayedCountTest, AddNEqualsRepeatedAdd) {
  DecayedCount<MonomialG> a(ExampleDecay());
  DecayedCount<MonomialG> b(ExampleDecay());
  a.AddN(105.0, 4.0);
  for (int i = 0; i < 4; ++i) b.Add(105.0);
  EXPECT_NEAR(a.Value(110.0), b.Value(110.0), 1e-12);
}

TEST(DecayedCountTest, OutOfOrderArrivalsIrrelevant) {
  // Section VI-B: no algorithm depends on arrival order.
  DecayedCount<MonomialG> fwd(ExampleDecay());
  DecayedCount<MonomialG> rev(ExampleDecay());
  const double stamps[] = {101, 105, 103, 120, 110, 107};
  for (double ts : stamps) fwd.Add(ts);
  for (int i = 5; i >= 0; --i) rev.Add(stamps[i]);
  EXPECT_DOUBLE_EQ(fwd.Value(130.0), rev.Value(130.0));
}

TEST(DecayedCountTest, ExponentialRescaleLandmarkPreservesValue) {
  ForwardDecay<ExponentialG> decay(ExponentialG(0.5), 0.0);
  DecayedCount<ExponentialG> count(decay);
  for (double ts : {1.0, 2.0, 3.0, 10.0}) count.Add(ts);
  const double before = count.Value(12.0);
  count.RescaleLandmark(8.0);
  EXPECT_NEAR(count.Value(12.0), before, 1e-9);
}

TEST(DecayedCountTest, RescalePreventsOverflow) {
  // Without rescaling, static weights at alpha=1 overflow past n ~ 709.
  ForwardDecay<ExponentialG> decay(ExponentialG(1.0), 0.0);
  DecayedCount<ExponentialG> count(decay);
  double t = 0.0;
  for (int i = 0; i < 3000; ++i) {
    t += 1.0;
    count.Add(t);
    if (count.RawWeightedCount() > 1e100) count.RescaleLandmark(t);
  }
  EXPECT_TRUE(std::isfinite(count.RawWeightedCount()));
  // The exponentially decayed count converges to 1/(1-e^-1).
  EXPECT_NEAR(count.Value(t), 1.0 / (1.0 - std::exp(-1.0)), 1e-6);
}

TEST(DecayedExtremumTest, PaperDefinition6) {
  // MIN/MAX of g(ti-L)*vi / g(t-L) over the example stream.
  DecayedMin<MonomialG> mn(ExampleDecay());
  DecayedMax<MonomialG> mx(ExampleDecay());
  for (const auto& [ts, v] : kExampleStream) {
    mn.Add(ts, v);
    mx.Add(ts, v);
  }
  // weights*values: {1.0, 3.92, 0.27, 3.84, 0.64}
  EXPECT_NEAR(*mn.Value(110.0), 0.09 * 3.0, 1e-12);
  EXPECT_NEAR(*mx.Value(110.0), 0.49 * 8.0, 1e-12);
}

TEST(DecayedExtremumTest, MatchesExactReference) {
  Rng rng(321);
  ExactDecayedReference ref;
  DecayedMin<ExponentialG> mn(
      ForwardDecay<ExponentialG>(ExponentialG(0.1), 0.0));
  DecayedMax<ExponentialG> mx(
      ForwardDecay<ExponentialG>(ExponentialG(0.1), 0.0));
  for (int i = 0; i < 300; ++i) {
    const double ts = rng.NextDouble() * 40.0;
    const double v = rng.NextDouble() * 10.0 - 3.0;  // negatives included
    ref.Add(ts, 0, v);
    mn.Add(ts, v);
    mx.Add(ts, v);
  }
  const auto w = BackwardWeightFn(ExponentialF(0.1));  // == forward exp
  EXPECT_NEAR(*mn.Value(50.0), *ref.Min(50.0, w), 1e-9);
  EXPECT_NEAR(*mx.Value(50.0), *ref.Max(50.0, w), 1e-9);
}

TEST(DecayedExtremumTest, ArgItemTracksTheExtremum) {
  DecayedMax<MonomialG> mx(ExampleDecay());
  for (const auto& [ts, v] : kExampleStream) mx.Add(ts, v);
  ASSERT_TRUE(mx.ArgItem().has_value());
  EXPECT_DOUBLE_EQ(mx.ArgItem()->ts, 107.0);
  EXPECT_DOUBLE_EQ(mx.ArgItem()->value, 8.0);
}

TEST(DecayedExtremumTest, MergeTakesTheBetter) {
  DecayedMax<MonomialG> a(ExampleDecay());
  DecayedMax<MonomialG> b(ExampleDecay());
  a.Add(105.0, 4.0);
  b.Add(107.0, 8.0);
  a.Merge(b);
  EXPECT_NEAR(*a.Value(110.0), 0.49 * 8.0, 1e-12);
}

TEST(DecayedAggregatesTest, EmptyStateYieldsNulloptOrZero) {
  DecayedMoments<MonomialG> m(ExampleDecay());
  EXPECT_FALSE(m.Average().has_value());
  EXPECT_FALSE(m.Variance().has_value());
  EXPECT_DOUBLE_EQ(m.Count(110.0), 0.0);
  DecayedMin<MonomialG> mn(ExampleDecay());
  EXPECT_FALSE(mn.Value(110.0).has_value());
}

TEST(ExactReferenceTest, QuantileAndHeavyHittersBasics) {
  ExactDecayedReference ref;
  // Keys equal to values for convenience.
  for (const auto& [ts, v] : kExampleStream) {
    ref.Add(ts, static_cast<std::uint64_t>(v), v);
  }
  const auto w = ForwardWeightFn(MonomialG(2.0), 100.0);
  // Example 3: phi=0.2 heavy hitters are {4, 6, 8}.
  const auto hh = ref.HeavyHitters(110.0, w, 0.2);
  ASSERT_EQ(hh.size(), 3u);
  EXPECT_EQ(hh[0].first, 6u);  // d_6 = 0.64 dominates
  EXPECT_EQ(hh[1].first, 8u);
  EXPECT_EQ(hh[2].first, 4u);
  // Ranks: r_3 = 0.09, r_4 = 0.50, r_6 = 1.14, r_8 = 1.63.
  EXPECT_NEAR(ref.Rank(110.0, w, 4.0), 0.50, 1e-12);
  // Median (phi=0.5): first value whose rank >= 0.815 is 6.
  EXPECT_DOUBLE_EQ(*ref.Quantile(110.0, w, 0.5), 6.0);
}

TEST(ExactReferenceTest, CountDistinctUsesMaxWeight) {
  ExactDecayedReference ref;
  ref.Add(105.0, /*key=*/1, 0.0);
  ref.Add(108.0, /*key=*/1, 0.0);  // same key, later ⇒ larger weight
  ref.Add(103.0, /*key=*/2, 0.0);
  const auto w = ForwardWeightFn(MonomialG(2.0), 100.0);
  // D = max(0.25, 0.64) + 0.09 = 0.73.
  EXPECT_NEAR(ref.CountDistinct(110.0, w), 0.73, 1e-12);
}

}  // namespace
}  // namespace fwdecay
