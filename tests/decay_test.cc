// Tests for the decay-function taxonomy and the forward-decay engine:
// Definition 1 properties, the paper's worked Example 1, the forward ==
// backward coincidence for exponential decay (Section III-A), the
// relative-decay property (Lemma 1), and landmark rescaling (Section VI-A).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/decay.h"
#include "core/forward_decay.h"

namespace fwdecay {
namespace {

// The stream of Example 1: (timestamp, value).
const std::pair<double, double> kExampleStream[] = {
    {105, 4}, {107, 8}, {103, 3}, {108, 6}, {104, 4}};

TEST(ForwardDecayTest, PaperExample1Weights) {
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 100.0);
  const double expected[] = {0.25, 0.49, 0.09, 0.64, 0.16};
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(decay.Weight(kExampleStream[i].first, 110.0), expected[i],
                1e-12);
  }
}

TEST(ForwardDecayTest, WeightIsOneAtArrival) {
  // Definition 1, condition 1: w(i, t) = 1 when t = t_i.
  ForwardDecay<MonomialG> poly(MonomialG(3.0), 0.0);
  ForwardDecay<ExponentialG> exp_decay(ExponentialG(0.5), 0.0);
  ForwardDecay<LogarithmicG> log_decay(LogarithmicG{}, 0.0);
  for (double ti : {0.5, 1.0, 7.25, 100.0}) {
    EXPECT_DOUBLE_EQ(poly.Weight(ti, ti), 1.0);
    EXPECT_DOUBLE_EQ(exp_decay.Weight(ti, ti), 1.0);
    EXPECT_DOUBLE_EQ(log_decay.Weight(ti, ti), 1.0);
  }
}

// Property sweep over all forward decay functions: weights lie in [0, 1]
// and are monotone non-increasing in the query time (Definition 1).
template <typename G>
void CheckDecayFunctionProperties(G g) {
  ForwardDecay<G> decay(std::move(g), 10.0);
  const double ti = 14.0;
  double prev = 1.0;
  for (double t = ti; t <= 200.0; t += 0.7) {
    const double w = decay.Weight(ti, t);
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0 + 1e-12);
    EXPECT_LE(w, prev + 1e-12) << "weight increased at t=" << t;
    prev = w;
  }
}

TEST(ForwardDecayTest, AllFunctionsSatisfyDefinition1) {
  CheckDecayFunctionProperties(NoDecayG{});
  CheckDecayFunctionProperties(MonomialG(1.0));
  CheckDecayFunctionProperties(MonomialG(2.0));
  CheckDecayFunctionProperties(MonomialG(0.5));
  CheckDecayFunctionProperties(PolynomialG({1.0, 2.0, 3.0}));
  CheckDecayFunctionProperties(ExponentialG(0.1));
  CheckDecayFunctionProperties(LandmarkWindowG{});
  CheckDecayFunctionProperties(LogarithmicG{});
}

TEST(ForwardDecayTest, ExponentialForwardEqualsBackward) {
  // Section III-A: forward g(n) = exp(alpha n) gives exactly
  // w = exp(-alpha (t - t_i)) for ANY landmark choice.
  const double alpha = 0.37;
  ExponentialF backward(alpha);
  for (double landmark : {0.0, 50.0, 99.0}) {
    ForwardDecay<ExponentialG> forward(ExponentialG(alpha), landmark);
    for (double ti : {100.0, 123.5, 200.0}) {
      for (double t : {ti, ti + 1.0, ti + 10.0, ti + 50.0}) {
        EXPECT_NEAR(forward.Weight(ti, t), backward.F(t - ti) / backward.F(0),
                    1e-12);
      }
    }
  }
}

TEST(ForwardDecayTest, PolynomialForwardDiffersFromBackward) {
  // The coincidence is special to exponential decay: monomial forward
  // decay is NOT backward polynomial decay.
  ForwardDecay<MonomialG> forward(MonomialG(2.0), 0.0);
  PolynomialF backward(2.0);
  const double ti = 10.0;
  const double t = 20.0;
  EXPECT_GT(std::abs(forward.Weight(ti, t) - backward.F(t - ti)), 0.05);
}

TEST(ForwardDecayTest, RelativeDecayPropertyForMonomials) {
  // Lemma 1: items at fraction gamma of [L, t] get weight gamma^beta,
  // for every query time t.
  for (double beta : {0.5, 1.0, 2.0, 3.0}) {
    ForwardDecay<MonomialG> decay(MonomialG(beta), 100.0);
    for (double gamma : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      for (double t : {110.0, 200.0, 1000.0}) {
        const double ti = gamma * t + (1.0 - gamma) * 100.0;
        EXPECT_NEAR(decay.Weight(ti, t), std::pow(gamma, beta), 1e-9)
            << "beta=" << beta << " gamma=" << gamma << " t=" << t;
      }
    }
  }
}

TEST(ForwardDecayTest, RelativeDecayFailsForExponential) {
  // Exponential forward decay does NOT have the relative decay property:
  // the half-way item's weight changes with t.
  ForwardDecay<ExponentialG> decay(ExponentialG(0.1), 100.0);
  const double w1 = decay.Weight(105.0, 110.0);   // halfway at t=110
  const double w2 = decay.Weight(150.0, 200.0);   // halfway at t=200
  EXPECT_GT(std::abs(w1 - w2), 0.01);
}

TEST(ForwardDecayTest, LandmarkWindowWeights) {
  ForwardDecay<LandmarkWindowG> decay(LandmarkWindowG{}, 100.0);
  EXPECT_DOUBLE_EQ(decay.Weight(101.0, 500.0), 1.0);
  EXPECT_DOUBLE_EQ(decay.Weight(499.0, 500.0), 1.0);
  // Items exactly at the landmark carry weight 0 (n = 0 is outside the
  // open window n > 0).
  EXPECT_DOUBLE_EQ(decay.StaticWeight(100.0), 0.0);
}

TEST(ForwardDecayTest, ScalingGHasNoEffectOnWeights) {
  // "Scaling g by a constant has no effect" (after Definition 3):
  // PolynomialG with coefficients {0,0,c} is c * n^2.
  ForwardDecay<MonomialG> base(MonomialG(2.0), 100.0);
  ForwardDecay<PolynomialG> scaled(PolynomialG({0.0, 0.0, 17.0}), 100.0);
  for (const auto& [ts, value] : kExampleStream) {
    EXPECT_NEAR(base.Weight(ts, 110.0), scaled.Weight(ts, 110.0), 1e-12);
  }
}

TEST(ForwardDecayTest, LogStaticWeightMatchesLogOfStaticWeight) {
  ForwardDecay<MonomialG> poly(MonomialG(2.5), 10.0);
  ForwardDecay<ExponentialG> exp_decay(ExponentialG(0.3), 10.0);
  for (double ti : {11.0, 15.0, 42.0}) {
    EXPECT_NEAR(poly.LogStaticWeight(ti), std::log(poly.StaticWeight(ti)),
                1e-12);
    EXPECT_NEAR(exp_decay.LogStaticWeight(ti),
                std::log(exp_decay.StaticWeight(ti)), 1e-9);
  }
}

TEST(ForwardDecayTest, LogStaticWeightRobustWhereLinearOverflows) {
  // For exponential g over a long horizon the static weight overflows a
  // double, but the log-domain value is exact — the property the
  // samplers rely on.
  ForwardDecay<ExponentialG> decay(ExponentialG(1.0), 0.0);
  EXPECT_TRUE(std::isinf(decay.StaticWeight(1000.0)));
  EXPECT_DOUBLE_EQ(decay.LogStaticWeight(1000.0), 1000.0);
}

TEST(ForwardDecayTest, RescaleLandmarkPreservesWeights) {
  // Section VI-A: for exponential g, moving the landmark and multiplying
  // stored static weights by the shift factor leaves all results
  // unchanged.
  ForwardDecay<ExponentialG> decay(ExponentialG(0.25), 100.0);
  const double ti = 140.0;
  const double t = 150.0;
  const double static_before = decay.StaticWeight(ti);
  const double weight_before = decay.Weight(ti, t);
  const double factor = decay.RescaleLandmark(130.0);
  EXPECT_DOUBLE_EQ(decay.landmark(), 130.0);
  EXPECT_NEAR(static_before * factor, decay.StaticWeight(ti), 1e-9);
  EXPECT_NEAR(decay.Weight(ti, t), weight_before, 1e-12);
}

TEST(AnyForwardGTest, WrapsConcreteFunctions) {
  AnyForwardG any(MonomialG(2.0));
  MonomialG concrete(2.0);
  for (double n : {0.5, 1.0, 9.0}) {
    EXPECT_DOUBLE_EQ(any.G(n), concrete.G(n));
    EXPECT_DOUBLE_EQ(any.LogG(n), concrete.LogG(n));
  }
  EXPECT_STREQ(any.name(), "monomial");
  // And it composes with the decay engine like any other G.
  ForwardDecay<AnyForwardG> decay(AnyForwardG(ExponentialG(0.1)), 0.0);
  EXPECT_NEAR(decay.Weight(5.0, 10.0), std::exp(-0.5), 1e-12);
}

TEST(BackwardDecayTest, FunctionsSatisfyDefinition1) {
  // f(0) normalized weight is 1; weights non-increasing with age.
  auto check = [](auto f) {
    EXPECT_DOUBLE_EQ(f.F(0.0) / f.F(0.0), 1.0);
    double prev = f.F(0.0);
    for (double age = 0.0; age <= 100.0; age += 0.5) {
      const double cur = f.F(age);
      EXPECT_LE(cur, prev + 1e-12);
      EXPECT_GE(cur, 0.0);
      prev = cur;
    }
  };
  check(NoDecayF{});
  check(SlidingWindowF(30.0));
  check(ExponentialF(0.2));
  check(PolynomialF(1.5));
  check(SuperExponentialF(0.01));
  check(SubPolynomialF{});
}

TEST(BackwardDecayTest, SlidingWindowCutsOffAtW) {
  SlidingWindowF f(10.0);
  EXPECT_DOUBLE_EQ(f.F(9.999), 1.0);
  EXPECT_DOUBLE_EQ(f.F(10.0), 0.0);
}

TEST(PolynomialGTest, HornerMatchesDirectEvaluation) {
  PolynomialG g({1.0, 2.0, 0.0, 4.0});  // 1 + 2n + 4n^3
  for (double n : {0.0, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(g.G(n), 1.0 + 2.0 * n + 4.0 * n * n * n, 1e-12);
  }
}

}  // namespace
}  // namespace fwdecay
