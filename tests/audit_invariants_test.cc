// Meta-tests for the FWDECAY_AUDIT contract layer (DESIGN.md §7).
//
// Two halves:
//
//  1. Positive: drive every sketch, sampler, and the engine through
//     randomized op sequences and call CheckInvariants() directly after
//     each phase. These run in EVERY build (the methods are always
//     compiled); they prove the audits themselves are sound — an audit
//     that aborts on a legal state would poison the fuzz harnesses.
//
//  2. Corruption death tests: serialize a healthy sketch, patch bytes
//     that Deserialize() deliberately does NOT cross-validate (forged
//     totals, error > count, out-of-range HLL ranks), confirm
//     Deserialize() still accepts the frame, then prove CheckInvariants()
//     catches what the parser let through — each corruption must abort
//     with the FWDECAY_CHECK banner. This pins down the division of
//     labor: Deserialize() guards memory safety, CheckInvariants()
//     guards semantic integrity.
//
// Byte offsets below are against util/bytes.h's ByteWriter, which
// writes fixed-width fields host-endian with no padding, so each
// patched field sits at a computable offset from the frame start.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_reservoir.h"
#include "core/decay.h"
#include "core/decaying_reservoir.h"
#include "core/forward_decay.h"
#include "dsms/engine.h"
#include "dsms/packet.h"
#include "sampling/biased_reservoir.h"
#include "sampling/priority_sampling.h"
#include "sampling/reservoir.h"
#include "sampling/weighted_reservoir.h"
#include "sampling/with_replacement.h"
#include "sketch/backward_sum.h"
#include "sketch/count_min.h"
#include "sketch/dominance_norm.h"
#include "sketch/exp_histogram.h"
#include "sketch/hll.h"
#include "sketch/kmv.h"
#include "sketch/qdigest.h"
#include "sketch/sliding_hh.h"
#include "sketch/space_saving.h"
#include "util/bytes.h"
#include "util/random.h"

namespace fwdecay {
namespace {

constexpr char kCheckBanner[] = "FWDECAY_CHECK failed";

template <typename S>
std::vector<std::uint8_t> Serialize(const S& s) {
  ByteWriter writer;
  s.SerializeTo(&writer);
  return writer.bytes();
}

void PatchDouble(std::vector<std::uint8_t>* bytes, std::size_t offset,
                 double v) {
  ASSERT_LE(offset + sizeof v, bytes->size());
  std::memcpy(bytes->data() + offset, &v, sizeof v);
}

void PatchU64(std::vector<std::uint8_t>* bytes, std::size_t offset,
              std::uint64_t v) {
  ASSERT_LE(offset + sizeof v, bytes->size());
  std::memcpy(bytes->data() + offset, &v, sizeof v);
}

double ReadDoubleAt(const std::vector<std::uint8_t>& bytes,
                    std::size_t offset) {
  double v = 0.0;
  std::memcpy(&v, bytes.data() + offset, sizeof v);
  return v;
}

std::uint64_t ReadU64At(const std::vector<std::uint8_t>& bytes,
                        std::size_t offset) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + offset, sizeof v);
  return v;
}

// ---------------------------------------------------------------------------
// Positive audits: legal op sequences never trip an invariant.
// ---------------------------------------------------------------------------

TEST(AuditInvariantsTest, WeightedSpaceSavingPassesThroughOps) {
  Rng rng(0xa0d17001);
  WeightedSpaceSaving ss(48);
  WeightedSpaceSaving side(48);
  for (int i = 0; i < 4000; ++i) {
    ss.Update(rng.NextBounded(300), 0.1 + rng.NextDouble() * 5.0);
    if (i % 3 == 0) side.Update(rng.NextBounded(300), rng.NextDouble());
    if (i % 500 == 499) {
      ss.ScaleWeights(0.25 + rng.NextDouble());
      ss.CheckInvariants();
    }
  }
  ss.CheckInvariants();
  side.CheckInvariants();
  ss.Merge(side);
  ss.CheckInvariants();

  const std::vector<std::uint8_t> bytes = Serialize(ss);
  ByteReader reader(bytes);
  std::optional<WeightedSpaceSaving> back =
      WeightedSpaceSaving::Deserialize(&reader);
  ASSERT_TRUE(back.has_value());
  back->CheckInvariants();
}

TEST(AuditInvariantsTest, UnarySpaceSavingPassesThroughOps) {
  Rng rng(0xa0d17002);
  UnarySpaceSaving ss(32);
  for (int i = 0; i < 20000; ++i) {
    // Skewed integer stream: low keys recur, creating deep buckets.
    ss.Update(rng.NextBounded(1 + rng.NextBounded(500)));
    if (i % 4096 == 0) ss.CheckInvariants();
  }
  ss.CheckInvariants();

  const std::vector<std::uint8_t> bytes = Serialize(ss);
  ByteReader reader(bytes);
  std::optional<UnarySpaceSaving> back = UnarySpaceSaving::Deserialize(&reader);
  ASSERT_TRUE(back.has_value());
  back->CheckInvariants();
}

TEST(AuditInvariantsTest, QDigestPassesThroughOps) {
  Rng rng(0xa0d17003);
  QDigest qd(10, 0.05);
  QDigest side(10, 0.05);
  for (int i = 0; i < 5000; ++i) {
    qd.Update(rng.NextBounded(1024), 0.25 + rng.NextDouble() * 4.0);
    if (i % 5 == 0) side.Update(rng.NextBounded(1024), rng.NextDouble());
    if (i % 700 == 699) {
      qd.ScaleWeights(0.5 + rng.NextDouble());
      qd.Compress();
      qd.CheckInvariants();
    }
  }
  qd.Merge(side);
  qd.CheckInvariants();
  side.CheckInvariants();
}

TEST(AuditInvariantsTest, ExpHistogramsPassThroughOps) {
  Rng rng(0xa0d17004);
  EhCount infinite(0.05);
  EhCount windowed(0.05, /*horizon=*/40.0);
  EhSum sum(0.05, /*value_bits=*/12);
  double ts = 0.0;
  for (int i = 0; i < 30000; ++i) {
    ts += rng.NextDouble() * 0.01;
    infinite.Insert(ts);
    windowed.Insert(ts);  // expires buckets past the horizon as it goes
    sum.Insert(ts, rng.NextBounded(1 << 12));
    if (i % 5000 == 0) {
      infinite.CheckInvariants();
      windowed.CheckInvariants();
      sum.CheckInvariants();
    }
  }
  infinite.CheckInvariants();
  windowed.CheckInvariants();
  sum.CheckInvariants();
}

TEST(AuditInvariantsTest, SlidingHeavyHittersPassThroughOps) {
  Rng rng(0xa0d17005);
  SlidingWindowHeavyHitters hh(0.02);
  double ts = 0.0;
  for (int i = 0; i < 20000; ++i) {
    ts += rng.NextDouble() * 0.05;
    hh.Update(ts, rng.NextBounded(1 + rng.NextBounded(400)));
    if (i % 4000 == 0) hh.CheckInvariants();
  }
  hh.CheckInvariants();
}

TEST(AuditInvariantsTest, DistinctSketchesPassThroughOps) {
  Rng rng(0xa0d17006);
  KmvSketch kmv(64);
  KmvSketch kmv_side(64);
  HllSketch hll(12);
  DominanceNormSketch dom(32);
  HllDominanceNormSketch hdom(10);
  for (int i = 0; i < 8000; ++i) {
    const std::uint64_t key = rng.Next64();
    kmv.Insert(key);
    if (i % 2 == 0) kmv_side.Insert(rng.Next64());
    hll.Insert(key);
    dom.Update(rng.NextBounded(500), 0.5 + rng.NextDouble() * 20.0);
    hdom.Update(rng.NextBounded(500), 0.5 + rng.NextDouble() * 20.0);
  }
  kmv.Merge(kmv_side);
  kmv.CheckInvariants();
  hll.CheckInvariants();
  dom.CheckInvariants();
  hdom.CheckInvariants();
}

TEST(AuditInvariantsTest, CountMinPassesThroughOps) {
  Rng rng(0xa0d17007);
  CountMinSketch cm(0.01, 0.01);
  CountMinSketch side(0.01, 0.01);
  for (int i = 0; i < 5000; ++i) {
    cm.Update(rng.NextBounded(2000), 0.1 + rng.NextDouble() * 3.0);
    side.Update(rng.NextBounded(2000), rng.NextDouble());
  }
  cm.ScaleWeights(0.75);
  cm.Merge(side);
  cm.CheckInvariants();
  side.CheckInvariants();
}

TEST(AuditInvariantsTest, BackwardAggregatorPassesThroughOps) {
  Rng rng(0xa0d17008);
  BackwardDecayedAggregator agg(0.05, /*value_bits=*/10);
  double ts = 0.0;
  for (int i = 0; i < 10000; ++i) {
    ts += rng.NextDouble() * 0.02;
    agg.Insert(ts, rng.NextBounded(1 << 10));
    if (i % 2500 == 0) agg.CheckInvariants();
  }
  agg.CheckInvariants();
}

TEST(AuditInvariantsTest, SamplersPassThroughOps) {
  Rng rng(0xa0d17009);
  const ForwardDecay<ExponentialG> decay(ExponentialG(0.05), 0.0);
  ReservoirSampler<double> plain(32);
  SkipReservoirSampler<double> skip(32, &rng);
  BiasedReservoirSampler<double> biased(32);
  PrioritySampler<double, ExponentialG> priority(decay, 32);
  WeightedReservoirSampler<double, ExponentialG> ares(decay, 32);
  ExpJumpsReservoirSampler<double, ExponentialG> jumps(decay, 32);
  ForwardDecaySamplerWR<double, ExponentialG> wr(decay, 8);
  for (int i = 0; i < 5000; ++i) {
    const double ts = static_cast<double>(i) * 0.01;
    const double v = rng.NextDouble();
    plain.Add(v, rng);
    skip.Add(v);
    biased.Add(v, rng);
    priority.Add(ts, v, rng);
    ares.Add(ts, v, rng);
    jumps.Add(ts, v, rng);
    wr.Add(ts, v, rng);
    if (i % 1000 == 0) {
      plain.CheckInvariants();
      skip.CheckInvariants();
      biased.CheckInvariants();
      priority.CheckInvariants();
      ares.CheckInvariants();
      jumps.CheckInvariants();
      wr.CheckInvariants();
    }
  }
  plain.CheckInvariants();
  skip.CheckInvariants();
  biased.CheckInvariants();
  priority.CheckInvariants();
  ares.CheckInvariants();
  jumps.CheckInvariants();
  wr.CheckInvariants();

  DecayingReservoir reservoir(64, 0.015, 0.0);
  ConcurrentDecayingReservoir shared(64, 0.015, 0.0);
  for (int i = 0; i < 3000; ++i) {
    const double ts = static_cast<double>(i) * 0.01;
    reservoir.Update(ts, rng.NextDouble());
    shared.Update(ts, rng.NextDouble());
  }
  reservoir.CheckInvariants();
  shared.CheckInvariants();
}

TEST(AuditInvariantsTest, EngineGroupTablesPassThroughOps) {
  Rng rng(0xa0d1700a);
  std::string error;
  dsms::CompiledQuery::Options options;
  options.two_level = true;
  options.low_level_slots = 32;
  const std::unique_ptr<dsms::CompiledQuery> plan = dsms::CompiledQuery::Compile(
      "select destPort, count(*) from TCP group by destPort", &error, options);
  ASSERT_NE(plan, nullptr) << error;
  std::unique_ptr<dsms::QueryExecution> exec = plan->NewExecution();
  for (int i = 0; i < 20000; ++i) {
    dsms::Packet p;
    p.time = static_cast<double>(i) * 0.001;
    p.src_ip = rng.NextBounded(1 << 16);
    p.dest_ip = 0x0a000001u;
    p.src_port = static_cast<std::uint16_t>(1024 + rng.NextBounded(100));
    p.dest_port = static_cast<std::uint16_t>(rng.NextBounded(512));
    p.len = 40 + rng.NextBounded(1460);
    p.protocol = rng.NextBounded(5) == 0 ? dsms::kProtoUdp : dsms::kProtoTcp;
    exec->Consume(p);
    if (i % 4000 == 0) exec->CheckInvariants();
  }
  exec->CheckInvariants();
  const dsms::ResultSet result = exec->Finish();
  EXPECT_FALSE(result.rows.empty());
}

// ---------------------------------------------------------------------------
// Corruption death tests: byte patches Deserialize() accepts by design
// must be caught by CheckInvariants().
// ---------------------------------------------------------------------------

// Weighted SpaceSaving v2 frame: tag u8 @0, version u8 @1, capacity u64
// @2, total double @10, n u32 @18, then n 24-byte counters (key u64,
// count double @+8, error double @+16) followed by n heap indices.
constexpr std::size_t kWssTotalOffset = 10;
constexpr std::size_t kWssCountersOffset = 22;

WeightedSpaceSaving BuildWeightedSs() {
  Rng rng(0xdead0001);
  WeightedSpaceSaving ss(32);
  for (int i = 0; i < 3000; ++i) {
    ss.Update(rng.NextBounded(200), 0.5 + rng.NextDouble() * 2.0);
  }
  return ss;
}

TEST(AuditInvariantsDeathTest, WeightedSpaceSavingForgedTotalDies) {
  std::vector<std::uint8_t> bytes = Serialize(BuildWeightedSs());
  const double total = ReadDoubleAt(bytes, kWssTotalOffset);
  // Double the claimed total: the counter array still parses (the heap
  // order only depends on counts), but conservation is broken.
  PatchDouble(&bytes, kWssTotalOffset, total * 2.0 + 100.0);
  ByteReader reader(bytes);
  std::optional<WeightedSpaceSaving> got =
      WeightedSpaceSaving::Deserialize(&reader);
  ASSERT_TRUE(got.has_value());  // parser accepts the forgery by design
  EXPECT_DEATH(got->CheckInvariants(), kCheckBanner);
}

TEST(AuditInvariantsDeathTest, WeightedSpaceSavingErrorAboveCountDies) {
  std::vector<std::uint8_t> bytes = Serialize(BuildWeightedSs());
  // Counter 0's error field claims more overcount than the counter
  // holds — SpaceSaving can never produce this (error is the count at
  // takeover time, count only grows after).
  const double count = ReadDoubleAt(bytes, kWssCountersOffset + 8);
  PatchDouble(&bytes, kWssCountersOffset + 16, count + 1000.0);
  ByteReader reader(bytes);
  std::optional<WeightedSpaceSaving> got =
      WeightedSpaceSaving::Deserialize(&reader);
  ASSERT_TRUE(got.has_value());
  EXPECT_DEATH(got->CheckInvariants(), kCheckBanner);
}

// Unary SpaceSaving v1 frame: tag u8 @0, version u8 @1, capacity u64 @2,
// total u64 @10, then counter/bucket counts and the linked structure.
constexpr std::size_t kUssTotalOffset = 10;

TEST(AuditInvariantsDeathTest, UnarySpaceSavingForgedTotalDies) {
  Rng rng(0xdead0002);
  UnarySpaceSaving ss(24);
  for (int i = 0; i < 5000; ++i) {
    ss.Update(rng.NextBounded(1 + rng.NextBounded(300)));
  }
  std::vector<std::uint8_t> bytes = Serialize(ss);
  const std::uint64_t total = ReadU64At(bytes, kUssTotalOffset);
  // The bucket/counter links all still verify; only the exact-
  // conservation equation (sum of bucket counts == total) is violated.
  PatchU64(&bytes, kUssTotalOffset, total + 999);
  ByteReader reader(bytes);
  std::optional<UnarySpaceSaving> got = UnarySpaceSaving::Deserialize(&reader);
  ASSERT_TRUE(got.has_value());
  EXPECT_DEATH(got->CheckInvariants(), kCheckBanner);
}

// QDigest v2 frame: tag u8 @0, universe_bits u8 @1, eps double @2,
// total double @10, compress counter u64 @18, node count u32 @26.
constexpr std::size_t kQdTotalOffset = 10;

TEST(AuditInvariantsDeathTest, QDigestInflatedTotalDies) {
  Rng rng(0xdead0003);
  QDigest qd(10, 0.05);
  for (int i = 0; i < 2000; ++i) {
    qd.Update(rng.NextBounded(1024), 0.5 + rng.NextDouble());
  }
  std::vector<std::uint8_t> bytes = Serialize(qd);
  const double total = ReadDoubleAt(bytes, kQdTotalOffset);
  PatchDouble(&bytes, kQdTotalOffset, total * 3.0 + 100.0);
  ByteReader reader(bytes);
  std::optional<QDigest> got = QDigest::Deserialize(&reader);
  ASSERT_TRUE(got.has_value());  // documented: parser trusts the total
  EXPECT_DEATH(got->CheckInvariants(), kCheckBanner);
}

// CountMin frame: tag u8 @0, width u64 @1, depth u64 @9, seed u64 @17,
// total double @25, then width*depth cell doubles.
constexpr std::size_t kCmTotalOffset = 25;

TEST(AuditInvariantsDeathTest, CountMinForgedTotalDies) {
  Rng rng(0xdead0004);
  CountMinSketch cm(0.05, 0.05);
  for (int i = 0; i < 2000; ++i) {
    cm.Update(rng.NextBounded(500), 0.5 + rng.NextDouble());
  }
  std::vector<std::uint8_t> bytes = Serialize(cm);
  const double total = ReadDoubleAt(bytes, kCmTotalOffset);
  // Every row must sum to the claimed total; a forged total breaks all
  // depth rows at once.
  PatchDouble(&bytes, kCmTotalOffset, total + 50.0);
  ByteReader reader(bytes);
  std::optional<CountMinSketch> got = CountMinSketch::Deserialize(&reader);
  ASSERT_TRUE(got.has_value());
  EXPECT_DEATH(got->CheckInvariants(), kCheckBanner);
}

// HLL frame: tag u8 @0, precision u8 @1, hash seed u64 @2, then 2^p
// raw register bytes from @10.
constexpr std::size_t kHllRegistersOffset = 10;

TEST(AuditInvariantsDeathTest, HllRegisterBeyondMaxRankDies) {
  Rng rng(0xdead0005);
  HllSketch hll(12);
  for (int i = 0; i < 4000; ++i) hll.Insert(rng.Next64());
  std::vector<std::uint8_t> bytes = Serialize(hll);
  // With precision p the rank field counts leading zeros of a (64-p)-bit
  // suffix plus one, so no register can legally exceed 65-p (53 here).
  // 0xFF parses fine and silently wrecks the harmonic-mean estimate.
  bytes[kHllRegistersOffset + 7] = 0xFF;
  ByteReader reader(bytes);
  std::optional<HllSketch> got = HllSketch::Deserialize(&reader);
  ASSERT_TRUE(got.has_value());
  EXPECT_DEATH(got->CheckInvariants(), kCheckBanner);
}

}  // namespace
}  // namespace fwdecay
