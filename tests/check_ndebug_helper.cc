// Helper TU for check_test.cc, compiled with NDEBUG forced on via
// set_source_files_properties in tests/CMakeLists.txt regardless of the
// build type — so the test binary can observe, at runtime, what
// FWDECAY_DCHECK compiles to in a release build.

#ifndef NDEBUG
#error "check_ndebug_helper.cc must be compiled with NDEBUG defined"
#endif

#include "util/check.h"

namespace fwdecay::testing {

// Returns normally iff FWDECAY_DCHECK(false) compiled away.
bool DcheckFalseIsNoopUnderNdebug() {
  FWDECAY_DCHECK(false);
  return true;
}

// Returns the number of times the DCHECK condition was evaluated: a
// compiled-away DCHECK must not evaluate its argument (side effects in
// debug-only checks would change release behaviour).
int DcheckConditionEvaluationsUnderNdebug() {
  int evaluations = 0;
  FWDECAY_DCHECK(++evaluations > 0);
  return evaluations;
}

}  // namespace fwdecay::testing
