// Parameterized error-bound sweeps: the eps-guarantees of Theorems 2-3
// and the EH/Waves window guarantees, verified across a grid of
// accuracy parameters (TEST_P over eps).

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact_reference.h"
#include "core/heavy_hitters.h"
#include "core/quantiles.h"
#include "fwdecay.h"  // also exercises the umbrella header
#include "util/random.h"
#include "util/zipf.h"

namespace fwdecay {
namespace {

class EpsSweepTest : public testing::TestWithParam<double> {};

TEST_P(EpsSweepTest, SpaceSavingErrorBound) {
  const double eps = GetParam();
  Rng rng(11);
  ZipfGenerator zipf(3000, 1.1);
  WeightedSpaceSaving ss(static_cast<std::size_t>(std::ceil(1.0 / eps)));
  std::vector<std::pair<std::uint64_t, double>> items;
  double total = 0.0;
  for (int i = 0; i < 60000; ++i) {
    const std::uint64_t key = zipf.Next(rng);
    const double w = 0.5 + rng.NextDouble();
    ss.Update(key, w);
    items.emplace_back(key, w);
    total += w;
  }
  // Per-key truth for the keys the sketch retained.
  for (const auto& h : ss.Query(0.0)) {
    double truth = 0.0;
    for (const auto& [key, w] : items) {
      if (key == h.key) truth += w;
    }
    EXPECT_GE(h.estimate, truth - 1e-9);
    EXPECT_LE(h.estimate, truth + eps * total + 1e-9) << "eps=" << eps;
    // estimate - error is a valid lower bound.
    EXPECT_LE(h.estimate - h.error, truth + 1e-9);
  }
}

TEST_P(EpsSweepTest, QDigestRankBound) {
  const double eps = GetParam();
  Rng rng(12);
  QDigest qd(12, eps);
  std::vector<std::uint64_t> values;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t v = rng.NextBounded(1 << 12);
    qd.Update(v, 1.0);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  for (double phi : {0.1, 0.5, 0.9}) {
    const std::uint64_t est = qd.Quantile(phi);
    const auto rank_incl = static_cast<double>(
        std::upper_bound(values.begin(), values.end(), est) - values.begin());
    const auto rank_below = static_cast<double>(
        std::lower_bound(values.begin(), values.end(), est) - values.begin());
    EXPECT_GE(rank_incl, phi * n - eps * n - 1) << "eps=" << eps;
    EXPECT_LE(rank_below, phi * n + eps * n + 1) << "eps=" << eps;
  }
  // Space bound: O((1/eps) log U) nodes.
  qd.Compress();
  EXPECT_LE(qd.NodeCount(),
            static_cast<std::size_t>(3.0 * 12.0 / eps) + 16);
}

TEST_P(EpsSweepTest, EhWindowCountBound) {
  const double eps = GetParam();
  EhCount eh(eps);
  Rng rng(13);
  std::vector<double> stamps;
  double t = 0.0;
  for (int i = 0; i < 60000; ++i) {
    t += rng.NextExponential(1000.0);
    eh.Insert(t);
    stamps.push_back(t);
  }
  for (double window : {0.5, 5.0, 30.0}) {
    double truth = 0.0;
    for (double s : stamps) truth += (s >= t - window);
    if (truth < 20) continue;
    EXPECT_NEAR(eh.CountInWindow(t, window), truth, eps * truth + 2.0)
        << "eps=" << eps << " window=" << window;
  }
}

TEST_P(EpsSweepTest, WaveWindowCountBound) {
  const double eps = GetParam();
  WaveCount wave(eps);
  Rng rng(14);
  std::vector<double> stamps;
  double t = 0.0;
  for (int i = 0; i < 60000; ++i) {
    t += rng.NextExponential(1000.0);
    wave.Insert(t);
    stamps.push_back(t);
  }
  for (double window : {0.5, 5.0, 30.0}) {
    double truth = 0.0;
    for (double s : stamps) truth += (s >= t - window);
    if (truth < 20) continue;
    EXPECT_NEAR(wave.CountInWindow(t, window), truth, eps * truth + 2.0)
        << "eps=" << eps << " window=" << window;
  }
}

TEST_P(EpsSweepTest, DecayedHeavyHittersTheorem2Contract) {
  const double eps = GetParam();
  const double phi = std::max(0.04, 2.0 * eps);
  Rng rng(15);
  ZipfGenerator zipf(800, 1.3);
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  DecayedHeavyHitters<MonomialG> hh(decay, eps);
  ExactDecayedReference ref;
  for (int i = 0; i < 40000; ++i) {
    const double ts = 1.0 + rng.NextDouble() * 29.0;
    const std::uint64_t key = zipf.Next(rng);
    hh.Add(ts, key);
    ref.Add(ts, key, 0.0);
  }
  const auto w = ForwardWeightFn(MonomialG(2.0), 0.0);
  const double t = 30.0;
  const double total = ref.Count(t, w);
  std::set<std::uint64_t> reported;
  for (const auto& h : hh.Query(t, phi)) reported.insert(h.key);
  for (const auto& [key, c] : ref.HeavyHitters(t, w, phi)) {
    EXPECT_TRUE(reported.contains(key)) << "eps=" << eps;
  }
  for (std::uint64_t key : reported) {
    EXPECT_GE(ref.KeyCount(t, w, key), (phi - eps) * total - 1e-9)
        << "eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(AccuracyGrid, EpsSweepTest,
                         testing::Values(0.1, 0.05, 0.02, 0.01),
                         [](const testing::TestParamInfo<double>& info) {
                           std::string name = "eps";
                           name += std::to_string(
                               static_cast<int>(info.param * 1000));
                           return name;
                         });

// Sample-size sweep for the without-replacement samplers: the retained
// set always has min(k, n) items and no duplicates.
class SampleSizeSweepTest : public testing::TestWithParam<int> {};

TEST_P(SampleSizeSweepTest, AResSampleWellFormed) {
  const auto k = static_cast<std::size_t>(GetParam());
  Rng rng(16);
  ForwardDecay<ExponentialG> decay(ExponentialG(0.05), 0.0);
  WeightedReservoirSampler<int, ExponentialG> sampler(decay, k);
  for (int i = 0; i < 5000; ++i) {
    sampler.Add(0.01 * i, i, rng);
  }
  const auto sample = sampler.Sample();
  EXPECT_EQ(sample.size(), std::min<std::size_t>(k, 5000));
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), sample.size());
}

TEST_P(SampleSizeSweepTest, PrioritySamplerCountEstimateReasonable) {
  const auto k = static_cast<std::size_t>(GetParam());
  if (k < 16) {
    // Below k=16 the estimator's variance makes a single-run band
    // meaningless; the distributional tests in sampling_test.cc cover
    // small k. Nothing to assert here.
    SUCCEED();
    return;
  }
  Rng rng(17);
  ForwardDecay<MonomialG> decay(MonomialG(1.0), 0.0);
  PrioritySampler<int, MonomialG> sampler(decay, k);
  double exact_raw = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const double ts = 1.0 + 0.01 * i;
    sampler.Add(ts, i, rng);
    exact_raw += decay.StaticWeight(ts);
  }
  const double t = 1.0 + 0.01 * n;
  const double exact = exact_raw / decay.Normalizer(t);
  // Single-run check with a generous band (unbiasedness is verified
  // statistically in sampling_test.cc).
  EXPECT_NEAR(sampler.EstimateDecayedCount(t), exact, 0.6 * exact);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, SampleSizeSweepTest,
                         testing::Values(1, 4, 16, 64, 256, 1024),
                         [](const testing::TestParamInfo<int>& info) {
                           std::string name = "k";
                           name += std::to_string(info.param);
                           return name;
                         });

}  // namespace
}  // namespace fwdecay
