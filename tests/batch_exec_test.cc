// Differential tests for the batched columnar ingest path and the
// sharded parallel execution (DESIGN.md §8): the batched and sharded
// engines must reproduce the per-tuple reference *bit for bit* — same
// result values (double bit patterns included), same counters, same
// shedding decisions — because the batch path reorders no FP operation
// and shard routing keeps every group's update sequence intact.

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/forward_decay.h"
#include "dsms/batch.h"
#include "dsms/engine.h"
#include "dsms/expr.h"
#include "dsms/netgen.h"
#include "dsms/packet.h"
#include "dsms/trace_io.h"
#include "dsms/udafs.h"
#include "dsms/value.h"

namespace fwdecay::dsms {
namespace {

TraceConfig FlowConfig(std::uint64_t seed = 42) {
  TraceConfig config;
  config.flow_structured = true;
  config.num_servers = 200;
  config.ports_per_server = 8;
  config.target_active_flows = 64;
  config.mean_flow_len = 12.0;
  config.seed = seed;
  return config;
}

std::vector<Packet> MakeTrace(std::size_t n, std::uint64_t seed = 42) {
  PacketGenerator gen(FlowConfig(seed));
  return gen.Generate(n);
}

std::vector<PacketBatch> Rebatch(const std::vector<Packet>& packets,
                                 std::size_t capacity) {
  std::vector<PacketBatch> batches;
  PacketBatch batch(capacity);
  for (const Packet& p : packets) {
    batch.Append(p);
    if (batch.full()) {
      batches.push_back(std::move(batch));
      batch = PacketBatch(capacity);
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

std::unique_ptr<CompiledQuery> MustCompile(const std::string& gsql,
                                           CompiledQuery::Options options) {
  RegisterPaperUdafs();
  std::string error;
  auto plan = CompiledQuery::Compile(gsql, &error, options);
  EXPECT_NE(plan, nullptr) << error;
  return plan;
}

// Bit-exact ResultSet comparison: same column names, same row count,
// same value types, and doubles compared by bit pattern (EXPECT_EQ on
// doubles would accept -0.0 == 0.0 and reject equal NaNs).
void ExpectBitIdentical(const ResultSet& got, const ResultSet& want) {
  ASSERT_EQ(got.columns, want.columns);
  ASSERT_EQ(got.rows.size(), want.rows.size());
  for (std::size_t r = 0; r < got.rows.size(); ++r) {
    ASSERT_EQ(got.rows[r].size(), want.rows[r].size()) << "row " << r;
    for (std::size_t c = 0; c < got.rows[r].size(); ++c) {
      const Value& a = got.rows[r][c];
      const Value& b = want.rows[r][c];
      ASSERT_EQ(a.is_double(), b.is_double()) << "row " << r << " col " << c;
      if (a.is_double()) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(a.AsDouble()),
                  std::bit_cast<std::uint64_t>(b.AsDouble()))
            << "row " << r << " col " << c << ": " << a.ToString() << " vs "
            << b.ToString();
      } else {
        EXPECT_TRUE(a == b) << "row " << r << " col " << c << ": "
                            << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

// Runs the same trace through the per-tuple and batched entry points of
// two independent executions and requires bit-identical results and
// counters.
void RunBatchDifferential(const std::string& gsql,
                          CompiledQuery::Options options,
                          const OverloadPolicy* policy,
                          std::size_t batch_capacity = 256,
                          std::size_t n_packets = 20000) {
  auto plan = MustCompile(gsql, options);
  ASSERT_NE(plan, nullptr);
  const std::vector<Packet> trace = MakeTrace(n_packets);

  auto per_tuple = plan->NewExecution();
  auto batched = plan->NewExecution();
  if (policy != nullptr) {
    per_tuple->SetOverloadPolicy(*policy);
    batched->SetOverloadPolicy(*policy);
  }

  for (const Packet& p : trace) per_tuple->Consume(p);
  for (const PacketBatch& b : Rebatch(trace, batch_capacity)) {
    batched->Consume(b);
  }

  EXPECT_EQ(batched->packets_consumed(), per_tuple->packets_consumed());
  EXPECT_EQ(batched->tuples_aggregated(), per_tuple->tuples_aggregated());
  EXPECT_EQ(batched->low_level_evictions(), per_tuple->low_level_evictions());
  EXPECT_EQ(batched->groups_shed(), per_tuple->groups_shed());
  EXPECT_EQ(batched->tuples_shed(), per_tuple->tuples_shed());
  batched->CheckInvariants();

  ExpectBitIdentical(batched->Finish(), per_tuple->Finish());
}

// --- PacketBatch basics -----------------------------------------------------

TEST(PacketBatchTest, AppendGetClearRoundTrip) {
  const std::vector<Packet> trace = MakeTrace(10);
  PacketBatch batch(8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(batch.Append(trace[i]));
  }
  EXPECT_TRUE(batch.full());
  EXPECT_FALSE(batch.Append(trace[8]));  // full: rejected, unchanged
  ASSERT_EQ(batch.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    const Packet p = batch.Get(i);
    EXPECT_EQ(p.time, trace[i].time);
    EXPECT_EQ(p.src_ip, trace[i].src_ip);
    EXPECT_EQ(p.dest_ip, trace[i].dest_ip);
    EXPECT_EQ(p.src_port, trace[i].src_port);
    EXPECT_EQ(p.dest_port, trace[i].dest_port);
    EXPECT_EQ(p.len, trace[i].len);
    EXPECT_EQ(p.protocol, trace[i].protocol);
  }
  batch.Clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.capacity(), 8u);
  EXPECT_TRUE(batch.Append(trace[9]));
  EXPECT_EQ(batch.size(), 1u);
}

TEST(PacketBatchTest, ColumnsMirrorRows) {
  const std::vector<Packet> trace = MakeTrace(64);
  PacketBatch batch(64);
  for (const Packet& p : trace) batch.Append(p);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(batch.time()[i], trace[i].time);
    EXPECT_EQ(batch.dest_ip()[i], trace[i].dest_ip);
    EXPECT_EQ(batch.dest_port()[i], trace[i].dest_port);
    EXPECT_EQ(batch.len()[i], trace[i].len);
    EXPECT_EQ(batch.protocol()[i], trace[i].protocol);
  }
}

// --- Batched expression evaluation ------------------------------------------

TEST(BatchEvalTest, ExprBatchMatchesPerTuple) {
  const std::vector<Packet> trace = MakeTrace(512);
  PacketBatch batch(512);
  for (const Packet& p : trace) batch.Append(p);

  std::string error;
  ParseResult parsed = ParseQuery(
      "select destPort from PKT where "
      "len * 2 + srcPort % 7 - floor(sqrt(len)) > 0 group by destPort");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const Expr& where = *parsed.query->where;

  std::vector<std::uint32_t> sel(trace.size());
  for (std::size_t i = 0; i < sel.size(); ++i) {
    sel[i] = static_cast<std::uint32_t>(i);
  }
  BatchEvalScratch scratch;
  ValueColumn out;
  EvalExprBatch(where, batch, sel.data(), sel.size(), &scratch, &out);
  ASSERT_EQ(out.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const Value expect = EvalExpr(where, trace[i]);
    ASSERT_EQ(out[i].is_double(), expect.is_double()) << "row " << i;
    EXPECT_TRUE(out[i] == expect) << "row " << i;
  }
}

TEST(BatchEvalTest, PredicateShortCircuitGuardsDivision) {
  // `x > 0 and K/x > c` must not evaluate the division on rows where the
  // guard already failed — Value division CHECK-fails on a zero integer
  // divisor, so an eager columnar AND would abort. Build packets where
  // srcPort is often zero.
  PacketBatch batch(64);
  std::vector<Packet> rows;
  for (std::size_t i = 0; i < 64; ++i) {
    Packet p;
    p.time = static_cast<double>(i);
    p.src_port = static_cast<std::uint16_t>(i % 4 == 0 ? 0 : i);
    p.len = 100;
    p.protocol = kProtoTcp;
    rows.push_back(p);
    batch.Append(p);
  }
  ParseResult parsed = ParseQuery(
      "select srcPort from PKT where srcPort > 0 and 1000 / srcPort < 300 "
      "group by srcPort");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const Expr& where = *parsed.query->where;

  std::vector<std::uint32_t> sel(rows.size());
  for (std::size_t i = 0; i < sel.size(); ++i) {
    sel[i] = static_cast<std::uint32_t>(i);
  }
  BatchEvalScratch scratch;
  const std::size_t n =
      EvalPredicateBatch(where, batch, sel.data(), sel.size(), &scratch);

  std::vector<std::uint32_t> expect;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (EvalPredicate(where, rows[i])) {
      expect.push_back(static_cast<std::uint32_t>(i));
    }
  }
  ASSERT_EQ(n, expect.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(sel[i], expect[i]);
}

TEST(BatchEvalTest, PredicateOrPreservesShortCircuitAndOrder) {
  // `srcPort = 0 or 1000 / srcPort > 9` — the rhs may only run on rows
  // the lhs rejected (division by zero is CHECK-guarded), and the
  // surviving selection must stay in ascending row order.
  PacketBatch batch(64);
  std::vector<Packet> rows;
  for (std::size_t i = 0; i < 64; ++i) {
    Packet p;
    p.time = static_cast<double>(i);
    p.src_port = static_cast<std::uint16_t>(i % 3 == 0 ? 0 : i * 7);
    p.protocol = kProtoTcp;
    rows.push_back(p);
    batch.Append(p);
  }
  ParseResult parsed = ParseQuery(
      "select srcPort from PKT where srcPort = 0 or 1000 / srcPort > 9 "
      "group by srcPort");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const Expr& where = *parsed.query->where;

  std::vector<std::uint32_t> sel(rows.size());
  for (std::size_t i = 0; i < sel.size(); ++i) {
    sel[i] = static_cast<std::uint32_t>(i);
  }
  BatchEvalScratch scratch;
  const std::size_t n =
      EvalPredicateBatch(where, batch, sel.data(), sel.size(), &scratch);

  std::vector<std::uint32_t> expect;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (EvalPredicate(where, rows[i])) {
      expect.push_back(static_cast<std::uint32_t>(i));
    }
  }
  ASSERT_EQ(n, expect.size());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(sel[i], expect[i]);
}

// --- Batched vs per-tuple engine differentials ------------------------------

constexpr char kBuiltinsQuery[] =
    "select destPort, count(*), sum(len), avg(len), min(len), max(len) "
    "from TCP group by destPort";

// avg() and expweight() produce genuinely fractional doubles, so these
// queries exercise the FP-order half of the bit-exactness contract.
constexpr char kDecayedQuery[] =
    "select destPort, sum(len * expweight(time, 60, 0.1)), "
    "avg(len), fdmax(len, expweight(time, 60, 0.1)) "
    "from TCP where len > 60 group by destPort";

constexpr char kUdafQuery[] =
    "select destPort, fdhh(destIP, expweight(time, 60, 0.1), 0.05, 0.02), "
    "fdquantile(len, expweight(time, 60, 0.1), 0.5), "
    "fddistinct(srcIP, expweight(time, 60, 0.1)) "
    "from TCP group by destPort";

TEST(BatchDifferentialTest, OneLevelBuiltins) {
  RunBatchDifferential(kBuiltinsQuery, {}, nullptr);
}

TEST(BatchDifferentialTest, TwoLevelBuiltins) {
  CompiledQuery::Options options;
  options.two_level = true;
  options.low_level_slots = 16;  // tiny: force heavy eviction traffic
  RunBatchDifferential(kBuiltinsQuery, options, nullptr);
}

TEST(BatchDifferentialTest, OneLevelDecayedDoubles) {
  RunBatchDifferential(kDecayedQuery, {}, nullptr);
}

TEST(BatchDifferentialTest, TwoLevelDecayedDoubles) {
  CompiledQuery::Options options;
  options.two_level = true;
  options.low_level_slots = 32;
  RunBatchDifferential(kDecayedQuery, options, nullptr);
}

TEST(BatchDifferentialTest, OneLevelUdafs) {
  RunBatchDifferential(kUdafQuery, {}, nullptr);
}

TEST(BatchDifferentialTest, TwoLevelUdafs) {
  CompiledQuery::Options options;
  options.two_level = true;
  options.low_level_slots = 32;
  RunBatchDifferential(kUdafQuery, options, nullptr);
}

TEST(BatchDifferentialTest, OneLevelWithOverloadPolicy) {
  OverloadPolicy policy;
  policy.max_groups = 40;  // well below the trace's group cardinality
  policy.decay_alpha = 0.05;
  RunBatchDifferential(kDecayedQuery, {}, &policy);
}

TEST(BatchDifferentialTest, TwoLevelWithOverloadPolicy) {
  CompiledQuery::Options options;
  options.two_level = true;
  options.low_level_slots = 16;
  OverloadPolicy policy;
  policy.max_groups = 40;
  policy.decay_alpha = 0.05;
  RunBatchDifferential(kDecayedQuery, options, &policy);
}

TEST(BatchDifferentialTest, OddBatchSizesAndPartialTails) {
  // Batch boundaries must be invisible: capacity 1 (degenerate), a
  // prime, and a capacity larger than the trace all agree.
  for (const std::size_t capacity : {std::size_t{1}, std::size_t{37},
                                     std::size_t{50000}}) {
    RunBatchDifferential(kBuiltinsQuery, {}, nullptr, capacity,
                         /*n_packets=*/5000);
  }
}

TEST(BatchDifferentialTest, ConcurrentFacadeBatchEntryPoint) {
  auto plan = MustCompile(kBuiltinsQuery, {});
  ASSERT_NE(plan, nullptr);
  const std::vector<Packet> trace = MakeTrace(5000);

  auto reference = plan->NewExecution();
  for (const Packet& p : trace) reference->Consume(p);

  ConcurrentQueryExecution concurrent(*plan);
  for (const PacketBatch& b : Rebatch(trace, 256)) concurrent.Consume(b);
  EXPECT_EQ(concurrent.packets_consumed(), trace.size());
  ExpectBitIdentical(concurrent.Finish(), reference->Finish());
}

// --- Sharded execution ------------------------------------------------------

// One-level sharding is bit-exact even for fractional doubles: every
// group lives wholly in one shard and receives its updates in stream
// order, and the Finish() merge moves disjoint groups without touching
// their accumulators.
TEST(ShardedDifferentialTest, OneLevelBitIdenticalAcrossShardCounts) {
  auto plan = MustCompile(kDecayedQuery, {});
  ASSERT_NE(plan, nullptr);
  const std::vector<Packet> trace = MakeTrace(20000);
  const std::vector<PacketBatch> batches = Rebatch(trace, 256);

  auto reference = plan->NewExecution();
  for (const Packet& p : trace) reference->Consume(p);
  const ResultSet want = reference->Finish();

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    ShardedQueryExecution sharded(*plan, shards);
    for (const PacketBatch& b : batches) sharded.Consume(b);
    EXPECT_EQ(sharded.packets_consumed(), trace.size());
    sharded.CheckInvariants();
    const std::uint64_t tuples = sharded.tuples_aggregated();
    ExpectBitIdentical(sharded.Finish(), want);
    EXPECT_EQ(tuples, reference->tuples_aggregated());
  }
}

// Two-level sharding splits the low-level table per shard, so eviction
// (partial-group merge) points differ from the single-table run. For
// integer-exact aggregates every addition is exact, so the results are
// still identical; fractional doubles would differ in the last ulp and
// are deliberately excluded (DESIGN.md §8).
TEST(ShardedDifferentialTest, TwoLevelIntegerExactAggregates) {
  CompiledQuery::Options options;
  options.two_level = true;
  options.low_level_slots = 16;
  auto plan = MustCompile(kBuiltinsQuery, options);
  ASSERT_NE(plan, nullptr);
  const std::vector<Packet> trace = MakeTrace(20000);

  auto reference = plan->NewExecution();
  for (const Packet& p : trace) reference->Consume(p);
  const ResultSet want = reference->Finish();

  ShardedQueryExecution sharded(*plan, 4);
  for (const PacketBatch& b : Rebatch(trace, 256)) sharded.Consume(b);
  sharded.CheckInvariants();
  ExpectBitIdentical(sharded.Finish(), want);
}

// A single shard is the non-sharded engine behind a router: with a
// shedding policy installed it must make byte-for-byte the same
// decisions (including shedding during the Finish() flush).
TEST(ShardedDifferentialTest, SingleShardWithPolicyMatchesPerTuple) {
  CompiledQuery::Options options;
  options.two_level = true;
  options.low_level_slots = 16;
  auto plan = MustCompile(kDecayedQuery, options);
  ASSERT_NE(plan, nullptr);
  OverloadPolicy policy;
  policy.max_groups = 40;
  policy.decay_alpha = 0.05;
  const std::vector<Packet> trace = MakeTrace(20000);

  auto reference = plan->NewExecution();
  reference->SetOverloadPolicy(policy);
  for (const Packet& p : trace) reference->Consume(p);

  ShardedQueryExecution sharded(*plan, 1);
  sharded.SetOverloadPolicy(policy);
  for (const PacketBatch& b : Rebatch(trace, 256)) sharded.Consume(b);

  EXPECT_EQ(sharded.tuples_aggregated(), reference->tuples_aggregated());
  EXPECT_EQ(sharded.groups_shed(), reference->groups_shed());
  EXPECT_EQ(sharded.tuples_shed(), reference->tuples_shed());
  ExpectBitIdentical(sharded.Finish(), reference->Finish());
}

// With N shards each shard bounds its own table, so the documented
// contract is a bound of N * max_groups on the retained groups — not
// the single-execution bound. CheckInvariants() audits the per-shard
// bound; the total is checked here.
TEST(ShardedDifferentialTest, PerShardSheddingBound) {
  // Group by destIP (200 distinct servers) so the 10-group bound bites.
  auto plan = MustCompile(
      "select destIP, count(*), sum(len) from TCP group by destIP", {});
  ASSERT_NE(plan, nullptr);
  OverloadPolicy policy;
  policy.max_groups = 10;
  policy.decay_alpha = 0.05;

  ShardedQueryExecution sharded(*plan, 4);
  sharded.SetOverloadPolicy(policy);
  for (const PacketBatch& b : Rebatch(MakeTrace(20000), 256)) {
    sharded.Consume(b);
  }
  sharded.CheckInvariants();  // audits <= max_groups per shard
  EXPECT_LE(sharded.GroupCount(), 4 * policy.max_groups);
  EXPECT_GT(sharded.groups_shed(), 0u);
}

// --- Batch producers --------------------------------------------------------

TEST(NetgenBatchTest, GenerateBatchMatchesGenerate) {
  PacketGenerator row_gen(FlowConfig());
  PacketGenerator batch_gen(FlowConfig());
  const std::vector<Packet> rows = row_gen.Generate(1000);
  const PacketBatch batch = batch_gen.GenerateBatch(1000);
  ASSERT_EQ(batch.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Packet p = batch.Get(i);
    EXPECT_EQ(p.time, rows[i].time);
    EXPECT_EQ(p.dest_ip, rows[i].dest_ip);
    EXPECT_EQ(p.len, rows[i].len);
  }
}

TEST(NetgenBatchTest, NextBatchRespectsCapacityAndBudget) {
  PacketGenerator gen(FlowConfig());
  PacketBatch batch(8);
  EXPECT_EQ(gen.NextBatch(&batch, 100), 8u);  // bounded by capacity
  EXPECT_TRUE(batch.full());
  batch.Clear();
  EXPECT_EQ(gen.NextBatch(&batch, 3), 3u);  // bounded by budget
  EXPECT_EQ(batch.size(), 3u);
}

TEST(TraceIoBatchTest, BatchedWriteReadRoundTrip) {
  const std::vector<Packet> rows = MakeTrace(1000);
  const std::vector<PacketBatch> batches = Rebatch(rows, 128);
  const std::string path = testing::TempDir() + "/batch_trace.bin";
  std::string error;
  ASSERT_TRUE(WriteTrace(path, batches, &error)) << error;

  // The batched writer is byte-compatible with the row reader...
  auto read_rows = ReadTrace(path, &error);
  ASSERT_TRUE(read_rows.has_value()) << error;
  ASSERT_EQ(read_rows->size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*read_rows)[i].time, rows[i].time);
    EXPECT_EQ((*read_rows)[i].dest_ip, rows[i].dest_ip);
    EXPECT_EQ((*read_rows)[i].len, rows[i].len);
  }

  // ...and the batch reader re-chunks at any capacity.
  auto read_batches = ReadTraceBatches(path, 300, &error);
  ASSERT_TRUE(read_batches.has_value()) << error;
  std::size_t total = 0;
  for (const PacketBatch& b : *read_batches) {
    EXPECT_LE(b.size(), 300u);
    for (std::size_t i = 0; i < b.size(); ++i) {
      const Packet p = b.Get(i);
      EXPECT_EQ(p.time, rows[total].time);
      EXPECT_EQ(p.dest_port, rows[total].dest_port);
      ++total;
    }
  }
  EXPECT_EQ(total, rows.size());
}

// --- Core accumulators ------------------------------------------------------

TEST(CoreAddBatchTest, DecayedCountBatchMatchesLoop) {
  ForwardDecay<ExponentialG> decay(ExponentialG(0.1), 100.0);
  DecayedCount<ExponentialG> loop(decay);
  DecayedCount<ExponentialG> batch(decay);
  std::vector<Timestamp> times;
  for (int i = 0; i < 1000; ++i) times.push_back(100.0 + 0.37 * i);
  for (Timestamp t : times) loop.Add(t);
  batch.AddBatch(times);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(loop.RawWeightedCount()),
            std::bit_cast<std::uint64_t>(batch.RawWeightedCount()));
}

TEST(CoreAddBatchTest, DecayedMomentsAndExtremumBatchMatchLoop) {
  ForwardDecay<ExponentialG> decay(ExponentialG(0.1), 100.0);
  DecayedMoments<ExponentialG> loop_m(decay);
  DecayedMoments<ExponentialG> batch_m(decay);
  DecayedMax<ExponentialG> loop_x(decay);
  DecayedMax<ExponentialG> batch_x(decay);
  std::vector<Timestamp> times;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    times.push_back(100.0 + 0.37 * i);
    values.push_back(40.0 + (i * 31) % 1460);
  }
  for (std::size_t i = 0; i < times.size(); ++i) {
    loop_m.Add(times[i], values[i]);
    loop_x.Add(times[i], values[i]);
  }
  batch_m.AddBatch(times, values);
  batch_x.AddBatch(times, values);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(loop_m.Sum(200.0)),
            std::bit_cast<std::uint64_t>(batch_m.Sum(200.0)));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(*loop_m.Variance()),
            std::bit_cast<std::uint64_t>(*batch_m.Variance()));
  ASSERT_TRUE(batch_x.Value(200.0).has_value());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(*loop_x.Value(200.0)),
            std::bit_cast<std::uint64_t>(*batch_x.Value(200.0)));
}

}  // namespace
}  // namespace fwdecay::dsms
