// Tests for the mini-DSMS substrate: Value semantics, expression
// evaluation, the GSQL parser, the trace generator, and the query engine
// (including the two-level aggregation split and the paper's queries).

#include <cmath>
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "dsms/engine.h"
#include "dsms/expr.h"
#include "dsms/netgen.h"
#include "dsms/packet.h"
#include "dsms/parser.h"
#include "dsms/udafs.h"
#include "dsms/value.h"

namespace fwdecay::dsms {
namespace {

Packet MakePacket(double time, std::uint32_t dest_ip, std::uint16_t dest_port,
                  std::uint32_t len, std::uint8_t proto = kProtoTcp) {
  Packet p;
  p.time = time;
  p.dest_ip = dest_ip;
  p.dest_port = dest_port;
  p.len = len;
  p.protocol = proto;
  return p;
}

// --- Value ------------------------------------------------------------------

TEST(ValueTest, IntegerArithmeticStaysIntegral) {
  const Value a(std::int64_t{125});
  const Value b(std::int64_t{60});
  EXPECT_TRUE((a / b).is_int());
  EXPECT_EQ((a / b).AsInt(), 2);  // time-bucket truncation
  EXPECT_EQ((a % b).AsInt(), 5);
  EXPECT_EQ((a + b).AsInt(), 185);
  EXPECT_EQ((a * b).AsInt(), 7500);
}

TEST(ValueTest, MixedArithmeticPromotesToDouble) {
  const Value a(std::int64_t{3});
  const Value b(2.5);
  EXPECT_TRUE((a + b).is_double());
  EXPECT_DOUBLE_EQ((a + b).AsDouble(), 5.5);
  EXPECT_DOUBLE_EQ((a % b).AsDouble(), 0.5);
}

TEST(ValueTest, CompareAcrossNumericTypes) {
  EXPECT_LT(Compare(Value(std::int64_t{2}), Value(3.0)), 0);
  EXPECT_EQ(Compare(Value(std::int64_t{2}), Value(2.0)), 0);
  EXPECT_GT(Compare(Value(std::string("b")), Value(std::string("a"))), 0);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value(std::int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(std::string("x")).ToString(), "x");
}

TEST(ValueTest, HashDistinguishesTypesAndValues) {
  EXPECT_NE(Value(std::int64_t{1}).Hash(), Value(std::int64_t{2}).Hash());
  EXPECT_EQ(Value(std::int64_t{7}).Hash(), Value(std::int64_t{7}).Hash());
}

// --- Expressions ------------------------------------------------------------

TEST(ExprTest, EvaluatesPaperDecayWeightExpression) {
  // The quadratic forward-decay weight of the Section IV query:
  // (time % 60) * (time % 60).
  auto parsed = ParseExpressionOnly("(time % 60) * (time % 60)");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const Packet p = MakePacket(125.7, 1, 80, 100);
  // time = 125 (whole seconds), 125 % 60 = 5, weight 25.
  EXPECT_EQ(EvalExpr(*parsed.expr, p).AsInt(), 25);
}

TEST(ExprTest, EvaluatesExponentialWeight) {
  auto parsed = ParseExpressionOnly("exp(time % 60)");
  ASSERT_TRUE(parsed.ok());
  const Packet p = MakePacket(63.2, 1, 80, 100);
  EXPECT_NEAR(EvalExpr(*parsed.expr, p).AsDouble(), std::exp(3.0), 1e-12);
}

TEST(ExprTest, ColumnAccessAndPrecedence) {
  auto parsed = ParseExpressionOnly("len + 2 * 3");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(EvalExpr(*parsed.expr, MakePacket(0, 1, 80, 10)).AsInt(), 16);
  parsed = ParseExpressionOnly("(len + 2) * 3");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(EvalExpr(*parsed.expr, MakePacket(0, 1, 80, 10)).AsInt(), 36);
}

TEST(ExprTest, PredicatesAndLogic) {
  auto parsed =
      ParseExpressionOnly("protocol = 6 and (destPort = 80 or destPort = 443)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(EvalPredicate(*parsed.expr, MakePacket(0, 1, 80, 10)));
  EXPECT_FALSE(
      EvalPredicate(*parsed.expr, MakePacket(0, 1, 80, 10, kProtoUdp)));
  EXPECT_FALSE(EvalPredicate(*parsed.expr, MakePacket(0, 1, 8080, 10)));
}

TEST(ExprTest, UnaryMinusAndComparisons) {
  auto parsed = ParseExpressionOnly("-len < -5");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(EvalPredicate(*parsed.expr, MakePacket(0, 1, 80, 10)));
  EXPECT_FALSE(EvalPredicate(*parsed.expr, MakePacket(0, 1, 80, 3)));
}

TEST(ExprTest, ToStringRoundTripsStructure) {
  auto parsed = ParseExpressionOnly("sum(len * (time % 60)) / 3600");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.expr->ToString(),
            "(sum((len * (time % 60))) / 3600)");
}

TEST(ExprTest, CloneProducesEqualTree) {
  auto parsed = ParseExpressionOnly("exp(time % 60) * len");
  ASSERT_TRUE(parsed.ok());
  auto clone = parsed.expr->Clone();
  EXPECT_EQ(parsed.expr->ToString(), clone->ToString());
}

TEST(ExprTest, ScalarFunctions) {
  const Packet p = MakePacket(100.0, 1, 80, 16);
  auto check = [&](const std::string& text, double expected) {
    auto parsed = ParseExpressionOnly(text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_NEAR(EvalExpr(*parsed.expr, p).AsDouble(), expected, 1e-9) << text;
  };
  check("sqrt(len)", 4.0);
  check("ln(exp(2))", 2.0);
  check("pow(2, 10)", 1024.0);
  check("abs(0 - 5)", 5.0);
  check("floor(3.7)", 3.0);
}

// --- Parser -----------------------------------------------------------------

TEST(ParserTest, ParsesThePaperCountQuery) {
  const auto result = ParseQuery(
      "select tb, destIP, destPort, count(*) from TCP "
      "group by time/60 as tb, destIP, destPort");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.query->select.size(), 4u);
  EXPECT_EQ(result.query->from, "TCP");
  EXPECT_EQ(result.query->group_by.size(), 3u);
  EXPECT_EQ(result.query->group_by[0].alias, "tb");
}

TEST(ParserTest, ParsesThePaperDecayedSumQuery) {
  const auto result = ParseQuery(
      "select tb, destIP, destPort, "
      "sum(len*(time % 60)*(time % 60))/3600 from TCP "
      "group by time/60 as tb, destIP, destPort");
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST(ParserTest, ParsesThePaperSamplingQuery) {
  const auto result = ParseQuery(
      "select tb, PRISAMP(srcIP, exp(time % 60)) from TCP "
      "group by time/60 as tb");
  ASSERT_TRUE(result.ok()) << result.error;
}

TEST(ParserTest, WhereClause) {
  const auto result = ParseQuery(
      "select tb, count(*) from PKT where destPort = 80 and len > 100 "
      "group by time/60 as tb");
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_NE(result.query->where, nullptr);
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("select from TCP").ok());
  EXPECT_FALSE(ParseQuery("count(*) from TCP").ok());
  EXPECT_FALSE(ParseQuery("select count(* from TCP").ok());
  EXPECT_FALSE(ParseQuery("select count(*) from TCP group time").ok());
  EXPECT_FALSE(ParseQuery("select count(*) from TCP extra tokens").ok());
  EXPECT_FALSE(ParseQuery("select 1 + from TCP").ok());
}

TEST(ParserTest, ReportsErrorPositions) {
  const auto result = ParseQuery("select # from TCP");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("offset"), std::string::npos);
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(
      ParseQuery("SELECT tb, COUNT(*) FROM tcp GROUP BY time/60 AS tb").ok());
}

// --- Trace generator ---------------------------------------------------------

TEST(NetgenTest, DeterministicForSeed) {
  TraceConfig cfg;
  cfg.seed = 7;
  PacketGenerator g1(cfg);
  PacketGenerator g2(cfg);
  for (int i = 0; i < 1000; ++i) {
    const Packet a = g1.Next();
    const Packet b = g2.Next();
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_EQ(a.dest_ip, b.dest_ip);
    EXPECT_EQ(a.len, b.len);
  }
}

TEST(NetgenTest, RateControlsTimestampDensity) {
  TraceConfig cfg;
  cfg.rate_pps = 50000.0;
  PacketGenerator gen(cfg);
  const auto packets = gen.Generate(100000);
  const double span = packets.back().time - packets.front().time;
  EXPECT_NEAR(span, 2.0, 0.2);  // 100k packets at 50k pps ~ 2 seconds
}

TEST(NetgenTest, TimestampsOrderedWithoutJitter) {
  TraceConfig cfg;
  PacketGenerator gen(cfg);
  double prev = -1.0;
  for (int i = 0; i < 10000; ++i) {
    const Packet p = gen.Next();
    EXPECT_GE(p.time, prev);
    prev = p.time;
  }
}

TEST(NetgenTest, JitterProducesOutOfOrderDelivery) {
  TraceConfig cfg;
  cfg.reorder_jitter = 0.01;
  PacketGenerator gen(cfg);
  int inversions = 0;
  double prev = -1.0;
  for (int i = 0; i < 10000; ++i) {
    const Packet p = gen.Next();
    if (p.time < prev) ++inversions;
    prev = p.time;
  }
  EXPECT_GT(inversions, 100);
}

TEST(NetgenTest, ProtocolMixMatchesConfig) {
  TraceConfig cfg;
  cfg.tcp_fraction = 0.7;
  PacketGenerator gen(cfg);
  int tcp = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) tcp += (gen.Next().protocol == kProtoTcp);
  EXPECT_NEAR(static_cast<double>(tcp) / n, 0.7, 0.02);
}

TEST(NetgenTest, DestinationsAreSkewed) {
  TraceConfig cfg;
  cfg.num_servers = 10000;
  cfg.server_skew = 1.1;
  PacketGenerator gen(cfg);
  std::map<std::uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[gen.Next().dest_ip];
  int max_count = 0;
  for (const auto& [ip, c] : counts) max_count = std::max(max_count, c);
  // Zipf 1.1 over 10k servers: the top server gets a large share.
  EXPECT_GT(max_count, n / 50);
  EXPECT_GT(counts.size(), 1000u);
}

TEST(NetgenTest, FlowStructuredTrafficRepeatsFiveTuples) {
  TraceConfig cfg;
  cfg.flow_structured = true;
  cfg.mean_flow_len = 20.0;
  cfg.target_active_flows = 200;
  cfg.seed = 9;
  PacketGenerator gen(cfg);
  std::map<std::tuple<std::uint32_t, std::uint16_t, std::uint32_t,
                      std::uint16_t>,
           int>
      tuples;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const Packet p = gen.Next();
    ++tuples[{p.src_ip, p.src_port, p.dest_ip, p.dest_port}];
  }
  // Distinct 5-tuples ~ n/mean + open pool; far fewer than one per
  // packet (the non-flow generator would give ~n distinct tuples).
  EXPECT_LT(tuples.size(), static_cast<std::size_t>(n / 10));
  EXPECT_GT(tuples.size(), static_cast<std::size_t>(n / 50));
  // Average flow length near the configured mean.
  double total = 0.0;
  for (const auto& [key, c] : tuples) total += c;
  EXPECT_NEAR(total / static_cast<double>(tuples.size()), 20.0, 6.0);
}

TEST(NetgenTest, FlowStructuredKeepsDestinationSkew) {
  TraceConfig cfg;
  cfg.flow_structured = true;
  cfg.num_servers = 5000;
  cfg.server_skew = 1.2;
  cfg.seed = 10;
  PacketGenerator gen(cfg);
  std::map<std::uint32_t, int> per_dest;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++per_dest[gen.Next().dest_ip];
  int max_count = 0;
  for (const auto& [ip, c] : per_dest) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, n / 100);  // head server still dominates
}

// --- Engine -----------------------------------------------------------------

TEST(EngineTest, CountPerGroup) {
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destPort, count(*) from TCP group by destPort", &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  exec->Consume(MakePacket(1.0, 1, 80, 100));
  exec->Consume(MakePacket(2.0, 1, 80, 100));
  exec->Consume(MakePacket(3.0, 1, 443, 100));
  exec->Consume(MakePacket(4.0, 1, 80, 100, kProtoUdp));  // filtered out
  const ResultSet rs = exec->Finish();
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 80);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 2);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 443);
  EXPECT_EQ(rs.rows[1][1].AsInt(), 1);
}

TEST(EngineTest, TimeBucketGrouping) {
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select tb, count(*) from PKT group by time/60 as tb", &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  for (double t : {1.0, 30.0, 59.9, 60.1, 100.0}) {
    exec->Consume(MakePacket(t, 1, 80, 100));
  }
  const ResultSet rs = exec->Finish();
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 3);  // bucket 0
  EXPECT_EQ(rs.rows[1][1].AsInt(), 2);  // bucket 1
}

TEST(EngineTest, PaperForwardDecayedSumInPureGsql) {
  // The Section IV query: quadratic forward decay expressed entirely in
  // the query language. Validate the decayed sum against a hand
  // computation.
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select tb, destPort, sum(len*(time % 60)*(time % 60))/3600.0 "
      "from TCP group by time/60 as tb, destPort",
      &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  // One bucket (tb=1), one port: packets at offsets 5, 20, 45 within the
  // minute starting at t=60.
  exec->Consume(MakePacket(65.0, 1, 80, 100));
  exec->Consume(MakePacket(80.0, 1, 80, 200));
  exec->Consume(MakePacket(105.0, 1, 80, 50));
  const ResultSet rs = exec->Finish();
  ASSERT_EQ(rs.rows.size(), 1u);
  const double expected =
      (100.0 * 25 + 200.0 * 400 + 50.0 * 2025) / 3600.0;
  EXPECT_NEAR(rs.rows[0][2].AsDouble(), expected, 1e-9);
}

TEST(EngineTest, SumMinMaxAvgBuiltins) {
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destPort, sum(len), min(len), max(len), avg(len) "
      "from TCP group by destPort",
      &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  for (std::uint32_t len : {10u, 30u, 20u}) {
    exec->Consume(MakePacket(1.0, 1, 80, len));
  }
  const ResultSet rs = exec->Finish();
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 60);
  EXPECT_EQ(rs.rows[0][2].AsInt(), 10);
  EXPECT_EQ(rs.rows[0][3].AsInt(), 30);
  EXPECT_NEAR(rs.rows[0][4].AsDouble(), 20.0, 1e-12);
}

TEST(EngineTest, WhereClauseFilters) {
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destPort, count(*) from PKT where len >= 100 group by destPort",
      &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  exec->Consume(MakePacket(1.0, 1, 80, 99));
  exec->Consume(MakePacket(1.0, 1, 80, 100));
  exec->Consume(MakePacket(1.0, 1, 80, 101, kProtoUdp));  // PKT: kept
  const ResultSet rs = exec->Finish();
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 2);
}

TEST(EngineTest, TwoLevelMatchesOneLevel) {
  // Figure 2(a)/(b): both aggregation modes must produce identical
  // results; only the cost profile differs.
  TraceConfig cfg;
  cfg.num_servers = 500;
  PacketGenerator gen(cfg);
  const auto packets = gen.Generate(50000);

  const std::string gsql =
      "select destIP, count(*), sum(len) from TCP group by destIP";
  std::string error;
  auto one_level = CompiledQuery::Compile(gsql, &error);
  ASSERT_NE(one_level, nullptr) << error;
  CompiledQuery::Options two_opts;
  two_opts.two_level = true;
  two_opts.low_level_slots = 256;
  auto two_level = CompiledQuery::Compile(gsql, &error, two_opts);
  ASSERT_NE(two_level, nullptr) << error;

  auto e1 = one_level->NewExecution();
  auto e2 = two_level->NewExecution();
  for (const Packet& p : packets) {
    e1->Consume(p);
    e2->Consume(p);
  }
  const ResultSet r1 = e1->Finish();
  const ResultSet r2 = e2->Finish();
  ASSERT_EQ(r1.rows.size(), r2.rows.size());
  EXPECT_GT(e2->low_level_evictions(), 0u);
  for (std::size_t i = 0; i < r1.rows.size(); ++i) {
    EXPECT_TRUE(r1.rows[i][0] == r2.rows[i][0]);
    EXPECT_TRUE(r1.rows[i][1] == r2.rows[i][1]);
    EXPECT_TRUE(r1.rows[i][2] == r2.rows[i][2]);
  }
}

TEST(EngineTest, CompileErrorsAreDiagnosed) {
  std::string error;
  // Select item that is neither aggregate nor group-by expression.
  EXPECT_EQ(CompiledQuery::Compile(
                "select len, count(*) from TCP group by destPort", &error),
            nullptr);
  EXPECT_FALSE(error.empty());
  // Unknown aggregate treated as scalar call -> error at eval... caught
  // at compile time because no aggregate is present in the item.
  error.clear();
  EXPECT_EQ(CompiledQuery::Compile(
                "select nosuchagg(len) from TCP group by destPort", &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(EngineTest, UdafPrisampRunsInsideQuery) {
  RegisterPaperUdafs();
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select tb, PRISAMP(srcIP, exp(time % 60), 8) from TCP "
      "group by time/60 as tb",
      &error);
  ASSERT_NE(plan, nullptr) << error;
  TraceConfig cfg;
  PacketGenerator gen(cfg);
  auto exec = plan->NewExecution();
  for (const Packet& p : gen.Generate(20000)) exec->Consume(p);
  const ResultSet rs = exec->Finish();
  ASSERT_FALSE(rs.rows.empty());
  // The sample column is a non-empty comma-joined list.
  EXPECT_FALSE(rs.rows[0][1].AsString().empty());
}

TEST(EngineTest, UdafFdhhFindsSkewedDestinations) {
  RegisterPaperUdafs();
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select tb, FDHH(destIP, (time % 60) * (time % 60), 0.05, 0.01) "
      "from TCP group by time/60 as tb",
      &error);
  ASSERT_NE(plan, nullptr) << error;
  TraceConfig cfg;
  cfg.num_servers = 100;
  cfg.server_skew = 1.5;
  cfg.rate_pps = 1000.0;  // 30k packets span ~30 s, so (time % 60) > 0
  PacketGenerator gen(cfg);
  auto exec = plan->NewExecution();
  for (const Packet& p : gen.Generate(30000)) exec->Consume(p);
  const ResultSet rs = exec->Finish();
  ASSERT_FALSE(rs.rows.empty());
  EXPECT_NE(rs.rows[0][1].AsString().find(':'), std::string::npos);
}

TEST(EngineTest, GroupCountTracksDistinctGroups) {
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destPort, count(*) from PKT group by destPort", &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  for (std::uint16_t port = 0; port < 100; ++port) {
    exec->Consume(MakePacket(1.0, 1, port, 64));
  }
  EXPECT_EQ(exec->GroupCount(), 100u);
  EXPECT_EQ(exec->tuples_aggregated(), 100u);
}

TEST(ResultSetTest, ToStringContainsHeaderAndRows) {
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destPort, count(*) from PKT group by destPort", &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  exec->Consume(MakePacket(1.0, 1, 80, 64));
  const std::string text = exec->Finish().ToString();
  EXPECT_NE(text.find("destport"), std::string::npos);
  EXPECT_NE(text.find("80"), std::string::npos);
}

}  // namespace
}  // namespace fwdecay::dsms
