// Tests for the GSQL extensions beyond the paper's minimal subset:
// HAVING, ORDER BY, LIMIT, and generalized output expressions mixing
// group columns with aggregates.

#include <cmath>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "dsms/engine.h"
#include "dsms/packet.h"

namespace fwdecay::dsms {
namespace {

Packet At(double time, std::uint16_t port, std::uint32_t len) {
  Packet p;
  p.time = time;
  p.dest_port = port;
  p.len = len;
  p.protocol = kProtoTcp;
  return p;
}

// Compiles and runs the query over the shared fixture stream; nullopt
// on compile failure. (The plan must outlive the execution, so the whole
// run happens inside this helper.)
std::optional<ResultSet> RunFixture(const std::string& gsql,
                                    std::string* error) {
  auto plan = CompiledQuery::Compile(gsql, error);
  if (plan == nullptr) return std::nullopt;
  auto exec = plan->NewExecution();
  // Three ports: 80 (3 packets), 443 (2), 8080 (1).
  exec->Consume(At(1.0, 80, 100));
  exec->Consume(At(2.0, 80, 200));
  exec->Consume(At(3.0, 80, 300));
  exec->Consume(At(4.0, 443, 400));
  exec->Consume(At(5.0, 443, 500));
  exec->Consume(At(6.0, 8080, 600));
  return exec->Finish();
}

TEST(GsqlExtensionsTest, HavingFiltersGroups) {
  std::string error;
  const auto result = RunFixture(
      "select destPort, count(*) from TCP group by destPort "
      "having count(*) >= 2",
      &error);
  ASSERT_TRUE(result.has_value()) << error;
  const ResultSet& rs = *result;
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 80);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 443);
}

TEST(GsqlExtensionsTest, HavingMayReferenceGroupColumnsAndLogic) {
  std::string error;
  const auto result = RunFixture(
      "select destPort, sum(len) from TCP group by destPort "
      "having destPort < 1000 and sum(len) > 500",
      &error);
  ASSERT_TRUE(result.has_value()) << error;
  const ResultSet& rs = *result;
  ASSERT_EQ(rs.rows.size(), 2u);  // 80 (600) and 443 (900); 8080 excluded
  EXPECT_EQ(rs.rows[0][0].AsInt(), 80);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 443);
}

TEST(GsqlExtensionsTest, OrderByAggregateDescending) {
  std::string error;
  const auto result = RunFixture(
      "select destPort, sum(len) as bytes from TCP group by destPort "
      "order by bytes desc",
      &error);
  ASSERT_TRUE(result.has_value()) << error;
  const ResultSet& rs = *result;
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 443);   // 900 bytes
  EXPECT_EQ(rs.rows[1][0].AsInt(), 80);    // 600
  EXPECT_EQ(rs.rows[2][0].AsInt(), 8080);  // 600... tie with 80
}

TEST(GsqlExtensionsTest, OrderByPositionAndLimit) {
  std::string error;
  const auto result = RunFixture(
      "select destPort, count(*) from TCP group by destPort "
      "order by 2 desc limit 1",
      &error);
  ASSERT_TRUE(result.has_value()) << error;
  const ResultSet& rs = *result;
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 80);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 3);
}

TEST(GsqlExtensionsTest, OrderByTiesKeepGroupOrder) {
  std::string error;
  const auto result = RunFixture(
      "select destPort, count(*) as n from TCP group by destPort "
      "order by n asc",
      &error);
  ASSERT_TRUE(result.has_value()) << error;
  const ResultSet& rs = *result;
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 8080);  // n=1
  EXPECT_EQ(rs.rows[1][0].AsInt(), 443);   // n=2
  EXPECT_EQ(rs.rows[2][0].AsInt(), 80);    // n=3
}

TEST(GsqlExtensionsTest, MixedGroupAndAggregateOutputExpression) {
  // Output expressions may combine group columns with aggregates — e.g.
  // normalize a sum by the (grouped) port number.
  std::string error;
  const auto result = RunFixture(
      "select destPort, sum(len) / destPort from TCP group by destPort",
      &error);
  ASSERT_TRUE(result.has_value()) << error;
  const ResultSet& rs = *result;
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 600 / 80);
  EXPECT_EQ(rs.rows[1][1].AsInt(), 900 / 443);
}

TEST(GsqlExtensionsTest, ScalarFunctionOfAggregate) {
  std::string error;
  const auto result = RunFixture("select destPort, sqrt(sum(len)) from TCP group by destPort",
                  &error);
  ASSERT_TRUE(result.has_value()) << error;
  const ResultSet& rs = *result;
  EXPECT_NEAR(rs.rows[1][1].AsDouble(), 30.0, 1e-9);  // sqrt(900)
}

TEST(GsqlExtensionsTest, GroupAliasUsableInsideExpressions) {
  std::string error;
  const auto result = RunFixture(
      "select tb * 60, count(*) from TCP group by time/3 as tb", &error);
  ASSERT_TRUE(result.has_value()) << error;
  const ResultSet& rs = *result;
  ASSERT_EQ(rs.rows.size(), 3u);  // buckets 0 (t=1,2), 1 (3,4,5), 2 (6)
  EXPECT_EQ(rs.rows[0][0].AsInt(), 0);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 60);
  EXPECT_EQ(rs.rows[2][0].AsInt(), 120);
}

TEST(GsqlExtensionsTest, BadOrderByDiagnosed) {
  std::string error;
  EXPECT_EQ(CompiledQuery::Compile(
                "select destPort, count(*) from TCP group by destPort "
                "order by nosuchcol",
                &error),
            nullptr);
  EXPECT_NE(error.find("ORDER BY"), std::string::npos);
  EXPECT_EQ(CompiledQuery::Compile(
                "select destPort, count(*) from TCP group by destPort "
                "order by 7",
                &error),
            nullptr);
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(GsqlExtensionsTest, BadLimitDiagnosed) {
  std::string error;
  EXPECT_EQ(CompiledQuery::Compile(
                "select destPort, count(*) from TCP group by destPort "
                "limit -3",
                &error),
            nullptr);
}

TEST(GsqlExtensionsTest, LimitZeroYieldsNoRows) {
  std::string error;
  const auto result = RunFixture(
      "select destPort, count(*) from TCP group by destPort limit 0",
      &error);
  ASSERT_TRUE(result.has_value()) << error;
  EXPECT_TRUE(result->rows.empty());
}

TEST(GsqlExtensionsTest, CountDistinct) {
  // Section IV-D at the query level: count(distinct x) is the exact
  // undecayed special case (the decayed variant is FDDISTINCT).
  std::string error;
  const auto result = RunFixture(
      "select destPort, count(*), count(distinct len) from TCP "
      "group by destPort",
      &error);
  ASSERT_TRUE(result.has_value()) << error;
  ASSERT_EQ(result->rows.size(), 3u);
  // Port 80: 3 packets with 3 distinct lengths; port 443: 2/2; 8080: 1/1.
  EXPECT_EQ(result->rows[0][2].AsInt(), 3);
  EXPECT_EQ(result->rows[1][2].AsInt(), 2);
  EXPECT_EQ(result->rows[2][2].AsInt(), 1);
}

TEST(GsqlExtensionsTest, CountDistinctDeduplicates) {
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select protocol, count(distinct destPort) from PKT "
      "group by protocol",
      &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  for (int i = 0; i < 100; ++i) {
    exec->Consume(At(1.0 + i, static_cast<std::uint16_t>(i % 7), 100));
  }
  const ResultSet rs = exec->Finish();
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][1].AsInt(), 7);
}

TEST(GsqlExtensionsTest, DecayWeightSugarFunctions) {
  // polyweight/expweight are the "simple syntactic sugar" Section IV
  // suggests: equivalent to spelling the weight arithmetic out.
  std::string error;
  const auto sugar = RunFixture(
      "select destPort, sum(len * polyweight(time, 60, 2)) / 3600.0 "
      "from TCP group by destPort",
      &error);
  ASSERT_TRUE(sugar.has_value()) << error;
  const auto spelled = RunFixture(
      "select destPort, sum(len * (time % 60) * (time % 60)) / 3600.0 "
      "from TCP group by destPort",
      &error);
  ASSERT_TRUE(spelled.has_value()) << error;
  ASSERT_EQ(sugar->rows.size(), spelled->rows.size());
  for (std::size_t i = 0; i < sugar->rows.size(); ++i) {
    EXPECT_NEAR(sugar->rows[i][1].AsDouble(), spelled->rows[i][1].AsDouble(),
                1e-9);
  }
  const auto exp_sugar = RunFixture(
      "select destPort, sum(expweight(time, 60, 0.5)) from TCP "
      "group by destPort",
      &error);
  ASSERT_TRUE(exp_sugar.has_value()) << error;
  // Port 80 packets at t = 1, 2, 3.
  EXPECT_NEAR(exp_sugar->rows[0][1].AsDouble(),
              std::exp(0.5) + std::exp(1.0) + std::exp(1.5), 1e-9);
}

TEST(GsqlExtensionsTest, HavingWithUnboundColumnDiagnosed) {
  std::string error;
  EXPECT_EQ(CompiledQuery::Compile(
                "select destPort, count(*) from TCP group by destPort "
                "having len > 5",
                &error),
            nullptr);
  EXPECT_NE(error.find("len"), std::string::npos);
}

}  // namespace
}  // namespace fwdecay::dsms
