// Coverage for paths the focused suites leave untouched: TablePrinter's
// rendered output, deterministic arrival spacing in the generator,
// sliding windows under out-of-order delivery, query bundles holding
// UDAFs, EhSum value bounds, and the Cohen–Strauss grid contract.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dsms/bundle.h"
#include "dsms/netgen.h"
#include "dsms/udafs.h"
#include "dsms/windows.h"
#include "sketch/backward_sum.h"
#include "sketch/exp_histogram.h"
#include "util/table_printer.h"

namespace fwdecay {
namespace {

std::string CaptureTable(const TablePrinter& table, bool csv) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  if (csv) {
    table.PrintCsv(f);
  } else {
    table.Print(f);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string out(static_cast<std::size_t>(size), '\0');
  EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
  std::fclose(f);
  return out;
}

TEST(TablePrinterTest, AlignedOutputContainsPaddedColumns) {
  TablePrinter t({"rate", "load"});
  t.AddRow({"100000", "3.5"});
  t.AddRow({"400000", "18.3"});
  const std::string out = CaptureTable(t, /*csv=*/false);
  // Header, separator, two rows.
  EXPECT_NE(out.find("rate    load"), std::string::npos);
  EXPECT_NE(out.find("------"), std::string::npos);
  EXPECT_NE(out.find("100000  3.5"), std::string::npos);
  EXPECT_NE(out.find("400000  18.3"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "x"});
  const std::string out = CaptureTable(t, /*csv=*/true);
  EXPECT_EQ(out, "a,b\n1,x\n");
}

TEST(TablePrinterTest, ArityMismatchIsContractViolation) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "arity");
}

TEST(NetgenTest, DeterministicArrivalSpacing) {
  dsms::TraceConfig cfg;
  cfg.poisson_arrivals = false;
  cfg.rate_pps = 1000.0;
  dsms::PacketGenerator gen(cfg);
  double prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const dsms::Packet p = gen.Next();
    EXPECT_NEAR(p.time - prev, 0.001, 1e-9);
    prev = p.time;
  }
}

TEST(SlidingRunnerTest, JitteredTraceWithSlackLosesNothing) {
  dsms::TraceConfig cfg;
  cfg.rate_pps = 2000.0;
  cfg.reorder_jitter = 0.5;
  cfg.tcp_fraction = 1.0;
  cfg.seed = 21;
  dsms::PacketGenerator gen(cfg);
  const auto packets = gen.Generate(2000 * 30);

  std::string error;
  auto plan = dsms::CompiledQuery::Compile(
      "select destPort, count(*) from TCP group by destPort", &error);
  ASSERT_NE(plan, nullptr) << error;
  // Tumbling (slide == width) so every packet is counted exactly once.
  std::int64_t total = 0;
  dsms::SlidingRunner runner(
      plan.get(), /*width=*/5.0, /*slide=*/5.0,
      [&](double, double, dsms::ResultSet rs) {
        for (const auto& row : rs.rows) total += row[1].AsInt();
      },
      /*slack_seconds=*/1.0);
  for (const auto& p : packets) runner.Consume(p);
  runner.Flush();
  EXPECT_EQ(runner.late_drops(), 0u);
  EXPECT_EQ(total, static_cast<std::int64_t>(packets.size()));
}

TEST(QueryBundleTest, UdafAndBuiltinSideBySide) {
  dsms::RegisterPaperUdafs();
  dsms::TraceConfig cfg;
  cfg.rate_pps = 2000.0;
  cfg.seed = 22;
  dsms::PacketGenerator gen(cfg);

  std::string error;
  dsms::QueryBundle bundle;
  ASSERT_GE(bundle.Add("select destPort, count(*) from TCP group by destPort",
                       &error),
            0)
      << error;
  ASSERT_GE(bundle.Add(
                "select tb, FDHH(destIP, (time % 60)*(time % 60) + 1, 0.1, "
                "0.02) from TCP group by time/60 as tb",
                &error),
            0)
      << error;
  for (const auto& p : gen.Generate(20000)) bundle.Consume(p);
  const auto results = bundle.FinishAll();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].rows.empty());
  ASSERT_FALSE(results[1].rows.empty());
  EXPECT_NE(results[1].rows[0][1].AsString().find(':'), std::string::npos);
}

TEST(EhSumTest, ValueAtBitBoundary) {
  EhSum eh(0.1, /*value_bits=*/4);
  eh.Insert(1.0, 15);  // max representable
  EXPECT_DOUBLE_EQ(eh.TotalSum(), 15.0);
  EXPECT_DEATH(eh.Insert(2.0, 16), "value_bits");
}

TEST(BackwardDecayedAggregatorTest, GridSizeContract) {
  EXPECT_DEATH(BackwardDecayedAggregator(0.1, 8, /*grid_size=*/1),
               "grid");
}

TEST(CombineWindowQueriesTest, MonotoneWindowFunctionYieldsPositive) {
  // W(a) increasing, f decreasing: result between f(horizon)*W(horizon)
  // and W(horizon).
  const double horizon = 100.0;
  auto window = [](double a) { return a * 10.0; };
  auto f = [](double age) { return 1.0 / (1.0 + age); };
  const double result = CombineWindowQueries(horizon, f, 48, window);
  EXPECT_GT(result, f(horizon) * window(horizon));
  EXPECT_LT(result, window(horizon));
}

}  // namespace
}  // namespace fwdecay
