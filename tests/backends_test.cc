// Tests for the alternative summary backends: Count-Min (weighted),
// merging t-digest, and the sliding-window quantiles baseline.

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact_reference.h"
#include "sketch/count_min.h"
#include "sketch/hll.h"
#include "sketch/kmv.h"
#include "sketch/sliding_quantiles.h"
#include "sketch/tdigest.h"
#include "util/bytes.h"
#include "util/random.h"
#include "util/zipf.h"

namespace fwdecay {
namespace {

// --- Count-Min ----------------------------------------------------------------

TEST(CountMinTest, EstimateIsUpperBoundWithinEps) {
  Rng rng(1);
  ZipfGenerator zipf(2000, 1.2);
  const double eps = 0.005;
  CountMinSketch cm(eps, 0.01);
  std::map<std::uint64_t, double> truth;
  double total = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t key = zipf.Next(rng);
    const double w = 0.5 + rng.NextDouble();
    cm.Update(key, w);
    truth[key] += w;
    total += w;
  }
  int violations = 0;
  for (const auto& [key, w] : truth) {
    const double est = cm.Estimate(key);
    EXPECT_GE(est, w - 1e-9);  // always an upper bound
    violations += est > w + eps * total;
  }
  // P(overflow beyond eps*W) <= delta per key; allow a small tail.
  EXPECT_LE(violations, static_cast<int>(truth.size() / 20));
}

TEST(CountMinTest, UnseenKeysUsuallySmall) {
  Rng rng(2);
  CountMinSketch cm(0.01, 0.01);
  for (int i = 0; i < 10000; ++i) cm.Update(rng.NextBounded(100), 1.0);
  // A fresh key's estimate is bounded by eps*W with high probability.
  int big = 0;
  for (std::uint64_t key = 1000000; key < 1000100; ++key) {
    big += cm.Estimate(key) > 0.01 * cm.TotalWeight();
  }
  EXPECT_LE(big, 5);
}

TEST(CountMinTest, MergeEqualsUnionStream) {
  Rng rng(3);
  CountMinSketch a(0.01, 0.05, /*seed=*/9);
  CountMinSketch b(0.01, 0.05, /*seed=*/9);
  CountMinSketch both(0.01, 0.05, /*seed=*/9);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.NextBounded(500);
    (i % 2 == 0 ? a : b).Update(key, 1.0);
    both.Update(key, 1.0);
  }
  a.Merge(b);
  for (std::uint64_t key = 1; key < 500; key += 37) {
    EXPECT_DOUBLE_EQ(a.Estimate(key), both.Estimate(key));
  }
}

TEST(CountMinTest, ScaleWeightsForLandmarkRescaling) {
  CountMinSketch cm(0.01, 0.05);
  cm.Update(7, 10.0);
  cm.ScaleWeights(0.25);
  EXPECT_NEAR(cm.Estimate(7), 2.5, 1e-12);
  EXPECT_NEAR(cm.TotalWeight(), 2.5, 1e-12);
}

TEST(CountMinTest, SerializeRoundTrip) {
  Rng rng(4);
  CountMinSketch cm(0.02, 0.05);
  for (int i = 0; i < 5000; ++i) cm.Update(rng.NextBounded(300), 1.0);
  ByteWriter w;
  cm.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto restored = CountMinSketch::Deserialize(&r);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(r.Exhausted());
  EXPECT_DOUBLE_EQ(restored->TotalWeight(), cm.TotalWeight());
  for (std::uint64_t key = 0; key < 300; key += 17) {
    EXPECT_DOUBLE_EQ(restored->Estimate(key), cm.Estimate(key));
  }
  // Truncation rejected.
  ByteReader trunc(w.bytes().data(), w.bytes().size() / 2);
  EXPECT_FALSE(CountMinSketch::Deserialize(&trunc).has_value());
}

TEST(CountMinTest, ForwardDecayedHeavyHittersViaCountMin) {
  // Theorem 2's reduction works with any weighted summary: feed static
  // weights g(t_i - L) and compare the decayed estimates with the exact
  // reference.
  Rng rng(5);
  ZipfGenerator zipf(300, 1.4);
  CountMinSketch cm(0.005, 0.01);
  ExactDecayedReference ref;
  const double landmark = 0.0;
  for (int i = 0; i < 50000; ++i) {
    const double ts = 1.0 + rng.NextDouble() * 59.0;
    const std::uint64_t key = zipf.Next(rng);
    const double w = (ts - landmark) * (ts - landmark);
    cm.Update(key, w);
    ref.Add(ts, key, 0.0);
  }
  const auto wfn = ForwardWeightFn(MonomialG(2.0), landmark);
  const double t = 60.0;
  const double norm = 3600.0;  // g(t - L)
  for (const auto& [key, exact] : ref.HeavyHitters(t, wfn, 0.02)) {
    const double est = cm.Estimate(key) / norm;
    EXPECT_GE(est, exact - 1e-9);
    EXPECT_LE(est, exact + 0.01 * ref.Count(t, wfn) + 1e-9);
  }
}

// --- t-digest -------------------------------------------------------------------

TEST(TDigestTest, SingleValue) {
  TDigest td(100.0);
  td.Add(42.0, 3.0);
  EXPECT_DOUBLE_EQ(td.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(td.TotalWeight(), 3.0);
}

TEST(TDigestTest, UniformQuantilesAccurate) {
  Rng rng(6);
  TDigest td(200.0);
  for (int i = 0; i < 100000; ++i) td.Add(rng.NextDouble() * 1000.0, 1.0);
  for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(td.Quantile(phi), phi * 1000.0, 15.0) << "phi=" << phi;
  }
}

TEST(TDigestTest, WeightedQuantilesMatchExact) {
  Rng rng(7);
  TDigest td(200.0);
  ExactDecayedReference ref;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextDouble() * 100.0;
    const double ts = rng.NextDouble() * 10.0;
    td.Add(v, (ts + 1.0) * (ts + 1.0));  // weighted by (ts+1)^2
    ref.Add(ts, 0, v);
  }
  const auto w = [](Timestamp ti, Timestamp) {
    return (ti + 1.0) * (ti + 1.0);
  };
  for (double phi : {0.25, 0.5, 0.75}) {
    const double exact = *ref.Quantile(10.0, w, phi);
    EXPECT_NEAR(td.Quantile(phi), exact, 3.0) << "phi=" << phi;
  }
}

TEST(TDigestTest, TailsAreSharper) {
  Rng rng(8);
  TDigest td(100.0);
  for (int i = 0; i < 100000; ++i) td.Add(rng.NextDouble(), 1.0);
  // Extreme quantiles have relative accuracy: p999 within a tight band.
  EXPECT_NEAR(td.Quantile(0.999), 0.999, 0.005);
  EXPECT_NEAR(td.Quantile(0.001), 0.001, 0.005);
}

TEST(TDigestTest, CentroidCountBounded) {
  Rng rng(9);
  const double compression = 100.0;
  TDigest td(compression);
  for (int i = 0; i < 200000; ++i) td.Add(rng.NextDouble() * 1e6, 1.0);
  EXPECT_LE(td.CentroidCount(), static_cast<std::size_t>(2 * compression));
}

TEST(TDigestTest, MergePreservesDistribution) {
  Rng rng(10);
  TDigest a(100.0);
  TDigest b(100.0);
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.NextDouble() * 100.0;
    (i % 2 == 0 ? a : b).Add(v, 1.0);
  }
  a.Merge(b);
  EXPECT_NEAR(a.TotalWeight(), 50000.0, 1e-6);
  EXPECT_NEAR(a.Quantile(0.5), 50.0, 3.0);
}

TEST(TDigestTest, CdfMonotoneAndConsistent) {
  Rng rng(11);
  TDigest td(100.0);
  for (int i = 0; i < 20000; ++i) td.Add(rng.NextDouble() * 10.0, 1.0);
  double prev = -1.0;
  for (double v = 0.0; v <= 10.0; v += 0.5) {
    const double c = td.CdfAt(v);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(td.CdfAt(5.0), 0.5, 0.05);
}

// --- HyperLogLog ---------------------------------------------------------------

TEST(HllTest, EstimateWithinExpectedError) {
  HllSketch hll(12);
  const int n = 200000;
  for (int i = 0; i < n; ++i) hll.Insert(static_cast<std::uint64_t>(i));
  // stderr ~ 1.04/sqrt(4096) ~ 1.6%; allow 5 sigma.
  EXPECT_NEAR(hll.Estimate(), n, 5.0 * 0.0163 * n);
}

TEST(HllTest, SmallCardinalitiesViaLinearCounting) {
  HllSketch hll(12);
  for (std::uint64_t k = 0; k < 100; ++k) hll.Insert(k);
  EXPECT_NEAR(hll.Estimate(), 100.0, 5.0);
  // Duplicates don't move the estimate.
  for (std::uint64_t k = 0; k < 100; ++k) hll.Insert(k);
  EXPECT_NEAR(hll.Estimate(), 100.0, 5.0);
}

TEST(HllTest, MergeEqualsUnion) {
  HllSketch a(11, /*hash_seed=*/3);
  HllSketch b(11, /*hash_seed=*/3);
  HllSketch u(11, /*hash_seed=*/3);
  for (std::uint64_t k = 0; k < 50000; ++k) {
    if (k % 2 == 0) a.Insert(k);
    if (k % 3 == 0) b.Insert(k);
    if (k % 2 == 0 || k % 3 == 0) u.Insert(k);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), u.Estimate());
}

TEST(HllTest, SerializeRoundTrip) {
  HllSketch hll(10, 7);
  for (std::uint64_t k = 0; k < 12345; ++k) hll.Insert(k);
  ByteWriter w;
  hll.SerializeTo(&w);
  ByteReader r(w.bytes());
  auto restored = HllSketch::Deserialize(&r);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(r.Exhausted());
  EXPECT_DOUBLE_EQ(restored->Estimate(), hll.Estimate());
  ByteReader trunc(w.bytes().data(), w.bytes().size() - 5);
  EXPECT_FALSE(HllSketch::Deserialize(&trunc).has_value());
}

TEST(HllTest, AgreesWithKmvOnSameStream) {
  HllSketch hll(12);
  KmvSketch kmv(1024);
  Rng rng(20);
  ZipfGenerator zipf(30000, 1.1);
  std::unordered_set<std::uint64_t> truth;
  for (int i = 0; i < 300000; ++i) {
    const std::uint64_t key = zipf.Next(rng);
    hll.Insert(key);
    kmv.Insert(key);
    truth.insert(key);
  }
  const double d = static_cast<double>(truth.size());
  EXPECT_NEAR(hll.Estimate(), d, 0.1 * d);
  EXPECT_NEAR(kmv.Estimate(), d, 0.16 * d);
}

// --- Sliding-window quantiles baseline ------------------------------------------

TEST(SlidingWindowQuantilesTest, WindowQuantileTracksRecentData) {
  Rng rng(12);
  SlidingWindowQuantiles sq(0.02, /*pane_seconds=*/1.0, /*universe_bits=*/10);
  // First 50 s: values ~100; last 10 s: values ~900.
  double t = 0.0;
  for (int i = 0; i < 50000; ++i) {
    t += 0.001;
    sq.Update(t, 80 + rng.NextBounded(40));
  }
  for (int i = 0; i < 10000; ++i) {
    t += 0.001;
    sq.Update(t, 880 + rng.NextBounded(40));
  }
  // Window covering only the recent regime.
  const std::uint64_t recent = sq.QueryWindowQuantile(t, 9.0, 0.5);
  EXPECT_GT(recent, 800u);
  // Window covering everything: median from the old regime.
  const std::uint64_t all = sq.QueryWindowQuantile(t, 120.0, 0.5);
  EXPECT_LT(all, 200u);
}

TEST(SlidingWindowQuantilesTest, DecayedQuantileMatchesExact) {
  Rng rng(13);
  SlidingWindowQuantiles sq(0.01, 0.5, 10);
  ExactDecayedReference ref;
  double t = 0.0;
  for (int i = 0; i < 40000; ++i) {
    t += 0.001;
    const std::uint64_t v = rng.NextBounded(1 << 10);
    sq.Update(t, v);
    ref.Add(t, 0, static_cast<double>(v));
  }
  PolynomialF f(2.0);
  const auto w = BackwardWeightFn(f);
  for (double phi : {0.25, 0.5, 0.75}) {
    const auto est = static_cast<double>(sq.QueryDecayedQuantile(
        t, [&](double age) { return f.F(age); }, phi));
    const double exact = *ref.Quantile(t, w, phi);
    // Pane discretization + q-digest error.
    EXPECT_NEAR(est, exact, 80.0) << "phi=" << phi;
  }
}

TEST(SlidingWindowQuantilesTest, StateGrowsWithStreamSpan) {
  // The cost story: pane count — and so memory — grows with the stream
  // span, unlike the single q-digest forward decay needs.
  SlidingWindowQuantiles sq(0.05, 1.0, 10);
  Rng rng(14);
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += 0.01;  // 200 seconds => 200 panes
    sq.Update(t, rng.NextBounded(1 << 10));
  }
  EXPECT_GE(sq.PaneCount(), 199u);
  QDigest single(10, 0.05);
  for (int i = 0; i < 20000; ++i) single.Update(rng.NextBounded(1 << 10), 1.0);
  single.Compress();
  EXPECT_GT(sq.MemoryBytes(), 5 * single.MemoryBytes());
}

TEST(SlidingWindowQuantilesTest, RejectsOutOfOrderAcrossPanes) {
  SlidingWindowQuantiles sq(0.05, 1.0, 8);
  sq.Update(5.0, 10);
  EXPECT_DEATH(sq.Update(2.0, 10), "non-decreasing");
}

}  // namespace
}  // namespace fwdecay
