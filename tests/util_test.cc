// Tests for the util substrate: PRNG, hashing, Zipf, stats, heap, tables.

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/hash.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/top_k_heap.h"
#include "util/zipf.h"

namespace fwdecay {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next64() == b.Next64());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleOpenZeroNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.NextDoubleOpenZero(), 0.0);
    EXPECT_LE(rng.NextDoubleOpenZero(), 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedRoughlyUniform) {
  Rng rng(13);
  std::vector<double> counts(10, 0.0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(10)];
  const std::vector<double> expected(10, kDraws / 10.0);
  // Chi-squared with 9 dof: 99.9th percentile ~ 27.9.
  EXPECT_LT(ChiSquaredStatistic(counts, expected), 27.9);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.NextExponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
  // Low bits should differ even for adjacent inputs.
  int diffs = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    diffs += ((Mix64(i) ^ Mix64(i + 1)) & 0xff) != 0;
  }
  EXPECT_GE(diffs, 60);
}

TEST(HashTest, SeedChangesHash) {
  EXPECT_NE(HashU64(99, 1), HashU64(99, 2));
}

TEST(HashTest, HashBytesMatchesHashString) {
  const std::string s = "forward decay";
  EXPECT_EQ(HashBytes(s.data(), s.size(), 5), HashString(s, 5));
}

TEST(HashTest, HashToUnitOpenInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = HashToUnitOpen(rng.Next64());
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(ZipfTest, DomainRespected) {
  Rng rng(1);
  ZipfGenerator zipf(100, 1.2);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = zipf.Next(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(ZipfTest, SingletonDomain) {
  Rng rng(1);
  ZipfGenerator zipf(1, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(rng), 1u);
}

TEST(ZipfTest, FrequenciesFollowPowerLaw) {
  Rng rng(2);
  const double s = 1.0;
  ZipfGenerator zipf(1000, s);
  std::vector<double> counts(1001, 0.0);
  const int kDraws = 300000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Next(rng)];
  // P(1)/P(2) should be ~2^s; use wide tolerance for sampling noise.
  EXPECT_NEAR(counts[1] / counts[2], std::pow(2.0, s), 0.25);
  EXPECT_NEAR(counts[1] / counts[4], std::pow(4.0, s), 0.6);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  Rng rng(5);
  ZipfGenerator zipf(50, 0.0);
  std::vector<double> counts(50, 0.0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Next(rng) - 1];
  const std::vector<double> expected(50, kDraws / 50.0);
  // Chi-squared 49 dof: 99.9th percentile ~ 85.4.
  EXPECT_LT(ChiSquaredStatistic(counts, expected), 85.4);
}

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(23);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 10.0;
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, EmptyMergeIsIdentity) {
  RunningStats a;
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(PercentileTest, InterpolatesBetweenValues) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2.0);
}

TEST(TopKHeapTest, KeepsLargestScores) {
  TopKHeap<int> heap(3);
  for (int i = 0; i < 10; ++i) heap.Offer(static_cast<double>(i), i);
  EXPECT_EQ(heap.size(), 3u);
  std::set<int> kept;
  for (const auto& e : heap.entries()) kept.insert(e.value);
  EXPECT_EQ(kept, (std::set<int>{7, 8, 9}));
  EXPECT_DOUBLE_EQ(heap.MinScore(), 7.0);
}

TEST(TopKHeapTest, RejectsBelowThreshold) {
  TopKHeap<int> heap(2);
  EXPECT_TRUE(heap.Offer(5.0, 1));
  EXPECT_TRUE(heap.Offer(6.0, 2));
  EXPECT_FALSE(heap.Offer(4.0, 3));
  EXPECT_TRUE(heap.Offer(7.0, 4));
  EXPECT_DOUBLE_EQ(heap.MinScore(), 6.0);
}

TEST(TopKHeapTest, SortedByScoreDesc) {
  TopKHeap<int> heap(4);
  heap.Offer(2.0, 20);
  heap.Offer(9.0, 90);
  heap.Offer(5.0, 50);
  const auto sorted = heap.SortedByScoreDesc();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].value, 90);
  EXPECT_EQ(sorted[1].value, 50);
  EXPECT_EQ(sorted[2].value, 20);
}

TEST(TablePrinterTest, FormatsAlignedTable) {
  TablePrinter t({"a", "long_header"});
  t.AddRow({"1", "2"});
  t.AddRow({"333", "4"});
  // Smoke: printing to a memstream-like file is awkward portably; just
  // exercise the formatting helper.
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace fwdecay
