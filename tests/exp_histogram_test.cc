// Tests for the exponential histograms and the Cohen–Strauss
// backward-decay reduction (the paper's Figure 2 baseline).

#include <cmath>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "core/decay.h"
#include "core/exact_reference.h"
#include "sketch/backward_sum.h"
#include "sketch/exp_histogram.h"
#include "util/random.h"

namespace fwdecay {
namespace {

TEST(EhCountTest, ExactForShortStreams) {
  EhCount eh(0.1);
  for (int i = 1; i <= 8; ++i) eh.Insert(static_cast<double>(i));
  EXPECT_EQ(eh.TotalCount(), 8u);
  // All items within the window and few buckets: estimate close to 8.
  EXPECT_NEAR(eh.CountInWindow(8.0, 100.0), 8.0, 2.0);
}

TEST(EhCountTest, WindowCountWithinRelativeError) {
  const double eps = 0.1;
  EhCount eh(eps);
  std::deque<double> stamps;
  Rng rng(1);
  double t = 0.0;
  for (int i = 0; i < 100000; ++i) {
    t += rng.NextExponential(1000.0);  // ~1000 arrivals/sec
    eh.Insert(t);
    stamps.push_back(t);
  }
  for (double window : {0.01, 0.1, 1.0, 10.0, 100.0}) {
    const double est = eh.CountInWindow(t, window);
    double truth = 0.0;
    for (double s : stamps) truth += (s >= t - window);
    if (truth < 10) continue;  // tiny windows: absolute slack dominates
    EXPECT_NEAR(est, truth, eps * truth + 2.0) << "window=" << window;
  }
}

TEST(EhCountTest, SpaceIsLogarithmicInStreamLength) {
  const double eps = 0.1;
  EhCount eh(eps);
  for (int i = 1; i <= 100000; ++i) eh.Insert(static_cast<double>(i));
  // O((1/eps) log(eps N)) buckets; generous constant.
  const double bound = (1.0 / eps) * std::log2(eps * 100000.0) * 2.0 + 16.0;
  EXPECT_LE(eh.BucketCount(), static_cast<std::size_t>(bound));
}

TEST(EhCountTest, HorizonDropsOldBuckets) {
  EhCount bounded(0.1, /*horizon=*/10.0);
  EhCount unbounded(0.1);
  for (int i = 1; i <= 50000; ++i) {
    bounded.Insert(static_cast<double>(i));
    unbounded.Insert(static_cast<double>(i));
  }
  EXPECT_LT(bounded.BucketCount(), unbounded.BucketCount());
}

TEST(EhSumTest, WindowSumWithinRelativeError) {
  const double eps = 0.1;
  EhSum eh(eps, /*value_bits=*/12);
  std::vector<std::pair<double, std::uint64_t>> items;
  Rng rng(2);
  double t = 0.0;
  for (int i = 0; i < 30000; ++i) {
    t += rng.NextExponential(500.0);
    const std::uint64_t v = 40 + rng.NextBounded(1460);
    eh.Insert(t, v);
    items.emplace_back(t, v);
  }
  for (double window : {0.5, 5.0, 50.0}) {
    double truth = 0.0;
    for (const auto& [ts, v] : items) {
      if (ts >= t - window) truth += static_cast<double>(v);
    }
    const double est = eh.SumInWindow(t, window);
    EXPECT_NEAR(est, truth, eps * truth + 1500.0) << "window=" << window;
  }
}

TEST(EhSumTest, TotalSumExact) {
  EhSum eh(0.1, 8);
  double total = 0.0;
  Rng rng(3);
  for (int i = 1; i <= 1000; ++i) {
    const std::uint64_t v = rng.NextBounded(256);
    eh.Insert(static_cast<double>(i), v);
    total += static_cast<double>(v);
  }
  EXPECT_DOUBLE_EQ(eh.TotalSum(), total);
}

TEST(EhSumTest, ZeroValuesAreFree) {
  EhSum eh(0.1, 8);
  eh.Insert(1.0, 0);
  eh.Insert(2.0, 0);
  EXPECT_DOUBLE_EQ(eh.SumInWindow(2.0, 10.0), 0.0);
  EXPECT_EQ(eh.BucketCount(), 0u);
}

TEST(EhCountTest, RequiresNondecreasingTimestamps) {
  EhCount eh(0.1);
  eh.Insert(5.0);
  EXPECT_DEATH(eh.Insert(4.0), "non-decreasing");
}

// --- Cohen–Strauss reduction -------------------------------------------------

TEST(BackwardDecayedAggregatorTest, PolynomialDecaySumMatchesExact) {
  Rng rng(4);
  BackwardDecayedAggregator agg(/*eps=*/0.05, /*value_bits=*/11,
                                /*grid_size=*/64);
  ExactDecayedReference ref;
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += rng.NextExponential(200.0);
    const std::uint64_t v = 1 + rng.NextBounded(2000);
    agg.Insert(t, v);
    ref.Add(t, 0, static_cast<double>(v));
  }
  PolynomialF f(2.0);
  const auto w = BackwardWeightFn(f);
  const double exact = ref.Sum(t, w);
  const double est = agg.DecayedSum(t, [&](double age) { return f.F(age); });
  // EH error + grid discretization: expect within ~15%.
  EXPECT_NEAR(est, exact, 0.15 * exact);
}

TEST(BackwardDecayedAggregatorTest, ExponentialDecayCountMatchesExact) {
  Rng rng(5);
  BackwardDecayedAggregator agg(0.05, 11, 64);
  ExactDecayedReference ref;
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += rng.NextExponential(200.0);
    agg.Insert(t, 1);
    ref.Add(t, 0, 1.0);
  }
  ExponentialF f(0.1);
  const auto w = BackwardWeightFn(f);
  const double exact = ref.Count(t, w);
  const double est = agg.DecayedCount(t, [&](double age) { return f.F(age); });
  EXPECT_NEAR(est, exact, 0.15 * exact);
}

TEST(BackwardDecayedAggregatorTest, SlidingWindowAsDecayFunction) {
  // The sliding window is itself a backward decay function; the grid
  // combination reduces to (roughly) a single window query.
  Rng rng(6);
  BackwardDecayedAggregator agg(0.05, 11, 96);
  ExactDecayedReference ref;
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += rng.NextExponential(200.0);
    agg.Insert(t, 1);
    ref.Add(t, 0, 1.0);
  }
  SlidingWindowF f(20.0);
  const auto w = BackwardWeightFn(f);
  const double exact = ref.Count(t, w);
  const double est = agg.DecayedCount(t, [&](double age) { return f.F(age); });
  EXPECT_NEAR(est, exact, 0.2 * exact);
}

TEST(BackwardDecayedAggregatorTest, NoDecayRecoversPlainSum) {
  BackwardDecayedAggregator agg(0.05, 8, 48);
  double total = 0.0;
  Rng rng(7);
  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    t += 0.01;
    const std::uint64_t v = rng.NextBounded(200);
    agg.Insert(t, v);
    total += static_cast<double>(v);
  }
  const double est = agg.DecayedSum(t, [](double) { return 1.0; });
  EXPECT_NEAR(est, total, 0.12 * total);
}

TEST(BackwardDecayedAggregatorTest, MemoryIsKilobytesPerGroup) {
  // Figure 2(d): EH state is orders of magnitude above the 8 bytes a
  // forward-decayed sum needs.
  Rng rng(8);
  BackwardDecayedAggregator agg(0.01, 11);
  double t = 0.0;
  for (int i = 0; i < 50000; ++i) {
    t += rng.NextExponential(1000.0);
    agg.Insert(t, 1 + rng.NextBounded(1500));
  }
  EXPECT_GT(agg.MemoryBytes(), 1024u);  // kilobytes...
  EXPECT_GT(agg.MemoryBytes(), 8u * 100);  // ...vs 8 B forward state
}

TEST(CombineWindowQueriesTest, ConstantWindowFunction) {
  // If W(a) = c for all a (everything younger than the smallest knot),
  // the combination returns f(~0) * c.
  const double est = CombineWindowQueries(
      100.0, [](double) { return 0.5; }, 32, [](double) { return 10.0; });
  EXPECT_NEAR(est, 5.0, 1e-9);
}

}  // namespace
}  // namespace fwdecay
