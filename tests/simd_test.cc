// Differential tests for the runtime-dispatched SIMD kernels
// (DESIGN.md §13.4): every dispatched kernel is compared against the
// always-compiled scalar oracle in simd::scalar on the same inputs, and
// the comparison is *bitwise* for doubles — NaN payloads, signed zeros,
// denormals and infinities must round-trip identically through both
// arms, because the engine's batched/per-tuple bit-exactness contract
// (DESIGN.md §8) rests on these kernels being indistinguishable from
// the scalar loops they replaced.
//
// Lengths cover the remainder-loop seams of both vector widths: 0, 1,
// lane−1 / lane / lane+1 for 2-lane NEON and 4-lane AVX2 doubles, the
// 32-byte AVX2 chunk of FilterByteEq, and a long unaligned 1023 tail.
//
// When the build runs under FWDECAY_FORCE_SCALAR=1 (the forced-scalar
// CI leg) the dispatched arm *is* the oracle and the differentials
// reduce to self-consistency — the env-knob test below pins that down.

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/arena.h"
#include "util/hash.h"
#include "util/simd.h"

namespace fwdecay {
namespace {

// Seam-covering lengths (see file comment). 1023 = 2^10 - 1 exercises a
// long stream whose tail misses every vector width.
const std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 31, 32, 33, 1023};

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t BitsOf(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double DoubleFromBits(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

// Every IEEE-754 special the kernels must pass through unchanged,
// including a quiet NaN with a nonzero payload and both zero signs.
std::vector<double> SpecialDoubles() {
  return {
      std::numeric_limits<double>::quiet_NaN(),
      DoubleFromBits(0x7ff8dead0000beefULL),  // quiet NaN, payload bits
      DoubleFromBits(0xfff8000000000001ULL),  // negative NaN
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      0.0,
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      DBL_MIN,
      DBL_MAX,
      -DBL_MAX,
      1.0,
      -1.5,
      3.141592653589793,
  };
}

// Fills `out` with a mix of ordinary finite values and the specials,
// deterministically from `seed`, so the same vector is regenerated for
// the dispatched and scalar runs.
void FillDoubles(std::uint64_t seed, std::vector<double>* out) {
  const std::vector<double> specials = SpecialDoubles();
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < out->size(); ++i) {
    const std::uint64_t r = SplitMix64(&s);
    if ((r & 7) == 0) {
      (*out)[i] = specials[(r >> 8) % specials.size()];
    } else {
      // Finite spread across magnitudes, both signs.
      const double mag = static_cast<double>(r >> 16) /
                         static_cast<double>(1ULL << ((r >> 3) & 31));
      (*out)[i] = (r & 1) ? mag : -mag;
    }
  }
}

// int64 values kept inside ±2^61 so elementwise add/sub in either arm
// can never hit signed-overflow UB; boundary structure comes from the
// low bits being forced through 0/±1/min-step patterns.
void FillInt64(std::uint64_t seed, std::vector<std::int64_t>* out) {
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < out->size(); ++i) {
    const std::uint64_t r = SplitMix64(&s);
    std::int64_t v = static_cast<std::int64_t>(r >> 3);  // < 2^61
    if ((r & 7) == 0) v = 0;
    if ((r & 7) == 1) v = (r & 8) ? 1 : -1;
    (*out)[i] = (r & 4) ? v : -v;
  }
}

using BinF64 = void (*)(const double*, const double*, std::size_t, double*);
using BinI64 = void (*)(const std::int64_t*, const std::int64_t*, std::size_t,
                        std::int64_t*);

struct NamedBinF64 {
  const char* name;
  BinF64 dispatched;
  BinF64 oracle;
};

struct NamedBinI64 {
  const char* name;
  BinI64 dispatched;
  BinI64 oracle;
};

const NamedBinF64 kBinF64[] = {
    {"AddF64", &simd::AddF64, &simd::scalar::AddF64},
    {"SubF64", &simd::SubF64, &simd::scalar::SubF64},
    {"MulF64", &simd::MulF64, &simd::scalar::MulF64},
    {"DivF64", &simd::DivF64, &simd::scalar::DivF64},
};

const NamedBinI64 kBinI64[] = {
    {"AddI64", &simd::AddI64, &simd::scalar::AddI64},
    {"SubI64", &simd::SubI64, &simd::scalar::SubI64},
};

const simd::CmpOp kCmpOps[] = {simd::CmpOp::kEq, simd::CmpOp::kNe,
                               simd::CmpOp::kLt, simd::CmpOp::kLe,
                               simd::CmpOp::kGt, simd::CmpOp::kGe};

const char* CmpOpName(simd::CmpOp op) {
  switch (op) {
    case simd::CmpOp::kEq: return "kEq";
    case simd::CmpOp::kNe: return "kNe";
    case simd::CmpOp::kLt: return "kLt";
    case simd::CmpOp::kLe: return "kLe";
    case simd::CmpOp::kGt: return "kGt";
    case simd::CmpOp::kGe: return "kGe";
  }
  return "?";
}

constexpr std::uint64_t kGuard64 = 0xa5a5a5a5a5a5a5a5ULL;
constexpr std::uint32_t kGuard32 = 0xa5a5a5a5U;

TEST(SimdDispatch, ArchNameMatchesArch) {
  switch (simd::ActiveArch()) {
    case simd::Arch::kScalar:
      EXPECT_STREQ(simd::ActiveArchName(), "scalar");
      break;
    case simd::Arch::kAvx2:
      EXPECT_STREQ(simd::ActiveArchName(), "avx2");
      break;
    case simd::Arch::kNeon:
      EXPECT_STREQ(simd::ActiveArchName(), "neon");
      break;
  }
}

TEST(SimdDispatch, ForceScalarEnvKnob) {
  // The knob is truthy unless unset or exactly "0" (util/simd.cc); the
  // forced-scalar CI leg runs this whole binary with it set.
  const char* env = std::getenv("FWDECAY_FORCE_SCALAR");
  const bool want_forced =
      env != nullptr && std::string(env) != "0" && *env != '\0';
  EXPECT_EQ(simd::ForcedScalar(), want_forced);
  if (simd::ForcedScalar()) {
    EXPECT_EQ(simd::ActiveArch(), simd::Arch::kScalar);
  }
}

TEST(SimdDifferential, BinaryF64BitExact) {
  for (const NamedBinF64& k : kBinF64) {
    for (const std::size_t n : kLengths) {
      std::vector<double> a(n), b(n);
      FillDoubles(0x1000 + n, &a);
      FillDoubles(0x2000 + n, &b);
      // DivF64: make some divisors exact zeros to force ±inf / NaN.
      std::uint64_t s = 0x3000 + n;
      for (std::size_t i = 0; i < n; ++i) {
        if ((SplitMix64(&s) & 15) == 0) b[i] = (s & 1) ? 0.0 : -0.0;
      }
      std::vector<double> got(n + 1), want(n + 1);
      got[n] = DoubleFromBits(kGuard64);   // overrun canary
      want[n] = DoubleFromBits(kGuard64);
      k.dispatched(a.data(), b.data(), n, got.data());
      k.oracle(a.data(), b.data(), n, want.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(BitsOf(got[i]), BitsOf(want[i]))
            << k.name << " n=" << n << " i=" << i << " a=" << a[i]
            << " b=" << b[i];
      }
      EXPECT_EQ(BitsOf(got[n]), kGuard64) << k.name << " wrote past n=" << n;
    }
  }
}

TEST(SimdDifferential, BinaryI64Exact) {
  for (const NamedBinI64& k : kBinI64) {
    for (const std::size_t n : kLengths) {
      std::vector<std::int64_t> a(n), b(n);
      FillInt64(0x4000 + n, &a);
      FillInt64(0x5000 + n, &b);
      std::vector<std::int64_t> got(n + 1), want(n + 1);
      got[n] = static_cast<std::int64_t>(kGuard64);
      want[n] = static_cast<std::int64_t>(kGuard64);
      k.dispatched(a.data(), b.data(), n, got.data());
      k.oracle(a.data(), b.data(), n, want.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << k.name << " n=" << n << " i=" << i;
      }
      EXPECT_EQ(got[n], static_cast<std::int64_t>(kGuard64))
          << k.name << " wrote past n=" << n;
    }
  }
}

TEST(SimdDifferential, CmpF64AllOpsIncludingNaN) {
  for (const simd::CmpOp op : kCmpOps) {
    for (const std::size_t n : kLengths) {
      std::vector<double> a(n), b(n);
      FillDoubles(0x6000 + n, &a);
      FillDoubles(0x7000 + n, &b);
      // Force equal pairs so kEq/kLe/kGe see true lanes, and NaN-vs-NaN
      // pairs so the ordered-predicate rule is exercised on both sides.
      std::uint64_t s = 0x8000 + n;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t r = SplitMix64(&s);
        if ((r & 7) == 0) b[i] = a[i];
        if ((r & 7) == 1) {
          a[i] = std::numeric_limits<double>::quiet_NaN();
          b[i] = std::numeric_limits<double>::quiet_NaN();
        }
      }
      std::vector<std::int64_t> got(n + 1), want(n + 1);
      got[n] = static_cast<std::int64_t>(kGuard64);
      want[n] = static_cast<std::int64_t>(kGuard64);
      simd::CmpF64(op, a.data(), b.data(), n, got.data());
      simd::scalar::CmpF64(op, a.data(), b.data(), n, want.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "CmpF64 " << CmpOpName(op) << " n=" << n
                                   << " i=" << i << " a=" << a[i]
                                   << " b=" << b[i];
        ASSERT_TRUE(got[i] == 0 || got[i] == 1)
            << "CmpF64 must produce 0/1, got " << got[i];
      }
      EXPECT_EQ(got[n], static_cast<std::int64_t>(kGuard64));
    }
  }
}

TEST(SimdDifferential, CmpF64NaNSemantics) {
  // Pinned independently of the oracle: the strict predicates kEq, kLt,
  // kGt are IEEE-ordered (NaN → false) while kNe, kLe, kGe are their
  // *negations* (NaN → true) — exactly dsms::Compare's double branch,
  // where a NaN operand yields Compare() == 0 and 0 satisfies <= / >=.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double vals[] = {nan, 1.0, nan};
  const double ones[] = {1.0, nan, nan};
  std::int64_t out[3];
  for (const simd::CmpOp op : kCmpOps) {
    simd::CmpF64(op, vals, ones, 3, out);
    const bool strict = op == simd::CmpOp::kEq || op == simd::CmpOp::kLt ||
                        op == simd::CmpOp::kGt;
    const std::int64_t want = strict ? 0 : 1;
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(out[i], want) << CmpOpName(op) << " lane " << i;
    }
  }
}

TEST(SimdDifferential, CmpI64AllOps) {
  for (const simd::CmpOp op : kCmpOps) {
    for (const std::size_t n : kLengths) {
      std::vector<std::int64_t> a(n), b(n);
      FillInt64(0x9000 + n, &a);
      FillInt64(0xa000 + n, &b);
      std::uint64_t s = 0xb000 + n;
      for (std::size_t i = 0; i < n; ++i) {
        if ((SplitMix64(&s) & 3) == 0) b[i] = a[i];
      }
      std::vector<std::int64_t> got(n + 1), want(n + 1);
      got[n] = static_cast<std::int64_t>(kGuard64);
      want[n] = static_cast<std::int64_t>(kGuard64);
      simd::CmpI64(op, a.data(), b.data(), n, got.data());
      simd::scalar::CmpI64(op, a.data(), b.data(), n, want.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i])
            << "CmpI64 " << CmpOpName(op) << " n=" << n << " i=" << i;
      }
      EXPECT_EQ(got[n], static_cast<std::int64_t>(kGuard64));
    }
  }
}

TEST(SimdDifferential, FilterByteEq) {
  for (const std::size_t n : kLengths) {
    std::vector<std::uint8_t> bytes(n);
    std::uint64_t s = 0xc000 + n;
    for (std::size_t i = 0; i < n; ++i) {
      // Dense hits on a small alphabet so runs of matches and misses
      // both occur within one 32-byte AVX2 chunk.
      bytes[i] = static_cast<std::uint8_t>(SplitMix64(&s) & 3);
    }
    for (const std::uint8_t target : {std::uint8_t{0}, std::uint8_t{2},
                                      std::uint8_t{255}}) {
      std::vector<std::uint32_t> got(n + 1, kGuard32), want(n + 1, kGuard32);
      const std::size_t got_n =
          simd::FilterByteEq(bytes.data(), target, n, got.data());
      const std::size_t want_n =
          simd::scalar::FilterByteEq(bytes.data(), target, n, want.data());
      ASSERT_EQ(got_n, want_n) << "n=" << n << " target=" << int(target);
      for (std::size_t i = 0; i < got_n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
        ASSERT_EQ(bytes[got[i]], target);
      }
      // Ascending, duplicate-free selection vector.
      for (std::size_t i = 1; i < got_n; ++i) ASSERT_LT(got[i - 1], got[i]);
      EXPECT_EQ(got[got_n], kGuard32) << "wrote past match count";
    }
  }
}

TEST(SimdDifferential, GroupHashI64MatchesGenericHash) {
  // The kernel's contract is exact equality with the per-Value hash the
  // engine computes on the generic path: HashCombine(seed,
  // HashU64(uint64(key), 1)). Checked against both the scalar oracle
  // and that closed form.
  for (const std::size_t n : kLengths) {
    std::vector<std::int64_t> keys(n);
    FillInt64(0xd000 + n, &keys);
    if (n > 0) {
      keys[0] = 0;
      keys[n - 1] = std::numeric_limits<std::int64_t>::min();
    }
    if (n > 2) keys[1] = std::numeric_limits<std::int64_t>::max();
    const std::uint64_t seed = 0x12345678abcdef01ULL;  // engine group seed
    std::vector<std::uint64_t> got(n + 1, kGuard64), want(n + 1, kGuard64);
    simd::GroupHashI64(keys.data(), n, seed, got.data());
    simd::scalar::GroupHashI64(keys.data(), n, seed, want.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
      const std::uint64_t closed = HashCombine(
          seed, HashU64(static_cast<std::uint64_t>(keys[i]), 1));
      ASSERT_EQ(got[i], closed) << "closed-form mismatch at i=" << i;
    }
    EXPECT_EQ(got[n], kGuard64);
  }
}

TEST(SimdDifferential, ShardIndexU64MatchesRemixedModulo) {
  // The routing kernel's contract is exact equality with the remixed
  // modulo the routers compute per row: HashU64(hash, seed) % shards.
  // Power-of-two counts take the vectorized mask path; the others must
  // fall back to the scalar modulo — both are checked against the
  // oracle and the closed form.
  const std::uint64_t seed = 0x5ca1ab1e0ddba11ULL;  // engine route seed
  for (const std::uint32_t shards : {1u, 2u, 3u, 4u, 7u, 8u, 64u}) {
    for (const std::size_t n : kLengths) {
      std::vector<std::uint64_t> hashes(n);
      std::uint64_t s = 0xf100 + n + shards;
      for (std::size_t i = 0; i < n; ++i) hashes[i] = SplitMix64(&s);
      if (n > 0) hashes[0] = 0;
      if (n > 1) hashes[n - 1] = ~std::uint64_t{0};
      std::vector<std::uint32_t> got(n + 1, kGuard32), want(n + 1, kGuard32);
      simd::ShardIndexU64(hashes.data(), n, seed, shards, got.data());
      simd::scalar::ShardIndexU64(hashes.data(), n, seed, shards,
                                  want.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i])
            << "shards=" << shards << " n=" << n << " i=" << i;
        ASSERT_EQ(got[i], HashU64(hashes[i], seed) % shards);
        ASSERT_LT(got[i], shards);
      }
      EXPECT_EQ(got[n], kGuard32) << "wrote past n";
    }
  }
}

TEST(SimdDifferential, CompactNonZeroI64) {
  for (const std::size_t n : kLengths) {
    std::vector<std::int64_t> vals(n);
    std::vector<std::uint32_t> sel(n);
    std::uint64_t s = 0xe000 + n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t r = SplitMix64(&s);
      vals[i] = (r & 3) == 0 ? 0 : static_cast<std::int64_t>(r >> 3);
      sel[i] = static_cast<std::uint32_t>(i * 2);  // arbitrary payload
    }
    std::vector<std::uint32_t> got = sel, want = sel;
    const std::size_t got_n = simd::CompactNonZeroI64(vals.data(), got.data(), n);
    const std::size_t want_n =
        simd::scalar::CompactNonZeroI64(vals.data(), want.data(), n);
    ASSERT_EQ(got_n, want_n) << "n=" << n;
    for (std::size_t i = 0; i < got_n; ++i) {
      ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(SimdDifferential, CompactNonZeroF64TruthinessOfSpecials) {
  // NaN is truthy (NaN != 0.0); both zero signs are falsy; denormals
  // and infinities are truthy.
  const std::vector<double> specials = SpecialDoubles();
  for (const std::size_t n : kLengths) {
    std::vector<double> vals(n);
    std::vector<std::uint32_t> sel(n);
    std::uint64_t s = 0xf000 + n;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t r = SplitMix64(&s);
      switch (r & 3) {
        case 0: vals[i] = 0.0; break;
        case 1: vals[i] = -0.0; break;
        default: vals[i] = specials[(r >> 8) % specials.size()];
      }
      sel[i] = static_cast<std::uint32_t>(i);
    }
    std::vector<std::uint32_t> got = sel, want = sel;
    const std::size_t got_n = simd::CompactNonZeroF64(vals.data(), got.data(), n);
    const std::size_t want_n =
        simd::scalar::CompactNonZeroF64(vals.data(), want.data(), n);
    ASSERT_EQ(got_n, want_n) << "n=" << n;
    for (std::size_t i = 0; i < got_n; ++i) {
      ASSERT_EQ(got[i], want[i]) << "n=" << n << " i=" << i;
      const double v = vals[got[i]];
      ASSERT_TRUE(std::isnan(v) || v != 0.0) << "kept a falsy lane";
    }
  }
}

// --- Arena (DESIGN.md §13.3) ----------------------------------------------

TEST(Arena, AlignmentAndDistinctness) {
  util::Arena arena(256);
  void* seen[64];
  for (int i = 0; i < 64; ++i) {
    const std::size_t align = std::size_t{1} << (i % 6);  // 1..32
    void* p = arena.Allocate(static_cast<std::size_t>(i % 17) + 1, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
    seen[i] = p;
    std::memset(p, 0xcd, static_cast<std::size_t>(i % 17) + 1);
  }
  for (int i = 0; i < 64; ++i) {
    for (int j = i + 1; j < 64; ++j) EXPECT_NE(seen[i], seen[j]);
  }
}

TEST(Arena, OversizedAllocationGetsDedicatedChunk) {
  util::Arena arena(64);
  void* big = arena.Allocate(4096, 8);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xab, 4096);
  EXPECT_GE(arena.bytes_reserved(), 4096u);
  // Subsequent small allocations still succeed.
  void* small = arena.Allocate(16, 8);
  ASSERT_NE(small, nullptr);
}

TEST(Arena, ResetRetainsChunks) {
  util::Arena arena(1024);
  for (int i = 0; i < 100; ++i) arena.Allocate(64, 8);
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(arena.bytes_allocated(), 0u);
  arena.Reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  // Reuse after reset hands back the same storage range.
  for (int i = 0; i < 100; ++i) arena.Allocate(64, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, NewRunsConstructorCallerRunsDestructor) {
  struct Tracked {
    explicit Tracked(int* c) : counter(c) { ++*counter; }
    ~Tracked() { --*counter; }
    int* counter;
    char payload[40];
  };
  int live = 0;
  util::Arena arena;
  Tracked* a = arena.New<Tracked>(&live);
  Tracked* b = arena.New<Tracked>(&live);
  EXPECT_EQ(live, 2);
  a->~Tracked();
  b->~Tracked();
  EXPECT_EQ(live, 0);
}

}  // namespace
}  // namespace fwdecay
