// Checkpoint/recovery tests for the DSMS engine: recovery-replay
// equality against an uninterrupted run (built-ins, UDAFs, both
// aggregation modes), the crash fault matrix on Checkpoint(), hostile
// snapshot rejection, snapshot byte-determinism, and overload shedding
// driven by forward-decayed group weights.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "dsms/udafs.h"
#include "gtest/gtest.h"
#include "util/fault_fs.h"

namespace fwdecay::dsms {
namespace {

Packet MakePacket(double time, std::uint32_t dest_ip, std::uint16_t dest_port,
                  std::uint32_t len, std::uint8_t proto = kProtoTcp) {
  Packet p;
  p.time = time;
  p.dest_ip = dest_ip;
  p.dest_port = dest_port;
  p.len = len;
  p.protocol = proto;
  return p;
}

class CheckpointTest : public testing::Test {
 protected:
  void SetUp() override {
    RegisterPaperUdafs();
    // Unique per test: ctest runs suites in parallel processes and a
    // shared path would let them stomp each other's snapshots.
    path_ = testing::TempDir() + "/fwdecay_ckpt_" +
            testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".snap";
    std::remove(path_.c_str());
    std::remove(FaultFs::TempPathFor(path_).c_str());
    FaultFs::Instance().ClearPlan();
  }
  void TearDown() override {
    FaultFs::Instance().ClearPlan();
    std::remove(path_.c_str());
    std::remove(FaultFs::TempPathFor(path_).c_str());
  }

  // Checkpoints an execution at `cut`, lets it run on to completion
  // (the "uninterrupted" outcome), then restores a second execution
  // from the snapshot, re-feeds the trace from the recorded position,
  // and asserts the two final tables are identical. Comparing against
  // the *same* execution's continuation is what makes this valid for
  // RNG-carrying UDAFs too: the snapshot holds their generator state,
  // so the restored run must replay the continuation bit for bit.
  void ExpectRecoveryReplayMatches(const std::string& gsql,
                                   const std::vector<Packet>& packets,
                                   std::size_t cut,
                                   CompiledQuery::Options opts = {}) {
    std::string error;
    auto plan = CompiledQuery::Compile(gsql, &error, opts);
    ASSERT_NE(plan, nullptr) << error;

    auto primary = plan->NewExecution();
    for (std::size_t i = 0; i < cut; ++i) primary->Consume(packets[i]);
    ASSERT_TRUE(primary->Checkpoint(path_, &error)) << error;
    for (std::size_t i = cut; i < packets.size(); ++i) {
      primary->Consume(packets[i]);
    }

    // "Crash": bring up a fresh execution from the snapshot and re-feed
    // the trace from the recorded position.
    auto restored = plan->NewExecution();
    ASSERT_TRUE(restored->Restore(path_, &error)) << error;
    EXPECT_EQ(restored->packets_consumed(), cut);
    for (std::size_t i = restored->packets_consumed(); i < packets.size();
         ++i) {
      restored->Consume(packets[i]);
    }

    const ResultSet want = primary->Finish();
    const ResultSet got = restored->Finish();
    ASSERT_FALSE(want.rows.empty());
    EXPECT_EQ(got.ToString(), want.ToString());
  }

  std::string path_;
};

TEST_F(CheckpointTest, RecoveryReplayMatchesBuiltins) {
  TraceConfig cfg;
  cfg.seed = 7;
  cfg.num_servers = 64;
  PacketGenerator gen(cfg);
  const auto packets = gen.Generate(20000);
  const std::string gsql =
      "select destIP, count(*), sum(len), avg(len), min(len), max(len), "
      "count_distinct(srcIP) from TCP group by destIP";
  ExpectRecoveryReplayMatches(gsql, packets, /*cut=*/9137);

  // Built-ins are RNG-free, so the stronger claim holds too: the
  // restored run matches a completely independent fresh execution.
  std::string error;
  auto plan = CompiledQuery::Compile(gsql, &error);
  ASSERT_NE(plan, nullptr) << error;
  auto fresh = plan->NewExecution();
  for (const Packet& p : packets) fresh->Consume(p);
  auto checkpointed = plan->NewExecution();
  for (std::size_t i = 0; i < 4242; ++i) checkpointed->Consume(packets[i]);
  ASSERT_TRUE(checkpointed->Checkpoint(path_, &error)) << error;
  checkpointed.reset();
  auto restored = plan->NewExecution();
  ASSERT_TRUE(restored->Restore(path_, &error)) << error;
  for (std::size_t i = restored->packets_consumed(); i < packets.size(); ++i) {
    restored->Consume(packets[i]);
  }
  EXPECT_EQ(restored->Finish().ToString(), fresh->Finish().ToString());
}

TEST_F(CheckpointTest, RecoveryReplayMatchesTwoLevel) {
  TraceConfig cfg;
  cfg.seed = 13;
  cfg.num_servers = 400;
  PacketGenerator gen(cfg);
  CompiledQuery::Options opts;
  opts.two_level = true;
  opts.low_level_slots = 64;  // force plenty of evictions around the cut
  ExpectRecoveryReplayMatches(
      "select destIP, count(*), sum(len) from TCP group by destIP",
      gen.Generate(30000), /*cut=*/14551, opts);
}

TEST_F(CheckpointTest, RecoveryReplayMatchesSamplingUdafs) {
  // PRISAMP/WRSAMP carry live RNG state and a heap; bit-identical
  // recovery requires both to round-trip exactly.
  TraceConfig cfg;
  cfg.seed = 21;
  cfg.rate_pps = 1000.0;
  PacketGenerator gen(cfg);
  ExpectRecoveryReplayMatches(
      "select tb, PRISAMP(srcIP, exp(time % 60), 8), "
      "WRSAMP(srcIP, (time % 60) + 1, 8), RESSAMP(srcIP, 8), "
      "AGGSAMP(srcIP, 8) from TCP group by time/60 as tb",
      gen.Generate(15000), /*cut=*/7211);
}

TEST_F(CheckpointTest, RecoveryReplayMatchesSketchUdafs) {
  TraceConfig cfg;
  cfg.seed = 33;
  cfg.num_servers = 100;
  cfg.server_skew = 1.5;
  cfg.rate_pps = 1000.0;
  PacketGenerator gen(cfg);
  const auto packets = gen.Generate(15000);
  ExpectRecoveryReplayMatches(
      "select tb, FDHH(destIP, (time % 60)*(time % 60) + 1, 0.05, 0.01), "
      "UNARYHH(destIP, 0.05, 0.01), "
      "FDQUANTILE(len, (time % 60)*(time % 60) + 1, 0.5, 11), "
      "FDDISTINCT(destIP, (time % 60)*(time % 60) + 1) "
      "from TCP group by time/60 as tb",
      packets, /*cut=*/6733);
  ExpectRecoveryReplayMatches(
      "select tb, SWHH(time, destIP, 0.05, 0.01), EHDSUM(time, len, 0.05) "
      "from TCP group by time/60 as tb",
      packets, /*cut=*/11003);
}

TEST_F(CheckpointTest, CheckpointAtEveryPhaseBoundary) {
  // Cut at the edges: before any input, after one packet, at the end.
  TraceConfig cfg;
  cfg.seed = 5;
  PacketGenerator gen(cfg);
  const auto packets = gen.Generate(2000);
  const std::string gsql =
      "select destPort, count(*), sum(len) from PKT group by destPort";
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, packets.size()}) {
    SCOPED_TRACE(cut);
    ExpectRecoveryReplayMatches(gsql, packets, cut);
  }
}

TEST_F(CheckpointTest, SnapshotBytesAreDeterministic) {
  // Two checkpoints of the same state must be byte-identical — group
  // iteration order must not leak unordered_map layout into the file.
  TraceConfig cfg;
  cfg.seed = 3;
  cfg.num_servers = 128;
  PacketGenerator gen(cfg);
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destIP, count(*), count_distinct(srcIP) from TCP "
      "group by destIP",
      &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  for (const Packet& p : gen.Generate(8000)) exec->Consume(p);

  ASSERT_TRUE(exec->Checkpoint(path_, &error)) << error;
  std::vector<std::uint8_t> first;
  ASSERT_TRUE(FaultFs::Instance().ReadFile(path_, &first, &error)) << error;
  ASSERT_TRUE(exec->Checkpoint(path_, &error)) << error;
  std::vector<std::uint8_t> second;
  ASSERT_TRUE(FaultFs::Instance().ReadFile(path_, &second, &error)) << error;
  EXPECT_EQ(first, second);
}

TEST_F(CheckpointTest, FaultMatrixNeverLeavesCorruptSnapshot) {
  // Kill the checkpoint writer at every fault point. Whatever file
  // survives must restore cleanly and behave as either the old or the
  // new snapshot — never a torn hybrid.
  TraceConfig cfg;
  cfg.seed = 17;
  PacketGenerator gen(cfg);
  const auto packets = gen.Generate(6000);
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destIP, count(*), sum(len) from TCP group by destIP", &error);
  ASSERT_NE(plan, nullptr) << error;

  auto exec = plan->NewExecution();
  for (std::size_t i = 0; i < 2000; ++i) exec->Consume(packets[i]);
  ASSERT_TRUE(exec->Checkpoint(path_, &error)) << error;
  const std::uint64_t old_pos = exec->packets_consumed();
  for (std::size_t i = 2000; i < 5000; ++i) exec->Consume(packets[i]);
  const std::uint64_t new_pos = exec->packets_consumed();

  const FaultPoint points[] = {
      FaultPoint::kOpenForWrite, FaultPoint::kTornWrite,
      FaultPoint::kWriteError, FaultPoint::kFsyncError,
      FaultPoint::kCrashBeforeRename, FaultPoint::kCrashAfterRename};
  for (FaultPoint point : points) {
    SCOPED_TRACE(static_cast<int>(point));
    {
      ScopedFaultPlan plan_guard(point, /*byte_limit=*/53);
      error.clear();
      EXPECT_FALSE(exec->Checkpoint(path_, &error));
      EXPECT_FALSE(error.empty());
    }
    FaultFs::Instance().RemoveStaleTemp(FaultFs::TempPathFor(path_));

    auto restored = plan->NewExecution();
    ASSERT_TRUE(restored->Restore(path_, &error)) << error;
    EXPECT_TRUE(restored->packets_consumed() == old_pos ||
                restored->packets_consumed() == new_pos);
    // The restored state replays to the exact uninterrupted result.
    for (std::size_t i = restored->packets_consumed(); i < packets.size();
         ++i) {
      restored->Consume(packets[i]);
    }
    auto uninterrupted = plan->NewExecution();
    for (const Packet& p : packets) uninterrupted->Consume(p);
    EXPECT_EQ(restored->Finish().ToString(),
              uninterrupted->Finish().ToString());
    // Reset to the known-good old snapshot for the next fault point.
    auto writer = plan->NewExecution();
    for (std::size_t i = 0; i < 2000; ++i) writer->Consume(packets[i]);
    ASSERT_TRUE(writer->Checkpoint(path_, &error)) << error;
  }
}

TEST_F(CheckpointTest, RestoreRejectsCorruptSnapshots) {
  TraceConfig cfg;
  cfg.seed = 29;
  PacketGenerator gen(cfg);
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destIP, count(*) from TCP group by destIP", &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  for (const Packet& p : gen.Generate(3000)) exec->Consume(p);
  ASSERT_TRUE(exec->Checkpoint(path_, &error)) << error;

  std::vector<std::uint8_t> good;
  ASSERT_TRUE(FaultFs::Instance().ReadFile(path_, &good, &error)) << error;

  // Any single bit flip in the payload is caught by the CRC frame.
  for (std::size_t pos = 24; pos < good.size(); pos += 131) {
    auto bad = good;
    bad[pos] ^= 0x04;
    ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(path_, bad, &error));
    auto victim = plan->NewExecution();
    EXPECT_FALSE(victim->Restore(path_, &error))
        << "undetected corruption at byte " << pos;
  }

  // Truncation anywhere is rejected.
  for (std::size_t len : {std::size_t{0}, std::size_t{7}, std::size_t{23},
                          good.size() - 1}) {
    std::vector<std::uint8_t> cut(good.begin(), good.begin() + len);
    ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(path_, cut, &error));
    auto victim = plan->NewExecution();
    EXPECT_FALSE(victim->Restore(path_, &error)) << "length " << len;
  }

  // A missing file is a plain error, not a crash.
  ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(path_, good, &error));
  auto victim = plan->NewExecution();
  EXPECT_FALSE(victim->Restore(path_ + ".nope", &error));
}

TEST_F(CheckpointTest, RestoreRejectsDifferentQueryPlan) {
  TraceConfig cfg;
  PacketGenerator gen(cfg);
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destIP, count(*) from TCP group by destIP", &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  for (const Packet& p : gen.Generate(1000)) exec->Consume(p);
  ASSERT_TRUE(exec->Checkpoint(path_, &error)) << error;

  auto other = CompiledQuery::Compile(
      "select destIP, sum(len) from TCP group by destIP", &error);
  ASSERT_NE(other, nullptr) << error;
  auto victim = other->NewExecution();
  EXPECT_FALSE(victim->Restore(path_, &error));
  EXPECT_NE(error.find("different query plan"), std::string::npos) << error;

  // Same text, different aggregation-mode options: also rejected.
  CompiledQuery::Options two_opts;
  two_opts.two_level = true;
  auto two_level = CompiledQuery::Compile(
      "select destIP, count(*) from TCP group by destIP", &error, two_opts);
  ASSERT_NE(two_level, nullptr) << error;
  auto victim2 = two_level->NewExecution();
  EXPECT_FALSE(victim2->Restore(path_, &error));
}

// --- Overload shedding -----------------------------------------------------

TEST_F(CheckpointTest, SheddingBoundsGroupCount) {
  TraceConfig cfg;
  cfg.seed = 41;
  cfg.num_servers = 500;
  PacketGenerator gen(cfg);
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destIP, count(*) from TCP group by destIP", &error);
  ASSERT_NE(plan, nullptr) << error;

  auto exec = plan->NewExecution();
  OverloadPolicy policy;
  policy.max_groups = 32;
  policy.decay_alpha = 0.1;
  exec->SetOverloadPolicy(policy);
  std::uint64_t fed = 0;
  for (const Packet& p : gen.Generate(20000)) {
    exec->Consume(p);
    ++fed;
    ASSERT_LE(exec->GroupCount(), policy.max_groups);
  }
  EXPECT_GT(exec->groups_shed(), 0u);
  EXPECT_GT(exec->tuples_shed(), 0u);
  EXPECT_LT(exec->tuples_shed(), fed);
  const ResultSet rs = exec->Finish();
  EXPECT_LE(rs.rows.size(), policy.max_groups);
}

TEST_F(CheckpointTest, SheddingEvictsLowestForwardWeight) {
  // With alpha > 0 the forward-decayed weight grows with the timestamp,
  // so the stale low-traffic group is the one sacrificed — even though
  // every group here holds exactly one tuple.
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destIP, count(*) from TCP group by destIP", &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  OverloadPolicy policy;
  policy.max_groups = 2;
  policy.decay_alpha = 1.0;
  exec->SetOverloadPolicy(policy);

  exec->Consume(MakePacket(1.0, /*dest_ip=*/10, 80, 100));
  exec->Consume(MakePacket(2.0, /*dest_ip=*/20, 80, 100));
  // Group 30 arrives later with the largest weight: group 10 (oldest,
  // smallest g(t - L)) must be the one shed.
  exec->Consume(MakePacket(3.0, /*dest_ip=*/30, 80, 100));
  EXPECT_EQ(exec->groups_shed(), 1u);
  EXPECT_EQ(exec->tuples_shed(), 1u);

  const ResultSet rs = exec->Finish();
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 20);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 30);
}

TEST_F(CheckpointTest, SheddingWithZeroAlphaEvictsSmallestGroup) {
  // alpha == 0 degrades the weight to a tuple count: the group with the
  // fewest tuples goes first, with the key ordering breaking ties.
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destIP, count(*) from TCP group by destIP", &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  OverloadPolicy policy;
  policy.max_groups = 2;
  exec->SetOverloadPolicy(policy);

  exec->Consume(MakePacket(1.0, 10, 80, 100));
  exec->Consume(MakePacket(2.0, 10, 80, 100));
  exec->Consume(MakePacket(3.0, 20, 80, 100));  // the singleton
  exec->Consume(MakePacket(4.0, 30, 80, 100));  // evicts group 20
  EXPECT_EQ(exec->groups_shed(), 1u);
  EXPECT_EQ(exec->tuples_shed(), 1u);

  const ResultSet rs = exec->Finish();
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 10);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 30);
}

TEST_F(CheckpointTest, SheddingStateSurvivesCheckpoint) {
  // Policy, group weights, and shed counters all round-trip, so the
  // restored execution sheds exactly like the uninterrupted one.
  TraceConfig cfg;
  cfg.seed = 47;
  cfg.num_servers = 300;
  PacketGenerator gen(cfg);
  const auto packets = gen.Generate(16000);
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destIP, count(*), sum(len) from TCP group by destIP", &error);
  ASSERT_NE(plan, nullptr) << error;

  OverloadPolicy policy;
  policy.max_groups = 48;
  policy.decay_alpha = 0.05;
  policy.landmark = 1.0;

  auto uninterrupted = plan->NewExecution();
  uninterrupted->SetOverloadPolicy(policy);
  for (const Packet& p : packets) uninterrupted->Consume(p);

  auto primary = plan->NewExecution();
  primary->SetOverloadPolicy(policy);
  for (std::size_t i = 0; i < 8000; ++i) primary->Consume(packets[i]);
  ASSERT_TRUE(primary->Checkpoint(path_, &error)) << error;
  const std::uint64_t shed_at_cut = primary->groups_shed();
  EXPECT_GT(shed_at_cut, 0u);
  primary.reset();

  auto restored = plan->NewExecution();
  ASSERT_TRUE(restored->Restore(path_, &error)) << error;
  EXPECT_EQ(restored->overload_policy().max_groups, policy.max_groups);
  EXPECT_DOUBLE_EQ(restored->overload_policy().decay_alpha,
                   policy.decay_alpha);
  EXPECT_EQ(restored->groups_shed(), shed_at_cut);
  for (std::size_t i = restored->packets_consumed(); i < packets.size(); ++i) {
    restored->Consume(packets[i]);
  }
  EXPECT_EQ(restored->groups_shed(), uninterrupted->groups_shed());
  EXPECT_EQ(restored->tuples_shed(), uninterrupted->tuples_shed());
  EXPECT_EQ(restored->Finish().ToString(), uninterrupted->Finish().ToString());
}

TEST_F(CheckpointTest, SheddingInTwoLevelMode) {
  TraceConfig cfg;
  cfg.seed = 53;
  cfg.num_servers = 400;
  PacketGenerator gen(cfg);
  std::string error;
  CompiledQuery::Options opts;
  opts.two_level = true;
  opts.low_level_slots = 32;
  auto plan = CompiledQuery::Compile(
      "select destIP, count(*) from TCP group by destIP", &error, opts);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  OverloadPolicy policy;
  policy.max_groups = 64;
  policy.decay_alpha = 0.1;
  exec->SetOverloadPolicy(policy);
  for (const Packet& p : gen.Generate(20000)) exec->Consume(p);
  EXPECT_GT(exec->groups_shed(), 0u);
  EXPECT_LE(exec->Finish().rows.size(),
            policy.max_groups + opts.low_level_slots);
}

}  // namespace
}  // namespace fwdecay::dsms
