// Observability layer (DESIGN.md §9): the registry's exposition format
// is pinned by an exact golden test, the forward-decayed rate is
// validated against the brute-force ExactDecayedReference, and the
// engine / checkpoint / fault-injection integrations are checked as
// counter deltas on the process-wide registry.
//
// The unit tests target metrics::impl directly (always compiled, so
// this file passes under -DFWDECAY_METRICS=OFF too); integration tests
// go through the aliases and skip themselves when metrics are compiled
// out. metrics_noop_helper.cc is force-compiled with the metrics
// disabled and linked in, proving mixed-setting TUs coexist.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/decay.h"
#include "core/exact_reference.h"
#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "util/fault_fs.h"
#include "util/metrics.h"

namespace fwdecay::metrics_noop_check {
std::uint64_t ExerciseDisabledMetrics();
}

namespace {

using namespace fwdecay;
using metrics::impl::Counter;
using metrics::impl::DecayedRate;
using metrics::impl::Gauge;
using metrics::impl::LatencyReservoir;
using metrics::impl::MetricsRegistry;
using metrics::impl::ScopedTimerSample;
using metrics::impl::StatsReporter;

// Value of the first sample line for `name` (exact-name match on the
// unlabelled instance), or NaN when the family is absent.
double MetricValue(const std::string& exposition, const std::string& name) {
  std::size_t pos = 0;
  while (pos < exposition.size()) {
    std::size_t eol = exposition.find('\n', pos);
    if (eol == std::string::npos) eol = exposition.size();
    const std::string line = exposition.substr(pos, eol - pos);
    if (line.compare(0, name.size() + 1, name + " ") == 0) {
      return std::strtod(line.c_str() + name.size() + 1, nullptr);
    }
    pos = eol + 1;
  }
  return std::nan("");
}

double GlobalMetric(const std::string& name) {
  std::string text;
  metrics::MetricsRegistry::Instance().RenderPrometheus(&text);
  const double v = MetricValue(text, name);
  return std::isnan(v) ? 0.0 : v;
}

TEST(MetricNameTest, ValidatesPrefixAndCharset) {
  EXPECT_TRUE(metrics::ValidMetricName("fwdecay_requests_total"));
  EXPECT_TRUE(metrics::ValidMetricName("fwdecay_x9"));
  EXPECT_FALSE(metrics::ValidMetricName(""));
  EXPECT_FALSE(metrics::ValidMetricName("fwdecay_"));
  EXPECT_FALSE(metrics::ValidMetricName("requests_total"));
  EXPECT_FALSE(metrics::ValidMetricName("fwdecay_Requests"));
  EXPECT_FALSE(metrics::ValidMetricName("fwdecay_req-total"));
  EXPECT_FALSE(metrics::ValidMetricName("fwdecay_req total"));
}

TEST(FormatValueTest, IntegralValuesDropThePoint) {
  EXPECT_EQ(metrics::FormatValue(0.0), "0");
  EXPECT_EQ(metrics::FormatValue(5.0), "5");
  EXPECT_EQ(metrics::FormatValue(-3.0), "-3");
  EXPECT_EQ(metrics::FormatValue(1234567.0), "1234567");
  EXPECT_EQ(metrics::FormatValue(49.6), "49.6");
  EXPECT_EQ(metrics::FormatValue(2.5), "2.5");
}

TEST(CounterTest, IncrementsAndReportsPreValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(c.Increment(), 0u);
  EXPECT_EQ(c.Increment(41), 1u);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(2.5);
  g.Set(-7.0);
  EXPECT_EQ(g.value(), -7.0);
}

// The decayed count must equal the brute-force reference exactly
// (same arithmetic, Definition 5); the rate is count * alpha.
TEST(DecayedRateTest, MatchesExactReference) {
  const double alpha = 0.5;
  DecayedRate rate(alpha);
  ExactDecayedReference ref;
  for (int i = 0; i < 1000; ++i) {
    const double t = 0.01 * i;
    rate.Mark(t);
    ref.Add(t, /*key=*/0, /*value=*/1.0);
  }
  const double t_end = 0.01 * 999;
  const double want =
      ref.Count(t_end, BackwardWeightFn(ExponentialF(alpha)));
  EXPECT_NEAR(rate.DecayedCountValue(t_end), want, 1e-9 * want);
  EXPECT_NEAR(rate.RatePerSecond(t_end), want * alpha, 1e-9 * want);
  rate.CheckInvariants();
}

// For steady arrivals at rate r the decayed count converges to r/alpha
// (Poisson argument in the header), so RatePerSecond estimates r.
TEST(DecayedRateTest, ConvergesToArrivalRate) {
  const double alpha = 0.5;
  DecayedRate rate(alpha);
  for (int i = 0; i <= 2000; ++i) rate.Mark(0.01 * i);  // 100 events/s, 20 s
  EXPECT_NEAR(rate.RatePerSecond(20.0), 100.0, 2.0);
}

// Marks far past the landmark trigger the write-time rebase (Section
// VI-A); the observable value must not jump.
TEST(DecayedRateTest, LandmarkRescalePreservesValue) {
  const double alpha = 0.1;
  DecayedRate rate(alpha);
  ExactDecayedReference ref;
  for (const double t : {0.0, 700.0, 1400.0}) {  // 0.1 * 700 > kRescaleLogLimit
    rate.Mark(t);
    ref.Add(t, 0, 1.0);
  }
  const double want = ref.Count(1400.0, BackwardWeightFn(ExponentialF(alpha)));
  EXPECT_NEAR(rate.DecayedCountValue(1400.0), want, 1e-9);
  rate.CheckInvariants();
}

TEST(LatencyReservoirTest, QuantilesOfSmallSample) {
  LatencyReservoir r(/*k=*/8, /*alpha=*/0.015);
  for (const double v : {10.0, 20.0, 30.0, 40.0, 50.0}) r.Observe(0.0, v);
  const ReservoirSnapshot snap = r.Snapshot();
  EXPECT_EQ(snap.size, 5u);
  EXPECT_DOUBLE_EQ(snap.median, 30.0);
  EXPECT_DOUBLE_EQ(snap.p75, 40.0);
  EXPECT_DOUBLE_EQ(snap.p95, 48.0);
  EXPECT_DOUBLE_EQ(snap.p99, 49.6);
  EXPECT_EQ(r.observations(), 5u);
  r.CheckInvariants();
}

TEST(LatencyReservoirTest, ObservationsAreCumulativeSampleIsBounded) {
  LatencyReservoir r(/*k=*/4, /*alpha=*/0.1);
  for (int i = 0; i < 100; ++i) r.Observe(0.1 * i, i);
  EXPECT_EQ(r.observations(), 100u);
  EXPECT_LE(r.Snapshot().size, 4u);
  r.CheckInvariants();
}

TEST(ScopedTimerSampleTest, RecordsElapsedTimeOrNothing) {
  LatencyReservoir r(/*k=*/4, /*alpha=*/0.1);
  { ScopedTimerSample null_sample(nullptr, 0.0); }  // must not observe/crash
  EXPECT_EQ(r.observations(), 0u);
  { ScopedTimerSample sample(&r, 0.0); }
  EXPECT_EQ(r.observations(), 1u);
  EXPECT_GE(r.Snapshot().min, 0.0);
}

TEST(MetricsRegistryTest, HandlesAreStableAndSharedByName) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("fwdecay_reqs_total", "Requests.");
  Counter* b = reg.GetCounter("fwdecay_reqs_total", "Requests.");
  EXPECT_EQ(a, b);
  Counter* labelled =
      reg.GetCounter("fwdecay_reqs_total", "Requests.", "shard=\"0\"");
  EXPECT_NE(a, labelled);
  EXPECT_EQ(reg.MetricCount(), 2u);
  reg.CheckInvariants();
}

TEST(MetricsRegistryTest, GoldenExposition) {
  MetricsRegistry reg;
  reg.GetGauge("fwdecay_queue_depth", "Current depth.")->Set(2.5);
  reg.GetCounter("fwdecay_requests_total", "Requests served.")->Increment(3);
  reg.GetCounter("fwdecay_requests_total", "Requests served.", "shard=\"1\"")
      ->Increment(4);
  LatencyReservoir* rpc =
      reg.GetReservoir("fwdecay_rpc_ns", "RPC latency.", 8, 0.015);
  for (const double v : {10.0, 20.0, 30.0, 40.0, 50.0}) rpc->Observe(0.0, v);
  reg.GetDecayedRate("fwdecay_tuple_rate", "Decayed tuple rate.", 0.5)
      ->Mark(10.0, 10.0);

  std::string got;
  reg.RenderPrometheus(&got, /*now=*/10.0);
  EXPECT_EQ(got,
            "# HELP fwdecay_queue_depth Current depth.\n"
            "# TYPE fwdecay_queue_depth gauge\n"
            "fwdecay_queue_depth 2.5\n"
            "# HELP fwdecay_requests_total Requests served.\n"
            "# TYPE fwdecay_requests_total counter\n"
            "fwdecay_requests_total 3\n"
            "fwdecay_requests_total{shard=\"1\"} 4\n"
            "# HELP fwdecay_rpc_ns RPC latency.\n"
            "# TYPE fwdecay_rpc_ns summary\n"
            "fwdecay_rpc_ns{quantile=\"0.5\"} 30\n"
            "fwdecay_rpc_ns{quantile=\"0.75\"} 40\n"
            "fwdecay_rpc_ns{quantile=\"0.95\"} 48\n"
            "fwdecay_rpc_ns{quantile=\"0.99\"} 49.6\n"
            "fwdecay_rpc_ns_count 5\n"
            "# HELP fwdecay_tuple_rate Decayed tuple rate.\n"
            "# TYPE fwdecay_tuple_rate gauge\n"
            "fwdecay_tuple_rate 5\n");
  reg.CheckInvariants();
}

TEST(MetricsRegistryDeathTest, RejectsBadNamesAndKindChanges) {
  MetricsRegistry reg;
  EXPECT_DEATH(reg.GetCounter("bad_name_total", "h"),
               "metric names must match");
  reg.GetCounter("fwdecay_thing_total", "h");
  EXPECT_DEATH(reg.GetGauge("fwdecay_thing_total", "h"),
               "metric re-registered with a different kind");
  EXPECT_DEATH(reg.GetGauge("fwdecay_thing_total", "h", "shard=\"1\""),
               "metric family spans two kinds");
  reg.GetDecayedRate("fwdecay_thing_rate", "h", 0.5);
  EXPECT_DEATH(reg.GetDecayedRate("fwdecay_thing_rate", "h", 0.25),
               "decayed rate re-registered with a different alpha");
}

// Registration, writes, and renders race from several threads; run
// under TSan in CI. The per-label counters must survive uncorrupted.
TEST(MetricsRegistryTest, ConcurrentRegistrationAndRender) {
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&reg, w] {
      const std::string label = "writer=\"" + std::to_string(w) + "\"";
      for (int i = 0; i < kIters; ++i) {
        reg.GetCounter("fwdecay_conc_total", "Concurrent.", label)
            ->Increment();
        reg.GetReservoir("fwdecay_conc_ns", "Concurrent.", 16, 0.1)
            ->Observe(reg.NowSeconds(), i);
      }
    });
  }
  std::thread reader([&reg] {
    std::string text;
    for (int i = 0; i < 200; ++i) {
      reg.RenderPrometheus(&text);
      reg.CheckInvariants();
    }
  });
  for (std::thread& t : writers) t.join();
  reader.join();

  std::string text;
  reg.RenderPrometheus(&text);
  for (int w = 0; w < kThreads; ++w) {
    const std::string line = "fwdecay_conc_total{writer=\"" +
                             std::to_string(w) + "\"} " +
                             std::to_string(kIters) + "\n";
    EXPECT_NE(text.find(line), std::string::npos) << line;
  }
  EXPECT_EQ(
      reg.GetReservoir("fwdecay_conc_ns", "Concurrent.", 16, 0.1)
          ->observations(),
      static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(StatsReporterTest, EmitsPeriodicReports) {
  MetricsRegistry reg;
  reg.GetCounter("fwdecay_reporter_probe_total", "Probe.")->Increment(9);
  std::atomic<int> seen{0};
  std::string last;
  Mutex mu;
  {
    StatsReporter reporter(&reg, /*period_seconds=*/0.01,
                           [&](const std::string& text) {
                             MutexLock lock(mu);
                             last = text;
                             seen.fetch_add(1);
                           });
    while (seen.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    reporter.Stop();
    EXPECT_GE(reporter.reports_emitted(), 1u);
  }
  MutexLock lock(mu);
  EXPECT_NE(last.find("fwdecay_reporter_probe_total 9"), std::string::npos);
}

TEST(NoopBuildTest, DisabledTranslationUnitDoesNothing) {
  EXPECT_EQ(metrics_noop_check::ExerciseDisabledMetrics(), 0u);
  // The probe names the helper used must never leak into the real
  // registry: the helper's aliases resolved to the noop shells.
  std::string text;
  metrics::MetricsRegistry::Instance().RenderPrometheus(&text);
  EXPECT_EQ(text.find("fwdecay_noop_probe"), std::string::npos);
}

// --------------------------------------------------------------------
// Integration: instrumented engine paths move the global families.

TEST(EngineIntegrationTest, IngestMovesEngineCounters) {
  if (!FWDECAY_METRICS_ENABLED) GTEST_SKIP() << "metrics compiled out";
  dsms::TraceConfig cfg;
  cfg.seed = 11;
  dsms::PacketGenerator gen(cfg);
  const auto trace = gen.Generate(5000);

  std::string error;
  auto plan = dsms::CompiledQuery::Compile(
      "select destPort, count(*) from TCP group by destPort", &error);
  ASSERT_NE(plan, nullptr) << error;

  const double packets0 = GlobalMetric("fwdecay_engine_packets_total");
  const double tuples0 = GlobalMetric("fwdecay_engine_tuples_total");
  auto exec = plan->NewExecution();
  for (const auto& p : trace) exec->Consume(p);
  const std::uint64_t aggregated = exec->tuples_aggregated();
  exec->Finish();  // publishes the tail delta

  EXPECT_EQ(GlobalMetric("fwdecay_engine_packets_total") - packets0,
            static_cast<double>(trace.size()));
  EXPECT_EQ(GlobalMetric("fwdecay_engine_tuples_total") - tuples0,
            static_cast<double>(aggregated));
}

TEST(EngineIntegrationTest, CheckpointRestoreAndFaultCountersMove) {
  if (!FWDECAY_METRICS_ENABLED) GTEST_SKIP() << "metrics compiled out";
  dsms::TraceConfig cfg;
  cfg.seed = 12;
  dsms::PacketGenerator gen(cfg);
  const auto trace = gen.Generate(2000);

  std::string error;
  auto plan = dsms::CompiledQuery::Compile(
      "select destPort, count(*) from TCP group by destPort", &error);
  ASSERT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  for (const auto& p : trace) exec->Consume(p);

  const std::string path = testing::TempDir() + "metrics_test.ckpt";
  const double ckpt0 = GlobalMetric("fwdecay_checkpoint_total");
  const double writes0 = GlobalMetric("fwdecay_faultfs_writes_total");
  const double wfail0 = GlobalMetric("fwdecay_faultfs_write_failures_total");
  const double faults0 = GlobalMetric("fwdecay_faultfs_faults_injected_total");
  const double restores0 = GlobalMetric("fwdecay_restore_total");

  ASSERT_TRUE(exec->Checkpoint(path, &error)) << error;
  EXPECT_EQ(GlobalMetric("fwdecay_checkpoint_total") - ckpt0, 1.0);
  EXPECT_EQ(GlobalMetric("fwdecay_faultfs_writes_total") - writes0, 1.0);
  EXPECT_GT(GlobalMetric("fwdecay_checkpoint_bytes_total"), 0.0);

  auto restored = plan->NewExecution();
  ASSERT_TRUE(restored->Restore(path, &error)) << error;
  EXPECT_EQ(GlobalMetric("fwdecay_restore_total") - restores0, 1.0);
  EXPECT_EQ(restored->tuples_aggregated(), exec->tuples_aggregated());

  // An injected fsync failure shows up in both the fault counter and
  // the write-failure counter.
  FaultFs::Instance().SetPlan({FaultPoint::kFsyncError, 0});
  EXPECT_FALSE(exec->Checkpoint(path, &error));
  FaultFs::Instance().ClearPlan();
  EXPECT_EQ(GlobalMetric("fwdecay_faultfs_faults_injected_total") - faults0,
            1.0);
  EXPECT_EQ(GlobalMetric("fwdecay_faultfs_write_failures_total") - wfail0,
            1.0);
  std::remove(path.c_str());
}

TEST(EngineIntegrationTest, ShardedIngestPopulatesShardFamilies) {
  if (!FWDECAY_METRICS_ENABLED) GTEST_SKIP() << "metrics compiled out";
  dsms::TraceConfig cfg;
  cfg.seed = 13;
  dsms::PacketGenerator gen(cfg);
  const auto trace = gen.Generate(4000);
  dsms::PacketBatch batch(trace.size());
  for (const auto& p : trace) batch.Append(p);

  std::string error;
  auto plan = dsms::CompiledQuery::Compile(
      "select destPort, count(*) from TCP group by destPort", &error);
  ASSERT_NE(plan, nullptr) << error;

  std::vector<double> before(2);
  std::string text;
  metrics::MetricsRegistry::Instance().RenderPrometheus(&text);
  for (int s = 0; s < 2; ++s) {
    const double v = MetricValue(
        text, "fwdecay_shard_tuples_total{shard=\"" + std::to_string(s) +
                  "\"}");
    before[static_cast<std::size_t>(s)] = std::isnan(v) ? 0.0 : v;
  }

  dsms::ShardedQueryExecution sharded(*plan, 2);
  sharded.Consume(batch);
  const std::uint64_t aggregated = sharded.tuples_aggregated();
  sharded.Finish();  // quiesce point: shard deltas publish here

  metrics::MetricsRegistry::Instance().RenderPrometheus(&text);
  double delta = 0.0;
  for (int s = 0; s < 2; ++s) {
    const double v = MetricValue(
        text, "fwdecay_shard_tuples_total{shard=\"" + std::to_string(s) +
                  "\"}");
    ASSERT_FALSE(std::isnan(v));
    delta += v - before[static_cast<std::size_t>(s)];
  }
  EXPECT_EQ(delta, static_cast<double>(aggregated));
}

}  // namespace
