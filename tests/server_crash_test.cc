// Crash/restart durability tests against the real fwdecayd binary
// (path baked in via FWDECAYD_PATH): SIGKILL mid-stream, restart,
// verify every acknowledged batch survived and the recovered answers
// match a never-crashed reference bit for bit. The acked set is a
// prefix of the sent sequence (one connection, sequential sends), so
// the reference is simply the same stream cut at the recovered
// batches_acked count.

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/daemon.h"
#include "util/fault_fs.h"

#ifndef FWDECAYD_PATH
#error "FWDECAYD_PATH must point at the fwdecayd binary"
#endif

namespace fwdecay::server {
namespace {

constexpr char kGsql[] =
    "select destIP, count(*), sum(len) from TCP group by destIP";

dsms::PacketBatch MakeBatch(const std::vector<dsms::Packet>& packets,
                            std::size_t begin, std::size_t end) {
  dsms::PacketBatch batch(end - begin);
  for (std::size_t i = begin; i < end; ++i) (void)batch.Append(packets[i]);
  return batch;
}

/// A spawned fwdecayd child process. Ports are parsed from its stdout
/// banner lines; Kill sends SIGKILL and reaps.
class DaemonProcess {
 public:
  bool Spawn(const std::string& data_dir, std::string* error) {
    int fds[2];
    if (pipe(fds) != 0) {
      *error = "pipe failed";
      return false;
    }
    pid_ = fork();
    if (pid_ < 0) {
      close(fds[0]);
      close(fds[1]);
      *error = "fork failed";
      return false;
    }
    if (pid_ == 0) {
      dup2(fds[1], STDOUT_FILENO);
      close(fds[0]);
      close(fds[1]);
      execl(FWDECAYD_PATH, "fwdecayd", "--data-dir", data_dir.c_str(),
            "--io-timeout-ms", "20000", static_cast<char*>(nullptr));
      _exit(127);  // exec failed
    }
    close(fds[1]);
    stdout_fd_ = fds[0];
    return ParseBanner(error);
  }

  std::uint16_t ingest_port() const { return ingest_port_; }

  void Kill() {
    if (pid_ > 0) {
      kill(pid_, SIGKILL);
      int status = 0;
      (void)waitpid(pid_, &status, 0);
      pid_ = -1;
    }
    CloseStdout();
  }

  /// SIGTERM + wait: the graceful path (drain, checkpoint, exit 0).
  bool Terminate() {
    if (pid_ <= 0) return false;
    kill(pid_, SIGTERM);
    int status = 0;
    (void)waitpid(pid_, &status, 0);
    pid_ = -1;
    CloseStdout();
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }

  ~DaemonProcess() { Kill(); }

 private:
  bool ParseBanner(std::string* error) {
    // Read stdout until both banner lines arrive (bounded wait).
    std::string text;
    char buf[256];
    for (int spins = 0; spins < 200; ++spins) {
      struct pollfd pfd;
      pfd.fd = stdout_fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int rc = poll(&pfd, 1, 100);
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) continue;
      const ssize_t n = read(stdout_fd_, buf, sizeof(buf));
      if (n <= 0) break;
      text.append(buf, static_cast<std::size_t>(n));
      unsigned ingest = 0;
      unsigned metrics = 0;
      const char* listening = std::strstr(text.c_str(), "listening on ");
      const char* serving = std::strstr(text.c_str(), "metrics on ");
      if (listening != nullptr && serving != nullptr &&
          std::sscanf(listening, "listening on 127.0.0.1:%u", &ingest) == 1 &&
          std::sscanf(serving, "metrics on http://127.0.0.1:%u", &metrics) ==
              1) {
        ingest_port_ = static_cast<std::uint16_t>(ingest);
        metrics_port_ = static_cast<std::uint16_t>(metrics);
        return true;
      }
    }
    *error = "fwdecayd banner never arrived; got: " + text;
    return false;
  }

  void CloseStdout() {
    if (stdout_fd_ >= 0) {
      close(stdout_fd_);
      stdout_fd_ = -1;
    }
  }

  pid_t pid_ = -1;
  int stdout_fd_ = -1;
  std::uint16_t ingest_port_ = 0;
  std::uint16_t metrics_port_ = 0;
};

class ServerCrashTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/fwdecay_crash_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    RemoveTree(dir_);
  }
  void TearDown() override { RemoveTree(dir_); }

  static void RemoveTree(const std::string& dir) {
    SnapshotManager snaps(dir, 1);
    std::remove(snaps.CurrentPath().c_str());
    std::remove(FaultFs::TempPathFor(snaps.CurrentPath()).c_str());
    for (std::uint64_t e = 0; e < 64; ++e) {
      std::remove(snaps.SnapPath(e).c_str());
      std::remove(snaps.JournalPath(e).c_str());
      std::remove(FaultFs::TempPathFor(snaps.SnapPath(e)).c_str());
    }
    rmdir(dir.c_str());
  }

  std::string dir_;
};

TEST_F(ServerCrashTest, SigkillMidStreamLosesNothingAcknowledged) {
  dsms::TraceConfig cfg;
  cfg.seed = 101;
  cfg.num_servers = 32;
  const auto packets = dsms::PacketGenerator(cfg).Generate(6000);
  constexpr std::size_t kBatchSize = 200;
  const std::size_t total_batches = packets.size() / kBatchSize;

  DaemonProcess proc;
  std::string error;
  ASSERT_TRUE(proc.Spawn(dir_, &error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(proc.ingest_port(), &error)) << error;
  ASSERT_TRUE(client.Hello("acme", &error)) << error;
  std::uint64_t query_id = 0;
  ErrCode code = ErrCode::kNone;
  ASSERT_TRUE(client.RegisterQuery("hh", kGsql, /*two_level=*/false,
                                   &query_id, &code, &error))
      << error;

  // Stream batches; SIGKILL the server partway through, mid-stream —
  // the in-flight batch may or may not have been acked, and either is
  // legal. What is not legal is losing one that WAS acked.
  std::uint64_t acked = 0;
  for (std::size_t b = 0; b < total_batches; ++b) {
    if (b == total_batches / 2) proc.Kill();
    IngestReply reply;
    if (!client.Ingest(b, MakeBatch(packets, b * kBatchSize,
                                    (b + 1) * kBatchSize),
                       &reply, &error)) {
      break;  // transport died mid-call: the kill landed
    }
    if (!reply.ok) break;
    acked += 1;
  }
  ASSERT_GE(acked, total_batches / 2) << "kill landed before the midpoint";
  client.Close();

  // Restart on the same data dir. Every acked batch must be there.
  DaemonProcess restarted;
  ASSERT_TRUE(restarted.Spawn(dir_, &error)) << error;
  Client again;
  ASSERT_TRUE(again.Connect(restarted.ingest_port(), &error)) << error;
  WireStats stats;
  ASSERT_TRUE(again.Stats(&stats, &error)) << error;
  ASSERT_GE(stats.batches_acked, acked)
      << "acknowledged batches were lost across SIGKILL";
  ASSERT_LE(stats.batches_acked, total_batches);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.tenants, 1u);

  // Bit-identical answers: one connection sent batches sequentially, so
  // the durable set is exactly the first `stats.batches_acked` batches.
  // A never-crashed reference fed that prefix must produce the same
  // encoded result table.
  dsms::ResultSet recovered;
  ASSERT_TRUE(again.PollResult(query_id, &recovered, &code, &error)) << error;

  std::string compile_error;
  auto plan = dsms::CompiledQuery::Compile(kGsql, &compile_error);
  ASSERT_NE(plan, nullptr) << compile_error;
  auto reference = plan->NewExecution();
  dsms::OverloadPolicy policy;
  TenantSpec defaults;  // fwdecayd ran with default tenant flags
  policy.max_groups = defaults.max_groups;
  policy.decay_alpha = defaults.decay_alpha;
  policy.landmark = defaults.landmark;
  reference->SetOverloadPolicy(policy);
  const std::size_t durable =
      static_cast<std::size_t>(stats.batches_acked) * kBatchSize;
  for (std::size_t i = 0; i < durable; ++i) {
    reference->Consume(packets[i]);
  }
  EXPECT_EQ(EncodeResult(recovered), EncodeResult(reference->Finish()));

  // The recovered daemon is live, not read-only: it keeps ingesting.
  IngestReply reply;
  ASSERT_TRUE(again.Ingest(9999,
                           MakeBatch(packets, 0, kBatchSize), &reply, &error))
      << error;
  EXPECT_TRUE(reply.ok) << reply.message;

  restarted.Kill();
}

TEST_F(ServerCrashTest, RepeatedKillsAndRestartsStayConsistent) {
  // Three kill/restart cycles with more data in between: recovery must
  // compose — each restart replays on top of the last snapshot without
  // double-applying anything (answers track the acked prefix exactly).
  dsms::TraceConfig cfg;
  cfg.seed = 131;
  cfg.num_servers = 16;
  const auto packets = dsms::PacketGenerator(cfg).Generate(3000);
  constexpr std::size_t kBatchSize = 100;

  std::string error;
  std::uint64_t query_id = 0;
  std::size_t next_batch = 0;
  std::uint64_t durable_batches = 0;

  for (int cycle = 0; cycle < 3; ++cycle) {
    DaemonProcess proc;
    ASSERT_TRUE(proc.Spawn(dir_, &error)) << error;
    Client client;
    ASSERT_TRUE(client.Connect(proc.ingest_port(), &error)) << error;
    ASSERT_TRUE(client.Hello("acme", &error)) << error;
    if (cycle == 0) {
      ErrCode code = ErrCode::kNone;
      ASSERT_TRUE(client.RegisterQuery("hh", kGsql, false, &query_id, &code,
                                       &error))
          << error;
    }

    WireStats stats;
    ASSERT_TRUE(client.Stats(&stats, &error)) << error;
    ASSERT_EQ(stats.batches_acked, durable_batches)
        << "cycle " << cycle << " lost or double-applied batches";

    for (std::size_t b = 0; b < 5 && next_batch < 30; ++b, ++next_batch) {
      IngestReply reply;
      ASSERT_TRUE(client.Ingest(next_batch,
                                MakeBatch(packets, next_batch * kBatchSize,
                                          (next_batch + 1) * kBatchSize),
                                &reply, &error))
          << error;
      ASSERT_TRUE(reply.ok) << reply.message;
      durable_batches += 1;
    }
    client.Close();
    proc.Kill();  // no graceful shutdown, no final checkpoint
  }

  // Final verification pass against the never-crashed reference.
  DaemonProcess proc;
  ASSERT_TRUE(proc.Spawn(dir_, &error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect(proc.ingest_port(), &error)) << error;
  WireStats stats;
  ASSERT_TRUE(client.Stats(&stats, &error)) << error;
  EXPECT_EQ(stats.batches_acked, durable_batches);

  dsms::ResultSet recovered;
  ErrCode code = ErrCode::kNone;
  ASSERT_TRUE(client.PollResult(query_id, &recovered, &code, &error))
      << error;
  std::string compile_error;
  auto plan = dsms::CompiledQuery::Compile(kGsql, &compile_error);
  ASSERT_NE(plan, nullptr) << compile_error;
  auto reference = plan->NewExecution();
  dsms::OverloadPolicy policy;
  TenantSpec defaults;
  policy.max_groups = defaults.max_groups;
  policy.decay_alpha = defaults.decay_alpha;
  policy.landmark = defaults.landmark;
  reference->SetOverloadPolicy(policy);
  for (std::size_t i = 0; i < durable_batches * kBatchSize; ++i) {
    reference->Consume(packets[i]);
  }
  EXPECT_EQ(EncodeResult(recovered), EncodeResult(reference->Finish()));
  proc.Kill();
}

TEST_F(ServerCrashTest, SigtermDrainsAndExitsZero) {
  DaemonProcess proc;
  std::string error;
  ASSERT_TRUE(proc.Spawn(dir_, &error)) << error;

  dsms::TraceConfig cfg;
  cfg.seed = 151;
  const auto packets = dsms::PacketGenerator(cfg).Generate(500);

  Client client;
  ASSERT_TRUE(client.Connect(proc.ingest_port(), &error)) << error;
  ASSERT_TRUE(client.Hello("acme", &error)) << error;
  IngestReply reply;
  ASSERT_TRUE(client.Ingest(1, MakeBatch(packets, 0, 500), &reply, &error))
      << error;
  ASSERT_TRUE(reply.ok);
  client.Close();

  EXPECT_TRUE(proc.Terminate()) << "fwdecayd did not exit cleanly on SIGTERM";

  // The clean shutdown checkpoint means restart needs no replay and
  // still holds the batch.
  DaemonProcess restarted;
  ASSERT_TRUE(restarted.Spawn(dir_, &error)) << error;
  Client again;
  ASSERT_TRUE(again.Connect(restarted.ingest_port(), &error)) << error;
  WireStats stats;
  ASSERT_TRUE(again.Stats(&stats, &error)) << error;
  EXPECT_EQ(stats.batches_acked, 1u);
  EXPECT_EQ(stats.tenants, 1u);
  restarted.Kill();
}

}  // namespace
}  // namespace fwdecay::server
