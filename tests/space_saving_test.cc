// Tests for the SpaceSaving sketches: error guarantees, heavy-hitter
// recall, agreement between the weighted and unary variants, merge
// semantics, and weight scaling (used for landmark rescaling).

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/space_saving.h"
#include "util/random.h"
#include "util/zipf.h"

namespace fwdecay {
namespace {

TEST(WeightedSpaceSavingTest, ExactWhenUnderCapacity) {
  WeightedSpaceSaving ss(16);
  ss.Update(1, 5.0);
  ss.Update(2, 3.0);
  ss.Update(1, 2.0);
  EXPECT_DOUBLE_EQ(ss.Estimate(1), 7.0);
  EXPECT_DOUBLE_EQ(ss.Estimate(2), 3.0);
  EXPECT_DOUBLE_EQ(ss.Estimate(99), 0.0);
  EXPECT_DOUBLE_EQ(ss.TotalWeight(), 10.0);
}

TEST(WeightedSpaceSavingTest, EstimateIsUpperBoundWithinError) {
  // Guarantee: true <= estimate <= true + W/k.
  Rng rng(1);
  ZipfGenerator zipf(5000, 1.1);
  const std::size_t k = 100;
  WeightedSpaceSaving ss(k);
  std::map<std::uint64_t, double> truth;
  double total = 0.0;
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t key = zipf.Next(rng);
    const double w = 1.0 + rng.NextDouble() * 4.0;
    ss.Update(key, w);
    truth[key] += w;
    total += w;
  }
  EXPECT_NEAR(ss.TotalWeight(), total, total * 1e-12);
  const double max_err = total / static_cast<double>(k);
  for (const auto& [key, true_w] : truth) {
    const double est = ss.Estimate(key);
    if (est == 0.0) continue;  // untracked key
    EXPECT_GE(est, true_w - 1e-9);
    EXPECT_LE(est, true_w + max_err + 1e-9);
  }
}

TEST(WeightedSpaceSavingTest, QueryRecallAndPrecision) {
  // Theorem 2 contract: every key with weight >= phi*W is reported and
  // no key below (phi - eps)*W is.
  Rng rng(2);
  ZipfGenerator zipf(2000, 1.3);
  const double eps = 0.005;
  const double phi = 0.02;
  WeightedSpaceSaving ss(static_cast<std::size_t>(1.0 / eps));
  std::map<std::uint64_t, double> truth;
  double total = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t key = zipf.Next(rng);
    ss.Update(key, 1.0);
    truth[key] += 1.0;
    total += 1.0;
  }
  std::set<std::uint64_t> reported;
  for (const auto& h : ss.Query(phi)) reported.insert(h.key);
  for (const auto& [key, w] : truth) {
    if (w >= phi * total) {
      EXPECT_TRUE(reported.contains(key)) << "missed heavy key " << key;
    }
  }
  for (std::uint64_t key : reported) {
    EXPECT_GE(truth[key], (phi - eps) * total - 1e-9)
        << "false positive below (phi-eps)W: " << key;
  }
}

TEST(WeightedSpaceSavingTest, QuerySortedDescending) {
  WeightedSpaceSaving ss(8);
  ss.Update(1, 10.0);
  ss.Update(2, 30.0);
  ss.Update(3, 20.0);
  const auto hh = ss.Query(0.0);
  ASSERT_EQ(hh.size(), 3u);
  EXPECT_EQ(hh[0].key, 2u);
  EXPECT_EQ(hh[1].key, 3u);
  EXPECT_EQ(hh[2].key, 1u);
}

TEST(WeightedSpaceSavingTest, ErrorFieldBoundsOverestimate) {
  WeightedSpaceSaving ss(2);
  ss.Update(1, 5.0);
  ss.Update(2, 3.0);
  ss.Update(3, 1.0);  // evicts key 2 (min count 3.0): est 4.0, err 3.0
  const double est = ss.Estimate(3);
  EXPECT_DOUBLE_EQ(est, 4.0);
  for (const auto& h : ss.Query(0.0)) {
    if (h.key == 3) {
      EXPECT_DOUBLE_EQ(h.error, 3.0);
      // estimate - error is a valid lower bound on the true weight (1.0).
      EXPECT_LE(h.estimate - h.error, 1.0 + 1e-12);
    }
  }
}

TEST(WeightedSpaceSavingTest, MergePreservesUpperBoundProperty) {
  Rng rng(3);
  WeightedSpaceSaving a(50);
  WeightedSpaceSaving b(50);
  std::map<std::uint64_t, double> truth;
  ZipfGenerator zipf(500, 1.2);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = zipf.Next(rng);
    (i % 2 == 0 ? a : b).Update(key, 1.0);
    truth[key] += 1.0;
  }
  const double total_before = a.TotalWeight() + b.TotalWeight();
  a.Merge(b);
  EXPECT_NEAR(a.TotalWeight(), total_before, 1e-9);
  for (const auto& [key, w] : truth) {
    const double est = a.Estimate(key);
    if (est > 0.0) {
      EXPECT_GE(est, w - 1e-9);
    }
  }
}

TEST(WeightedSpaceSavingTest, ScaleWeightsScalesEverything) {
  WeightedSpaceSaving ss(4);
  ss.Update(7, 10.0);
  ss.Update(8, 4.0);
  ss.ScaleWeights(0.5);
  EXPECT_DOUBLE_EQ(ss.Estimate(7), 5.0);
  EXPECT_DOUBLE_EQ(ss.Estimate(8), 2.0);
  EXPECT_DOUBLE_EQ(ss.TotalWeight(), 7.0);
}

TEST(WeightedSpaceSavingTest, MemoryBytesGrowsWithCounters) {
  WeightedSpaceSaving ss(100);
  const std::size_t empty = ss.MemoryBytes();
  for (std::uint64_t k = 0; k < 100; ++k) ss.Update(k, 1.0);
  EXPECT_GT(ss.MemoryBytes(), empty);
  // Bounded by capacity regardless of stream length.
  for (std::uint64_t k = 0; k < 10000; ++k) ss.Update(k * 31 + 7, 1.0);
  EXPECT_LE(ss.size(), 100u);
}

TEST(UnarySpaceSavingTest, ExactWhenUnderCapacity) {
  UnarySpaceSaving ss(8);
  for (int i = 0; i < 5; ++i) ss.Update(1);
  for (int i = 0; i < 3; ++i) ss.Update(2);
  EXPECT_EQ(ss.Estimate(1), 5u);
  EXPECT_EQ(ss.Estimate(2), 3u);
  EXPECT_EQ(ss.Estimate(3), 0u);
  EXPECT_EQ(ss.TotalCount(), 8u);
}

TEST(UnarySpaceSavingTest, MatchesWeightedVariantOnUnaryStream) {
  // The two implementations realize the same algorithm; on a unary
  // stream their estimates must agree exactly (same deterministic
  // replacement victim is not guaranteed, but counts of retained heavy
  // keys are).
  Rng rng(4);
  ZipfGenerator zipf(1000, 1.4);
  UnarySpaceSaving unary(64);
  WeightedSpaceSaving weighted(64);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t key = zipf.Next(rng);
    unary.Update(key);
    weighted.Update(key, 1.0);
    ++truth[key];
  }
  EXPECT_EQ(unary.TotalCount(), 50000u);
  // Compare on the clear heavy hitters (top keys far above the error).
  for (std::uint64_t key = 1; key <= 5; ++key) {
    const double err = 50000.0 / 64.0;
    EXPECT_NEAR(static_cast<double>(unary.Estimate(key)),
                static_cast<double>(truth[key]), err);
    EXPECT_NEAR(weighted.Estimate(key), static_cast<double>(truth[key]), err);
  }
}

TEST(UnarySpaceSavingTest, UpperBoundProperty) {
  Rng rng(5);
  ZipfGenerator zipf(3000, 1.1);
  const std::size_t k = 100;
  UnarySpaceSaving ss(k);
  std::map<std::uint64_t, std::uint64_t> truth;
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t key = zipf.Next(rng);
    ss.Update(key);
    ++truth[key];
  }
  for (const auto& [key, c] : truth) {
    const std::uint64_t est = ss.Estimate(key);
    if (est == 0) continue;
    EXPECT_GE(est, c);
    EXPECT_LE(est, c + 100000 / k);
  }
}

TEST(UnarySpaceSavingTest, HeavyHitterRecall) {
  Rng rng(6);
  ZipfGenerator zipf(500, 1.5);
  UnarySpaceSaving ss(50);
  std::map<std::uint64_t, std::uint64_t> truth;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t key = zipf.Next(rng);
    ss.Update(key);
    ++truth[key];
  }
  const double phi = 0.05;
  std::set<std::uint64_t> reported;
  for (const auto& h : ss.Query(phi)) reported.insert(h.key);
  for (const auto& [key, c] : truth) {
    if (static_cast<double>(c) >= phi * n) {
      EXPECT_TRUE(reported.contains(key));
    }
  }
}

TEST(UnarySpaceSavingTest, CapacityOneStillTracksMajority) {
  UnarySpaceSaving ss(1);
  for (int i = 0; i < 100; ++i) ss.Update(42);
  ss.Update(7);
  ss.Update(42);
  EXPECT_GE(ss.Estimate(42), 100u);
}

TEST(UnarySpaceSavingTest, BucketListStaysConsistentUnderChurn) {
  // Heavy replacement traffic exercises bucket create/free paths.
  Rng rng(7);
  UnarySpaceSaving ss(16);
  for (int i = 0; i < 100000; ++i) {
    ss.Update(rng.NextBounded(1000));
  }
  EXPECT_EQ(ss.TotalCount(), 100000u);
  EXPECT_LE(ss.size(), 16u);
  std::uint64_t sum = 0;
  for (const auto& h : ss.Query(0.0)) {
    sum += static_cast<std::uint64_t>(h.estimate);
  }
  // Sum of SpaceSaving counters equals the stream length exactly.
  EXPECT_EQ(sum, 100000u);
}

TEST(SpaceSavingTest, WeightedSumOfCountersEqualsTotalWeight) {
  Rng rng(8);
  WeightedSpaceSaving ss(32);
  double total = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double w = 0.5 + rng.NextDouble();
    ss.Update(rng.NextBounded(400), w);
    total += w;
  }
  double counter_sum = 0.0;
  for (const auto& h : ss.Query(0.0)) counter_sum += h.estimate;
  EXPECT_NEAR(counter_sum, total, total * 1e-9);
}

}  // namespace
}  // namespace fwdecay
