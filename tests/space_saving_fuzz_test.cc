// Differential fuzzer: WeightedSpaceSaving vs. the exact oracle in
// core/exact_reference.
//
// Random op sequences interleave Zipf-skewed weighted updates (split
// across two sketches that are merged mid-sequence), exponential
// landmark rescaling (ScaleWeights), and serialize round-trips. Every
// update is mirrored into an ExactDecayedReference whose WeightFn
// indexes a shadow weight array by the update's ordinal timestamp, so
// ScaleWeights maps to scaling the prefix of that array and the oracle
// answers with genuine decayed semantics.
//
// Checked invariants (the SpaceSaving guarantees, Metwally et al., which
// forward decay inherits unchanged — Section V-C of the paper):
//   1. estimates never undercount:      exact <= Estimate(key)
//   2. overcount is bounded:            Estimate(key) <= exact + W/k
//      (errors add across the merge, still <= combined W/k)
//   3. per-counter error bars hold:     estimate - error <= exact
//   4. recall: every key with exact count >= (phi + 1/k) * W appears in
//      Query(phi)
//   5. serialize -> deserialize preserves every estimate bit-for-bit
// plus a corruption phase: mutated byte streams must be rejected or
// yield a usable sketch — never crash or over-allocate.

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact_reference.h"
#include "sketch/space_saving.h"
#include "util/audit.h"
#include "util/bytes.h"
#include "util/random.h"
#include "util/zipf.h"

namespace fwdecay {
namespace {

// ExactDecayedReference driven through an ordinal-indexed weight array
// (see file comment). Keys live in a small universe so per-key exact
// counts stay cheap to sweep.
class Oracle {
 public:
  void Add(std::uint64_t key, double weight) {
    ref_.Add(static_cast<Timestamp>(weights_.size()), key,
             static_cast<double>(key));
    weights_.push_back(weight);
    keys_.insert(key);
  }

  void ScaleAll(double factor) {
    for (double& w : weights_) w *= factor;
  }

  double KeyCount(std::uint64_t key) const {
    return ref_.KeyCount(Now(), WeightFn(), key);
  }

  double TotalWeight() const { return ref_.Count(Now(), WeightFn()); }

  std::vector<std::pair<std::uint64_t, double>> HeavyHitters(
      double phi) const {
    return ref_.HeavyHitters(Now(), WeightFn(), phi);
  }

  const std::set<std::uint64_t>& keys() const { return keys_; }

 private:
  Timestamp Now() const { return static_cast<Timestamp>(weights_.size()); }

  ExactDecayedReference::WeightFn WeightFn() const {
    return [this](Timestamp ti, Timestamp) {
      return weights_[static_cast<std::size_t>(ti)];
    };
  }

  ExactDecayedReference ref_;
  std::vector<double> weights_;
  std::set<std::uint64_t> keys_;
};

std::vector<std::uint8_t> Serialize(const WeightedSpaceSaving& ss) {
  ByteWriter writer;
  ss.SerializeTo(&writer);
  return writer.bytes();
}

TEST(SpaceSavingDifferentialFuzzTest, AgreesWithExactReference) {
  Rng rng(0x55a41e5);
  int updates_executed = 0;
  for (int seq = 0; seq < 80; ++seq) {
    const std::size_t capacity = 8 + rng.NextBounded(120);
    const std::uint64_t universe = 16 + rng.NextBounded(480);
    ZipfGenerator zipf(universe, 0.8 + rng.NextDouble());
    WeightedSpaceSaving ss(capacity);
    WeightedSpaceSaving side(capacity);
    Oracle oracle;
    bool merged = false;

    const int ops = 150 + static_cast<int>(rng.NextBounded(350));
    for (int op = 0; op < ops; ++op) {
      switch (rng.NextBounded(16)) {
        case 0:  // build up the side sketch, then merge it in
          if (!merged) {
            const int batch = 8 + static_cast<int>(rng.NextBounded(64));
            for (int i = 0; i < batch; ++i) {
              const std::uint64_t key = zipf.Next(rng);
              const double w = 0.1 + rng.NextDouble() * 9.9;
              side.Update(key, w);
              oracle.Add(key, w);
              ++updates_executed;
            }
            ss.Merge(side);
            merged = true;
          }
          break;
        case 1: {  // exponential landmark rescaling on both sketches
          const double factor = 0.25 + rng.NextDouble() * 1.5;
          ss.ScaleWeights(factor);
          if (!merged) side.ScaleWeights(factor);
          oracle.ScaleAll(factor);
          break;
        }
        case 2: {  // serialize round-trip preserves every estimate
          // Named buffer: ByteReader borrows the bytes it is given.
          const std::vector<std::uint8_t> bytes = Serialize(ss);
          ByteReader reader(bytes);
          std::optional<WeightedSpaceSaving> back =
              WeightedSpaceSaving::Deserialize(&reader);
          ASSERT_TRUE(back.has_value());
          ASSERT_DOUBLE_EQ(back->TotalWeight(), ss.TotalWeight());
          for (std::uint64_t key : oracle.keys()) {
            ASSERT_DOUBLE_EQ(back->Estimate(key), ss.Estimate(key));
          }
          ss = *std::move(back);
          break;
        }
        default: {  // Zipf-skewed weighted update
          const std::uint64_t key = zipf.Next(rng);
          const double w = 0.1 + rng.NextDouble() * 9.9;
          ss.Update(key, w);
          oracle.Add(key, w);
          ++updates_executed;
          break;
        }
      }
      // Representation audit after every mutating op (no-op unless the
      // build sets -DFWDECAY_AUDIT=ON; see util/audit.h).
      FWDECAY_AUDIT_INVARIANTS(ss);
      FWDECAY_AUDIT_INVARIANTS(side);
    }
    const double total = oracle.TotalWeight();
    const double slack = 1e-9 * (1.0 + total);
    ASSERT_NEAR(ss.TotalWeight(), total, 1e-6 * (1.0 + total)) << seq;
    // Combined overcount bound: each constituent sketch contributes at
    // most its own W/k of error, so the union obeys total/capacity.
    const double overcount = total / static_cast<double>(capacity) + slack;

    for (std::uint64_t key : oracle.keys()) {
      const double exact = oracle.KeyCount(key);
      const double est = ss.Estimate(key);
      if (est == 0.0) continue;  // untracked key
      ASSERT_GE(est, exact - slack) << "undercount key=" << key
                                    << " seq=" << seq;
      ASSERT_LE(est, exact + overcount)
          << "overcount beyond W/k key=" << key << " seq=" << seq
          << " W=" << total << " k=" << capacity;
    }

    // Error-bar soundness for reported heavy hitters.
    const double phi = 0.01 + rng.NextDouble() * 0.05;
    for (const HeavyHitter& hh : ss.Query(phi)) {
      const double exact = oracle.KeyCount(hh.key);
      ASSERT_LE(hh.estimate - hh.error, exact + slack)
          << "error bar exceeds exact count, key=" << hh.key << " seq=" << seq;
    }

    // Recall: keys whose exact count clears phi*W + W/k must be present.
    std::set<std::uint64_t> reported;
    for (const HeavyHitter& hh : ss.Query(phi)) reported.insert(hh.key);
    for (const auto& [key, exact] : oracle.HeavyHitters(phi)) {
      if (exact >= phi * total + overcount + slack) {
        ASSERT_TRUE(reported.contains(key))
            << "missed guaranteed heavy hitter key=" << key << " exact="
            << exact << " phi*W=" << phi * total << " seq=" << seq;
      }
    }
  }
  EXPECT_GE(updates_executed, 10000);
}

TEST(SpaceSavingDifferentialFuzzTest, CorruptedBytesNeverCrashDeserialize) {
  Rng rng(0xdeadf00d);
  ZipfGenerator zipf(5000, 1.1);
  WeightedSpaceSaving ss(64);
  for (int i = 0; i < 5000; ++i) {
    ss.Update(zipf.Next(rng), 0.5 + rng.NextDouble());
  }
  const std::vector<std::uint8_t> clean = Serialize(ss);
  {
    ByteReader reader(clean);
    ASSERT_TRUE(WeightedSpaceSaving::Deserialize(&reader).has_value());
  }
  int executed = 0;
  for (int trial = 0; trial < 12000; ++trial) {
    std::vector<std::uint8_t> bytes = clean;
    switch (rng.NextBounded(4)) {
      case 0:
        bytes.resize(rng.NextBounded(bytes.size() + 1));
        break;
      case 1:
        for (std::uint64_t i = 0, n = 1 + rng.NextBounded(8); i < n; ++i) {
          bytes[rng.NextBounded(bytes.size())] ^=
              static_cast<std::uint8_t>(1 + rng.NextBounded(255));
        }
        break;
      case 2: {
        const std::uint64_t n = 1 + rng.NextBounded(64);
        for (std::uint64_t i = 0; i < n; ++i) {
          bytes.push_back(static_cast<std::uint8_t>(rng.NextBounded(256)));
        }
        break;
      }
      default:
        bytes.assign(rng.NextBounded(96), 0);
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.NextBounded(256));
        break;
    }
    ByteReader reader(bytes);
    std::optional<WeightedSpaceSaving> got =
        WeightedSpaceSaving::Deserialize(&reader);
    if (got.has_value()) {
      (void)got->Query(0.01);
      (void)got->Estimate(1);
      ASSERT_LE(got->size(), got->capacity());
    }
    ++executed;
  }
  EXPECT_GE(executed, 10000);
}

}  // namespace
}  // namespace fwdecay
