// Fault-injection filesystem tests: every FaultPoint, the one-shot
// disarm semantics, and the "clean old or clean new, never torn"
// invariant of the atomic-write path — directly on FaultFs and through
// trace v2 / CRC framing.

#include "util/fault_fs.h"

#include <cstdio>
#include <string>
#include <vector>

#include "dsms/netgen.h"
#include "dsms/trace_io.h"
#include "gtest/gtest.h"
#include "util/crc32c.h"

namespace fwdecay {
namespace {

using dsms::Packet;
using dsms::PacketGenerator;
using dsms::ReadTrace;
using dsms::TraceConfig;
using dsms::WriteTrace;

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

class FaultFsTest : public testing::Test {
 protected:
  void SetUp() override {
    // Unique per test: ctest runs suites in parallel processes and a
    // shared path would let them stomp each other's files.
    path_ = testing::TempDir() + "/fwdecay_faultfs_" +
            testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
    std::remove(path_.c_str());
    std::remove(FaultFs::TempPathFor(path_).c_str());
    FaultFs::Instance().ClearPlan();
  }
  void TearDown() override {
    FaultFs::Instance().ClearPlan();
    std::remove(path_.c_str());
    std::remove(FaultFs::TempPathFor(path_).c_str());
  }

  std::vector<std::uint8_t> MustRead() {
    std::vector<std::uint8_t> out;
    std::string error;
    EXPECT_TRUE(FaultFs::Instance().ReadFile(path_, &out, &error)) << error;
    return out;
  }

  std::string path_;
};

TEST_F(FaultFsTest, Crc32cKnownAnswer) {
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xe3069283u);
  // Chunked == whole (the internal pre/post inversion is transparent).
  std::uint32_t crc = ExtendCrc32c(0, digits, 4);
  crc = ExtendCrc32c(crc, digits + 4, 5);
  EXPECT_EQ(crc, 0xe3069283u);
  EXPECT_EQ(Crc32c(digits, 0), 0u);
}

TEST_F(FaultFsTest, WriteReadRoundTrip) {
  std::string error;
  const auto payload = Bytes("hello durable world");
  ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(path_, payload, &error))
      << error;
  EXPECT_EQ(MustRead(), payload);
  // No temp residue after a clean write.
  std::vector<std::uint8_t> tmp;
  EXPECT_FALSE(FaultFs::Instance().ReadFile(FaultFs::TempPathFor(path_),
                                            &tmp, &error));
}

TEST_F(FaultFsTest, EveryWriteFaultLeavesOldContentIntact) {
  std::string error;
  const auto old_payload = Bytes("old snapshot");
  const auto new_payload = Bytes("new snapshot, longer than the old one");
  ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(path_, old_payload, &error));

  const FaultPoint points[] = {
      FaultPoint::kOpenForWrite, FaultPoint::kTornWrite,
      FaultPoint::kWriteError, FaultPoint::kFsyncError,
      FaultPoint::kCrashBeforeRename};
  for (FaultPoint point : points) {
    SCOPED_TRACE(static_cast<int>(point));
    ScopedFaultPlan plan(point, /*byte_limit=*/5);
    error.clear();
    EXPECT_FALSE(
        FaultFs::Instance().AtomicWriteFile(path_, new_payload, &error));
    EXPECT_FALSE(error.empty());
    // The visible file is the complete old content — never a mix.
    EXPECT_EQ(MustRead(), old_payload);
  }
}

TEST_F(FaultFsTest, CrashAfterRenameLeavesNewContentDurable) {
  std::string error;
  const auto old_payload = Bytes("old");
  const auto new_payload = Bytes("new content");
  ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(path_, old_payload, &error));
  {
    ScopedFaultPlan plan(FaultPoint::kCrashAfterRename);
    // The writer is told the write failed (it died before learning the
    // outcome) — but the rename happened, so the new file is in place.
    EXPECT_FALSE(
        FaultFs::Instance().AtomicWriteFile(path_, new_payload, &error));
  }
  EXPECT_EQ(MustRead(), new_payload);
}

TEST_F(FaultFsTest, TornWriteLeavesTruncatedTempNotTarget) {
  std::string error;
  const auto payload = Bytes("0123456789abcdef");
  {
    ScopedFaultPlan plan(FaultPoint::kTornWrite, /*byte_limit=*/7);
    EXPECT_FALSE(FaultFs::Instance().AtomicWriteFile(path_, payload, &error));
  }
  // The torn residue is in the temp file, exactly byte_limit bytes.
  std::vector<std::uint8_t> tmp;
  ASSERT_TRUE(FaultFs::Instance().ReadFile(FaultFs::TempPathFor(path_), &tmp,
                                           &error))
      << error;
  EXPECT_EQ(tmp.size(), 7u);
  // The target was never created.
  std::vector<std::uint8_t> target;
  EXPECT_FALSE(FaultFs::Instance().ReadFile(path_, &target, &error));
  // A retry (post-"reboot") succeeds and clears the stale temp.
  FaultFs::Instance().RemoveStaleTemp(FaultFs::TempPathFor(path_));
  ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(path_, payload, &error))
      << error;
  EXPECT_EQ(MustRead(), payload);
}

TEST_F(FaultFsTest, FaultsAreOneShot) {
  std::string error;
  const auto payload = Bytes("payload");
  FaultFs::Instance().SetPlan({FaultPoint::kWriteError, 0});
  EXPECT_FALSE(FaultFs::Instance().AtomicWriteFile(path_, payload, &error));
  // Disarmed after firing: the retry goes through untouched.
  EXPECT_TRUE(FaultFs::Instance().AtomicWriteFile(path_, payload, &error))
      << error;
  EXPECT_EQ(MustRead(), payload);
}

TEST_F(FaultFsTest, ReadFaultsSurface) {
  std::string error;
  const auto payload = Bytes("some stable bytes");
  ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(path_, payload, &error));
  {
    ScopedFaultPlan plan(FaultPoint::kOpenForRead);
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(FaultFs::Instance().ReadFile(path_, &out, &error));
  }
  {
    ScopedFaultPlan plan(FaultPoint::kReadError, /*byte_limit=*/4);
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(FaultFs::Instance().ReadFile(path_, &out, &error));
  }
  {
    // A short read "succeeds" at the I/O layer (as it can on a real
    // kernel); the CRC framing above is what detects the truncation.
    ScopedFaultPlan plan(FaultPoint::kShortRead, /*byte_limit=*/4);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(FaultFs::Instance().ReadFile(path_, &out, &error)) << error;
    EXPECT_EQ(out.size(), 4u);
  }
}

TEST_F(FaultFsTest, ReadRejectsOversizedFiles) {
  std::string error;
  ASSERT_TRUE(
      FaultFs::Instance().AtomicWriteFile(path_, Bytes("0123456789"), &error));
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(
      FaultFs::Instance().ReadFile(path_, &out, &error, /*max_bytes=*/5));
  EXPECT_TRUE(
      FaultFs::Instance().ReadFile(path_, &out, &error, /*max_bytes=*/10));
}

// --- Trace v2 through the fault layer --------------------------------------

class TraceV2FaultTest : public FaultFsTest {};

TEST_F(TraceV2FaultTest, RoundTripAndV1BackCompat) {
  TraceConfig cfg;
  cfg.seed = 11;
  PacketGenerator gen(cfg);
  const auto packets = gen.Generate(500);
  std::string error;
  ASSERT_TRUE(WriteTrace(path_, packets, &error)) << error;

  // The file leads with the v2 magic and ends with a valid CRC.
  const auto bytes = MustRead();
  ASSERT_GE(bytes.size(), 20u);
  EXPECT_EQ(std::string(bytes.begin(), bytes.begin() + 8), "FWDTRC02");

  auto loaded = ReadTrace(path_, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->size(), packets.size());
  EXPECT_DOUBLE_EQ((*loaded)[123].time, packets[123].time);

  // A v1 file (no trailing CRC) still reads.
  std::vector<std::uint8_t> v1(bytes.begin(), bytes.end() - 4);
  v1[7] = '1';
  ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(path_, v1, &error));
  loaded = ReadTrace(path_, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->size(), packets.size());
}

TEST_F(TraceV2FaultTest, BitFlipAnywhereIsDetected) {
  TraceConfig cfg;
  PacketGenerator gen(cfg);
  std::string error;
  ASSERT_TRUE(WriteTrace(path_, gen.Generate(50), &error)) << error;
  const auto good = MustRead();
  // Flip one bit at a spread of offsets (header, records, CRC itself).
  for (std::size_t pos = 8; pos < good.size(); pos += 97) {
    auto bad = good;
    bad[pos] ^= 0x10;
    ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(path_, bad, &error));
    EXPECT_FALSE(ReadTrace(path_, &error).has_value())
        << "undetected corruption at byte " << pos;
  }
}

TEST_F(TraceV2FaultTest, HostileCountRejectedBeforeAllocation) {
  std::string error;
  ASSERT_TRUE(WriteTrace(path_, std::vector<Packet>{}, &error)) << error;
  auto bytes = MustRead();
  // Declare ~2^60 packets in a 20-byte file, with a recomputed CRC so
  // only the count bound can reject it. Must fail fast, not allocate.
  const std::uint64_t huge = std::uint64_t{1} << 60;
  for (int i = 0; i < 8; ++i) {
    bytes[8 + i] = static_cast<std::uint8_t>(huge >> (8 * i));
  }
  const std::uint32_t crc = Crc32c(bytes.data(), bytes.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + i] = static_cast<std::uint8_t>(crc >> (8 * i));
  }
  ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(path_, bytes, &error));
  EXPECT_FALSE(ReadTrace(path_, &error).has_value());
  EXPECT_NE(error.find("declares more packets"), std::string::npos) << error;
}

TEST_F(TraceV2FaultTest, WriteFaultNeverLeavesCorruptTrace) {
  TraceConfig cfg;
  PacketGenerator gen(cfg);
  const auto first = gen.Generate(100);
  const auto second = gen.Generate(200);
  std::string error;
  ASSERT_TRUE(WriteTrace(path_, first, &error)) << error;

  const FaultPoint points[] = {
      FaultPoint::kOpenForWrite, FaultPoint::kTornWrite,
      FaultPoint::kWriteError, FaultPoint::kFsyncError,
      FaultPoint::kCrashBeforeRename, FaultPoint::kCrashAfterRename};
  for (FaultPoint point : points) {
    SCOPED_TRACE(static_cast<int>(point));
    {
      ScopedFaultPlan plan(point, /*byte_limit=*/37);
      EXPECT_FALSE(WriteTrace(path_, second, &error));
    }
    // Whatever survived must parse cleanly as one of the two traces.
    auto loaded = ReadTrace(path_, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_TRUE(loaded->size() == first.size() ||
                loaded->size() == second.size());
    // Re-write a known-good state for the next iteration.
    ASSERT_TRUE(WriteTrace(path_, first, &error)) << error;
  }
}

}  // namespace
}  // namespace fwdecay
