// Differential fuzzer: QDigest vs. the exact oracle in
// core/exact_reference.
//
// Random op sequences (Update / Compress / Merge / ScaleWeights /
// serialize round-trip) are applied to a digest and mirrored into an
// ExactDecayedReference. The oracle stores one item per update with its
// timestamp set to the update's ordinal; the WeightFn indexes a shadow
// weight array by that ordinal, which lets ScaleWeights be mirrored by
// scaling the prefix of the array — so the *decayed* semantics of the
// oracle are exercised, not just a plain multiset.
//
// After each sequence, Rank and Quantile are compared against the oracle
// within the digest's eps*W guarantee (Theorem 3's rank error). A second
// corruption phase mutates serialized bytes and requires Deserialize to
// either reject or produce a structurally sane digest — never crash.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/exact_reference.h"
#include "sketch/qdigest.h"
#include "util/audit.h"
#include "util/bytes.h"
#include "util/random.h"

namespace fwdecay {
namespace {

// Oracle wrapper: ExactDecayedReference driven by an ordinal-indexed
// weight array (see file comment).
class Oracle {
 public:
  void Add(std::uint64_t value, double weight) {
    ref_.Add(static_cast<Timestamp>(weights_.size()), value,
             static_cast<double>(value));
    weights_.push_back(weight);
  }

  void ScaleAll(double factor) {
    for (double& w : weights_) w *= factor;
  }

  double Rank(std::uint64_t v) const {
    return ref_.Rank(Now(), WeightFn(), static_cast<double>(v));
  }

  double TotalWeight() const { return ref_.Count(Now(), WeightFn()); }

  std::size_t Size() const { return ref_.Size(); }

 private:
  Timestamp Now() const { return static_cast<Timestamp>(weights_.size()); }

  ExactDecayedReference::WeightFn WeightFn() const {
    return [this](Timestamp ti, Timestamp) {
      return weights_[static_cast<std::size_t>(ti)];
    };
  }

  ExactDecayedReference ref_;
  std::vector<double> weights_;
};

std::vector<std::uint8_t> Serialize(const QDigest& qd) {
  ByteWriter writer;
  qd.SerializeTo(&writer);
  return writer.bytes();
}

TEST(QDigestDifferentialFuzzTest, AgreesWithExactReference) {
  Rng rng(0xd161e57);
  int updates_executed = 0;
  for (int seq = 0; seq < 120; ++seq) {
    const int universe_bits = 4 + static_cast<int>(rng.NextBounded(9));
    const std::uint64_t universe = std::uint64_t{1} << universe_bits;
    const double eps = 0.02 + rng.NextDouble() * 0.08;
    QDigest qd(universe_bits, eps);
    QDigest side(universe_bits, eps);  // merged in mid-sequence
    Oracle oracle;
    int merges = 0;

    const int ops = 60 + static_cast<int>(rng.NextBounded(200));
    for (int op = 0; op < ops; ++op) {
      switch (rng.NextBounded(12)) {
        case 0:  // batch into the side digest, then merge it in
          if (merges < 2) {
            const int batch = 1 + static_cast<int>(rng.NextBounded(32));
            for (int i = 0; i < batch; ++i) {
              const std::uint64_t v = rng.NextBounded(universe);
              const double w = 0.25 + rng.NextDouble() * 4.0;
              side.Update(v, w);
              oracle.Add(v, w);
              ++updates_executed;
            }
            qd.Merge(side);
            side = QDigest(universe_bits, eps);
            ++merges;
          }
          break;
        case 1: {  // exponential landmark rescaling
          const double factor = 0.5 + rng.NextDouble() * 1.5;
          qd.ScaleWeights(factor);
          oracle.ScaleAll(factor);
          break;
        }
        case 2:
          qd.Compress();
          break;
        case 3: {  // serialize round-trip must be lossless
          const double before = qd.TotalWeight();
          // Named buffer: ByteReader borrows the bytes it is given.
          const std::vector<std::uint8_t> bytes = Serialize(qd);
          ByteReader reader(bytes);
          std::optional<QDigest> back = QDigest::Deserialize(&reader);
          ASSERT_TRUE(back.has_value());
          ASSERT_DOUBLE_EQ(back->TotalWeight(), before);
          qd = *std::move(back);
          break;
        }
        default: {  // plain weighted update (most common op)
          // Mix of uniform values and adversarial edge values (0, max,
          // powers of two) that straddle q-digest bucket boundaries.
          std::uint64_t v = rng.NextBounded(universe);
          if (rng.NextBounded(8) == 0) {
            const std::uint64_t edge[] = {0, universe - 1, universe / 2,
                                          universe / 2 - 1, 1};
            v = edge[rng.NextBounded(5)];
          }
          const double w = 0.25 + rng.NextDouble() * 4.0;
          qd.Update(v, w);
          oracle.Add(v, w);
          ++updates_executed;
          break;
        }
      }
      // Representation audit after every mutating op (no-op unless the
      // build sets -DFWDECAY_AUDIT=ON; see util/audit.h).
      FWDECAY_AUDIT_INVARIANTS(qd);
      FWDECAY_AUDIT_INVARIANTS(side);
    }
    if (oracle.Size() == 0) continue;

    const double total = oracle.TotalWeight();
    ASSERT_NEAR(qd.TotalWeight(), total, 1e-6 * (1.0 + total));
    // Rank error budget: eps*W per constituent digest; merges add their
    // budgets (Section VI-B), plus fp slack.
    const double tol = eps * total * (1.0 + merges) + 1e-6 * (1.0 + total);

    // Rank agreement on a sweep of probe values.
    for (int probe = 0; probe < 16; ++probe) {
      const std::uint64_t v = rng.NextBounded(universe);
      const double exact = oracle.Rank(v);
      const double approx = qd.Rank(v);
      ASSERT_LE(approx, exact + 1e-6 * (1.0 + total))
          << "rank overestimate at v=" << v << " seq=" << seq;
      ASSERT_GE(approx, exact - tol)
          << "rank error beyond eps*W at v=" << v << " seq=" << seq
          << " eps=" << eps << " W=" << total;
    }

    // Quantile agreement: the returned value's exact rank must be within
    // the rank-error budget of the target phi*W.
    for (const double phi : {0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0}) {
      const std::uint64_t q = qd.Quantile(phi);
      const double target = phi * total;
      ASSERT_GE(oracle.Rank(q), target - tol)
          << "quantile(" << phi << ")=" << q << " ranks too low, seq=" << seq;
      if (q > 0) {
        ASSERT_LE(oracle.Rank(q - 1), target + tol)
            << "quantile(" << phi << ")=" << q << " ranks too high, seq="
            << seq;
      }
    }
  }
  EXPECT_GE(updates_executed, 10000);
}

TEST(QDigestDifferentialFuzzTest, CorruptedBytesNeverCrashDeserialize) {
  Rng rng(0xc0221407);
  // Build one representative digest to corrupt.
  QDigest qd(10, 0.05);
  for (int i = 0; i < 2000; ++i) {
    qd.Update(rng.NextBounded(1024), 0.5 + rng.NextDouble());
  }
  const std::vector<std::uint8_t> clean = Serialize(qd);
  {
    ByteReader reader(clean);
    ASSERT_TRUE(QDigest::Deserialize(&reader).has_value());
  }
  int executed = 0;
  for (int trial = 0; trial < 12000; ++trial) {
    std::vector<std::uint8_t> bytes = clean;
    switch (rng.NextBounded(4)) {
      case 0:  // truncate
        bytes.resize(rng.NextBounded(bytes.size() + 1));
        break;
      case 1:  // flip random bytes
        for (std::uint64_t i = 0, n = 1 + rng.NextBounded(8); i < n; ++i) {
          bytes[rng.NextBounded(bytes.size())] ^=
              static_cast<std::uint8_t>(1 + rng.NextBounded(255));
        }
        break;
      case 2: {  // extend with random tail
        const std::uint64_t n = 1 + rng.NextBounded(64);
        for (std::uint64_t i = 0; i < n; ++i) {
          bytes.push_back(static_cast<std::uint8_t>(rng.NextBounded(256)));
        }
        break;
      }
      default: {  // random garbage of random length
        bytes.assign(rng.NextBounded(128), 0);
        for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.NextBounded(256));
        break;
      }
    }
    ByteReader reader(bytes);
    std::optional<QDigest> got = QDigest::Deserialize(&reader);
    if (got.has_value()) {
      // A digest accepted from corrupt bytes must still be structurally
      // usable: queries cannot crash and invariants must hold.
      (void)got->Quantile(0.5);
      (void)got->Rank(0);
      ASSERT_GE(got->NodeCount(), 0u);
    }
    ++executed;
  }
  EXPECT_GE(executed, 10000);
}

}  // namespace
}  // namespace fwdecay
