// Tests for DecayedTopK, DecayedHistogram, and QueryBundle.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/exact_reference.h"
#include "core/histogram.h"
#include "core/topk.h"
#include "dsms/bundle.h"
#include "dsms/netgen.h"
#include "util/random.h"
#include "util/zipf.h"

namespace fwdecay {
namespace {

TEST(DecayedTopKTest, FindsTheTrueTopKeysOnSkewedStreams) {
  Rng rng(1);
  ZipfGenerator zipf(1000, 1.3);
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  DecayedTopK<MonomialG> topk(decay, 5, /*slack=*/200);
  ExactDecayedReference ref;
  for (int i = 0; i < 50000; ++i) {
    const double ts = 1.0 + rng.NextDouble() * 59.0;
    const std::uint64_t key = zipf.Next(rng);
    topk.Add(ts, key);
    ref.Add(ts, key, 0.0);
  }
  const auto w = ForwardWeightFn(MonomialG(2.0), 0.0);
  const auto exact = ref.HeavyHitters(60.0, w, 0.0);
  const auto result = topk.Query(60.0);
  ASSERT_EQ(result.size(), 5u);
  // The Zipf head is unambiguous: top-3 must match exactly and in order.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(result[i].key, exact[i].first) << "rank " << i;
  }
  // Guaranteed entries really are in the exact top-5.
  std::set<std::uint64_t> exact_top5;
  for (int i = 0; i < 5; ++i) exact_top5.insert(exact[i].first);
  for (const auto& e : result) {
    if (e.guaranteed) {
      EXPECT_TRUE(exact_top5.contains(e.key));
    }
  }
  EXPECT_TRUE(result[0].guaranteed);
}

TEST(DecayedTopKTest, DecayShiftsTheRanking) {
  // Key 1 dominates early, key 2 late; undecayed top-1 is key 1, the
  // exponentially decayed top-1 is key 2.
  ForwardDecay<NoDecayG> flat(NoDecayG{}, 0.0);
  ForwardDecay<ExponentialG> exp_decay(ExponentialG(0.5), 0.0);
  DecayedTopK<NoDecayG> undecayed(flat, 1, 50);
  DecayedTopK<ExponentialG> decayed(exp_decay, 1, 50);
  for (int i = 0; i < 700; ++i) {
    undecayed.Add(0.01 * i, 1);
    decayed.Add(0.01 * i, 1);
  }
  for (int i = 0; i < 300; ++i) {
    undecayed.Add(30.0 + 0.01 * i, 2);
    decayed.Add(30.0 + 0.01 * i, 2);
  }
  EXPECT_EQ(undecayed.Query(33.0)[0].key, 1u);
  EXPECT_EQ(decayed.Query(33.0)[0].key, 2u);
}

TEST(DecayedTopKTest, MergeCombinesSites) {
  Rng rng(2);
  ForwardDecay<MonomialG> decay(MonomialG(1.0), 0.0);
  DecayedTopK<MonomialG> a(decay, 3, 100);
  DecayedTopK<MonomialG> b(decay, 3, 100);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t key = rng.NextBounded(20);
    (i % 2 == 0 ? a : b).Add(1.0 + rng.NextDouble() * 9.0, key);
  }
  a.Merge(b);
  EXPECT_EQ(a.Query(10.0).size(), 3u);
}

TEST(DecayedHistogramTest, MassesMatchExactReference) {
  Rng rng(3);
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  DecayedHistogram<MonomialG> hist(decay, 0.0, 100.0, 10);
  ExactDecayedReference ref;
  for (int i = 0; i < 20000; ++i) {
    const double ts = 1.0 + rng.NextDouble() * 49.0;
    const double v = rng.NextDouble() * 100.0;
    hist.Add(ts, v);
    ref.Add(ts, 0, v);
  }
  const auto w = ForwardWeightFn(MonomialG(2.0), 0.0);
  const double t = 50.0;
  EXPECT_NEAR(hist.TotalMass(t), ref.Count(t, w), 1e-6);
  // Bin [20, 30): exact decayed count of values in that range.
  double exact_bin = 0.0;
  exact_bin = ref.Rank(t, w, 30.0 - 1e-12) - ref.Rank(t, w, 20.0 - 1e-12);
  EXPECT_NEAR(hist.BinMass(t, 2), exact_bin, 1e-6);
}

TEST(DecayedHistogramTest, QuantileInterpolation) {
  ForwardDecay<NoDecayG> flat(NoDecayG{}, 0.0);
  DecayedHistogram<NoDecayG> hist(flat, 0.0, 100.0, 100);
  Rng rng(4);
  for (int i = 0; i < 100000; ++i) {
    hist.Add(1.0, rng.NextDouble() * 100.0);
  }
  EXPECT_NEAR(hist.Quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(hist.Quantile(0.9), 90.0, 2.0);
}

TEST(DecayedHistogramTest, ClampingTracksUnderOverflow) {
  ForwardDecay<NoDecayG> flat(NoDecayG{}, 0.0);
  DecayedHistogram<NoDecayG> hist(flat, 10.0, 20.0, 5);
  hist.Add(1.0, 5.0);    // underflow
  hist.Add(1.0, 25.0);   // overflow
  hist.Add(1.0, 15.0);   // bin 2
  EXPECT_DOUBLE_EQ(hist.UnderflowMass(1.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.OverflowMass(1.0), 1.0);
  EXPECT_DOUBLE_EQ(hist.BinMass(1.0, 2), 1.0);
  EXPECT_DOUBLE_EQ(hist.TotalMass(1.0), 3.0);
}

TEST(DecayedHistogramTest, MergeAndRescale) {
  ForwardDecay<ExponentialG> decay(ExponentialG(0.2), 0.0);
  DecayedHistogram<ExponentialG> a(decay, 0.0, 10.0, 4);
  DecayedHistogram<ExponentialG> b(decay, 0.0, 10.0, 4);
  a.Add(1.0, 2.0);
  b.Add(2.0, 7.0);
  a.Merge(b);
  const double before_bin0 = a.BinMass(5.0, 0);
  const double before_bin2 = a.BinMass(5.0, 2);
  a.RescaleLandmark(3.0);
  EXPECT_NEAR(a.BinMass(5.0, 0), before_bin0, 1e-12);
  EXPECT_NEAR(a.BinMass(5.0, 2), before_bin2, 1e-12);
}

TEST(QueryBundleTest, SharedScanMatchesIndividualRuns) {
  dsms::TraceConfig cfg;
  cfg.rate_pps = 5000.0;
  cfg.seed = 7;
  dsms::PacketGenerator gen(cfg);
  const auto packets = gen.Generate(20000);

  const char* queries[] = {
      "select destPort, count(*) from TCP group by destPort",
      "select tb, sum(len) from PKT group by time/1 as tb",
      "select protocol, avg(len) from PKT group by protocol",
  };
  std::string error;
  dsms::QueryBundle bundle;
  for (const char* q : queries) {
    ASSERT_GE(bundle.Add(q, &error), 0) << error;
  }
  for (const auto& p : packets) bundle.Consume(p);
  const auto bundled = bundle.FinishAll();

  for (int i = 0; i < 3; ++i) {
    auto plan = dsms::CompiledQuery::Compile(queries[i], &error);
    ASSERT_NE(plan, nullptr);
    auto exec = plan->NewExecution();
    for (const auto& p : packets) exec->Consume(p);
    const auto solo = exec->Finish();
    ASSERT_EQ(bundled[static_cast<std::size_t>(i)].rows.size(),
              solo.rows.size())
        << queries[i];
  }
}

TEST(QueryBundleTest, FinishRestartsExecution) {
  std::string error;
  dsms::QueryBundle bundle;
  ASSERT_GE(bundle.Add("select destPort, count(*) from TCP group by destPort",
                       &error),
            0);
  dsms::Packet p;
  p.time = 1.0;
  p.dest_port = 80;
  p.protocol = dsms::kProtoTcp;
  bundle.Consume(p);
  EXPECT_EQ(bundle.Finish(0).rows.size(), 1u);
  // After Finish the execution restarts empty.
  EXPECT_TRUE(bundle.Finish(0).rows.empty());
  bundle.Consume(p);
  EXPECT_EQ(bundle.Finish(0).rows.size(), 1u);
}

}  // namespace
}  // namespace fwdecay
