// End-to-end integration tests: synthetic trace -> tumbling windows ->
// forward-decayed GSQL queries, validated against the exact reference;
// plus the Section VI-A/B scenarios (landmark rescaling over long
// exponential streams, out-of-order end-to-end, historical queries).

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/exact_reference.h"
#include "core/heavy_hitters.h"
#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "dsms/tumbling.h"
#include "util/random.h"

namespace fwdecay {
namespace {

using dsms::Packet;

TEST(IntegrationTest, GsqlDecayedSumMatchesExactReferencePerBucket) {
  // The paper's quadratic-decay query, bucket by bucket, against the
  // brute-force Definition 5 computed with L = bucket start and t =
  // bucket end.
  dsms::TraceConfig cfg;
  cfg.rate_pps = 2000.0;
  cfg.num_servers = 50;
  cfg.tcp_fraction = 1.0;
  cfg.seed = 17;
  dsms::PacketGenerator gen(cfg);
  const auto packets = gen.Generate(2000 * 150);  // 2.5 minutes

  std::string error;
  auto plan = dsms::CompiledQuery::Compile(
      "select tb, sum(len*(time % 60)*(time % 60))/3600.0 from TCP "
      "group by time/60 as tb",
      &error);
  ASSERT_NE(plan, nullptr) << error;

  std::map<std::int64_t, double> gsql_sums;
  dsms::TumblingRunner runner(plan.get(), 60.0,
                              [&](std::int64_t bucket, dsms::ResultSet rs) {
                                ASSERT_EQ(rs.rows.size(), 1u);
                                gsql_sums[bucket] = rs.rows[0][1].AsDouble();
                              });
  std::map<std::int64_t, ExactDecayedReference> refs;
  for (const Packet& p : packets) {
    runner.Consume(p);
    const auto bucket = static_cast<std::int64_t>(p.time / 60.0);
    // GSQL truncates time to whole seconds; mirror that in the
    // reference so the two compute the same weights.
    refs[bucket].Add(std::floor(p.time), 0, p.len);
  }
  runner.Flush();

  for (auto& [bucket, ref] : refs) {
    const double l = static_cast<double>(bucket) * 60.0;
    const auto w = ForwardWeightFn(MonomialG(2.0), l);
    // Query evaluated at the bucket end (normalizer 60^2 = 3600).
    const double exact = ref.Sum(l + 60.0, w);
    ASSERT_TRUE(gsql_sums.contains(bucket));
    EXPECT_NEAR(gsql_sums[bucket], exact, 1e-6 * std::max(1.0, exact))
        << "bucket " << bucket;
  }
}

TEST(IntegrationTest, OutOfOrderTraceGivesSameDecayedAnswers) {
  // Same trace content, jittered delivery: every forward-decayed result
  // must be identical up to summation order (Section VI-B).
  dsms::TraceConfig ordered_cfg;
  ordered_cfg.rate_pps = 5000.0;
  ordered_cfg.seed = 23;
  dsms::TraceConfig jitter_cfg = ordered_cfg;
  jitter_cfg.reorder_jitter = 1.5;

  dsms::PacketGenerator ordered_gen(ordered_cfg);
  dsms::PacketGenerator jitter_gen(jitter_cfg);
  auto ordered = ordered_gen.Generate(100000);
  auto jittered = jitter_gen.Generate(100000);
  // The jittered generator's reorder buffer retains a different tail of
  // packets at cut-off, so compare only the prefix both traces fully
  // contain (everything well before the last delivery).
  const double cutoff = 18.0;
  auto truncate = [&](std::vector<Packet>& v) {
    std::erase_if(v, [&](const Packet& p) { return p.time >= cutoff; });
  };
  truncate(ordered);
  truncate(jittered);

  // Same packets (same seed), different delivery order — verify via
  // total length.
  double sum_a = 0.0;
  double sum_b = 0.0;
  for (const auto& p : ordered) sum_a += p.len;
  for (const auto& p : jittered) sum_b += p.len;
  ASSERT_DOUBLE_EQ(sum_a, sum_b);

  const ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  DecayedMoments<MonomialG> m1(decay);
  DecayedMoments<MonomialG> m2(decay);
  DecayedHeavyHitters<MonomialG> hh1(decay, 0.01);
  DecayedHeavyHitters<MonomialG> hh2(decay, 0.01);
  for (const auto& p : ordered) {
    m1.Add(p.time, p.len);
    hh1.Add(p.time, dsms::DestKey(p));
  }
  for (const auto& p : jittered) {
    m2.Add(p.time, p.len);
    hh2.Add(p.time, dsms::DestKey(p));
  }
  const double t = 30.0;
  EXPECT_NEAR(m1.Sum(t), m2.Sum(t), 1e-9 * m1.Sum(t));
  EXPECT_NEAR(hh1.DecayedTotal(t), hh2.DecayedTotal(t),
              1e-9 * hh1.DecayedTotal(t));
  // Top heavy hitter must agree (its count is far above the SS error).
  const auto top1 = hh1.Query(t, 0.02);
  const auto top2 = hh2.Query(t, 0.02);
  ASSERT_FALSE(top1.empty());
  ASSERT_FALSE(top2.empty());
  EXPECT_EQ(top1[0].key, top2[0].key);
}

TEST(IntegrationTest, HistoricalQueriesAndFutureTimestamps) {
  // Section VI-B: "if we allow items whose time stamps are in the future
  // relative to the query time t, then one can pose historical queries".
  // Weights may exceed 1 for such items; the algebra still holds.
  const ForwardDecay<MonomialG> decay(MonomialG(2.0), 100.0);
  DecayedMoments<MonomialG> m(decay);
  m.Add(105.0, 10.0);
  m.Add(108.0, 10.0);
  // Historical query at t = 106: item at 108 is "in the future".
  const double w105 = 25.0 / 36.0;
  const double w108 = 64.0 / 36.0;  // > 1, as documented
  EXPECT_GT(decay.Weight(108.0, 106.0), 1.0);
  EXPECT_NEAR(m.Count(106.0), w105 + w108, 1e-12);
  EXPECT_NEAR(m.Sum(106.0), 10.0 * (w105 + w108), 1e-12);
}

TEST(IntegrationTest, LongExponentialStreamWithPeriodicRescaling) {
  // Section VI-A end to end: exponential decay over a stream whose span
  // (5000 s at alpha = 0.1) would overflow static weights by ~e^500.
  // Rescale the landmark whenever the raw magnitudes grow large; final
  // answers must match a sketch built directly with the final landmark.
  const double alpha = 0.1;
  Rng rng(29);
  ForwardDecay<ExponentialG> decay(ExponentialG(alpha), 0.0);
  DecayedMoments<ExponentialG> m(decay);
  DecayedHeavyHitters<ExponentialG> hh(decay, 0.01);

  std::vector<std::pair<double, std::uint64_t>> tail;  // recent items
  double t = 0.0;
  for (int i = 0; i < 500000; ++i) {
    t += 0.01;
    const std::uint64_t key = rng.NextBounded(100);
    m.Add(t, 1.0);
    hh.Add(t, key);
    if (t > 4950.0) tail.emplace_back(t, key);
    if (m.decay().StaticWeight(t) > 1e100) {
      m.RescaleLandmark(t);
      hh.RescaleLandmark(t);
    }
  }
  ASSERT_TRUE(std::isfinite(m.Count(t)));
  // Continuous-limit decayed count: arrivals at rate 100/s with
  // exp(-alpha * age) weights -> 100/alpha = 1000.
  EXPECT_NEAR(m.Count(t), 1000.0, 5.0);

  // Rebuild HH over only the recent tail with the final landmark: old
  // items contribute < e^-5 relative weight, so the totals must agree.
  ForwardDecay<ExponentialG> fresh_decay(ExponentialG(alpha),
                                         hh.decay().landmark());
  DecayedHeavyHitters<ExponentialG> fresh(fresh_decay, 0.01);
  for (const auto& [ts, key] : tail) fresh.Add(ts, key);
  EXPECT_NEAR(hh.DecayedTotal(t), fresh.DecayedTotal(t),
              0.02 * hh.DecayedTotal(t));
}

TEST(IntegrationTest, LandmarkWindowQueryViaEngine) {
  // Landmark windows (Section III-C) are forward decay with g = 1{n>0}:
  // in GSQL this is just undecayed aggregation since the window opened —
  // verify the equivalence explicitly.
  const ForwardDecay<LandmarkWindowG> decay(LandmarkWindowG{}, 0.0);
  DecayedCount<LandmarkWindowG> count(decay);
  for (double ts : {1.0, 2.0, 3.0, 4.0}) count.Add(ts);
  EXPECT_DOUBLE_EQ(count.Value(100.0), 4.0);   // never decays
  EXPECT_DOUBLE_EQ(count.Value(1000.0), 4.0);  // until the window closes
}

}  // namespace
}  // namespace fwdecay
