// Tests for the samplers of Section V: correctness of inclusion
// probabilities (chi-squared / frequency checks), the with-replacement
// chain sampler (Theorem 5), weighted reservoir A-Res and A-ExpJ
// (Theorem 6), priority sampling estimators, exponential-decay sampling
// with arbitrary timestamps (Corollary 1), and the Aggarwal baseline.

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/forward_decay.h"
#include "sampling/biased_reservoir.h"
#include "sampling/priority_sampling.h"
#include "sampling/reservoir.h"
#include "sampling/weighted_reservoir.h"
#include "sampling/with_replacement.h"
#include "util/random.h"
#include "util/stats.h"

namespace fwdecay {
namespace {

TEST(ReservoirSamplerTest, SampleSizeIsMinOfKAndN) {
  Rng rng(1);
  ReservoirSampler<int> small(10);
  for (int i = 0; i < 5; ++i) small.Add(i, rng);
  EXPECT_EQ(small.sample().size(), 5u);
  ReservoirSampler<int> full(10);
  for (int i = 0; i < 100; ++i) full.Add(i, rng);
  EXPECT_EQ(full.sample().size(), 10u);
}

TEST(ReservoirSamplerTest, UniformInclusionProbabilities) {
  // Each of 20 items should appear in a k=5 sample with p = 1/4.
  const int kTrials = 20000;
  std::vector<double> inclusions(20, 0.0);
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(1000 + trial);
    ReservoirSampler<int> s(5);
    for (int i = 0; i < 20; ++i) s.Add(i, rng);
    for (int v : s.sample()) ++inclusions[v];
  }
  const std::vector<double> expected(20, kTrials * 0.25);
  // 19 dof at 99.9%: ~43.8; inclusion counts are dependent across items,
  // so use a loose per-item check instead.
  for (int i = 0; i < 20; ++i) {
    EXPECT_NEAR(inclusions[i] / kTrials, 0.25, 0.02) << "item " << i;
  }
}

TEST(SkipReservoirSamplerTest, MatchesAlgorithmRDistribution) {
  const int kTrials = 20000;
  std::vector<double> inclusions(30, 0.0);
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(77 + trial);
    SkipReservoirSampler<int> s(6, &rng);
    for (int i = 0; i < 30; ++i) s.Add(i);
    for (int v : s.sample()) ++inclusions[v];
  }
  for (int i = 0; i < 30; ++i) {
    EXPECT_NEAR(inclusions[i] / kTrials, 0.2, 0.02) << "item " << i;
  }
}

TEST(ForwardDecaySamplerWRTest, SingleChainMatchesTargetProbabilities) {
  // Theorem 5: P(item i sampled) = g(ti - L) / Σ g(tj - L).
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 100.0);
  const std::pair<double, int> stream[] = {
      {105, 0}, {107, 1}, {103, 2}, {108, 3}, {104, 4}};
  // Static weights: 25, 49, 9, 64, 16 → total 163.
  const double expected[] = {25.0 / 163, 49.0 / 163, 9.0 / 163, 64.0 / 163,
                             16.0 / 163};
  const int kTrials = 50000;
  std::vector<double> counts(5, 0.0);
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(5000 + trial);
    ForwardDecaySamplerWR<int, MonomialG> sampler(decay, 1);
    for (const auto& [ts, id] : stream) sampler.Add(ts, id, rng);
    const auto sample = sampler.Sample();
    ASSERT_EQ(sample.size(), 1u);
    ++counts[static_cast<std::size_t>(sample[0])];
  }
  std::vector<double> expected_counts;
  for (double p : expected) expected_counts.push_back(p * kTrials);
  // Chi-squared, 4 dof, 99.9th percentile ~ 18.5.
  EXPECT_LT(ChiSquaredStatistic(counts, expected_counts), 18.5);
}

TEST(ForwardDecaySamplerWRTest, ChainsAreIndependentDraws) {
  ForwardDecay<MonomialG> decay(MonomialG(1.0), 0.0);
  Rng rng(9);
  ForwardDecaySamplerWR<int, MonomialG> sampler(decay, 64);
  for (int i = 0; i < 1000; ++i) {
    sampler.Add(1.0 + i, i, rng);
  }
  const auto sample = sampler.Sample();
  EXPECT_EQ(sample.size(), 64u);
  // With replacement: duplicates are possible but heavy repetition of a
  // single item is not (weights are gently increasing).
  std::map<int, int> freq;
  for (int v : sample) ++freq[v];
  for (const auto& [v, c] : freq) EXPECT_LE(c, 10);
}

TEST(ForwardDecaySamplerWRTest, ZeroWeightItemsNeverSampled) {
  ForwardDecay<LandmarkWindowG> decay(LandmarkWindowG{}, 100.0);
  Rng rng(10);
  ForwardDecaySamplerWR<int, LandmarkWindowG> sampler(decay, 8);
  sampler.Add(100.0, 666, rng);  // weight 0 (at the landmark)
  sampler.Add(105.0, 1, rng);
  for (int v : sampler.Sample()) EXPECT_NE(v, 666);
}

TEST(WeightedReservoirSamplerTest, WithoutReplacementNoDuplicates) {
  ForwardDecay<ExponentialG> decay(ExponentialG(0.1), 0.0);
  Rng rng(11);
  WeightedReservoirSampler<int, ExponentialG> sampler(decay, 16);
  for (int i = 0; i < 500; ++i) sampler.Add(0.1 * i, i, rng);
  const auto sample = sampler.Sample();
  EXPECT_EQ(sample.size(), 16u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 16u);
}

TEST(WeightedReservoirSamplerTest, FirstDrawFollowsWeights) {
  // For k=1, A-Res reduces to a single weighted draw.
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 100.0);
  const std::pair<double, int> stream[] = {
      {105, 0}, {107, 1}, {103, 2}, {108, 3}, {104, 4}};
  const double weights[] = {25, 49, 9, 64, 16};
  const int kTrials = 50000;
  std::vector<double> counts(5, 0.0);
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(31000 + trial);
    WeightedReservoirSampler<int, MonomialG> sampler(decay, 1);
    for (const auto& [ts, id] : stream) sampler.Add(ts, id, rng);
    ++counts[static_cast<std::size_t>(sampler.Sample()[0])];
  }
  std::vector<double> expected;
  for (double w : weights) expected.push_back(w / 163.0 * kTrials);
  EXPECT_LT(ChiSquaredStatistic(counts, expected), 18.5);
}

TEST(ExpJumpsSamplerTest, MatchesAResDistribution) {
  // A-ExpJ is distribution-identical to A-Res; compare k=1 frequencies.
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 100.0);
  const std::pair<double, int> stream[] = {
      {105, 0}, {107, 1}, {103, 2}, {108, 3}, {104, 4}};
  const double weights[] = {25, 49, 9, 64, 16};
  const int kTrials = 50000;
  std::vector<double> counts(5, 0.0);
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(61000 + trial);
    ExpJumpsReservoirSampler<int, MonomialG> sampler(decay, 1);
    for (const auto& [ts, id] : stream) sampler.Add(ts, id, rng);
    ++counts[static_cast<std::size_t>(sampler.Sample()[0])];
  }
  std::vector<double> expected;
  for (double w : weights) expected.push_back(w / 163.0 * kTrials);
  EXPECT_LT(ChiSquaredStatistic(counts, expected), 18.5);
}

TEST(ExpJumpsSamplerTest, NoDuplicatesAndFullSize) {
  ForwardDecay<MonomialG> decay(MonomialG(1.0), 0.0);
  Rng rng(12);
  ExpJumpsReservoirSampler<int, MonomialG> sampler(decay, 32);
  for (int i = 0; i < 2000; ++i) sampler.Add(1.0 + 0.05 * i, i, rng);
  const auto sample = sampler.Sample();
  EXPECT_EQ(sample.size(), 32u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 32u);
}

TEST(Corollary1Test, ExponentialDecaySamplingWithArbitraryTimestamps) {
  // Corollary 1: O(k) sampling under backward exponential decay, for
  // arbitrary (non-integer, out-of-order) timestamps — via the forward
  // view. Check the k=1 marginal matches exp(alpha * ti) weights.
  const double alpha = 0.35;
  ForwardDecay<ExponentialG> decay(ExponentialG(alpha), 0.0);
  const double stamps[] = {2.7, 9.1, 4.4, 6.35, 8.8};  // out of order
  double weights[5];
  double total = 0.0;
  for (int i = 0; i < 5; ++i) {
    weights[i] = std::exp(alpha * stamps[i]);
    total += weights[i];
  }
  const int kTrials = 50000;
  std::vector<double> counts(5, 0.0);
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(91000 + trial);
    WeightedReservoirSampler<int, ExponentialG> sampler(decay, 1);
    for (int i = 0; i < 5; ++i) sampler.Add(stamps[i], i, rng);
    ++counts[static_cast<std::size_t>(sampler.Sample()[0])];
  }
  std::vector<double> expected;
  for (double w : weights) expected.push_back(w / total * kTrials);
  EXPECT_LT(ChiSquaredStatistic(counts, expected), 18.5);
}

TEST(WeightedReservoirSamplerTest, LogDomainSurvivesHugeExponents) {
  // Static weights up to e^5000 overflow doubles; the sampler must still
  // produce a full, recent-biased sample.
  ForwardDecay<ExponentialG> decay(ExponentialG(1.0), 0.0);
  Rng rng(13);
  WeightedReservoirSampler<int, ExponentialG> sampler(decay, 8);
  for (int i = 0; i < 5000; ++i) sampler.Add(static_cast<double>(i), i, rng);
  const auto sample = sampler.Sample();
  EXPECT_EQ(sample.size(), 8u);
  // With rate 1/step the newest handful of items carry essentially all
  // the weight.
  for (int v : sample) EXPECT_GT(v, 4980);
}

TEST(PrioritySamplerTest, SubsetSumEstimatorIsUnbiased) {
  // Estimate the decayed count of the first half of the stream and
  // compare with the exact value across trials.
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  const int n = 200;
  double exact_subset = 0.0;
  for (int i = 0; i < n / 2; ++i) {
    exact_subset += decay.StaticWeight(1.0 + i);
  }
  const double norm = decay.Normalizer(1.0 + n);
  RunningStats est_stats;
  for (int trial = 0; trial < 3000; ++trial) {
    Rng rng(41000 + trial);
    PrioritySampler<int, MonomialG> sampler(decay, 32);
    for (int i = 0; i < n; ++i) sampler.Add(1.0 + i, i, rng);
    est_stats.Add(sampler.EstimateDecayedSubsetSum(
        1.0 + n, [&](const int& v) { return v < n / 2; }));
  }
  const double exact = exact_subset / norm;
  EXPECT_NEAR(est_stats.mean(), exact,
              5.0 * est_stats.stddev() / std::sqrt(3000.0));
}

TEST(PrioritySamplerTest, FullCountEstimateTracksDecayedCount) {
  ForwardDecay<ExponentialG> decay(ExponentialG(0.05), 0.0);
  double exact_raw = 0.0;
  RunningStats est_stats;
  const int n = 500;
  for (int i = 0; i < n; ++i) exact_raw += decay.StaticWeight(0.1 * i);
  const double exact = exact_raw / decay.Normalizer(0.1 * n);
  for (int trial = 0; trial < 2000; ++trial) {
    Rng rng(51000 + trial);
    PrioritySampler<int, ExponentialG> sampler(decay, 48);
    for (int i = 0; i < n; ++i) sampler.Add(0.1 * i, i, rng);
    est_stats.Add(sampler.EstimateDecayedCount(0.1 * n));
  }
  EXPECT_NEAR(est_stats.mean(), exact,
              5.0 * est_stats.stddev() / std::sqrt(2000.0));
}

TEST(PrioritySamplerTest, SampleExcludesThreshold) {
  ForwardDecay<MonomialG> decay(MonomialG(1.0), 0.0);
  Rng rng(14);
  PrioritySampler<int, MonomialG> sampler(decay, 10);
  for (int i = 0; i < 100; ++i) sampler.Add(1.0 + i, i, rng);
  EXPECT_EQ(sampler.Sample().size(), 10u);
  EXPECT_EQ(sampler.sample_size(), 10u);
}

TEST(BiasedReservoirTest, CapacityNeverExceeded) {
  Rng rng(15);
  BiasedReservoirSampler<int> sampler(50);
  for (int i = 0; i < 10000; ++i) sampler.Add(i, rng);
  EXPECT_LE(sampler.sample().size(), 50u);
  EXPECT_DOUBLE_EQ(sampler.lambda(), 0.02);
}

TEST(BiasedReservoirTest, RecencyBiasIsExponentialInIndex) {
  // Aggarwal's method realizes inclusion p(r) ~ exp(-r/k) in the item's
  // age-in-arrivals r. Check recent items are far more likely sampled
  // than items ~3k arrivals old.
  const std::size_t k = 100;
  const int n = 2000;
  double recent = 0.0;
  double old = 0.0;
  const int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(71000 + trial);
    BiasedReservoirSampler<int> sampler(k);
    for (int i = 0; i < n; ++i) sampler.Add(i, rng);
    for (int v : sampler.sample()) {
      if (v >= n - 100) ++recent;
      if (v < n - 3 * static_cast<int>(k)) ++old;
    }
  }
  EXPECT_GT(recent, old * 5.0);
}

TEST(SamplersTest, OutOfOrderGivesSameMarginalsAsInOrder) {
  // The forward-decay samplers depend only on (ti, item) pairs, not on
  // their order: compare k=1 frequencies of in-order vs reversed feeds.
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  const double stamps[] = {1.0, 2.0, 3.0, 4.0, 5.0};
  const int kTrials = 30000;
  std::vector<double> fwd_counts(5, 0.0);
  std::vector<double> rev_counts(5, 0.0);
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng1(81000 + trial);
    Rng rng2(91000 + trial);
    WeightedReservoirSampler<int, MonomialG> s1(decay, 1);
    WeightedReservoirSampler<int, MonomialG> s2(decay, 1);
    for (int i = 0; i < 5; ++i) s1.Add(stamps[i], i, rng1);
    for (int i = 4; i >= 0; --i) s2.Add(stamps[i], i, rng2);
    ++fwd_counts[static_cast<std::size_t>(s1.Sample()[0])];
    ++rev_counts[static_cast<std::size_t>(s2.Sample()[0])];
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(fwd_counts[i] / kTrials, rev_counts[i] / kTrials, 0.02);
  }
}

}  // namespace
}  // namespace fwdecay
