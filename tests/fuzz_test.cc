// Randomized robustness and differential tests:
//  - the GSQL lexer/parser never crashes on mutated query strings and
//    either parses or reports a diagnostic;
//  - parse -> ToString -> parse is a fixpoint (canonical text is stable);
//  - the engine's one-level and two-level modes agree on randomized
//    queries over randomized traces;
//  - q-digest and t-digest agree (within their accuracies) as weighted
//    quantile backends on identical weighted streams.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "dsms/parser.h"
#include "sketch/qdigest.h"
#include "sketch/tdigest.h"
#include "util/random.h"

namespace fwdecay {
namespace {

using dsms::CompiledQuery;
using dsms::PacketGenerator;
using dsms::ParseQuery;
using dsms::TraceConfig;

const char* const kSeedQueries[] = {
    "select tb, destIP, destPort, count(*) from TCP "
    "group by time/60 as tb, destIP, destPort",
    "select tb, sum(len*(time % 60)*(time % 60))/3600.0 from TCP "
    "group by time/60 as tb",
    "select destPort, min(len), max(len), avg(len) from UDP "
    "where len > 100 group by destPort having count(*) >= 2 "
    "order by 2 desc limit 5",
    "select tb, destPort, sum(len) as bytes from PKT "
    "where protocol = 6 and (destPort = 80 or destPort = 443) "
    "group by time/10 as tb, destPort order by bytes desc",
};

TEST(ParserFuzzTest, MutatedQueriesNeverCrash) {
  Rng rng(1);
  const std::string charset =
      "abcdefghijklmnopqrstuvwxyz0123456789()*,/%+-<>=. '";
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string q = kSeedQueries[trial % 4];
    // Apply 1-8 random mutations: replace, insert, or delete a byte.
    const int mutations = 1 + static_cast<int>(rng.NextBounded(8));
    for (int m = 0; m < mutations && !q.empty(); ++m) {
      const std::size_t pos = rng.NextBounded(q.size());
      switch (rng.NextBounded(3)) {
        case 0:
          q[pos] = charset[rng.NextBounded(charset.size())];
          break;
        case 1:
          q.insert(q.begin() + static_cast<std::ptrdiff_t>(pos),
                   charset[rng.NextBounded(charset.size())]);
          break;
        default:
          q.erase(q.begin() + static_cast<std::ptrdiff_t>(pos));
          break;
      }
    }
    const auto result = ParseQuery(q);
    if (result.ok()) {
      ++parsed_ok;
    } else {
      EXPECT_FALSE(result.error.empty()) << q;
    }
  }
  // Sanity: some mutations must survive parsing, some must not.
  EXPECT_GT(parsed_ok, 50);
  EXPECT_LT(parsed_ok, 2950);
}

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(2);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string q;
    const std::size_t len = rng.NextBounded(120);
    for (std::size_t i = 0; i < len; ++i) {
      q.push_back(static_cast<char>(32 + rng.NextBounded(95)));
    }
    (void)ParseQuery(q);  // must not crash or hang
  }
}

TEST(ParserFuzzTest, ToStringRoundTripIsFixpoint) {
  for (const char* seed : kSeedQueries) {
    const auto first = ParseQuery(seed);
    ASSERT_TRUE(first.ok()) << seed;
    // Rebuild query text from the parsed structure's expressions.
    auto render = [](const dsms::Query& q) {
      std::string out = "select ";
      for (std::size_t i = 0; i < q.select.size(); ++i) {
        if (i > 0) out += ", ";
        out += q.select[i].expr->ToString();
      }
      out += " from " + q.from;
      if (q.where != nullptr) out += " where " + q.where->ToString();
      if (!q.group_by.empty()) {
        out += " group by ";
        for (std::size_t i = 0; i < q.group_by.size(); ++i) {
          if (i > 0) out += ", ";
          out += q.group_by[i].expr->ToString();
        }
      }
      return out;
    };
    const std::string text1 = render(*first.query);
    const auto second = ParseQuery(text1);
    ASSERT_TRUE(second.ok()) << text1;
    EXPECT_EQ(render(*second.query), text1);
  }
}

TEST(EngineDifferentialTest, OneLevelAndTwoLevelAgreeOnRandomQueries) {
  Rng rng(3);
  const char* const group_exprs[] = {"destPort", "time/10 as tb",
                                     "destIP", "len/200"};
  const char* const agg_exprs[] = {
      "count(*)", "sum(len)", "min(len)", "max(len)", "avg(len)",
      "sum(len*(time % 10))"};
  for (int trial = 0; trial < 12; ++trial) {
    const std::string gsql =
        std::string("select ") + group_exprs[trial % 4] + ", " +
        agg_exprs[trial % 6] + ", " + agg_exprs[(trial + 2) % 6] +
        " from TCP group by " + group_exprs[trial % 4];
    std::string error;
    auto one = CompiledQuery::Compile(gsql, &error);
    ASSERT_NE(one, nullptr) << gsql << ": " << error;
    CompiledQuery::Options opts;
    opts.two_level = true;
    opts.low_level_slots = 64;  // tiny table to force heavy eviction
    auto two = CompiledQuery::Compile(gsql, &error, opts);
    ASSERT_NE(two, nullptr) << error;

    TraceConfig cfg;
    cfg.rate_pps = 5000.0;
    cfg.num_servers = 200;
    cfg.seed = 100 + static_cast<std::uint64_t>(trial);
    PacketGenerator gen(cfg);
    auto e1 = one->NewExecution();
    auto e2 = two->NewExecution();
    for (const auto& p : gen.Generate(20000)) {
      e1->Consume(p);
      e2->Consume(p);
    }
    const auto r1 = e1->Finish();
    const auto r2 = e2->Finish();
    ASSERT_EQ(r1.rows.size(), r2.rows.size()) << gsql;
    EXPECT_GT(e2->low_level_evictions(), 0u);
    for (std::size_t i = 0; i < r1.rows.size(); ++i) {
      for (std::size_t c = 0; c < r1.rows[i].size(); ++c) {
        if (r1.rows[i][c].is_double()) {
          EXPECT_NEAR(r1.rows[i][c].AsDouble(), r2.rows[i][c].AsDouble(),
                      1e-6 * (1.0 + std::abs(r1.rows[i][c].AsDouble())))
              << gsql << " row " << i << " col " << c;
        } else {
          EXPECT_TRUE(r1.rows[i][c] == r2.rows[i][c])
              << gsql << " row " << i << " col " << c;
        }
      }
    }
  }
}

TEST(QuantileBackendDifferentialTest, QDigestAndTDigestAgree) {
  Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    QDigest qd(12, 0.01);
    TDigest td(200.0);
    // Mixed weighted stream: two value clusters with different weights.
    for (int i = 0; i < 30000; ++i) {
      const bool cluster = rng.NextBernoulli(0.3);
      const std::uint64_t v = cluster ? 3000 + rng.NextBounded(200)
                                      : 500 + rng.NextBounded(400);
      const double w = 0.5 + rng.NextDouble() * (cluster ? 5.0 : 1.0);
      qd.Update(v, w);
      td.Add(static_cast<double>(v), w);
    }
    for (double phi : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const auto q1 = static_cast<double>(qd.Quantile(phi));
      const double q2 = td.Quantile(phi);
      // Both estimate the same weighted quantile; tolerance covers both
      // sketches' errors plus interpolation across the cluster gap.
      EXPECT_NEAR(q1, q2, 250.0)
          << "trial " << trial << " phi=" << phi;
    }
  }
}

}  // namespace
}  // namespace fwdecay
