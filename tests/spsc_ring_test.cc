// SPSC ring + pipelined-execution tests (util/spsc_ring.h,
// dsms::PipelinedQueryExecution, DESIGN.md §14):
//
//   * single-threaded boundary coverage: FIFO order, full/empty
//     verdicts across many counter laps, ownership transfer (move-only
//     payloads), destructor drain;
//   * a real-thread producer/consumer handoff stress (TSan leg in CI);
//   * schedule-explored fixtures running the REAL weak-memory model in
//     every build (the ring is instantiated on sched::ModelAtomic
//     directly): the publish memory-order contract — whose relaxed
//     mutation the explorer must catch — plus wraparound and full/empty
//     ABA exploration of the actual SpscRing;
//   * pipeline differentials: Finish() bit-identical to the
//     single-threaded reference (single-level plans) and to the
//     mutex-router ShardedQueryExecution (two-level plans), with tiny
//     rings/batches so backpressure and wraparound are on the path —
//     including under schedule exploration.
//
// Replay: FWDECAY_SCHED_REPLAY tokens naming ring_publish[_fixed] /
// ring_wrap / ring_full_empty re-run that schedule here (this binary's
// EnvTokenReplay skips tokens owned by other fixtures).

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dsms/batch.h"
#include "dsms/engine.h"
#include "dsms/packet.h"
#include "dsms/udafs.h"
#include "dsms/value.h"
#include "util/random.h"
#include "util/sched.h"
#include "util/spsc_ring.h"

namespace fwdecay {
namespace {

using dsms::CompiledQuery;
using dsms::OverloadPolicy;
using dsms::Packet;
using dsms::PacketBatch;
using dsms::PipelinedQueryExecution;
using dsms::ResultSet;
using dsms::ShardedQueryExecution;
using dsms::Value;

// --------------------------------------------------------------------
// Single-threaded ring coverage
// --------------------------------------------------------------------

TEST(SpscRingTest, FifoOrderAndCapacityBound) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(&out));
  for (int v = 0; v < 4; ++v) EXPECT_TRUE(ring.TryPush(int{v}));
  EXPECT_FALSE(ring.TryPush(99));  // full: the element is not consumed
  for (int v = 0; v < 4; ++v) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, v);
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

// The monotonic-counter design keeps full (tail - head == capacity)
// and empty (tail - head == 0) distinct even though both map to the
// same slot index — the ABA that bites pointer-cursor rings. Drive a
// cap-2 ring through 100 laps and check every boundary verdict.
TEST(SpscRingTest, FullEmptyBoundaryExactAcrossManyLaps) {
  SpscRing<int> ring(2);
  int out = 0;
  for (int lap = 0; lap < 100; ++lap) {
    EXPECT_TRUE(ring.TryPush(2 * lap));
    EXPECT_TRUE(ring.TryPush(2 * lap + 1));
    EXPECT_FALSE(ring.TryPush(-1));
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, 2 * lap);
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, 2 * lap + 1);
    EXPECT_FALSE(ring.TryPop(&out));
  }
}

TEST(SpscRingTest, OwnershipTransferAndDestructorDrain) {
  // Move-only payloads compile and transfer ownership whole.
  SpscRing<std::unique_ptr<int>> uring(2);
  EXPECT_TRUE(uring.TryPush(std::make_unique<int>(42)));
  std::unique_ptr<int> got;
  ASSERT_TRUE(uring.TryPop(&got));
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, 42);

  // Elements never popped are destroyed by the ring destructor
  // (use_count is the witness; ASan/LSan watch the rest).
  auto token = std::make_shared<int>(7);
  {
    SpscRing<std::shared_ptr<int>> ring(4);
    EXPECT_TRUE(ring.TryPush(std::shared_ptr<int>(token)));
    EXPECT_TRUE(ring.TryPush(std::shared_ptr<int>(token)));
    EXPECT_EQ(token.use_count(), 3);
    std::shared_ptr<int> out;
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(*out, 7);
    out.reset();
    EXPECT_EQ(token.use_count(), 2);  // one element still in the ring
  }
  EXPECT_EQ(token.use_count(), 1);  // drained on destruction
}

// Real-thread handoff (the CI TSan leg runs this under instrumentation):
// a tight ring forces constant full/empty transitions and cursor-cache
// refreshes on both sides.
TEST(SpscRingTest, TwoThreadHandoffStress) {
  SpscRing<std::uint64_t> ring(8);
  constexpr std::uint64_t kItems = 200000;
  sched::Thread producer([&] {
    for (std::uint64_t v = 0; v < kItems; ++v) {
      while (!ring.TryPush(std::uint64_t{v})) std::this_thread::yield();
    }
  });
  std::uint64_t got = 0;
  for (std::uint64_t want = 0; want < kItems; ++want) {
    while (!ring.TryPop(&got)) std::this_thread::yield();
    ASSERT_EQ(got, want);
  }
  producer.Join();
  EXPECT_FALSE(ring.TryPop(&got));
}

// --------------------------------------------------------------------
// Schedule-explored fixtures (real weak-memory model in every build)
// --------------------------------------------------------------------

// The §14 publish edge, modeled. SpscRing's slots are plain memory
// (placement-new of arbitrary T) which the model cannot reorder, so
// this miniature mirror re-states the protocol with a ModelAtomic slot:
// producer writes the slot then publishes tail; consumer acquires tail
// then reads the slot. The buggy variant publishes relaxed — the model
// must find the schedule where the consumer observes the new tail but
// the stale slot.
void RingPublishBody(bool fixed) {
  sched::ModelAtomic<std::uint64_t> slot{0};
  sched::ModelAtomic<std::uint64_t> tail{0};
  sched::Thread producer([&] {
    slot.store(41, std::memory_order_relaxed);
    tail.store(1, fixed ? std::memory_order_release
                        : std::memory_order_relaxed);
  });
  if (tail.load(fixed ? std::memory_order_acquire
                      : std::memory_order_relaxed) == 1) {
    sched::Expect(slot.load(std::memory_order_relaxed) == 41,
                  "ring publish: tail observed before the slot write");
  }
  producer.Join();
}

// Wraparound on the REAL ring (cursors on ModelAtomic): five elements
// through a cap-2 ring wrap the mask twice; a stale-cursor bug shows up
// as a lost, duplicated, or reordered element.
void RingWrapBody() {
  SpscRing<std::uint64_t, sched::ModelAtomic> ring(2);
  sched::Thread producer([&] {
    for (std::uint64_t v = 0; v < 5; ++v) {
      while (!ring.TryPush(std::uint64_t{v})) sched::Yield();
    }
  });
  std::uint64_t got = 0;
  for (std::uint64_t want = 0; want < 5; ++want) {
    while (!ring.TryPop(&got)) sched::Yield();
    sched::Expect(got == want,
                  "ring wraparound: lost, duplicated, or reordered element");
  }
  producer.Join();
  sched::Expect(!ring.TryPop(&got),
                "ring wraparound: phantom element after drain");
}

// Full/empty ABA: three complete fill/drain cycles per schedule, then a
// quiesced boundary audit — a cursor misjudgement (treating full as
// empty or vice versa across a lap) corrupts the order or the final
// verdicts.
void RingFullEmptyBody() {
  SpscRing<std::uint64_t, sched::ModelAtomic> ring(2);
  sched::Thread producer([&] {
    for (std::uint64_t v = 0; v < 6; ++v) {
      while (!ring.TryPush(std::uint64_t{v})) sched::Yield();
    }
  });
  std::uint64_t got = 0;
  for (std::uint64_t want = 0; want < 6; ++want) {
    while (!ring.TryPop(&got)) sched::Yield();
    sched::Expect(got == want,
                  "full/empty ABA: wrong element across a counter lap");
  }
  producer.Join();
  sched::Expect(!ring.TryPop(&got),
                "full/empty ABA: phantom element after drain");
  sched::Expect(ring.TryPush(std::uint64_t{99}),
                "full/empty ABA: drained ring reports full");
}

TEST(SpscRingModelTest, ExplorationCatchesRelaxedPublish) {
  sched::ExploreOptions options;
  options.name = "ring_publish";
  const sched::ExploreResult result =
      sched::Explore(options, [] { RingPublishBody(false); });
  EXPECT_TRUE(result.failed)
      << "the relaxed-publish ring bug must be caught ("
      << result.schedules_run << " schedules explored)";
}

TEST(SpscRingModelTest, ReleaseAcquirePublishSurvivesExhaustiveExploration) {
  sched::ExploreOptions options;
  options.name = "ring_publish_fixed";
  const sched::ExploreResult result =
      sched::Explore(options, [] { RingPublishBody(true); });
  EXPECT_FALSE(result.failed)
      << result.failure << "\nreplay: " << result.replay_token;
  EXPECT_TRUE(result.exhausted);
}

TEST(SpscRingModelTest, WraparoundSurvivesBoundedExhaustiveExploration) {
  sched::ExploreOptions options;
  options.name = "ring_wrap";
  options.max_schedules = 2000;
  const sched::ExploreResult result = sched::Explore(options, RingWrapBody);
  EXPECT_FALSE(result.failed)
      << result.failure << "\nreplay: " << result.replay_token;
  EXPECT_GT(result.schedules_run, 0u);
}

TEST(SpscRingModelTest, FullEmptyAbaSurvivesBoundedExhaustiveExploration) {
  sched::ExploreOptions options;
  options.name = "ring_full_empty";
  options.max_schedules = 2000;
  const sched::ExploreResult result =
      sched::Explore(options, RingFullEmptyBody);
  EXPECT_FALSE(result.failed)
      << result.failure << "\nreplay: " << result.replay_token;
  EXPECT_GT(result.schedules_run, 0u);
}

// --------------------------------------------------------------------
// Pipeline differentials
// --------------------------------------------------------------------

constexpr char kPipelineQuery[] =
    "select srcPort, count(*), sum(len), avg(len) from TCP "
    "group by srcPort";

// Mixed-port TCP feed with some UDP rows so the protocol filter is on
// the routed path too.
std::vector<PacketBatch> MakeFeed(std::size_t n_packets,
                                  std::size_t batch_capacity,
                                  std::uint16_t port_spread) {
  Rng rng(0xfeedULL + port_spread);
  std::vector<PacketBatch> batches;
  PacketBatch batch(batch_capacity);
  double t = 0.0;
  for (std::size_t i = 0; i < n_packets; ++i) {
    t += 0.001;
    Packet p;
    p.time = t;
    p.src_ip = 0x0a000001u + static_cast<std::uint32_t>(i % 7);
    p.dest_ip = 0x0a00ff01u;
    p.src_port =
        static_cast<std::uint16_t>(1000 + i % port_spread);
    p.dest_port = 443;
    p.len = 40 + static_cast<std::uint32_t>(rng.NextBounded(1400));
    p.protocol = (i % 9 == 0) ? dsms::kProtoUdp : dsms::kProtoTcp;
    batch.Append(p);
    if (batch.full()) {
      batches.push_back(std::move(batch));
      batch = PacketBatch(batch_capacity);
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

bool BitIdentical(const ResultSet& got, const ResultSet& want) {
  if (got.columns != want.columns || got.rows.size() != want.rows.size()) {
    return false;
  }
  for (std::size_t r = 0; r < got.rows.size(); ++r) {
    if (got.rows[r].size() != want.rows[r].size()) return false;
    for (std::size_t c = 0; c < got.rows[r].size(); ++c) {
      const Value& a = got.rows[r][c];
      const Value& b = want.rows[r][c];
      if (a.is_double() != b.is_double()) return false;
      if (a.is_double()) {
        if (std::bit_cast<std::uint64_t>(a.AsDouble()) !=
            std::bit_cast<std::uint64_t>(b.AsDouble())) {
          return false;
        }
      } else if (!(a == b)) {
        return false;
      }
    }
  }
  return true;
}

// Single-level plans: every group moves wholesale at the merge, so the
// pipeline's Finish() is bit-identical to the single-threaded reference
// — doubles included — at every shard count. Tiny rings and sub-batches
// put backpressure, wraparound, and partial-fill flush on the path.
TEST(PipelinedExecutionTest, FinishBitIdenticalToSingleThreadReference) {
  dsms::RegisterPaperUdafs();
  std::string error;
  auto plan = CompiledQuery::Compile(kPipelineQuery, &error, {});
  ASSERT_NE(plan, nullptr) << error;

  const std::vector<PacketBatch> feed =
      MakeFeed(/*n_packets=*/4096, /*batch_capacity=*/64, /*port_spread=*/13);
  auto reference = plan->NewExecution();
  for (const PacketBatch& b : feed) reference->Consume(b);
  const ResultSet want = reference->Finish();

  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    PipelinedQueryExecution::Options options;
    options.num_shards = shards;
    options.ring_capacity = 4;
    options.batch_capacity = 32;
    PipelinedQueryExecution pipeline(*plan, options);
    for (const PacketBatch& b : feed) pipeline.Consume(b);
    const ResultSet got = pipeline.Finish();
    EXPECT_EQ(pipeline.packets_consumed(), 4096u) << shards << " shards";
    EXPECT_TRUE(BitIdentical(got, want))
        << shards << " shards:\n--- got ---\n" << got.ToString()
        << "--- want ---\n" << want.ToString();
  }
}

// Two-level plans: per-shard streams are identical between the mutex'd
// router and the pipeline (same remixed hash, same stream order), and
// aggregation state is invariant to batch segmentation — so the two
// executions stay bit-identical even through low-level evictions.
TEST(PipelinedExecutionTest, MatchesMutexRouterBitExactTwoLevel) {
  dsms::RegisterPaperUdafs();
  std::string error;
  CompiledQuery::Options copts;
  copts.two_level = true;
  copts.low_level_slots = 64;
  auto plan = CompiledQuery::Compile(kPipelineQuery, &error, copts);
  ASSERT_NE(plan, nullptr) << error;

  const std::vector<PacketBatch> feed =
      MakeFeed(/*n_packets=*/4096, /*batch_capacity=*/128,
               /*port_spread=*/251);

  ShardedQueryExecution sharded(*plan, /*num_shards=*/4);
  for (const PacketBatch& b : feed) sharded.Consume(b);
  const ResultSet want = sharded.Finish();

  PipelinedQueryExecution::Options options;
  options.num_shards = 4;
  options.ring_capacity = 8;
  options.batch_capacity = 64;
  PipelinedQueryExecution pipeline(*plan, options);
  for (const PacketBatch& b : feed) pipeline.Consume(b);
  const ResultSet got = pipeline.Finish();
  EXPECT_TRUE(BitIdentical(got, want))
      << "--- got ---\n" << got.ToString()
      << "--- want ---\n" << want.ToString();
}

// Overload shedding is a per-shard decision on the per-shard stream, so
// the pipeline and the mutex'd router shed the same groups; the frozen
// post-Quiesce stats and the group-table audit must agree.
TEST(PipelinedExecutionTest, OverloadPolicyStatsAndAuditAfterQuiesce) {
  dsms::RegisterPaperUdafs();
  std::string error;
  auto plan = CompiledQuery::Compile(kPipelineQuery, &error, {});
  ASSERT_NE(plan, nullptr) << error;

  const std::vector<PacketBatch> feed =
      MakeFeed(/*n_packets=*/2048, /*batch_capacity=*/64, /*port_spread=*/64);
  OverloadPolicy policy;
  policy.max_groups = 4;
  policy.decay_alpha = 0.01;

  ShardedQueryExecution sharded(*plan, /*num_shards=*/2);
  sharded.SetOverloadPolicy(policy);
  for (const PacketBatch& b : feed) sharded.Consume(b);

  PipelinedQueryExecution::Options options;
  options.num_shards = 2;
  options.ring_capacity = 4;
  options.batch_capacity = 32;
  PipelinedQueryExecution pipeline(*plan, options);
  pipeline.SetOverloadPolicy(policy);
  for (const PacketBatch& b : feed) pipeline.Consume(b);
  pipeline.Quiesce();
  pipeline.Quiesce();  // idempotent

  EXPECT_EQ(pipeline.packets_consumed(), 2048u);
  EXPECT_LE(pipeline.GroupCount(), 2u * policy.max_groups);
  EXPECT_GT(pipeline.groups_shed(), 0u);
  EXPECT_EQ(pipeline.tuples_aggregated(), sharded.tuples_aggregated());
  EXPECT_EQ(pipeline.groups_shed(), sharded.groups_shed());
  EXPECT_EQ(pipeline.tuples_shed(), sharded.tuples_shed());
  pipeline.CheckInvariants();

  EXPECT_TRUE(BitIdentical(pipeline.Finish(), sharded.Finish()));
}

// Schedule-explored pipeline differential: a tiny pipeline (2 workers,
// cap-2 rings, 2-row sub-batches) driven from the explored thread, with
// Finish() bit-identical to the reference on EVERY schedule. In the
// default build the ring cursors are PlainAtomic, so this explores
// spawn/join/yield orderings; the CI sched-explore build
// (-DFWDECAY_SCHED=ON) routes the cursors and the stop flag through the
// weak-memory model.
TEST(SpscRingModelTest, PipelineFinishBitExactUnderExploration) {
  dsms::RegisterPaperUdafs();
  std::string error;
  auto plan = CompiledQuery::Compile(kPipelineQuery, &error, {});
  ASSERT_NE(plan, nullptr) << error;

  const std::vector<PacketBatch> feed =
      MakeFeed(/*n_packets=*/12, /*batch_capacity=*/4, /*port_spread=*/5);
  auto reference = plan->NewExecution();
  for (const PacketBatch& b : feed) reference->Consume(b);
  const ResultSet want = reference->Finish();

  const auto body = [&] {
    PipelinedQueryExecution::Options options;
    options.num_shards = 2;
    options.ring_capacity = 2;
    options.batch_capacity = 2;
    PipelinedQueryExecution pipeline(*plan, options);
    for (const PacketBatch& b : feed) {
      pipeline.Consume(b);
      sched::Yield();
    }
    sched::Expect(pipeline.packets_consumed() == 12,
                  "pipeline: router dropped or double-counted packets");
    sched::Expect(BitIdentical(pipeline.Finish(), want),
                  "pipeline: Finish() diverged from the single-threaded "
                  "reference under this schedule");
  };

  sched::ExploreOptions random_options;
  random_options.name = "pipeline_merge";
  random_options.mode = sched::Mode::kRandom;
  random_options.max_schedules = 24;
  random_options.seed = 0xf00fULL;
  if (const char* env = std::getenv("FWDECAY_SCHED_SEED");
      env != nullptr && env[0] != '\0') {
    random_options.seed = std::strtoull(env, nullptr, 0);
  }
  const sched::ExploreResult random_result =
      sched::Explore(random_options, body);
  EXPECT_FALSE(random_result.failed)
      << random_result.failure << "\nseed: " << random_options.seed
      << "\nreplay: " << random_result.replay_token;

  sched::ExploreOptions dfs_options;
  dfs_options.name = "pipeline_merge";
  dfs_options.max_schedules = 32;
  const sched::ExploreResult dfs_result = sched::Explore(dfs_options, body);
  EXPECT_FALSE(dfs_result.failed)
      << dfs_result.failure << "\nreplay: " << dfs_result.replay_token;
}

// --------------------------------------------------------------------
// Replay entry point for the ring fixtures (tokens from the explored
// tests above; scripts/reproduce.sh forwards FWDECAY_SCHED_REPLAY).
// --------------------------------------------------------------------

TEST(SpscRingReplayTest, EnvTokenReplay) {
  const char* token = std::getenv("FWDECAY_SCHED_REPLAY");
  if (token == nullptr || token[0] == '\0') {
    GTEST_SKIP() << "FWDECAY_SCHED_REPLAY not set";
  }
  std::string name;
  std::string error;
  ASSERT_TRUE(sched::ParseReplayToken(token, &name, &error)) << error;

  std::function<void()> body;
  if (name == "ring_publish") {
    body = [] { RingPublishBody(false); };
  } else if (name == "ring_publish_fixed") {
    body = [] { RingPublishBody(true); };
  } else if (name == "ring_wrap") {
    body = RingWrapBody;
  } else if (name == "ring_full_empty") {
    body = RingFullEmptyBody;
  } else {
    GTEST_SKIP() << "token names fixture '" << name
                 << "', which is not owned by this binary";
  }
  const sched::ExploreResult replay = sched::Replay(token, name.c_str(), body);
  EXPECT_FALSE(replay.failed)
      << "replayed schedule fails: " << replay.failure;
}

}  // namespace
}  // namespace fwdecay
