// Parameterized property tests: every claim that should hold for EVERY
// forward decay function is swept across the whole taxonomy with
// TEST_P/INSTANTIATE_TEST_SUITE_P — Definition 1 invariants, agreement
// of the O(1) aggregates with the exact reference, Theorem 2 recall,
// quantile rank bounds, sampler marginals, merge = union, and
// out-of-order insensitivity.

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aggregates.h"
#include "core/count_distinct.h"
#include "core/exact_reference.h"
#include "core/forward_decay.h"
#include "core/heavy_hitters.h"
#include "core/quantiles.h"
#include "sampling/weighted_reservoir.h"
#include "sampling/with_replacement.h"
#include "util/audit.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/zipf.h"

namespace fwdecay {
namespace {

struct DecayCase {
  std::string label;
  AnyForwardG g;
  // Landmark-window g assigns weight 0 at n = 0 and 1 afterwards; a few
  // checks need to know the function can produce zero weights.
  bool can_be_zero = false;
};

// Readable gtest output instead of a byte dump.
void PrintTo(const DecayCase& c, std::ostream* os) { *os << c.label; }

std::vector<DecayCase> AllDecayCases() {
  return {
      {"none", AnyForwardG(NoDecayG{}), false},
      {"linear", AnyForwardG(MonomialG(1.0)), true},
      {"quadratic", AnyForwardG(MonomialG(2.0)), true},
      {"sqrt", AnyForwardG(MonomialG(0.5)), true},
      {"cubic", AnyForwardG(MonomialG(3.0)), true},
      {"poly_1_2_3", AnyForwardG(PolynomialG({1.0, 2.0, 3.0})), false},
      {"exp_slow", AnyForwardG(ExponentialG(0.05)), false},
      {"exp_fast", AnyForwardG(ExponentialG(0.5)), false},
      {"landmark_window", AnyForwardG(LandmarkWindowG{}), true},
      {"logarithmic", AnyForwardG(LogarithmicG{}), false},
  };
}

std::string CaseName(const testing::TestParamInfo<DecayCase>& info) {
  return info.param.label;
}

class ForwardDecayPropertyTest : public testing::TestWithParam<DecayCase> {
 protected:
  ForwardDecay<AnyForwardG> Decay(Timestamp landmark = 0.0) const {
    return ForwardDecay<AnyForwardG>(GetParam().g, landmark);
  }
};

// --- Definition 1 ------------------------------------------------------------

TEST_P(ForwardDecayPropertyTest, WeightsInUnitIntervalAndMonotone) {
  const auto decay = Decay(10.0);
  for (double ti : {10.25, 11.0, 25.0, 100.0}) {
    double prev = 2.0;
    for (double t = ti; t < 500.0; t += 3.7) {
      const double w = decay.Weight(ti, t);
      ASSERT_GE(w, 0.0) << "ti=" << ti << " t=" << t;
      ASSERT_LE(w, 1.0 + 1e-12);
      ASSERT_LE(w, prev + 1e-12) << "not monotone at t=" << t;
      prev = w;
    }
  }
}

TEST_P(ForwardDecayPropertyTest, WeightIsOneAtArrivalUnlessZero) {
  const auto decay = Decay(0.0);
  for (double ti : {0.5, 3.0, 77.0}) {
    const double w = decay.Weight(ti, ti);
    if (decay.StaticWeight(ti) > 0.0) {
      EXPECT_DOUBLE_EQ(w, 1.0) << "ti=" << ti;
    }
  }
}

TEST_P(ForwardDecayPropertyTest, StaticWeightNonDecreasingInTimestamp) {
  const auto decay = Decay(0.0);
  double prev = -1.0;
  for (double ti = 0.5; ti < 200.0; ti += 1.3) {
    const double w = decay.StaticWeight(ti);
    ASSERT_GE(w, prev - 1e-12);
    prev = w;
  }
}

TEST_P(ForwardDecayPropertyTest, LogWeightConsistentWithWeight) {
  const auto decay = Decay(0.0);
  for (double ti : {1.0, 10.0, 50.0}) {
    const double w = decay.StaticWeight(ti);
    if (w > 0.0 && std::isfinite(w)) {
      EXPECT_NEAR(decay.LogStaticWeight(ti), std::log(w),
                  1e-9 * std::max(1.0, std::abs(std::log(w))));
    }
  }
}

// --- Theorem 1: O(1) aggregates match the exact reference --------------------

TEST_P(ForwardDecayPropertyTest, MomentsMatchExactReference) {
  Rng rng(42);
  const auto decay = Decay(0.0);
  DecayedMoments<AnyForwardG> m(decay);
  ExactDecayedReference ref;
  for (int i = 0; i < 400; ++i) {
    const double ts = 0.5 + rng.NextDouble() * 99.0;
    const double v = rng.NextDouble() * 10.0;
    m.Add(ts, v);
    ref.Add(ts, 0, v);
  }
  const AnyForwardG g = GetParam().g;
  const auto w = [g](Timestamp ti, Timestamp t) {
    return g.G(ti - 0.0) / g.G(t - 0.0);
  };
  const double t = 100.0;
  const double exact_count = ref.Count(t, w);
  EXPECT_NEAR(m.Count(t), exact_count, 1e-6 * std::max(1.0, exact_count));
  const double exact_sum = ref.Sum(t, w);
  EXPECT_NEAR(m.Sum(t), exact_sum, 1e-6 * std::max(1.0, exact_sum));
  if (exact_count > 0.0) {
    EXPECT_NEAR(*m.Average(), *ref.Average(t, w), 1e-6);
    EXPECT_NEAR(*m.Variance(), *ref.Variance(t, w), 1e-5);
  }
}

TEST_P(ForwardDecayPropertyTest, ExtremaMatchExactReference) {
  Rng rng(43);
  const auto decay = Decay(0.0);
  DecayedMin<AnyForwardG> mn(decay);
  DecayedMax<AnyForwardG> mx(decay);
  ExactDecayedReference ref;
  for (int i = 0; i < 300; ++i) {
    const double ts = 0.5 + rng.NextDouble() * 50.0;
    const double v = rng.NextDouble() * 20.0 - 10.0;
    mn.Add(ts, v);
    mx.Add(ts, v);
    ref.Add(ts, 0, v);
  }
  const AnyForwardG g = GetParam().g;
  const auto w = [g](Timestamp ti, Timestamp t) {
    return g.G(ti) / g.G(t);
  };
  EXPECT_NEAR(*mn.Value(60.0), *ref.Min(60.0, w), 1e-9);
  EXPECT_NEAR(*mx.Value(60.0), *ref.Max(60.0, w), 1e-9);
}

// --- Out-of-order insensitivity (Section VI-B) --------------------------------

TEST_P(ForwardDecayPropertyTest, ArrivalOrderIrrelevant) {
  Rng rng(44);
  std::vector<std::pair<double, double>> items;
  for (int i = 0; i < 200; ++i) {
    items.emplace_back(0.5 + rng.NextDouble() * 30.0, rng.NextDouble());
  }
  const auto decay = Decay(0.0);
  DecayedMoments<AnyForwardG> fwd(decay);
  DecayedMoments<AnyForwardG> rev(decay);
  for (const auto& [ts, v] : items) fwd.Add(ts, v);
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    rev.Add(it->first, it->second);
  }
  // Identical up to floating-point summation order.
  EXPECT_NEAR(fwd.Count(40.0), rev.Count(40.0), 1e-9 * fwd.Count(40.0));
  EXPECT_NEAR(fwd.Sum(40.0), rev.Sum(40.0),
              1e-9 * std::abs(fwd.Sum(40.0)));
}

// --- Merge = union (Section VI-B) ---------------------------------------------

TEST_P(ForwardDecayPropertyTest, MergeEqualsUnion) {
  Rng rng(45);
  const auto decay = Decay(0.0);
  DecayedMoments<AnyForwardG> all(decay);
  DecayedMoments<AnyForwardG> a(decay);
  DecayedMoments<AnyForwardG> b(decay);
  DecayedHeavyHitters<AnyForwardG> hh_all(decay, 0.02);
  DecayedHeavyHitters<AnyForwardG> hh_a(decay, 0.02);
  DecayedHeavyHitters<AnyForwardG> hh_b(decay, 0.02);
  ZipfGenerator zipf(100, 1.2);
  for (int i = 0; i < 4000; ++i) {
    const double ts = 0.5 + rng.NextDouble() * 30.0;
    const double v = rng.NextDouble();
    const std::uint64_t key = zipf.Next(rng);
    all.Add(ts, v);
    (i % 2 == 0 ? a : b).Add(ts, v);
    if (decay.StaticWeight(ts) > 0.0) {
      hh_all.Add(ts, key);
      (i % 2 == 0 ? hh_a : hh_b).Add(ts, key);
    }
  }
  a.Merge(b);
  // Representation audits after the merge (no-op unless -DFWDECAY_AUDIT=ON).
  FWDECAY_AUDIT_INVARIANTS(hh_all.sketch());
  FWDECAY_AUDIT_INVARIANTS(hh_a.sketch());
  FWDECAY_AUDIT_INVARIANTS(hh_b.sketch());
  EXPECT_NEAR(a.Count(40.0), all.Count(40.0),
              1e-9 * std::max(1.0, all.Count(40.0)));
  EXPECT_NEAR(a.Sum(40.0), all.Sum(40.0),
              1e-9 * std::max(1.0, all.Sum(40.0)));
  hh_a.Merge(hh_b);
  EXPECT_NEAR(hh_a.DecayedTotal(40.0), hh_all.DecayedTotal(40.0),
              1e-6 * std::max(1.0, hh_all.DecayedTotal(40.0)));
}

// --- Theorem 2 recall across decay functions ----------------------------------

TEST_P(ForwardDecayPropertyTest, HeavyHitterRecallAgainstExact) {
  Rng rng(46);
  const double eps = 0.01;
  const double phi = 0.05;
  const auto decay = Decay(0.0);
  DecayedHeavyHitters<AnyForwardG> hh(decay, eps);
  ExactDecayedReference ref;
  ZipfGenerator zipf(500, 1.3);
  for (int i = 0; i < 20000; ++i) {
    const double ts = 0.5 + rng.NextDouble() * 30.0;
    if (decay.StaticWeight(ts) <= 0.0) continue;
    const std::uint64_t key = zipf.Next(rng);
    hh.Add(ts, key);
    ref.Add(ts, key, 0.0);
    // Per-op structural audit of the underlying SpaceSaving sketch
    // (no-op unless the build sets -DFWDECAY_AUDIT=ON; see util/audit.h).
    FWDECAY_AUDIT_INVARIANTS(hh.sketch());
  }
  const AnyForwardG g = GetParam().g;
  const auto w = [g](Timestamp ti, Timestamp t) { return g.G(ti) / g.G(t); };
  std::set<std::uint64_t> reported;
  for (const auto& h : hh.Query(31.0, phi)) reported.insert(h.key);
  for (const auto& [key, c] : ref.HeavyHitters(31.0, w, phi)) {
    EXPECT_TRUE(reported.contains(key))
        << "missed heavy key " << key << " under " << GetParam().label;
  }
  const double total = ref.Count(31.0, w);
  for (std::uint64_t key : reported) {
    EXPECT_GE(ref.KeyCount(31.0, w, key), (phi - eps) * total - 1e-9);
  }
}

// --- Theorem 3 rank bound across decay functions -------------------------------

TEST_P(ForwardDecayPropertyTest, QuantileRankWithinEps) {
  Rng rng(47);
  const double eps = 0.02;
  const auto decay = Decay(0.0);
  DecayedQuantiles<AnyForwardG> dq(decay, /*universe_bits=*/10, eps);
  ExactDecayedReference ref;
  for (int i = 0; i < 20000; ++i) {
    const double ts = 0.5 + rng.NextDouble() * 30.0;
    if (decay.StaticWeight(ts) <= 0.0) continue;
    const std::uint64_t v = rng.NextBounded(1 << 10);
    dq.Add(ts, v);
    ref.Add(ts, v, static_cast<double>(v));
    // Per-op structural audit of the underlying q-digest.
    FWDECAY_AUDIT_INVARIANTS(dq.digest());
  }
  const AnyForwardG g = GetParam().g;
  const auto w = [g](Timestamp ti, Timestamp t) { return g.G(ti) / g.G(t); };
  const double total = ref.Count(31.0, w);
  for (double phi : {0.25, 0.5, 0.75}) {
    const std::uint64_t est = dq.Quantile(phi);
    const double rank = ref.Rank(31.0, w, static_cast<double>(est));
    EXPECT_NEAR(rank, phi * total, eps * total + 2.0)
        << GetParam().label << " phi=" << phi;
  }
}

// --- Theorem 5/6: sampler marginals across decay functions --------------------

TEST_P(ForwardDecayPropertyTest, SingleDrawSamplersFollowStaticWeights) {
  const auto decay = Decay(0.0);
  const double stamps[] = {3.0, 7.0, 12.0, 18.0, 25.0};
  double weights[5];
  double total = 0.0;
  for (int i = 0; i < 5; ++i) {
    weights[i] = decay.StaticWeight(stamps[i]);
    total += weights[i];
  }
  const int kTrials = 20000;
  std::vector<double> wr_counts(5, 0.0);
  std::vector<double> wrs_counts(5, 0.0);
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(100000 + trial);
    ForwardDecaySamplerWR<int, AnyForwardG> wr(decay, 1);
    WeightedReservoirSampler<int, AnyForwardG> wrs(decay, 1);
    for (int i = 0; i < 5; ++i) {
      wr.Add(stamps[i], i, rng);
      wrs.Add(stamps[i], i, rng);
      FWDECAY_AUDIT_INVARIANTS(wr);
      FWDECAY_AUDIT_INVARIANTS(wrs);
    }
    const auto s1 = wr.Sample();
    const auto s2 = wrs.Sample();
    ASSERT_EQ(s1.size(), 1u);
    ASSERT_EQ(s2.size(), 1u);
    ++wr_counts[static_cast<std::size_t>(s1[0])];
    ++wrs_counts[static_cast<std::size_t>(s2[0])];
  }
  for (int i = 0; i < 5; ++i) {
    const double expected = weights[i] / total;
    EXPECT_NEAR(wr_counts[i] / kTrials, expected, 0.02)
        << GetParam().label << " WR chain, item " << i;
    EXPECT_NEAR(wrs_counts[i] / kTrials, expected, 0.02)
        << GetParam().label << " A-Res, item " << i;
  }
}

// --- Count distinct across decay functions -------------------------------------

TEST_P(ForwardDecayPropertyTest, ExactDistinctMatchesReference) {
  Rng rng(48);
  const auto decay = Decay(0.0);
  ExactDecayedDistinct<AnyForwardG> distinct(decay);
  ExactDecayedReference ref;
  for (int i = 0; i < 3000; ++i) {
    const double ts = 0.5 + rng.NextDouble() * 30.0;
    const std::uint64_t key = rng.NextBounded(200);
    distinct.Add(ts, key);
    ref.Add(ts, key, 0.0);
  }
  const AnyForwardG g = GetParam().g;
  const auto w = [g](Timestamp ti, Timestamp t) { return g.G(ti) / g.G(t); };
  EXPECT_NEAR(distinct.Value(31.0), ref.CountDistinct(31.0, w), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllDecayFunctions, ForwardDecayPropertyTest,
                         testing::ValuesIn(AllDecayCases()), CaseName);

}  // namespace
}  // namespace fwdecay
