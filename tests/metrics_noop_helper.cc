// Compiled with FWDECAY_METRICS_DISABLED (set per-source in
// tests/CMakeLists.txt) while the rest of the test binary is built with
// whatever the configure-time default is. Linking this TU into
// metrics_test proves the ODR story documented in util/metrics.h —
// impl and noop are always both compiled, only the (non-ODR) aliases
// differ per TU — and that the noop surface really does nothing.

#include <string>

#include "util/metrics.h"

static_assert(FWDECAY_METRICS_ENABLED == 0,
              "this TU must be compiled with FWDECAY_METRICS_DISABLED "
              "(see tests/CMakeLists.txt)");

namespace fwdecay::metrics_noop_check {

// Exercises every aliased entry point exactly as instrumented code
// does and returns a sum that is zero iff all of them were no-ops.
std::uint64_t ExerciseDisabledMetrics() {
  auto& reg = metrics::MetricsRegistry::Instance();

  metrics::Counter* counter =
      reg.GetCounter("fwdecay_noop_probe_total", "noop probe");
  counter->Increment(41);

  metrics::Gauge* gauge = reg.GetGauge("fwdecay_noop_probe", "noop probe");
  gauge->Set(3.5);

  metrics::DecayedRate* rate =
      reg.GetDecayedRate("fwdecay_noop_probe_rate", "noop probe", 0.1);
  rate->Mark(1.0, 2.0);

  metrics::LatencyReservoir* reservoir =
      reg.GetReservoir("fwdecay_noop_probe_ns", "noop probe", 16, 0.1);
  { metrics::ScopedTimerSample sample(reservoir, 0.0); }

  std::string out = "sentinel: render must clear this";
  reg.RenderPrometheus(&out);

  return counter->value() + static_cast<std::uint64_t>(gauge->value()) +
         static_cast<std::uint64_t>(rate->RatePerSecond(2.0)) +
         reservoir->observations() + reg.MetricCount() + out.size();
}

}  // namespace fwdecay::metrics_noop_check
