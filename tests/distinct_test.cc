// Tests for KMV distinct counting, the dominance-norm level-set
// estimator, and decayed count-distinct (Definition 9, Theorem 4).

#include <cmath>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/count_distinct.h"
#include "sketch/dominance_norm.h"
#include "sketch/kmv.h"
#include "util/random.h"
#include "util/zipf.h"

namespace fwdecay {
namespace {

TEST(KmvTest, ExactBelowK) {
  KmvSketch kmv(64);
  for (std::uint64_t k = 0; k < 50; ++k) kmv.Insert(k);
  EXPECT_DOUBLE_EQ(kmv.Estimate(), 50.0);
  // Duplicates don't change anything.
  for (std::uint64_t k = 0; k < 50; ++k) kmv.Insert(k);
  EXPECT_DOUBLE_EQ(kmv.Estimate(), 50.0);
}

TEST(KmvTest, EstimateWithinRelativeError) {
  const std::size_t k = 1024;
  KmvSketch kmv(k);
  const int n = 100000;
  for (int i = 0; i < n; ++i) kmv.Insert(static_cast<std::uint64_t>(i));
  // Relative stderr ~ 1/sqrt(k-2) ~ 3.1%; allow 5 sigma.
  EXPECT_NEAR(kmv.Estimate(), n, 5.0 * n / std::sqrt(k - 2.0));
}

TEST(KmvTest, MultiplicityInsensitive) {
  Rng rng(1);
  ZipfGenerator zipf(5000, 1.5);
  KmvSketch kmv(512);
  std::unordered_set<std::uint64_t> truth;
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t key = zipf.Next(rng);
    kmv.Insert(key);
    truth.insert(key);
  }
  const double d = static_cast<double>(truth.size());
  EXPECT_NEAR(kmv.Estimate(), d, 5.0 * d / std::sqrt(510.0));
}

TEST(KmvTest, MergeEqualsUnion) {
  KmvSketch a(256, /*hash_seed=*/9);
  KmvSketch b(256, /*hash_seed=*/9);
  KmvSketch u(256, /*hash_seed=*/9);
  for (std::uint64_t k = 0; k < 30000; ++k) {
    if (k % 3 != 0) a.Insert(k);
    if (k % 3 != 1) b.Insert(k);  // overlap on k%3==2
    u.Insert(k);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), u.Estimate());
}

TEST(ExactDominanceNormTest, SumsMaxWeights) {
  ExactDominanceNorm norm;
  norm.Update(1, 2.0);
  norm.Update(1, 5.0);
  norm.Update(1, 3.0);  // max for key 1 is 5
  norm.Update(2, 1.0);
  EXPECT_DOUBLE_EQ(norm.Estimate(), 6.0);
  EXPECT_EQ(norm.DistinctKeys(), 2u);
}

TEST(DominanceNormSketchTest, SingleKeySingleWeight) {
  DominanceNormSketch sketch(64, 1.05);
  sketch.Update(7, 100.0);
  // Estimate approximates 100 from below within the level base.
  EXPECT_LE(sketch.Estimate(), 100.0 + 1e-9);
  EXPECT_GE(sketch.Estimate(), 100.0 / 1.05 - 1e-9);
}

TEST(DominanceNormSketchTest, TracksExactNormOnRandomStreams) {
  Rng rng(2);
  const double base = 1.05;
  DominanceNormSketch sketch(2048, base);
  ExactDominanceNorm exact;
  ZipfGenerator zipf(3000, 1.0);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t key = zipf.Next(rng);
    // Weights spanning several orders of magnitude.
    const double w = std::exp(rng.NextDouble() * 10.0 - 3.0);
    sketch.Update(key, w);
    exact.Update(key, w);
  }
  const double truth = exact.Estimate();
  const double est = sketch.Estimate();
  // Discretization under-estimates by <= factor base; KMV noise ~2-3%.
  EXPECT_LE(est, truth * 1.15);
  EXPECT_GE(est, truth / base * 0.85);
}

TEST(DominanceNormSketchTest, MergeApproximatesUnion) {
  Rng rng(3);
  DominanceNormSketch a(1024, 1.1, /*hash_seed=*/5);
  DominanceNormSketch b(1024, 1.1, /*hash_seed=*/5);
  ExactDominanceNorm exact;
  for (int i = 0; i < 40000; ++i) {
    const std::uint64_t key = rng.NextBounded(5000);
    const double w = 1.0 + rng.NextDouble() * 99.0;
    (i % 2 == 0 ? a : b).Update(key, w);
    exact.Update(key, w);
  }
  a.Merge(b);
  const double truth = exact.Estimate();
  EXPECT_NEAR(a.Estimate(), truth, 0.2 * truth);
}

TEST(DominanceNormSketchTest, MemoryBoundedByLevelsTimesK) {
  Rng rng(4);
  DominanceNormSketch sketch(256, 1.1);
  for (int i = 0; i < 50000; ++i) {
    sketch.Update(rng.NextBounded(100000), 1.0 + rng.NextDouble() * 1e6);
  }
  // Each level holds at most k hashes of 8 bytes (+overhead).
  EXPECT_LE(sketch.MemoryBytes(),
            sketch.LevelCount() * (256 * 8 + 64));
}

TEST(HllDominanceNormSketchTest, TracksExactNorm) {
  Rng rng(30);
  const double base = 1.1;
  HllDominanceNormSketch sketch(/*precision=*/12, base);
  ExactDominanceNorm exact;
  ZipfGenerator zipf(3000, 1.0);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t key = zipf.Next(rng);
    const double w = std::exp(rng.NextDouble() * 10.0 - 3.0);
    sketch.Update(key, w);
    exact.Update(key, w);
  }
  const double truth = exact.Estimate();
  const double est = sketch.Estimate();
  // Discretization underestimates by <= base; HLL error ~2%.
  EXPECT_LE(est, truth * 1.15);
  EXPECT_GE(est, truth / base * 0.8);
}

TEST(HllDominanceNormSketchTest, MergeApproximatesUnion) {
  Rng rng(31);
  HllDominanceNormSketch a(11, 1.1, /*hash_seed=*/4);
  HllDominanceNormSketch b(11, 1.1, /*hash_seed=*/4);
  ExactDominanceNorm exact;
  for (int i = 0; i < 40000; ++i) {
    const std::uint64_t key = rng.NextBounded(5000);
    const double w = 1.0 + rng.NextDouble() * 99.0;
    (i % 2 == 0 ? a : b).Update(key, w);
    exact.Update(key, w);
  }
  a.Merge(b);
  const double truth = exact.Estimate();
  EXPECT_NEAR(a.Estimate(), truth, 0.2 * truth);
}

TEST(HllDominanceNormSketchTest, ConstantMemoryPerLevel) {
  Rng rng(32);
  HllDominanceNormSketch sketch(10, 1.1);
  for (int i = 0; i < 100000; ++i) {
    sketch.Update(rng.NextBounded(1u << 30), 1.0 + rng.NextDouble() * 1e6);
  }
  // Exactly 2^10 bytes per level, regardless of distinct keys.
  EXPECT_EQ(sketch.MemoryBytes(), sketch.LevelCount() * 1024);
}

// --- DecayedDistinct (Theorem 4) --------------------------------------------

TEST(DecayedDistinctTest, MatchesExactUnderPolyDecay) {
  Rng rng(5);
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  DecayedDistinct<MonomialG> approx(decay, 2048, 1.05);
  ExactDecayedDistinct<MonomialG> exact(decay);
  ZipfGenerator zipf(2000, 1.1);
  for (int i = 0; i < 50000; ++i) {
    const double ts = 1.0 + rng.NextDouble() * 99.0;
    const std::uint64_t key = zipf.Next(rng);
    approx.Add(ts, key);
    exact.Add(ts, key);
  }
  const double truth = exact.Value(100.0);
  const double est = approx.Estimate(100.0);
  EXPECT_LE(est, truth * 1.15);
  EXPECT_GE(est, truth * 0.80);
}

TEST(DecayedDistinctTest, RepeatedKeyCountsOnce) {
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 100.0);
  ExactDecayedDistinct<MonomialG> exact(decay);
  // Same key at several times: decayed distinct = max weight = most
  // recent arrival's weight.
  exact.Add(105.0, 42);
  exact.Add(108.0, 42);
  exact.Add(103.0, 42);
  EXPECT_NEAR(exact.Value(110.0), 0.64, 1e-12);
  EXPECT_EQ(exact.DistinctKeys(), 1u);
}

TEST(DecayedDistinctTest, UndecayedReducesToPlainDistinctCount) {
  // g = 1: every key's max weight is 1, so D = #distinct.
  ForwardDecay<NoDecayG> decay(NoDecayG{}, 0.0);
  ExactDecayedDistinct<NoDecayG> exact(decay);
  Rng rng(6);
  std::unordered_set<std::uint64_t> truth;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t key = rng.NextBounded(700);
    exact.Add(rng.NextDouble() * 10.0, key);
    truth.insert(key);
  }
  EXPECT_DOUBLE_EQ(exact.Value(10.0), static_cast<double>(truth.size()));
}

TEST(DecayedDistinctTest, OutOfOrderInsensitive) {
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  ExactDecayedDistinct<MonomialG> fwd(decay);
  ExactDecayedDistinct<MonomialG> rev(decay);
  const std::pair<double, std::uint64_t> items[] = {
      {1.0, 1}, {5.0, 2}, {3.0, 1}, {9.0, 3}, {7.0, 2}};
  for (const auto& [ts, key] : items) fwd.Add(ts, key);
  for (int i = 4; i >= 0; --i) rev.Add(items[i].first, items[i].second);
  EXPECT_DOUBLE_EQ(fwd.Value(10.0), rev.Value(10.0));
}

}  // namespace
}  // namespace fwdecay
