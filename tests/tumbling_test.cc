// Tests for the tumbling-window runner: per-bucket emission, watermark
// + slack behaviour under out-of-order delivery, and late-tuple drops.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "dsms/tumbling.h"

namespace fwdecay::dsms {
namespace {

Packet At(double time, std::uint16_t port = 80) {
  Packet p;
  p.time = time;
  p.dest_port = port;
  p.len = 100;
  p.protocol = kProtoTcp;
  return p;
}

std::unique_ptr<CompiledQuery> CountPlan() {
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destPort, count(*) from TCP group by destPort", &error);
  EXPECT_NE(plan, nullptr) << error;
  return plan;
}

TEST(TumblingRunnerTest, EmitsBucketsInOrderAsWatermarkAdvances) {
  auto plan = CountPlan();
  std::vector<std::int64_t> emitted;
  std::map<std::int64_t, std::int64_t> counts;
  TumblingRunner runner(plan.get(), /*bucket_seconds=*/60.0,
                        [&](std::int64_t bucket, ResultSet rs) {
                          emitted.push_back(bucket);
                          counts[bucket] = rs.rows[0][1].AsInt();
                        });
  runner.Consume(At(10.0));
  runner.Consume(At(30.0));
  EXPECT_TRUE(emitted.empty());  // bucket 0 still open
  runner.Consume(At(61.0));      // watermark passes bucket 0's end
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0], 0);
  EXPECT_EQ(counts[0], 2);
  runner.Consume(At(200.0));  // closes bucket 1 (bucket 2 stays open)
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(emitted[1], 1);
  EXPECT_EQ(counts[1], 1);
  runner.Flush();
  ASSERT_EQ(emitted.size(), 3u);
  EXPECT_EQ(emitted[2], 3);
  EXPECT_EQ(runner.open_buckets(), 0u);
}

TEST(TumblingRunnerTest, SlackToleratesOutOfOrderArrivals) {
  auto plan = CountPlan();
  std::map<std::int64_t, std::int64_t> counts;
  TumblingRunner runner(
      plan.get(), 60.0,
      [&](std::int64_t bucket, ResultSet rs) {
        counts[bucket] = rs.rows[0][1].AsInt();
      },
      /*slack_seconds=*/5.0);
  runner.Consume(At(59.0));
  runner.Consume(At(62.0));  // watermark 62 < 60 + 5: bucket 0 held open
  EXPECT_EQ(runner.open_buckets(), 2u);
  runner.Consume(At(58.0));  // late but within slack: still counted
  runner.Consume(At(66.0));  // watermark 66 >= 65: bucket 0 emits
  EXPECT_EQ(counts.count(0), 1u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(runner.late_drops(), 0u);
}

TEST(TumblingRunnerTest, DropsTuplesForEmittedBuckets) {
  auto plan = CountPlan();
  int emissions = 0;
  TumblingRunner runner(plan.get(), 60.0,
                        [&](std::int64_t, ResultSet) { ++emissions; });
  runner.Consume(At(10.0));
  runner.Consume(At(120.0));  // bucket 0 emitted
  EXPECT_EQ(emissions, 1);
  runner.Consume(At(15.0));  // too late
  EXPECT_EQ(runner.late_drops(), 1u);
  runner.Flush();
  EXPECT_EQ(emissions, 2);
}

TEST(TumblingRunnerTest, EndToEndOverJitteredTrace) {
  // A jittered trace through a per-minute count query: bucket counts
  // must sum to (kept) packets, and with enough slack nothing is lost.
  TraceConfig cfg;
  cfg.rate_pps = 5000.0;
  cfg.reorder_jitter = 1.0;
  cfg.tcp_fraction = 1.0;
  cfg.seed = 3;
  PacketGenerator gen(cfg);
  const auto packets = gen.Generate(5000 * 130);  // ~130 seconds

  std::string error;
  auto plan = CompiledQuery::Compile(
      "select tb, count(*) from TCP group by time/60 as tb", &error);
  ASSERT_NE(plan, nullptr) << error;
  std::int64_t total = 0;
  TumblingRunner runner(
      plan.get(), 60.0,
      [&](std::int64_t, ResultSet rs) {
        for (const auto& row : rs.rows) total += row[1].AsInt();
      },
      /*slack_seconds=*/2.0);
  for (const Packet& p : packets) runner.Consume(p);
  runner.Flush();
  EXPECT_EQ(runner.late_drops(), 0u);
  EXPECT_EQ(total, static_cast<std::int64_t>(packets.size()));
}

}  // namespace
}  // namespace fwdecay::dsms
