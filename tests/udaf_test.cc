// Tests for the paper's UDAFs through the AggRegistry interface — the
// extension mechanism of Section VI/VIII — plus registry semantics.

#include <cmath>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dsms/agg.h"
#include "dsms/udafs.h"
#include "util/random.h"
#include "util/zipf.h"

namespace fwdecay::dsms {
namespace {

class UdafTest : public testing::Test {
 protected:
  static void SetUpTestSuite() { RegisterPaperUdafs(); }

  static std::unique_ptr<AggState> Make(const std::string& name) {
    return AggRegistry::Instance().Create(name);
  }

  // gcc 12 at -O3 issues a bogus -Wmaybe-uninitialized on the variant
  // copy inside push_back; silence it for this helper only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  static std::vector<Value> Args(std::initializer_list<double> values) {
    std::vector<Value> out;
    out.reserve(values.size());
    for (double v : values) out.push_back(Value(v));
    return out;
  }
#pragma GCC diagnostic pop

  static std::set<double> ParseSample(const std::string& rendered) {
    std::set<double> out;
    std::stringstream ss(rendered);
    std::string token;
    while (std::getline(ss, token, ',')) {
      if (!token.empty()) out.insert(std::stod(token));
    }
    return out;
  }
};

TEST_F(UdafTest, RegistryKnowsAllPaperUdafs) {
  const AggRegistry& r = AggRegistry::Instance();
  for (const char* name :
       {"prisamp", "wrsamp", "ressamp", "aggsamp", "fdhh", "unaryhh", "swhh",
        "ehdsum", "fdquantile", "fddistinct", "count", "sum", "avg", "min",
        "max"}) {
    EXPECT_TRUE(r.Contains(name)) << name;
  }
  EXPECT_TRUE(r.Contains("PRISAMP"));  // case-insensitive
  EXPECT_FALSE(r.Contains("nosuch"));
}

TEST_F(UdafTest, RegistryRejectsUnknownCreate) {
  EXPECT_DEATH(AggRegistry::Instance().Create("nosuchagg"),
               "unknown aggregate");
}

TEST_F(UdafTest, RessampKeepsEverythingUnderCapacity) {
  auto state = Make("ressamp");
  for (double v : {1.0, 2.0, 3.0}) {
    state->Update(Args({v, 10.0}));  // k = 10
  }
  EXPECT_EQ(ParseSample(state->Finalize().AsString()),
            (std::set<double>{1.0, 2.0, 3.0}));
}

TEST_F(UdafTest, PrisampRespectsSampleSizeAndSkipsZeroWeights) {
  auto state = Make("prisamp");
  for (int i = 0; i < 100; ++i) {
    state->Update(Args({static_cast<double>(i), 1.0, 8.0}));  // k = 8
  }
  state->Update(Args({999.0, 0.0, 8.0}));  // zero weight: never sampled
  const auto sample = ParseSample(state->Finalize().AsString());
  EXPECT_EQ(sample.size(), 8u);
  EXPECT_FALSE(sample.contains(999.0));
}

TEST_F(UdafTest, WrsampHeavyWeightDominates) {
  // One item carries ~all the weight: it must (almost) always be kept.
  int kept = 0;
  for (int trial = 0; trial < 50; ++trial) {
    auto state = Make("wrsamp");
    for (int i = 0; i < 50; ++i) {
      state->Update(Args({static_cast<double>(i), 1.0, 4.0}));
    }
    state->Update(Args({777.0, 1e9, 4.0}));
    kept += ParseSample(state->Finalize().AsString()).contains(777.0);
  }
  EXPECT_GE(kept, 49);
}

TEST_F(UdafTest, PrisampMergeCombinesSamples) {
  auto a = Make("prisamp");
  auto b = Make("prisamp");
  for (int i = 0; i < 20; ++i) {
    a->Update(Args({static_cast<double>(i), 1.0, 64.0}));
    b->Update(Args({100.0 + i, 1.0, 64.0}));
  }
  a->Merge(*b);
  const auto sample = ParseSample(a->Finalize().AsString());
  bool has_a = false;
  bool has_b = false;
  for (double v : sample) {
    has_a |= v < 100.0;
    has_b |= v >= 100.0;
  }
  EXPECT_TRUE(has_a);
  EXPECT_TRUE(has_b);
}

TEST_F(UdafTest, FdhhReportsTheHeavyKey) {
  auto state = Make("fdhh");
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    // Key 42 gets ~50% of the weighted stream.
    const double key = rng.NextBernoulli(0.5)
                           ? 42.0
                           : static_cast<double>(100 + rng.NextBounded(1000));
    state->Update(Args({key, 1.0, 0.2, 0.01}));
  }
  const std::string rendered = state->Finalize().AsString();
  EXPECT_NE(rendered.find("42:"), std::string::npos) << rendered;
}

TEST_F(UdafTest, UnaryhhMatchesFdhhOnUnitWeights) {
  auto unary = Make("unaryhh");
  auto weighted = Make("fdhh");
  Rng rng(2);
  ZipfGenerator zipf(100, 1.5);
  for (int i = 0; i < 20000; ++i) {
    const auto key = static_cast<double>(zipf.Next(rng));
    unary->Update(Args({key, 0.1, 0.01}));
    weighted->Update(Args({key, 1.0, 0.1, 0.01}));
  }
  // Both must report key 1 (the Zipf head) first.
  const std::string u = unary->Finalize().AsString();
  const std::string w = weighted->Finalize().AsString();
  EXPECT_EQ(u.substr(0, 2), "1:");
  EXPECT_EQ(w.substr(0, 2), "1:");
}

TEST_F(UdafTest, EhdsumProducesDecayedSumBelowTotal) {
  auto state = Make("ehdsum");
  double total = 0.0;
  for (int i = 1; i <= 2000; ++i) {
    const double ts = 0.05 * i;
    state->Update(Args({ts, 100.0, 0.1}));
    total += 100.0;
  }
  const double decayed = state->Finalize().AsDouble();
  EXPECT_GT(decayed, 0.0);
  EXPECT_LT(decayed, total);
}

TEST_F(UdafTest, FdquantileFindsWeightedMedian) {
  auto state = Make("fdquantile");
  // Values 0..999 uniformly, unit weights: median ~ 500.
  for (int i = 0; i < 1000; ++i) {
    state->Update(Args({static_cast<double>(i), 1.0, 0.5, 10.0}));
  }
  const auto median = static_cast<double>(state->Finalize().AsInt());
  EXPECT_NEAR(median, 500.0, 30.0);
}

TEST_F(UdafTest, FddistinctWithUnitWeightsCountsDistinct) {
  auto state = Make("fddistinct");
  Rng rng(3);
  std::set<std::uint64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.NextBounded(3000);
    truth.insert(key);
    state->Update(Args({static_cast<double>(key), 1.0}));
  }
  const double est = state->Finalize().AsDouble();
  const auto d = static_cast<double>(truth.size());
  // Level discretization (base 1.1) + KMV noise.
  EXPECT_GT(est, d * 0.8);
  EXPECT_LT(est, d * 1.2);
}

TEST_F(UdafTest, FdMinMaxTrackScaledExtremum) {
  // Definition 6 via the example stream: MIN/MAX of g(ti-L)*vi are
  // 0.09*3 = 0.27 and 0.49*8 = 3.92 before the 1/g(t-L) scaling.
  auto mn = Make("fdmin");
  auto mx = Make("fdmax");
  const double stream[][2] = {
      {105, 4}, {107, 8}, {103, 3}, {108, 6}, {104, 4}};
  for (const auto& [ts, v] : stream) {
    const double w = (ts - 100.0) * (ts - 100.0);
    mn->Update(Args({v, w}));
    mx->Update(Args({v, w}));
  }
  EXPECT_NEAR(mn->Finalize().AsDouble() / 100.0, 0.27, 1e-12);
  EXPECT_NEAR(mx->Finalize().AsDouble() / 100.0, 3.92, 1e-12);
}

TEST_F(UdafTest, FdMinMaxMergeTakesBetter) {
  auto a = Make("fdmax");
  auto b = Make("fdmax");
  a->Update(Args({4.0, 25.0}));
  b->Update(Args({8.0, 49.0}));
  a->Merge(*b);
  EXPECT_DOUBLE_EQ(a->Finalize().AsDouble(), 392.0);
}

TEST_F(UdafTest, SwhhRefusesTwoLevelMerge) {
  auto a = Make("swhh");
  auto b = Make("swhh");
  a->Update(Args({1.0, 42.0}));
  b->Update(Args({2.0, 42.0}));
  EXPECT_DEATH(a->Merge(*b), "two-level");
}

TEST_F(UdafTest, RegisterOverridesExisting) {
  AggRegistry& r = AggRegistry::Instance();
  // Re-registering the same name must replace, not duplicate.
  const auto before = r.Names().size();
  RegisterPaperUdafs();
  EXPECT_EQ(r.Names().size(), before);
}

}  // namespace
}  // namespace fwdecay::dsms
