// Tests for decayed heavy hitters (Theorem 2) and the sliding-window /
// backward-decay baseline they are compared against (Figures 4-5).

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/exact_reference.h"
#include "core/heavy_hitters.h"
#include "sketch/sliding_hh.h"
#include "util/random.h"
#include "util/zipf.h"

namespace fwdecay {
namespace {

TEST(DecayedHeavyHittersTest, PaperExample3) {
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 100.0);
  DecayedHeavyHitters<MonomialG> hh(decay, 0.01);
  const std::pair<double, std::uint64_t> stream[] = {
      {105, 4}, {107, 8}, {103, 3}, {108, 6}, {104, 4}};
  for (const auto& [ts, key] : stream) hh.Add(ts, key);
  EXPECT_NEAR(hh.DecayedTotal(110.0), 1.63, 1e-12);
  const auto result = hh.Query(110.0, 0.2);
  std::set<std::uint64_t> keys;
  for (const auto& h : result) keys.insert(h.key);
  EXPECT_EQ(keys, (std::set<std::uint64_t>{4, 6, 8}));
  // d_6 = 0.64 is the largest.
  EXPECT_EQ(result[0].key, 6u);
  EXPECT_NEAR(result[0].decayed_count, 0.64, 1e-12);
}

TEST(DecayedHeavyHittersTest, Theorem2RecallAndPrecision) {
  Rng rng(1);
  ZipfGenerator zipf(2000, 1.2);
  const double eps = 0.005;
  const double phi = 0.03;
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  DecayedHeavyHitters<MonomialG> hh(decay, eps);
  ExactDecayedReference ref;
  for (int i = 0; i < 100000; ++i) {
    const double ts = 1.0 + rng.NextDouble() * 59.0;
    const std::uint64_t key = zipf.Next(rng);
    hh.Add(ts, key);
    ref.Add(ts, key, 0.0);
  }
  const auto w = ForwardWeightFn(MonomialG(2.0), 0.0);
  const double t = 60.0;
  const double total = ref.Count(t, w);
  std::set<std::uint64_t> reported;
  for (const auto& h : hh.Query(t, phi)) reported.insert(h.key);
  // All keys with decayed count >= phi*C reported...
  for (const auto& [key, c] : ref.HeavyHitters(t, w, phi)) {
    EXPECT_TRUE(reported.contains(key)) << "missed " << key;
  }
  // ...and none below (phi - eps)*C.
  for (std::uint64_t key : reported) {
    EXPECT_GE(ref.KeyCount(t, w, key), (phi - eps) * total - 1e-9);
  }
}

TEST(DecayedHeavyHittersTest, ExponentialDecayFavorsRecentKeys) {
  // Key A dominates early, key B late: under fast exponential decay only
  // B is heavy at the end.
  ForwardDecay<ExponentialG> decay(ExponentialG(0.5), 0.0);
  DecayedHeavyHitters<ExponentialG> hh(decay, 0.01);
  for (int i = 0; i < 900; ++i) hh.Add(0.01 * i, /*key=*/1);
  for (int i = 0; i < 100; ++i) hh.Add(40.0 + 0.01 * i, /*key=*/2);
  const auto result = hh.Query(41.0, 0.5);
  ASSERT_FALSE(result.empty());
  EXPECT_EQ(result[0].key, 2u);
}

TEST(DecayedHeavyHittersTest, AddNScalesContribution) {
  ForwardDecay<MonomialG> decay(MonomialG(1.0), 0.0);
  DecayedHeavyHitters<MonomialG> a(decay, 0.1);
  DecayedHeavyHitters<MonomialG> b(decay, 0.1);
  a.AddN(5.0, 1, 3.0);
  for (int i = 0; i < 3; ++i) b.Add(5.0, 1);
  EXPECT_DOUBLE_EQ(a.Estimate(10.0, 1), b.Estimate(10.0, 1));
}

TEST(DecayedHeavyHittersTest, MergeCombinesSites) {
  // Section VI-B: two sites with the same g and landmark merge into a
  // summary of the union.
  Rng rng(2);
  ZipfGenerator zipf(200, 1.3);
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  DecayedHeavyHitters<MonomialG> site1(decay, 0.01);
  DecayedHeavyHitters<MonomialG> site2(decay, 0.01);
  ExactDecayedReference ref;
  for (int i = 0; i < 20000; ++i) {
    const double ts = 1.0 + rng.NextDouble() * 9.0;
    const std::uint64_t key = zipf.Next(rng);
    (i % 2 == 0 ? site1 : site2).Add(ts, key);
    ref.Add(ts, key, 0.0);
  }
  site1.Merge(site2);
  const auto w = ForwardWeightFn(MonomialG(2.0), 0.0);
  EXPECT_NEAR(site1.DecayedTotal(10.0), ref.Count(10.0, w), 1e-6);
  // The top key's estimate stays an upper bound within combined error.
  const auto top_true = ref.HeavyHitters(10.0, w, 0.05);
  ASSERT_FALSE(top_true.empty());
  EXPECT_GE(site1.Estimate(10.0, top_true[0].first),
            top_true[0].second - 1e-9);
}

TEST(DecayedHeavyHittersTest, RescaleLandmarkKeepsAnswers) {
  ForwardDecay<ExponentialG> decay(ExponentialG(0.3), 0.0);
  DecayedHeavyHitters<ExponentialG> hh(decay, 0.05);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    hh.Add(rng.NextDouble() * 20.0, rng.NextBounded(50));
  }
  const double total_before = hh.DecayedTotal(20.0);
  const double est_before = hh.Estimate(20.0, 7);
  hh.RescaleLandmark(15.0);
  EXPECT_NEAR(hh.DecayedTotal(20.0), total_before, total_before * 1e-9);
  EXPECT_NEAR(hh.Estimate(20.0, 7), est_before, est_before * 1e-9 + 1e-12);
}

TEST(DecayedHeavyHittersTest, MemoryIsOneOverEps) {
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  DecayedHeavyHitters<MonomialG> hh(decay, 0.01);
  Rng rng(4);
  for (int i = 0; i < 100000; ++i) {
    hh.Add(1.0 + rng.NextDouble() * 10.0, rng.NextBounded(1u << 20));
  }
  // 100 counters regardless of 2^20 distinct keys.
  EXPECT_LE(hh.sketch().size(), 100u);
}

// --- Sliding-window / backward baseline -------------------------------------

TEST(SlidingWindowHeavyHittersTest, FindsWindowHeavyKeys) {
  Rng rng(5);
  SlidingWindowHeavyHitters swhh(0.01);
  // Key 1 heavy in the old half, key 2 heavy in the recent half.
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += 0.001;
    swhh.Update(t, rng.NextBernoulli(0.4) ? 1 : 100 + rng.NextBounded(500));
  }
  for (int i = 0; i < 20000; ++i) {
    t += 0.001;
    swhh.Update(t, rng.NextBernoulli(0.4) ? 2 : 600 + rng.NextBounded(500));
  }
  // Window covering only the recent half: key 2 heavy, key 1 not.
  const auto recent = swhh.QueryWindow(t, 20.0, 0.2);
  ASSERT_FALSE(recent.empty());
  EXPECT_EQ(recent[0].key, 2u);
  for (const auto& h : recent) EXPECT_NE(h.key, 1u);
  // Window covering everything: both heavy.
  std::set<std::uint64_t> all_keys;
  for (const auto& h : swhh.QueryWindow(t, 41.0, 0.15)) {
    all_keys.insert(h.key);
  }
  EXPECT_TRUE(all_keys.contains(1));
  EXPECT_TRUE(all_keys.contains(2));
}

TEST(SlidingWindowHeavyHittersTest, DecayedQueryMatchesExactReference) {
  Rng rng(6);
  ZipfGenerator zipf(300, 1.4);
  SlidingWindowHeavyHitters swhh(0.02);
  ExactDecayedReference ref;
  double t = 0.0;
  for (int i = 0; i < 30000; ++i) {
    t += rng.NextExponential(500.0);
    const std::uint64_t key = zipf.Next(rng);
    swhh.Update(t, key);
    ref.Add(t, key, 0.0);
  }
  PolynomialF f(2.0);
  const auto w = BackwardWeightFn(f);
  const auto exact_hh = ref.HeavyHitters(t, w, 0.05);
  std::set<std::uint64_t> reported;
  for (const auto& h : swhh.QueryDecayed(
           t, [&](double age) { return f.F(age); }, 0.04)) {
    reported.insert(h.key);
  }
  for (const auto& [key, c] : exact_hh) {
    EXPECT_TRUE(reported.contains(key)) << "missed decayed-heavy key " << key;
  }
}

TEST(SlidingWindowHeavyHittersTest, StateGrowsWithDistinctKeys) {
  // The cost the paper highlights: memory scales with tracked keys, and
  // does NOT shrink as eps grows (Figure 4(c,d)).
  Rng rng(7);
  ZipfGenerator zipf(5000, 1.1);
  SlidingWindowHeavyHitters coarse(0.1);
  SlidingWindowHeavyHitters fine(0.01);
  double t = 0.0;
  for (int i = 0; i < 50000; ++i) {
    t += 0.0001;
    const std::uint64_t key = zipf.Next(rng);
    coarse.Update(t, key);
    fine.Update(t, key);
  }
  EXPECT_GT(coarse.TrackedKeys(), 100u);
  // Coarser eps prunes MORE aggressively yet still stores far more than
  // the O(1/eps) counters of SpaceSaving.
  EXPECT_GT(coarse.MemoryBytes(), 10u * 1024u);
  EXPECT_GE(fine.MemoryBytes(), coarse.MemoryBytes());
}

TEST(SlidingWindowHeavyHittersTest, PruneNeverDropsHeavyKeys) {
  Rng rng(8);
  SlidingWindowHeavyHitters swhh(0.05);
  double t = 0.0;
  // One persistent heavy key within a churn of singletons.
  for (int i = 0; i < 30000; ++i) {
    t += 0.001;
    swhh.Update(t, i % 3 == 0 ? 7u : 1000000u + static_cast<std::uint64_t>(i));
  }
  const auto hh = swhh.QueryWindow(t, t + 1.0, 0.2);
  ASSERT_FALSE(hh.empty());
  EXPECT_EQ(hh[0].key, 7u);
}

}  // namespace
}  // namespace fwdecay
