// Meta-tests for the schedule-exploring model checker (util/sched.h,
// DESIGN.md §10) — the checker is itself checked:
//
//   * three seeded known-racy fixtures (a torn two-word publish behind
//     a relaxed flag, an ABA on a mock free-list, a lock-inversion
//     pair) that exploration MUST catch, next to fixed variants that
//     must survive full bounded exploration;
//   * replay-token determinism: a failing schedule's token re-executes
//     the same interleaving and reports the same failure;
//   * a schedule-explored differential test: two ingester threads feed
//     a ShardedQueryExecution and Finish() must stay bit-exact against
//     the single-threaded reference on every explored schedule.
//
// The fixtures use sched::Model* types directly, so they run the real
// model in EVERY build. The engine differential additionally routes
// fwdecay::Mutex / sched::Atomic through the model when the binary is
// built with -DFWDECAY_SCHED=ON (the CI sched-explore job); in the
// default build it degrades to near-sequential schedules around the
// explicit Yield() points, which still exercises spawn/join ordering.
//
// Env knobs (scripts/reproduce.sh passes both through):
//   FWDECAY_SCHED_SEED    seed for the random-mode differential walk
//   FWDECAY_SCHED_REPLAY  FWSCHED1 token: deterministically re-run that
//                         schedule against the fixture it names

#include <array>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dsms/batch.h"
#include "dsms/engine.h"
#include "dsms/packet.h"
#include "dsms/udafs.h"
#include "dsms/value.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/sched.h"

namespace fwdecay {
namespace {

using dsms::CompiledQuery;
using dsms::Packet;
using dsms::PacketBatch;
using dsms::ResultSet;
using dsms::ShardedQueryExecution;
using dsms::Value;

// --------------------------------------------------------------------
// Fixture 1: torn two-word publish. The writer fills two data words and
// raises a flag; the reader trusts the flag. With a relaxed flag there
// is no happens-before edge, so a reader may observe the flag while one
// data word is still stale — a reordering TSan only reports if the
// unlucky schedule actually runs, but which the weak-memory model
// enumerates deliberately.

void TornPublishBody(bool fixed) {
  sched::ModelAtomic<std::uint64_t> a{0};
  sched::ModelAtomic<std::uint64_t> b{0};
  sched::ModelAtomic<bool> ready{false};
  sched::Thread writer([&] {
    a.store(1, std::memory_order_relaxed);
    b.store(1, std::memory_order_relaxed);
    ready.store(true, fixed ? std::memory_order_release
                            : std::memory_order_relaxed);
  });
  if (ready.load(fixed ? std::memory_order_acquire
                       : std::memory_order_relaxed)) {
    const std::uint64_t got_a = a.load(std::memory_order_relaxed);
    const std::uint64_t got_b = b.load(std::memory_order_relaxed);
    sched::Expect(got_a == 1 && got_b == 1,
                  "torn publish: flag observed but a data word is stale");
  }
  writer.Join();
}

// --------------------------------------------------------------------
// Fixture 2: ABA on a mock free-list (Treiber-stack shape). `head`
// packs {generation tag, slot index}; the buggy variant leaves the tag
// at zero, so a CAS cannot tell "A" from "A after pop-pop-push" and
// happily re-links a node another thread still owns.

class MockFreeList {
 public:
  static constexpr int kSlots = 3;

  explicit MockFreeList(bool tagged) : tagged_(tagged) {
    for (int i = 0; i < kSlots; ++i) next_[i] = i + 1 < kSlots ? i + 1 : -1;
    head_.store(Pack(0, 0), std::memory_order_relaxed);
  }

  int Pop() {
    for (;;) {
      std::uint64_t h = head_.load(std::memory_order_acquire);
      const int idx = Index(h);
      if (idx < 0) return -1;
      const int next = next_[idx];  // <- the read the ABA invalidates
      std::uint64_t want = Pack(next, tagged_ ? Tag(h) + 1 : 0);
      if (head_.compare_exchange_strong(h, want,
                                        std::memory_order_acq_rel)) {
        return idx;
      }
    }
  }

  void Push(int idx) {
    for (;;) {
      std::uint64_t h = head_.load(std::memory_order_acquire);
      next_[idx] = Index(h);
      std::uint64_t want = Pack(idx, tagged_ ? Tag(h) + 1 : 0);
      if (head_.compare_exchange_strong(h, want,
                                        std::memory_order_acq_rel)) {
        return;
      }
    }
  }

  /// Post-quiescence audit: every slot must be reachable exactly once —
  /// either on the list or held by a popper. After a successful ABA the
  /// list re-links a held node, so some slot shows up twice.
  void Validate(const std::vector<int>& held) const {
    std::array<int, kSlots> seen{};
    for (int idx : held) {
      if (idx >= 0) ++seen[static_cast<std::size_t>(idx)];
    }
    int idx = Index(head_.load(std::memory_order_acquire));
    for (int hops = 0; idx >= 0 && hops <= kSlots; ++hops) {
      ++seen[static_cast<std::size_t>(idx)];
      idx = next_[idx];
    }
    for (int i = 0; i < kSlots; ++i) {
      sched::Expect(seen[static_cast<std::size_t>(i)] == 1,
                    "ABA: a free-list slot is lost or doubly reachable");
    }
  }

 private:
  static std::uint64_t Pack(int index, std::uint64_t tag) {
    // index -1 (empty) packs as 0 in the low half.
    return (tag << 32) | static_cast<std::uint32_t>(index + 1);
  }
  static int Index(std::uint64_t packed) {
    return static_cast<int>(packed & 0xffffffffu) - 1;
  }
  static std::uint64_t Tag(std::uint64_t packed) { return packed >> 32; }

  const bool tagged_;
  std::array<int, kSlots> next_{};  // plain: the scheduler serializes
  sched::ModelAtomic<std::uint64_t> head_{0};
};

void AbaBody(bool tagged) {
  MockFreeList list(tagged);
  int racy_pop = -1;
  sched::Thread racer([&] { racy_pop = list.Pop(); });
  // Main: pop A, pop B, push A back — restoring the same head *index*
  // with different list contents underneath it.
  const int a = list.Pop();
  const int b = list.Pop();
  if (a >= 0) list.Push(a);
  racer.Join();
  list.Validate({racy_pop, b});
}

// --------------------------------------------------------------------
// Fixture 3: lock inversion. Two ModelMutexes taken in opposite orders
// by two threads; the explorer must find the interleaving where each
// thread holds one lock and wants the other, and report it as a
// deadlock instead of hanging the test binary.

void LockInversionBody(bool consistent_order) {
  sched::ModelMutex mu_a;
  sched::ModelMutex mu_b;
  sched::Thread other([&] {
    if (consistent_order) {
      sched::ModelMutexLock lock_a(mu_a);
      sched::ModelMutexLock lock_b(mu_b);
    } else {
      sched::ModelMutexLock lock_b(mu_b);
      sched::ModelMutexLock lock_a(mu_a);
    }
  });
  {
    sched::ModelMutexLock lock_a(mu_a);
    sched::ModelMutexLock lock_b(mu_b);
  }
  other.Join();
}

// --------------------------------------------------------------------
// Library fixture: concurrent DecayedRate marks. All marks share one
// timestamp, so the decayed count is schedule-independent (identical
// weights accumulate into a single sum in program order) and must land
// bit-exactly on the single-threaded reference value in every schedule.

void DecayedRateBody(double want_bits_source) {
  metrics::impl::DecayedRate rate(/*alpha=*/0.05);
  sched::Thread marker([&] {
    rate.Mark(1.0);
    sched::Yield();
    rate.Mark(1.0);
  });
  rate.Mark(1.0);
  sched::Yield();
  rate.Mark(1.0);
  marker.Join();
  const double got = rate.DecayedCountValue(1.0);
  sched::Expect(std::bit_cast<std::uint64_t>(got) ==
                    std::bit_cast<std::uint64_t>(want_bits_source),
                "DecayedRate: concurrent marks diverged from reference");
}

// --------------------------------------------------------------------
// Explorer meta-tests

TEST(SchedExploreTest, TornPublishBuggyCaught) {
  sched::ExploreOptions options;
  options.name = "torn_publish";
  const sched::ExploreResult result =
      sched::Explore(options, [] { TornPublishBody(/*fixed=*/false); });
  ASSERT_TRUE(result.failed)
      << "explored " << result.schedules_run
      << " schedules without catching the torn publish";
  EXPECT_NE(result.failure.find("torn publish"), std::string::npos)
      << result.failure;
  EXPECT_FALSE(result.replay_token.empty());
}

TEST(SchedExploreTest, TornPublishFixedPassesExhaustive) {
  sched::ExploreOptions options;
  options.name = "torn_publish_fixed";
  const sched::ExploreResult result =
      sched::Explore(options, [] { TornPublishBody(/*fixed=*/true); });
  EXPECT_FALSE(result.failed) << result.failure << "\nreplay: "
                              << result.replay_token;
  EXPECT_TRUE(result.exhausted)
      << "fixture grew past the budget (" << result.schedules_run
      << " schedules) — shrink it so the pass is a *proof*";
  EXPECT_GT(result.schedules_run, 1u);
}

TEST(SchedExploreTest, AbaBuggyCaught) {
  sched::ExploreOptions options;
  options.name = "aba";
  options.max_schedules = 200000;
  const sched::ExploreResult result =
      sched::Explore(options, [] { AbaBody(/*tagged=*/false); });
  ASSERT_TRUE(result.failed)
      << "explored " << result.schedules_run
      << " schedules without catching the ABA";
  EXPECT_NE(result.failure.find("ABA"), std::string::npos) << result.failure;
}

TEST(SchedExploreTest, AbaTaggedPassesExhaustive) {
  sched::ExploreOptions options;
  options.name = "aba_fixed";
  options.max_schedules = 500000;
  const sched::ExploreResult result =
      sched::Explore(options, [] { AbaBody(/*tagged=*/true); });
  EXPECT_FALSE(result.failed) << result.failure << "\nreplay: "
                              << result.replay_token;
  EXPECT_TRUE(result.exhausted)
      << "fixture grew past the budget (" << result.schedules_run
      << " schedules)";
}

TEST(SchedExploreTest, LockInversionDeadlockCaught) {
  sched::ExploreOptions options;
  options.name = "lock_inversion";
  const sched::ExploreResult result =
      sched::Explore(options, [] { LockInversionBody(false); });
  ASSERT_TRUE(result.failed)
      << "explored " << result.schedules_run
      << " schedules without finding the inversion deadlock";
  EXPECT_NE(result.failure.find("deadlock"), std::string::npos)
      << result.failure;
}

TEST(SchedExploreTest, LockOrderConsistentPassesExhaustive) {
  sched::ExploreOptions options;
  options.name = "lock_order_fixed";
  const sched::ExploreResult result =
      sched::Explore(options, [] { LockInversionBody(true); });
  EXPECT_FALSE(result.failed) << result.failure;
  EXPECT_TRUE(result.exhausted);
  EXPECT_GT(result.schedules_run, 1u);
}

TEST(SchedExploreTest, DecayedRateConcurrentMarksBitExact) {
  // Single-threaded reference: same four marks, same timestamp.
  metrics::impl::DecayedRate reference(/*alpha=*/0.05);
  for (int i = 0; i < 4; ++i) reference.Mark(1.0);
  const double want = reference.DecayedCountValue(1.0);

  sched::ExploreOptions options;
  options.name = "decayed_rate";
  options.max_schedules = 50000;
  const sched::ExploreResult result =
      sched::Explore(options, [&] { DecayedRateBody(want); });
  EXPECT_FALSE(result.failed) << result.failure << "\nreplay: "
                              << result.replay_token;
  EXPECT_GT(result.schedules_run, 1u);
}

// --------------------------------------------------------------------
// Replay tokens

TEST(SchedReplayTest, TokenParses) {
  std::string name;
  std::string error;
  EXPECT_TRUE(
      sched::ParseReplayToken("FWSCHED1:torn_publish:h4:0.1.2", &name, &error))
      << error;
  EXPECT_EQ(name, "torn_publish");
  EXPECT_TRUE(sched::ParseReplayToken("FWSCHED1:x:h1:-", &name, &error))
      << error;
  EXPECT_EQ(name, "x");
}

TEST(SchedReplayTest, TokenRejectsGarbage) {
  std::string name;
  std::string error;
  EXPECT_FALSE(sched::ParseReplayToken("", &name, &error));
  EXPECT_FALSE(sched::ParseReplayToken("nope", &name, &error));
  EXPECT_FALSE(sched::ParseReplayToken("FWSCHED2:x:h4:-", &name, &error));
  EXPECT_FALSE(sched::ParseReplayToken("FWSCHED1:Bad Name:h4:-", &name,
                                       &error));
  EXPECT_FALSE(sched::ParseReplayToken("FWSCHED1:x:h0:-", &name, &error));
  EXPECT_FALSE(sched::ParseReplayToken("FWSCHED1:x:4:-", &name, &error));
  EXPECT_FALSE(sched::ParseReplayToken("FWSCHED1:x:h4:zz", &name, &error));
  EXPECT_FALSE(sched::ParseReplayToken("FWSCHED1:x:h4:", &name, &error));
}

TEST(SchedReplayTest, FailingScheduleReplaysDeterministically) {
  sched::ExploreOptions options;
  options.name = "torn_publish";
  const sched::ExploreResult found =
      sched::Explore(options, [] { TornPublishBody(false); });
  ASSERT_TRUE(found.failed);
  ASSERT_FALSE(found.replay_token.empty());

  for (int attempt = 0; attempt < 2; ++attempt) {
    const sched::ExploreResult replay = sched::Replay(
        found.replay_token, "torn_publish", [] { TornPublishBody(false); });
    EXPECT_EQ(replay.schedules_run, 1u);
    ASSERT_TRUE(replay.failed)
        << "replay attempt " << attempt << " did not reproduce";
    EXPECT_EQ(replay.failure, found.failure);
    EXPECT_EQ(replay.replay_token, found.replay_token);
  }
}

TEST(SchedReplayTest, DeadlockReplaysDeterministically) {
  sched::ExploreOptions options;
  options.name = "lock_inversion";
  const sched::ExploreResult found =
      sched::Explore(options, [] { LockInversionBody(false); });
  ASSERT_TRUE(found.failed);
  const sched::ExploreResult replay = sched::Replay(
      found.replay_token, "lock_inversion", [] { LockInversionBody(false); });
  ASSERT_TRUE(replay.failed);
  EXPECT_EQ(replay.failure, found.failure);
}

TEST(SchedReplayTest, PassingScheduleReplaysClean) {
  // A token for the all-zeros (sequential) schedule of a clean fixture:
  // replay must run it once and report success.
  const sched::ExploreResult replay = sched::Replay(
      "FWSCHED1:torn_publish_fixed:h4:-", "torn_publish_fixed",
      [] { TornPublishBody(true); });
  EXPECT_EQ(replay.schedules_run, 1u);
  EXPECT_FALSE(replay.failed) << replay.failure;
}

// --------------------------------------------------------------------
// Schedule-explored engine differential: two ingesters feed disjoint
// group-key ranges (so every group's update sequence is fixed no matter
// the interleaving) into a 2-shard execution, and the merged Finish()
// must be bit-identical to the single-threaded reference on EVERY
// explored schedule. Under -DFWDECAY_SCHED=ON the shard mutexes and the
// router counter run through the model, so this explores real
// router -> shard -> Finish() merge interleavings; in the default build
// it still explores spawn/join orderings around the Yield() points.

constexpr char kShardQuery[] =
    "select srcPort, count(*), sum(len) from TCP group by srcPort";

std::vector<PacketBatch> MakeDisjointBatches(std::uint16_t port_base,
                                             std::size_t n_packets,
                                             std::size_t batch_capacity) {
  Rng rng(0x5eedULL + port_base);
  std::vector<PacketBatch> batches;
  PacketBatch batch(batch_capacity);
  double t = 0.0;
  for (std::size_t i = 0; i < n_packets; ++i) {
    t += 0.001;
    Packet p;
    p.time = t;
    p.src_ip = 0x0a000001u + static_cast<std::uint32_t>(i % 5);
    p.dest_ip = 0x0a00ff01u;
    p.src_port = static_cast<std::uint16_t>(port_base + i % 4);
    p.dest_port = 443;
    p.len = 40 + static_cast<std::uint32_t>(rng.NextBounded(1400));
    p.protocol = dsms::kProtoTcp;
    batch.Append(p);
    if (batch.full()) {
      batches.push_back(std::move(batch));
      batch = PacketBatch(batch_capacity);
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

bool BitIdentical(const ResultSet& got, const ResultSet& want) {
  if (got.columns != want.columns || got.rows.size() != want.rows.size()) {
    return false;
  }
  for (std::size_t r = 0; r < got.rows.size(); ++r) {
    if (got.rows[r].size() != want.rows[r].size()) return false;
    for (std::size_t c = 0; c < got.rows[r].size(); ++c) {
      const Value& a = got.rows[r][c];
      const Value& b = want.rows[r][c];
      if (a.is_double() != b.is_double()) return false;
      if (a.is_double()) {
        if (std::bit_cast<std::uint64_t>(a.AsDouble()) !=
            std::bit_cast<std::uint64_t>(b.AsDouble())) {
          return false;
        }
      } else if (!(a == b)) {
        return false;
      }
    }
  }
  return true;
}

TEST(SchedShardedDifferentialTest, FinishBitExactUnderTwoIngesterExploration) {
  dsms::RegisterPaperUdafs();
  std::string error;
  auto plan = CompiledQuery::Compile(kShardQuery, &error, {});
  ASSERT_NE(plan, nullptr) << error;

  const std::vector<PacketBatch> feed_a =
      MakeDisjointBatches(/*port_base=*/1000, /*n_packets=*/32, 16);
  const std::vector<PacketBatch> feed_b =
      MakeDisjointBatches(/*port_base=*/2000, /*n_packets=*/32, 16);

  // Single-threaded reference: feed order across ingesters is
  // irrelevant because the port ranges are disjoint — each group sees
  // exactly one ingester's update sequence.
  auto reference = plan->NewExecution();
  for (const PacketBatch& b : feed_a) reference->Consume(b);
  for (const PacketBatch& b : feed_b) reference->Consume(b);
  const ResultSet want = reference->Finish();
  const std::uint64_t want_offered = 64;

  const auto body = [&] {
    ShardedQueryExecution sharded(*plan, /*num_shards=*/2);
    sched::Thread ingester_a([&] {
      for (const PacketBatch& b : feed_a) {
        sharded.Consume(b);
        sched::Yield();
      }
    });
    sched::Thread ingester_b([&] {
      for (const PacketBatch& b : feed_b) {
        sharded.Consume(b);
        sched::Yield();
      }
    });
    ingester_a.Join();
    ingester_b.Join();
    sched::Expect(sharded.packets_consumed() == want_offered,
                  "sharded merge: router dropped or double-counted packets");
    sched::Expect(BitIdentical(sharded.Finish(), want),
                  "sharded merge: Finish() diverged from the "
                  "single-threaded reference under this schedule");
  };

  // Seeded random walk (FWDECAY_SCHED_SEED reproduces CI locally), plus
  // a small exhaustive prefix of the schedule tree.
  sched::ExploreOptions random_options;
  random_options.name = "sharded_merge";
  random_options.mode = sched::Mode::kRandom;
  random_options.max_schedules = 32;
  random_options.seed = 0xf00dULL;
  if (const char* env = std::getenv("FWDECAY_SCHED_SEED");
      env != nullptr && env[0] != '\0') {
    random_options.seed = std::strtoull(env, nullptr, 0);
  }
  const sched::ExploreResult random_result =
      sched::Explore(random_options, body);
  EXPECT_FALSE(random_result.failed)
      << random_result.failure << "\nseed: " << random_options.seed
      << "\nreplay: " << random_result.replay_token;

  sched::ExploreOptions dfs_options;
  dfs_options.name = "sharded_merge";
  dfs_options.max_schedules = 48;
  const sched::ExploreResult dfs_result = sched::Explore(dfs_options, body);
  EXPECT_FALSE(dfs_result.failed)
      << dfs_result.failure << "\nreplay: " << dfs_result.replay_token;
}

// --------------------------------------------------------------------
// CI-token reproduction entry point: with FWDECAY_SCHED_REPLAY set,
// re-run exactly that schedule against the fixture the token names
// (scripts/reproduce.sh forwards the env var).

TEST(SchedReplayTest, EnvTokenReplay) {
  const char* token = std::getenv("FWDECAY_SCHED_REPLAY");
  if (token == nullptr || token[0] == '\0') {
    GTEST_SKIP() << "FWDECAY_SCHED_REPLAY not set";
  }
  std::string name;
  std::string error;
  ASSERT_TRUE(sched::ParseReplayToken(token, &name, &error)) << error;

  std::function<void()> body;
  if (name == "torn_publish") {
    body = [] { TornPublishBody(false); };
  } else if (name == "torn_publish_fixed") {
    body = [] { TornPublishBody(true); };
  } else if (name == "aba") {
    body = [] { AbaBody(false); };
  } else if (name == "aba_fixed") {
    body = [] { AbaBody(true); };
  } else if (name == "lock_inversion") {
    body = [] { LockInversionBody(false); };
  } else if (name == "lock_order_fixed") {
    body = [] { LockInversionBody(true); };
  } else {
    FAIL() << "token names unknown fixture '" << name
           << "' (engine fixtures cannot be replayed standalone; re-run "
              "the owning test with the same FWDECAY_SCHED_SEED instead)";
  }
  const sched::ExploreResult replay = sched::Replay(token, name.c_str(), body);
  EXPECT_FALSE(replay.failed)
      << "replayed schedule fails: " << replay.failure;
}

}  // namespace
}  // namespace fwdecay
