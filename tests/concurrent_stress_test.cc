// TSan-targeted stress tests for the annotated concurrency facades:
// ConcurrentDecayingReservoir and ConcurrentQueryExecution.
//
// These tests are about *interleavings*, not statistics: many threads
// hammer Update/Snapshot/size/alpha concurrently, and a sharded
// configuration exercises the MergeSnapshots combination path while the
// shards are still being written. Run under -DFWDECAY_SANITIZE=thread
// they are the data-race gate for the concurrency layer; under
// address;undefined they double as a heap-safety torture test. The
// assertions are deliberately weak structural invariants (sizes, value
// ranges, ordering of percentiles) — anything stronger would race with
// the writers by design. Under -DFWDECAY_AUDIT=ON dedicated auditor
// threads additionally run the full CheckInvariants() representation
// audits between writer ops (under the facade lock), interleaving the
// audit reads with concurrent mutation.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_reservoir.h"
#include "core/decaying_reservoir.h"
#include "dsms/engine.h"
#include "dsms/packet.h"
#include "util/audit.h"

namespace fwdecay {
namespace {

// Values are injected from [lo, hi] so readers can bound what they see.
constexpr double kLo = 1.0;
constexpr double kHi = 2.0;

void CheckSnapshotInvariants(const ReservoirSnapshot& snap, std::size_t k) {
  ASSERT_LE(snap.size, k);
  ASSERT_EQ(snap.size, snap.values.size());
  if (snap.size == 0) return;
  ASSERT_GE(snap.min, kLo);
  ASSERT_LE(snap.max, kHi);
  ASSERT_LE(snap.min, snap.median);
  ASSERT_LE(snap.median, snap.p75);
  ASSERT_LE(snap.p75, snap.p95);
  ASSERT_LE(snap.p95, snap.p99);
  ASSERT_LE(snap.p99, snap.max);
  ASSERT_GE(snap.mean, snap.min);
  ASSERT_LE(snap.mean, snap.max);
}

// 6 updaters + 2 snapshotters + 1 metadata reader + the main thread all
// share one reservoir: the single-mutex facade must serialize them with
// no data races and no torn snapshots.
TEST(ConcurrentReservoirStressTest, UpdatersVsSnapshottersSingleReservoir) {
  // static: lambdas below use these without captures.
  static constexpr std::size_t kCapacity = 256;
  static constexpr int kUpdaters = 6;
  static constexpr int kSnapshotters = 2;
  static constexpr int kUpdatesPerThread = 20000;
  ConcurrentDecayingReservoir reservoir(kCapacity, 0.015, 0.0);

  std::atomic<bool> done{false};
  std::atomic<int> updates{0};
  std::vector<std::thread> threads;
  threads.reserve(kUpdaters + kSnapshotters + 1);

  for (int u = 0; u < kUpdaters; ++u) {
    threads.emplace_back([&reservoir, &updates, u] {
      // Per-thread value stream inside [kLo, kHi]; timestamps advance so
      // decayed weights span many orders of magnitude.
      for (int i = 0; i < kUpdatesPerThread; ++i) {
        const double t = static_cast<double>(i) * 0.01;
        const double frac =
            static_cast<double>((i * 2654435761u + u) % 1000) / 1000.0;
        reservoir.Update(t, kLo + (kHi - kLo) * frac);
        updates.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int s = 0; s < kSnapshotters; ++s) {
    threads.emplace_back([&reservoir, &done] {
      while (!done.load(std::memory_order_acquire)) {
        CheckSnapshotInvariants(reservoir.Snapshot(), kCapacity);
        // Full representation audit interleaved with the writers
        // (audit builds only; takes the facade lock internally).
        FWDECAY_AUDIT_INVARIANTS(reservoir);
      }
    });
  }
  threads.emplace_back([&reservoir, &done] {  // metadata reader
    while (!done.load(std::memory_order_acquire)) {
      ASSERT_DOUBLE_EQ(reservoir.alpha(), 0.015);  // lock-free const read
      ASSERT_DOUBLE_EQ(reservoir.start(), 0.0);
      ASSERT_LE(reservoir.size(), kCapacity);
    }
  });

  for (int i = 0; i < kUpdaters; ++i) threads[i].join();
  done.store(true, std::memory_order_release);
  for (std::size_t i = kUpdaters; i < threads.size(); ++i) threads[i].join();

  EXPECT_EQ(updates.load(), kUpdaters * kUpdatesPerThread);
  const ReservoirSnapshot final_snap = reservoir.Snapshot();
  EXPECT_EQ(final_snap.size, kCapacity);  // far more updates than slots
}

// The sharded deployment from the class comment: 8 shards fed by 8
// writers while a merger thread continuously combines per-shard
// snapshots with MergeSnapshots. 10 threads total.
TEST(ConcurrentReservoirStressTest, ShardedMergeWhileWriting) {
  static constexpr std::size_t kCapacity = 128;
  static constexpr int kShards = 8;
  static constexpr int kUpdatesPerShard = 15000;
  std::deque<ConcurrentDecayingReservoir> shards;  // not movable: no vector
  for (int i = 0; i < kShards; ++i) {
    // Same (k, alpha, start) across shards — the compatibility condition
    // MergeSnapshots documents; distinct seeds decorrelate the samples.
    shards.emplace_back(kCapacity, 0.015, 0.0,
                        static_cast<std::uint64_t>(i) + 1);
  }

  std::atomic<bool> done{false};
  std::atomic<int> merges{0};
  std::vector<std::thread> threads;
  threads.reserve(kShards + 1);

  for (int s = 0; s < kShards; ++s) {
    threads.emplace_back([&shards, s] {
      for (int i = 0; i < kUpdatesPerShard; ++i) {
        const double t = static_cast<double>(i) * 0.02;
        const double frac =
            static_cast<double>((i * 40503u + s * 997u) % 1000) / 1000.0;
        shards[s].Update(t, kLo + (kHi - kLo) * frac);
      }
    });
  }
  threads.emplace_back([&shards, &done, &merges] {  // merger
    while (!done.load(std::memory_order_acquire)) {
      std::vector<ReservoirSnapshot> snaps;
      snaps.reserve(kShards);
      for (auto& shard : shards) {
        FWDECAY_AUDIT_INVARIANTS(shard);
        snaps.push_back(shard.Snapshot());
      }
      const ReservoirSnapshot combined = MergeSnapshots(snaps);
      CheckSnapshotInvariants(combined, kShards * kCapacity);
      std::size_t total = 0;
      for (const auto& s : snaps) total += s.size;
      ASSERT_EQ(combined.size, total);
      merges.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (int i = 0; i < kShards; ++i) threads[i].join();
  done.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_GE(merges.load(), 1);
  std::vector<ReservoirSnapshot> snaps;
  for (auto& shard : shards) snaps.push_back(shard.Snapshot());
  const ReservoirSnapshot combined = MergeSnapshots(snaps);
  EXPECT_EQ(combined.size, static_cast<std::size_t>(kShards) * kCapacity);
  CheckSnapshotInvariants(combined, kShards * kCapacity);
}

// 4 ingest threads feed one standing two-level query through the
// ConcurrentQueryExecution facade while an auditor thread interleaves
// stats reads (and, under -DFWDECAY_AUDIT=ON, full group-table audits)
// with the writers. Two-level mode with few slots forces continuous
// low->high evictions under contention.
TEST(ConcurrentQueryExecutionStressTest, IngestersVsAuditorTwoLevelQuery) {
  static constexpr int kIngesters = 4;
  static constexpr int kPacketsPerThread = 20000;
  static constexpr std::uint32_t kDestPorts = 64;

  static constexpr std::size_t kLowSlots = 16;  // << groups: evict a lot

  std::string error;
  dsms::CompiledQuery::Options options;
  options.two_level = true;
  options.low_level_slots = kLowSlots;
  const std::unique_ptr<dsms::CompiledQuery> plan = dsms::CompiledQuery::Compile(
      "select destPort, count(*) from TCP group by destPort", &error, options);
  ASSERT_NE(plan, nullptr) << error;
  dsms::ConcurrentQueryExecution exec(*plan);

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  threads.reserve(kIngesters + 1);
  for (int u = 0; u < kIngesters; ++u) {
    threads.emplace_back([&exec, u] {
      for (int i = 0; i < kPacketsPerThread; ++i) {
        dsms::Packet p;
        p.time = static_cast<double>(i) * 0.001;
        p.src_ip = static_cast<std::uint32_t>(u + 1);
        p.dest_ip = 0x0a000001u;
        p.src_port = static_cast<std::uint16_t>(1024 + u);
        p.dest_port =
            static_cast<std::uint16_t>((i * 2654435761u + u) % kDestPorts);
        p.len = 64;
        // Every fifth packet is UDP: the TCP filter must drop it, so
        // tuples_aggregated stays strictly below packets_consumed.
        p.protocol = (i % 5 == 0) ? dsms::kProtoUdp : dsms::kProtoTcp;
        exec.Consume(p);
      }
    });
  }
  threads.emplace_back([&exec, &done] {  // auditor / stats reader
    while (!done.load(std::memory_order_acquire)) {
      FWDECAY_AUDIT_INVARIANTS(exec);
      // GroupCount spans both levels; an evicted key can re-enter the
      // low table, so each of the kLowSlots may hold one duplicate of a
      // group already promoted to the high table.
      ASSERT_LE(exec.GroupCount(),
                static_cast<std::size_t>(kDestPorts) + kLowSlots);
      // tuples first: ASSERT_LE's argument evaluation order is
      // unspecified, and reading packets_consumed() before the tuple
      // count races with concurrent ingest between the two reads.
      const std::uint64_t tuples = exec.tuples_aggregated();
      ASSERT_LE(tuples, exec.packets_consumed());
    }
  });

  for (int i = 0; i < kIngesters; ++i) threads[i].join();
  done.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(exec.packets_consumed(),
            static_cast<std::uint64_t>(kIngesters) * kPacketsPerThread);
  exec.CheckInvariants();  // direct call: audits in every build, not just AUDIT
  const dsms::ResultSet result = exec.Finish();
  EXPECT_EQ(result.rows.size(), static_cast<std::size_t>(kDestPorts));
}

// 4 ingest threads each build their own PacketBatches and feed one
// ShardedQueryExecution (4 shards) while an auditor thread interleaves
// shard-summed stats reads and (under -DFWDECAY_AUDIT=ON) full
// per-shard group-table audits. The router runs lock-free on every
// ingest thread; only the per-shard apply takes a lock, so this is the
// contention pattern the shard layer exists for. Two-level mode with
// few slots keeps eviction traffic flowing inside every shard.
TEST(ShardedQueryExecutionStressTest, MultiIngesterShardedTwoLevelQuery) {
  static constexpr int kIngesters = 4;
  static constexpr std::size_t kShards = 4;
  static constexpr int kBatchesPerThread = 100;
  static constexpr std::size_t kBatchSize = 256;
  static constexpr std::uint32_t kDestPorts = 64;
  static constexpr std::size_t kLowSlots = 16;  // << groups: evict a lot

  std::string error;
  dsms::CompiledQuery::Options options;
  options.two_level = true;
  options.low_level_slots = kLowSlots;
  const std::unique_ptr<dsms::CompiledQuery> plan =
      dsms::CompiledQuery::Compile(
          "select destPort, count(*), sum(len) from TCP group by destPort",
          &error, options);
  ASSERT_NE(plan, nullptr) << error;
  dsms::ShardedQueryExecution sharded(*plan, kShards);

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  threads.reserve(kIngesters + 1);
  for (int u = 0; u < kIngesters; ++u) {
    threads.emplace_back([&sharded, u] {
      dsms::PacketBatch batch(kBatchSize);
      for (int b = 0; b < kBatchesPerThread; ++b) {
        batch.Clear();
        for (std::size_t i = 0; i < kBatchSize; ++i) {
          const std::size_t seq = b * kBatchSize + i;
          dsms::Packet p;
          p.time = static_cast<double>(seq) * 0.001;
          p.src_ip = static_cast<std::uint32_t>(u + 1);
          p.dest_ip = 0x0a000001u;
          p.src_port = static_cast<std::uint16_t>(1024 + u);
          p.dest_port =
              static_cast<std::uint16_t>((seq * 2654435761u + u) % kDestPorts);
          p.len = 64 + static_cast<std::uint32_t>(seq % 1400);
          // Every fifth packet is UDP so the router's protocol filter
          // drops rows before they ever reach a shard.
          p.protocol = (seq % 5 == 0) ? dsms::kProtoUdp : dsms::kProtoTcp;
          batch.Append(p);
        }
        sharded.Consume(batch);
      }
    });
  }
  threads.emplace_back([&sharded, &done] {  // auditor / stats reader
    while (!done.load(std::memory_order_acquire)) {
      FWDECAY_AUDIT_INVARIANTS(sharded);
      // Each destPort group lives wholly in one shard; per shard an
      // evicted key can re-enter that shard's low table, so each shard
      // may hold up to kLowSlots duplicates of promoted groups.
      ASSERT_LE(sharded.GroupCount(),
                static_cast<std::size_t>(kDestPorts) + kShards * kLowSlots);
      // Read tuples BEFORE packets: every tuple observed in a shard had
      // its batch counted by the router first (mutex release/acquire
      // orders the router's fetch_add before the shard apply), so a
      // later packets_consumed() read can only be larger. The reverse
      // order — which ASSERT_LE's unspecified argument evaluation could
      // pick — races: ingest between the two reads inverts the bound.
      const std::uint64_t tuples = sharded.tuples_aggregated();
      ASSERT_LE(tuples, sharded.packets_consumed());
    }
  });

  for (int i = 0; i < kIngesters; ++i) threads[i].join();
  done.store(true, std::memory_order_release);
  threads.back().join();

  EXPECT_EQ(sharded.packets_consumed(),
            static_cast<std::uint64_t>(kIngesters) * kBatchesPerThread *
                kBatchSize);
  sharded.CheckInvariants();  // direct call: audits in every build
  const dsms::ResultSet result = sharded.Finish();
  EXPECT_EQ(result.rows.size(), static_cast<std::size_t>(kDestPorts));
}

}  // namespace
}  // namespace fwdecay
