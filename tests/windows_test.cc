// Tests for the Aurora-style window runners (sliding / latched) and for
// the trace file I/O.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "dsms/trace_io.h"
#include "dsms/windows.h"

namespace fwdecay::dsms {
namespace {

Packet At(double time, std::uint16_t port = 80) {
  Packet p;
  p.time = time;
  p.dest_port = port;
  p.len = 100;
  p.protocol = kProtoTcp;
  return p;
}

std::unique_ptr<CompiledQuery> CountPlan() {
  std::string error;
  auto plan = CompiledQuery::Compile(
      "select destPort, count(*) from TCP group by destPort", &error);
  EXPECT_NE(plan, nullptr) << error;
  return plan;
}

TEST(SlidingRunnerTest, OverlappingWindowsEachCountTheirSpan) {
  auto plan = CountPlan();
  // Width 10 s, slide 5 s: every packet lands in two windows.
  std::map<double, std::int64_t> counts;  // window_start -> count
  SlidingRunner runner(plan.get(), 10.0, 5.0,
                       [&](double start, double end, ResultSet rs) {
                         EXPECT_DOUBLE_EQ(end - start, 10.0);
                         counts[start] =
                             rs.rows.empty() ? 0 : rs.rows[0][1].AsInt();
                       });
  // Packets at t = 1..19 (one per second).
  for (int t = 1; t < 20; ++t) runner.Consume(At(static_cast<double>(t)));
  runner.Flush();
  // Window [0,10) sees t=1..9 -> 9; window [5,15) sees 5..14 -> 10;
  // window [10,20) sees 10..19 -> 10; window [15,25) sees 15..19 -> 5.
  EXPECT_EQ(counts[0.0], 9);
  EXPECT_EQ(counts[5.0], 10);
  EXPECT_EQ(counts[10.0], 10);
  EXPECT_EQ(counts[15.0], 5);
}

TEST(SlidingRunnerTest, EmitsWhenWatermarkPassesWindowEnd) {
  auto plan = CountPlan();
  std::vector<double> emitted_starts;
  SlidingRunner runner(plan.get(), 10.0, 5.0,
                       [&](double start, double, ResultSet) {
                         emitted_starts.push_back(start);
                       });
  runner.Consume(At(1.0));
  // t=1 also belongs to the straddling window [-5, 5), which closes as
  // soon as the watermark passes 5.
  runner.Consume(At(9.0));
  ASSERT_EQ(emitted_starts.size(), 1u);
  EXPECT_DOUBLE_EQ(emitted_starts[0], -5.0);
  runner.Consume(At(10.5));  // watermark past window [0,10)'s end
  ASSERT_EQ(emitted_starts.size(), 2u);
  EXPECT_DOUBLE_EQ(emitted_starts[1], 0.0);
  runner.Flush();
  EXPECT_GE(emitted_starts.size(), 3u);
}

TEST(SlidingRunnerTest, SlideEqualWidthIsTumbling) {
  auto plan = CountPlan();
  std::map<double, std::int64_t> counts;
  SlidingRunner runner(plan.get(), 5.0, 5.0,
                       [&](double start, double, ResultSet rs) {
                         counts[start] =
                             rs.rows.empty() ? 0 : rs.rows[0][1].AsInt();
                       });
  for (int t = 0; t < 14; ++t) runner.Consume(At(0.5 + t));
  runner.Flush();
  std::int64_t total = 0;
  for (const auto& [start, c] : counts) total += c;
  EXPECT_EQ(total, 14);  // no overlap: each packet counted once
}

TEST(LatchedRunnerTest, SnapshotsAreCumulative) {
  auto plan = CountPlan();
  std::map<std::int64_t, std::int64_t> counts;
  LatchedRunner runner(plan.get(), 10.0,
                       [&](std::int64_t bucket, ResultSet rs) {
                         counts[bucket] =
                             rs.rows.empty() ? 0 : rs.rows[0][1].AsInt();
                       });
  for (int t = 1; t < 35; ++t) runner.Consume(At(static_cast<double>(t)));
  runner.Flush();
  // Latched semantics: each snapshot includes everything so far.
  EXPECT_EQ(counts[0], 9);    // t=1..9
  EXPECT_EQ(counts[1], 19);   // + t=10..19
  EXPECT_EQ(counts[2], 29);   // + t=20..29
  EXPECT_EQ(counts[3], 34);   // + t=30..34
}

TEST(LatchedRunnerTest, CumulativeWithTwoLevelSplit) {
  std::string error;
  CompiledQuery::Options opts;
  opts.two_level = true;
  opts.low_level_slots = 4;
  auto plan = CompiledQuery::Compile(
      "select destPort, count(*) from TCP group by destPort", &error, opts);
  ASSERT_NE(plan, nullptr) << error;
  std::vector<std::int64_t> totals;
  LatchedRunner runner(plan.get(), 10.0,
                       [&](std::int64_t, ResultSet rs) {
                         std::int64_t sum = 0;
                         for (const auto& row : rs.rows) {
                           sum += row[1].AsInt();
                         }
                         totals.push_back(sum);
                       });
  // Many ports force low-level evictions between snapshots.
  for (int t = 1; t < 30; ++t) {
    runner.Consume(At(static_cast<double>(t),
                      static_cast<std::uint16_t>(t % 13)));
  }
  runner.Flush();
  ASSERT_EQ(totals.size(), 3u);
  EXPECT_EQ(totals[0], 9);
  EXPECT_EQ(totals[1], 19);
  EXPECT_EQ(totals[2], 29);
}

// --- Trace I/O ------------------------------------------------------------------

TEST(TraceIoTest, RoundTripsGeneratedTrace) {
  TraceConfig cfg;
  cfg.rate_pps = 1000.0;
  cfg.seed = 5;
  PacketGenerator gen(cfg);
  const auto packets = gen.Generate(5000);

  const std::string path = testing::TempDir() + "/fwdecay_trace_test.bin";
  std::string error;
  ASSERT_TRUE(WriteTrace(path, packets, &error)) << error;
  auto loaded = ReadTrace(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); i += 97) {
    EXPECT_DOUBLE_EQ((*loaded)[i].time, packets[i].time);
    EXPECT_EQ((*loaded)[i].dest_ip, packets[i].dest_ip);
    EXPECT_EQ((*loaded)[i].dest_port, packets[i].dest_port);
    EXPECT_EQ((*loaded)[i].len, packets[i].len);
    EXPECT_EQ((*loaded)[i].protocol, packets[i].protocol);
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, MissingFileDiagnosed) {
  std::string error;
  EXPECT_FALSE(ReadTrace("/nonexistent/trace.bin", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(TraceIoTest, CorruptAndTruncatedFilesRejected) {
  const std::string path = testing::TempDir() + "/fwdecay_trace_bad.bin";
  std::string error;

  // Bad magic.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite("NOTATRACE_______", 1, 16, f);
    std::fclose(f);
    EXPECT_FALSE(ReadTrace(path, &error).has_value());
    EXPECT_NE(error.find("magic"), std::string::npos);
  }
  // Truncated records: write a valid trace then chop it.
  {
    TraceConfig cfg;
    PacketGenerator gen(cfg);
    ASSERT_TRUE(WriteTrace(path, gen.Generate(100), &error)) << error;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::vector<unsigned char> bytes(1000);
    const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, got / 2, f);
    std::fclose(f);
    EXPECT_FALSE(ReadTrace(path, &error).has_value());
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, EmptyTraceIsValid) {
  const std::string path = testing::TempDir() + "/fwdecay_trace_empty.bin";
  std::string error;
  ASSERT_TRUE(WriteTrace(path, std::vector<Packet>{}, &error)) << error;
  auto loaded = ReadTrace(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fwdecay::dsms
