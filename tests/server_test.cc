// fwdecayd robustness tests over real loopback sockets: end-to-end
// ingest/poll/stats, hostile-input hardening (oversized frames, bad
// magic, lying batch counts), deterministic backpressure, greedy-tenant
// shedding visible in /metrics, idle reaping, snapshot rotation with
// corrupt-newest fallback, and the injected socket fault matrix.

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "dsms/parser.h"
#include "gtest/gtest.h"
#include "server/client.h"
#include "server/daemon.h"
#include "server/journal.h"
#include "util/bytes.h"
#include "util/crc32c.h"
#include "util/fault_fs.h"

namespace fwdecay::server {
namespace {

constexpr char kGsql[] =
    "select destIP, count(*), sum(len) from TCP group by destIP";

dsms::PacketBatch MakeBatch(const std::vector<dsms::Packet>& packets,
                            std::size_t begin, std::size_t end) {
  dsms::PacketBatch batch(end - begin);
  for (std::size_t i = begin; i < end; ++i) (void)batch.Append(packets[i]);
  return batch;
}

/// Runs the same batches through a fresh local execution under the same
/// overload policy the server's tenant would install, and returns the
/// encoded result — the bit-identical oracle for PollResult.
std::vector<std::uint8_t> ReferenceResult(const std::string& gsql,
                                          const TenantSpec& spec,
                                          const std::vector<dsms::Packet>& ps,
                                          std::size_t count) {
  std::string error;
  auto plan = dsms::CompiledQuery::Compile(gsql, &error);
  EXPECT_NE(plan, nullptr) << error;
  auto exec = plan->NewExecution();
  dsms::OverloadPolicy policy;
  policy.max_groups = spec.max_groups;
  policy.decay_alpha = spec.decay_alpha;
  policy.landmark = spec.landmark;
  exec->SetOverloadPolicy(policy);
  for (std::size_t i = 0; i < count; ++i) exec->Consume(ps[i]);
  return EncodeResult(exec->Finish());
}

/// Minimal HTTP GET against the daemon's metrics listener.
std::string HttpGet(std::uint16_t port, const std::string& path) {
  Socket sock;
  std::string error;
  if (Connect(port, 2000, &sock, &error) != IoStatus::kOk) return "";
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  if (SendExactly(sock, request.data(), request.size(), 2000, &error) !=
      IoStatus::kOk) {
    return "";
  }
  std::string response;
  char c = 0;
  while (RecvExactly(sock, &c, 1, 2000, &error) == IoStatus::kOk) {
    response.push_back(c);
  }
  return response;
}

class ServerTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/fwdecay_srv_" +
           testing::UnitTest::GetInstance()->current_test_info()->name();
    RemoveTree(dir_);
    FaultFs::Instance().ClearPlan();
    NetFault::Instance().Clear();
    options_.data_dir = dir_;
  }
  void TearDown() override {
    FaultFs::Instance().ClearPlan();
    NetFault::Instance().Clear();
    RemoveTree(dir_);
  }

  static void RemoveTree(const std::string& dir) {
    // The data dir holds only flat files the daemon created.
    for (const char* name :
         {"CURRENT", "CURRENT.tmp"}) {
      std::remove((dir + "/" + name).c_str());
    }
    for (std::uint64_t e = 0; e < 64; ++e) {
      std::remove(SnapshotManager(dir, 1).SnapPath(e).c_str());
      std::remove(SnapshotManager(dir, 1).JournalPath(e).c_str());
      std::remove(
          FaultFs::TempPathFor(SnapshotManager(dir, 1).SnapPath(e)).c_str());
    }
    rmdir(dir.c_str());
  }

  std::string dir_;
  DaemonOptions options_;
};

TEST_F(ServerTest, EndToEndIngestPollStats) {
  dsms::TraceConfig cfg;
  cfg.seed = 11;
  cfg.num_servers = 32;
  const auto packets = dsms::PacketGenerator(cfg).Generate(4000);

  Daemon daemon(options_);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(daemon.ingest_port(), &error)) << error;
  ASSERT_TRUE(client.Hello("acme", &error)) << error;

  std::uint64_t query_id = 0;
  ErrCode code = ErrCode::kNone;
  ASSERT_TRUE(client.RegisterQuery("hh", kGsql, /*two_level=*/false,
                                   &query_id, &code, &error))
      << error;

  constexpr std::size_t kBatchSize = 500;
  for (std::size_t off = 0; off < packets.size(); off += kBatchSize) {
    IngestReply reply;
    ASSERT_TRUE(client.Ingest(off, MakeBatch(packets, off, off + kBatchSize),
                              &reply, &error))
        << error;
    ASSERT_TRUE(reply.ok) << reply.message;
    EXPECT_FALSE(reply.busy);
  }
  EXPECT_EQ(daemon.batches_acked(), packets.size() / kBatchSize);

  // Poll is non-destructive: two polls agree with each other and with
  // the local reference fed the same packets under the same policy.
  dsms::ResultSet first;
  ASSERT_TRUE(client.PollResult(query_id, &first, &code, &error)) << error;
  dsms::ResultSet second;
  ASSERT_TRUE(client.PollResult(query_id, &second, &code, &error)) << error;
  TenantSpec defaults = options_.tenant_defaults;
  const auto expected =
      ReferenceResult(kGsql, defaults, packets, packets.size());
  EXPECT_EQ(EncodeResult(first), expected);
  EXPECT_EQ(EncodeResult(second), expected);

  WireStats stats;
  ASSERT_TRUE(client.Stats(&stats, &error)) << error;
  EXPECT_EQ(stats.batches_acked, packets.size() / kBatchSize);
  EXPECT_EQ(stats.queries, 1u);
  EXPECT_EQ(stats.tenants, 1u);

  // The /metrics endpoint serves Prometheus text; /healthz answers ok.
  const std::string scrape = HttpGet(daemon.metrics_port(), "/metrics");
  EXPECT_NE(scrape.find("200 OK"), std::string::npos);
  EXPECT_NE(scrape.find("fwdecay_server_batches_acked_total"),
            std::string::npos);
  EXPECT_NE(HttpGet(daemon.metrics_port(), "/healthz").find("ok"),
            std::string::npos);
  EXPECT_NE(HttpGet(daemon.metrics_port(), "/nope").find("404"),
            std::string::npos);

  daemon.Stop();
}

TEST_F(ServerTest, RegisterValidationAndQuotas) {
  options_.tenant_defaults.max_queries = 1;
  Daemon daemon(options_);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(daemon.ingest_port(), &error)) << error;

  // Register before Hello is refused.
  std::uint64_t id = 0;
  ErrCode code = ErrCode::kNone;
  EXPECT_FALSE(client.RegisterQuery("q", kGsql, false, &id, &code, &error));
  EXPECT_EQ(code, ErrCode::kNotAdmitted);

  ASSERT_TRUE(client.Hello("acme", &error)) << error;

  // Invalid names and unparseable GSQL get structured refusals; the
  // connection survives every one of them.
  EXPECT_FALSE(
      client.RegisterQuery("Bad Name!", kGsql, false, &id, &code, &error));
  EXPECT_EQ(code, ErrCode::kBadName);
  EXPECT_FALSE(client.RegisterQuery("q", "select garbage from nowhere",
                                    false, &id, &code, &error));
  EXPECT_EQ(code, ErrCode::kParseError);
  const std::string huge(dsms::kMaxGsqlBytes + 1, 'x');
  EXPECT_FALSE(client.RegisterQuery("q", huge, false, &id, &code, &error));
  EXPECT_EQ(code, ErrCode::kQueryTooLong);

  // First real registration lands; the duplicate name and the quota
  // excess are refused.
  ASSERT_TRUE(client.RegisterQuery("q", kGsql, false, &id, &code, &error))
      << error;
  EXPECT_FALSE(client.RegisterQuery("q", kGsql, false, &id, &code, &error));
  EXPECT_EQ(code, ErrCode::kBadName);
  EXPECT_FALSE(client.RegisterQuery("q2", kGsql, false, &id, &code, &error));
  EXPECT_EQ(code, ErrCode::kQuotaExceeded);
  EXPECT_EQ(daemon.query_count(), 1u);

  daemon.Stop();
}

TEST_F(ServerTest, OversizedFrameGetsStructuredErrorAndSessionSurvives) {
  Daemon daemon(options_);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(daemon.ingest_port(), &error)) << error;
  ASSERT_TRUE(client.Hello("acme", &error)) << error;

  // A frame over kMaxFrameBytes (but under the drain cap) is read out
  // and refused with kFrameTooLarge — not a disconnect.
  const std::uint32_t huge_len =
      static_cast<std::uint32_t>(kMaxFrameBytes) + 1;
  ByteWriter w;
  w.WriteU32(kFrameMagic);
  w.WriteU8(static_cast<std::uint8_t>(MsgType::kIngest));
  w.WriteU32(huge_len);
  const std::vector<std::uint8_t> header = w.Take();
  ASSERT_EQ(SendExactly(client.raw_socket(), header.data(), header.size(),
                        5000, &error),
            IoStatus::kOk);
  const std::vector<std::uint8_t> filler(huge_len, 0xab);
  ASSERT_EQ(SendExactly(client.raw_socket(), filler.data(), filler.size(),
                        20000, &error),
            IoStatus::kOk);

  Frame reply;
  ASSERT_EQ(ReadFrame(client.raw_socket(), &reply, 20000, 20000, &error),
            FrameReadStatus::kOk);
  ASSERT_EQ(reply.type, MsgType::kError);
  ErrCode code = ErrCode::kNone;
  std::string message;
  ASSERT_TRUE(DecodeError(reply.payload, &code, &message));
  EXPECT_EQ(code, ErrCode::kFrameTooLarge);

  // The stream stayed synchronized: a normal request still works.
  WireStats stats;
  EXPECT_TRUE(client.Stats(&stats, &error)) << error;

  daemon.Stop();
}

TEST_F(ServerTest, BadMagicAnsweredThenClosed) {
  Daemon daemon(options_);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(daemon.ingest_port(), &error)) << error;
  const std::uint8_t garbage[kFrameHeaderBytes] = {0xde, 0xad, 0xbe, 0xef,
                                                   1,    0,    0,    0, 0};
  ASSERT_EQ(SendExactly(client.raw_socket(), garbage, sizeof(garbage), 2000,
                        &error),
            IoStatus::kOk);

  Frame reply;
  ASSERT_EQ(ReadFrame(client.raw_socket(), &reply, 5000, 5000, &error),
            FrameReadStatus::kOk);
  ASSERT_EQ(reply.type, MsgType::kError);
  ErrCode code = ErrCode::kNone;
  std::string message;
  ASSERT_TRUE(DecodeError(reply.payload, &code, &message));
  EXPECT_EQ(code, ErrCode::kBadMagic);

  // An unsynchronized stream costs the session.
  EXPECT_EQ(ReadFrame(client.raw_socket(), &reply, 5000, 5000, &error),
            FrameReadStatus::kClosed);

  daemon.Stop();
}

TEST_F(ServerTest, HostileIngestCountRefusedWithoutAllocation) {
  Daemon daemon(options_);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(daemon.ingest_port(), &error)) << error;
  ASSERT_TRUE(client.Hello("acme", &error)) << error;

  // The payload claims kMaxBatchPackets packets but carries two bytes;
  // the decoder must refuse before sizing anything by the count.
  ByteWriter payload;
  payload.WriteU64(/*client_seq=*/7);
  payload.WriteU32(static_cast<std::uint32_t>(kMaxBatchPackets));
  payload.WriteU8(0);
  payload.WriteU8(0);
  Frame reply;
  ASSERT_EQ(SendFrame(client.raw_socket(), MsgType::kIngest, payload.Take(),
                      2000, &error),
            IoStatus::kOk);
  ASSERT_EQ(ReadFrame(client.raw_socket(), &reply, 5000, 5000, &error),
            FrameReadStatus::kOk);
  ASSERT_EQ(reply.type, MsgType::kError);
  ErrCode code = ErrCode::kNone;
  std::string message;
  ASSERT_TRUE(DecodeError(reply.payload, &code, &message));
  EXPECT_EQ(code, ErrCode::kBadFrame);

  // Refusal, not disconnection.
  WireStats stats;
  EXPECT_TRUE(client.Stats(&stats, &error)) << error;
  EXPECT_EQ(stats.batches_acked, 0u);

  daemon.Stop();
}

TEST_F(ServerTest, BoundedQueueYieldsBusyUnderOverload) {
  // One-deep queue + a 300 ms apply delay: with one batch applying and
  // one queued, a third concurrent ingest must see kBusy.
  options_.queue_capacity = 1;
  options_.apply_delay_ms = 300;
  Daemon daemon(options_);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  dsms::TraceConfig cfg;
  cfg.seed = 5;
  const auto packets = dsms::PacketGenerator(cfg).Generate(30);

  Client a;
  Client b;
  Client c;
  ASSERT_TRUE(a.Connect(daemon.ingest_port(), &error)) << error;
  ASSERT_TRUE(b.Connect(daemon.ingest_port(), &error)) << error;
  ASSERT_TRUE(c.Connect(daemon.ingest_port(), &error)) << error;
  ASSERT_TRUE(a.Hello("acme", &error)) << error;

  IngestReply ra;
  IngestReply rb;
  std::string ea;
  std::string eb;
  std::thread ta([&] {
    (void)a.Ingest(1, MakeBatch(packets, 0, 10), &ra, &ea);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  std::thread tb([&] {
    (void)b.Ingest(2, MakeBatch(packets, 10, 20), &rb, &eb);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  // Batch 1 is applying (delayed), batch 2 fills the queue: batch 3 is
  // refused with explicit backpressure, carrying the queue depth.
  IngestReply rc;
  ASSERT_TRUE(c.Ingest(3, MakeBatch(packets, 20, 30), &rc, &error)) << error;
  EXPECT_TRUE(rc.busy);
  EXPECT_FALSE(rc.ok);

  ta.join();
  tb.join();
  EXPECT_TRUE(ra.ok) << ea;
  EXPECT_TRUE(rb.ok) << eb;

  WireStats stats;
  ASSERT_TRUE(a.Stats(&stats, &error)) << error;
  EXPECT_EQ(stats.batches_acked, 2u);
  EXPECT_GE(stats.backpressure_total, 1u);

  daemon.Stop();
}

TEST_F(ServerTest, GreedyTenantDegradesViaSheddingVisibleInMetrics) {
  // A tiny shedding budget and a stream with many distinct groups: the
  // greedy tenant's queries degrade via min-forward-weight eviction
  // instead of growing without bound, and the damage is visible both in
  // wire stats and in the labelled /metrics counters.
  options_.tenant_defaults.max_groups = 4;
  options_.tenant_defaults.decay_alpha = 0.01;
  Daemon daemon(options_);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(daemon.ingest_port(), &error)) << error;
  ASSERT_TRUE(client.Hello("greedy", &error)) << error;
  std::uint64_t query_id = 0;
  ErrCode code = ErrCode::kNone;
  ASSERT_TRUE(client.RegisterQuery("hh", kGsql, false, &query_id, &code,
                                   &error))
      << error;

  dsms::TraceConfig cfg;
  cfg.seed = 23;
  cfg.num_servers = 256;  // far more groups than the budget allows
  const auto packets = dsms::PacketGenerator(cfg).Generate(5000);
  for (std::size_t off = 0; off < packets.size(); off += 1000) {
    IngestReply reply;
    ASSERT_TRUE(client.Ingest(off, MakeBatch(packets, off, off + 1000),
                              &reply, &error))
        << error;
    ASSERT_TRUE(reply.ok) << reply.message;
  }

  WireStats stats;
  ASSERT_TRUE(client.Stats(&stats, &error)) << error;
  EXPECT_GT(stats.groups_shed_total, 0u);

  const std::string scrape = HttpGet(daemon.metrics_port(), "/metrics");
  EXPECT_NE(
      scrape.find("fwdecay_server_tenant_groups_shed_total{tenant=\"greedy\"}"),
      std::string::npos)
      << scrape.substr(0, 512);

  // Shedding kept it bounded but answering: polls still work.
  dsms::ResultSet result;
  EXPECT_TRUE(client.PollResult(query_id, &result, &code, &error)) << error;
  EXPECT_LE(result.rows.size(), 4u);

  daemon.Stop();
}

TEST_F(ServerTest, IdleConnectionIsReapedWithExplanation) {
  options_.idle_timeout_ms = 200;
  Daemon daemon(options_);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(daemon.ingest_port(), &error)) << error;
  // Say nothing; the reaper should volunteer a kIdleTimeout error and
  // hang up.
  Frame reply;
  ASSERT_EQ(ReadFrame(client.raw_socket(), &reply, 5000, 5000, &error),
            FrameReadStatus::kOk);
  ASSERT_EQ(reply.type, MsgType::kError);
  ErrCode code = ErrCode::kNone;
  std::string message;
  ASSERT_TRUE(DecodeError(reply.payload, &code, &message));
  EXPECT_EQ(code, ErrCode::kIdleTimeout);
  EXPECT_EQ(ReadFrame(client.raw_socket(), &reply, 5000, 5000, &error),
            FrameReadStatus::kClosed);

  daemon.Stop();
}

TEST_F(ServerTest, RotationRetainsKAndRecoveryFallsBackPastCorruptSnapshot) {
  dsms::TraceConfig cfg;
  cfg.seed = 31;
  cfg.num_servers = 16;
  const auto packets = dsms::PacketGenerator(cfg).Generate(3000);

  options_.snapshot_retain = 2;
  std::uint64_t query_id = 0;
  {
    Daemon daemon(options_);
    std::string error;
    ASSERT_TRUE(daemon.Start(&error)) << error;
    Client client;
    ASSERT_TRUE(client.Connect(daemon.ingest_port(), &error)) << error;
    ASSERT_TRUE(client.Hello("acme", &error)) << error;
    ErrCode code = ErrCode::kNone;
    ASSERT_TRUE(client.RegisterQuery("hh", kGsql, false, &query_id, &code,
                                     &error))
        << error;

    IngestReply reply;
    ASSERT_TRUE(client.Ingest(1, MakeBatch(packets, 0, 1000), &reply, &error))
        << error;
    ASSERT_TRUE(reply.ok);
    ASSERT_TRUE(daemon.CheckpointNow(&error)) << error;
    ASSERT_TRUE(client.Ingest(2, MakeBatch(packets, 1000, 2000), &reply,
                              &error))
        << error;
    ASSERT_TRUE(reply.ok);
    ASSERT_TRUE(daemon.CheckpointNow(&error)) << error;
    ASSERT_TRUE(client.Ingest(3, MakeBatch(packets, 2000, 3000), &reply,
                              &error))
        << error;
    ASSERT_TRUE(reply.ok);
    client.Close();
    daemon.Stop();  // writes the clean shutdown checkpoint
  }

  // Retention: exactly `retain` snapshots in CURRENT, and the files
  // below the floor were GC'd.
  SnapshotManager snaps(dir_, 2);
  Manifest manifest;
  std::string error;
  ASSERT_TRUE(snaps.ReadManifest(&manifest, &error)) << error;
  ASSERT_EQ(manifest.snaps.size(), 2u);
  EXPECT_EQ(manifest.floor, manifest.snaps.back());
  for (std::uint64_t e = 0; e < manifest.floor; ++e) {
    EXPECT_FALSE(FaultFs::Instance().FileExists(snaps.SnapPath(e)));
    EXPECT_FALSE(FaultFs::Instance().FileExists(snaps.JournalPath(e)));
  }

  // Corrupt the newest snapshot: flip one byte mid-file. Recovery must
  // fall back to the older snapshot and replay the journal records the
  // fallback does not cover — ending at the same state.
  {
    const std::string newest = snaps.SnapPath(manifest.snaps.front());
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(FaultFs::Instance().ReadFile(newest, &bytes, &error));
    ASSERT_GT(bytes.size(), 64u);
    bytes[bytes.size() / 2] ^= 0xff;
    ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(newest, bytes, &error));
  }

  Daemon recovered(options_);
  ASSERT_TRUE(recovered.Start(&error)) << error;
  EXPECT_EQ(recovered.batches_acked(), 3u);
  EXPECT_EQ(recovered.query_count(), 1u);

  Client client;
  ASSERT_TRUE(client.Connect(recovered.ingest_port(), &error)) << error;
  dsms::ResultSet result;
  ErrCode code = ErrCode::kNone;
  ASSERT_TRUE(client.PollResult(query_id, &result, &code, &error)) << error;
  EXPECT_EQ(EncodeResult(result),
            ReferenceResult(kGsql, options_.tenant_defaults, packets, 3000));

  recovered.Stop();
}

TEST_F(ServerTest, CorruptManifestRefusesToStartFresh) {
  {
    Daemon daemon(options_);
    std::string error;
    ASSERT_TRUE(daemon.Start(&error)) << error;
    daemon.Stop();
  }
  const std::string current = SnapshotManager(dir_, 1).CurrentPath();
  const std::vector<std::uint8_t> garbage = {'n', 'o', 'p', 'e', '\n'};
  std::string error;
  ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(current, garbage, &error));

  // Silently starting empty over acknowledged data would be data loss;
  // the daemon must refuse instead.
  Daemon daemon(options_);
  EXPECT_FALSE(daemon.Start(&error));
  EXPECT_NE(error.find("manifest"), std::string::npos) << error;
}

/// Frames a journal payload exactly as JournalWriter::Append does:
/// u32 length | payload | u32 crc32c(payload). Corruption cases patch
/// the payload first and reframe, so the CRC is valid and the reader's
/// *structural* checks (not the checksum) must do the rejecting.
std::vector<std::uint8_t> FrameRecord(
    const std::vector<std::uint8_t>& payload) {
  ByteWriter w;
  w.WriteU32(static_cast<std::uint32_t>(payload.size()));
  w.WriteBytes(payload.data(), payload.size());
  w.WriteU32(Crc32c(payload.data(), payload.size()));
  return w.Take();
}

void PatchU32(std::vector<std::uint8_t>* bytes, std::size_t offset,
              std::uint32_t v) {
  ASSERT_LE(offset + sizeof(v), bytes->size());
  std::memcpy(bytes->data() + offset, &v, sizeof(v));
}

void PatchU64(std::vector<std::uint8_t>* bytes, std::size_t offset,
              std::uint64_t v) {
  ASSERT_LE(offset + sizeof(v), bytes->size());
  std::memcpy(bytes->data() + offset, &v, sizeof(v));
}

// Regression for a bug the taint pass found: recovery probed journal
// segments with `for (e = floor; e <= active; ++e)`, with both bounds
// read straight from the CURRENT manifest. A hostile
// `active 18446744073709551615` turned startup into a ~2^64-iteration
// filesystem scan. The manifest is now structurally validated before
// anything is published to recovery, so every case below must be
// rejected loudly and *fast* — a hang here is the old bug.
TEST_F(ServerTest, HostileManifestStructuralRejectionMatrix) {
  {
    Daemon daemon(options_);
    std::string error;
    ASSERT_TRUE(daemon.Start(&error)) << error;
    daemon.Stop();
  }
  const SnapshotManager snaps(dir_, 1);

  struct Case {
    const char* label;
    const char* text;
  };
  const Case cases[] = {
      {"u64-max active would probe ~2^64 segments",
       "FWDCUR1\nactive 18446744073709551615\nfloor 0\n"},
      {"active above the epoch cap (2^48 + 1)",
       "FWDCUR1\nactive 281474976710657\nfloor 281474976710657\n"},
      {"floor above active", "FWDCUR1\nactive 2\nfloor 5\n"},
      {"replay span above the cap", "FWDCUR1\nactive 2000000\nfloor 0\n"},
      {"snap epoch outside [floor, active]",
       "FWDCUR1\nactive 5\nfloor 2\nsnap 99\n"},
  };
  for (const Case& c : cases) {
    std::string error;
    const std::vector<std::uint8_t> bytes(c.text,
                                          c.text + std::strlen(c.text));
    ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(snaps.CurrentPath(),
                                                    bytes, &error))
        << c.label;
    Manifest manifest;
    EXPECT_FALSE(snaps.ReadManifest(&manifest, &error)) << c.label;
    EXPECT_FALSE(error.empty()) << c.label;

    Daemon daemon(options_);
    EXPECT_FALSE(daemon.Start(&error)) << c.label;
    EXPECT_NE(error.find("manifest"), std::string::npos)
        << c.label << ": " << error;
  }

  // Snap-line flood: every epoch individually legal, but the list
  // itself is unbounded input feeding a vector.
  {
    std::string text = "FWDCUR1\nactive 2000\nfloor 0\n";
    for (int i = 0; i < 1025; ++i) {
      text += "snap " + std::to_string(i) + "\n";
    }
    std::string error;
    const std::vector<std::uint8_t> bytes(text.begin(), text.end());
    ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(snaps.CurrentPath(),
                                                    bytes, &error));
    Manifest manifest;
    EXPECT_FALSE(snaps.ReadManifest(&manifest, &error));
    Daemon daemon(options_);
    EXPECT_FALSE(daemon.Start(&error));
    EXPECT_NE(error.find("manifest"), std::string::npos) << error;
  }
}

// Fuzz-style matrix over every length field in the journal record
// format: the frame length word, the batch packet count, and a record
// string's length prefix, each mutated to zero / huge / off-by-one.
// The reader must treat each as a clean torn tail (records before the
// corruption survive, nothing after is invented) without sizing any
// allocation from the hostile value — under ASan a blow-up aborts.
TEST_F(ServerTest, JournalCorruptLengthFieldMatrix) {
  ASSERT_TRUE(::mkdir(dir_.c_str(), 0755) == 0 || errno == EEXIST);

  dsms::TraceConfig cfg;
  cfg.seed = 7;
  const auto packets = dsms::PacketGenerator(cfg).Generate(8);
  dsms::PacketBatch batch(8);
  for (const auto& p : packets) ASSERT_TRUE(batch.Append(p));

  const auto batch_payload = EncodeBatchRecord(1, batch);
  const auto good_frame = FrameRecord(batch_payload);
  const auto reg_payload =
      EncodeRegisterRecord(2, 7, "acme", "hh", kGsql, false);

  // Payload layout: u8 type | u64 seq | body. The batch body opens with
  // its u32 packet count; the register body with u64 query_id, then the
  // tenant string's u32 length prefix.
  constexpr std::size_t kCountOffset = 1 + 8;
  constexpr std::size_t kTenantLenOffset = 1 + 8 + 8;
  const auto n = static_cast<std::uint32_t>(batch.size());

  struct Case {
    std::string label;
    std::vector<std::uint8_t> frame;
  };
  std::vector<Case> cases;

  // (a) The frame length word itself, CRC left stale: zero makes the
  // checksum read garbage, huge fails the record-size cap, off-by-one
  // misaligns the checksum window.
  for (std::uint32_t len :
       {std::uint32_t{0}, std::uint32_t{0xffffffff},
        static_cast<std::uint32_t>(batch_payload.size()) + 1,
        static_cast<std::uint32_t>(batch_payload.size()) - 1}) {
    Case c{"frame len = " + std::to_string(len), good_frame};
    PatchU32(&c.frame, 0, len);
    cases.push_back(std::move(c));
  }

  // (b) The batch packet count, reframed with a valid CRC so only the
  // structural decoder can reject it: zero leaves trailing bytes
  // (Exhausted fails), huge must be refused before any allocation,
  // n+1 overruns the byte math, n-1 leaves one packet unconsumed.
  for (std::uint32_t count : {std::uint32_t{0}, std::uint32_t{0xffffffff},
                              n + 1, n - 1}) {
    auto payload = batch_payload;
    PatchU32(&payload, kCountOffset, count);
    cases.push_back({"batch count = " + std::to_string(count),
                     FrameRecord(payload)});
  }

  // (c) The tenant string's length prefix in a register record, also
  // reframed valid: zero and off-by-one shear every later field's
  // framing, huge exceeds the remaining bytes.
  for (std::uint32_t len : {std::uint32_t{0}, std::uint32_t{0xffffffff},
                            std::uint32_t{5}}) {
    auto payload = reg_payload;
    PatchU32(&payload, kTenantLenOffset, len);
    cases.push_back({"tenant string len = " + std::to_string(len),
                     FrameRecord(payload)});
  }

  const std::string path = SnapshotManager(dir_, 1).JournalPath(0);
  for (const Case& c : cases) {
    std::vector<std::uint8_t> file = good_frame;
    file.insert(file.end(), c.frame.begin(), c.frame.end());
    std::string error;
    ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(path, file, &error))
        << c.label;

    std::vector<JournalRecord> records;
    bool torn_tail = false;
    ASSERT_TRUE(ReadJournalFile(path, &records, &torn_tail, &error))
        << c.label << ": " << error;
    EXPECT_TRUE(torn_tail) << c.label;
    ASSERT_EQ(records.size(), 1u) << c.label;
    EXPECT_EQ(records[0].seq, 1u) << c.label;
    EXPECT_EQ(records[0].batch.size(), batch.size()) << c.label;
  }
}

// Same matrix over the server snapshot's u64 body-length header field
// (and a header-truncation case). The reader compares body_len against
// the bytes actually present before touching the body, so a hostile
// value can neither size an allocation nor widen a read; recovery must
// fall back to the older snapshot and replay the journal to the exact
// same state.
TEST_F(ServerTest, SnapshotBodyLengthFieldMatrix) {
  dsms::TraceConfig cfg;
  cfg.seed = 53;
  cfg.num_servers = 16;
  const auto packets = dsms::PacketGenerator(cfg).Generate(1500);

  options_.snapshot_retain = 2;
  std::uint64_t query_id = 0;
  {
    Daemon daemon(options_);
    std::string error;
    ASSERT_TRUE(daemon.Start(&error)) << error;
    Client client;
    ASSERT_TRUE(client.Connect(daemon.ingest_port(), &error)) << error;
    ASSERT_TRUE(client.Hello("acme", &error)) << error;
    ErrCode code = ErrCode::kNone;
    ASSERT_TRUE(
        client.RegisterQuery("hh", kGsql, false, &query_id, &code, &error))
        << error;
    IngestReply reply;
    ASSERT_TRUE(client.Ingest(1, MakeBatch(packets, 0, 500), &reply, &error))
        << error;
    ASSERT_TRUE(reply.ok);
    ASSERT_TRUE(daemon.CheckpointNow(&error)) << error;
    ASSERT_TRUE(
        client.Ingest(2, MakeBatch(packets, 500, 1000), &reply, &error))
        << error;
    ASSERT_TRUE(reply.ok);
    ASSERT_TRUE(daemon.CheckpointNow(&error)) << error;
    ASSERT_TRUE(
        client.Ingest(3, MakeBatch(packets, 1000, 1500), &reply, &error))
        << error;
    ASSERT_TRUE(reply.ok);
    client.Close();
    daemon.Stop();
  }

  SnapshotManager snaps(dir_, 2);
  Manifest manifest;
  std::string error;
  ASSERT_TRUE(snaps.ReadManifest(&manifest, &error)) << error;
  ASSERT_EQ(manifest.snaps.size(), 2u);
  const std::string newest = snaps.SnapPath(manifest.snaps.front());

  // Snapshot every file recovery reads, so each mutation starts from
  // identical on-disk state (a recovered daemon's Stop advances the
  // manifest and writes fresh checkpoints).
  std::map<std::string, std::vector<std::uint8_t>> orig;
  {
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(
        FaultFs::Instance().ReadFile(snaps.CurrentPath(), &bytes, &error));
    orig[snaps.CurrentPath()] = bytes;
    for (std::uint64_t e = 0; e <= manifest.active; ++e) {
      for (const std::string& p : {snaps.SnapPath(e), snaps.JournalPath(e)}) {
        if (!FaultFs::Instance().FileExists(p)) continue;
        ASSERT_TRUE(FaultFs::Instance().ReadFile(p, &bytes, &error)) << p;
        orig[p] = bytes;
      }
    }
  }
  const auto restore = [&] {
    RemoveTree(dir_);
    ASSERT_TRUE(::mkdir(dir_.c_str(), 0755) == 0 || errno == EEXIST);
    std::string werror;
    for (const auto& [path, bytes] : orig) {
      ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(path, bytes, &werror))
          << path << ": " << werror;
    }
  };

  // The body length lives at byte 16: 8-byte magic, u32 version,
  // u32 crc, then the u64 length.
  constexpr std::size_t kBodyLenOffset = 16;
  const std::uint64_t true_len =
      orig[newest].size() - kBodyLenOffset - sizeof(std::uint64_t);
  struct Case {
    std::string label;
    std::uint64_t body_len;
    std::size_t truncate_to;  // 0 = leave the file whole
  };
  const Case cases[] = {
      {"body_len = 0", 0, 0},
      {"body_len = u64 max", ~std::uint64_t{0}, 0},
      {"body_len + 1", true_len + 1, 0},
      {"body_len - 1", true_len - 1, 0},
      {"file truncated inside the header", true_len, 10},
  };
  for (const Case& c : cases) {
    restore();
    std::vector<std::uint8_t> bytes = orig[newest];
    PatchU64(&bytes, kBodyLenOffset, c.body_len);
    if (c.truncate_to != 0) bytes.resize(c.truncate_to);
    ASSERT_TRUE(FaultFs::Instance().AtomicWriteFile(newest, bytes, &error))
        << c.label;

    Daemon recovered(options_);
    ASSERT_TRUE(recovered.Start(&error)) << c.label << ": " << error;
    EXPECT_EQ(recovered.batches_acked(), 3u) << c.label;
    EXPECT_EQ(recovered.query_count(), 1u) << c.label;
    dsms::ResultSet result;
    ErrCode code = ErrCode::kNone;
    Client client;
    ASSERT_TRUE(client.Connect(recovered.ingest_port(), &error)) << c.label;
    ASSERT_TRUE(client.PollResult(query_id, &result, &code, &error))
        << c.label << ": " << error;
    EXPECT_EQ(EncodeResult(result),
              ReferenceResult(kGsql, options_.tenant_defaults, packets, 1500))
        << c.label;
    recovered.Stop();
  }
}

TEST_F(ServerTest, SocketFaultMatrix) {
  // Drive the EINTR/short-transfer/fault seams directly over a real
  // loopback pair: the exactly-once wrappers must absorb every
  // recoverable fault and surface the fatal ones as typed statuses.
  Listener listener;
  std::string error;
  ASSERT_TRUE(listener.Open(0, &error)) << error;
  Socket client;
  ASSERT_EQ(Connect(listener.port(), 2000, &client, &error), IoStatus::kOk);
  Socket server;
  ASSERT_EQ(listener.AcceptOnce(2000, &server, &error), IoStatus::kOk);

  const std::uint64_t before = NetFault::Instance().faults_injected();
  std::uint8_t out[64];
  std::uint8_t in[64];
  for (std::size_t i = 0; i < sizeof(out); ++i) {
    out[i] = static_cast<std::uint8_t>(i);
  }

  {  // Short read: delivered in two pieces, reassembled to all 64.
    ScopedNetFaultPlan plan({NetFaultPoint::kShortRead, /*byte_limit=*/5});
    ASSERT_EQ(SendExactly(client, out, sizeof(out), 2000, &error),
              IoStatus::kOk);
    ASSERT_EQ(RecvExactly(server, in, sizeof(in), 2000, &error),
              IoStatus::kOk);
    EXPECT_EQ(std::memcmp(in, out, sizeof(out)), 0);
  }
  {  // EINTR storm on read: five consecutive interrupts, then clean.
    NetFaultPlan plan;
    plan.point = NetFaultPoint::kReadEintr;
    plan.times = 5;
    ScopedNetFaultPlan armed(plan);
    ASSERT_EQ(SendExactly(client, out, sizeof(out), 2000, &error),
              IoStatus::kOk);
    ASSERT_EQ(RecvExactly(server, in, sizeof(in), 2000, &error),
              IoStatus::kOk);
  }
  {  // EINTR storm on write.
    NetFaultPlan plan;
    plan.point = NetFaultPoint::kWriteEintr;
    plan.times = 5;
    ScopedNetFaultPlan armed(plan);
    ASSERT_EQ(SendExactly(client, out, sizeof(out), 2000, &error),
              IoStatus::kOk);
    ASSERT_EQ(RecvExactly(server, in, sizeof(in), 2000, &error),
              IoStatus::kOk);
  }
  {  // Short write: the sender resumes the partial transfer.
    ScopedNetFaultPlan plan({NetFaultPoint::kShortWrite, /*byte_limit=*/3});
    ASSERT_EQ(SendExactly(client, out, sizeof(out), 2000, &error),
              IoStatus::kOk);
    ASSERT_EQ(RecvExactly(server, in, sizeof(in), 2000, &error),
              IoStatus::kOk);
    EXPECT_EQ(std::memcmp(in, out, sizeof(out)), 0);
  }
  {  // Injected hard read error surfaces as kError with detail.
    ScopedNetFaultPlan plan({NetFaultPoint::kReadError});
    EXPECT_EQ(RecvExactly(server, in, 1, 500, &error), IoStatus::kError);
    EXPECT_NE(error.find("injected"), std::string::npos);
  }
  {  // Injected mid-frame peer close surfaces as kClosed.
    ScopedNetFaultPlan plan({NetFaultPoint::kPeerClose});
    EXPECT_EQ(RecvExactly(server, in, 1, 500, &error), IoStatus::kClosed);
  }
  // Slow loris: the peer sends nothing; the deadline fires as kTimeout.
  EXPECT_EQ(RecvExactly(server, in, 1, 100, &error), IoStatus::kTimeout);

  EXPECT_GT(NetFault::Instance().faults_injected(), before);
}

TEST_F(ServerTest, FaultedTransportStillAcksEndToEnd) {
  // A fault plan armed while a real request is in flight: the daemon's
  // retry loops absorb the interrupts and the batch is still acked.
  Daemon daemon(options_);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect(daemon.ingest_port(), &error)) << error;
  ASSERT_TRUE(client.Hello("acme", &error)) << error;

  dsms::TraceConfig cfg;
  cfg.seed = 41;
  const auto packets = dsms::PacketGenerator(cfg).Generate(100);

  NetFaultPlan plan;
  plan.point = NetFaultPoint::kReadEintr;
  plan.times = 3;
  ScopedNetFaultPlan armed(plan);
  IngestReply reply;
  ASSERT_TRUE(
      client.Ingest(9, MakeBatch(packets, 0, 100), &reply, &error))
      << error;
  EXPECT_TRUE(reply.ok) << reply.message;

  daemon.Stop();
}

TEST_F(ServerTest, GracefulShutdownDrainsAndCheckpoints) {
  dsms::TraceConfig cfg;
  cfg.seed = 47;
  const auto packets = dsms::PacketGenerator(cfg).Generate(1000);

  std::uint64_t query_id = 0;
  {
    Daemon daemon(options_);
    std::string error;
    ASSERT_TRUE(daemon.Start(&error)) << error;
    Client client;
    ASSERT_TRUE(client.Connect(daemon.ingest_port(), &error)) << error;
    ASSERT_TRUE(client.Hello("acme", &error)) << error;
    ErrCode code = ErrCode::kNone;
    ASSERT_TRUE(client.RegisterQuery("hh", kGsql, false, &query_id, &code,
                                     &error))
        << error;
    IngestReply reply;
    ASSERT_TRUE(client.Ingest(1, MakeBatch(packets, 0, 1000), &reply, &error))
        << error;
    ASSERT_TRUE(reply.ok);
    daemon.Stop();
    // Stop is idempotent.
    daemon.Stop();
  }

  // The clean shutdown checkpoint makes restart replay-free: all state
  // comes from the newest snapshot.
  Daemon restarted(options_);
  std::string error;
  ASSERT_TRUE(restarted.Start(&error)) << error;
  EXPECT_EQ(restarted.batches_acked(), 1u);
  EXPECT_EQ(restarted.query_count(), 1u);
  Client client;
  ASSERT_TRUE(client.Connect(restarted.ingest_port(), &error)) << error;
  dsms::ResultSet result;
  ErrCode code = ErrCode::kNone;
  ASSERT_TRUE(client.PollResult(query_id, &result, &code, &error)) << error;
  EXPECT_EQ(EncodeResult(result),
            ReferenceResult(kGsql, options_.tenant_defaults, packets, 1000));
  restarted.Stop();
}

}  // namespace
}  // namespace fwdecay::server
