// Structured differential fuzzer for the GSQL parser (dsms/parser.cc).
//
// Two input sources, both seeded and fully deterministic:
//  1. a grammar-directed generator that emits syntactically valid queries
//     (random select lists, nested arithmetic/boolean expressions, WHERE/
//     GROUP BY/HAVING/ORDER BY/LIMIT clauses) — these MUST parse;
//  2. a mutation engine applying token-level and byte-level corruption
//     (splice, duplicate, truncate, flip, insert grammar tokens, deep
//     nesting) to a growing corpus — these must never crash, leak, or
//     report success with an empty Query.
//
// Run under ASan/UBSan this is the memory-safety harness for the whole
// lexer/parser; the per-result invariants catch state-machine bugs.

// GCC 12 emits spurious -Wrestrict ("accessing 9223372036854775810
// bytes") through inlined std::string appends in the recursive query
// generator — GCC bug PR105329. Suppressed for this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wrestrict"
#endif

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dsms/parser.h"
#include "util/random.h"

namespace fwdecay {
namespace {

using dsms::ParseExpressionOnly;
using dsms::ParseQuery;

// --- grammar-directed generation -----------------------------------------

const char* const kIdents[] = {"time", "len", "srcIP", "destIP", "srcPort",
                               "destPort", "protocol", "tb", "x", "y"};
const char* const kFuncs[] = {"count", "sum", "min", "max", "avg",
                              "exp", "log", "sqrt", "abs", "prisamp"};
// Freely chainable (left-associative) operators vs. comparisons, which
// the grammar makes non-associative: `a <= b >= c` is a syntax error, so
// the generator parenthesizes comparison operands.
const char* const kChainOps[] = {"+", "-", "*", "/", "%", " and ", " or "};
const char* const kCmpOps[] = {"<", "<=", ">", ">=", "=", "!="};
const char* const kStreams[] = {"TCP", "UDP", "PKT"};

std::string RandomExpr(Rng& rng, int depth) {
  switch (depth <= 0 ? rng.NextBounded(3) : rng.NextBounded(7)) {
    case 0:
      return std::to_string(rng.NextBounded(100000));
    case 1: {  // += (not operator+ chains): GCC 12 -Wrestrict false pos.
      std::string num = std::to_string(rng.NextBounded(1000));
      num += '.';
      num += std::to_string(rng.NextBounded(1000));
      return num;
    }
    case 2:
      return kIdents[rng.NextBounded(std::size(kIdents))];
    case 3:
      return "(" + RandomExpr(rng, depth - 1) + ")";
    case 4: {  // call with 0..3 args, or the special count(*)
      const char* fn = kFuncs[rng.NextBounded(std::size(kFuncs))];
      if (rng.NextBounded(6) == 0) return std::string(fn) + "(*)";
      std::string out = std::string(fn) + "(";
      const std::uint64_t argc = rng.NextBounded(3) + 1;
      for (std::uint64_t i = 0; i < argc; ++i) {
        if (i > 0) out += ", ";
        out += RandomExpr(rng, depth - 1);
      }
      return out + ")";
    }
    default: {
      // Operands are always parenthesized: a nested comparison exposed
      // to an enclosing comparison (`a <= b = c`) is a syntax error
      // under the grammar's non-associative comparison rule.
      const char* op =
          rng.NextBounded(2) == 0
              ? kCmpOps[rng.NextBounded(std::size(kCmpOps))]
              : kChainOps[rng.NextBounded(std::size(kChainOps))];
      return "(" + RandomExpr(rng, depth - 1) + ")" + op + "(" +
             RandomExpr(rng, depth - 1) + ")";
    }
  }
}

std::string RandomSelectItem(Rng& rng, int depth) {
  std::string item = RandomExpr(rng, depth);
  if (rng.NextBernoulli(0.3)) {
    item += " as ";
    item += kIdents[rng.NextBounded(std::size(kIdents))];
  }
  return item;
}

std::string RandomValidQuery(Rng& rng) {
  const int depth = 1 + static_cast<int>(rng.NextBounded(4));
  std::string q = "select ";
  const std::uint64_t nsel = 1 + rng.NextBounded(4);
  for (std::uint64_t i = 0; i < nsel; ++i) {
    if (i > 0) q += ", ";
    q += RandomSelectItem(rng, depth);
  }
  q += " from ";
  q += kStreams[rng.NextBounded(std::size(kStreams))];
  if (rng.NextBernoulli(0.5)) q += " where " + RandomExpr(rng, depth);
  if (rng.NextBernoulli(0.6)) {
    q += " group by ";
    const std::uint64_t ngrp = 1 + rng.NextBounded(3);
    for (std::uint64_t i = 0; i < ngrp; ++i) {
      if (i > 0) q += ", ";
      q += RandomSelectItem(rng, depth - 1);
    }
  }
  if (rng.NextBernoulli(0.25)) q += " having " + RandomExpr(rng, depth - 1);
  if (rng.NextBernoulli(0.3)) {
    q += " order by " + RandomExpr(rng, depth - 1);
    if (rng.NextBernoulli(0.5)) q += rng.NextBernoulli(0.5) ? " asc" : " desc";
  }
  if (rng.NextBernoulli(0.3)) {
    q += " limit " + std::to_string(rng.NextBounded(1000));
  }
  return q;
}

// --- mutation engine ------------------------------------------------------

// Tokens the lexer treats specially: keywords, operators, quotes, digits,
// and pathological fragments (unterminated strings, lone dots, huge
// numbers) chosen to stress every lexer state.
const char* const kSpliceTokens[] = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "as", "asc", "desc", "and", "or", "(", ")", ",", "*", "/", "%", "+",
    "-", "<", "<=", ">=", "!=", "=", "'", "''", "'unterminated", ".",
    "..", "1e309", "9223372036854775808", "18446744073709551616", "\t",
    "\n", "count(*)", "0x", "1.2.3", "--", ";"};

// Concat-built edit (instead of std::string::insert/erase, which trip
// GCC 12's -Wrestrict false positive when inlined under -O2).
std::string SpliceAt(const std::string& s, std::size_t pos, std::size_t drop,
                     const std::string& piece) {
  return s.substr(0, pos) + piece +
         s.substr(std::min(s.size(), pos + drop));
}

std::string Mutate(const std::string& input, Rng& rng) {
  std::string s = input;
  const std::uint64_t n_edits = 1 + rng.NextBounded(4);
  for (std::uint64_t e = 0; e < n_edits; ++e) {
    switch (rng.NextBounded(7)) {
      case 0:  // flip one byte to a random printable
        if (!s.empty()) {
          s[rng.NextBounded(s.size())] =
              static_cast<char>(rng.NextBounded(96) + 32);
        }
        break;
      case 1:  // delete a random span
        if (!s.empty()) {
          s = SpliceAt(s, rng.NextBounded(s.size()), rng.NextBounded(8) + 1,
                       "");
        }
        break;
      case 2: {  // insert a grammar token at a random position
        const char* tok =
            kSpliceTokens[rng.NextBounded(std::size(kSpliceTokens))];
        s = SpliceAt(s, rng.NextBounded(s.size() + 1), 0, tok);
        break;
      }
      case 3:  // duplicate a random span (token stutter)
        if (!s.empty()) {
          const std::size_t pos = rng.NextBounded(s.size());
          const std::size_t len =
              std::min<std::size_t>(rng.NextBounded(12) + 1, s.size() - pos);
          s = SpliceAt(s, pos, 0, s.substr(pos, len));
        }
        break;
      case 4:  // truncate
        s = s.substr(0, rng.NextBounded(s.size() + 1));
        break;
      case 5: {  // wrap a span in parens (nesting stress)
        const std::size_t open = rng.NextBounded(s.size() + 1);
        const std::size_t close =
            open + rng.NextBounded(s.size() + 1 - open);
        s = s.substr(0, open) + "(" + s.substr(open, close - open) + ")" +
            s.substr(close);
        break;
      }
      default: {  // splice: swap tails with another valid query
        const std::string other = RandomValidQuery(rng);
        s = s.substr(0, rng.NextBounded(s.size() + 1)) +
            other.substr(rng.NextBounded(other.size() + 1));
        break;
      }
    }
  }
  return s;
}

// Per-result invariants: success and diagnostic are mutually exclusive,
// and a successful parse yields a structurally sane query.
void CheckParseInvariants(const std::string& input) {
  const dsms::ParseResult res = ParseQuery(input);
  if (res.ok()) {
    ASSERT_TRUE(res.error.empty()) << "ok parse with diagnostic: " << input;
    ASSERT_FALSE(res.query->select.empty())
        << "ok parse with empty select list: " << input;
    ASSERT_FALSE(res.query->from.empty())
        << "ok parse with empty stream name: " << input;
    for (const auto& item : res.query->select) {
      ASSERT_NE(item.expr, nullptr) << input;
    }
    for (const auto& item : res.query->group_by) {
      ASSERT_NE(item.expr, nullptr) << input;
    }
  } else {
    ASSERT_FALSE(res.error.empty())
        << "failed parse with empty diagnostic: " << input;
  }
}

TEST(ParserStructuredFuzzTest, GeneratedValidQueriesAlwaysParse) {
  Rng rng(0xfeed0001);
  for (int trial = 0; trial < 4000; ++trial) {
    const std::string q = RandomValidQuery(rng);
    const dsms::ParseResult res = ParseQuery(q);
    ASSERT_TRUE(res.ok()) << "valid query rejected: " << q
                          << "\n  diagnostic: " << res.error;
    ASSERT_TRUE(res.error.empty()) << q;
  }
}

TEST(ParserStructuredFuzzTest, MutatedQueriesUpholdInvariants) {
  Rng rng(0xfeed0002);
  // Corpus-driven mutation: interesting inputs (ones that still parse)
  // re-enter the corpus so mutations compound, coverage-guided-lite.
  std::vector<std::string> corpus;
  corpus.reserve(512);
  for (int i = 0; i < 8; ++i) corpus.push_back(RandomValidQuery(rng));
  int executed = 0;
  for (int trial = 0; trial < 12000; ++trial) {
    const std::string& base = corpus[rng.NextBounded(corpus.size())];
    const std::string mutant = Mutate(base, rng);
    CheckParseInvariants(mutant);
    ++executed;
    if (corpus.size() < 512 && ParseQuery(mutant).ok()) {
      corpus.push_back(mutant);
    }
  }
  // The acceptance bar for this harness: >= 10k mutated inputs per run.
  EXPECT_GE(executed, 10000);
}

TEST(ParserStructuredFuzzTest, ExpressionParserUpholdsInvariants) {
  Rng rng(0xfeed0003);
  for (int trial = 0; trial < 6000; ++trial) {
    std::string input = RandomExpr(rng, 3);
    if (trial % 2 == 1) input = Mutate(input, rng);
    const dsms::ExprParseResult res = ParseExpressionOnly(input);
    if (res.ok()) {
      ASSERT_TRUE(res.error.empty()) << input;
    } else {
      ASSERT_FALSE(res.error.empty()) << input;
    }
  }
}

// Adversarial depth: parsers with unbounded recursion blow the stack long
// before 100k frames; this documents that ours either parses or reports a
// diagnostic on pathological nesting instead of crashing.
TEST(ParserStructuredFuzzTest, DeepNestingDoesNotCrash) {
  for (const int depth : {16, 256, 4096}) {
    std::string q = "select ";
    for (int i = 0; i < depth; ++i) q += "(";
    q += "1";
    for (int i = 0; i < depth; ++i) q += ")";
    q += " from TCP";
    CheckParseInvariants(q);
  }
}

}  // namespace
}  // namespace fwdecay
