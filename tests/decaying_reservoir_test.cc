// Tests for the DecayingReservoir metrics application layer.

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_reservoir.h"
#include "core/decaying_reservoir.h"
#include "util/random.h"

namespace fwdecay {
namespace {

TEST(DecayingReservoirTest, EmptySnapshot) {
  DecayingReservoir reservoir(128, 0.015, 0.0);
  const auto snap = reservoir.Snapshot();
  EXPECT_EQ(snap.size, 0u);
  EXPECT_DOUBLE_EQ(snap.mean, 0.0);
}

TEST(DecayingReservoirTest, KeepsEverythingUnderCapacity) {
  DecayingReservoir reservoir(100, 0.015, 0.0);
  for (int i = 0; i < 50; ++i) {
    reservoir.Update(static_cast<double>(i), 10.0);
  }
  const auto snap = reservoir.Snapshot();
  EXPECT_EQ(snap.size, 50u);
  EXPECT_DOUBLE_EQ(snap.mean, 10.0);
  EXPECT_DOUBLE_EQ(snap.median, 10.0);
  EXPECT_DOUBLE_EQ(snap.stddev, 0.0);
}

TEST(DecayingReservoirTest, SnapshotOrderStatisticsConsistent) {
  DecayingReservoir reservoir(256, 0.01, 0.0);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    reservoir.Update(0.01 * i, rng.NextDouble() * 100.0);
  }
  const auto snap = reservoir.Snapshot();
  EXPECT_EQ(snap.size, 256u);
  EXPECT_LE(snap.min, snap.median);
  EXPECT_LE(snap.median, snap.p75);
  EXPECT_LE(snap.p75, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_LE(snap.p99, snap.max);
  EXPECT_GE(snap.mean, snap.min);
  EXPECT_LE(snap.mean, snap.max);
}

TEST(DecayingReservoirTest, TracksRegimeShift) {
  // Old regime value 10, new regime value 100: with a strong decay the
  // snapshot after the shift must be dominated by the new regime.
  DecayingReservoir reservoir(200, 0.1, 0.0, /*seed=*/3);
  for (int i = 0; i < 20000; ++i) {
    reservoir.Update(0.01 * i, 10.0);  // t in [0, 200)
  }
  for (int i = 0; i < 20000; ++i) {
    reservoir.Update(200.0 + 0.01 * i, 100.0);  // t in [200, 400)
  }
  const auto snap = reservoir.Snapshot();
  EXPECT_DOUBLE_EQ(snap.median, 100.0);
  EXPECT_GT(snap.mean, 90.0);
}

TEST(DecayingReservoirTest, UniformWhenTimestampsEqual) {
  // All measurements at the same instant have equal weight: the sample
  // is a plain uniform one and the mean estimates the population mean.
  DecayingReservoir reservoir(512, 0.015, 0.0, /*seed=*/4);
  Rng rng(5);
  RunningStats truth;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextDouble() * 50.0;
    truth.Add(v);
    reservoir.Update(1.0, v);
  }
  const auto snap = reservoir.Snapshot();
  EXPECT_NEAR(snap.mean, truth.mean(), 3.0);
  EXPECT_NEAR(snap.median, 25.0, 5.0);
}

TEST(DecayingReservoirTest, NoOverflowOverVeryLongHorizons) {
  // alpha * (t - L) reaches 1e7 — the classic linear-domain weights would
  // overflow at ~710; the log-domain implementation just works.
  DecayingReservoir reservoir(64, 1.0, 0.0, /*seed=*/6);
  for (int day = 0; day < 100; ++day) {
    const double t = 1e5 * day;
    for (int i = 0; i < 100; ++i) {
      reservoir.Update(t + i, static_cast<double>(day));
    }
  }
  const auto snap = reservoir.Snapshot();
  EXPECT_EQ(snap.size, 64u);
  // Only the newest day survives in the sample.
  EXPECT_DOUBLE_EQ(snap.min, 99.0);
  EXPECT_TRUE(std::isfinite(snap.mean));
}

TEST(ConcurrentDecayingReservoirTest, ParallelUpdatesAndSnapshots) {
  ConcurrentDecayingReservoir reservoir(256, 0.01, 0.0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&reservoir, w] {
      Rng rng(1000 + static_cast<std::uint64_t>(w));
      for (int i = 0; i < kPerThread; ++i) {
        reservoir.Update(0.001 * i, 10.0 + rng.NextDouble() * 5.0);
        if (i % 1000 == 0) {
          const auto snap = reservoir.Snapshot();  // concurrent reads
          if (snap.size > 0) {
            EXPECT_GE(snap.min, 10.0);
            EXPECT_LE(snap.max, 15.0);
          }
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  const auto snap = reservoir.Snapshot();
  EXPECT_EQ(snap.size, 256u);
  EXPECT_GE(snap.median, 10.0);
  EXPECT_LE(snap.median, 15.0);
}

TEST(DecayingReservoirTest, OutOfOrderMeasurementsAccepted) {
  DecayingReservoir a(128, 0.05, 0.0, /*seed=*/7);
  DecayingReservoir b(128, 0.05, 0.0, /*seed=*/7);
  const double stamps[] = {5.0, 1.0, 9.0, 3.0, 7.0};
  for (double ts : stamps) a.Update(ts, ts);
  for (double ts : {1.0, 3.0, 5.0, 7.0, 9.0}) b.Update(ts, ts);
  // Same multiset retained while under capacity, regardless of order.
  auto sa = a.Snapshot().values;
  auto sb = b.Snapshot().values;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  EXPECT_EQ(sa, sb);
}

}  // namespace
}  // namespace fwdecay
