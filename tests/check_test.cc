// Contract tests for util/check.h.
//
// Death tests pin down the failure mode library code relies on: a failed
// FWDECAY_CHECK aborts (it must not be continuable) and the diagnostic
// names the file, line, failing expression, and optional message — the
// debugging contract for an exception-free library.
//
// The NDEBUG half runs against check_ndebug_helper.cc, which is compiled
// with NDEBUG forced on (see tests/CMakeLists.txt), proving that
// FWDECAY_DCHECK is free in release builds: it neither aborts nor even
// evaluates its condition.

#include <gtest/gtest.h>

#include "util/check.h"

namespace fwdecay {

namespace testing {
bool DcheckFalseIsNoopUnderNdebug();          // check_ndebug_helper.cc
int DcheckConditionEvaluationsUnderNdebug();  // check_ndebug_helper.cc
}  // namespace testing

namespace {

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, CheckFalseAbortsWithFileLineAndExpression) {
  // The diagnostic must carry this file's name, a line number, and the
  // stringized expression so a production abort is actionable from the
  // log alone.
  EXPECT_DEATH(FWDECAY_CHECK(1 + 1 == 3),
               "FWDECAY_CHECK failed at .*check_test\\.cc:[0-9]+: 1 \\+ 1 == 3");
}

TEST(CheckDeathTest, CheckMsgAppendsExplanation) {
  EXPECT_DEATH(FWDECAY_CHECK_MSG(false, "capacity must be positive"),
               "FWDECAY_CHECK failed at .*check_test\\.cc:[0-9]+: false — "
               "capacity must be positive");
}

TEST(CheckDeathTest, CheckTrueIsSilent) {
  FWDECAY_CHECK(2 + 2 == 4);
  FWDECAY_CHECK_MSG(true, "never printed");
}

TEST(CheckDeathTest, CheckEvaluatesConditionExactlyOnce) {
  int evaluations = 0;
  FWDECAY_CHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

#ifdef NDEBUG
TEST(CheckDeathTest, DcheckFalseAbortsInThisBuild) {
  GTEST_SKIP() << "NDEBUG build: FWDECAY_DCHECK compiles away here; the "
                  "release-mode behaviour is covered by the NdebugDcheck "
                  "tests below.";
}
#else
TEST(CheckDeathTest, DcheckFalseAbortsInThisBuild) {
  EXPECT_DEATH(FWDECAY_DCHECK(false),
               "FWDECAY_CHECK failed at .*check_test\\.cc:[0-9]+: false");
}
#endif

// Release-mode contract, independent of how THIS TU was compiled: the
// helper TU always has NDEBUG on.
TEST(NdebugDcheckTest, DcheckFalseCompilesAway) {
  EXPECT_TRUE(testing::DcheckFalseIsNoopUnderNdebug());
}

TEST(NdebugDcheckTest, DcheckDoesNotEvaluateItsCondition) {
  EXPECT_EQ(testing::DcheckConditionEvaluationsUnderNdebug(), 0);
}

}  // namespace
}  // namespace fwdecay
