# Empty compiler generated dependencies file for bench_fig4_hh_eps.
# This may be replaced when dependencies are built.
