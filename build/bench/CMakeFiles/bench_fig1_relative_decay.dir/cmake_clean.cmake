file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_relative_decay.dir/bench_fig1_relative_decay.cc.o"
  "CMakeFiles/bench_fig1_relative_decay.dir/bench_fig1_relative_decay.cc.o.d"
  "bench_fig1_relative_decay"
  "bench_fig1_relative_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_relative_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
