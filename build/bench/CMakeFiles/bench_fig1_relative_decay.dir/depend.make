# Empty dependencies file for bench_fig1_relative_decay.
# This may be replaced when dependencies are built.
