file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sampling.dir/bench_fig3_sampling.cc.o"
  "CMakeFiles/bench_fig3_sampling.dir/bench_fig3_sampling.cc.o.d"
  "bench_fig3_sampling"
  "bench_fig3_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
