file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_count_sum.dir/bench_fig2_count_sum.cc.o"
  "CMakeFiles/bench_fig2_count_sum.dir/bench_fig2_count_sum.cc.o.d"
  "bench_fig2_count_sum"
  "bench_fig2_count_sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_count_sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
