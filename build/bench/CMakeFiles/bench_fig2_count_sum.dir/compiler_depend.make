# Empty compiler generated dependencies file for bench_fig2_count_sum.
# This may be replaced when dependencies are built.
