file(REMOVE_RECURSE
  "libfwdecay_bench_util.a"
)
