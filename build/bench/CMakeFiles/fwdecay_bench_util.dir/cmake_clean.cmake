file(REMOVE_RECURSE
  "CMakeFiles/fwdecay_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/fwdecay_bench_util.dir/bench_util.cc.o.d"
  "libfwdecay_bench_util.a"
  "libfwdecay_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwdecay_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
