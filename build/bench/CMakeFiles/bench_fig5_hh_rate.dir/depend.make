# Empty dependencies file for bench_fig5_hh_rate.
# This may be replaced when dependencies are built.
