file(REMOVE_RECURSE
  "libfwdecay_util.a"
)
