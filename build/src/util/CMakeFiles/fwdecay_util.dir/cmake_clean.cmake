file(REMOVE_RECURSE
  "CMakeFiles/fwdecay_util.dir/stats.cc.o"
  "CMakeFiles/fwdecay_util.dir/stats.cc.o.d"
  "CMakeFiles/fwdecay_util.dir/table_printer.cc.o"
  "CMakeFiles/fwdecay_util.dir/table_printer.cc.o.d"
  "CMakeFiles/fwdecay_util.dir/zipf.cc.o"
  "CMakeFiles/fwdecay_util.dir/zipf.cc.o.d"
  "libfwdecay_util.a"
  "libfwdecay_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwdecay_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
