# Empty dependencies file for fwdecay_util.
# This may be replaced when dependencies are built.
