file(REMOVE_RECURSE
  "libfwdecay_dsms.a"
)
