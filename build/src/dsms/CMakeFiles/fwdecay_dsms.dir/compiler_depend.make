# Empty compiler generated dependencies file for fwdecay_dsms.
# This may be replaced when dependencies are built.
