file(REMOVE_RECURSE
  "CMakeFiles/fwdecay_dsms.dir/agg.cc.o"
  "CMakeFiles/fwdecay_dsms.dir/agg.cc.o.d"
  "CMakeFiles/fwdecay_dsms.dir/engine.cc.o"
  "CMakeFiles/fwdecay_dsms.dir/engine.cc.o.d"
  "CMakeFiles/fwdecay_dsms.dir/expr.cc.o"
  "CMakeFiles/fwdecay_dsms.dir/expr.cc.o.d"
  "CMakeFiles/fwdecay_dsms.dir/netgen.cc.o"
  "CMakeFiles/fwdecay_dsms.dir/netgen.cc.o.d"
  "CMakeFiles/fwdecay_dsms.dir/parser.cc.o"
  "CMakeFiles/fwdecay_dsms.dir/parser.cc.o.d"
  "CMakeFiles/fwdecay_dsms.dir/trace_io.cc.o"
  "CMakeFiles/fwdecay_dsms.dir/trace_io.cc.o.d"
  "CMakeFiles/fwdecay_dsms.dir/tumbling.cc.o"
  "CMakeFiles/fwdecay_dsms.dir/tumbling.cc.o.d"
  "CMakeFiles/fwdecay_dsms.dir/udafs.cc.o"
  "CMakeFiles/fwdecay_dsms.dir/udafs.cc.o.d"
  "CMakeFiles/fwdecay_dsms.dir/value.cc.o"
  "CMakeFiles/fwdecay_dsms.dir/value.cc.o.d"
  "CMakeFiles/fwdecay_dsms.dir/windows.cc.o"
  "CMakeFiles/fwdecay_dsms.dir/windows.cc.o.d"
  "libfwdecay_dsms.a"
  "libfwdecay_dsms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwdecay_dsms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
