
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsms/agg.cc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/agg.cc.o" "gcc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/agg.cc.o.d"
  "/root/repo/src/dsms/engine.cc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/engine.cc.o" "gcc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/engine.cc.o.d"
  "/root/repo/src/dsms/expr.cc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/expr.cc.o" "gcc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/expr.cc.o.d"
  "/root/repo/src/dsms/netgen.cc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/netgen.cc.o" "gcc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/netgen.cc.o.d"
  "/root/repo/src/dsms/parser.cc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/parser.cc.o" "gcc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/parser.cc.o.d"
  "/root/repo/src/dsms/trace_io.cc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/trace_io.cc.o" "gcc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/trace_io.cc.o.d"
  "/root/repo/src/dsms/tumbling.cc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/tumbling.cc.o" "gcc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/tumbling.cc.o.d"
  "/root/repo/src/dsms/udafs.cc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/udafs.cc.o" "gcc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/udafs.cc.o.d"
  "/root/repo/src/dsms/value.cc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/value.cc.o" "gcc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/value.cc.o.d"
  "/root/repo/src/dsms/windows.cc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/windows.cc.o" "gcc" "src/dsms/CMakeFiles/fwdecay_dsms.dir/windows.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fwdecay_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/fwdecay_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fwdecay_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
