# Empty dependencies file for fwdecay_core.
# This may be replaced when dependencies are built.
