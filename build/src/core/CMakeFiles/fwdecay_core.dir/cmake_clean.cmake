file(REMOVE_RECURSE
  "CMakeFiles/fwdecay_core.dir/exact_reference.cc.o"
  "CMakeFiles/fwdecay_core.dir/exact_reference.cc.o.d"
  "libfwdecay_core.a"
  "libfwdecay_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwdecay_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
