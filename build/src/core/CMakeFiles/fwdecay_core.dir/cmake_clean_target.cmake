file(REMOVE_RECURSE
  "libfwdecay_core.a"
)
