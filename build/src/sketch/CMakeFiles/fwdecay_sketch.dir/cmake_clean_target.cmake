file(REMOVE_RECURSE
  "libfwdecay_sketch.a"
)
