file(REMOVE_RECURSE
  "CMakeFiles/fwdecay_sketch.dir/backward_sum.cc.o"
  "CMakeFiles/fwdecay_sketch.dir/backward_sum.cc.o.d"
  "CMakeFiles/fwdecay_sketch.dir/count_min.cc.o"
  "CMakeFiles/fwdecay_sketch.dir/count_min.cc.o.d"
  "CMakeFiles/fwdecay_sketch.dir/dominance_norm.cc.o"
  "CMakeFiles/fwdecay_sketch.dir/dominance_norm.cc.o.d"
  "CMakeFiles/fwdecay_sketch.dir/exp_histogram.cc.o"
  "CMakeFiles/fwdecay_sketch.dir/exp_histogram.cc.o.d"
  "CMakeFiles/fwdecay_sketch.dir/qdigest.cc.o"
  "CMakeFiles/fwdecay_sketch.dir/qdigest.cc.o.d"
  "CMakeFiles/fwdecay_sketch.dir/sliding_hh.cc.o"
  "CMakeFiles/fwdecay_sketch.dir/sliding_hh.cc.o.d"
  "CMakeFiles/fwdecay_sketch.dir/sliding_quantiles.cc.o"
  "CMakeFiles/fwdecay_sketch.dir/sliding_quantiles.cc.o.d"
  "CMakeFiles/fwdecay_sketch.dir/space_saving.cc.o"
  "CMakeFiles/fwdecay_sketch.dir/space_saving.cc.o.d"
  "CMakeFiles/fwdecay_sketch.dir/tdigest.cc.o"
  "CMakeFiles/fwdecay_sketch.dir/tdigest.cc.o.d"
  "CMakeFiles/fwdecay_sketch.dir/waves.cc.o"
  "CMakeFiles/fwdecay_sketch.dir/waves.cc.o.d"
  "libfwdecay_sketch.a"
  "libfwdecay_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwdecay_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
