# Empty compiler generated dependencies file for fwdecay_sketch.
# This may be replaced when dependencies are built.
