
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/backward_sum.cc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/backward_sum.cc.o" "gcc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/backward_sum.cc.o.d"
  "/root/repo/src/sketch/count_min.cc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/count_min.cc.o" "gcc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/count_min.cc.o.d"
  "/root/repo/src/sketch/dominance_norm.cc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/dominance_norm.cc.o" "gcc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/dominance_norm.cc.o.d"
  "/root/repo/src/sketch/exp_histogram.cc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/exp_histogram.cc.o" "gcc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/exp_histogram.cc.o.d"
  "/root/repo/src/sketch/qdigest.cc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/qdigest.cc.o" "gcc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/qdigest.cc.o.d"
  "/root/repo/src/sketch/sliding_hh.cc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/sliding_hh.cc.o" "gcc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/sliding_hh.cc.o.d"
  "/root/repo/src/sketch/sliding_quantiles.cc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/sliding_quantiles.cc.o" "gcc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/sliding_quantiles.cc.o.d"
  "/root/repo/src/sketch/space_saving.cc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/space_saving.cc.o" "gcc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/space_saving.cc.o.d"
  "/root/repo/src/sketch/tdigest.cc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/tdigest.cc.o" "gcc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/tdigest.cc.o.d"
  "/root/repo/src/sketch/waves.cc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/waves.cc.o" "gcc" "src/sketch/CMakeFiles/fwdecay_sketch.dir/waves.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fwdecay_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
