file(REMOVE_RECURSE
  "CMakeFiles/distributed_merge.dir/distributed_merge.cpp.o"
  "CMakeFiles/distributed_merge.dir/distributed_merge.cpp.o.d"
  "distributed_merge"
  "distributed_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
