file(REMOVE_RECURSE
  "CMakeFiles/gsql_cli.dir/gsql_cli.cpp.o"
  "CMakeFiles/gsql_cli.dir/gsql_cli.cpp.o.d"
  "gsql_cli"
  "gsql_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsql_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
