# Empty dependencies file for gsql_cli.
# This may be replaced when dependencies are built.
