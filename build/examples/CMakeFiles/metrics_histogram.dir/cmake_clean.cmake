file(REMOVE_RECURSE
  "CMakeFiles/metrics_histogram.dir/metrics_histogram.cpp.o"
  "CMakeFiles/metrics_histogram.dir/metrics_histogram.cpp.o.d"
  "metrics_histogram"
  "metrics_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
