# Empty dependencies file for metrics_histogram.
# This may be replaced when dependencies are built.
