file(REMOVE_RECURSE
  "CMakeFiles/gsql_dashboard.dir/gsql_dashboard.cpp.o"
  "CMakeFiles/gsql_dashboard.dir/gsql_dashboard.cpp.o.d"
  "gsql_dashboard"
  "gsql_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsql_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
