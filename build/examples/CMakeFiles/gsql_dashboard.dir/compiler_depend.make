# Empty compiler generated dependencies file for gsql_dashboard.
# This may be replaced when dependencies are built.
