file(REMOVE_RECURSE
  "CMakeFiles/decayed_sampling.dir/decayed_sampling.cpp.o"
  "CMakeFiles/decayed_sampling.dir/decayed_sampling.cpp.o.d"
  "decayed_sampling"
  "decayed_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decayed_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
