# Empty dependencies file for decayed_sampling.
# This may be replaced when dependencies are built.
