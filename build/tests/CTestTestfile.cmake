# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/decay_test[1]_include.cmake")
include("/root/repo/build/tests/aggregates_test[1]_include.cmake")
include("/root/repo/build/tests/space_saving_test[1]_include.cmake")
include("/root/repo/build/tests/qdigest_test[1]_include.cmake")
include("/root/repo/build/tests/exp_histogram_test[1]_include.cmake")
include("/root/repo/build/tests/distinct_test[1]_include.cmake")
include("/root/repo/build/tests/heavy_hitters_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/dsms_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/waves_test[1]_include.cmake")
include("/root/repo/build/tests/tumbling_test[1]_include.cmake")
include("/root/repo/build/tests/udaf_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/decaying_reservoir_test[1]_include.cmake")
include("/root/repo/build/tests/gsql_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/backends_test[1]_include.cmake")
include("/root/repo/build/tests/windows_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/topk_histogram_test[1]_include.cmake")
include("/root/repo/build/tests/error_bounds_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
