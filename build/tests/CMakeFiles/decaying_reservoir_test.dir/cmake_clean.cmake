file(REMOVE_RECURSE
  "CMakeFiles/decaying_reservoir_test.dir/decaying_reservoir_test.cc.o"
  "CMakeFiles/decaying_reservoir_test.dir/decaying_reservoir_test.cc.o.d"
  "decaying_reservoir_test"
  "decaying_reservoir_test.pdb"
  "decaying_reservoir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decaying_reservoir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
