# Empty dependencies file for decaying_reservoir_test.
# This may be replaced when dependencies are built.
