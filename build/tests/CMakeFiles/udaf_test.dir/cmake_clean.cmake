file(REMOVE_RECURSE
  "CMakeFiles/udaf_test.dir/udaf_test.cc.o"
  "CMakeFiles/udaf_test.dir/udaf_test.cc.o.d"
  "udaf_test"
  "udaf_test.pdb"
  "udaf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udaf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
