# Empty dependencies file for udaf_test.
# This may be replaced when dependencies are built.
