file(REMOVE_RECURSE
  "CMakeFiles/gsql_extensions_test.dir/gsql_extensions_test.cc.o"
  "CMakeFiles/gsql_extensions_test.dir/gsql_extensions_test.cc.o.d"
  "gsql_extensions_test"
  "gsql_extensions_test.pdb"
  "gsql_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsql_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
