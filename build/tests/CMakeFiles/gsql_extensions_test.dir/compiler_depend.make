# Empty compiler generated dependencies file for gsql_extensions_test.
# This may be replaced when dependencies are built.
