file(REMOVE_RECURSE
  "CMakeFiles/distinct_test.dir/distinct_test.cc.o"
  "CMakeFiles/distinct_test.dir/distinct_test.cc.o.d"
  "distinct_test"
  "distinct_test.pdb"
  "distinct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distinct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
