
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dsms_test.cc" "tests/CMakeFiles/dsms_test.dir/dsms_test.cc.o" "gcc" "tests/CMakeFiles/dsms_test.dir/dsms_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsms/CMakeFiles/fwdecay_dsms.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fwdecay_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/fwdecay_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fwdecay_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
