# Empty dependencies file for dsms_test.
# This may be replaced when dependencies are built.
