# Empty compiler generated dependencies file for topk_histogram_test.
# This may be replaced when dependencies are built.
