file(REMOVE_RECURSE
  "CMakeFiles/topk_histogram_test.dir/topk_histogram_test.cc.o"
  "CMakeFiles/topk_histogram_test.dir/topk_histogram_test.cc.o.d"
  "topk_histogram_test"
  "topk_histogram_test.pdb"
  "topk_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topk_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
