file(REMOVE_RECURSE
  "CMakeFiles/waves_test.dir/waves_test.cc.o"
  "CMakeFiles/waves_test.dir/waves_test.cc.o.d"
  "waves_test"
  "waves_test.pdb"
  "waves_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/waves_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
