# Empty dependencies file for waves_test.
# This may be replaced when dependencies are built.
