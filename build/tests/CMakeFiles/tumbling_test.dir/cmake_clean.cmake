file(REMOVE_RECURSE
  "CMakeFiles/tumbling_test.dir/tumbling_test.cc.o"
  "CMakeFiles/tumbling_test.dir/tumbling_test.cc.o.d"
  "tumbling_test"
  "tumbling_test.pdb"
  "tumbling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tumbling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
