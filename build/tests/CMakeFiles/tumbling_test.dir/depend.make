# Empty dependencies file for tumbling_test.
# This may be replaced when dependencies are built.
