// Micro/ablation benchmarks (google-benchmark) for the design choices
// DESIGN.md calls out:
//  - O(1) decayed aggregates vs exact backward recomputation,
//  - unary-optimized vs heap-based weighted SpaceSaving,
//  - A-Res vs A-ExpJ vs with-replacement chains vs priority sampling,
//  - q-digest and EH update costs across eps,
//  - exponential landmark rescaling (the Section VI-A linear pass),
//  - one-level vs two-level engine aggregation.

#include <cmath>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/aggregates.h"
#include "core/exact_reference.h"
#include "core/forward_decay.h"
#include "dsms/engine.h"
#include "sampling/priority_sampling.h"
#include "sampling/weighted_reservoir.h"
#include "sampling/with_replacement.h"
#include "sketch/count_min.h"
#include "sketch/exp_histogram.h"
#include "sketch/qdigest.h"
#include "sketch/sliding_quantiles.h"
#include "sketch/space_saving.h"
#include "sketch/tdigest.h"
#include "sketch/waves.h"
#include "util/random.h"
#include "util/zipf.h"

#include "bench_util.h"

namespace {

using namespace fwdecay;

// Pre-generated keys/timestamps so generation cost stays out of the loop.
struct Workload {
  std::vector<std::uint64_t> keys;
  std::vector<double> stamps;
};

const Workload& SharedWorkload() {
  static Workload& w = *new Workload();
  if (w.keys.empty()) {
    Rng rng(7);
    ZipfGenerator zipf(20000, 1.1);
    double t = 0.0;
    for (int i = 0; i < 1 << 20; ++i) {
      w.keys.push_back(zipf.Next(rng));
      t += rng.NextExponential(100000.0);
      w.stamps.push_back(t);
    }
  }
  return w;
}

void BM_DecayedMomentsAdd(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  DecayedMoments<MonomialG> m(ForwardDecay<MonomialG>(MonomialG(2.0), 0.0));
  std::size_t i = 0;
  for (auto _ : state) {
    m.Add(w.stamps[i & 0xfffff], 42.0);
    ++i;
  }
  benchmark::DoNotOptimize(m.Sum(100.0));
}
BENCHMARK(BM_DecayedMomentsAdd);

void BM_ExactBackwardQuery(benchmark::State& state) {
  // The strawman the paper opens with: exact backward decay revisits
  // every buffered item per query.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Workload& w = SharedWorkload();
  ExactDecayedReference ref;
  for (std::size_t i = 0; i < n; ++i) ref.Add(w.stamps[i], w.keys[i], 1.0);
  const auto wf = BackwardWeightFn(PolynomialF(2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ref.Sum(w.stamps[n - 1] + 1.0, wf));
  }
}
BENCHMARK(BM_ExactBackwardQuery)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_UnarySpaceSaving(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  UnarySpaceSaving ss(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    ss.Update(w.keys[i & 0xfffff]);
    ++i;
  }
}
BENCHMARK(BM_UnarySpaceSaving)->Arg(100)->Arg(1000);

void BM_WeightedSpaceSaving(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  WeightedSpaceSaving ss(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t j = i & 0xfffff;
    const double n = std::fmod(w.stamps[j], 60.0);
    ss.Update(w.keys[j], n * n + 1e-9);
    ++i;
  }
}
BENCHMARK(BM_WeightedSpaceSaving)->Arg(100)->Arg(1000);

void BM_SpaceSavingScaleWeights(benchmark::State& state) {
  // The Section VI-A rescaling pass over a full sketch.
  const Workload& w = SharedWorkload();
  WeightedSpaceSaving ss(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < (1 << 18); ++i) ss.Update(w.keys[i], 1.0);
  for (auto _ : state) {
    ss.ScaleWeights(0.5);
    ss.ScaleWeights(2.0);
  }
}
BENCHMARK(BM_SpaceSavingScaleWeights)->Arg(100)->Arg(10000);

void BM_ARes(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  Rng rng(1);
  ForwardDecay<ExponentialG> decay(ExponentialG(1.0), 0.0);
  WeightedReservoirSampler<std::uint64_t, ExponentialG> sampler(
      decay, static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t j = i & 0xfffff;
    sampler.Add(w.stamps[j], w.keys[j], rng);
    ++i;
  }
}
BENCHMARK(BM_ARes)->Arg(100)->Arg(1000);

void BM_AExpJ(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  Rng rng(2);
  ForwardDecay<ExponentialG> decay(ExponentialG(1.0), 0.0);
  ExpJumpsReservoirSampler<std::uint64_t, ExponentialG> sampler(
      decay, static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t j = i & 0xfffff;
    sampler.Add(w.stamps[j], w.keys[j], rng);
    ++i;
  }
}
BENCHMARK(BM_AExpJ)->Arg(100)->Arg(1000);

void BM_PrioritySampling(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  Rng rng(3);
  ForwardDecay<ExponentialG> decay(ExponentialG(1.0), 0.0);
  PrioritySampler<std::uint64_t, ExponentialG> sampler(
      decay, static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t j = i & 0xfffff;
    sampler.Add(w.stamps[j], w.keys[j], rng);
    ++i;
  }
}
BENCHMARK(BM_PrioritySampling)->Arg(100)->Arg(1000);

void BM_WithReplacementChains(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  Rng rng(4);
  ForwardDecay<MonomialG> decay(MonomialG(2.0), 0.0);
  ForwardDecaySamplerWR<std::uint64_t, MonomialG> sampler(
      decay, static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t j = i & 0xfffff;
    sampler.Add(w.stamps[j] + 0.001, w.keys[j], rng);
    ++i;
  }
}
BENCHMARK(BM_WithReplacementChains)->Arg(10)->Arg(100);

void BM_QDigestUpdate(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  QDigest qd(16, 1.0 / static_cast<double>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t j = i & 0xfffff;
    qd.Update(w.keys[j] & 0xffff, std::fmod(w.stamps[j], 60.0) + 0.001);
    ++i;
  }
}
BENCHMARK(BM_QDigestUpdate)->Arg(20)->Arg(100);

void BM_EhCountInsert(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  EhCount eh(1.0 / static_cast<double>(state.range(0)));
  std::size_t i = 0;
  double last = 0.0;
  for (auto _ : state) {
    last += 1e-5;
    eh.Insert(last);
    ++i;
    (void)w;
  }
}
BENCHMARK(BM_EhCountInsert)->Arg(10)->Arg(100);

void BM_EhSumInsert(benchmark::State& state) {
  EhSum eh(1.0 / static_cast<double>(state.range(0)), /*value_bits=*/11);
  Rng rng(5);
  double last = 0.0;
  for (auto _ : state) {
    last += 1e-5;
    eh.Insert(last, 40 + rng.NextBounded(1460));
  }
}
BENCHMARK(BM_EhSumInsert)->Arg(10)->Arg(100);

void BM_CountMinUpdate(benchmark::State& state) {
  // Ablation: Count-Min vs weighted SpaceSaving as the Theorem 2 backend.
  const Workload& w = SharedWorkload();
  CountMinSketch cm(1.0 / static_cast<double>(state.range(0)), 0.01);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t j = i & 0xfffff;
    const double n = std::fmod(w.stamps[j], 60.0);
    cm.Update(w.keys[j], n * n + 1e-9);
    ++i;
  }
}
BENCHMARK(BM_CountMinUpdate)->Arg(100)->Arg(1000);

void BM_TDigestAdd(benchmark::State& state) {
  // Ablation: t-digest vs q-digest as the Theorem 3 backend.
  const Workload& w = SharedWorkload();
  TDigest td(static_cast<double>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::size_t j = i & 0xfffff;
    td.Add(static_cast<double>(w.keys[j] & 0xffff),
           std::fmod(w.stamps[j], 60.0) + 0.001);
    ++i;
  }
}
BENCHMARK(BM_TDigestAdd)->Arg(100)->Arg(500);

void BM_SlidingQuantilesUpdate(benchmark::State& state) {
  // The backward-decay quantile baseline's per-tuple cost, for contrast
  // with BM_QDigestUpdate (the forward path).
  const Workload& w = SharedWorkload();
  SlidingWindowQuantiles sq(1.0 / static_cast<double>(state.range(0)),
                            /*pane_seconds=*/0.1, /*universe_bits=*/16);
  double t = 0.0;
  std::size_t i = 0;
  for (auto _ : state) {
    t += 1e-5;
    sq.Update(t, w.keys[i & 0xfffff] & 0xffff);
    ++i;
  }
}
BENCHMARK(BM_SlidingQuantilesUpdate)->Arg(20)->Arg(100);

void BM_WaveCountInsert(benchmark::State& state) {
  // Ablation: Deterministic Waves vs EH as the sliding-window counter.
  WaveCount wave(1.0 / static_cast<double>(state.range(0)));
  double last = 0.0;
  for (auto _ : state) {
    last += 1e-5;
    wave.Insert(last);
  }
}
BENCHMARK(BM_WaveCountInsert)->Arg(10)->Arg(100);

void BM_WindowQueryEhVsWave(benchmark::State& state) {
  const bool use_wave = state.range(0) != 0;
  EhCount eh(0.05);
  WaveCount wave(0.05);
  double t = 0.0;
  for (int i = 0; i < 200000; ++i) {
    t += 1e-4;
    eh.Insert(t);
    wave.Insert(t);
  }
  double window = 1.0;
  for (auto _ : state) {
    window = window >= 16.0 ? 1.0 : window * 2.0;
    benchmark::DoNotOptimize(use_wave ? wave.CountInWindow(t, window)
                                      : eh.CountInWindow(t, window));
  }
}
BENCHMARK(BM_WindowQueryEhVsWave)->Arg(0)->Arg(1);

void BM_EngineConsume(benchmark::State& state) {
  const bool two_level = state.range(0) != 0;
  static const std::vector<dsms::Packet>& trace =
      *new std::vector<dsms::Packet>(bench::GenerateTrace(100000.0, 2.0));
  std::string error;
  dsms::CompiledQuery::Options opts;
  opts.two_level = two_level;
  auto plan = dsms::CompiledQuery::Compile(
      "select tb, destIP, destPort, count(*), sum(len) from TCP "
      "group by time/60 as tb, destIP, destPort",
      &error, opts);
  auto exec = plan->NewExecution();
  std::size_t i = 0;
  for (auto _ : state) {
    exec->Consume(trace[i % trace.size()]);
    ++i;
  }
}
BENCHMARK(BM_EngineConsume)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
