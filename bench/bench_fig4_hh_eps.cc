// Figure 4: heavy-hitter queries under time decay, as the accuracy
// parameter eps varies.
//
//  (a) CPU load vs eps over TCP traffic at 200k pkt/s,
//  (b) the same over UDP traffic at 170k pkt/s,
//  (c) summary space vs eps (TCP), log-scale in the paper,
//  (d) summary space vs eps (UDP).
//
// Methods (as in Section VIII):
//  - Unary HH: SpaceSaving optimized for unweighted updates (no decay),
//  - weighted SpaceSaving with forward exponential weights,
//  - weighted SpaceSaving with forward quadratic ("poly") weights,
//  - sliding-window HH: the backward-decay baseline (per-key EHs).
//
// The dominant update cost is measured (summary maintenance), not the
// final heavy-hitter extraction, matching the paper.

#include <cmath>
#include <cstdio>
#include <vector>

#include "sketch/sliding_hh.h"
#include "sketch/space_saving.h"
#include "util/table_printer.h"

#include "bench_util.h"

namespace {

using namespace fwdecay;
using namespace fwdecay::bench;

constexpr std::size_t kTraceLen = 1500000;

struct MethodCosts {
  double unary_ns = 0.0;
  double fwd_exp_ns = 0.0;
  double fwd_poly_ns = 0.0;
  double sw_ns = 0.0;
  std::size_t unary_bytes = 0;
  std::size_t fwd_exp_bytes = 0;
  std::size_t fwd_poly_bytes = 0;
  std::size_t sw_bytes = 0;
};

// Filters the trace by protocol and runs all four summaries over it.
MethodCosts Run(const std::vector<dsms::Packet>& trace, std::uint8_t proto,
                double eps) {
  std::vector<dsms::Packet> packets;
  packets.reserve(trace.size());
  for (const auto& p : trace) {
    if (p.protocol == proto) packets.push_back(p);
  }
  const auto counters = static_cast<std::size_t>(std::ceil(1.0 / eps));
  MethodCosts out;

  UnarySpaceSaving unary(counters);
  out.unary_ns = MeasureNsPerTuple(packets, [&](const dsms::Packet& p) {
    unary.Update(dsms::DestKey(p));
  });
  out.unary_bytes = unary.MemoryBytes();

  // Forward exponential weights exp(time % 60): computed inline exactly
  // as the GSQL query would generate them.
  WeightedSpaceSaving fwd_exp(counters);
  out.fwd_exp_ns = MeasureNsPerTuple(packets, [&](const dsms::Packet& p) {
    fwd_exp.Update(dsms::DestKey(p), std::exp(std::fmod(p.time, 60.0)));
  });
  out.fwd_exp_bytes = fwd_exp.MemoryBytes();

  WeightedSpaceSaving fwd_poly(counters);
  out.fwd_poly_ns = MeasureNsPerTuple(packets, [&](const dsms::Packet& p) {
    const double n = std::fmod(p.time, 60.0);
    fwd_poly.Update(dsms::DestKey(p), n * n + 1e-9);
  });
  out.fwd_poly_bytes = fwd_poly.MemoryBytes();

  SlidingWindowHeavyHitters sw(eps);
  out.sw_ns = MeasureNsPerTuple(packets, [&](const dsms::Packet& p) {
    sw.Update(p.time, dsms::DestKey(p));
  });
  out.sw_bytes = sw.MemoryBytes();
  return out;
}

void Sweep(const char* cpu_label, const char* space_label, double rate,
           std::uint8_t proto) {
  const auto trace = GenerateTrace(rate, kTraceLen / rate);
  TablePrinter cpu({"eps", "Unary HH", "fwd exp", "fwd poly",
                    "sliding-window HH"});
  TablePrinter space({"eps", "Unary HH", "fwd exp", "fwd poly",
                      "sliding-window HH"});
  for (double eps : {0.1, 0.05, 0.02, 0.01}) {
    const MethodCosts c = Run(trace, proto, eps);
    cpu.AddRow({TablePrinter::Fmt(eps, 2),
                FormatCpuLoad(CpuLoadPercent(rate, c.unary_ns)),
                FormatCpuLoad(CpuLoadPercent(rate, c.fwd_exp_ns)),
                FormatCpuLoad(CpuLoadPercent(rate, c.fwd_poly_ns)),
                FormatCpuLoad(CpuLoadPercent(rate, c.sw_ns))});
    space.AddRow({TablePrinter::Fmt(eps, 2),
                  FormatBytes(static_cast<double>(c.unary_bytes)),
                  FormatBytes(static_cast<double>(c.fwd_exp_bytes)),
                  FormatBytes(static_cast<double>(c.fwd_poly_bytes)),
                  FormatBytes(static_cast<double>(c.sw_bytes))});
  }
  std::printf("%s\n", cpu_label);
  cpu.Print(stdout);
  std::printf("\n%s\n", space_label);
  space.Print(stdout);
  std::printf("\n");
}

}  // namespace

int main() {
  PrintHeader("Figure 4", "heavy hitters vs accuracy parameter eps");
  Sweep("Figure 4(a) — CPU load % vs eps, TCP traffic at 200k pkt/s",
        "Figure 4(c) — summary space vs eps, TCP traffic", 200000.0,
        dsms::kProtoTcp);
  Sweep("Figure 4(b) — CPU load % vs eps, UDP traffic at 170k pkt/s",
        "Figure 4(d) — summary space vs eps, UDP traffic", 170000.0,
        dsms::kProtoUdp);
  std::printf(
      "Expected shape (paper): the weighted SpaceSaving methods track the\n"
      "unary baseline closely, are robust to eps in CPU, and use O(1/eps)\n"
      "counters (KBs). The sliding-window baseline is far more expensive,\n"
      "approaches saturation at small eps, and its space — dominated by\n"
      "per-key timestamp structures — is orders of magnitude larger and\n"
      "does not shrink as eps grows.\n\n");
  return 0;
}
