// Figure 2: Count and Sum aggregates under time decay.
//
//  (a) CPU load vs stream rate (100k..400k pkt/s) for: no decay,
//      forward quadratic ("poly") decay, forward exponential decay —
//      all expressed in pure GSQL — and the backward-decay baseline
//      (exponential histograms driven through a UDAF, eps = 0.1).
//      Two-level aggregation enabled for the GSQL aggregates; the UDAF
//      runs at the high level only, as in the paper.
//  (b) The same with the two-level aggregation split disabled.
//  (c) Throughput as the EH accuracy eps decreases 0.1 -> 0.01 at
//      100k pkt/s (forward/undecayed do not depend on eps).
//  (d) State per group: 4 B (undecayed int), 8 B (forward double),
//      kilobytes for the EH baseline.
//
// The queries are the paper's own (Sections IV-A and VIII):
//   select tb, destIP, destPort, count(*), sum(len) from TCP
//   group by time/60 as tb, destIP, destPort
// with the decayed variants replacing the aggregates by
//   sum((time%60)*(time%60))/3600.0, sum(len*(time%60)*(time%60))/3600.0
//   sum(exp(time%60)), sum(len*exp(time%60))   [scaled at output]

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dsms/engine.h"
#include "dsms/udafs.h"
#include "sketch/backward_sum.h"
#include "util/table_printer.h"

#include "bench_util.h"

namespace {

using namespace fwdecay;
using namespace fwdecay::bench;

constexpr std::size_t kTraceLen = 400000;  // packets per measurement

const char* kUndecayed =
    "select tb, destIP, destPort, count(*), sum(len) from TCP "
    "group by time/60 as tb, destIP, destPort";
const char* kForwardPoly =
    "select tb, destIP, destPort, sum((time%60)*(time%60))/3600.0, "
    "sum(len*(time%60)*(time%60))/3600.0 from TCP "
    "group by time/60 as tb, destIP, destPort";
const char* kForwardExp =
    "select tb, destIP, destPort, sum(exp(time%60)), "
    "sum(len*exp(time%60)) from TCP "
    "group by time/60 as tb, destIP, destPort";
const char* kBackwardEh =
    "select tb, destIP, destPort, EHDSUM(dtime, len, 0.1) from TCP "
    "group by time/60 as tb, destIP, destPort";

double RunQuery(const std::string& gsql, bool two_level,
                const std::vector<dsms::Packet>& packets) {
  std::string error;
  dsms::CompiledQuery::Options opts;
  opts.two_level = two_level;
  opts.low_level_slots = 4096;
  auto plan = dsms::CompiledQuery::Compile(gsql, &error, opts);
  if (plan == nullptr) {
    std::fprintf(stderr, "compile error: %s\n", error.c_str());
    std::abort();
  }
  auto exec = plan->NewExecution();
  const double ns = MeasureNsPerTuple(
      packets, [&](const dsms::Packet& p) { exec->Consume(p); });
  (void)exec->Finish();
  return ns;
}

void RateSweep(bool two_level, const char* label) {
  TablePrinter table({"rate (pkt/s)", "no decay", "fwd poly", "fwd exp",
                      "EH backward (eps=0.1)"});
  for (double rate : {100000.0, 200000.0, 300000.0, 400000.0}) {
    const auto trace = GenerateTrace(rate, kTraceLen / rate);
    const double undecayed = RunQuery(kUndecayed, two_level, trace);
    const double poly = RunQuery(kForwardPoly, two_level, trace);
    const double exp_d = RunQuery(kForwardExp, two_level, trace);
    // The EH UDAF always runs one-level (high level only), per the paper.
    const double eh = RunQuery(kBackwardEh, false, trace);
    table.AddRow({TablePrinter::Fmt(rate, 0),
                  FormatCpuLoad(CpuLoadPercent(rate, undecayed)),
                  FormatCpuLoad(CpuLoadPercent(rate, poly)),
                  FormatCpuLoad(CpuLoadPercent(rate, exp_d)),
                  FormatCpuLoad(CpuLoadPercent(rate, eh))});
  }
  std::printf("%s — CPU load %% (proxy: rate x ns/tuple)\n", label);
  table.Print(stdout);
  std::printf("\n");
}

void EpsSweep() {
  const double rate = 100000.0;
  const auto trace = GenerateTrace(rate, kTraceLen / rate);
  const double undecayed = RunQuery(kUndecayed, true, trace);
  const double poly = RunQuery(kForwardPoly, true, trace);
  const double exp_d = RunQuery(kForwardExp, true, trace);
  TablePrinter table({"eps", "no decay (Mtuple/s)", "fwd poly", "fwd exp",
                      "EH backward"});
  for (double eps : {0.1, 0.05, 0.02, 0.01}) {
    char query[256];
    std::snprintf(query, sizeof(query),
                  "select tb, destIP, destPort, EHDSUM(dtime, len, %g) "
                  "from TCP group by time/60 as tb, destIP, destPort",
                  eps);
    const double eh = RunQuery(query, false, trace);
    table.AddRow({TablePrinter::Fmt(eps, 2),
                  TablePrinter::Fmt(1e3 / undecayed, 2),
                  TablePrinter::Fmt(1e3 / poly, 2),
                  TablePrinter::Fmt(1e3 / exp_d, 2),
                  TablePrinter::Fmt(1e3 / eh, 2)});
  }
  std::printf(
      "Figure 2(c) — throughput (million tuples/s) vs EH accuracy eps at "
      "100k pkt/s\n");
  table.Print(stdout);
  std::printf("\n");
}

void SpacePerGroup() {
  // Feed one busy group (the most popular destination) a minute of its
  // own traffic and report the per-group state of each method.
  const auto trace = GenerateTrace(100000.0, 4.0);
  std::map<std::uint64_t, std::size_t> counts;
  for (const auto& p : trace) ++counts[dsms::DestKey(p)];
  std::uint64_t top_key = 0;
  std::size_t top_count = 0;
  for (const auto& [key, c] : counts) {
    if (c > top_count) {
      top_count = c;
      top_key = key;
    }
  }
  TablePrinter table({"method", "state per group"});
  table.AddRow({"no decay (int32 counter)", FormatBytes(4)});
  table.AddRow({"forward decay (double)", FormatBytes(8)});
  for (double eps : {0.1, 0.05, 0.02, 0.01}) {
    BackwardDecayedAggregator agg(eps, /*value_bits=*/11);
    for (const auto& p : trace) {
      if (dsms::DestKey(p) == top_key) agg.Insert(p.time, p.len);
    }
    char label[64];
    std::snprintf(label, sizeof(label), "EH backward, eps=%g", eps);
    table.AddRow({label, FormatBytes(static_cast<double>(agg.MemoryBytes()))});
  }
  std::printf(
      "Figure 2(d) — state per group (top destination, %zu packets)\n",
      top_count);
  table.Print(stdout);
  std::printf("\n");
}

}  // namespace

int main() {
  dsms::RegisterPaperUdafs();
  PrintHeader("Figure 2", "count/sum aggregates under time decay");
  // Warm up the allocator/page cache: the first EH execution otherwise
  // pays all the per-group allocation page faults and skews its cell.
  {
    const auto warmup = GenerateTrace(100000.0, 1.0);
    (void)RunQuery(kBackwardEh, false, warmup);
    (void)RunQuery(kUndecayed, true, warmup);
  }
  RateSweep(/*two_level=*/true,
            "Figure 2(a) — two-level aggregation enabled");
  RateSweep(/*two_level=*/false,
            "Figure 2(b) — aggregate splitting disabled");
  EpsSweep();
  SpacePerGroup();
  std::printf(
      "Expected shape (paper): forward-decayed aggregates cost slightly\n"
      "more than undecayed and are flat in eps; the EH backward baseline\n"
      "is several times more expensive, saturates first as the rate grows,\n"
      "and keeps kilobytes per group vs 4-8 bytes.\n\n");
  return 0;
}
