#include "bench_util.h"

#include <cstdio>

#include "util/timer.h"

namespace fwdecay::bench {

double MeasureNsPerTuple(
    const std::vector<dsms::Packet>& packets,
    const std::function<void(const dsms::Packet&)>& consume) {
  Timer timer;
  for (const dsms::Packet& p : packets) consume(p);
  return static_cast<double>(timer.ElapsedNanos()) /
         static_cast<double>(packets.size());
}

std::string FormatCpuLoad(double percent) {
  char buf[64];
  if (percent >= 100.0) {
    std::snprintf(buf, sizeof(buf), "%.1f (SATURATED)", percent);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", percent);
  }
  return buf;
}

std::string FormatBytes(double bytes) {
  char buf[64];
  if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::vector<dsms::Packet> GenerateTrace(double rate_pps, double seconds,
                                        std::uint64_t seed) {
  dsms::TraceConfig cfg;
  cfg.rate_pps = rate_pps;
  cfg.seed = seed;
  dsms::PacketGenerator gen(cfg);
  return gen.Generate(static_cast<std::size_t>(rate_pps * seconds));
}

void PrintHeader(const char* figure, const char* description) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==========================================================\n");
}

}  // namespace fwdecay::bench
