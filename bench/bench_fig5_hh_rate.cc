// Figure 5: heavy-hitter summary maintenance cost as the stream rate
// varies (50k..200k pkt/s), eps = 0.01.
//
// Series: Unary HH (undecayed SpaceSaving), weighted SpaceSaving with
// forward exponential and forward quadratic decay, and the
// sliding-window backward baseline. Reproduces the paper's finding that
// the weighted forward-decay summaries cost only slightly more than the
// unary-optimized baseline and are insensitive to the decay function,
// while the sliding-window method nears CPU saturation as the rate grows.

#include <cmath>
#include <cstdio>

#include "sketch/sliding_hh.h"
#include "sketch/space_saving.h"
#include "util/table_printer.h"

#include "bench_util.h"

int main() {
  using namespace fwdecay;
  using namespace fwdecay::bench;
  PrintHeader("Figure 5", "heavy hitters vs stream rate (eps = 0.01)");

  constexpr std::size_t kTraceLen = 1500000;
  constexpr double kEps = 0.01;
  const auto counters = static_cast<std::size_t>(1.0 / kEps);

  TablePrinter table({"rate (pkt/s)", "Unary HH", "fwd exp", "fwd poly",
                      "sliding-window HH"});
  for (double rate : {50000.0, 100000.0, 150000.0, 200000.0}) {
    const auto trace = GenerateTrace(rate, kTraceLen / rate);

    UnarySpaceSaving unary(counters);
    const double unary_ns =
        MeasureNsPerTuple(trace, [&](const dsms::Packet& p) {
          unary.Update(dsms::DestKey(p));
        });

    WeightedSpaceSaving fwd_exp(counters);
    const double exp_ns =
        MeasureNsPerTuple(trace, [&](const dsms::Packet& p) {
          fwd_exp.Update(dsms::DestKey(p), std::exp(std::fmod(p.time, 60.0)));
        });

    WeightedSpaceSaving fwd_poly(counters);
    const double poly_ns =
        MeasureNsPerTuple(trace, [&](const dsms::Packet& p) {
          const double n = std::fmod(p.time, 60.0);
          fwd_poly.Update(dsms::DestKey(p), n * n + 1e-9);
        });

    SlidingWindowHeavyHitters sw(kEps);
    const double sw_ns = MeasureNsPerTuple(trace, [&](const dsms::Packet& p) {
      sw.Update(p.time, dsms::DestKey(p));
    });

    table.AddRow({TablePrinter::Fmt(rate, 0),
                  FormatCpuLoad(CpuLoadPercent(rate, unary_ns)),
                  FormatCpuLoad(CpuLoadPercent(rate, exp_ns)),
                  FormatCpuLoad(CpuLoadPercent(rate, poly_ns)),
                  FormatCpuLoad(CpuLoadPercent(rate, sw_ns))});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected shape (paper): small overhead of weighted vs unary\n"
      "SpaceSaving, little variation across decay functions, and a much\n"
      "more expensive sliding-window baseline that reaches ~90%%+ CPU at\n"
      "200k pkt/s and would drop tuples beyond that.\n\n");
  return 0;
}
