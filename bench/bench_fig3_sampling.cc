// Figure 3: drawing random samples under time decay.
//
//  (a) CPU load vs stream rate (100k..400k pkt/s) for three samplers:
//      - undecayed reservoir sampling (Vitter) — the "no decay" baseline,
//      - priority sampling fed forward-exponential weights (PRISAMP),
//      - Aggarwal's biased reservoir for backward exponential decay.
//  (b) CPU cost vs sample size k at a fixed rate.
//
// As in the paper, only the cost of sample *maintenance* is measured
// (the samplers are driven directly with the packet's source address and
// its weight, not through the engine's selection operator, whose cost is
// identical for all methods). Samples are drawn per minute with the
// landmark at the start of the minute: weight = exp(time % 60).

#include <cstdio>
#include <vector>

#include "core/decay.h"
#include "core/forward_decay.h"
#include "sampling/biased_reservoir.h"
#include "sampling/priority_sampling.h"
#include "sampling/reservoir.h"
#include "sampling/weighted_reservoir.h"
#include "util/random.h"
#include "util/table_printer.h"

#include "bench_util.h"

namespace {

using namespace fwdecay;
using namespace fwdecay::bench;

constexpr std::size_t kTraceLen = 2000000;

double MeasureReservoir(const std::vector<dsms::Packet>& packets,
                        std::size_t k) {
  Rng rng(1);
  ReservoirSampler<std::uint64_t> sampler(k);
  return MeasureNsPerTuple(
      packets, [&](const dsms::Packet& p) { sampler.Add(p.src_ip, rng); });
}

double MeasurePriority(const std::vector<dsms::Packet>& packets,
                       std::size_t k) {
  Rng rng(2);
  ForwardDecay<ExponentialG> decay(ExponentialG(1.0), 0.0);
  PrioritySampler<std::uint64_t, ExponentialG> sampler(decay, k);
  // Weight exp(time % 60): landmark at the minute start, per the paper's
  // PRISAMP query; the trace spans < 1 minute so L = 0 throughout.
  return MeasureNsPerTuple(packets, [&](const dsms::Packet& p) {
    sampler.Add(p.time, p.src_ip, rng);
  });
}

double MeasureAggarwal(const std::vector<dsms::Packet>& packets,
                       std::size_t k) {
  Rng rng(3);
  BiasedReservoirSampler<std::uint64_t> sampler(k);
  return MeasureNsPerTuple(
      packets, [&](const dsms::Packet& p) { sampler.Add(p.src_ip, rng); });
}

double MeasureWrs(const std::vector<dsms::Packet>& packets, std::size_t k) {
  Rng rng(4);
  ForwardDecay<ExponentialG> decay(ExponentialG(1.0), 0.0);
  WeightedReservoirSampler<std::uint64_t, ExponentialG> sampler(decay, k);
  return MeasureNsPerTuple(packets, [&](const dsms::Packet& p) {
    sampler.Add(p.time, p.src_ip, rng);
  });
}

}  // namespace

int main() {
  PrintHeader("Figure 3", "sampling queries under time decay");

  std::printf(
      "Figure 3(a) — CPU load %% vs stream rate (sample size k = 100)\n");
  TablePrinter rate_table({"rate (pkt/s)", "reservoir (no decay)",
                           "priority fwd-exp", "Aggarwal bwd-exp",
                           "WRS fwd-exp (extra)"});
  for (double rate : {100000.0, 200000.0, 300000.0, 400000.0}) {
    const auto trace = GenerateTrace(rate, kTraceLen / rate);
    rate_table.AddRow(
        {TablePrinter::Fmt(rate, 0),
         FormatCpuLoad(CpuLoadPercent(rate, MeasureReservoir(trace, 100))),
         FormatCpuLoad(CpuLoadPercent(rate, MeasurePriority(trace, 100))),
         FormatCpuLoad(CpuLoadPercent(rate, MeasureAggarwal(trace, 100))),
         FormatCpuLoad(CpuLoadPercent(rate, MeasureWrs(trace, 100)))});
  }
  rate_table.Print(stdout);

  std::printf(
      "\nFigure 3(b) — ns/tuple vs sample size k (rate 200k pkt/s)\n");
  const auto trace = GenerateTrace(200000.0, kTraceLen / 200000.0);
  TablePrinter k_table({"sample size k", "reservoir", "priority fwd-exp",
                        "Aggarwal bwd-exp", "WRS fwd-exp"});
  for (std::size_t k : {10u, 100u, 1000u, 10000u}) {
    k_table.AddRow({std::to_string(k),
                    TablePrinter::Fmt(MeasureReservoir(trace, k), 1),
                    TablePrinter::Fmt(MeasurePriority(trace, k), 1),
                    TablePrinter::Fmt(MeasureAggarwal(trace, k), 1),
                    TablePrinter::Fmt(MeasureWrs(trace, k), 1)});
  }
  k_table.Print(stdout);
  std::printf(
      "\nExpected shape (paper): all samplers scale well — comparable CPU\n"
      "load, < 10%% growth from 100k to 400k pkt/s, and cost essentially\n"
      "independent of the sample size. The forward-decay samplers match\n"
      "the undecayed baseline while supporting arbitrary timestamps and\n"
      "arrival orders, which Aggarwal's method does not.\n\n");
  return 0;
}
