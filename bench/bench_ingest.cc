// Ingest-path throughput: per-tuple Consume(Packet) vs batched columnar
// Consume(PacketBatch) vs ShardedQueryExecution (mutex router) vs
// PipelinedQueryExecution (shared-nothing SPSC pipeline) at 1/2/4/8
// shards, over a flow-structured netgen trace and the paper-style
// two-level query
//
//   select destPort, count(*), sum(len), avg(len) from TCP
//   group by destPort
//
// Every mode runs the same trace and must produce the same groups; the
// harness cross-checks the result tables before reporting numbers
// (batched vs per-tuple bit-identical; sharded/pipeline checked on the
// integer-exact columns, DESIGN.md §8).
//
// Results append to BENCH_ingest.json as one JSON object per line so CI
// runs accumulate. Records carry no wall-clock timestamps — machine
// identity and run ordering are the log file's job — but do record
// hardware concurrency: on a single-core runner the sharded/pipeline
// rows measure router + handoff overhead, not parallel speedup, and
// must be read alongside the "nproc" field. Parallel rows also carry a
// "pipeline" generation tag ("router-v1" mutex router, "spsc-v2"
// shared-nothing pipeline) so scripts/check_bench.py never gates one
// generation against the other.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dsms/batch.h"
#include "dsms/engine.h"
#include "dsms/netgen.h"
#include "dsms/packet.h"
#include "util/metrics.h"
#include "util/simd.h"
#include "util/table_printer.h"
#include "util/timer.h"

#include "bench_util.h"

namespace {

using namespace fwdecay;
using namespace fwdecay::bench;

constexpr char kQuery[] =
    "select destPort, count(*), sum(len), avg(len) from TCP "
    "group by destPort";
constexpr std::size_t kBatchCapacity = dsms::PacketBatch::kDefaultCapacity;

struct ModeResult {
  std::string mode;
  std::string pipeline;     // parallel rows: "router-v1" | "spsc-v2"
  std::size_t shards = 0;   // 0 = unsharded
  std::size_t threads = 1;
  double ns_per_packet = 0.0;
  dsms::ResultSet result;
  std::uint64_t tuples_aggregated = 0;
};

// L1D cache-line size as the kernel reports it; 64 when the sysconf key
// is unsupported (0/-1). Recorded per row: flat-table probe costs and
// the SIMD kernels' effective bandwidth are functions of the line size,
// so rows from machines with different lines must not be compared raw.
long CacheLineBytes() {
#ifdef _SC_LEVEL1_DCACHE_LINESIZE
  const long sz = sysconf(_SC_LEVEL1_DCACHE_LINESIZE);
  if (sz > 0) return sz;
#endif
  return 64;
}

std::unique_ptr<dsms::CompiledQuery> CompilePlan() {
  std::string error;
  dsms::CompiledQuery::Options opts;
  opts.two_level = true;
  opts.low_level_slots = 4096;
  auto plan = dsms::CompiledQuery::Compile(kQuery, &error, opts);
  if (plan == nullptr) {
    std::fprintf(stderr, "compile error: %s\n", error.c_str());
    std::abort();
  }
  return plan;
}

std::vector<dsms::PacketBatch> Rebatch(const std::vector<dsms::Packet>& trace) {
  std::vector<dsms::PacketBatch> batches;
  batches.reserve(trace.size() / kBatchCapacity + 1);
  dsms::PacketBatch batch(kBatchCapacity);
  for (const dsms::Packet& p : trace) {
    batch.Append(p);
    if (batch.full()) {
      batches.push_back(std::move(batch));
      batch = dsms::PacketBatch(kBatchCapacity);
    }
  }
  if (!batch.empty()) batches.push_back(std::move(batch));
  return batches;
}

ModeResult RunPerTuple(const dsms::CompiledQuery& plan,
                       const std::vector<dsms::Packet>& trace) {
  ModeResult r;
  r.mode = "per_tuple";
  auto exec = plan.NewExecution();
  Timer timer;
  for (const dsms::Packet& p : trace) exec->Consume(p);
  r.ns_per_packet = static_cast<double>(timer.ElapsedNanos()) /
                    static_cast<double>(trace.size());
  r.tuples_aggregated = exec->tuples_aggregated();
  r.result = exec->Finish();
  return r;
}

ModeResult RunBatched(const dsms::CompiledQuery& plan,
                      const std::vector<dsms::PacketBatch>& batches,
                      std::size_t n_packets) {
  ModeResult r;
  r.mode = "batched";
  auto exec = plan.NewExecution();
  Timer timer;
  for (const dsms::PacketBatch& b : batches) exec->Consume(b);
  r.ns_per_packet = static_cast<double>(timer.ElapsedNanos()) /
                    static_cast<double>(n_packets);
  r.tuples_aggregated = exec->tuples_aggregated();
  r.result = exec->Finish();
  return r;
}

ModeResult RunSharded(const dsms::CompiledQuery& plan,
                      const std::vector<dsms::PacketBatch>& batches,
                      std::size_t n_packets, std::size_t num_shards) {
  ModeResult r;
  r.mode = "sharded";
  r.pipeline = "router-v1";
  r.shards = num_shards;
  r.threads = num_shards;  // one ingest thread per shard count
  dsms::ShardedQueryExecution sharded(plan, num_shards);
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(num_shards);
  for (std::size_t t = 0; t < num_shards; ++t) {
    threads.emplace_back([&sharded, &batches, t, num_shards] {
      // Static round-robin split of the batch list across ingest
      // threads; every thread routes its own batches through the
      // lock-free filter/hash stage.
      for (std::size_t b = t; b < batches.size(); b += num_shards) {
        sharded.Consume(batches[b]);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  r.ns_per_packet = static_cast<double>(timer.ElapsedNanos()) /
                    static_cast<double>(n_packets);
  r.tuples_aggregated = sharded.tuples_aggregated();
  r.result = sharded.Finish();
  return r;
}

ModeResult RunPipeline(const dsms::CompiledQuery& plan,
                       const std::vector<dsms::PacketBatch>& batches,
                       std::size_t n_packets, std::size_t num_shards,
                       std::size_t ring_capacity, bool pin_cores) {
  ModeResult r;
  r.mode = "pipeline";
  r.pipeline = "spsc-v2";
  r.shards = num_shards;
  r.threads = num_shards + 1;  // N shard workers + the router thread
  dsms::PipelinedQueryExecution::Options options;
  options.num_shards = num_shards;
  options.ring_capacity = ring_capacity;
  options.batch_capacity = kBatchCapacity;
  options.pin_cores = pin_cores;
  dsms::PipelinedQueryExecution pipeline(plan, options);
  // The timer covers routing + the full drain (Quiesce), so the number
  // is end-to-end ingest; the merge stays off the clock, matching how
  // the sharded mode times ingest and merges in Finish() afterwards.
  Timer timer;
  for (const dsms::PacketBatch& b : batches) pipeline.Consume(b);
  pipeline.Quiesce();
  r.ns_per_packet = static_cast<double>(timer.ElapsedNanos()) /
                    static_cast<double>(n_packets);
  r.tuples_aggregated = pipeline.tuples_aggregated();
  r.result = pipeline.Finish();
  return r;
}

// Cross-mode sanity: same groups, same integer-exact aggregate columns
// (count(*) col 1, sum(len) col 2; group key col 0). The batched mode is
// additionally required to match per-tuple on every column.
void CheckAgainstReference(const ModeResult& got, const ModeResult& want,
                           bool all_columns) {
  auto die = [&](const char* what) {
    std::fprintf(stderr, "RESULT MISMATCH (%s vs %s): %s\n", got.mode.c_str(),
                 want.mode.c_str(), what);
    std::abort();
  };
  if (got.tuples_aggregated != want.tuples_aggregated) die("tuple counts");
  if (got.result.rows.size() != want.result.rows.size()) die("row counts");
  const std::size_t cols = all_columns ? 4 : 3;
  for (std::size_t i = 0; i < got.result.rows.size(); ++i) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (!(got.result.rows[i][c] == want.result.rows[i][c])) die("cells");
    }
  }
}

void AppendJson(const std::string& path, const ModeResult& r,
                std::size_t n_packets, double speedup, bool quick) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for append\n", path.c_str());
    return;
  }
  // Parallel rows carry the pipeline-generation tag; unsharded rows
  // omit the field (check_bench.py treats absence as its own key).
  char pipeline_field[48] = "";
  if (!r.pipeline.empty()) {
    std::snprintf(pipeline_field, sizeof(pipeline_field),
                  "\"pipeline\":\"%s\",", r.pipeline.c_str());
  }
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"bench\":\"ingest\",\"mode\":\"%s\",%s\"shards\":%zu,"
      "\"threads\":%zu,\"packets\":%zu,\"batch_capacity\":%zu,"
      "\"ns_per_packet\":%.2f,\"mpps\":%.3f,\"speedup_vs_per_tuple\":%.3f,"
      "\"nproc\":%u,\"cache_line\":%ld,\"simd\":\"%s\","
      "\"metrics\":\"%s\",\"quick\":%s}",
      r.mode.c_str(), pipeline_field, r.shards, r.threads, n_packets,
      r.mode == "per_tuple" ? std::size_t{1} : kBatchCapacity,
      r.ns_per_packet, 1e3 / r.ns_per_packet, speedup,
      std::thread::hardware_concurrency(), CacheLineBytes(),
      simd::ActiveArchName(), FWDECAY_METRICS_ENABLED ? "on" : "off",
      quick ? "true" : "false");
  out << line << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_packets = 1000000;
  std::size_t max_shards = 8;
  std::size_t ring_capacity = 64;
  bool pin_cores = false;
  std::string json_path = "BENCH_ingest.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
      n_packets = 100000;
    } else if (arg == "--pin") {
      pin_cores = true;
    } else if (arg.rfind("--packets=", 0) == 0) {
      n_packets = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--shards=", 0) == 0) {
      max_shards = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 9, nullptr, 10));
    } else if (arg.rfind("--ring=", 0) == 0) {
      ring_capacity = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 7, nullptr, 10));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--pin] [--packets=N] [--shards=N] "
                   "[--ring=SLOTS] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (n_packets == 0 || max_shards == 0) {
    std::fprintf(stderr, "--packets and --shards must be positive\n");
    return 2;
  }
  if (ring_capacity < 2 || (ring_capacity & (ring_capacity - 1)) != 0) {
    std::fprintf(stderr, "--ring must be a power of two >= 2\n");
    return 2;
  }

  PrintHeader("Ingest throughput",
              "per-tuple vs batched vs sharded vs pipeline "
              "(DESIGN.md §8, §14)");
  std::printf("trace: %zu flow-structured packets; query: %s\n", n_packets,
              kQuery);
  std::printf("hardware_concurrency: %u  cache_line: %ld  simd: %s  "
              "metrics: %s\n\n",
              std::thread::hardware_concurrency(), CacheLineBytes(),
              simd::ActiveArchName(),
              FWDECAY_METRICS_ENABLED ? "on" : "off");

  dsms::TraceConfig cfg;
  cfg.flow_structured = true;
  cfg.num_servers = 2000;
  cfg.ports_per_server = 8;
  cfg.target_active_flows = 512;
  cfg.mean_flow_len = 16.0;
  cfg.seed = 42;
  dsms::PacketGenerator gen(cfg);
  const std::vector<dsms::Packet> trace = gen.Generate(n_packets);
  const std::vector<dsms::PacketBatch> batches = Rebatch(trace);
  const auto plan = CompilePlan();

  std::vector<ModeResult> results;
  results.push_back(RunPerTuple(*plan, trace));
  results.push_back(RunBatched(*plan, batches, trace.size()));
  for (std::size_t shards = 1; shards <= max_shards; shards *= 2) {
    results.push_back(RunSharded(*plan, batches, trace.size(), shards));
  }
  for (std::size_t shards = 1; shards <= max_shards; shards *= 2) {
    results.push_back(RunPipeline(*plan, batches, trace.size(), shards,
                                  ring_capacity, pin_cores));
  }

  const ModeResult& reference = results.front();
  CheckAgainstReference(results[1], reference, /*all_columns=*/true);
  for (std::size_t i = 2; i < results.size(); ++i) {
    // Sharded/pipeline two-level runs evict at different points, so only
    // the integer-exact columns are compared (avg differs in the last
    // ulp).
    CheckAgainstReference(results[i], reference, /*all_columns=*/false);
  }

  TablePrinter table(
      {"mode", "shards", "threads", "ns/packet", "Mpkt/s", "speedup"});
  for (const ModeResult& r : results) {
    const double speedup = reference.ns_per_packet / r.ns_per_packet;
    table.AddRow({r.mode, r.shards == 0 ? "-" : std::to_string(r.shards),
                  std::to_string(r.threads),
                  TablePrinter::Fmt(r.ns_per_packet, 1),
                  TablePrinter::Fmt(1e3 / r.ns_per_packet, 3),
                  TablePrinter::Fmt(speedup, 2) + "x"});
    AppendJson(json_path, r, trace.size(), speedup, quick);
  }
  table.Print(stdout);
  std::printf("\nresults appended to %s\n", json_path.c_str());
  return 0;
}
