#ifndef FWDECAY_BENCH_BENCH_UTIL_H_
#define FWDECAY_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dsms/netgen.h"
#include "dsms/packet.h"

// Shared harness for the figure-reproduction benchmarks.
//
// The paper reports *CPU load %* on a fixed 3.0 GHz core while the NIC
// offers a given packet rate. Our proxy: measure the per-tuple processing
// cost ns/tuple over a synthetic trace generated at that rate, then
//
//   cpu_load_% = offered_rate_pps * ns_per_tuple / 1e9 * 100
//
// i.e. the fraction of one core-second consumed per offered second.
// Values above 100% mean the method cannot keep up and would drop tuples
// (the saturation the paper reports for the backward baselines).

namespace fwdecay::bench {

/// Times `consume` over all packets; returns average ns per packet.
double MeasureNsPerTuple(const std::vector<dsms::Packet>& packets,
                         const std::function<void(const dsms::Packet&)>& consume);

/// CPU-load proxy (percent; may exceed 100 = saturated).
inline double CpuLoadPercent(double rate_pps, double ns_per_tuple) {
  return rate_pps * ns_per_tuple / 1e9 * 100.0;
}

/// Formats a CPU load, flagging saturation the way the paper narrates it.
std::string FormatCpuLoad(double percent);

/// Formats a byte count with unit suffix (for the space figures).
std::string FormatBytes(double bytes);

/// Generates `seconds` worth of traffic at `rate_pps` (other TraceConfig
/// fields at the defaults matching the paper's setup: Zipf destinations,
/// 85% TCP).
std::vector<dsms::Packet> GenerateTrace(double rate_pps, double seconds,
                                        std::uint64_t seed = 42);

/// Prints the standard benchmark banner (figure id + description).
void PrintHeader(const char* figure, const char* description);

}  // namespace fwdecay::bench

#endif  // FWDECAY_BENCH_BENCH_UTIL_H_
