// Figure 1: the relative-decay property of forward decay with g(n) = n^2.
//
// Reproduces the paper's illustration numerically: the weight assigned to
// an item depends only on its relative position in [L, t]. The two panels
// print the weight profile at t = 110 and t' = 120 (landmark L = 100);
// the columns at equal relative age must match.

#include <cstdio>

#include "core/decay.h"
#include "core/forward_decay.h"
#include "util/table_printer.h"

#include "bench_util.h"

int main() {
  using namespace fwdecay;
  bench::PrintHeader("Figure 1",
                     "relative decay property, forward g(n) = n^2");

  ForwardDecay<MonomialG> decay(MonomialG(2.0), 100.0);

  TablePrinter table({"relative age gamma", "w at t=110", "w at t'=120",
                      "gamma^2 (Lemma 1)"});
  for (double gamma = 0.1; gamma <= 1.0001; gamma += 0.1) {
    const double ti_1 = gamma * 110.0 + (1.0 - gamma) * 100.0;
    const double ti_2 = gamma * 120.0 + (1.0 - gamma) * 100.0;
    table.AddRow({TablePrinter::Fmt(gamma, 1),
                  TablePrinter::Fmt(decay.Weight(ti_1, 110.0), 4),
                  TablePrinter::Fmt(decay.Weight(ti_2, 120.0), 4),
                  TablePrinter::Fmt(gamma * gamma, 4)});
  }
  table.Print(stdout);
  std::printf(
      "\nThe two weight columns coincide for every gamma: an item half-way\n"
      "between the landmark and the query time always has weight 0.25,\n"
      "exactly as in the paper's Figure 1(a)/(b).\n\n");
  return 0;
}
