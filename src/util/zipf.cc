#include "util/zipf.h"

#include <cmath>

#include "util/check.h"

namespace fwdecay {

namespace {

// Helper for rejection-inversion: computes ((1-s) x^(1-s) style antiderivative
// with the s == 1 limit handled via log.
double HIntegral(double x, double exponent) {
  const double log_x = std::log(x);
  if (std::abs(exponent - 1.0) < 1e-12) return log_x;
  return std::exp((1.0 - exponent) * log_x) / (1.0 - exponent);
}

double HIntegralInverse(double x, double exponent) {
  if (std::abs(exponent - 1.0) < 1e-12) return std::exp(x);
  return std::exp(std::log((1.0 - exponent) * x) / (1.0 - exponent));
}

}  // namespace

ZipfGenerator::ZipfGenerator(std::uint64_t num_items, double exponent)
    : num_items_(num_items), exponent_(exponent) {
  FWDECAY_CHECK_MSG(num_items >= 1, "Zipf domain must be non-empty");
  FWDECAY_CHECK_MSG(exponent >= 0.0, "Zipf exponent must be >= 0");
  h_x1_ = H(1.5) - 1.0;
  h_num_items_ = H(static_cast<double>(num_items_) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::exp(-exponent_ * std::log(2.0)));
}

double ZipfGenerator::H(double x) const { return HIntegral(x, exponent_); }

double ZipfGenerator::HInverse(double x) const {
  return HIntegralInverse(x, exponent_);
}

std::uint64_t ZipfGenerator::Next(Rng& rng) {
  if (num_items_ == 1) return 1;
  // Hörmann & Derflinger rejection-inversion. Expected < 2 iterations.
  while (true) {
    const double u =
        h_num_items_ + rng.NextDouble() * (h_x1_ - h_num_items_);
    const double x = HInverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > num_items_) {
      k = num_items_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ ||
        u >= H(kd + 0.5) - std::exp(-exponent_ * std::log(kd))) {
      return k;
    }
  }
}

}  // namespace fwdecay
