#ifndef FWDECAY_UTIL_THREAD_ANNOTATIONS_H_
#define FWDECAY_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(FWDECAY_SCHED)
#include "util/sched.h"
#endif

// Clang thread-safety annotations + the annotated lock vocabulary.
//
// The repo's concurrency claims ("a single mutex suffices", "snapshots
// are consistent") are exactly the kind TSan can only confirm for the
// schedules a test happens to execute. Clang's -Wthread-safety analysis
// proves them for *all* schedules at compile time — but only if every
// guarded member and every locking function is annotated, and only if
// the lock type itself carries the `capability` attribute. libstdc++'s
// std::mutex does not, so library code uses the annotated fwdecay::Mutex
// / fwdecay::MutexLock wrappers below instead of std::mutex /
// std::lock_guard directly. scripts/lint.py (rule `locking`) and
// scripts/analyze.py (rule `guarded-by`) enforce both conventions.
//
// Build with -DFWDECAY_THREAD_SAFETY=ON (clang only) to turn any
// annotation violation into a compile error via -Werror=thread-safety.
// Under GCC (or any non-clang compiler) every macro expands to nothing
// and the wrappers degrade to plain std::mutex semantics.

#if defined(__clang__)
#define FWDECAY_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define FWDECAY_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Marks a type as a lock ("capability" in clang's vocabulary).
#define FWDECAY_CAPABILITY(x) \
  FWDECAY_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define FWDECAY_SCOPED_CAPABILITY \
  FWDECAY_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define FWDECAY_GUARDED_BY(x) \
  FWDECAY_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// As GUARDED_BY, but for the data a pointer member points to.
#define FWDECAY_PT_GUARDED_BY(x) \
  FWDECAY_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// The annotated function must be called with the capability held.
#define FWDECAY_REQUIRES(...) \
  FWDECAY_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// The annotated function must be called with the capability NOT held
/// (deadlock prevention for non-reentrant locks).
#define FWDECAY_EXCLUDES(...) \
  FWDECAY_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// The annotated function acquires the capability and holds it on return.
#define FWDECAY_ACQUIRE(...) \
  FWDECAY_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// The annotated function releases a held capability.
#define FWDECAY_RELEASE(...) \
  FWDECAY_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// The annotated function returns a reference to the given capability.
#define FWDECAY_RETURN_CAPABILITY(x) \
  FWDECAY_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Each use must
/// carry a comment justifying why the analysis cannot see the invariant.
#define FWDECAY_NO_THREAD_SAFETY_ANALYSIS \
  FWDECAY_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

namespace fwdecay {

/// std::mutex with the `capability` attribute, so clang's analysis can
/// track what it guards. Same cost: the wrapper is a plain std::mutex
/// plus compile-time attributes.
///
/// Under -DFWDECAY_SCHED=ON the underlying mutex is sched::ModelMutex
/// instead: inside sched::Explore() the lock becomes a virtual lock the
/// schedule-exploring model checker can preempt around and deadlock-
/// check (DESIGN.md §10); outside an exploration — and in the default
/// build — it behaves exactly like std::mutex.
class FWDECAY_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#if defined(FWDECAY_SCHED)
  void Lock() FWDECAY_ACQUIRE() { mu_.Lock(); }
  void Unlock() FWDECAY_RELEASE() { mu_.Unlock(); }

 private:
  sched::ModelMutex mu_;
#else
  void Lock() FWDECAY_ACQUIRE() { mu_.lock(); }
  void Unlock() FWDECAY_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
#endif
};

/// Annotated RAII guard (the std::lock_guard of this vocabulary).
class FWDECAY_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FWDECAY_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() FWDECAY_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace fwdecay

#endif  // FWDECAY_UTIL_THREAD_ANNOTATIONS_H_
