#ifndef FWDECAY_UTIL_SIMD_H_
#define FWDECAY_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

// Runtime-dispatched SIMD kernels for the batched ingest hot path
// (DESIGN.md §13.4). The instruction set is detected once at startup
// (AVX2 on x86-64, NEON on aarch64, scalar otherwise); every kernel also
// ships a scalar arm that is compiled unconditionally and kept
// *bit-exact* with the vector arms — the scalar implementations are the
// differential oracle (tests/simd_test.cc) and the forced-scalar CI leg
// runs the whole engine through them.
//
// Bit-exactness discipline: vector arms may only reorder *independent*
// lanes. Elementwise IEEE-754 add/sub/mul/div/compare are exact per
// lane, so they vectorize; ordered reductions and libm calls stay with
// the caller in stream order. Each kernel performs exactly one FP
// operation per element so no arm can be contracted into an FMA the
// other arm does not perform.
//
// Knobs:
//   FWDECAY_FORCE_SCALAR=1  (env) forces the scalar arms at startup.
//   -DFWDECAY_SIMD=OFF      (cmake) compiles the vector arms out.

namespace fwdecay::simd {

enum class Arch { kScalar, kAvx2, kNeon };

/// The arm every dispatched kernel below routes to; fixed at startup.
Arch ActiveArch();

/// "scalar" | "avx2" | "neon" — recorded in BENCH_ingest.json rows.
const char* ActiveArchName();

/// True if FWDECAY_FORCE_SCALAR pinned the dispatch to scalar.
bool ForcedScalar();

/// Comparison operator selector for the compare kernels. Semantics match
/// dsms::Value comparisons on numerics: ordered predicates, so any NaN
/// operand yields 0 for kEq/kLt/kGt and 1 for their negations.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

// --- Dispatched kernels ----------------------------------------------------

/// Writes the indices i in [0, n) with bytes[i] == target to out_sel
/// (ascending); returns the match count. The engine's protocol filter.
std::size_t FilterByteEq(const std::uint8_t* bytes, std::uint8_t target,
                         std::size_t n, std::uint32_t* out_sel);

/// Group-key hash for a single int64 key column: out[i] is exactly
/// HashCombine(seed, HashU64(uint64(keys[i]), /*seed=*/1)) — the same
/// value the generic per-Value loop produces (util/hash.h + Value::Hash).
void GroupHashI64(const std::int64_t* keys, std::size_t n,
                  std::uint64_t seed, std::uint64_t* out);

/// Batch-partition kernel for shard routing (DESIGN.md §14.1): out[i] is
/// exactly HashU64(hashes[i], seed) % num_shards — the group hash
/// remixed under an independent seed, reduced to a shard index. The
/// AVX2 arm vectorizes the power-of-two case (the reduction is a lane
/// mask); non-power-of-two shard counts take the scalar modulo.
/// num_shards must be > 0.
void ShardIndexU64(const std::uint64_t* hashes, std::size_t n,
                   std::uint64_t seed, std::uint32_t num_shards,
                   std::uint32_t* out);

// Elementwise arithmetic, one IEEE operation per element.
void AddF64(const double* a, const double* b, std::size_t n, double* out);
void SubF64(const double* a, const double* b, std::size_t n, double* out);
void MulF64(const double* a, const double* b, std::size_t n, double* out);
void DivF64(const double* a, const double* b, std::size_t n, double* out);
void AddI64(const std::int64_t* a, const std::int64_t* b, std::size_t n,
            std::int64_t* out);
void SubI64(const std::int64_t* a, const std::int64_t* b, std::size_t n,
            std::int64_t* out);

/// Elementwise compare producing an int64 0/1 column (the engine's
/// boolean representation).
void CmpF64(CmpOp op, const double* a, const double* b, std::size_t n,
            std::int64_t* out01);
void CmpI64(CmpOp op, const std::int64_t* a, const std::int64_t* b,
            std::size_t n, std::int64_t* out01);

/// In-place selection compaction: keeps sel[i] where vals[i] is truthy
/// (non-zero; NaN is truthy), returns the new count. Predicate batch
/// evaluation's final narrowing step.
std::size_t CompactNonZeroI64(const std::int64_t* vals, std::uint32_t* sel,
                              std::size_t n);
std::size_t CompactNonZeroF64(const double* vals, std::uint32_t* sel,
                              std::size_t n);

// --- Scalar oracle ---------------------------------------------------------
// The always-compiled scalar arms, callable directly so the differential
// tests can compare a dispatched result against the oracle on the same
// inputs regardless of what ActiveArch() resolved to.

namespace scalar {

std::size_t FilterByteEq(const std::uint8_t* bytes, std::uint8_t target,
                         std::size_t n, std::uint32_t* out_sel);
void GroupHashI64(const std::int64_t* keys, std::size_t n,
                  std::uint64_t seed, std::uint64_t* out);
void ShardIndexU64(const std::uint64_t* hashes, std::size_t n,
                   std::uint64_t seed, std::uint32_t num_shards,
                   std::uint32_t* out);
void AddF64(const double* a, const double* b, std::size_t n, double* out);
void SubF64(const double* a, const double* b, std::size_t n, double* out);
void MulF64(const double* a, const double* b, std::size_t n, double* out);
void DivF64(const double* a, const double* b, std::size_t n, double* out);
void AddI64(const std::int64_t* a, const std::int64_t* b, std::size_t n,
            std::int64_t* out);
void SubI64(const std::int64_t* a, const std::int64_t* b, std::size_t n,
            std::int64_t* out);
void CmpF64(CmpOp op, const double* a, const double* b, std::size_t n,
            std::int64_t* out01);
void CmpI64(CmpOp op, const std::int64_t* a, const std::int64_t* b,
            std::size_t n, std::int64_t* out01);
std::size_t CompactNonZeroI64(const std::int64_t* vals, std::uint32_t* sel,
                              std::size_t n);
std::size_t CompactNonZeroF64(const double* vals, std::uint32_t* sel,
                              std::size_t n);

}  // namespace scalar

}  // namespace fwdecay::simd

#endif  // FWDECAY_UTIL_SIMD_H_
