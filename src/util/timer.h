#ifndef FWDECAY_UTIL_TIMER_H_
#define FWDECAY_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace fwdecay {

/// Wall-clock stopwatch over std::chrono::steady_clock.
///
/// The benchmark harness measures per-tuple processing cost with this and
/// converts it to the paper's "CPU load %" proxy (rate × ns/tuple / 1e9).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Raw monotonic reading, for callers that manage their own start
  /// point (e.g. conditionally-armed scope timers that must not hold a
  /// partially-initialized Timer).
  static std::int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now().time_since_epoch())
        .count();
  }

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Reset().
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fwdecay

#endif  // FWDECAY_UTIL_TIMER_H_
