#ifndef FWDECAY_UTIL_AUDIT_H_
#define FWDECAY_UTIL_AUDIT_H_

// FWDECAY_AUDIT contract layer.
//
// Every sketch, sampler, and the engine's group tables expose a
// `CheckInvariants() const` method that walks the structure and
// FWDECAY_CHECKs its representation invariants (heap order, back-pointer
// consistency, bucket monotonicity, weight conservation — see DESIGN.md
// §7 for the per-structure catalogue). The methods are always compiled —
// they are cold code — and the corruption meta-tests call them directly.
//
// What -DFWDECAY_AUDIT=ON adds is *density*: the macro below expands to
// a real call, and the fuzz harnesses / property tests invoke it after
// every mutating operation, turning the output-differential fuzzers into
// structural fuzzers (an op sequence that leaves a heap out of order is
// caught at the op that broke it, not whenever the output next
// diverges). In normal builds the macro is a no-op so tier-1 timing is
// unchanged.

#ifdef FWDECAY_AUDIT
#define FWDECAY_AUDIT_ENABLED 1
#define FWDECAY_AUDIT_INVARIANTS(obj) (obj).CheckInvariants()
#else
#define FWDECAY_AUDIT_ENABLED 0
#define FWDECAY_AUDIT_INVARIANTS(obj) \
  do {                                \
  } while (false)
#endif

#endif  // FWDECAY_UTIL_AUDIT_H_
