#ifndef FWDECAY_UTIL_METRICS_H_
#define FWDECAY_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "core/aggregates.h"
#include "core/decay.h"
#include "core/decaying_reservoir.h"
#include "core/forward_decay.h"
#include "util/audit.h"
#include "util/check.h"
#include "util/sched.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

// Self-instrumentation registry (DESIGN.md §9): the engine watches
// itself with the paper's own algorithm. Time-windowed views are backed
// by the forward-decay primitives —
//
//   * LatencyReservoir wraps core/decaying_reservoir.h (the Dropwizard
//     design, Section V), so latency quantiles are exponentially biased
//     toward the recent past with NO periodic rescaling thread (log-key
//     domain);
//   * DecayedRate wraps DecayedCount<ExponentialG> (Definition 5): for
//     a Poisson arrival process of rate r, the decayed count converges
//     to r/alpha, so rate-per-second = Value(t) * alpha. The landmark
//     is rebased opportunistically at *write* time (Section VI-A's O(1)
//     shift factor) — again, no background maintenance.
//
// This file sits in util/ (so fault_fs and every layer above can use
// it) but consumes core/ headers; that is safe because everything it
// needs from core/ and sampling/ is header-only, so no link cycle.
//
// Build-time kill switch: configuring with -DFWDECAY_METRICS=OFF
// defines FWDECAY_METRICS_DISABLED, which flips the aliases at the
// bottom of this header from the real implementations (namespace
// metrics::impl) to inline no-op shells (namespace metrics::noop).
// Both class sets are compiled identically in every translation unit —
// only the alias (not an ODR entity) depends on the macro — so mixing
// TUs built with different settings in one test binary is well-defined.

// Memory-order contract (audited for PR 6's atomics rule; every relaxed
// site below carries a `fwdecay: relaxed-ok` annotation that
// scripts/analyze.py checks against its allowlist):
//
//   * Counter / Gauge are *independent* cells: each publishes a single
//     word and readers consume that word in isolation, never as a flag
//     that other memory is ready. Relaxed RMW/store/load is therefore
//     sufficient — atomic RMW guarantees no lost increments, and there
//     is no dependent data for an acquire/release pair to order.
//   * StatsReporter::reports_ is the same shape (monotone counter read
//     for progress assertions), so it is relaxed too.
//   * StatsReporter::stop_ IS a publish/observe flag (the destructor
//     publishes "shut down" and the reporter thread's loop observes
//     it), so it uses a release store / acquire load pair; Stop() also
//     joins the thread, which is the stronger synchronization the
//     destructor actually relies on.
//   * Everything decayed (DecayedRate, LatencyReservoir, the registry
//     map) is mutex-guarded — multi-word state under forward-decay
//     rebasing is exactly the case where a lock, not atomics, is the
//     honest tool (see DecayedRate::Mark's read-modify-write of the
//     landmark + weight pair).
//
// All atomics go through sched::Atomic (util/sched.h): a transparent
// std::atomic wrapper by default, and the model-checked atomic under
// -DFWDECAY_SCHED=ON so sched::Explore() can exercise these paths under
// weak-memory reorderings (DESIGN.md §10).

#if defined(FWDECAY_METRICS_DISABLED)
#define FWDECAY_METRICS_ENABLED 0
#else
#define FWDECAY_METRICS_ENABLED 1
#endif

namespace fwdecay::metrics {

/// Every registered metric name must match this (enforced by
/// FWDECAY_CHECK at registration and by the scripts/lint.py `metrics`
/// rule on string literals).
bool ValidMetricName(const std::string& name);

/// Formats a sample value the way RenderPrometheus emits it: integral
/// values without a decimal point, everything else via %.9g (enough to
/// round-trip the digits that matter, few enough to hide ulp noise).
std::string FormatValue(double v);

namespace impl {

/// Monotone event counter. Lock-free; relaxed ordering is sufficient
/// because readers only ever need *a* recent value, not an ordering
/// against other memory.
class Counter {
 public:
  Counter() = default;

  /// Adds n; returns the pre-increment value.
  std::uint64_t Increment(std::uint64_t n = 1) {
    // fwdecay: relaxed-ok(independent monotone cell; RMW atomicity alone prevents lost counts)
    return value_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    // fwdecay: relaxed-ok(single-word read; no dependent data to order)
    return value_.load(std::memory_order_relaxed);
  }

 private:
  sched::Atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;

  void Set(double v) {
    // fwdecay: relaxed-ok(last-write-wins single word; readers need any recent value)
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const {
    // fwdecay: relaxed-ok(single-word read; no dependent data to order)
    return value_.load(std::memory_order_relaxed);
  }

 private:
  sched::Atomic<double> value_{0.0};
};

/// Exponentially decayed event rate over DecayedCount (Definition 5).
///
/// Mark(t, n) records n events at time t; RatePerSecond(t) reports the
/// decayed arrival rate, converging to the true rate for steady input
/// with time constant 1/alpha. Write-time landmark rebasing (Section
/// VI-A) keeps the stored weight in floating-point range forever.
class DecayedRate {
 public:
  explicit DecayedRate(double alpha)
      : alpha_(alpha),
        count_(MakeForwardDecay(ExponentialG(alpha), /*landmark=*/0.0)) {
    FWDECAY_CHECK_MSG(alpha > 0.0, "DecayedRate alpha must be positive");
  }

  /// Records `n` events at time `t` (seconds; any non-decreasing-ish
  /// order — values slightly behind a just-rebased landmark are clamped
  /// to it, which changes their weight by < exp(kRescaleLogLimit)
  /// relative error only in that corner).
  void Mark(Timestamp t, double n = 1.0) FWDECAY_EXCLUDES(mu_);

  /// The decayed rate in events/second at query time t.
  double RatePerSecond(Timestamp t) const FWDECAY_EXCLUDES(mu_);

  /// The decayed count C(t) itself (== RatePerSecond / alpha).
  double DecayedCountValue(Timestamp t) const FWDECAY_EXCLUDES(mu_);

  double alpha() const { return alpha_; }

  /// Representation audit (DESIGN.md §7).
  void CheckInvariants() const FWDECAY_EXCLUDES(mu_);

  /// Rebase the landmark once alpha*(t - L) exceeds this: weights stay
  /// below e^60 ~ 1e26, comfortably inside double range, and the rebase
  /// itself is one multiply (the Section VI-A shift factor).
  static constexpr double kRescaleLogLimit = 60.0;

 private:
  const double alpha_;
  mutable Mutex mu_;
  DecayedCount<ExponentialG> count_ FWDECAY_GUARDED_BY(mu_);
};

/// Forward-decayed latency sample over core/decaying_reservoir.h.
/// Quantiles of Snapshot() estimate the exponentially time-biased
/// latency distribution; no rescaling is ever needed (log-key domain).
class LatencyReservoir {
 public:
  /// `k`: reservoir capacity; `alpha`: decay per second (0.015 is the
  /// classic "last five minutes dominate" metrics-library default).
  LatencyReservoir(std::size_t k, double alpha)
      : reservoir_(k, alpha, /*start=*/0.0) {}

  /// Records a measurement taken at registry time `t` (seconds, >= 0).
  void Observe(Timestamp t, double value) FWDECAY_EXCLUDES(mu_);

  /// Summary statistics over the current decayed sample.
  ReservoirSnapshot Snapshot() const FWDECAY_EXCLUDES(mu_);

  /// Total observations ever recorded (cumulative, not decayed).
  std::uint64_t observations() const FWDECAY_EXCLUDES(mu_);

  void CheckInvariants() const FWDECAY_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  DecayingReservoir reservoir_ FWDECAY_GUARDED_BY(mu_);
  std::uint64_t observations_ FWDECAY_GUARDED_BY(mu_) = 0;
};

/// RAII helper: times its own scope and records the elapsed nanoseconds
/// into `reservoir` at destruction. Pass reservoir == nullptr to skip —
/// the clock is then never read, so 1-in-N sampled call sites pay
/// nothing on unsampled iterations.
class ScopedTimerSample {
 public:
  ScopedTimerSample(LatencyReservoir* reservoir, Timestamp t)
      : reservoir_(reservoir), t_(t),
        start_ns_(reservoir != nullptr ? Timer::NowNanos() : 0) {}
  ~ScopedTimerSample() {
    if (reservoir_ != nullptr) {
      reservoir_->Observe(
          t_, static_cast<double>(Timer::NowNanos() - start_ns_));
    }
  }

  ScopedTimerSample(const ScopedTimerSample&) = delete;
  ScopedTimerSample& operator=(const ScopedTimerSample&) = delete;

 private:
  LatencyReservoir* reservoir_;
  Timestamp t_;
  std::int64_t start_ns_;
};

/// Process-wide (or per-test) registry of named metrics. Get-or-create
/// handles are stable raw pointers — call sites resolve once and cache.
///
/// Exposition is the Prometheus text format: per family one `# HELP` /
/// `# TYPE` pair, then one `name{labels} value` line per instance;
/// reservoirs render as summaries (quantile-labelled lines plus a
/// cumulative `_count`). Families are keyed by name: all instances of a
/// name share one kind and help string (checked).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  /// The process-wide default registry the engine instruments into.
  static MetricsRegistry& Instance();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. `labels` is a pre-rendered Prometheus label body
  /// (e.g. `shard="3"`) or empty. Names must match
  /// ^fwdecay_[a-z0-9_]+$; re-registration with a different kind for
  /// the same name is a FWDECAY_CHECK failure.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "") FWDECAY_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "") FWDECAY_EXCLUDES(mu_);
  DecayedRate* GetDecayedRate(const std::string& name, const std::string& help,
                              double alpha, const std::string& labels = "")
      FWDECAY_EXCLUDES(mu_);
  LatencyReservoir* GetReservoir(const std::string& name,
                                 const std::string& help, std::size_t k,
                                 double alpha, const std::string& labels = "")
      FWDECAY_EXCLUDES(mu_);

  /// Seconds since this registry was constructed (steady clock) — the
  /// time base every Mark/Observe in the process uses.
  double NowSeconds() const { return epoch_.ElapsedSeconds(); }

  /// Renders the whole registry at `now` (registry seconds). The
  /// explicit-`now` overload exists so tests can pin time and compare
  /// the exposition byte-for-byte.
  void RenderPrometheus(std::string* out) const FWDECAY_EXCLUDES(mu_);
  void RenderPrometheus(std::string* out, Timestamp now) const
      FWDECAY_EXCLUDES(mu_);

  std::size_t MetricCount() const FWDECAY_EXCLUDES(mu_);

  /// Representation audit: name validity, family consistency, and the
  /// per-metric invariants of every decayed structure.
  void CheckInvariants() const FWDECAY_EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kDecayedRate, kReservoir };

  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<DecayedRate> rate;
    std::unique_ptr<LatencyReservoir> reservoir;
  };

  /// Shared get-or-create plumbing: validates the name, enforces family
  /// consistency, and returns the (possibly new) entry.
  Entry* GetOrCreate(const std::string& name, const std::string& help,
                     const std::string& labels, Kind kind)
      FWDECAY_REQUIRES(mu_);

  static const char* KindName(Kind kind);
  static void RenderEntry(const std::string& name, const std::string& labels,
                          const Entry& entry, Timestamp now, std::string* out);

  Timer epoch_;
  mutable Mutex mu_;
  /// Keyed (name, labels): iteration order == exposition order.
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Entry>>
      entries_ FWDECAY_GUARDED_BY(mu_);
};

/// Periodic exposition thread: every `period_seconds` renders
/// `registry` and hands the text to `sink` (default: stderr). Annotated
/// and audited; stops and joins in the destructor (never detaches).
class StatsReporter {
 public:
  using Sink = std::function<void(const std::string&)>;

  StatsReporter(const MetricsRegistry* registry, double period_seconds,
                Sink sink = Sink());
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  /// Idempotent; blocks until the reporter thread has exited.
  void Stop();

  /// Renders the registry and emits one report to the sink immediately,
  /// off-schedule. The server's graceful-shutdown path calls this after
  /// draining its ingest queues, so the final counter deltas are
  /// published even when the process exits mid-period.
  void FlushNow();

  std::uint64_t reports_emitted() const {
    // fwdecay: relaxed-ok(monotone progress counter; no dependent data to order)
    return reports_.load(std::memory_order_relaxed);
  }

 private:
  void Run();

  const MetricsRegistry* registry_;
  const double period_seconds_;
  Sink sink_;
  /// Publish/observe shutdown flag: release store in Stop(), acquire
  /// load in the reporter loop (see the memory-order contract above).
  sched::Atomic<bool> stop_{false};
  sched::Atomic<std::uint64_t> reports_{0};
  std::thread thread_;
};

}  // namespace impl

namespace noop {

// Inline no-op shells with the same surface as metrics::impl. A
// FWDECAY_METRICS=OFF build aliases these in, so every call site
// compiles to nothing (all bodies are empty and inline) and the
// registry hands out shared dummy instances.

class Counter {
 public:
  std::uint64_t Increment(std::uint64_t = 1) { return 0; }
  std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void Set(double) {}
  double value() const { return 0.0; }
};

class DecayedRate {
 public:
  explicit DecayedRate(double) {}
  void Mark(Timestamp, double = 1.0) {}
  double RatePerSecond(Timestamp) const { return 0.0; }
  double DecayedCountValue(Timestamp) const { return 0.0; }
  double alpha() const { return 0.0; }
  void CheckInvariants() const {}
};

class LatencyReservoir {
 public:
  LatencyReservoir(std::size_t, double) {}
  void Observe(Timestamp, double) {}
  ReservoirSnapshot Snapshot() const { return ReservoirSnapshot{}; }
  std::uint64_t observations() const { return 0; }
  void CheckInvariants() const {}
};

class ScopedTimerSample {
 public:
  ScopedTimerSample(LatencyReservoir*, Timestamp) {}
  ScopedTimerSample(const ScopedTimerSample&) = delete;
  ScopedTimerSample& operator=(const ScopedTimerSample&) = delete;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Instance() {
    static MetricsRegistry registry;
    return registry;
  }

  Counter* GetCounter(const std::string&, const std::string&,
                      const std::string& = "") {
    return &counter_;
  }
  Gauge* GetGauge(const std::string&, const std::string&,
                  const std::string& = "") {
    return &gauge_;
  }
  DecayedRate* GetDecayedRate(const std::string&, const std::string&, double,
                              const std::string& = "") {
    return &rate_;
  }
  LatencyReservoir* GetReservoir(const std::string&, const std::string&,
                                 std::size_t, double,
                                 const std::string& = "") {
    return &reservoir_;
  }

  double NowSeconds() const { return 0.0; }
  void RenderPrometheus(std::string* out) const { out->clear(); }
  void RenderPrometheus(std::string* out, Timestamp) const { out->clear(); }
  std::size_t MetricCount() const { return 0; }
  void CheckInvariants() const {}

 private:
  Counter counter_;
  Gauge gauge_;
  DecayedRate rate_{1.0};
  LatencyReservoir reservoir_{0, 1.0};
};

class StatsReporter {
 public:
  using Sink = std::function<void(const std::string&)>;
  StatsReporter(const MetricsRegistry*, double, Sink = Sink()) {}
  void Stop() {}
  void FlushNow() {}
  std::uint64_t reports_emitted() const { return 0; }
};

}  // namespace noop

#if FWDECAY_METRICS_ENABLED
using Counter = impl::Counter;
using Gauge = impl::Gauge;
using DecayedRate = impl::DecayedRate;
using LatencyReservoir = impl::LatencyReservoir;
using ScopedTimerSample = impl::ScopedTimerSample;
using MetricsRegistry = impl::MetricsRegistry;
using StatsReporter = impl::StatsReporter;
#else
using Counter = noop::Counter;
using Gauge = noop::Gauge;
using DecayedRate = noop::DecayedRate;
using LatencyReservoir = noop::LatencyReservoir;
using ScopedTimerSample = noop::ScopedTimerSample;
using MetricsRegistry = noop::MetricsRegistry;
using StatsReporter = noop::StatsReporter;
#endif

}  // namespace fwdecay::metrics

#endif  // FWDECAY_UTIL_METRICS_H_
