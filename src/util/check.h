#ifndef FWDECAY_UTIL_CHECK_H_
#define FWDECAY_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Lightweight invariant-checking macros for library code.
//
// The library is exception-free (Google style); contract violations are
// programming errors and abort with a source location and message.
// FWDECAY_CHECK is always on; FWDECAY_DCHECK compiles away in NDEBUG builds
// and is meant for hot paths.

namespace fwdecay::internal {

/// Prints a fatal-check failure and aborts. Never returns.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "FWDECAY_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace fwdecay::internal

/// Aborts with a diagnostic if `cond` is false. Always enabled.
#define FWDECAY_CHECK(cond)                                            \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::fwdecay::internal::CheckFailed(__FILE__, __LINE__, #cond, ""); \
    }                                                                  \
  } while (0)

/// Like FWDECAY_CHECK but with an explanatory message.
#define FWDECAY_CHECK_MSG(cond, msg)                                    \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::fwdecay::internal::CheckFailed(__FILE__, __LINE__, #cond, msg); \
    }                                                                   \
  } while (0)

/// Debug-only check; compiles to nothing when NDEBUG is defined.
#ifdef NDEBUG
#define FWDECAY_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define FWDECAY_DCHECK(cond) FWDECAY_CHECK(cond)
#endif

#endif  // FWDECAY_UTIL_CHECK_H_
