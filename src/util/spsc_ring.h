#ifndef FWDECAY_UTIL_SPSC_RING_H_
#define FWDECAY_UTIL_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.h"
#include "util/sched.h"

// Bounded single-producer/single-consumer ring buffer — the shard
// handoff queue of the shared-nothing ingest pipeline (DESIGN.md §14).
//
// Design (Lamport queue with monotonic counters and cached peer
// indices, the shape Seastar/folly/rigtorp converged on):
//
//   * capacity is a power of two; head_ and tail_ are *monotonic*
//     64-bit counters (slot = counter & mask), so equal counters mean
//     empty, a difference of capacity means full, and no generation
//     tag is needed to break the full/empty ABA ambiguity — at one
//     push per nanosecond the counters would take ~580 years to wrap.
//   * head_ (consumer cursor) and tail_ (producer cursor) live on
//     their own cache lines, as do the producer-local cached_head_ and
//     consumer-local cached_tail_ mirrors, so steady-state push/pop
//     does not false-share; the cursors are re-read from the shared
//     line only when the cached copy says full/empty.
//   * slots are raw storage; a push placement-constructs the element
//     and a pop move-extracts + destroys it, so elements live exactly
//     while they are in flight and ownership transfers whole.
//
// Memory-order contract (the §14 proof obligation, explored by
// tests/spsc_ring_test.cc under sched::ModelAtomic):
//
//   publish:  producer writes the slot, then release-stores tail_;
//             consumer acquire-loads tail_ before reading the slot.
//             The release/acquire edge on tail_ makes the slot write
//             happen-before the consumer's read — no torn publish.
//   recycle:  consumer destroys the slot, then release-stores head_;
//             producer acquire-loads head_ before reusing the slot.
//             The mirror edge keeps slot reuse after slot destruction.
//   own cursor: each side loads its *own* cursor relaxed — it is the
//             only writer of that cursor, so coherence alone suffices.
//
// The atomic type is a template parameter defaulting to sched::Atomic:
// production builds get plain std::atomic (PlainAtomic), a
// -DFWDECAY_SCHED build routes the cursors through the PR 6 model
// checker, and the ring tests instantiate sched::ModelAtomic directly
// so the weak-memory exploration runs in EVERY build.

namespace fwdecay {

/// Bounded wait-free SPSC queue. Exactly one producer thread may call
/// TryPush and exactly one consumer thread may call TryPop; the
/// release/acquire edges above are the queue's only synchronization.
/// Construction, destruction, and any other member must be called from
/// a single thread with both sides quiesced.
template <typename T, template <typename> class AtomicT = sched::Atomic>
class SpscRing {
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "SpscRing storage is max_align_t-aligned");

 public:
  /// Capacity must be a power of two >= 2 (slot = counter & mask).
  explicit SpscRing(std::size_t capacity)
      : capacity_(capacity),
        mask_(capacity - 1),
        storage_(new std::byte[sizeof(T) * capacity]) {
    FWDECAY_CHECK_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                      "SpscRing capacity must be a power of two >= 2");
  }

  /// Destroys whatever the consumer never popped (both sides must have
  /// quiesced; the relaxed loads are then the threads' final values).
  ~SpscRing() {
    // fwdecay: relaxed-ok(destructor runs after both threads quiesced)
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    // fwdecay: relaxed-ok(destructor runs after both threads quiesced)
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (; head != tail; ++head) Slot(head)->~T();
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Moves `v` into the ring and returns true, or
  /// returns false (v untouched) when the ring is full.
  bool TryPush(T&& v) {
    // fwdecay: relaxed-ok(own cursor; the producer is its only writer)
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == capacity_) return false;
    }
    // fwdecay: hotpath-cold(placement-new into preallocated ring slot storage — no heap allocation)
    ::new (static_cast<void*>(Slot(tail))) T(std::move(v));
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Move-assigns the oldest element into *out and
  /// returns true, or returns false when the ring is empty.
  bool TryPop(T* out) {
    // fwdecay: relaxed-ok(own cursor; the consumer is its only writer)
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    T* slot = Slot(head);
    *out = std::move(*slot);
    slot->~T();
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return capacity_; }

  /// Racy size estimate (monitoring only): exact when both sides are
  /// quiesced, otherwise a point-in-time lower/upper mix.
  std::size_t SizeApprox() const {
    // fwdecay: relaxed-ok(monitoring estimate; exact only at quiescence)
    return static_cast<std::size_t>(tail_.load(std::memory_order_relaxed) -
                                    // fwdecay: relaxed-ok(same estimate)
                                    head_.load(std::memory_order_relaxed));
  }

 private:
  T* Slot(std::uint64_t counter) {
    return std::launder(reinterpret_cast<T*>(
        storage_.get() + sizeof(T) * (counter & mask_)));
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  const std::unique_ptr<std::byte[]> storage_;

  // Consumer cache line: its cursor + its cached mirror of tail_.
  alignas(64) AtomicT<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;
  // Producer cache line: its cursor + its cached mirror of head_.
  alignas(64) AtomicT<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;
  // Trailing pad so an adjacent object cannot share the producer line.
  [[maybe_unused]] char pad_[64 - 2 * sizeof(std::uint64_t)];
};

}  // namespace fwdecay

#endif  // FWDECAY_UTIL_SPSC_RING_H_
