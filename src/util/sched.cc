#include "util/sched.h"

#include <algorithm>
#include <array>
#include <condition_variable>
#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/random.h"

// Scheduler internals for the schedule-exploring model checker declared
// in util/sched.h. Structure:
//
//   * Exactly one model thread runs at a time. Every model operation
//     (mutex, atomic, spawn/join, Yield) enters the scheduler under its
//     big lock `mu_`, passes a *scheduling point*, applies its effect,
//     and returns with the grant still held; control moves between
//     threads only via Grant() + condvar handoff, so model "races" are
//     purely virtual and the checker itself is TSan-clean.
//
//   * Nondeterminism is funneled through Choice(n): which runnable
//     thread continues, and which visible store a weak load observes.
//     Decisions are recorded as (choice, arity) pairs; exhaustive mode
//     re-executes with a mutated prefix to walk the tree depth-first,
//     random mode draws from a seeded Rng, and replay feeds a token's
//     decision list back in.
//
//   * Happens-before is tracked with per-thread vector clocks. Atomic
//     locations keep a bounded modification-order store history; each
//     store carries the storing thread's clock (`hb`, for visibility)
//     and the clock an acquire reader would synchronize with (`sync`,
//     empty for relaxed stores, inherited through RMWs to model C++20
//     release sequences).
//
//   * Failures (Expect() violations, deadlocks, replay divergence) are
//     recorded once and flip the run into *permissive* mode: blocked
//     threads are released, virtual locks barge, loads pin to the
//     newest store, scheduling degrades to round-robin, and no more
//     decisions are recorded. The run then drains without exceptions
//     and the driver emits the replay token.

namespace fwdecay::sched {
namespace internal {

namespace {

using Clock = std::array<std::uint64_t, kMaxThreads>;

Clock JoinClocks(const Clock& a, const Clock& b) {
  Clock out{};
  for (std::size_t i = 0; i < kMaxThreads; ++i) {
    out[i] = std::max(a[i], b[i]);
  }
  return out;
}

bool IsAcquire(std::memory_order order) {
  return order == std::memory_order_acquire ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

bool IsRelease(std::memory_order order) {
  return order == std::memory_order_release ||
         order == std::memory_order_acq_rel ||
         order == std::memory_order_seq_cst;
}

constexpr char kTokenMagic[] = "FWSCHED1";

bool ValidFixtureName(const char* name) {
  if (name == nullptr || name[0] == '\0') return false;
  for (const char* p = name; *p != '\0'; ++p) {
    const char c = *p;
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void AppendHex(std::string* out, std::uint64_t v) {
  char buf[17];
  int n = 0;
  do {
    buf[n++] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  } while (v != 0);
  while (n > 0) out->push_back(buf[--n]);
}

bool ParseHex(const std::string& s, std::size_t begin, std::size_t end,
              std::uint64_t* out) {
  if (begin >= end) return false;
  std::uint64_t v = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = s[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    if (v > (~std::uint64_t{0} >> 4)) return false;
    v = (v << 4) | digit;
  }
  *out = v;
  return true;
}

bool ParseDecimal(const std::string& s, std::size_t begin, std::size_t end,
                  std::uint64_t* out) {
  if (begin >= end) return false;
  std::uint64_t v = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const char c = s[i];
    if (c < '0' || c > '9') return false;
    if (v > (~std::uint64_t{0} - 9) / 10) return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

/// One recorded nondeterministic decision. `arity` is 0 for decisions
/// loaded from a replay token (arity unknown; validated as choice <
/// observed arity at replay time).
struct Decision {
  std::uint64_t choice = 0;
  std::uint64_t arity = 0;
};

namespace {

struct Store {
  std::uint64_t bits = 0;
  int thread = 0;
  Clock hb{};    // storing thread's clock at the store (visibility test)
  Clock sync{};  // clock an acquire reader joins with; {} for relaxed
};

struct Location {
  std::vector<Store> stores;  // modification order, trimmed to a window
  std::uint64_t base = 0;     // global modification index of stores[0]
  Clock read_floor{};         // per-thread coherence: newest index read
};

struct LockState {
  int owner = -1;
  int display_id = 0;  // stable per-run number for deadlock reports
  Clock sync{};        // last owner's release clock
};

enum class Status { kUnborn, kRunnable, kBlockedMutex, kBlockedJoin, kFinished };

struct ThreadState {
  Status status = Status::kUnborn;
  Clock clock{};
  const void* waiting_mutex = nullptr;
  int waiting_join = -1;
  std::vector<const void*> held;
};

}  // namespace

class Scheduler {
 public:
  Scheduler(const ExploreOptions& options, bool token_replay)
      : options_(options), token_replay_(token_replay), rng_(options.seed) {}

  // ---- driver side (called from Explore/Replay, never from model ops) --

  void PrepareRun(std::vector<Decision> prefix) {
    trace_ = std::move(prefix);
    trace_pos_ = 0;
    locs_.clear();
    locks_.clear();
    next_lock_display_id_ = 1;
    for (auto& t : threads_) t = ThreadState{};
    nthreads_ = 1;
    threads_[0].status = Status::kRunnable;
    active_ = 0;
    permissive_ = false;
    suppress_failures_ = false;
    failed_ = false;
    pruned_ = false;
    failure_.clear();
    steps_ = 0;
  }

  void RunBody(const std::function<void()>& body) {
    tls_sched = this;
    tls_id = 0;
    body();
    {
      std::unique_lock<std::mutex> lk(mu_);
      for (int i = 1; i < nthreads_; ++i) {
        FWDECAY_CHECK_MSG(threads_[i].status == Status::kFinished,
                          "sched: exploration body returned while a spawned "
                          "sched::Thread was still live (missing Join()?)");
      }
    }
    for (auto& real : reals_) real.join();
    reals_.clear();
    tls_sched = nullptr;
    tls_id = -1;
  }

  bool failed() const { return failed_; }
  bool pruned() const { return pruned_; }
  const std::string& failure() const { return failure_; }
  const std::vector<Decision>& trace() const { return trace_; }
  const ExploreOptions& options() const { return options_; }

  // ---- model-thread side -------------------------------------------

  void SchedulePoint() {
    std::unique_lock<std::mutex> lk(mu_);
    SchedulePointLocked(lk);
  }

  void Lock(const void* mu) {
    std::unique_lock<std::mutex> lk(mu_);
    SchedulePointLocked(lk);
    LockState& lock = GetLockLocked(mu);
    const int me = tls_id;
    if (lock.owner == me && !permissive_) {
      FailLocked(std::string("recursive lock of mutex m") +
                 std::to_string(lock.display_id) + " by thread " +
                 std::to_string(me));
    }
    while (lock.owner != -1 && lock.owner != me) {
      if (permissive_) break;  // barge: permissive locks are advisory
      ThreadState& t = threads_[me];
      t.status = Status::kBlockedMutex;
      t.waiting_mutex = mu;
      if (!AnyRunnableLocked()) {
        DeadlockLocked();
        continue;  // permissive now; loop re-evaluates
      }
      SwitchWhileBlockedLocked(lk);
    }
    ThreadState& t = threads_[me];
    t.waiting_mutex = nullptr;
    if (lock.owner == -1) lock.owner = me;
    t.clock = JoinClocks(t.clock, lock.sync);
    t.held.push_back(mu);
  }

  void Unlock(const void* mu) {
    std::unique_lock<std::mutex> lk(mu_);
    SchedulePointLocked(lk);
    LockState& lock = GetLockLocked(mu);
    const int me = tls_id;
    ThreadState& t = threads_[me];
    if (lock.owner != me && !permissive_) {
      FailLocked(std::string("unlock of mutex m") +
                 std::to_string(lock.display_id) +
                 " not held by thread " + std::to_string(me));
      return;
    }
    auto it = std::find(t.held.rbegin(), t.held.rend(), mu);
    if (it != t.held.rend()) t.held.erase(std::next(it).base());
    if (lock.owner != me) return;  // permissive double-unlock: ignore
    ++t.clock[static_cast<std::size_t>(me)];
    lock.sync = t.clock;
    lock.owner = -1;
    for (int i = 0; i < nthreads_; ++i) {
      if (threads_[i].status == Status::kBlockedMutex &&
          threads_[i].waiting_mutex == mu) {
        threads_[i].status = Status::kRunnable;
      }
    }
  }

  void ResetLock(const void* mu) {
    std::unique_lock<std::mutex> lk(mu_);
    locks_.erase(mu);
  }

  std::uint64_t Load(const void* loc, std::uint64_t init,
                     std::memory_order order) {
    std::unique_lock<std::mutex> lk(mu_);
    SchedulePointLocked(lk);
    Location& l = GetLocLocked(loc, init);
    const int me = tls_id;
    ThreadState& t = threads_[me];
    // Newest store that happens-before this load: the floor of the
    // readable window (reading anything older would be reading a store
    // the thread provably already saw overwritten).
    std::size_t floor_idx = 0;
    for (std::size_t i = l.stores.size(); i-- > 0;) {
      const Store& s = l.stores[i];
      if (t.clock[static_cast<std::size_t>(s.thread)] >=
          s.hb[static_cast<std::size_t>(s.thread)]) {
        floor_idx = i;
        break;
      }
    }
    const std::uint64_t my_floor = l.read_floor[static_cast<std::size_t>(me)];
    if (my_floor > l.base + floor_idx) {
      floor_idx = static_cast<std::size_t>(my_floor - l.base);
    }
    const std::size_t hi = l.stores.size() - 1;
    std::size_t lo = floor_idx;
    // seq_cst loads are conservatively pinned to the newest store (a
    // single total order exists; modeling it as "latest" is the
    // strongest legal behaviour). Permissive mode pins everything.
    if (order == std::memory_order_seq_cst || permissive_) lo = hi;
    if (hi - lo + 1 > options_.max_store_history) {
      lo = hi + 1 - options_.max_store_history;
    }
    const std::size_t picked = hi - ChoiceLocked(hi - lo + 1);
    const Store& s = l.stores[picked];
    l.read_floor[static_cast<std::size_t>(me)] =
        std::max(l.read_floor[static_cast<std::size_t>(me)], l.base + picked);
    if (IsAcquire(order)) t.clock = JoinClocks(t.clock, s.sync);
    return s.bits;
  }

  void StoreOp(const void* loc, std::uint64_t init, std::uint64_t bits,
               std::memory_order order) {
    std::unique_lock<std::mutex> lk(mu_);
    SchedulePointLocked(lk);
    Location& l = GetLocLocked(loc, init);
    AppendStoreLocked(&l, bits, IsRelease(order), /*inherit_sync=*/false);
  }

  std::uint64_t Rmw(const void* loc, std::uint64_t init, RmwFn fn,
                    std::uint64_t operand, std::memory_order order) {
    std::unique_lock<std::mutex> lk(mu_);
    SchedulePointLocked(lk);
    Location& l = GetLocLocked(loc, init);
    const Store latest = l.stores.back();  // RMWs always read the newest
    ThreadState& t = threads_[tls_id];
    if (IsAcquire(order)) t.clock = JoinClocks(t.clock, latest.sync);
    AppendStoreLocked(&l, fn(latest.bits, operand), IsRelease(order),
                      /*inherit_sync=*/true);
    return latest.bits;
  }

  bool Cas(const void* loc, std::uint64_t init, std::uint64_t expected,
           std::uint64_t desired, std::memory_order order,
           std::uint64_t* actual) {
    std::unique_lock<std::mutex> lk(mu_);
    SchedulePointLocked(lk);
    Location& l = GetLocLocked(loc, init);
    const Store latest = l.stores.back();
    const int me = tls_id;
    ThreadState& t = threads_[me];
    if (latest.bits == expected) {
      if (IsAcquire(order)) t.clock = JoinClocks(t.clock, latest.sync);
      AppendStoreLocked(&l, desired, IsRelease(order), /*inherit_sync=*/true);
      return true;
    }
    // Failed CAS is a load of the newest store; per [atomics.types.operations]
    // the failure ordering drops the release component of `order`.
    if (IsAcquire(order)) t.clock = JoinClocks(t.clock, latest.sync);
    l.read_floor[static_cast<std::size_t>(me)] =
        std::max(l.read_floor[static_cast<std::size_t>(me)],
                 l.base + l.stores.size() - 1);
    *actual = latest.bits;
    return false;
  }

  void ResetLoc(const void* loc) {
    std::unique_lock<std::mutex> lk(mu_);
    locs_.erase(loc);
  }

  int Spawn(std::function<void()> fn) {
    int id;
    {
      std::unique_lock<std::mutex> lk(mu_);
      FWDECAY_CHECK_MSG(nthreads_ < static_cast<int>(kMaxThreads),
                        "sched: kMaxThreads exceeded");
      id = nthreads_++;
      ThreadState& child = threads_[id];
      ThreadState& parent = threads_[tls_id];
      ++parent.clock[static_cast<std::size_t>(tls_id)];
      child.status = Status::kRunnable;
      child.clock = parent.clock;  // spawn happens-before the child body
      ++child.clock[static_cast<std::size_t>(id)];
    }
    reals_.emplace_back([this, id, fn = std::move(fn)]() mutable {
      tls_sched = this;
      tls_id = id;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return active_ == id; });
      }
      fn();
      FinishCurrentThread();
      tls_sched = nullptr;
      tls_id = -1;
    });
    SchedulePoint();  // the new thread is schedulable from here on
    return id;
  }

  void Join(int target) {
    std::unique_lock<std::mutex> lk(mu_);
    SchedulePointLocked(lk);
    const int me = tls_id;
    ThreadState& t = threads_[me];
    for (;;) {
      if (threads_[target].status == Status::kFinished) break;
      t.status = Status::kBlockedJoin;
      t.waiting_join = target;
      if (!AnyRunnableLocked()) {
        if (!permissive_) {
          DeadlockLocked();
          continue;
        }
        // A join cycle cannot be recovered by barging: the only way to
        // unblock is for the target to run, and it never will.
        FWDECAY_CHECK_MSG(false, "sched: unrecoverable join deadlock");
      }
      SwitchWhileBlockedLocked(lk);
    }
    t.waiting_join = -1;
    t.status = Status::kRunnable;
    t.clock = JoinClocks(t.clock, threads_[target].clock);
  }

  void FinishCurrentThread() {
    std::unique_lock<std::mutex> lk(mu_);
    const int me = tls_id;
    ThreadState& t = threads_[me];
    ++t.clock[static_cast<std::size_t>(me)];
    t.status = Status::kFinished;
    if (!t.held.empty() && !permissive_) {
      FailLocked(std::string("thread ") + std::to_string(me) +
                 " finished while holding a mutex");
    }
    for (int i = 0; i < nthreads_; ++i) {
      if (threads_[i].status == Status::kBlockedJoin &&
          threads_[i].waiting_join == me) {
        threads_[i].status = Status::kRunnable;
      }
    }
    if (!AnyRunnableLocked()) {
      if (AnyBlockedLocked()) {
        DeadlockLocked();  // releases the blocked threads (permissive)
      } else {
        return;  // everyone else already finished; nothing to grant
      }
    }
    GrantLocked(PickNextLocked(/*current_runnable=*/false), /*wait=*/false, lk);
  }

  void RecordFailure(const std::string& message) {
    std::unique_lock<std::mutex> lk(mu_);
    FailLocked(message);
  }

  bool HasFailedUnlocked() const { return failed_; }

 private:
  LockState& GetLockLocked(const void* mu) {
    auto [it, inserted] = locks_.try_emplace(mu);
    if (inserted) it->second.display_id = next_lock_display_id_++;
    return it->second;
  }

  Location& GetLocLocked(const void* loc, std::uint64_t init) {
    auto [it, inserted] = locs_.try_emplace(loc);
    if (inserted) {
      // Pre-history initial value: visible to (and unordered with)
      // every thread, carrying no synchronization.
      it->second.stores.push_back(Store{init, 0, Clock{}, Clock{}});
    }
    return it->second;
  }

  void AppendStoreLocked(Location* l, std::uint64_t bits, bool release,
                         bool inherit_sync) {
    const int me = tls_id;
    ThreadState& t = threads_[me];
    ++t.clock[static_cast<std::size_t>(me)];
    Store s;
    s.bits = bits;
    s.thread = me;
    s.hb = t.clock;
    // C++20 release sequences: an RMW extends the sequence of the store
    // it read (inherit_sync); a plain store starts fresh. Relaxed
    // plain stores publish nothing.
    if (inherit_sync) s.sync = l->stores.back().sync;
    if (release) s.sync = JoinClocks(s.sync, t.clock);
    l->stores.push_back(s);
    l->read_floor[static_cast<std::size_t>(me)] =
        l->base + l->stores.size() - 1;
    while (l->stores.size() > options_.max_store_history) {
      l->stores.erase(l->stores.begin());
      ++l->base;
    }
  }

  bool AnyRunnableLocked() const {
    for (int i = 0; i < nthreads_; ++i) {
      if (threads_[i].status == Status::kRunnable) return true;
    }
    return false;
  }

  bool AnyBlockedLocked() const {
    for (int i = 0; i < nthreads_; ++i) {
      if (threads_[i].status == Status::kBlockedMutex ||
          threads_[i].status == Status::kBlockedJoin) {
        return true;
      }
    }
    return false;
  }

  /// Records a nondeterministic decision with `n` alternatives and
  /// returns the selected index in [0, n). Decisions with one
  /// alternative are not recorded (keeps tokens short and makes the
  /// DFS tree exactly the branch points).
  std::uint64_t ChoiceLocked(std::size_t n) {
    if (n <= 1) return 0;
    FWDECAY_DCHECK(!permissive_);
    if (trace_pos_ < trace_.size()) {
      Decision& d = trace_[trace_pos_];
      const bool ok =
          d.arity == 0 ? d.choice < n : d.arity == static_cast<std::uint64_t>(n);
      if (!ok) {
        FailLocked(token_replay_
                       ? "replay divergence: token does not match this "
                         "fixture/build (stale token?)"
                       : "internal: schedule replay divergence");
        return 0;
      }
      if (d.arity == 0) d.arity = n;  // learned at replay time
      return trace_[trace_pos_++].choice;
    }
    std::uint64_t c = 0;
    if (options_.mode == Mode::kRandom) c = rng_.NextBounded(n);
    trace_.push_back(Decision{c, static_cast<std::uint64_t>(n)});
    ++trace_pos_;
    return c;
  }

  /// Scheduling point for a runnable thread: counts a step, applies the
  /// step budget, and possibly preempts in favour of another runnable
  /// thread. Candidate 0 is "keep running the current thread", so the
  /// all-zeros decision vector is the plain sequential schedule.
  void SchedulePointLocked(std::unique_lock<std::mutex>& lk) {
    ++steps_;
    if (!permissive_ && steps_ > options_.max_steps) {
      pruned_ = true;
      suppress_failures_ = true;
      EnterPermissiveLocked();
    }
    FWDECAY_CHECK_MSG(steps_ <= options_.max_steps * 4 + 1000,
                      "sched: run failed to terminate in permissive mode "
                      "(unbounded loop in fixture?)");
    const int me = tls_id;
    if (permissive_) {
      const int next = NextRunnableRoundRobinLocked(me);
      if (next != me && next != -1) GrantLocked(next, /*wait=*/true, lk);
      return;
    }
    const int chosen = PickNextLocked(/*current_runnable=*/true);
    if (chosen != me) GrantLocked(chosen, /*wait=*/true, lk);
  }

  /// Picks the next thread to run. With current_runnable, the current
  /// thread is candidate 0; remaining runnable threads follow in id
  /// order (deterministic across re-executions).
  int PickNextLocked(bool current_runnable) {
    const int me = tls_id;
    std::array<int, kMaxThreads> candidates{};
    std::size_t n = 0;
    if (current_runnable) candidates[n++] = me;
    for (int i = 0; i < nthreads_; ++i) {
      if (i != me && threads_[i].status == Status::kRunnable) {
        candidates[n++] = i;
      }
    }
    FWDECAY_CHECK(n > 0);
    if (permissive_) return NextRunnableRoundRobinLocked(me);
    return candidates[ChoiceLocked(n)];
  }

  int NextRunnableRoundRobinLocked(int me) const {
    for (int off = 1; off <= nthreads_; ++off) {
      const int i = (me + off) % nthreads_;
      if (threads_[i].status == Status::kRunnable) return i;
    }
    return -1;
  }

  /// Transfers the grant to `chosen`; with wait, parks until granted
  /// back (the caller must be prepared to re-check its blocking
  /// condition afterwards).
  void GrantLocked(int chosen, bool wait, std::unique_lock<std::mutex>& lk) {
    const int me = tls_id;
    active_ = chosen;
    cv_.notify_all();
    if (wait) cv_.wait(lk, [&] { return active_ == me; });
  }

  /// Switches away from a thread that just marked itself blocked.
  void SwitchWhileBlockedLocked(std::unique_lock<std::mutex>& lk) {
    GrantLocked(PickNextLocked(/*current_runnable=*/false), /*wait=*/true, lk);
  }

  void EnterPermissiveLocked() {
    permissive_ = true;
    for (int i = 0; i < nthreads_; ++i) {
      // Mutex waiters barge from here on; joiners re-check their
      // target and re-block if it is still live (join is the one wait
      // permissive mode must still honour, for stack safety).
      if (threads_[i].status == Status::kBlockedMutex) {
        threads_[i].status = Status::kRunnable;
      }
    }
    cv_.notify_all();
  }

  void FailLocked(const std::string& message) {
    if (!failed_ && !suppress_failures_) {
      failed_ = true;
      failure_ = message;
    }
    EnterPermissiveLocked();
  }

  void DeadlockLocked() {
    std::string msg = "deadlock:";
    for (int i = 0; i < nthreads_; ++i) {
      const ThreadState& t = threads_[i];
      if (t.status == Status::kBlockedMutex) {
        const LockState& lock = locks_.at(t.waiting_mutex);
        msg += " thread " + std::to_string(i) + " waits on mutex m" +
               std::to_string(lock.display_id) + " held by thread " +
               std::to_string(lock.owner) + ";";
      } else if (t.status == Status::kBlockedJoin) {
        msg += " thread " + std::to_string(i) + " waits on join of thread " +
               std::to_string(t.waiting_join) + ";";
      }
    }
    for (int i = 0; i < nthreads_; ++i) {
      const ThreadState& t = threads_[i];
      if (!t.held.empty()) {
        msg += " thread " + std::to_string(i) + " holds";
        for (const void* mu : t.held) {
          msg += " m" + std::to_string(locks_.at(mu).display_id);
        }
        msg += ";";
      }
    }
    FailLocked(msg);
  }

  const ExploreOptions options_;
  const bool token_replay_;

  std::mutex mu_;
  std::condition_variable cv_;
  int active_ = 0;
  int nthreads_ = 1;
  std::array<ThreadState, kMaxThreads> threads_;
  std::vector<std::thread> reals_;
  std::unordered_map<const void*, Location> locs_;
  std::unordered_map<const void*, LockState> locks_;
  int next_lock_display_id_ = 1;

  std::vector<Decision> trace_;
  std::size_t trace_pos_ = 0;
  bool permissive_ = false;
  bool suppress_failures_ = false;
  bool failed_ = false;
  bool pruned_ = false;
  std::string failure_;
  std::size_t steps_ = 0;
  Rng rng_;

  static thread_local Scheduler* tls_sched;
  static thread_local int tls_id;

  friend Scheduler* Current();
  friend ExploreResult RunExploration(const ExploreOptions&, bool,
                                      std::vector<Decision>,
                                      const std::function<void()>&);
};

thread_local Scheduler* Scheduler::tls_sched = nullptr;
thread_local int Scheduler::tls_id = -1;

Scheduler* Current() { return Scheduler::tls_sched; }

// ---- type-erased hooks used by the header templates -----------------

std::uint64_t AtomicLoad(Scheduler* s, const void* loc, std::uint64_t init_bits,
                         std::memory_order order) {
  return s->Load(loc, init_bits, order);
}

void AtomicStore(Scheduler* s, const void* loc, std::uint64_t init_bits,
                 std::uint64_t bits, std::memory_order order) {
  s->StoreOp(loc, init_bits, bits, order);
}

std::uint64_t AtomicRmw(Scheduler* s, const void* loc, std::uint64_t init_bits,
                        RmwFn fn, std::uint64_t operand_bits,
                        std::memory_order order) {
  return s->Rmw(loc, init_bits, fn, operand_bits, order);
}

bool AtomicCas(Scheduler* s, const void* loc, std::uint64_t init_bits,
               std::uint64_t expected_bits, std::uint64_t desired_bits,
               std::memory_order order, std::uint64_t* actual_bits) {
  return s->Cas(loc, init_bits, expected_bits, desired_bits, order,
                actual_bits);
}

void AtomicReset(Scheduler* s, const void* loc) { s->ResetLoc(loc); }

void MutexLock(Scheduler* s, const void* mu) { s->Lock(mu); }

void MutexUnlock(Scheduler* s, const void* mu) { s->Unlock(mu); }

void MutexReset(Scheduler* s, const void* mu) { s->ResetLock(mu); }

int SpawnThread(Scheduler* s, std::function<void()> fn) {
  return s->Spawn(std::move(fn));
}

void JoinThread(Scheduler* s, int model_id) { s->Join(model_id); }

namespace {

std::string EncodeToken(const char* name, std::size_t max_store_history,
                        const std::vector<Decision>& trace) {
  std::string out(kTokenMagic);
  out += ':';
  out += name;
  out += ":h";
  out += std::to_string(max_store_history);
  out += ':';
  if (trace.empty()) {
    out += '-';
  } else {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (i > 0) out += '.';
      AppendHex(&out, trace[i].choice);
    }
  }
  return out;
}

bool DecodeToken(const std::string& token, std::string* name,
                 std::uint64_t* max_store_history,
                 std::vector<Decision>* decisions, std::string* error) {
  const auto fail = [&](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  const std::size_t p1 = token.find(':');
  if (p1 == std::string::npos || token.substr(0, p1) != kTokenMagic) {
    return fail("bad magic (expected FWSCHED1)");
  }
  const std::size_t p2 = token.find(':', p1 + 1);
  if (p2 == std::string::npos) return fail("missing fixture name");
  const std::string fixture = token.substr(p1 + 1, p2 - p1 - 1);
  if (fixture.empty() || !ValidFixtureName(fixture.c_str())) {
    return fail("invalid fixture name");
  }
  const std::size_t p3 = token.find(':', p2 + 1);
  if (p3 == std::string::npos || token[p2 + 1] != 'h') {
    return fail("missing history field");
  }
  std::uint64_t hist = 0;
  if (!ParseDecimal(token, p2 + 2, p3, &hist) || hist == 0) {
    return fail("invalid history field");
  }
  std::vector<Decision> parsed;
  const std::string body = token.substr(p3 + 1);
  if (body.empty()) return fail("missing decision list");
  if (body != "-") {
    std::size_t begin = 0;
    for (;;) {
      std::size_t end = body.find('.', begin);
      const std::size_t stop = end == std::string::npos ? body.size() : end;
      std::uint64_t choice = 0;
      if (!ParseHex(body, begin, stop, &choice)) {
        return fail("invalid decision list");
      }
      parsed.push_back(Decision{choice, 0});
      if (end == std::string::npos) break;
      begin = end + 1;
    }
  }
  if (name != nullptr) *name = fixture;
  if (max_store_history != nullptr) *max_store_history = hist;
  if (decisions != nullptr) *decisions = std::move(parsed);
  return true;
}

}  // namespace

/// Shared driver: runs schedules until failure / exhaustion / budget.
/// With token_replay, `seed_prefix` is the token's decision list and
/// exactly one schedule runs.
ExploreResult RunExploration(const ExploreOptions& options, bool token_replay,
                             std::vector<Decision> seed_prefix,
                             const std::function<void()>& body) {
  FWDECAY_CHECK_MSG(Current() == nullptr,
                    "sched: explorations do not nest");
  FWDECAY_CHECK_MSG(ValidFixtureName(options.name),
                    "sched: fixture name must match [a-z0-9_-]+");
  FWDECAY_CHECK(options.max_store_history > 0);
  Scheduler sched(options, token_replay);
  ExploreResult result;
  std::vector<Decision> prefix = std::move(seed_prefix);
  for (;;) {
    sched.PrepareRun(prefix);
    sched.RunBody(body);
    ++result.schedules_run;
    if (sched.pruned()) ++result.schedules_pruned;
    if (sched.failed()) {
      result.failed = true;
      result.failure = sched.failure();
      result.replay_token =
          EncodeToken(options.name, options.max_store_history, sched.trace());
      break;
    }
    if (token_replay) break;
    if (result.schedules_run >= options.max_schedules) break;
    if (options.mode == Mode::kExhaustive) {
      // Depth-first backtrack: bump the deepest decision that still has
      // an untried alternative and drop everything after it.
      prefix = sched.trace();
      while (!prefix.empty() &&
             prefix.back().choice + 1 >= prefix.back().arity) {
        prefix.pop_back();
      }
      if (prefix.empty()) {
        result.exhausted = true;
        break;
      }
      ++prefix.back().choice;
    } else {
      prefix.clear();  // fresh draw from the continuing random stream
    }
  }
  return result;
}

}  // namespace internal

ExploreResult Explore(const ExploreOptions& options,
                      const std::function<void()>& body) {
  return internal::RunExploration(options, /*token_replay=*/false, {}, body);
}

ExploreResult Replay(const std::string& token, const char* name,
                     const std::function<void()>& body) {
  std::string fixture;
  std::uint64_t hist = 0;
  std::vector<internal::Decision> decisions;
  std::string error;
  FWDECAY_CHECK_MSG(
      internal::DecodeToken(token, &fixture, &hist, &decisions, &error),
      "sched::Replay: malformed token");
  FWDECAY_CHECK_MSG(fixture == name,
                    "sched::Replay: token names a different fixture");
  ExploreOptions options;
  options.name = name;
  options.max_store_history = static_cast<std::size_t>(hist);
  return internal::RunExploration(options, /*token_replay=*/true,
                                  std::move(decisions), body);
}

bool ParseReplayToken(const std::string& token, std::string* fixture_name,
                      std::string* error) {
  return internal::DecodeToken(token, fixture_name, nullptr, nullptr, error);
}

void Fail(const std::string& message) {
  internal::Scheduler* s = internal::Current();
  FWDECAY_CHECK_MSG(s != nullptr,
                    "sched::Fail outside an active exploration");
  s->RecordFailure(message);
}

void Expect(bool ok, const char* message) {
  if (ok) return;
  internal::Scheduler* s = internal::Current();
  FWDECAY_CHECK_MSG(s != nullptr, message);
  s->RecordFailure(message);
}

bool Failed() {
  internal::Scheduler* s = internal::Current();
  return s != nullptr && s->HasFailedUnlocked();
}

bool InScheduledRegion() { return internal::Current() != nullptr; }

void Yield() {
  if (internal::Scheduler* s = internal::Current()) s->SchedulePoint();
}

// ---- sched::Thread ---------------------------------------------------

Thread::Thread(std::function<void()> fn) {
  if (internal::Scheduler* s = internal::Current()) {
    sched_ = s;
    model_id_ = internal::SpawnThread(s, std::move(fn));
    return;
  }
  real_ = std::thread(std::move(fn));
}

Thread::~Thread() {
  FWDECAY_CHECK_MSG(!Joinable(), "sched::Thread destroyed without Join()");
}

Thread::Thread(Thread&& other) noexcept
    : real_(std::move(other.real_)),
      sched_(other.sched_),
      model_id_(other.model_id_) {
  other.sched_ = nullptr;
  other.model_id_ = -1;
}

Thread& Thread::operator=(Thread&& other) noexcept {
  FWDECAY_CHECK_MSG(!Joinable(), "sched::Thread assigned over without Join()");
  real_ = std::move(other.real_);
  sched_ = other.sched_;
  model_id_ = other.model_id_;
  other.sched_ = nullptr;
  other.model_id_ = -1;
  return *this;
}

void Thread::Join() {
  if (sched_ != nullptr) {
    FWDECAY_CHECK_MSG(internal::Current() == sched_,
                      "sched::Thread joined outside its exploration");
    internal::JoinThread(sched_, model_id_);
    sched_ = nullptr;
    model_id_ = -1;
    return;
  }
  FWDECAY_CHECK_MSG(real_.joinable(), "sched::Thread joined twice");
  real_.join();
}

bool Thread::Joinable() const { return model_id_ >= 0 || real_.joinable(); }

}  // namespace fwdecay::sched
