#ifndef FWDECAY_UTIL_SCHED_H_
#define FWDECAY_UTIL_SCHED_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>

#include "util/check.h"

// fwdecay-verify, prong 1: a deterministic schedule-exploring model
// checker in the CHESS / Relacy tradition (DESIGN.md §10).
//
// TSan can only flag races on the interleavings a test happens to
// execute; clang's thread-safety analysis proves lock discipline but
// says nothing about atomics or about *which* interleavings are
// reachable. This layer closes the gap: inside sched::Explore(), every
// model-aware synchronization operation (ModelMutex lock/unlock,
// ModelAtomic load/store/RMW, thread spawn/join) is a *scheduling
// point* handled by a cooperative scheduler that runs exactly one
// thread at a time on a virtual clock and treats "which thread runs
// next" — and, for weakly-ordered loads, "which store does this load
// observe" — as an enumerable decision:
//
//   * bounded exhaustive mode walks the decision tree depth-first
//     (choice 0 = keep running the current thread / read the newest
//     store, so the first schedule is the naive sequential one);
//   * random mode draws decisions from a seeded xoshiro stream, so a
//     CI failure is reproducible from (seed, iteration) alone.
//
// Weak-memory simulation: each atomic location keeps a bounded history
// of stores tagged with vector clocks. A relaxed load may observe any
// store newer than the newest one that happens-before the loading
// thread (per-thread coherence is enforced; seq_cst loads are
// conservatively pinned to the newest store). Acquire loads join the
// release clock of the store they observe; relaxed stores publish no
// clock — matching C++20's removal of non-RMW same-thread release
// sequence extension — so a torn publish behind a relaxed flag is
// actually observable here even though TSan's happens-before engine
// would need the unlucky schedule to fire. Limits vs real hardware are
// documented in DESIGN.md §10: no speculation into dependent loads, no
// partial SC fences, seq_cst modeled stronger than the standard.
//
// Failing schedules record their decision prefix and print a replay
// token (`FWSCHED1:<name>:h<history>:<c0.c1...>`); sched::Replay()
// re-executes exactly that interleaving. After a failure (an
// Expect() violation or a detected deadlock) the run switches to a
// permissive free-running mode so every thread can unwind without
// exceptions — library code stays exception-free.
//
// Build integration: the model types below are ALWAYS compiled, so
// tests can explore fixtures in any build. The FWDECAY_SCHED compile
// definition additionally reroutes the library's own primitives —
// fwdecay::Mutex (util/thread_annotations.h) and the sched::Atomic<T>
// alias adopted by util/metrics.h and the sharded engine — through the
// model, so Explore() can drive real library paths (the DecayedRate
// delta-flush publish, ShardedQueryExecution's router -> shard ->
// Finish() merge) through interleavings and reorderings TSan never
// executes. With FWDECAY_SCHED off (the default), sched::Atomic is a
// zero-cost transparent std::atomic wrapper and fwdecay::Mutex is a
// plain std::mutex: the hot path is byte-for-byte unaffected.
//
// Outside an active Explore() region every model type falls back to
// the real primitive (std::mutex / std::atomic), so an FWDECAY_SCHED
// build still runs the ordinary test suite correctly.

namespace fwdecay::sched {

/// Upper bound on concurrently live model threads per exploration
/// (including the exploration body itself, which runs as thread 0).
inline constexpr std::size_t kMaxThreads = 8;

enum class Mode {
  kExhaustive,  ///< depth-first over the decision tree, up to the budget
  kRandom,      ///< seeded random walks, `max_schedules` iterations
};

struct ExploreOptions {
  /// Token prefix naming the fixture; [a-z0-9_-]+ (checked). A replay
  /// token only replays against the fixture of the same name.
  const char* name = "sched";
  Mode mode = Mode::kExhaustive;
  /// Schedule budget: exhaustive mode stops early (exhausted=false)
  /// when the tree is larger; random mode runs exactly this many.
  std::uint64_t max_schedules = 10000;
  /// Per-schedule step bound. A run that exceeds it (e.g. an unfair
  /// schedule starving a spin loop) is abandoned as "pruned", not
  /// failed, and exploration continues past it.
  std::size_t max_steps = 200000;
  /// Seed for random mode (and for nothing else: exhaustive
  /// exploration is deterministic by construction).
  std::uint64_t seed = 0x5eedULL;
  /// Visible-store window per atomic location: a load may observe at
  /// most this many trailing stores. Bounds the branching factor of
  /// weak-memory simulation; part of the replay token.
  std::size_t max_store_history = 4;
};

struct ExploreResult {
  std::uint64_t schedules_run = 0;
  /// Runs abandoned at max_steps (their subtrees are still expanded).
  std::uint64_t schedules_pruned = 0;
  bool failed = false;
  /// Exhaustive mode only: the full decision tree fit in the budget.
  bool exhausted = false;
  /// First failure: Expect() message or deadlock report.
  std::string failure;
  /// Deterministically reproduces the failing schedule via Replay().
  std::string replay_token;
};

/// Runs `body` under the scheduler once per schedule until the decision
/// tree is exhausted, the budget is spent, or a schedule fails.
/// `body` executes as model thread 0; sched::Thread instances it spawns
/// become model threads. Explorations do not nest.
ExploreResult Explore(const ExploreOptions& options,
                      const std::function<void()>& body);

/// Re-executes exactly one schedule from a replay token. `name` must
/// match the token's fixture name (FWDECAY_CHECK). The returned result
/// has schedules_run == 1 and failed/failure reflecting that schedule.
ExploreResult Replay(const std::string& token, const char* name,
                     const std::function<void()>& body);

/// Validates a token's syntax without running anything. Returns true
/// and fills *fixture_name on success; false with *error otherwise.
bool ParseReplayToken(const std::string& token, std::string* fixture_name,
                      std::string* error);

/// Records a model-level failure for the current schedule (first one
/// wins) and switches the run to permissive unwinding. Outside an
/// active exploration this is a fatal FWDECAY_CHECK.
void Fail(const std::string& message);

/// `if (!ok) Fail(message)` — the fixture-side assertion. Unlike
/// FWDECAY_CHECK it does not abort the process: the explorer needs to
/// survive the failing schedule to print its replay token.
void Expect(bool ok, const char* message);

/// True when the current schedule has already failed (fixtures can use
/// this to skip follow-on checks that are meaningless after failure).
bool Failed();

/// True while the calling thread is a model thread inside Explore().
bool InScheduledRegion();

/// Explicit scheduling point (no memory effect).
void Yield();

namespace internal {

class Scheduler;

/// The active scheduler for the calling thread, or nullptr when the
/// thread is not a registered model thread of a live exploration.
Scheduler* Current();

using RmwFn = std::uint64_t (*)(std::uint64_t old_bits,
                                std::uint64_t operand_bits);

// Type-erased model operations (implemented in sched.cc). `init_bits`
// seeds the location's store history on first touch within a run, so
// atomics that outlive one schedule (e.g. process-wide metrics
// counters) keep their real value across runs.
std::uint64_t AtomicLoad(Scheduler* s, const void* loc,
                         std::uint64_t init_bits, std::memory_order order);
void AtomicStore(Scheduler* s, const void* loc, std::uint64_t init_bits,
                 std::uint64_t bits, std::memory_order order);
std::uint64_t AtomicRmw(Scheduler* s, const void* loc,
                        std::uint64_t init_bits, RmwFn fn,
                        std::uint64_t operand_bits, std::memory_order order);
bool AtomicCas(Scheduler* s, const void* loc, std::uint64_t init_bits,
               std::uint64_t expected_bits, std::uint64_t desired_bits,
               std::memory_order order, std::uint64_t* actual_bits);
/// Forgets a location's model state (constructor/destructor hook, so a
/// reused address never inherits a dead object's store history).
void AtomicReset(Scheduler* s, const void* loc);

void MutexLock(Scheduler* s, const void* mu);
void MutexUnlock(Scheduler* s, const void* mu);
void MutexReset(Scheduler* s, const void* mu);

int SpawnThread(Scheduler* s, std::function<void()> fn);
void JoinThread(Scheduler* s, int model_id);

/// Round-trips values through the type-erased 64-bit model slots.
template <typename T>
struct Bits {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "sched::ModelAtomic supports trivially copyable types "
                "of at most 8 bytes");
  static std::uint64_t Encode(T v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(T));
    return b;
  }
  static T Decode(std::uint64_t b) {
    T v;
    std::memcpy(&v, &b, sizeof(T));
    return v;
  }
};

}  // namespace internal

/// std::atomic<T> stand-in that participates in schedule exploration.
///
/// Inside an active Explore() region, every operation is a scheduling
/// point against the model (store histories, vector clocks); outside,
/// operations go straight to the underlying std::atomic with the
/// requested ordering. The underlying atomic mirrors the newest
/// modification-order value at all times, which is what seeds the
/// model on the first touch of each run.
template <typename T>
class ModelAtomic {
 public:
  ModelAtomic() noexcept : ModelAtomic(T{}) {}
  ModelAtomic(T v) noexcept : real_(v) {  // NOLINT(google-explicit-constructor)
    if (internal::Scheduler* s = internal::Current()) {
      internal::AtomicReset(s, this);
    }
  }
  ~ModelAtomic() {
    if (internal::Scheduler* s = internal::Current()) {
      internal::AtomicReset(s, this);
    }
  }

  ModelAtomic(const ModelAtomic&) = delete;
  ModelAtomic& operator=(const ModelAtomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    if (internal::Scheduler* s = internal::Current()) {
      return internal::Bits<T>::Decode(
          internal::AtomicLoad(s, this, MirrorBits(), order));
    }
    return real_.load(order);
  }

  void store(T v, std::memory_order order = std::memory_order_seq_cst) {
    if (internal::Scheduler* s = internal::Current()) {
      internal::AtomicStore(s, this, MirrorBits(),
                            internal::Bits<T>::Encode(v), order);
      // Mirror maintenance is race-free: this thread keeps the
      // scheduler grant until its own next scheduling point.
      // fwdecay: relaxed-ok(model mirror; ordering is provided by the model itself)
      real_.store(v, std::memory_order_relaxed);
      return;
    }
    real_.store(v, order);
  }

  T exchange(T v, std::memory_order order = std::memory_order_seq_cst) {
    if (internal::Scheduler* s = internal::Current()) {
      const std::uint64_t old = internal::AtomicRmw(
          s, this, MirrorBits(), &ReplaceFn, internal::Bits<T>::Encode(v),
          order);
      // fwdecay: relaxed-ok(model mirror; ordering is provided by the model itself)
      real_.store(v, std::memory_order_relaxed);
      return internal::Bits<T>::Decode(old);
    }
    return real_.exchange(v, order);
  }

  T fetch_add(T n, std::memory_order order = std::memory_order_seq_cst) {
    if (internal::Scheduler* s = internal::Current()) {
      const std::uint64_t old = internal::AtomicRmw(
          s, this, MirrorBits(), &AddFn, internal::Bits<T>::Encode(n), order);
      const T old_v = internal::Bits<T>::Decode(old);
      // fwdecay: relaxed-ok(model mirror; ordering is provided by the model itself)
      real_.store(static_cast<T>(old_v + n), std::memory_order_relaxed);
      return old_v;
    }
    return real_.fetch_add(n, order);
  }

  T fetch_sub(T n, std::memory_order order = std::memory_order_seq_cst) {
    if (internal::Scheduler* s = internal::Current()) {
      const std::uint64_t old = internal::AtomicRmw(
          s, this, MirrorBits(), &SubFn, internal::Bits<T>::Encode(n), order);
      const T old_v = internal::Bits<T>::Decode(old);
      // fwdecay: relaxed-ok(model mirror; ordering is provided by the model itself)
      real_.store(static_cast<T>(old_v - n), std::memory_order_relaxed);
      return old_v;
    }
    return real_.fetch_sub(n, order);
  }

  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    if (internal::Scheduler* s = internal::Current()) {
      std::uint64_t actual = 0;
      const bool ok = internal::AtomicCas(
          s, this, MirrorBits(), internal::Bits<T>::Encode(expected),
          internal::Bits<T>::Encode(desired), order, &actual);
      if (ok) {
        // fwdecay: relaxed-ok(model mirror; ordering is provided by the model itself)
        real_.store(desired, std::memory_order_relaxed);
      } else {
        expected = internal::Bits<T>::Decode(actual);
      }
      return ok;
    }
    return real_.compare_exchange_strong(expected, desired, order);
  }

  /// Modeled with strong semantics: the model has no spurious failures
  /// (a schedule where the CAS fails for a real reason exists anyway).
  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, order);
  }

  operator T() const { return load(); }  // NOLINT(google-explicit-constructor)

 private:
  static std::uint64_t ReplaceFn(std::uint64_t, std::uint64_t operand) {
    return operand;
  }
  static std::uint64_t AddFn(std::uint64_t old, std::uint64_t operand) {
    return internal::Bits<T>::Encode(static_cast<T>(
        internal::Bits<T>::Decode(old) + internal::Bits<T>::Decode(operand)));
  }
  static std::uint64_t SubFn(std::uint64_t old, std::uint64_t operand) {
    return internal::Bits<T>::Encode(static_cast<T>(
        internal::Bits<T>::Decode(old) - internal::Bits<T>::Decode(operand)));
  }
  std::uint64_t MirrorBits() const {
    // fwdecay: relaxed-ok(model mirror seed read; the model layer orders accesses)
    return internal::Bits<T>::Encode(real_.load(std::memory_order_relaxed));
  }

  std::atomic<T> real_;
};

/// Transparent std::atomic<T> wrapper with the same member surface as
/// ModelAtomic. The default (FWDECAY_SCHED off) meaning of
/// sched::Atomic: every member is a one-line inline forward, so
/// adopting the alias costs nothing on the hot path.
template <typename T>
class PlainAtomic {
 public:
  PlainAtomic() noexcept = default;
  constexpr PlainAtomic(T v) noexcept : real_(v) {}  // NOLINT(google-explicit-constructor)

  PlainAtomic(const PlainAtomic&) = delete;
  PlainAtomic& operator=(const PlainAtomic&) = delete;

  T load(std::memory_order order = std::memory_order_seq_cst) const {
    return real_.load(order);
  }
  void store(T v, std::memory_order order = std::memory_order_seq_cst) {
    real_.store(v, order);
  }
  T exchange(T v, std::memory_order order = std::memory_order_seq_cst) {
    return real_.exchange(v, order);
  }
  T fetch_add(T n, std::memory_order order = std::memory_order_seq_cst) {
    return real_.fetch_add(n, order);
  }
  T fetch_sub(T n, std::memory_order order = std::memory_order_seq_cst) {
    return real_.fetch_sub(n, order);
  }
  bool compare_exchange_strong(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    return real_.compare_exchange_strong(expected, desired, order);
  }
  bool compare_exchange_weak(
      T& expected, T desired,
      std::memory_order order = std::memory_order_seq_cst) {
    return real_.compare_exchange_weak(expected, desired, order);
  }
  operator T() const { return load(); }  // NOLINT(google-explicit-constructor)

 private:
  std::atomic<T> real_;
};

/// The alias library code adopts (util/metrics.h, dsms/engine.h): a
/// plain atomic by default, the schedule-explored model under
/// -DFWDECAY_SCHED=ON.
#if defined(FWDECAY_SCHED)
template <typename T>
using Atomic = ModelAtomic<T>;
#else
template <typename T>
using Atomic = PlainAtomic<T>;
#endif

/// Mutex that participates in schedule exploration: inside Explore()
/// the lock is virtual (owner + waiter state in the scheduler, so a
/// lock-inversion deadlock is *detected and reported* instead of
/// hanging the test binary); outside it degrades to std::mutex.
/// fwdecay::Mutex wraps this under FWDECAY_SCHED.
class ModelMutex {
 public:
  ModelMutex() = default;
  ~ModelMutex() {
    if (internal::Scheduler* s = internal::Current()) {
      internal::MutexReset(s, this);
    }
  }

  ModelMutex(const ModelMutex&) = delete;
  ModelMutex& operator=(const ModelMutex&) = delete;

  void Lock() {
    if (internal::Scheduler* s = internal::Current()) {
      internal::MutexLock(s, this);
      return;
    }
    real_.lock();
  }
  void Unlock() {
    if (internal::Scheduler* s = internal::Current()) {
      internal::MutexUnlock(s, this);
      return;
    }
    real_.unlock();
  }

 private:
  std::mutex real_;
};

/// RAII guard over ModelMutex (for fixtures; library code uses the
/// annotated fwdecay::MutexLock).
class ModelMutexLock {
 public:
  explicit ModelMutexLock(ModelMutex& mu) : mu_(mu) { mu_.Lock(); }
  ~ModelMutexLock() { mu_.Unlock(); }

  ModelMutexLock(const ModelMutexLock&) = delete;
  ModelMutexLock& operator=(const ModelMutexLock&) = delete;

 private:
  ModelMutex& mu_;
};

/// std::thread stand-in. Inside Explore() the function runs as a model
/// thread under the scheduler; outside it is a plain std::thread. Must
/// be Join()ed before destruction, like std::thread.
class Thread {
 public:
  Thread() = default;
  explicit Thread(std::function<void()> fn);
  ~Thread();

  Thread(Thread&& other) noexcept;
  Thread& operator=(Thread&& other) noexcept;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  void Join();
  bool Joinable() const;

 private:
  std::thread real_;                          // fallback path only
  internal::Scheduler* sched_ = nullptr;      // model path
  int model_id_ = -1;
};

}  // namespace fwdecay::sched

#endif  // FWDECAY_UTIL_SCHED_H_
