#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace fwdecay {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  FWDECAY_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  FWDECAY_CHECK_MSG(row.size() == header_.size(),
                    "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(widths[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  for (std::size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace fwdecay
