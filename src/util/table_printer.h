#ifndef FWDECAY_UTIL_TABLE_PRINTER_H_
#define FWDECAY_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace fwdecay {

/// Renders aligned plain-text tables, used by the benchmark harness to
/// print the rows/series corresponding to each figure in the paper.
///
/// Usage:
///   TablePrinter t({"rate (pkt/s)", "undecayed", "fwd poly", "fwd exp"});
///   t.AddRow({"100000", "31.2", "44.0", "47.9"});
///   t.Print(stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats a double with `precision` decimal places.
  static std::string Fmt(double value, int precision = 2);

  /// Writes the table with a separator line under the header.
  void Print(std::FILE* out) const;

  /// Writes the table as CSV (for plotting scripts).
  void PrintCsv(std::FILE* out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fwdecay

#endif  // FWDECAY_UTIL_TABLE_PRINTER_H_
