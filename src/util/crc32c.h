#ifndef FWDECAY_UTIL_CRC32C_H_
#define FWDECAY_UTIL_CRC32C_H_

#include <array>
#include <cstddef>
#include <cstdint>

// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
// the checksum framing every durable artifact in the repo carries:
// FWDTRC02 packet traces and FWDSNAP1 engine snapshots. Chosen over
// plain CRC32 for its better error-detection spectrum on short frames
// (and hardware support elsewhere, should a SSE4.2 fast path ever be
// warranted); this implementation is portable table-driven software.

namespace fwdecay {

namespace internal {

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable = [] {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82f63b78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}();

}  // namespace internal

/// Extends a running CRC32C with `len` bytes. Start (and finish) with
/// `crc = 0`; the pre/post inversion is handled internally, so
/// Crc32c(b)  ==  ExtendCrc32c(ExtendCrc32c(0, b1), b2) for b = b1||b2.
inline std::uint32_t ExtendCrc32c(std::uint32_t crc, const void* data,
                                  std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  crc ^= 0xffffffffu;
  for (std::size_t i = 0; i < len; ++i) {
    crc = internal::kCrc32cTable[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

/// CRC32C of a single buffer. Crc32c("123456789") == 0xe3069283.
inline std::uint32_t Crc32c(const void* data, std::size_t len) {
  return ExtendCrc32c(0, data, len);
}

}  // namespace fwdecay

#endif  // FWDECAY_UTIL_CRC32C_H_
