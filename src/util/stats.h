#ifndef FWDECAY_UTIL_STATS_H_
#define FWDECAY_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace fwdecay {

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Used by the benchmark harness to summarize per-tuple timings and by
/// tests to validate sampling distributions without storing all samples.
class RunningStats {
 public:
  RunningStats() = default;

  /// Folds one observation into the summary.
  void Add(double x);

  /// Merges another summary (parallel Welford / Chan et al.).
  void Merge(const RunningStats& other);

  /// Resets to the empty state.
  void Reset() { *this = RunningStats(); }

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the p-quantile (0 <= p <= 1) of `values` by sorting a copy.
/// Intended for small benchmark result vectors, not hot paths.
double Percentile(std::vector<double> values, double p);

/// Pearson chi-squared statistic for observed vs expected counts.
/// Used by property tests on samplers. Vectors must be the same size.
double ChiSquaredStatistic(const std::vector<double>& observed,
                           const std::vector<double>& expected);

}  // namespace fwdecay

#endif  // FWDECAY_UTIL_STATS_H_
