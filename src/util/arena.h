#ifndef FWDECAY_UTIL_ARENA_H_
#define FWDECAY_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "util/check.h"

// Chunked bump allocator for per-window group state (DESIGN.md §13.3).
//
// The engine's group tables allocate fixed-size Group shells out of an
// arena instead of the general heap: admission is a pointer bump,
// locality follows allocation order, and window turnover recycles the
// shells without touching malloc. The arena never frees individual
// objects — callers with non-trivially-destructible payloads (the group
// tables' shells hold std::vectors) must run destructors themselves
// before Reset() or destruction.

namespace fwdecay::util {

class Arena {
 public:
  /// `chunk_bytes` is the granularity of growth; oversized allocations
  /// get a dedicated chunk of exactly their size.
  explicit Arena(std::size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes) {
    FWDECAY_CHECK_MSG(chunk_bytes > 0, "arena chunk size must be positive");
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Never returns nullptr; lifetime ends at Reset() or destruction.
  void* Allocate(std::size_t bytes, std::size_t align) {
    FWDECAY_CHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                      "arena alignment must be a power of two");
    if (bytes == 0) bytes = 1;
    while (true) {
      if (current_ < chunks_.size()) {
        Chunk& c = chunks_[current_];
        const std::uintptr_t base =
            reinterpret_cast<std::uintptr_t>(c.data.get());
        // Align the absolute address, not the chunk offset: operator
        // new[] only guarantees max_align_t, so over-aligned requests
        // would otherwise land misaligned.
        const std::uintptr_t want =
            (base + offset_ + (align - 1)) &
            ~static_cast<std::uintptr_t>(align - 1);
        const std::size_t aligned = static_cast<std::size_t>(want - base);
        if (aligned + bytes <= c.size) {
          offset_ = aligned + bytes;
          bytes_allocated_ += bytes;
          return reinterpret_cast<void*>(want);
        }
        ++current_;
        offset_ = 0;
        continue;
      }
      AddChunk(bytes + align);
    }
  }

  /// Placement-constructs a T; the caller owns the destructor call.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* p = Allocate(sizeof(T), alignof(T));
    return ::new (p) T(static_cast<Args&&>(args)...);
  }

  /// Rewinds to empty, retaining every chunk for reuse. All outstanding
  /// objects must already be destroyed.
  void Reset() {
    current_ = 0;
    offset_ = 0;
    bytes_allocated_ = 0;
  }

  /// Live bytes handed out since the last Reset() (excludes padding).
  std::size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total capacity across retained chunks.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void AddChunk(std::size_t min_bytes) {
    const std::size_t size = min_bytes > chunk_bytes_ ? min_bytes
                                                      : chunk_bytes_;
    Chunk c;
    c.data = std::make_unique<std::byte[]>(size);
    c.size = size;
    chunks_.push_back(std::move(c));
    current_ = chunks_.size() - 1;
    offset_ = 0;
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;
  std::size_t offset_ = 0;
  std::size_t bytes_allocated_ = 0;
};

}  // namespace fwdecay::util

#endif  // FWDECAY_UTIL_ARENA_H_
