#include "util/fault_fs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/metrics.h"

namespace fwdecay {

namespace {

// I/O-layer metric families (DESIGN.md §9). Resolved once; every
// durable byte in the repo flows through this file, so these counters
// are a complete account of disk traffic.
struct FaultFsMetrics {
  metrics::Counter* writes;
  metrics::Counter* write_failures;
  metrics::Counter* write_bytes;
  metrics::Counter* reads;
  metrics::Counter* read_failures;
  metrics::Counter* faults_injected;
  metrics::Counter* eintr_retries;
  metrics::LatencyReservoir* fsync_ns;

  static const FaultFsMetrics& Get() {
    static const FaultFsMetrics m = Create();
    return m;
  }

 private:
  static FaultFsMetrics Create() {
    auto& reg = metrics::MetricsRegistry::Instance();
    FaultFsMetrics m{};
    m.writes = reg.GetCounter("fwdecay_faultfs_writes_total",
                              "Atomic file writes that completed.");
    m.write_failures =
        reg.GetCounter("fwdecay_faultfs_write_failures_total",
                       "Atomic file writes that failed (real or injected).");
    m.write_bytes = reg.GetCounter("fwdecay_faultfs_write_bytes_total",
                                   "Payload bytes of completed writes.");
    m.reads = reg.GetCounter("fwdecay_faultfs_reads_total",
                             "File reads that completed.");
    m.read_failures =
        reg.GetCounter("fwdecay_faultfs_read_failures_total",
                       "File reads that failed (real or injected).");
    m.faults_injected = reg.GetCounter("fwdecay_faultfs_faults_injected_total",
                                       "Armed fault plans that fired.");
    m.eintr_retries = reg.GetCounter("fwdecay_faultfs_eintr_retries_total",
                                     "write(2)/read(2) calls retried after "
                                     "EINTR.");
    m.fsync_ns = reg.GetReservoir(
        "fwdecay_faultfs_fsync_ns",
        "fsync(2) wall time on the temp file, ns (decayed reservoir).",
        /*k=*/128, /*alpha=*/0.015);
    return m;
  }
};

// Scope guards that account an I/O call on whichever of the many
// early-return paths it takes. `ok` defaults to failure; the success
// return flips it just before leaving.
struct ScopedWriteAccount {
  std::size_t bytes;
  bool ok = false;
  ~ScopedWriteAccount() {
    const FaultFsMetrics& m = FaultFsMetrics::Get();
    if (ok) {
      m.writes->Increment();
      m.write_bytes->Increment(bytes);
    } else {
      m.write_failures->Increment();
    }
  }
};

struct ScopedReadAccount {
  bool ok = false;
  ~ScopedReadAccount() {
    const FaultFsMetrics& m = FaultFsMetrics::Get();
    (ok ? m.reads : m.read_failures)->Increment();
  }
};

// RAII fd so every early return closes the descriptor.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool ok() const { return fd_ >= 0; }
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

// Writes `size` bytes, retrying on short writes/EINTR as write(2) needs.
bool WriteAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) {
        FaultFsMetrics::Get().eintr_retries->Increment();
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

// fsyncs the directory containing `path` so the rename itself is
// durable. Best-effort: some filesystems reject directory fsync.
void SyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, std::max<std::size_t>(slash, 1));
  Fd fd(::open(dir.c_str(), O_RDONLY | O_DIRECTORY));
  if (fd.ok()) ::fsync(fd.get());
}

}  // namespace

FaultFs& FaultFs::Instance() {
  // Leaked singleton, matching the AggRegistry convention.
  static FaultFs& fs = *new FaultFs();
  return fs;
}

void FaultFs::SetPlan(const FaultPlan& plan) {
  MutexLock lock(mu_);
  plan_ = plan;
}

void FaultFs::ClearPlan() {
  MutexLock lock(mu_);
  plan_ = FaultPlan{};
}

std::uint64_t FaultFs::faults_injected() const {
  MutexLock lock(mu_);
  return faults_injected_;
}

bool FaultFs::ConsumeFault(FaultPoint point, std::size_t* byte_limit) {
  MutexLock lock(mu_);
  if (plan_.point != point) return false;
  *byte_limit = plan_.byte_limit;
  plan_ = FaultPlan{};  // one-shot
  ++faults_injected_;
  FaultFsMetrics::Get().faults_injected->Increment();
  return true;
}

std::string FaultFs::TempPathFor(const std::string& path) {
  return path + ".tmp";
}

void FaultFs::RemoveStaleTemp(const std::string& path) {
  ::unlink(TempPathFor(path).c_str());
}

bool FaultFs::AtomicWriteFile(const std::string& path,
                              const std::vector<std::uint8_t>& bytes,
                              std::string* error) {
  return AtomicWriteFile(path, bytes.data(), bytes.size(), error);
}

bool FaultFs::AtomicWriteFile(const std::string& path,
                              const std::uint8_t* data, std::size_t size,
                              std::string* error) {
  const std::string tmp = TempPathFor(path);
  std::size_t limit = 0;
  ScopedWriteAccount account{size};

  if (ConsumeFault(FaultPoint::kOpenForWrite, &limit)) {
    *error = "injected open failure for '" + tmp + "'";
    return false;
  }
  Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  if (!fd.ok()) {
    *error = Errno("cannot open", tmp);
    return false;
  }

  if (ConsumeFault(FaultPoint::kTornWrite, &limit)) {
    // Model a power cut mid-write: the first `limit` bytes land, then
    // the process is gone. The torn temp file stays on disk — exactly
    // the residue recovery must cope with — and the target is intact.
    WriteAll(fd.get(), data, std::min(limit, size));
    fd.Close();
    *error = "injected torn write to '" + tmp + "' at byte " +
             std::to_string(std::min(limit, size));
    return false;
  }
  if (ConsumeFault(FaultPoint::kWriteError, &limit)) {
    WriteAll(fd.get(), data, std::min(limit, size));
    fd.Close();
    *error = "injected EIO writing '" + tmp + "'";
    return false;
  }
  if (!WriteAll(fd.get(), data, size)) {
    *error = Errno("short write to", tmp);
    return false;
  }

  if (ConsumeFault(FaultPoint::kFsyncError, &limit)) {
    fd.Close();
    *error = "injected fsync failure on '" + tmp + "'";
    return false;
  }
  {
    // Every fsync is sampled (no 1-in-N): the syscall is microseconds,
    // so one extra clock read disappears in the noise, and fsync tail
    // latency is the single most operationally interesting number here.
    metrics::ScopedTimerSample fsync_timer(
        FaultFsMetrics::Get().fsync_ns,
        metrics::MetricsRegistry::Instance().NowSeconds());
    if (::fsync(fd.get()) != 0) {
      *error = Errno("fsync failed on", tmp);
      return false;
    }
  }
  fd.Close();

  if (ConsumeFault(FaultPoint::kCrashBeforeRename, &limit)) {
    // Durable temp file exists, but the target was never replaced: a
    // restart sees the old file (clean) plus a stale temp.
    *error = "injected crash before renaming '" + tmp + "'";
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = Errno("rename failed for", tmp);
    return false;
  }
  SyncParentDir(path);
  if (ConsumeFault(FaultPoint::kCrashAfterRename, &limit)) {
    // The new file is durably in place; only the success report is
    // lost. Callers treating false as "crashed" must find the NEW
    // content clean on restart.
    *error = "injected crash after renaming to '" + path + "'";
    return false;
  }
  account.ok = true;
  return true;
}

bool FaultFs::AppendFile(const std::string& path, const std::uint8_t* data,
                         std::size_t size, std::string* error) {
  std::size_t limit = 0;
  ScopedWriteAccount account{size};

  if (ConsumeFault(FaultPoint::kOpenForWrite, &limit)) {
    *error = "injected open failure for '" + path + "'";
    return false;
  }
  const bool created = !FileExists(path);
  Fd fd(::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
               0644));
  if (!fd.ok()) {
    *error = Errno("cannot open for append", path);
    return false;
  }

  if (ConsumeFault(FaultPoint::kTornWrite, &limit)) {
    // Crash mid-append: a prefix of the record lands at the tail of the
    // journal. Readers must treat the torn tail as end-of-log, which is
    // what the record-level CRC framing guarantees.
    WriteAll(fd.get(), data, std::min(limit, size));
    fd.Close();
    *error = "injected torn append to '" + path + "' at byte " +
             std::to_string(std::min(limit, size));
    return false;
  }
  if (ConsumeFault(FaultPoint::kWriteError, &limit)) {
    WriteAll(fd.get(), data, std::min(limit, size));
    fd.Close();
    *error = "injected EIO appending to '" + path + "'";
    return false;
  }
  if (!WriteAll(fd.get(), data, size)) {
    *error = Errno("short append to", path);
    return false;
  }

  if (ConsumeFault(FaultPoint::kFsyncError, &limit)) {
    fd.Close();
    *error = "injected fsync failure on '" + path + "'";
    return false;
  }
  {
    metrics::ScopedTimerSample fsync_timer(
        FaultFsMetrics::Get().fsync_ns,
        metrics::MetricsRegistry::Instance().NowSeconds());
    if (::fsync(fd.get()) != 0) {
      *error = Errno("fsync failed on", path);
      return false;
    }
  }
  // A first append creates the file: its directory entry must be
  // durable too, or a crash could lose the whole journal segment.
  if (created) SyncParentDir(path);
  account.ok = true;
  return true;
}

bool FaultFs::RemoveFile(const std::string& path, std::string* error) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    *error = Errno("cannot remove", path);
    return false;
  }
  return true;
}

bool FaultFs::FileExists(const std::string& path) const {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

bool FaultFs::EnsureDir(const std::string& path, std::string* error) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return true;
  *error = Errno("cannot create directory", path);
  return false;
}

bool FaultFs::ReadFile(const std::string& path,
                       std::vector<std::uint8_t>* out, std::string* error,
                       std::size_t max_bytes) {
  std::size_t limit = 0;
  ScopedReadAccount account;
  if (ConsumeFault(FaultPoint::kOpenForRead, &limit)) {
    *error = "injected open failure for '" + path + "'";
    return false;
  }
  Fd fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
  if (!fd.ok()) {
    *error = Errno("cannot open", path);
    return false;
  }
  struct stat st {};
  if (::fstat(fd.get(), &st) != 0) {
    *error = Errno("cannot stat", path);
    return false;
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size > max_bytes) {
    *error = "'" + path + "' is " + std::to_string(size) +
             " bytes, over the " + std::to_string(max_bytes) + " byte limit";
    return false;
  }

  std::size_t want = static_cast<std::size_t>(size);
  bool injected_short = false;
  if (ConsumeFault(FaultPoint::kShortRead, &limit)) {
    want = std::min(want, limit);
    injected_short = true;
  }
  const bool injected_eio = ConsumeFault(FaultPoint::kReadError, &limit);

  out->assign(want, 0);
  std::size_t done = 0;
  while (done < want) {
    if (injected_eio && done >= limit) break;
    const ssize_t n =
        ::read(fd.get(), out->data() + done,
               injected_eio ? std::min(want - done, limit - done)
                            : want - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = Errno("read failed from", path);
      return false;
    }
    if (n == 0) break;  // EOF (file shrank under us)
    done += static_cast<std::size_t>(n);
  }
  if (injected_eio) {
    *error = "injected EIO reading '" + path + "'";
    return false;
  }
  out->resize(done);
  if (injected_short) {
    // The short read is delivered as-is: callers must detect the
    // truncation themselves (CRC / length framing), which is exactly
    // what the fault matrix verifies.
    account.ok = true;
    return true;
  }
  if (done != want) {
    *error = "short read from '" + path + "'";
    return false;
  }
  account.ok = true;
  return true;
}

}  // namespace fwdecay
