#ifndef FWDECAY_UTIL_BYTES_H_
#define FWDECAY_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

// Little byte-stream writer/reader pair used to serialize summaries for
// the distributed setting (Section VI-B): sites serialize their
// statically-weighted summaries, ship them, and the coordinator
// deserializes and merges. Encoding is little-endian, fixed-width, with
// length-prefixed containers; readers never over-read — any truncation
// or corruption surfaces as a failed Read* call, and callers return
// std::nullopt.

namespace fwdecay {

/// Appends fixed-width values to a growable byte buffer.
class ByteWriter {
 public:
  /// Pre-sizes the buffer when the caller can estimate the payload
  /// (a capacity hint, not a limit).
  void Reserve(std::size_t n) { buf_.reserve(n); }

  void WriteU8(std::uint8_t v) { buf_.push_back(v); }

  void WriteU32(std::uint32_t v) { WriteRaw(&v, sizeof(v)); }

  void WriteU64(std::uint64_t v) { WriteRaw(&v, sizeof(v)); }

  void WriteI64(std::int64_t v) { WriteRaw(&v, sizeof(v)); }

  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU32(static_cast<std::uint32_t>(s.size()));
    WriteRaw(s.data(), s.size());
  }

  /// Appends raw bytes verbatim (used to embed nested length-prefixed
  /// frames, e.g. per-aggregate state inside an engine snapshot).
  void WriteBytes(const void* data, std::size_t len) { WriteRaw(data, len); }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }

 private:
  void WriteRaw(const void* data, std::size_t len) {
    if (len == 0) return;
    const std::size_t old_size = buf_.size();
    buf_.resize(old_size + len);
    std::memcpy(buf_.data() + old_size, data, len);
  }

  std::vector<std::uint8_t> buf_;
};

/// Consumes fixed-width values from a byte span; all reads are bounds
/// checked and return false on exhaustion.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}
  // The reader borrows the buffer; binding it to a temporary
  // (`ByteReader r(Serialize(x))`) would leave it reading freed memory
  // as soon as the statement ends. Rejected at compile time.
  explicit ByteReader(std::vector<std::uint8_t>&&) = delete;

  bool ReadU8(std::uint8_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadU32(std::uint32_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadU64(std::uint64_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadI64(std::int64_t* out) { return ReadRaw(out, sizeof(*out)); }
  bool ReadDouble(double* out) { return ReadRaw(out, sizeof(*out)); }

  bool ReadString(std::string* out) {
    std::uint32_t len = 0;
    if (!ReadU32(&len) || len > Remaining()) return false;
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

  std::size_t Remaining() const { return size_ - pos_; }
  bool Exhausted() const { return pos_ == size_; }

  /// Borrows the next `len` bytes as a sub-reader and advances past
  /// them; false if fewer than `len` remain. Used for length-prefixed
  /// nested frames: the caller can verify the frame was fully consumed
  /// via the sub-reader's Exhausted().
  bool ReadSubReader(std::size_t len, ByteReader* out) {
    if (Remaining() < len) return false;
    *out = ByteReader(data_ + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  bool ReadRaw(void* out, std::size_t len) {
    if (Remaining() < len) return false;
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace fwdecay

#endif  // FWDECAY_UTIL_BYTES_H_
