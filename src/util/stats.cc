#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fwdecay {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> values, double p) {
  FWDECAY_CHECK(!values.empty());
  FWDECAY_CHECK(p >= 0.0 && p <= 1.0);
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double ChiSquaredStatistic(const std::vector<double>& observed,
                           const std::vector<double>& expected) {
  FWDECAY_CHECK(observed.size() == expected.size());
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    FWDECAY_CHECK_MSG(expected[i] > 0.0, "expected counts must be positive");
    const double d = observed[i] - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

}  // namespace fwdecay
