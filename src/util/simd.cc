#include "util/simd.h"

#include <cstdlib>

#include "util/hash.h"

#if defined(__x86_64__) && !defined(FWDECAY_SIMD_DISABLED)
#define FWDECAY_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && !defined(FWDECAY_SIMD_DISABLED)
#define FWDECAY_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace fwdecay::simd {

namespace {

struct DispatchState {
  Arch arch = Arch::kScalar;
  bool forced = false;
};

// Resolved once at static initialization — the only place the dispatch
// layer touches the environment, so the ingest hot path itself stays
// syscall-free (scripts/analyze.py rule hotpath-purity).
DispatchState Detect() {
  DispatchState s;
  const char* env = std::getenv("FWDECAY_FORCE_SCALAR");
  s.forced = env != nullptr && env[0] != '\0' &&
             !(env[0] == '0' && env[1] == '\0');
  if (s.forced) return s;
#if defined(FWDECAY_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) s.arch = Arch::kAvx2;
#elif defined(FWDECAY_SIMD_NEON)
  s.arch = Arch::kNeon;
#endif
  return s;
}

const DispatchState g_dispatch = Detect();

}  // namespace

Arch ActiveArch() { return g_dispatch.arch; }

const char* ActiveArchName() {
  switch (g_dispatch.arch) {
    case Arch::kAvx2: return "avx2";
    case Arch::kNeon: return "neon";
    case Arch::kScalar: return "scalar";
  }
  return "scalar";
}

bool ForcedScalar() { return g_dispatch.forced; }

// ---------------------------------------------------------------------------
// Scalar arms — the oracle. Every loop is one operation per element with
// no reassociation, so a vector arm matches it lane for lane.
// ---------------------------------------------------------------------------

namespace scalar {

std::size_t FilterByteEq(const std::uint8_t* bytes, std::uint8_t target,
                         std::size_t n, std::uint32_t* out_sel) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (bytes[i] == target) out_sel[k++] = static_cast<std::uint32_t>(i);
  }
  return k;
}

void GroupHashI64(const std::int64_t* keys, std::size_t n,
                  std::uint64_t seed, std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = HashCombine(seed,
                         HashU64(static_cast<std::uint64_t>(keys[i]), 1));
  }
}

void ShardIndexU64(const std::uint64_t* hashes, std::size_t n,
                   std::uint64_t seed, std::uint32_t num_shards,
                   std::uint32_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(HashU64(hashes[i], seed) % num_shards);
  }
}

void AddF64(const double* a, const double* b, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}
void SubF64(const double* a, const double* b, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}
void MulF64(const double* a, const double* b, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}
void DivF64(const double* a, const double* b, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] / b[i];
}
void AddI64(const std::int64_t* a, const std::int64_t* b, std::size_t n,
            std::int64_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}
void SubI64(const std::int64_t* a, const std::int64_t* b, std::size_t n,
            std::int64_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void CmpF64(CmpOp op, const double* a, const double* b, std::size_t n,
            std::int64_t* out01) {
  // Exactly dsms::Compare's double branch: ordered < and >, so kLe/kGe
  // are the *negated* strict compares (a NaN operand makes Compare
  // return 0, which satisfies <= and >=).
  switch (op) {
    case CmpOp::kEq:
      for (std::size_t i = 0; i < n; ++i) out01[i] = a[i] == b[i] ? 1 : 0;
      return;
    case CmpOp::kNe:
      for (std::size_t i = 0; i < n; ++i) out01[i] = a[i] == b[i] ? 0 : 1;
      return;
    case CmpOp::kLt:
      for (std::size_t i = 0; i < n; ++i) out01[i] = a[i] < b[i] ? 1 : 0;
      return;
    case CmpOp::kLe:
      for (std::size_t i = 0; i < n; ++i) out01[i] = a[i] > b[i] ? 0 : 1;
      return;
    case CmpOp::kGt:
      for (std::size_t i = 0; i < n; ++i) out01[i] = a[i] > b[i] ? 1 : 0;
      return;
    case CmpOp::kGe:
      for (std::size_t i = 0; i < n; ++i) out01[i] = a[i] < b[i] ? 0 : 1;
      return;
  }
}

void CmpI64(CmpOp op, const std::int64_t* a, const std::int64_t* b,
            std::size_t n, std::int64_t* out01) {
  switch (op) {
    case CmpOp::kEq:
      for (std::size_t i = 0; i < n; ++i) out01[i] = a[i] == b[i] ? 1 : 0;
      return;
    case CmpOp::kNe:
      for (std::size_t i = 0; i < n; ++i) out01[i] = a[i] != b[i] ? 1 : 0;
      return;
    case CmpOp::kLt:
      for (std::size_t i = 0; i < n; ++i) out01[i] = a[i] < b[i] ? 1 : 0;
      return;
    case CmpOp::kLe:
      for (std::size_t i = 0; i < n; ++i) out01[i] = a[i] <= b[i] ? 1 : 0;
      return;
    case CmpOp::kGt:
      for (std::size_t i = 0; i < n; ++i) out01[i] = a[i] > b[i] ? 1 : 0;
      return;
    case CmpOp::kGe:
      for (std::size_t i = 0; i < n; ++i) out01[i] = a[i] >= b[i] ? 1 : 0;
      return;
  }
}

std::size_t CompactNonZeroI64(const std::int64_t* vals, std::uint32_t* sel,
                              std::size_t n) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (vals[i] != 0) sel[k++] = sel[i];
  }
  return k;
}

std::size_t CompactNonZeroF64(const double* vals, std::uint32_t* sel,
                              std::size_t n) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (vals[i] != 0.0) sel[k++] = sel[i];  // NaN != 0.0 — NaN is truthy
  }
  return k;
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 arms (x86-64, runtime-gated on cpuid; compiled with a per-function
// target attribute so the rest of the library keeps the baseline ISA).
// ---------------------------------------------------------------------------

#if defined(FWDECAY_SIMD_X86)

namespace avx2 {

__attribute__((target("avx2"))) std::size_t FilterByteEq(
    const std::uint8_t* bytes, std::uint8_t target, std::size_t n,
    std::uint32_t* out_sel) {
  std::size_t k = 0;
  std::size_t i = 0;
  const __m256i t = _mm256_set1_epi8(static_cast<char>(target));
  for (; i + 32 <= n; i += 32) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bytes + i));
    std::uint32_t m = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, t)));
    while (m != 0) {
      out_sel[k++] = static_cast<std::uint32_t>(
          i + static_cast<std::uint32_t>(__builtin_ctz(m)));
      m &= m - 1;
    }
  }
  for (; i < n; ++i) {
    if (bytes[i] == target) out_sel[k++] = static_cast<std::uint32_t>(i);
  }
  return k;
}

// 64-bit lane-wise multiply from 32x32 partial products (the mullo_epi64
// instruction itself is AVX-512DQ).
__attribute__((target("avx2"))) inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(
      _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
      _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i Mix64V(__m256i x) {
  x = _mm256_add_epi64(
      x, _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL)));
  x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)),
            _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL)));
  x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)),
            _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL)));
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

__attribute__((target("avx2"))) void GroupHashI64(const std::int64_t* keys,
                                                  std::size_t n,
                                                  std::uint64_t seed,
                                                  std::uint64_t* out) {
  // h = seed ^ (Mix64(Mix64(k ^ C1)) + K): the HashU64(k, 1) inner mix
  // followed by HashCombine's outer mix, with the seed-dependent parts
  // folded into constants (see the scalar arm for the reference form).
  const std::uint64_t c1 =
      0xff51afd7ed558ccdULL + 0xc4ceb9fe1a85ec53ULL;  // HashU64 seed==1
  const std::uint64_t kadd =
      0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  const __m256i vc1 = _mm256_set1_epi64x(static_cast<long long>(c1));
  const __m256i vk = _mm256_set1_epi64x(static_cast<long long>(kadd));
  const __m256i vs = _mm256_set1_epi64x(static_cast<long long>(seed));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    x = Mix64V(Mix64V(_mm256_xor_si256(x, vc1)));
    x = _mm256_xor_si256(vs, _mm256_add_epi64(x, vk));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
  }
  if (i < n) scalar::GroupHashI64(keys + i, n - i, seed, out + i);
}

__attribute__((target("avx2"))) void ShardIndexU64(const std::uint64_t* hashes,
                                                   std::size_t n,
                                                   std::uint64_t seed,
                                                   std::uint32_t num_shards,
                                                   std::uint32_t* out) {
  // Only the power-of-two reduction vectorizes (modulo becomes a lane
  // mask); other shard counts keep the scalar 64-bit modulo, which has
  // no AVX2 instruction.
  if ((num_shards & (num_shards - 1)) != 0) {
    scalar::ShardIndexU64(hashes, n, seed, num_shards, out);
    return;
  }
  // HashU64(h, seed) = Mix64(h ^ (seed*K1 + K2)) with the seed part
  // folded into one constant, exactly as the scalar arm computes it.
  const std::uint64_t c =
      seed * 0xff51afd7ed558ccdULL + 0xc4ceb9fe1a85ec53ULL;
  const __m256i vc = _mm256_set1_epi64x(static_cast<long long>(c));
  const __m256i vmask =
      _mm256_set1_epi64x(static_cast<long long>(num_shards - 1));
  // Lane gather pattern packing the four 64-bit lanes' low dwords into
  // the lower 128 bits (the masked index always fits in 32 bits).
  const __m256i pack = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + i));
    x = _mm256_and_si256(Mix64V(_mm256_xor_si256(x, vc)), vmask);
    const __m256i packed = _mm256_permutevar8x32_epi32(x, pack);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm256_castsi256_si128(packed));
  }
  if (i < n) scalar::ShardIndexU64(hashes + i, n - i, seed, num_shards,
                                   out + i);
}

__attribute__((target("avx2"))) void AddF64(const double* a, const double* b,
                                            std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_add_pd(_mm256_loadu_pd(a + i),
                                   _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

__attribute__((target("avx2"))) void SubF64(const double* a, const double* b,
                                            std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_sub_pd(_mm256_loadu_pd(a + i),
                                   _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

__attribute__((target("avx2"))) void MulF64(const double* a, const double* b,
                                            std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                   _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

__attribute__((target("avx2"))) void DivF64(const double* a, const double* b,
                                            std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i,
                     _mm256_div_pd(_mm256_loadu_pd(a + i),
                                   _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] / b[i];
}

__attribute__((target("avx2"))) void AddI64(const std::int64_t* a,
                                            const std::int64_t* b,
                                            std::size_t n, std::int64_t* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_add_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

__attribute__((target("avx2"))) void SubI64(const std::int64_t* a,
                                            const std::int64_t* b,
                                            std::size_t n, std::int64_t* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(out + i),
        _mm256_sub_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i))));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

__attribute__((target("avx2"))) void CmpF64(CmpOp op, const double* a,
                                            const double* b, std::size_t n,
                                            std::int64_t* out01) {
  // Predicate choice mirrors the scalar oracle's NaN behaviour: ordered
  // for the strict compares and equality, unordered-negated for kLe/kGe
  // (== !(a > b) / !(a < b)) and kNe.
  const __m256i ones = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(a + i);
    const __m256d y = _mm256_loadu_pd(b + i);
    __m256d m = _mm256_setzero_pd();
    switch (op) {
      case CmpOp::kEq: m = _mm256_cmp_pd(x, y, _CMP_EQ_OQ); break;
      case CmpOp::kNe: m = _mm256_cmp_pd(x, y, _CMP_NEQ_UQ); break;
      case CmpOp::kLt: m = _mm256_cmp_pd(x, y, _CMP_LT_OQ); break;
      case CmpOp::kLe: m = _mm256_cmp_pd(x, y, _CMP_NGT_UQ); break;
      case CmpOp::kGt: m = _mm256_cmp_pd(x, y, _CMP_GT_OQ); break;
      case CmpOp::kGe: m = _mm256_cmp_pd(x, y, _CMP_NLT_UQ); break;
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out01 + i),
                        _mm256_and_si256(_mm256_castpd_si256(m), ones));
  }
  if (i < n) scalar::CmpF64(op, a + i, b + i, n - i, out01 + i);
}

__attribute__((target("avx2"))) void CmpI64(CmpOp op, const std::int64_t* a,
                                            const std::int64_t* b,
                                            std::size_t n,
                                            std::int64_t* out01) {
  const __m256i ones = _mm256_set1_epi64x(1);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i r = _mm256_setzero_si256();
    switch (op) {
      case CmpOp::kEq:
        r = _mm256_and_si256(_mm256_cmpeq_epi64(x, y), ones);
        break;
      case CmpOp::kNe:
        r = _mm256_andnot_si256(_mm256_cmpeq_epi64(x, y), ones);
        break;
      case CmpOp::kLt:
        r = _mm256_and_si256(_mm256_cmpgt_epi64(y, x), ones);
        break;
      case CmpOp::kLe:
        r = _mm256_andnot_si256(_mm256_cmpgt_epi64(x, y), ones);
        break;
      case CmpOp::kGt:
        r = _mm256_and_si256(_mm256_cmpgt_epi64(x, y), ones);
        break;
      case CmpOp::kGe:
        r = _mm256_andnot_si256(_mm256_cmpgt_epi64(y, x), ones);
        break;
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out01 + i), r);
  }
  if (i < n) scalar::CmpI64(op, a + i, b + i, n - i, out01 + i);
}

__attribute__((target("avx2"))) std::size_t CompactNonZeroI64(
    const std::int64_t* vals, std::uint32_t* sel, std::size_t n) {
  std::size_t k = 0;
  std::size_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    std::uint32_t m =
        static_cast<std::uint32_t>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(x, zero)))) ^ 0xFu;
    while (m != 0) {
      sel[k++] = sel[i + static_cast<std::uint32_t>(__builtin_ctz(m))];
      m &= m - 1;
    }
  }
  for (; i < n; ++i) {
    if (vals[i] != 0) sel[k++] = sel[i];
  }
  return k;
}

__attribute__((target("avx2"))) std::size_t CompactNonZeroF64(
    const double* vals, std::uint32_t* sel, std::size_t n) {
  std::size_t k = 0;
  std::size_t i = 0;
  const __m256d zero = _mm256_setzero_pd();
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(vals + i);
    // EQ_OQ is true only for ±0.0; NaN compares false, i.e. truthy —
    // exactly the scalar `v != 0.0` predicate, complemented.
    std::uint32_t m = static_cast<std::uint32_t>(_mm256_movemask_pd(
                          _mm256_cmp_pd(x, zero, _CMP_EQ_OQ))) ^ 0xFu;
    while (m != 0) {
      sel[k++] = sel[i + static_cast<std::uint32_t>(__builtin_ctz(m))];
      m &= m - 1;
    }
  }
  for (; i < n; ++i) {
    if (vals[i] != 0.0) sel[k++] = sel[i];
  }
  return k;
}

}  // namespace avx2

#endif  // FWDECAY_SIMD_X86

// ---------------------------------------------------------------------------
// NEON arms (aarch64 baseline — no runtime probe needed). Only the f64
// elementwise and compare kernels have native arms; the index-emitting
// and 64-bit-multiply kernels fall through to scalar (DESIGN.md §13.4
// records the full dispatch matrix).
// ---------------------------------------------------------------------------

#if defined(FWDECAY_SIMD_NEON)

namespace neon {

// Lane-wise complement of an all-ones/all-zeros compare mask (there is
// no 64-bit vmvn; the 32-bit form is equivalent on such masks).
inline uint64x2_t NotMask(uint64x2_t m) {
  return vreinterpretq_u64_u32(vmvnq_u32(vreinterpretq_u32_u64(m)));
}

void AddF64(const double* a, const double* b, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}
void SubF64(const double* a, const double* b, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vsubq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}
void MulF64(const double* a, const double* b, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}
void DivF64(const double* a, const double* b, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vdivq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] / b[i];
}

void CmpF64(CmpOp op, const double* a, const double* b, std::size_t n,
            std::int64_t* out01) {
  const uint64x2_t ones = vdupq_n_u64(1);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t x = vld1q_f64(a + i);
    const float64x2_t y = vld1q_f64(b + i);
    uint64x2_t m;
    switch (op) {
      case CmpOp::kEq: m = vceqq_f64(x, y); break;
      case CmpOp::kNe: m = NotMask(vceqq_f64(x, y)); break;
      case CmpOp::kLt: m = vcltq_f64(x, y); break;
      case CmpOp::kLe: m = NotMask(vcgtq_f64(x, y)); break;
      case CmpOp::kGt: m = vcgtq_f64(x, y); break;
      case CmpOp::kGe: m = NotMask(vcltq_f64(x, y)); break;
    }
    vst1q_s64(out01 + i, vreinterpretq_s64_u64(vandq_u64(m, ones)));
  }
  if (i < n) scalar::CmpF64(op, a + i, b + i, n - i, out01 + i);
}

}  // namespace neon

#endif  // FWDECAY_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatched entry points
// ---------------------------------------------------------------------------

std::size_t FilterByteEq(const std::uint8_t* bytes, std::uint8_t target,
                         std::size_t n, std::uint32_t* out_sel) {
#if defined(FWDECAY_SIMD_X86)
  if (g_dispatch.arch == Arch::kAvx2) {
    return avx2::FilterByteEq(bytes, target, n, out_sel);
  }
#endif
  return scalar::FilterByteEq(bytes, target, n, out_sel);
}

void GroupHashI64(const std::int64_t* keys, std::size_t n,
                  std::uint64_t seed, std::uint64_t* out) {
#if defined(FWDECAY_SIMD_X86)
  if (g_dispatch.arch == Arch::kAvx2) {
    avx2::GroupHashI64(keys, n, seed, out);
    return;
  }
#endif
  scalar::GroupHashI64(keys, n, seed, out);
}

void ShardIndexU64(const std::uint64_t* hashes, std::size_t n,
                   std::uint64_t seed, std::uint32_t num_shards,
                   std::uint32_t* out) {
#if defined(FWDECAY_SIMD_X86)
  if (g_dispatch.arch == Arch::kAvx2) {
    avx2::ShardIndexU64(hashes, n, seed, num_shards, out);
    return;
  }
#endif
  scalar::ShardIndexU64(hashes, n, seed, num_shards, out);
}

void AddF64(const double* a, const double* b, std::size_t n, double* out) {
#if defined(FWDECAY_SIMD_X86)
  if (g_dispatch.arch == Arch::kAvx2) return avx2::AddF64(a, b, n, out);
#elif defined(FWDECAY_SIMD_NEON)
  if (g_dispatch.arch == Arch::kNeon) return neon::AddF64(a, b, n, out);
#endif
  scalar::AddF64(a, b, n, out);
}

void SubF64(const double* a, const double* b, std::size_t n, double* out) {
#if defined(FWDECAY_SIMD_X86)
  if (g_dispatch.arch == Arch::kAvx2) return avx2::SubF64(a, b, n, out);
#elif defined(FWDECAY_SIMD_NEON)
  if (g_dispatch.arch == Arch::kNeon) return neon::SubF64(a, b, n, out);
#endif
  scalar::SubF64(a, b, n, out);
}

void MulF64(const double* a, const double* b, std::size_t n, double* out) {
#if defined(FWDECAY_SIMD_X86)
  if (g_dispatch.arch == Arch::kAvx2) return avx2::MulF64(a, b, n, out);
#elif defined(FWDECAY_SIMD_NEON)
  if (g_dispatch.arch == Arch::kNeon) return neon::MulF64(a, b, n, out);
#endif
  scalar::MulF64(a, b, n, out);
}

void DivF64(const double* a, const double* b, std::size_t n, double* out) {
#if defined(FWDECAY_SIMD_X86)
  if (g_dispatch.arch == Arch::kAvx2) return avx2::DivF64(a, b, n, out);
#elif defined(FWDECAY_SIMD_NEON)
  if (g_dispatch.arch == Arch::kNeon) return neon::DivF64(a, b, n, out);
#endif
  scalar::DivF64(a, b, n, out);
}

void AddI64(const std::int64_t* a, const std::int64_t* b, std::size_t n,
            std::int64_t* out) {
#if defined(FWDECAY_SIMD_X86)
  if (g_dispatch.arch == Arch::kAvx2) return avx2::AddI64(a, b, n, out);
#endif
  scalar::AddI64(a, b, n, out);
}

void SubI64(const std::int64_t* a, const std::int64_t* b, std::size_t n,
            std::int64_t* out) {
#if defined(FWDECAY_SIMD_X86)
  if (g_dispatch.arch == Arch::kAvx2) return avx2::SubI64(a, b, n, out);
#endif
  scalar::SubI64(a, b, n, out);
}

void CmpF64(CmpOp op, const double* a, const double* b, std::size_t n,
            std::int64_t* out01) {
#if defined(FWDECAY_SIMD_X86)
  if (g_dispatch.arch == Arch::kAvx2) return avx2::CmpF64(op, a, b, n, out01);
#elif defined(FWDECAY_SIMD_NEON)
  if (g_dispatch.arch == Arch::kNeon) return neon::CmpF64(op, a, b, n, out01);
#endif
  scalar::CmpF64(op, a, b, n, out01);
}

void CmpI64(CmpOp op, const std::int64_t* a, const std::int64_t* b,
            std::size_t n, std::int64_t* out01) {
#if defined(FWDECAY_SIMD_X86)
  if (g_dispatch.arch == Arch::kAvx2) return avx2::CmpI64(op, a, b, n, out01);
#endif
  scalar::CmpI64(op, a, b, n, out01);
}

std::size_t CompactNonZeroI64(const std::int64_t* vals, std::uint32_t* sel,
                              std::size_t n) {
#if defined(FWDECAY_SIMD_X86)
  if (g_dispatch.arch == Arch::kAvx2) {
    return avx2::CompactNonZeroI64(vals, sel, n);
  }
#endif
  return scalar::CompactNonZeroI64(vals, sel, n);
}

std::size_t CompactNonZeroF64(const double* vals, std::uint32_t* sel,
                              std::size_t n) {
#if defined(FWDECAY_SIMD_X86)
  if (g_dispatch.arch == Arch::kAvx2) {
    return avx2::CompactNonZeroF64(vals, sel, n);
  }
#endif
  return scalar::CompactNonZeroF64(vals, sel, n);
}

}  // namespace fwdecay::simd
