#ifndef FWDECAY_UTIL_TOP_K_HEAP_H_
#define FWDECAY_UTIL_TOP_K_HEAP_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/check.h"

namespace fwdecay {

/// Bounded min-heap keeping the k items with the largest scores.
///
/// The weighted reservoir (A-Res) and priority samplers maintain their
/// samples in one of these: Offer() is O(log k) and the heap root is the
/// threshold item (smallest retained score), exactly the quantity both
/// samplers need for admission tests and estimators.
template <typename T>
class TopKHeap {
 public:
  struct Entry {
    double score;
    T value;
  };

  explicit TopKHeap(std::size_t k) : k_(k) { FWDECAY_CHECK(k > 0); }

  /// Offers an item; returns true if it was admitted (possibly evicting
  /// the current minimum-score item).
  bool Offer(double score, T value) {
    if (entries_.size() < k_) {
      entries_.push_back(Entry{score, std::move(value)});
      std::push_heap(entries_.begin(), entries_.end(), GreaterScore);
      return true;
    }
    if (score <= entries_.front().score) return false;
    std::pop_heap(entries_.begin(), entries_.end(), GreaterScore);
    entries_.back() = Entry{score, std::move(value)};
    std::push_heap(entries_.begin(), entries_.end(), GreaterScore);
    return true;
  }

  /// True once k items have been admitted.
  bool Full() const { return entries_.size() == k_; }

  /// Smallest retained score; only valid when not empty.
  double MinScore() const {
    FWDECAY_CHECK(!entries_.empty());
    return entries_.front().score;
  }

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return k_; }
  bool empty() const { return entries_.empty(); }

  /// Unordered access to the retained entries.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Returns entries sorted by descending score (does not modify *this).
  std::vector<Entry> SortedByScoreDesc() const {
    std::vector<Entry> out = entries_;
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return a.score > b.score;
    });
    return out;
  }

  void Clear() { entries_.clear(); }

  /// Representation audit (DESIGN.md §7): the array must stay within
  /// capacity and keep the min-heap shape (the root is the admission
  /// threshold both samplers rely on), and no score may be NaN — NaN
  /// comparisons would silently corrupt the heap discipline long before
  /// any output diverges.
  void CheckInvariants() const {
    FWDECAY_CHECK_MSG(entries_.size() <= k_,
                      "TopKHeap holds more than k entries");
    FWDECAY_CHECK_MSG(
        std::is_heap(entries_.begin(), entries_.end(), GreaterScore),
        "TopKHeap min-heap property violated");
    for (const Entry& e : entries_) {
      FWDECAY_CHECK_MSG(!std::isnan(e.score), "TopKHeap entry score is NaN");
    }
  }

  /// Replaces the internal array verbatim (checkpoint recovery). The
  /// exact array layout matters, not just the retained set: eviction
  /// order under tied scores depends on it, and recovery must reproduce
  /// the uninterrupted run bit-for-bit. Returns false (leaving *this
  /// unchanged) if `entries` overflows k or violates the heap shape.
  bool RestoreEntries(std::vector<Entry> entries) {
    if (entries.size() > k_ ||
        !std::is_heap(entries.begin(), entries.end(), GreaterScore)) {
      return false;
    }
    entries_ = std::move(entries);
    return true;
  }

 private:
  // Min-heap on score: parent has the smallest score.
  static bool GreaterScore(const Entry& a, const Entry& b) {
    return a.score > b.score;
  }

  std::size_t k_;
  std::vector<Entry> entries_;
};

}  // namespace fwdecay

#endif  // FWDECAY_UTIL_TOP_K_HEAP_H_
