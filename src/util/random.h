#ifndef FWDECAY_UTIL_RANDOM_H_
#define FWDECAY_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "util/check.h"

// Fast, reproducible pseudo-random number generation.
//
// All randomized algorithms in the library (sampling, sketches, workload
// generators) take an explicit Rng so runs are deterministic given a seed.
// The generator is xoshiro256++ seeded via SplitMix64 — far faster than
// std::mt19937_64 and with better statistical behaviour than rand().

namespace fwdecay {

/// Advances a SplitMix64 state and returns the next 64-bit output.
/// Used for seeding and as a stateless hash-like mixer.
inline std::uint64_t SplitMix64Next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ pseudo-random generator.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can be used
/// with <random> distributions, though the library prefers the member
/// helpers below to stay allocation- and libstdc++-variance-free.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator whose entire state is derived from `seed`.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64Next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Returns the next 64 random bits.
  result_type operator()() { return Next64(); }

  /// Returns the next 64 random bits.
  std::uint64_t Next64() {
    const std::uint64_t result =
        Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Returns a double uniform in [0, 1) with 53 random bits of mantissa.
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Returns a double uniform in (0, 1]; never zero, so it is safe as the
  /// `u` in keys like u^(1/w) or priorities like w/u.
  double NextDoubleOpenZero() { return 1.0 - NextDouble(); }

  /// Returns an integer uniform in [0, bound) using Lemire's multiply-shift
  /// rejection method. `bound` must be positive.
  std::uint64_t NextBounded(std::uint64_t bound) {
    FWDECAY_DCHECK(bound > 0);
    // Debiased multiply-shift (Lemire 2019).
    std::uint64_t x = Next64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Returns an exponentially distributed double with rate `lambda` > 0.
  double NextExponential(double lambda) {
    FWDECAY_DCHECK(lambda > 0);
    return -std::log(NextDoubleOpenZero()) / lambda;
  }

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Copies the full 256-bit generator state out (engine checkpointing:
  /// a restored sampler must continue the exact random sequence the
  /// checkpointed run would have produced).
  void SaveState(std::uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = state_[i];
  }

  /// Restores a state captured by SaveState.
  void LoadState(const std::uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) state_[i] = in[i];
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace fwdecay

#endif  // FWDECAY_UTIL_RANDOM_H_
