#ifndef FWDECAY_UTIL_HASH_H_
#define FWDECAY_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

// 64-bit hashing utilities shared by the sketches (SpaceSaving, KMV,
// dominance-norm) and the DSMS group-by hash tables. All are deterministic
// across runs and platforms; sketches that need independent hash functions
// mix in a per-instance seed.

namespace fwdecay {

/// Strong 64-bit finalizer (the SplitMix64 / Murmur3 fmix64 family).
/// Bijective, so distinct inputs stay distinct.
inline std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hashes a 64-bit key under a 64-bit seed; different seeds give
/// effectively independent hash functions.
inline std::uint64_t HashU64(std::uint64_t key, std::uint64_t seed = 0) {
  return Mix64(key ^ (seed * 0xff51afd7ed558ccdULL + 0xc4ceb9fe1a85ec53ULL));
}

/// Combines two hashes (order-sensitive), boost::hash_combine style but
/// with a 64-bit constant and a final mix.
inline std::uint64_t HashCombine(std::uint64_t h, std::uint64_t v) {
  h ^= Mix64(v) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// FNV-1a over raw bytes; adequate for short group-by keys and strings.
inline std::uint64_t HashBytes(const void* data, std::size_t len,
                               std::uint64_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL ^ Mix64(seed);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

/// Hashes a string view.
inline std::uint64_t HashString(std::string_view s, std::uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

/// Maps a 64-bit hash to a double uniform in (0, 1]. Used by sketches
/// (e.g. KMV) that need a hash interpreted as a uniform draw.
inline double HashToUnitOpen(std::uint64_t h) {
  return (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
}

}  // namespace fwdecay

#endif  // FWDECAY_UTIL_HASH_H_
