#include "util/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>

namespace fwdecay::metrics {

bool ValidMetricName(const std::string& name) {
  static constexpr char kPrefix[] = "fwdecay_";
  static constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.size() <= kPrefixLen) return false;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return false;
  for (std::size_t i = kPrefixLen; i < name.size(); ++i) {
    const char c = name[i];
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

std::string FormatValue(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    (void)std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    (void)std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  return buf;
}

namespace impl {

// --------------------------------------------------------------------
// DecayedRate

void DecayedRate::Mark(Timestamp t, double n) {
  MutexLock lock(mu_);
  if (alpha_ * (t - count_.decay().landmark()) > kRescaleLogLimit) {
    count_.RescaleLandmark(t);
  }
  count_.AddN(std::max(t, count_.decay().landmark()), n);
}

double DecayedRate::RatePerSecond(Timestamp t) const {
  return DecayedCountValue(t) * alpha_;
}

double DecayedRate::DecayedCountValue(Timestamp t) const {
  MutexLock lock(mu_);
  return count_.Value(std::max(t, count_.decay().landmark()));
}

void DecayedRate::CheckInvariants() const {
  MutexLock lock(mu_);
  FWDECAY_CHECK(std::isfinite(count_.RawWeightedCount()));
  FWDECAY_CHECK(count_.RawWeightedCount() >= 0.0);
  FWDECAY_CHECK(count_.decay().g().alpha == alpha_);
}

// --------------------------------------------------------------------
// LatencyReservoir

void LatencyReservoir::Observe(Timestamp t, double value) {
  MutexLock lock(mu_);
  reservoir_.Update(std::max(t, reservoir_.start()), value);
  ++observations_;
}

ReservoirSnapshot LatencyReservoir::Snapshot() const {
  MutexLock lock(mu_);
  return reservoir_.Snapshot();
}

std::uint64_t LatencyReservoir::observations() const {
  MutexLock lock(mu_);
  return observations_;
}

void LatencyReservoir::CheckInvariants() const {
  MutexLock lock(mu_);
  reservoir_.CheckInvariants();
  FWDECAY_CHECK(reservoir_.size() <= observations_);
}

// --------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry registry;
  return registry;
}

const char* MetricsRegistry::KindName(Kind kind) {
  switch (kind) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kDecayedRate:
      // A decayed rate can fall as well as rise: a gauge, per the
      // Prometheus data model, even though it counts events.
      return "gauge";
    case Kind::kReservoir:
      return "summary";
  }
  return "untyped";
}

MetricsRegistry::Entry* MetricsRegistry::GetOrCreate(const std::string& name,
                                                     const std::string& help,
                                                     const std::string& labels,
                                                     Kind kind) {
  FWDECAY_CHECK_MSG(ValidMetricName(name),
                    "metric names must match ^fwdecay_[a-z0-9_]+$");
  auto key = std::make_pair(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    FWDECAY_CHECK_MSG(it->second->kind == kind,
                      "metric re-registered with a different kind");
    return it->second.get();
  }
  // Family consistency: every labelled instance of one name shares a
  // kind (and therefore renders under a single # TYPE header).
  auto family = entries_.lower_bound(std::make_pair(name, std::string()));
  if (family != entries_.end() && family->first.first == name) {
    FWDECAY_CHECK_MSG(family->second->kind == kind,
                      "metric family spans two kinds");
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->help = help;
  Entry* raw = entry.get();
  entries_.emplace(std::move(key), std::move(entry));
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& labels) {
  MutexLock lock(mu_);
  Entry* entry = GetOrCreate(name, help, labels, Kind::kCounter);
  if (!entry->counter) entry->counter = std::make_unique<Counter>();
  return entry->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels) {
  MutexLock lock(mu_);
  Entry* entry = GetOrCreate(name, help, labels, Kind::kGauge);
  if (!entry->gauge) entry->gauge = std::make_unique<Gauge>();
  return entry->gauge.get();
}

DecayedRate* MetricsRegistry::GetDecayedRate(const std::string& name,
                                             const std::string& help,
                                             double alpha,
                                             const std::string& labels) {
  MutexLock lock(mu_);
  Entry* entry = GetOrCreate(name, help, labels, Kind::kDecayedRate);
  if (!entry->rate) entry->rate = std::make_unique<DecayedRate>(alpha);
  FWDECAY_CHECK_MSG(entry->rate->alpha() == alpha,
                    "decayed rate re-registered with a different alpha");
  return entry->rate.get();
}

LatencyReservoir* MetricsRegistry::GetReservoir(const std::string& name,
                                                const std::string& help,
                                                std::size_t k, double alpha,
                                                const std::string& labels) {
  MutexLock lock(mu_);
  Entry* entry = GetOrCreate(name, help, labels, Kind::kReservoir);
  if (!entry->reservoir) {
    entry->reservoir = std::make_unique<LatencyReservoir>(k, alpha);
  }
  return entry->reservoir.get();
}

void MetricsRegistry::RenderEntry(const std::string& name,
                                  const std::string& labels,
                                  const Entry& entry, Timestamp now,
                                  std::string* out) {
  const auto line = [&](const char* extra_label, const std::string& value) {
    out->append(name);
    const bool extra = extra_label[0] != '\0';
    if (!labels.empty() || extra) {
      out->push_back('{');
      out->append(labels);
      if (!labels.empty() && extra) out->push_back(',');
      out->append(extra_label);
      out->push_back('}');
    }
    out->push_back(' ');
    out->append(value);
    out->push_back('\n');
  };
  switch (entry.kind) {
    case Kind::kCounter:
      line("", std::to_string(entry.counter->value()));
      break;
    case Kind::kGauge:
      line("", FormatValue(entry.gauge->value()));
      break;
    case Kind::kDecayedRate:
      line("", FormatValue(entry.rate->RatePerSecond(now)));
      break;
    case Kind::kReservoir: {
      const ReservoirSnapshot snap = entry.reservoir->Snapshot();
      line("quantile=\"0.5\"", FormatValue(snap.median));
      line("quantile=\"0.75\"", FormatValue(snap.p75));
      line("quantile=\"0.95\"", FormatValue(snap.p95));
      line("quantile=\"0.99\"", FormatValue(snap.p99));
      out->append(name).append("_count");
      if (!labels.empty()) {
        out->push_back('{');
        out->append(labels);
        out->push_back('}');
      }
      out->push_back(' ');
      out->append(std::to_string(entry.reservoir->observations()));
      out->push_back('\n');
      break;
    }
  }
}

void MetricsRegistry::RenderPrometheus(std::string* out) const {
  RenderPrometheus(out, NowSeconds());
}

void MetricsRegistry::RenderPrometheus(std::string* out, Timestamp now) const {
  out->clear();
  {
    MutexLock lock(mu_);
    const std::string* family = nullptr;
    for (const auto& [key, entry] : entries_) {
      const std::string& name = key.first;
      if (family == nullptr || *family != name) {
        out->append("# HELP ").append(name).push_back(' ');
        out->append(entry->help).push_back('\n');
        out->append("# TYPE ").append(name).push_back(' ');
        out->append(KindName(entry->kind));
        out->push_back('\n');
        family = &name;
      }
      RenderEntry(name, key.second, *entry, now, out);
    }
  }
  FWDECAY_AUDIT_INVARIANTS(*this);
}

std::size_t MetricsRegistry::MetricCount() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void MetricsRegistry::CheckInvariants() const {
  MutexLock lock(mu_);
  const std::string* family = nullptr;
  Kind family_kind = Kind::kCounter;
  for (const auto& [key, entry] : entries_) {
    FWDECAY_CHECK(ValidMetricName(key.first));
    FWDECAY_CHECK(entry != nullptr);
    if (family != nullptr && *family == key.first) {
      FWDECAY_CHECK(entry->kind == family_kind);
    }
    family = &key.first;
    family_kind = entry->kind;
    switch (entry->kind) {
      case Kind::kCounter:
        FWDECAY_CHECK(entry->counter != nullptr);
        break;
      case Kind::kGauge:
        FWDECAY_CHECK(entry->gauge != nullptr);
        break;
      case Kind::kDecayedRate:
        FWDECAY_CHECK(entry->rate != nullptr);
        entry->rate->CheckInvariants();
        break;
      case Kind::kReservoir:
        FWDECAY_CHECK(entry->reservoir != nullptr);
        entry->reservoir->CheckInvariants();
        break;
    }
  }
}

// --------------------------------------------------------------------
// StatsReporter

namespace {

void StderrSink(const std::string& text) {
  (void)std::fputs(text.c_str(), stderr);
}

}  // namespace

StatsReporter::StatsReporter(const MetricsRegistry* registry,
                             double period_seconds, Sink sink)
    : registry_(registry),
      period_seconds_(period_seconds),
      sink_(sink ? std::move(sink) : Sink(&StderrSink)) {
  FWDECAY_CHECK(registry_ != nullptr);
  FWDECAY_CHECK_MSG(period_seconds_ > 0.0,
                    "StatsReporter period must be positive");
  thread_ = std::thread([this] { Run(); });
}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void StatsReporter::FlushNow() {
  std::string text;
  registry_->RenderPrometheus(&text);
  sink_(text);
  // fwdecay: relaxed-ok(monotone progress counter; no dependent data to order)
  reports_.fetch_add(1, std::memory_order_relaxed);
}

void StatsReporter::Run() {
  Timer since_report;
  std::string text;
  while (!stop_.load(std::memory_order_acquire)) {
    if (since_report.ElapsedSeconds() >= period_seconds_) {
      since_report.Reset();
      registry_->RenderPrometheus(&text);
      sink_(text);
      // fwdecay: relaxed-ok(monotone progress counter; no dependent data to order)
      reports_.fetch_add(1, std::memory_order_relaxed);
      FWDECAY_AUDIT_INVARIANTS(*registry_);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace impl
}  // namespace fwdecay::metrics
