#ifndef FWDECAY_UTIL_FAULT_FS_H_
#define FWDECAY_UTIL_FAULT_FS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

// Fault-injectable file I/O — the single gateway for every byte the
// repo persists or reads back (packet traces, engine snapshots).
//
// All writes are write-to-temp + fsync + atomic-rename, so a crash at
// any instant leaves either the complete old file or the complete new
// file, never a mix. The injection policy lets tests force the failure
// modes a real deployment sees — short/torn writes, EIO on write or
// fsync, a process death just before (or just after) the rename — and
// verify that recovery always lands on a clean state. The on-disk
// residue of an injected fault is byte-for-byte what a real crash at
// that point would leave.
//
// scripts/lint.py forbids fopen/fstream in library code outside this
// file, so the fault matrix provably covers all disk I/O.

namespace fwdecay {

/// The instant within an I/O sequence at which an injected fault fires.
enum class FaultPoint {
  kNone = 0,
  /// open(2) of the temp file fails (disk full / permissions).
  kOpenForWrite,
  /// The write stops after `byte_limit` bytes and the "process dies":
  /// a torn temp file remains, the target is untouched.
  kTornWrite,
  /// write(2) returns EIO after `byte_limit` bytes were written.
  kWriteError,
  /// fsync(2) fails: the data may or may not have reached the platter.
  kFsyncError,
  /// Process dies after a durable temp write but before the rename:
  /// the old target survives intact, a complete temp file remains.
  kCrashBeforeRename,
  /// Process dies just after the rename: the new file is in place but
  /// the writer never learned the write succeeded.
  kCrashAfterRename,
  /// open(2) of the file for reading fails.
  kOpenForRead,
  /// The read is truncated to `byte_limit` bytes.
  kShortRead,
  /// read(2) returns EIO mid-file.
  kReadError,
};

/// One armed fault. The fault fires on the next matching operation and
/// then disarms itself (one-shot), so a recovery path that retries is
/// exercised against a healthy filesystem — exactly the crash-restart
/// sequence the checkpoint tests model.
struct FaultPlan {
  FaultPoint point = FaultPoint::kNone;
  /// Byte offset for kTornWrite / kWriteError / kShortRead.
  std::size_t byte_limit = 0;
};

/// Process-wide fault-injecting filesystem facade. Thread-safe.
class FaultFs {
 public:
  /// The singleton every durable code path routes through.
  static FaultFs& Instance();

  /// Arms `plan` (one-shot; replaces any armed plan).
  void SetPlan(const FaultPlan& plan) FWDECAY_EXCLUDES(mu_);
  /// Disarms any pending fault.
  void ClearPlan() FWDECAY_EXCLUDES(mu_);
  /// Number of faults that have actually fired since process start.
  std::uint64_t faults_injected() const FWDECAY_EXCLUDES(mu_);

  /// Atomically replaces `path` with `size` bytes from `data`:
  /// write `path`.tmp, fsync it, rename over `path`, fsync the parent
  /// directory. Returns false (with *error) on real or injected
  /// failure; on failure the previous `path` content, if any, is intact
  /// unless the fault fired after the rename (kCrashAfterRename), in
  /// which case the new content is durably in place.
  bool AtomicWriteFile(const std::string& path, const std::uint8_t* data,
                       std::size_t size, std::string* error);
  bool AtomicWriteFile(const std::string& path,
                       const std::vector<std::uint8_t>& bytes,
                       std::string* error);

  /// Reads all of `path` (up to `max_bytes`, rejecting larger files so a
  /// hostile or corrupt path cannot demand unbounded memory) into *out.
  bool ReadFile(const std::string& path, std::vector<std::uint8_t>* out,
                std::string* error,
                std::size_t max_bytes = kDefaultMaxFileBytes);

  /// Appends `size` bytes to `path` (creating it first if absent) and
  /// fsyncs before returning — the write-ahead-journal primitive: once
  /// this returns true the bytes survive a crash at any later instant.
  /// Injectable faults: kOpenForWrite, kTornWrite (only `byte_limit`
  /// bytes land and the call fails, modelling a crash mid-append — the
  /// journal reader must treat the torn tail as end-of-log),
  /// kWriteError, kFsyncError.
  bool AppendFile(const std::string& path, const std::uint8_t* data,
                  std::size_t size, std::string* error);

  /// Removes `path`. Returns false (with *error) only on a real failure
  /// other than the file already being absent — retention GC treats
  /// "already gone" as success (a crashed predecessor may have removed
  /// it before dying).
  bool RemoveFile(const std::string& path, std::string* error);

  /// True when `path` exists (any file type). Never injects faults:
  /// existence probes drive recovery's journal-segment walk, and a
  /// spurious "absent" would silently truncate replay rather than
  /// surface an error.
  bool FileExists(const std::string& path) const;

  /// Creates `path` as a directory if it does not already exist (one
  /// level; parents must exist). Used by the server for its data dir.
  bool EnsureDir(const std::string& path, std::string* error);

  /// Removes `path` if it exists; best-effort (used for stale temp
  /// files left behind by a previous crash).
  void RemoveStaleTemp(const std::string& path);

  /// The temp-file name AtomicWriteFile uses for `path`.
  static std::string TempPathFor(const std::string& path);

  /// 1 GiB: far above any artifact the repo writes, far below "mmap the
  /// whole disk because a length field was hostile".
  static constexpr std::size_t kDefaultMaxFileBytes = std::size_t{1} << 30;

 private:
  FaultFs() = default;

  /// Consumes the armed plan if it matches `point`; returns the plan's
  /// byte_limit through *byte_limit when it fires.
  bool ConsumeFault(FaultPoint point, std::size_t* byte_limit)
      FWDECAY_EXCLUDES(mu_);

  mutable Mutex mu_;
  FaultPlan plan_ FWDECAY_GUARDED_BY(mu_);
  std::uint64_t faults_injected_ FWDECAY_GUARDED_BY(mu_) = 0;
};

/// RAII plan installer for tests: arms on construction, disarms on
/// destruction (even if the fault never fired).
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) {
    FaultFs::Instance().SetPlan(plan);
  }
  ScopedFaultPlan(FaultPoint point, std::size_t byte_limit = 0)
      : ScopedFaultPlan(FaultPlan{point, byte_limit}) {}
  ~ScopedFaultPlan() { FaultFs::Instance().ClearPlan(); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace fwdecay

#endif  // FWDECAY_UTIL_FAULT_FS_H_
