#ifndef FWDECAY_UTIL_ZIPF_H_
#define FWDECAY_UTIL_ZIPF_H_

#include <cstdint>

#include "util/random.h"

namespace fwdecay {

/// Draws integers in [1, n] with P(k) ∝ k^(-s), i.e. a Zipf distribution.
///
/// Network-style workloads (the paper's packet destinations) are heavily
/// skewed; the generator uses rejection-inversion (Hörmann & Derflinger
/// 1996), which needs O(1) setup and O(1) expected time per draw for any
/// exponent s >= 0, instead of the O(n) CDF table of the naive method.
class ZipfGenerator {
 public:
  /// Creates a generator over the domain [1, num_items] with skew
  /// `exponent` (0 = uniform; 1 ≈ classic Zipf; larger = more skewed).
  ZipfGenerator(std::uint64_t num_items, double exponent);

  /// Returns the next Zipf-distributed value in [1, num_items].
  std::uint64_t Next(Rng& rng);

  std::uint64_t num_items() const { return num_items_; }
  double exponent() const { return exponent_; }

 private:
  // H(x) is the integral of the density; see the implementation for the
  // s == 1 special case.
  double H(double x) const;
  double HInverse(double x) const;

  std::uint64_t num_items_;
  double exponent_;
  double h_x1_;
  double h_num_items_;
  double s_;
};

}  // namespace fwdecay

#endif  // FWDECAY_UTIL_ZIPF_H_
