#ifndef FWDECAY_CORE_TOPK_H_
#define FWDECAY_CORE_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/forward_decay.h"
#include "core/heavy_hitters.h"

namespace fwdecay {

/// Decayed top-k: the k keys with the largest decayed counts.
///
/// The SpaceSaving sketch behind decayed heavy hitters (Theorem 2) is
/// also the standard top-k summary (its original setting in Metwally et
/// al.); this wrapper exposes that view. A reported entry is *guaranteed*
/// to be in the true top-k when its lower bound (estimate - error)
/// exceeds the (k+1)-th estimate — the classic SpaceSaving certainty
/// test, surfaced per entry.
template <ForwardG G>
class DecayedTopK {
 public:
  struct Entry {
    std::uint64_t key = 0;
    double decayed_count = 0.0;  // upper bound, normalized at query time
    double error = 0.0;
    /// True when the entry provably belongs to the top-k.
    bool guaranteed = false;
  };

  /// `k` results are reported; `slack` extra counters improve both the
  /// estimates and the number of guaranteed entries.
  DecayedTopK(ForwardDecay<G> decay, std::size_t k, std::size_t slack = 0)
      : k_(k), hh_(std::move(decay), 1.0 / static_cast<double>(k + slack + 1)) {
    FWDECAY_CHECK(k >= 1);
  }

  /// Records an arrival of `key` at time t_i.
  void Add(Timestamp ti, std::uint64_t key) { hh_.Add(ti, key); }

  /// Records an arrival with multiplicity (e.g. bytes).
  void AddN(Timestamp ti, std::uint64_t key, double n) {
    hh_.AddN(ti, key, n);
  }

  /// The current top-k by decayed count at query time t, sorted
  /// descending, with per-entry guarantees.
  std::vector<Entry> Query(Timestamp t) const {
    // phi = 0 returns every counter, already sorted by estimate.
    const auto all = hh_.Query(t, 0.0);
    std::vector<Entry> out;
    const std::size_t take = std::min(k_, all.size());
    // The certainty threshold is the next-best estimate after the top-k.
    const double next_best =
        all.size() > take ? all[take].decayed_count : 0.0;
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      Entry e;
      e.key = all[i].key;
      e.decayed_count = all[i].decayed_count;
      e.error = all[i].error;
      e.guaranteed = all[i].decayed_count - all[i].error >= next_best;
      out.push_back(e);
    }
    return out;
  }

  void Merge(const DecayedTopK& other) { hh_.Merge(other.hh_); }

  const DecayedHeavyHitters<G>& heavy_hitters() const { return hh_; }
  std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  DecayedHeavyHitters<G> hh_;
};

}  // namespace fwdecay

#endif  // FWDECAY_CORE_TOPK_H_
