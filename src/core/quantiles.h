#ifndef FWDECAY_CORE_QUANTILES_H_
#define FWDECAY_CORE_QUANTILES_H_

#include <cstdint>

#include "core/forward_decay.h"
#include "sketch/qdigest.h"

namespace fwdecay {

/// Quantiles under forward decay (Definition 8, Theorem 3).
///
/// The decayed rank r_v = Σ_{v_i <= v} g(t_i - L)/g(t - L) factors into a
/// weighted-rank problem over static weights: a q-digest fed weighted
/// updates answers it in O((1/eps) log U) space with O(log log U)-ish
/// update cost, matching the undecayed bounds.
///
/// Note the pleasant consequence (as with the decayed average): because
/// the g(t - L) normalizer cancels between r_v and C, the phi-quantile
/// VALUE does not depend on the query time — only rank magnitudes do.
template <ForwardG G>
class DecayedQuantiles {
 public:
  /// Items are drawn from [0, 2^universe_bits); eps is the additive rank
  /// error relative to the decayed count C.
  DecayedQuantiles(ForwardDecay<G> decay, int universe_bits, double eps)
      : decay_(std::move(decay)), digest_(universe_bits, eps) {}

  /// Records value v_i arriving at time t_i. Out-of-order friendly.
  void Add(Timestamp ti, std::uint64_t value) {
    digest_.Update(value, decay_.StaticWeight(ti));
  }

  /// The phi-quantile (phi in [0, 1]): smallest v whose decayed rank is
  /// (approximately) >= phi * C. Time-invariant, per the class comment.
  std::uint64_t Quantile(double phi) const { return digest_.Quantile(phi); }

  /// Decayed rank of value v at query time t.
  double Rank(Timestamp t, std::uint64_t v) const {
    return digest_.Rank(v) / decay_.Normalizer(t);
  }

  /// Decayed total count C at query time t.
  double DecayedTotal(Timestamp t) const {
    return digest_.TotalWeight() / decay_.Normalizer(t);
  }

  /// Combines a peer (same g, landmark, universe and eps) — Section VI-B.
  void Merge(const DecayedQuantiles& other) { digest_.Merge(other.digest_); }

  /// Rebases onto a new landmark (exponential g only; Section VI-A).
  void RescaleLandmark(Timestamp new_landmark)
    requires requires(ForwardDecay<G>& d) { d.RescaleLandmark(0.0); }
  {
    digest_.ScaleWeights(decay_.RescaleLandmark(new_landmark));
  }

  const QDigest& digest() const { return digest_; }
  const ForwardDecay<G>& decay() const { return decay_; }
  std::size_t MemoryBytes() const { return digest_.MemoryBytes(); }

  /// Serializes landmark + digest for the distributed setting (the decay
  /// function is configuration; the landmark is checked on Deserialize).
  void SerializeTo(ByteWriter* writer) const {
    writer->WriteU8(0x50);  // 'P' (percentiles)
    writer->WriteDouble(decay_.landmark());
    digest_.SerializeTo(writer);
  }

  /// Reconstructs; nullopt on corrupt input or landmark mismatch.
  static std::optional<DecayedQuantiles> Deserialize(ForwardDecay<G> decay,
                                                     ByteReader* reader) {
    std::uint8_t tag = 0;
    double landmark = 0.0;
    if (!reader->ReadU8(&tag) || tag != 0x50) return std::nullopt;
    if (!reader->ReadDouble(&landmark) || landmark != decay.landmark()) {
      return std::nullopt;
    }
    auto digest = QDigest::Deserialize(reader);
    if (!digest.has_value()) return std::nullopt;
    DecayedQuantiles out(std::move(decay), digest->universe_bits(),
                         digest->eps());
    out.digest_ = *std::move(digest);
    return out;
  }

 private:
  ForwardDecay<G> decay_;
  QDigest digest_;
};

}  // namespace fwdecay

#endif  // FWDECAY_CORE_QUANTILES_H_
