#ifndef FWDECAY_CORE_LANDMARK_H_
#define FWDECAY_CORE_LANDMARK_H_

#include <cmath>

#include "core/decay.h"
#include "core/forward_decay.h"
#include "util/check.h"

// Landmark policies (Section III-B): the paper recommends setting the
// landmark to (a lower bound on) the query's smallest timestamp — for
// continuous per-bucket queries, the start of each time bucket. This is
// exactly what the GSQL idiom `(time % 60)` implements; the helper here
// gives the same semantics to C++ callers without manual arithmetic.

namespace fwdecay {

/// Forward decay whose landmark is the start of the `period`-long
/// tumbling bucket containing each item: items are weighted by
/// g(t_i mod period), normalized by g(t mod period) within the same
/// bucket. Cross-bucket comparisons are meaningless by design — each
/// bucket is its own query with its own landmark, matching the paper's
/// per-minute experiments.
template <ForwardG G>
class BucketedForwardDecay {
 public:
  BucketedForwardDecay(G g, double period) : g_(std::move(g)),
                                             period_(period) {
    FWDECAY_CHECK_MSG(period > 0.0, "bucket period must be positive");
  }

  /// Start of the bucket containing time t (the landmark for t).
  Timestamp LandmarkFor(Timestamp t) const {
    return std::floor(t / period_) * period_;
  }

  /// Bucket index of time t.
  std::int64_t BucketOf(Timestamp t) const {
    return static_cast<std::int64_t>(std::floor(t / period_));
  }

  /// g(t_i - L(t_i)): the static weight relative to the item's own
  /// bucket landmark — what a per-bucket weighted aggregate stores.
  double StaticWeight(Timestamp ti) const {
    return g_.G(ti - LandmarkFor(ti));
  }

  /// Decayed weight of an item at query time t. Both must fall in the
  /// same bucket (checked): per-bucket queries never mix landmarks.
  double Weight(Timestamp ti, Timestamp t) const {
    FWDECAY_CHECK_MSG(BucketOf(ti) == BucketOf(t),
                      "item and query time are in different buckets");
    return StaticWeight(ti) / g_.G(t - LandmarkFor(t));
  }

  /// The fixed-landmark decay for one bucket — use it to construct the
  /// per-bucket aggregates/sketches of this library.
  ForwardDecay<G> DecayForBucket(std::int64_t bucket) const {
    return ForwardDecay<G>(g_, static_cast<double>(bucket) * period_);
  }

  const G& g() const { return g_; }
  double period() const { return period_; }

 private:
  G g_;
  double period_;
};

}  // namespace fwdecay

#endif  // FWDECAY_CORE_LANDMARK_H_
