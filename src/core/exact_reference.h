#ifndef FWDECAY_CORE_EXACT_REFERENCE_H_
#define FWDECAY_CORE_EXACT_REFERENCE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/decay.h"

namespace fwdecay {

/// Exact decayed-aggregate evaluator that buffers the whole stream.
///
/// This is the brute-force semantics of Definitions 5–9 under *any*
/// decay — the caller passes the weight function w(t_i, t) at query time,
/// so both forward (g(t_i-L)/g(t-L)) and backward (f(t-t_i)/f(0)) models
/// are covered by one reference. It exists for two purposes:
///  * ground truth in tests (the approximate structures are validated
///    against it);
///  * the "exact backward decay" strawman: it illustrates why backward
///    decay needs to revisit every buffered item per query, the cost the
///    paper's Section III opens with.
class ExactDecayedReference {
 public:
  /// Decayed weight of an item with timestamp t_i, evaluated at time t.
  using WeightFn = std::function<double(Timestamp ti, Timestamp t)>;

  /// Buffers one arrival: timestamp, item key (for HH/distinct) and
  /// numeric value (for sum/avg/min/max/quantiles).
  void Add(Timestamp ti, std::uint64_t key, double value);

  std::size_t Size() const { return items_.size(); }

  /// Σ_i w(t_i, t).
  double Count(Timestamp t, const WeightFn& w) const;

  /// Σ_i w(t_i, t) v_i.
  double Sum(Timestamp t, const WeightFn& w) const;

  /// Sum / Count; nullopt when the decayed count is zero.
  std::optional<double> Average(Timestamp t, const WeightFn& w) const;

  /// Weighted variance (weights as probabilities), per Section IV-A.
  std::optional<double> Variance(Timestamp t, const WeightFn& w) const;

  /// min_i / max_i of w(t_i, t) v_i (Definition 6).
  std::optional<double> Min(Timestamp t, const WeightFn& w) const;
  std::optional<double> Max(Timestamp t, const WeightFn& w) const;

  /// Exact decayed count per key, d_v (Definition 7).
  double KeyCount(Timestamp t, const WeightFn& w, std::uint64_t key) const;

  /// Keys with d_v >= phi * C, sorted by decreasing decayed count.
  std::vector<std::pair<std::uint64_t, double>> HeavyHitters(
      Timestamp t, const WeightFn& w, double phi) const;

  /// Exact decayed rank of value v (Definition 8, over item values).
  double Rank(Timestamp t, const WeightFn& w, double v) const;

  /// Exact phi-quantile: smallest value with rank >= phi * C.
  std::optional<double> Quantile(Timestamp t, const WeightFn& w,
                                 double phi) const;

  /// Exact decayed distinct count, Σ_v max w (Definition 9).
  double CountDistinct(Timestamp t, const WeightFn& w) const;

 private:
  struct Item {
    Timestamp ts;
    std::uint64_t key;
    double value;
  };
  std::vector<Item> items_;
};

/// Convenience adaptors turning decay-function structs into WeightFns.
template <ForwardG G>
ExactDecayedReference::WeightFn ForwardWeightFn(G g, Timestamp landmark) {
  return [g = std::move(g), landmark](Timestamp ti, Timestamp t) {
    return g.G(ti - landmark) / g.G(t - landmark);
  };
}

template <BackwardF F>
ExactDecayedReference::WeightFn BackwardWeightFn(F f) {
  return [f = std::move(f)](Timestamp ti, Timestamp t) {
    return f.F(t - ti) / f.F(0.0);
  };
}

}  // namespace fwdecay

#endif  // FWDECAY_CORE_EXACT_REFERENCE_H_
