#ifndef FWDECAY_CORE_HEAVY_HITTERS_H_
#define FWDECAY_CORE_HEAVY_HITTERS_H_

#include <cstdint>
#include <vector>

#include "core/forward_decay.h"
#include "sketch/space_saving.h"

namespace fwdecay {

/// One decayed heavy hitter: key plus its decayed-count estimate.
struct DecayedHeavyHitter {
  std::uint64_t key = 0;
  /// Estimated decayed count d_v (upper bound), already normalized by
  /// g(t - L) for the query time passed to Query().
  double decayed_count = 0.0;
  /// Maximum overestimation in the same normalized units.
  double error = 0.0;
};

/// Heavy hitters under forward decay (Definition 7, Theorem 2).
///
/// Reduction: d_v >= phi * C is equivalent to
///   Σ_{v_i = v} g(t_i - L)  >=  phi * Σ_i g(t_i - L),
/// a weighted heavy-hitters instance over weights that never change after
/// arrival. The weighted SpaceSaving sketch solves it with O(1/eps)
/// counters and O(log 1/eps) per update — the same asymptotics as the
/// undecayed problem, which is the headline of Section IV-C.
template <ForwardG G>
class DecayedHeavyHitters {
 public:
  /// `eps` is the count accuracy of Theorem 2: all keys with decayed count
  /// >= phi*C are reported and none below (phi - eps)*C.
  DecayedHeavyHitters(ForwardDecay<G> decay, double eps)
      : decay_(std::move(decay)),
        sketch_(static_cast<std::size_t>(std::ceil(1.0 / eps))) {
    FWDECAY_CHECK_MSG(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
  }

  /// Records an arrival of `key` at time t_i. Out-of-order friendly.
  void Add(Timestamp ti, std::uint64_t key) {
    sketch_.Update(key, decay_.StaticWeight(ti));
  }

  /// Records an arrival counted with multiplicity `n` (e.g. packet bytes).
  void AddN(Timestamp ti, std::uint64_t key, double n) {
    FWDECAY_DCHECK(n > 0.0);
    sketch_.Update(key, n * decay_.StaticWeight(ti));
  }

  /// Total decayed count C at query time t (Definition 5).
  double DecayedTotal(Timestamp t) const {
    return sketch_.TotalWeight() / decay_.Normalizer(t);
  }

  /// All keys whose decayed count is at least phi * C, evaluated at query
  /// time t, sorted by decreasing estimate.
  std::vector<DecayedHeavyHitter> Query(Timestamp t, double phi) const {
    const double norm = decay_.Normalizer(t);
    std::vector<DecayedHeavyHitter> out;
    for (const HeavyHitter& h : sketch_.Query(phi)) {
      out.push_back(
          DecayedHeavyHitter{h.key, h.estimate / norm, h.error / norm});
    }
    return out;
  }

  /// Decayed-count upper bound for a single key at query time t.
  double Estimate(Timestamp t, std::uint64_t key) const {
    return sketch_.Estimate(key) / decay_.Normalizer(t);
  }

  /// Combines a peer (same g, same landmark, same eps) per Section VI-B.
  void Merge(const DecayedHeavyHitters& other) {
    sketch_.Merge(other.sketch_);
  }

  /// Rebases onto a new landmark (exponential g only; Section VI-A): every
  /// stored counter is a linear combination of static weights, so one
  /// linear pass multiplies them by the shift factor.
  void RescaleLandmark(Timestamp new_landmark)
    requires requires(ForwardDecay<G>& d) { d.RescaleLandmark(0.0); }
  {
    sketch_.ScaleWeights(decay_.RescaleLandmark(new_landmark));
  }

  const WeightedSpaceSaving& sketch() const { return sketch_; }
  const ForwardDecay<G>& decay() const { return decay_; }
  std::size_t MemoryBytes() const { return sketch_.MemoryBytes(); }

  /// Serializes landmark + sketch for the distributed setting. The decay
  /// function g is configuration: the receiver constructs with the same
  /// g and the embedded landmark is verified on Deserialize.
  void SerializeTo(ByteWriter* writer) const {
    writer->WriteU8(0x48);  // 'H'
    writer->WriteDouble(decay_.landmark());
    sketch_.SerializeTo(writer);
  }

  /// Reconstructs; nullopt on corrupt input or landmark mismatch.
  static std::optional<DecayedHeavyHitters> Deserialize(ForwardDecay<G> decay,
                                                        ByteReader* reader) {
    std::uint8_t tag = 0;
    double landmark = 0.0;
    if (!reader->ReadU8(&tag) || tag != 0x48) return std::nullopt;
    if (!reader->ReadDouble(&landmark) || landmark != decay.landmark()) {
      return std::nullopt;
    }
    auto sketch = WeightedSpaceSaving::Deserialize(reader);
    if (!sketch.has_value()) return std::nullopt;
    DecayedHeavyHitters out(std::move(decay), /*eps=*/0.5);
    out.sketch_ = *std::move(sketch);
    return out;
  }

 private:
  ForwardDecay<G> decay_;
  WeightedSpaceSaving sketch_;
};

}  // namespace fwdecay

#endif  // FWDECAY_CORE_HEAVY_HITTERS_H_
