#ifndef FWDECAY_CORE_DECAYING_RESERVOIR_H_
#define FWDECAY_CORE_DECAYING_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "core/decay.h"
#include "core/forward_decay.h"
#include "sampling/weighted_reservoir.h"
#include "util/random.h"
#include "util/stats.h"

// Exponentially time-decayed measurement reservoir — the "metrics
// histogram" application this paper is best known for: the decaying
// reservoir in the Dropwizard / Coda Hale metrics library implements
// exactly this design (forward-decayed weights u^(1/w), w = exp(alpha
// (t_i - L)), k largest keys kept).
//
// This implementation works in the log-key domain (see
// sampling/weighted_reservoir.h), so unlike the classic implementation
// it needs NO periodic landmark rescaling: alpha*(t_i - L) is stored
// directly and never overflows.

namespace fwdecay {

/// Summary statistics of the decayed sample at a point in time.
struct ReservoirSnapshot {
  std::size_t size = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// The raw sampled values (unsorted).
  std::vector<double> values;
};

/// Fixed-size reservoir of measurements biased exponentially toward the
/// recent past. Thread-compatible (externally synchronized), O(log k)
/// per update, O(k) space, arbitrary timestamps in any order.
class DecayingReservoir {
 public:
  /// `k` is the reservoir capacity; `alpha` the decay rate per time unit
  /// (e.g. 0.015/s ~ "the last five minutes dominate", the classic
  /// metrics-library default); `start` anchors the landmark.
  DecayingReservoir(std::size_t k, double alpha, Timestamp start,
                    std::uint64_t seed = 0x5eed)
      : rng_(seed),
        sampler_(ForwardDecay<ExponentialG>(ExponentialG(alpha), start), k) {}

  /// Records a measurement taken at time t (>= start; any order).
  void Update(Timestamp t, double value) { sampler_.Add(t, value, rng_); }

  /// Number of retained measurements (== min(k, observed)).
  std::size_t size() const { return sampler_.sample_size(); }

  /// Computes summary statistics over the current decayed sample. The
  /// sample is drawn without replacement with probabilities proportional
  /// to the decayed weights, so plain (unweighted) statistics of the
  /// sample estimate the decayed distribution — the standard metrics-
  /// library practice.
  ReservoirSnapshot Snapshot() const {
    return SnapshotFromValues(sampler_.Sample());
  }

  /// Builds a ReservoirSnapshot (summary statistics) from raw sampled
  /// values. Shared by Snapshot() and MergeSnapshots().
  static ReservoirSnapshot SnapshotFromValues(std::vector<double> values) {
    ReservoirSnapshot snap;
    snap.values = std::move(values);
    snap.size = snap.values.size();
    if (snap.values.empty()) return snap;
    RunningStats stats;
    for (double v : snap.values) stats.Add(v);
    snap.min = stats.min();
    snap.max = stats.max();
    snap.mean = stats.mean();
    snap.stddev = stats.stddev();
    snap.median = Percentile(snap.values, 0.5);
    snap.p75 = Percentile(snap.values, 0.75);
    snap.p95 = Percentile(snap.values, 0.95);
    snap.p99 = Percentile(snap.values, 0.99);
    return snap;
  }

  double alpha() const { return sampler_.decay().g().alpha; }
  Timestamp start() const { return sampler_.decay().landmark(); }

  /// Representation audit (DESIGN.md §7): the reservoir is the A-Res
  /// sampler's heap; its invariants are the sample's.
  void CheckInvariants() const { sampler_.CheckInvariants(); }

 private:
  Rng rng_;
  WeightedReservoirSampler<double, ExponentialG> sampler_;
};

/// Combines snapshots taken from sharded reservoirs into one summary.
///
/// Shards must share (k, alpha, landmark); each shard's sample is then an
/// equal-probability-design decayed sample of its own substream, so the
/// concatenation of the sampled values is itself a decayed sample of the
/// union stream and plain statistics over it estimate the combined
/// decayed distribution (Section VI-B's "union of samples" argument).
inline ReservoirSnapshot MergeSnapshots(
    const std::vector<ReservoirSnapshot>& shards) {
  std::vector<double> values;
  std::size_t total = 0;
  for (const ReservoirSnapshot& s : shards) total += s.values.size();
  values.reserve(total);
  for (const ReservoirSnapshot& s : shards) {
    values.insert(values.end(), s.values.begin(), s.values.end());
  }
  return DecayingReservoir::SnapshotFromValues(std::move(values));
}

}  // namespace fwdecay

#endif  // FWDECAY_CORE_DECAYING_RESERVOIR_H_
