#ifndef FWDECAY_CORE_COUNT_DISTINCT_H_
#define FWDECAY_CORE_COUNT_DISTINCT_H_

#include <cstdint>
#include <unordered_map>

#include "core/forward_decay.h"
#include "sketch/dominance_norm.h"

namespace fwdecay {

/// Count-distinct under forward decay (Definition 9, Theorem 4).
///
/// The decayed distinct count D = Σ_v max_{v_i = v} g(t_i - L)/g(t - L) is
/// the *dominance norm* of the statically weighted stream, scaled at query
/// time. The sketch variant uses the level-set estimator (see
/// sketch/dominance_norm.h for the substitution notes vs the paper's
/// Pavan–Tirthapura reference); the exact variant keeps one max-weight per
/// key and is the tests' ground truth.
template <ForwardG G>
class DecayedDistinct {
 public:
  /// `kmv_size` controls accuracy (relative stderr ~1/sqrt(kmv_size));
  /// `level_base` controls the weight discretization (error factor <= base).
  DecayedDistinct(ForwardDecay<G> decay, std::size_t kmv_size = 1024,
                  double level_base = 1.05)
      : decay_(std::move(decay)),
        sketch_(kmv_size, level_base) {}

  /// Observes `key` at time t_i. Out-of-order friendly: the dominance norm
  /// is defined through max, so arrival order is irrelevant.
  void Add(Timestamp ti, std::uint64_t key) {
    sketch_.Update(key, decay_.StaticWeight(ti));
  }

  /// Estimated decayed distinct count at query time t.
  double Estimate(Timestamp t) const {
    return sketch_.Estimate() / decay_.Normalizer(t);
  }

  /// Combines a peer (same g, landmark, and sketch parameters).
  void Merge(const DecayedDistinct& other) { sketch_.Merge(other.sketch_); }

  const DominanceNormSketch& sketch() const { return sketch_; }
  const ForwardDecay<G>& decay() const { return decay_; }
  std::size_t MemoryBytes() const { return sketch_.MemoryBytes(); }

  /// Serializes landmark + sketch for the distributed setting (the decay
  /// function is configuration; the landmark is checked on Deserialize).
  void SerializeTo(ByteWriter* writer) const {
    writer->WriteU8(0x55);  // 'U' (uniques)
    writer->WriteDouble(decay_.landmark());
    sketch_.SerializeTo(writer);
  }

  /// Reconstructs; nullopt on corrupt input or landmark mismatch.
  static std::optional<DecayedDistinct> Deserialize(ForwardDecay<G> decay,
                                                    ByteReader* reader) {
    std::uint8_t tag = 0;
    double landmark = 0.0;
    if (!reader->ReadU8(&tag) || tag != 0x55) return std::nullopt;
    if (!reader->ReadDouble(&landmark) || landmark != decay.landmark()) {
      return std::nullopt;
    }
    auto sketch = DominanceNormSketch::Deserialize(reader);
    if (!sketch.has_value()) return std::nullopt;
    DecayedDistinct out(std::move(decay));
    out.sketch_ = *std::move(sketch);
    return out;
  }

 private:
  ForwardDecay<G> decay_;
  DominanceNormSketch sketch_;
};

/// Exact decayed distinct count: one max static weight per key. Linear
/// space; reference implementation for tests and small inputs.
template <ForwardG G>
class ExactDecayedDistinct {
 public:
  explicit ExactDecayedDistinct(ForwardDecay<G> decay)
      : decay_(std::move(decay)) {}

  void Add(Timestamp ti, std::uint64_t key) {
    norm_.Update(key, decay_.StaticWeight(ti));
  }

  double Value(Timestamp t) const {
    return norm_.Estimate() / decay_.Normalizer(t);
  }

  std::size_t DistinctKeys() const { return norm_.DistinctKeys(); }

 private:
  ForwardDecay<G> decay_;
  ExactDominanceNorm norm_;
};

}  // namespace fwdecay

#endif  // FWDECAY_CORE_COUNT_DISTINCT_H_
