#ifndef FWDECAY_CORE_HISTOGRAM_H_
#define FWDECAY_CORE_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "core/forward_decay.h"
#include "util/bytes.h"
#include "util/check.h"

namespace fwdecay {

/// Fixed-bin decayed histogram: per-bin decayed counts over a bounded
/// value range. The per-bin accumulators are just decayed counts
/// (Theorem 1), so the whole structure is O(bins) state with O(1)
/// updates, merges exactly, and supports exponential landmark rescaling.
/// The workhorse for "decayed distribution of packet sizes"-style
/// dashboards where quantile sketches are overkill.
template <ForwardG G>
class DecayedHistogram {
 public:
  /// Bins partition [lo, hi) uniformly; values outside clamp to the
  /// first/last bin (tracked separately as underflow/overflow counts).
  DecayedHistogram(ForwardDecay<G> decay, double lo, double hi,
                   std::size_t bins)
      : decay_(std::move(decay)), lo_(lo), hi_(hi), weights_(bins, 0.0) {
    FWDECAY_CHECK_MSG(hi > lo, "histogram range must be non-empty");
    FWDECAY_CHECK(bins >= 1);
  }

  /// Records value v at time t_i. O(1).
  void Add(Timestamp ti, double v) {
    const double w = decay_.StaticWeight(ti);
    if (v < lo_) {
      underflow_ += w;
      return;
    }
    if (v >= hi_) {
      overflow_ += w;
      return;
    }
    const auto bin = static_cast<std::size_t>(
        (v - lo_) / (hi_ - lo_) * static_cast<double>(weights_.size()));
    weights_[bin < weights_.size() ? bin : weights_.size() - 1] += w;
  }

  /// Decayed mass of bin `i` at query time t.
  double BinMass(Timestamp t, std::size_t i) const {
    FWDECAY_CHECK(i < weights_.size());
    return weights_[i] / decay_.Normalizer(t);
  }

  /// Total decayed mass (including clamped values) at query time t.
  double TotalMass(Timestamp t) const {
    double sum = underflow_ + overflow_;
    for (double w : weights_) sum += w;
    return sum / decay_.Normalizer(t);
  }

  double UnderflowMass(Timestamp t) const {
    return underflow_ / decay_.Normalizer(t);
  }
  double OverflowMass(Timestamp t) const {
    return overflow_ / decay_.Normalizer(t);
  }

  /// Approximate phi-quantile by linear interpolation within the bin
  /// where the cumulative decayed mass crosses phi (like the classic
  /// histogram_quantile of monitoring systems). Time-invariant.
  double Quantile(double phi) const {
    FWDECAY_CHECK(phi >= 0.0 && phi <= 1.0);
    double total = underflow_ + overflow_;
    for (double w : weights_) total += w;
    if (total <= 0.0) return lo_;
    const double target = phi * total;
    double acc = underflow_;
    if (acc >= target) return lo_;
    const double bin_width =
        (hi_ - lo_) / static_cast<double>(weights_.size());
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      if (acc + weights_[i] >= target) {
        const double frac =
            weights_[i] > 0.0 ? (target - acc) / weights_[i] : 0.0;
        return lo_ + (static_cast<double>(i) + frac) * bin_width;
      }
      acc += weights_[i];
    }
    return hi_;
  }

  /// Exact merge with a peer (same range, bins, g and landmark).
  void Merge(const DecayedHistogram& other) {
    FWDECAY_CHECK(weights_.size() == other.weights_.size());
    FWDECAY_CHECK(lo_ == other.lo_ && hi_ == other.hi_);
    for (std::size_t i = 0; i < weights_.size(); ++i) {
      weights_[i] += other.weights_[i];
    }
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
  }

  /// Exponential landmark rescaling (Section VI-A).
  void RescaleLandmark(Timestamp new_landmark)
    requires requires(ForwardDecay<G>& d) { d.RescaleLandmark(0.0); }
  {
    const double factor = decay_.RescaleLandmark(new_landmark);
    for (double& w : weights_) w *= factor;
    underflow_ *= factor;
    overflow_ *= factor;
  }

  std::size_t bins() const { return weights_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  const ForwardDecay<G>& decay() const { return decay_; }

 private:
  ForwardDecay<G> decay_;
  double lo_;
  double hi_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  std::vector<double> weights_;
};

}  // namespace fwdecay

#endif  // FWDECAY_CORE_HISTOGRAM_H_
