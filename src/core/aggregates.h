#ifndef FWDECAY_CORE_AGGREGATES_H_
#define FWDECAY_CORE_AGGREGATES_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <span>

#include "core/forward_decay.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/simd.h"

// O(1)-state decayed aggregates under forward decay (Section IV-A/B,
// Theorem 1): each class maintains sums of static weights g(t_i - L)
// (times powers of the value) and scales by g(t - L) only at query time.
//
// All classes:
//  * accept out-of-order arrivals — nothing depends on timestamp order
//    (Section VI-B);
//  * Merge() with a peer built over the same g and landmark, giving the
//    distributed semantics of Section VI-B;
//  * for exponential g, support landmark rescaling to keep the stored
//    magnitudes in floating-point range (Section VI-A).

namespace fwdecay {

/// Decayed count: C(t) = Σ_i g(t_i - L) / g(t - L)  (Definition 5).
template <ForwardG G>
class DecayedCount {
 public:
  explicit DecayedCount(ForwardDecay<G> decay) : decay_(std::move(decay)) {}

  /// Records one arrival at time t_i. O(1).
  void Add(Timestamp ti) { weighted_ += decay_.StaticWeight(ti); }

  /// Records `n` simultaneous arrivals at time t_i. O(1).
  void AddN(Timestamp ti, double n) {
    FWDECAY_DCHECK(n >= 0.0);
    weighted_ += n * decay_.StaticWeight(ti);
  }

  /// Records a column of arrival times (batched ingest path). Identical
  /// to calling Add() per element in order — same FP accumulation order.
  /// Deliberately scalar: the weight is libm (exp/pow inside
  /// StaticWeight) and the running total is an ordered reduction, and
  /// neither may be vectorized without breaking bit-exactness
  /// (DESIGN.md §13.4); there is no elementwise product to hand to the
  /// util/simd.h kernels here, unlike DecayedMoments/DecayedExtremum.
  void AddBatch(std::span<const Timestamp> times) {
    for (Timestamp ti : times) weighted_ += decay_.StaticWeight(ti);
  }

  /// The decayed count evaluated at query time t.
  double Value(Timestamp t) const { return weighted_ / decay_.Normalizer(t); }

  /// The un-normalized running sum of static weights (what is stored).
  double RawWeightedCount() const { return weighted_; }

  /// Combines a peer summarizing a disjoint part of the input.
  void Merge(const DecayedCount& other) { weighted_ += other.weighted_; }

  /// Rebases onto a new landmark (exponential g only; Section VI-A).
  void RescaleLandmark(Timestamp new_landmark)
    requires requires(ForwardDecay<G>& d) { d.RescaleLandmark(0.0); }
  {
    weighted_ *= decay_.RescaleLandmark(new_landmark);
  }

  const ForwardDecay<G>& decay() const { return decay_; }

  /// Serializes the accumulator (Section VI-B shipping). The decay
  /// function itself is configuration, not state: the receiving site
  /// must construct with the same g; the landmark is embedded and
  /// checked on Deserialize.
  void SerializeTo(ByteWriter* writer) const {
    writer->WriteU8(0x43);  // 'C'
    writer->WriteDouble(decay_.landmark());
    writer->WriteDouble(weighted_);
  }

  /// Reconstructs; nullopt on corrupt input or landmark mismatch.
  static std::optional<DecayedCount> Deserialize(ForwardDecay<G> decay,
                                                 ByteReader* reader) {
    std::uint8_t tag = 0;
    double landmark = 0.0;
    double weighted = 0.0;
    if (!reader->ReadU8(&tag) || tag != 0x43) return std::nullopt;
    if (!reader->ReadDouble(&landmark) || !reader->ReadDouble(&weighted)) {
      return std::nullopt;
    }
    if (landmark != decay.landmark()) return std::nullopt;
    DecayedCount out(std::move(decay));
    out.weighted_ = weighted;
    return out;
  }

 private:
  ForwardDecay<G> decay_;
  double weighted_ = 0.0;
};

/// Decayed sum, average and variance in one O(1) accumulator:
///   S(t) = Σ_i g(t_i - L) v_i / g(t - L)
///   A    = S / C                 (independent of t — Definition 5)
///   V    = Σ g(t_i - L) v_i^2 / C(t)g(t-L) - A^2   (also independent of t)
template <ForwardG G>
class DecayedMoments {
 public:
  explicit DecayedMoments(ForwardDecay<G> decay) : decay_(std::move(decay)) {}

  /// Records value v_i arriving at time t_i. O(1).
  void Add(Timestamp ti, double v) {
    const double w = decay_.StaticWeight(ti);
    w0_ += w;
    w1_ += w * v;
    w2_ += w * v * v;
  }

  /// Records parallel time/value columns (batched ingest path).
  /// Identical to calling Add(times[i], values[i]) for i ascending:
  /// blocked so the weights come from the scalar libm StaticWeight loop
  /// in stream order, the per-row products w*v and (w*v)*v run through
  /// the vectorized elementwise-multiply kernel (one IEEE operation per
  /// element — per-lane bit-exact with the scalar expression), and the
  /// three accumulators fold the block back in ascending row order.
  /// Each accumulator is independent, so regrouping the per-row `+=`s
  /// by column leaves every accumulator's addition sequence unchanged
  /// (DESIGN.md §13.4).
  void AddBatch(std::span<const Timestamp> times,
                std::span<const double> values) {
    FWDECAY_DCHECK(times.size() == values.size());
    constexpr std::size_t kBlock = 128;
    double w[kBlock];
    double wv[kBlock];
    double wvv[kBlock];
    for (std::size_t base = 0; base < times.size(); base += kBlock) {
      const std::size_t len = std::min(kBlock, times.size() - base);
      for (std::size_t i = 0; i < len; ++i) {
        w[i] = decay_.StaticWeight(times[base + i]);
      }
      simd::MulF64(w, values.data() + base, len, wv);
      simd::MulF64(wv, values.data() + base, len, wvv);
      for (std::size_t i = 0; i < len; ++i) {
        w0_ += w[i];
        w1_ += wv[i];
        w2_ += wvv[i];
      }
    }
  }

  /// Decayed count at query time t.
  double Count(Timestamp t) const { return w0_ / decay_.Normalizer(t); }

  /// Decayed sum at query time t.
  double Sum(Timestamp t) const { return w1_ / decay_.Normalizer(t); }

  /// Decayed average — the normalizers cancel, so the average does not
  /// change as the query time advances (the paper's Section IV-A remark).
  /// Empty input yields nullopt.
  std::optional<double> Average() const {
    if (w0_ <= 0.0) return std::nullopt;
    return w1_ / w0_;
  }

  /// Decayed variance, interpreting normalized weights as probabilities.
  std::optional<double> Variance() const {
    if (w0_ <= 0.0) return std::nullopt;
    const double mean = w1_ / w0_;
    const double var = w2_ / w0_ - mean * mean;
    return var < 0.0 ? 0.0 : var;  // guard tiny negative round-off
  }

  void Merge(const DecayedMoments& other) {
    w0_ += other.w0_;
    w1_ += other.w1_;
    w2_ += other.w2_;
  }

  void RescaleLandmark(Timestamp new_landmark)
    requires requires(ForwardDecay<G>& d) { d.RescaleLandmark(0.0); }
  {
    const double factor = decay_.RescaleLandmark(new_landmark);
    w0_ *= factor;
    w1_ *= factor;
    w2_ *= factor;
  }

  const ForwardDecay<G>& decay() const { return decay_; }

  /// Serializes the three accumulators (see DecayedCount::SerializeTo
  /// for the configuration-vs-state contract).
  void SerializeTo(ByteWriter* writer) const {
    writer->WriteU8(0x4d);  // 'M'
    writer->WriteDouble(decay_.landmark());
    writer->WriteDouble(w0_);
    writer->WriteDouble(w1_);
    writer->WriteDouble(w2_);
  }

  /// Reconstructs; nullopt on corrupt input or landmark mismatch.
  static std::optional<DecayedMoments> Deserialize(ForwardDecay<G> decay,
                                                   ByteReader* reader) {
    std::uint8_t tag = 0;
    double landmark = 0.0;
    double w0 = 0.0;
    double w1 = 0.0;
    double w2 = 0.0;
    if (!reader->ReadU8(&tag) || tag != 0x4d) return std::nullopt;
    if (!reader->ReadDouble(&landmark) || !reader->ReadDouble(&w0) ||
        !reader->ReadDouble(&w1) || !reader->ReadDouble(&w2)) {
      return std::nullopt;
    }
    if (landmark != decay.landmark()) return std::nullopt;
    DecayedMoments out(std::move(decay));
    out.w0_ = w0;
    out.w1_ = w1;
    out.w2_ = w2;
    return out;
  }

 private:
  ForwardDecay<G> decay_;
  double w0_ = 0.0;  // Σ g(t_i - L)
  double w1_ = 0.0;  // Σ g(t_i - L) v_i
  double w2_ = 0.0;  // Σ g(t_i - L) v_i^2
};

/// Decayed min / max (Definition 6): tracks the extremum of the *static*
/// products g(t_i - L) v_i, scaling at query time. The arg item is kept.
template <ForwardG G, bool kIsMax>
class DecayedExtremum {
 public:
  explicit DecayedExtremum(ForwardDecay<G> decay) : decay_(std::move(decay)) {}

  /// Records value v_i at time t_i. O(1).
  void Add(Timestamp ti, double v) {
    const double scaled = decay_.StaticWeight(ti) * v;
    if (!best_.has_value() || Better(scaled, best_scaled_)) {
      best_scaled_ = scaled;
      best_ = Item{ti, v};
    }
  }

  /// Records parallel time/value columns (batched ingest path).
  /// Identical to calling Add(times[i], values[i]) for i ascending: the
  /// candidate products g(t_i - L) * v_i are formed by the vectorized
  /// multiply kernel (per-lane bit-exact with Add's scalar product) and
  /// the first-better scan walks them in row order, so ties resolve to
  /// the same earliest arrival as the per-tuple path (DESIGN.md §13.4).
  void AddBatch(std::span<const Timestamp> times,
                std::span<const double> values) {
    FWDECAY_DCHECK(times.size() == values.size());
    constexpr std::size_t kBlock = 128;
    double w[kBlock];
    double scaled[kBlock];
    for (std::size_t base = 0; base < times.size(); base += kBlock) {
      const std::size_t len = std::min(kBlock, times.size() - base);
      for (std::size_t i = 0; i < len; ++i) {
        w[i] = decay_.StaticWeight(times[base + i]);
      }
      simd::MulF64(w, values.data() + base, len, scaled);
      for (std::size_t i = 0; i < len; ++i) {
        if (!best_.has_value() || Better(scaled[i], best_scaled_)) {
          best_scaled_ = scaled[i];
          best_ = Item{times[base + i], values[base + i]};
        }
      }
    }
  }

  /// The decayed extremum value at query time t; nullopt if empty.
  std::optional<double> Value(Timestamp t) const {
    if (!best_.has_value()) return std::nullopt;
    return best_scaled_ / decay_.Normalizer(t);
  }

  /// The arrival that attains the extremum.
  struct Item {
    Timestamp ts;
    double value;
  };
  std::optional<Item> ArgItem() const { return best_; }

  void Merge(const DecayedExtremum& other) {
    if (other.best_.has_value()) {
      if (!best_.has_value() || Better(other.best_scaled_, best_scaled_)) {
        best_scaled_ = other.best_scaled_;
        best_ = other.best_;
      }
    }
  }

  void RescaleLandmark(Timestamp new_landmark)
    requires requires(ForwardDecay<G>& d) { d.RescaleLandmark(0.0); }
  {
    best_scaled_ *= decay_.RescaleLandmark(new_landmark);
  }

 private:
  static bool Better(double a, double b) { return kIsMax ? a > b : a < b; }

  ForwardDecay<G> decay_;
  double best_scaled_ = 0.0;
  std::optional<Item> best_;
};

template <ForwardG G>
using DecayedMin = DecayedExtremum<G, /*kIsMax=*/false>;

template <ForwardG G>
using DecayedMax = DecayedExtremum<G, /*kIsMax=*/true>;

}  // namespace fwdecay

#endif  // FWDECAY_CORE_AGGREGATES_H_
