#ifndef FWDECAY_CORE_DECAY_H_
#define FWDECAY_CORE_DECAY_H_

#include <cmath>
#include <concepts>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.h"

// Decay-function taxonomy (Sections II and III of the paper).
//
// A *forward* decay function is built from a positive monotone
// non-decreasing g; the decayed weight of item i at query time t is
//
//     w(i, t) = g(t_i - L) / g(t - L)
//
// for a landmark L <= t_i (Definition 3). The numerator — the item's
// *static weight* — is fixed at arrival, which is the property every
// algorithm in this library exploits.
//
// A *backward* decay function is built from a positive monotone
// non-increasing f of the item's age: w(i, t) = f(t - t_i) / f(0)
// (Definition 2). Backward functions are provided for the exact reference
// evaluator and for the baselines.

namespace fwdecay {

/// Timestamps are real-valued (seconds, or any monotone unit). Forward
/// decay imposes no integrality or in-order requirements (Section VI-B).
using Timestamp = double;

/// A forward decay function: exposes the monotone non-decreasing g, and
/// its logarithm for numerically robust products/ratios.
template <typename G>
concept ForwardG = requires(const G& g, double n) {
  { g.G(n) } -> std::convertible_to<double>;
  { g.LogG(n) } -> std::convertible_to<double>;
  { g.name() } -> std::convertible_to<const char*>;
};

/// A backward decay function of an item's age.
template <typename F>
concept BackwardF = requires(const F& f, double age) {
  { f.F(age) } -> std::convertible_to<double>;
  { f.name() } -> std::convertible_to<const char*>;
};

// ---------------------------------------------------------------------------
// Forward decay functions g (Section III)
// ---------------------------------------------------------------------------

/// g(n) = 1: no decay; every item keeps weight 1.
struct NoDecayG {
  double G(double) const { return 1.0; }
  double LogG(double) const { return 0.0; }
  const char* name() const { return "none"; }
};

/// g(n) = n^beta (monomial / "polynomial decay"). Satisfies the relative
/// decay property (Lemma 1): items at the same fraction of [L, t] always
/// get the same weight.
struct MonomialG {
  explicit MonomialG(double beta_in) : beta(beta_in) {
    FWDECAY_CHECK_MSG(beta > 0.0, "monomial exponent must be positive");
  }
  double G(double n) const { return n <= 0.0 ? 0.0 : std::pow(n, beta); }
  double LogG(double n) const {
    return n <= 0.0 ? -std::numeric_limits<double>::infinity()
                    : beta * std::log(n);
  }
  const char* name() const { return "monomial"; }
  double beta;
};

/// g(n) = Σ_j gamma_j n^j, a general polynomial with non-negative
/// coefficients (guaranteeing monotonicity).
struct PolynomialG {
  explicit PolynomialG(std::vector<double> coeffs_in)
      : coeffs(std::move(coeffs_in)) {
    FWDECAY_CHECK_MSG(!coeffs.empty(), "polynomial needs coefficients");
    for (double c : coeffs) {
      FWDECAY_CHECK_MSG(c >= 0.0,
                        "polynomial coefficients must be non-negative");
    }
  }
  double G(double n) const {
    if (n < 0.0) n = 0.0;
    double acc = 0.0;
    // Horner evaluation, highest degree first.
    for (std::size_t j = coeffs.size(); j-- > 0;) acc = acc * n + coeffs[j];
    return acc;
  }
  double LogG(double n) const { return std::log(G(n)); }
  const char* name() const { return "polynomial"; }
  std::vector<double> coeffs;  // coeffs[j] multiplies n^j
};

/// g(n) = exp(alpha * n): exponential decay. Coincides exactly with
/// backward exponential decay at rate alpha (Section III-A), which is why
/// exponential decay was the one backward function systems could afford.
struct ExponentialG {
  explicit ExponentialG(double alpha_in) : alpha(alpha_in) {
    FWDECAY_CHECK_MSG(alpha > 0.0, "exponential rate must be positive");
  }
  double G(double n) const { return std::exp(alpha * n); }
  double LogG(double n) const { return alpha * n; }
  const char* name() const { return "exponential"; }
  /// Multiplier turning weights relative to landmark L into weights
  /// relative to L' = L + delta: exp(-alpha * delta). The landmark
  /// rescaling of Section VI-A — only exponential g admits one, because
  /// only exp turns time shifts into weight scalings.
  double ShiftFactor(double delta) const { return std::exp(-alpha * delta); }
  double alpha;
};

/// g(n) = 1 for n > 0, else 0: the landmark window (Section III-C). All
/// items after the landmark weigh 1 until the query/window closes.
struct LandmarkWindowG {
  double G(double n) const { return n > 0.0 ? 1.0 : 0.0; }
  double LogG(double n) const {
    return n > 0.0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  const char* name() const { return "landmark-window"; }
};

/// g(n) = 1 + ln(1 + n): sub-polynomial (slower-than-any-polynomial)
/// decay, the forward analogue of the paper's sub-polynomial example.
struct LogarithmicG {
  double G(double n) const { return n <= 0.0 ? 1.0 : 1.0 + std::log1p(n); }
  double LogG(double n) const { return std::log(G(n)); }
  const char* name() const { return "logarithmic"; }
};

/// Type-erased forward decay function for runtime configuration (the DSMS
/// picks g from a query string). Satisfies ForwardG.
class AnyForwardG {
 public:
  AnyForwardG() : AnyForwardG(NoDecayG{}) {}

  template <ForwardG G>
  explicit AnyForwardG(G g)
      : g_([g](double n) { return g.G(n); }),
        log_g_([g](double n) { return g.LogG(n); }),
        name_(g.name()) {}

  double G(double n) const { return g_(n); }
  double LogG(double n) const { return log_g_(n); }
  const char* name() const { return name_; }

 private:
  std::function<double(double)> g_;
  std::function<double(double)> log_g_;
  const char* name_;
};

// ---------------------------------------------------------------------------
// Backward decay functions f (Section II-A)
// ---------------------------------------------------------------------------

/// f(a) = 1: no decay.
struct NoDecayF {
  double F(double) const { return 1.0; }
  const char* name() const { return "none"; }
};

/// f(a) = 1 for a < W, 0 otherwise: the classic sliding window.
struct SlidingWindowF {
  explicit SlidingWindowF(double window_in) : window(window_in) {
    FWDECAY_CHECK_MSG(window > 0.0, "window must be positive");
  }
  double F(double age) const { return age < window ? 1.0 : 0.0; }
  const char* name() const { return "sliding-window"; }
  double window;
};

/// f(a) = exp(-lambda a): backward exponential decay.
struct ExponentialF {
  explicit ExponentialF(double lambda_in) : lambda(lambda_in) {
    FWDECAY_CHECK_MSG(lambda > 0.0, "exponential rate must be positive");
  }
  double F(double age) const { return std::exp(-lambda * age); }
  const char* name() const { return "exponential"; }
  double lambda;
};

/// f(a) = (a + 1)^(-alpha): backward polynomial decay.
struct PolynomialF {
  explicit PolynomialF(double alpha_in) : alpha(alpha_in) {
    FWDECAY_CHECK_MSG(alpha > 0.0, "polynomial exponent must be positive");
  }
  double F(double age) const { return std::pow(age + 1.0, -alpha); }
  const char* name() const { return "polynomial"; }
  double alpha;
};

/// f(a) = exp(-lambda a^2): super-exponential decay.
struct SuperExponentialF {
  explicit SuperExponentialF(double lambda_in) : lambda(lambda_in) {
    FWDECAY_CHECK_MSG(lambda > 0.0, "rate must be positive");
  }
  double F(double age) const { return std::exp(-lambda * age * age); }
  const char* name() const { return "super-exponential"; }
  double lambda;
};

/// f(a) = 1 / (1 + ln(1 + a)): sub-polynomial decay.
struct SubPolynomialF {
  double F(double age) const {
    return 1.0 / (1.0 + std::log1p(age < 0.0 ? 0.0 : age));
  }
  const char* name() const { return "sub-polynomial"; }
};

}  // namespace fwdecay

#endif  // FWDECAY_CORE_DECAY_H_
