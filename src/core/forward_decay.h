#ifndef FWDECAY_CORE_FORWARD_DECAY_H_
#define FWDECAY_CORE_FORWARD_DECAY_H_

#include <cmath>

#include "core/decay.h"
#include "util/check.h"

namespace fwdecay {

/// The forward-decay weight engine (Definition 3).
///
/// Binds a forward decay function g to a landmark time L and provides the
/// three quantities every algorithm needs:
///
///  * StaticWeight(t_i)  = g(t_i - L)       — fixed at arrival; this is
///    what summaries store and weighted sketches are fed.
///  * Normalizer(t)      = g(t - L)         — applied once at query time.
///  * Weight(t_i, t)     = the ratio, the actual decayed weight in [0,1].
///
/// The landmark defaults to "the query start time" per the paper's
/// recommendation (Section III-B): with a monomial g this makes the weight
/// a function of the item's *relative* age within [L, t].
template <ForwardG G>
class ForwardDecay {
 public:
  ForwardDecay(G g, Timestamp landmark)
      : g_(std::move(g)), landmark_(landmark) {}

  /// g(t_i - L). Requires t_i >= L (items before the landmark are outside
  /// the model; callers that may see them should clamp or drop).
  double StaticWeight(Timestamp ti) const {
    FWDECAY_DCHECK(ti >= landmark_);
    return g_.G(ti - landmark_);
  }

  /// log g(t_i - L): useful when g overflows doubles (exponential g over
  /// long horizons) — samplers work entirely in the log domain.
  double LogStaticWeight(Timestamp ti) const {
    FWDECAY_DCHECK(ti >= landmark_);
    return g_.LogG(ti - landmark_);
  }

  /// g(t - L), the query-time normalizer.
  double Normalizer(Timestamp t) const { return g_.G(t - landmark_); }

  /// The decayed weight w(i, t) = g(t_i - L)/g(t - L), in [0, 1] whenever
  /// L <= t_i <= t.
  double Weight(Timestamp ti, Timestamp t) const {
    const double denom = Normalizer(t);
    FWDECAY_DCHECK(denom > 0.0);
    return StaticWeight(ti) / denom;
  }

  const G& g() const { return g_; }
  Timestamp landmark() const { return landmark_; }

  /// Moves the landmark to `new_landmark` and returns the factor by which
  /// every stored static weight (and any linear combination of them) must
  /// be multiplied so results are unchanged. Only decay functions for
  /// which a time shift is a weight scaling support this — exponential g,
  /// via ShiftFactor (Section VI-A numerical rescaling).
  double RescaleLandmark(Timestamp new_landmark)
    requires requires(const G& g, double d) {
      { g.ShiftFactor(d) } -> std::convertible_to<double>;
    }
  {
    const double factor = g_.ShiftFactor(new_landmark - landmark_);
    landmark_ = new_landmark;
    return factor;
  }

 private:
  G g_;
  Timestamp landmark_;
};

/// Deduction helper so call sites can write
/// `MakeForwardDecay(ExponentialG(0.1), t0)`.
template <ForwardG G>
ForwardDecay<G> MakeForwardDecay(G g, Timestamp landmark) {
  return ForwardDecay<G>(std::move(g), landmark);
}

}  // namespace fwdecay

#endif  // FWDECAY_CORE_FORWARD_DECAY_H_
