#ifndef FWDECAY_CORE_CONCURRENT_RESERVOIR_H_
#define FWDECAY_CORE_CONCURRENT_RESERVOIR_H_

#include <cstdint>

#include "core/decaying_reservoir.h"
#include "util/thread_annotations.h"

namespace fwdecay {

/// Thread-safe facade over DecayingReservoir — the form a metrics
/// library actually deploys (many request threads record latencies, a
/// scraper thread takes snapshots). A single mutex suffices: updates are
/// O(log k) and snapshots O(k log k), so contention is dominated by the
/// measured work itself.
///
/// The lock discipline is declared with thread-safety annotations
/// (util/thread_annotations.h): `reservoir_` is GUARDED_BY(mu_), so a
/// clang build with -DFWDECAY_THREAD_SAFETY=ON rejects any access path
/// that forgets the lock at compile time, for every schedule — the
/// static complement of the TSan stress test. Under -DFWDECAY_SCHED=ON
/// the Mutex itself becomes a model-checked virtual lock, so
/// sched::Explore() fixtures (tests/sched_test.cc) additionally
/// enumerate update/snapshot interleavings exhaustively and verify the
/// "a single mutex suffices" claim schedule-by-schedule (DESIGN.md §10).
///
/// For extreme update rates, shard several reservoirs (same k, alpha,
/// and start so their samples are compatible) and combine per-shard
/// snapshots with MergeSnapshots(). (std::deque, not vector: the mutex
/// makes this type neither movable nor copyable.)
///
///   std::deque<ConcurrentDecayingReservoir> shards;   // one per core
///   for (int i = 0; i < kShards; ++i) shards.emplace_back(k, a, t0, i);
///   ...
///   shards[thread_id % kShards].Update(now, latency);  // hot path
///   ...
///   std::vector<ReservoirSnapshot> snaps;              // scraper
///   for (auto& s : shards) snaps.push_back(s.Snapshot());
///   ReservoirSnapshot combined = MergeSnapshots(snaps);
class ConcurrentDecayingReservoir {
 public:
  ConcurrentDecayingReservoir(std::size_t k, double alpha, Timestamp start,
                              std::uint64_t seed = 0x5eed)
      : reservoir_(k, alpha, start, seed),
        alpha_(reservoir_.alpha()),
        start_(reservoir_.start()) {}

  /// Records a measurement; safe to call from any thread.
  void Update(Timestamp t, double value) FWDECAY_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    reservoir_.Update(t, value);
  }

  /// Consistent snapshot; safe to call concurrently with updates.
  ReservoirSnapshot Snapshot() const FWDECAY_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return reservoir_.Snapshot();
  }

  std::size_t size() const FWDECAY_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return reservoir_.size();
  }

  /// Representation audit (DESIGN.md §7): delegates to the underlying
  /// reservoir under the lock, so concurrent stress tests can interleave
  /// audits with updates.
  void CheckInvariants() const FWDECAY_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    reservoir_.CheckInvariants();
  }

  /// Decay rate. Returned from a `const` member copied at construction —
  /// nothing ever mutates it, so the lock-free read is race-free by
  /// construction (not merely "benign": TSan would rightly flag an
  /// unlocked read of mutable state inside reservoir_).
  double alpha() const { return alpha_; }

  /// Landmark time; immutable after construction like alpha().
  Timestamp start() const { return start_; }

 private:
  mutable Mutex mu_;
  DecayingReservoir reservoir_ FWDECAY_GUARDED_BY(mu_);
  const double alpha_;
  const Timestamp start_;
};

}  // namespace fwdecay

#endif  // FWDECAY_CORE_CONCURRENT_RESERVOIR_H_
