#ifndef FWDECAY_CORE_CONCURRENT_RESERVOIR_H_
#define FWDECAY_CORE_CONCURRENT_RESERVOIR_H_

#include <cstdint>
#include <mutex>

#include "core/decaying_reservoir.h"

namespace fwdecay {

/// Thread-safe facade over DecayingReservoir — the form a metrics
/// library actually deploys (many request threads record latencies, a
/// scraper thread takes snapshots). A single mutex suffices: updates are
/// O(log k) and snapshots O(k log k), so contention is dominated by the
/// measured work itself. For extreme update rates, shard several
/// reservoirs and Merge the snapshots instead.
class ConcurrentDecayingReservoir {
 public:
  ConcurrentDecayingReservoir(std::size_t k, double alpha, Timestamp start,
                              std::uint64_t seed = 0x5eed)
      : reservoir_(k, alpha, start, seed) {}

  /// Records a measurement; safe to call from any thread.
  void Update(Timestamp t, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    reservoir_.Update(t, value);
  }

  /// Consistent snapshot; safe to call concurrently with updates.
  ReservoirSnapshot Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reservoir_.Snapshot();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reservoir_.size();
  }

  double alpha() const { return reservoir_.alpha(); }

 private:
  mutable std::mutex mu_;
  DecayingReservoir reservoir_;
};

}  // namespace fwdecay

#endif  // FWDECAY_CORE_CONCURRENT_RESERVOIR_H_
