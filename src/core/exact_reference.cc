#include "core/exact_reference.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace fwdecay {

void ExactDecayedReference::Add(Timestamp ti, std::uint64_t key,
                                double value) {
  items_.push_back(Item{ti, key, value});
}

double ExactDecayedReference::Count(Timestamp t, const WeightFn& w) const {
  double c = 0.0;
  for (const Item& it : items_) c += w(it.ts, t);
  return c;
}

double ExactDecayedReference::Sum(Timestamp t, const WeightFn& w) const {
  double s = 0.0;
  for (const Item& it : items_) s += w(it.ts, t) * it.value;
  return s;
}

std::optional<double> ExactDecayedReference::Average(Timestamp t,
                                                     const WeightFn& w) const {
  const double c = Count(t, w);
  if (c <= 0.0) return std::nullopt;
  return Sum(t, w) / c;
}

std::optional<double> ExactDecayedReference::Variance(Timestamp t,
                                                      const WeightFn& w) const {
  const double c = Count(t, w);
  if (c <= 0.0) return std::nullopt;
  double s = 0.0;
  double s2 = 0.0;
  for (const Item& it : items_) {
    const double wi = w(it.ts, t);
    s += wi * it.value;
    s2 += wi * it.value * it.value;
  }
  const double mean = s / c;
  const double var = s2 / c - mean * mean;
  return var < 0.0 ? 0.0 : var;
}

std::optional<double> ExactDecayedReference::Min(Timestamp t,
                                                 const WeightFn& w) const {
  std::optional<double> best;
  for (const Item& it : items_) {
    const double x = w(it.ts, t) * it.value;
    if (!best.has_value() || x < *best) best = x;
  }
  return best;
}

std::optional<double> ExactDecayedReference::Max(Timestamp t,
                                                 const WeightFn& w) const {
  std::optional<double> best;
  for (const Item& it : items_) {
    const double x = w(it.ts, t) * it.value;
    if (!best.has_value() || x > *best) best = x;
  }
  return best;
}

double ExactDecayedReference::KeyCount(Timestamp t, const WeightFn& w,
                                       std::uint64_t key) const {
  double c = 0.0;
  for (const Item& it : items_) {
    if (it.key == key) c += w(it.ts, t);
  }
  return c;
}

std::vector<std::pair<std::uint64_t, double>>
ExactDecayedReference::HeavyHitters(Timestamp t, const WeightFn& w,
                                    double phi) const {
  std::unordered_map<std::uint64_t, double> counts;
  double total = 0.0;
  for (const Item& it : items_) {
    const double wi = w(it.ts, t);
    counts[it.key] += wi;
    total += wi;
  }
  std::vector<std::pair<std::uint64_t, double>> out;
  const double threshold = phi * total;
  for (const auto& [key, c] : counts) {
    if (c >= threshold) out.emplace_back(key, c);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

double ExactDecayedReference::Rank(Timestamp t, const WeightFn& w,
                                   double v) const {
  double r = 0.0;
  for (const Item& it : items_) {
    if (it.value <= v) r += w(it.ts, t);
  }
  return r;
}

std::optional<double> ExactDecayedReference::Quantile(Timestamp t,
                                                      const WeightFn& w,
                                                      double phi) const {
  if (items_.empty()) return std::nullopt;
  std::vector<std::pair<double, double>> weighted;  // (value, weight)
  weighted.reserve(items_.size());
  double total = 0.0;
  for (const Item& it : items_) {
    const double wi = w(it.ts, t);
    weighted.emplace_back(it.value, wi);
    total += wi;
  }
  std::sort(weighted.begin(), weighted.end());
  const double target = phi * total;
  double acc = 0.0;
  for (const auto& [value, wi] : weighted) {
    acc += wi;
    if (acc >= target) return value;
  }
  return weighted.back().first;
}

double ExactDecayedReference::CountDistinct(Timestamp t,
                                            const WeightFn& w) const {
  std::unordered_map<std::uint64_t, double> max_w;
  for (const Item& it : items_) {
    const double wi = w(it.ts, t);
    auto [pos, inserted] = max_w.try_emplace(it.key, wi);
    if (!inserted && wi > pos->second) pos->second = wi;
  }
  double d = 0.0;
  for (const auto& [key, wi] : max_w) d += wi;
  return d;
}

}  // namespace fwdecay
