#ifndef FWDECAY_SAMPLING_PRIORITY_SAMPLING_H_
#define FWDECAY_SAMPLING_PRIORITY_SAMPLING_H_

#include <cmath>
#include <functional>
#include <vector>

#include "core/forward_decay.h"
#include "util/check.h"
#include "util/random.h"
#include "util/top_k_heap.h"

namespace fwdecay {

/// Priority sampling (Alon, Duffield, Lund, Thorup, PODS'05) under
/// forward decay — the PRISAMP UDAF of the paper's Section VIII.
///
/// Item i gets priority q_i = w_i / u_i (u_i uniform in (0,1]); the
/// sample is the k items of highest priority, and the (k+1)-th highest
/// priority τ is the threshold. The Horvitz–Thompson-style estimator
///   ŵ_i = max(w_i, τ)  for sampled i, 0 otherwise
/// is unbiased for any subset-sum query, with near-optimal variance.
///
/// As with the other samplers, w_i is the static weight g(t_i - L);
/// priorities are *compared* in the log domain (log q = log w - log u) so
/// exponential g cannot overflow the comparisons. Estimation, which needs
/// linear-domain w and τ, is performed relative to the largest retained
/// log-weight, i.e. estimates are returned as decayed weights normalized
/// at the caller's query time.
template <typename T, ForwardG G>
class PrioritySampler {
 public:
  struct SampleEntry {
    T item;
    Timestamp ts;
    double log_weight;   // log g(t_i - L)
    double log_priority; // log w_i - log u_i
  };

  PrioritySampler(ForwardDecay<G> decay, std::size_t k)
      : decay_(std::move(decay)), heap_(k + 1) {}

  /// Offers item arriving at t_i. O(log k).
  void Add(Timestamp ti, const T& item, Rng& rng) {
    const double log_w = decay_.LogStaticWeight(ti);
    if (log_w == -std::numeric_limits<double>::infinity()) return;
    const double log_q = log_w - std::log(rng.NextDoubleOpenZero());
    heap_.Offer(log_q, SampleEntry{item, ti, log_w, log_q});
  }

  /// The k highest-priority items (the (k+1)-th is the threshold and is
  /// excluded, per the estimator's definition).
  std::vector<SampleEntry> Sample() const {
    auto sorted = heap_.SortedByScoreDesc();
    std::vector<SampleEntry> out;
    const std::size_t take =
        sorted.size() == heap_.capacity() ? sorted.size() - 1 : sorted.size();
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i) out.push_back(sorted[i].value);
    return out;
  }

  /// Unbiased estimate of the decayed subset sum
  ///   Σ_{i : pred(item_i)} w(i, t)
  /// at query time t: Σ max(w_i, τ)/g(t-L) over sampled items matching
  /// `pred`. Computed in a shifted domain anchored at log g(t - L).
  double EstimateDecayedSubsetSum(
      Timestamp t, const std::function<bool(const T&)>& pred) const {
    const double log_norm = decay_.g().LogG(t - decay_.landmark());
    auto sorted = heap_.SortedByScoreDesc();
    if (sorted.empty()) return 0.0;
    double log_tau = -std::numeric_limits<double>::infinity();
    std::size_t take = sorted.size();
    if (sorted.size() == heap_.capacity()) {
      log_tau = sorted.back().score;
      take = sorted.size() - 1;
    }
    double total = 0.0;
    for (std::size_t i = 0; i < take; ++i) {
      const SampleEntry& e = sorted[i].value;
      if (!pred(e.item)) continue;
      const double log_est = std::max(e.log_weight, log_tau);
      total += std::exp(log_est - log_norm);
    }
    return total;
  }

  /// Estimate of the full decayed count at time t (pred == everything).
  double EstimateDecayedCount(Timestamp t) const {
    return EstimateDecayedSubsetSum(t, [](const T&) { return true; });
  }

  std::size_t sample_size() const {
    return heap_.size() == heap_.capacity() ? heap_.size() - 1 : heap_.size();
  }
  const ForwardDecay<G>& decay() const { return decay_; }

  /// Representation audit (DESIGN.md §7): heap invariants, plus each
  /// entry's heap score must equal its stored log-priority and every
  /// priority must dominate its weight (log q = log w - log u with
  /// u in (0,1], so log q >= log w; a violation means the threshold τ
  /// no longer upper-bounds the unsampled weights and the estimator's
  /// unbiasedness proof breaks).
  void CheckInvariants() const {
    heap_.CheckInvariants();
    for (const auto& entry : heap_.entries()) {
      FWDECAY_CHECK_MSG(entry.score == entry.value.log_priority,
                        "priority sample heap score diverged from the "
                        "entry's log-priority");
      FWDECAY_CHECK_MSG(entry.value.log_priority >= entry.value.log_weight,
                        "priority below static weight (u > 1?)");
    }
  }

 private:
  ForwardDecay<G> decay_;
  TopKHeap<SampleEntry> heap_;  // holds k+1 entries; min is the threshold
};

}  // namespace fwdecay

#endif  // FWDECAY_SAMPLING_PRIORITY_SAMPLING_H_
