#ifndef FWDECAY_SAMPLING_WITH_REPLACEMENT_H_
#define FWDECAY_SAMPLING_WITH_REPLACEMENT_H_

#include <cmath>
#include <optional>
#include <vector>

#include "core/forward_decay.h"
#include "util/check.h"
#include "util/random.h"

namespace fwdecay {

/// Sampling WITH replacement under forward decay (Section V-A, Theorem 5).
///
/// For a sample of size s, runs s independent "chains". Each chain keeps
/// one candidate item and the running weight total W_i = Σ_{j<=i} g(t_j-L);
/// arrival i replaces the candidate with probability g(t_i - L)/W_i, which
/// telescopes to the exact target probability g(t_i - L)/W_n. Space O(s),
/// time O(s) per tuple, no dependence on arrival order of timestamps
/// beyond ti >= L.
template <typename T, ForwardG G>
class ForwardDecaySamplerWR {
 public:
  ForwardDecaySamplerWR(ForwardDecay<G> decay, std::size_t sample_size)
      : decay_(std::move(decay)), chains_(sample_size) {
    FWDECAY_CHECK(sample_size > 0);
  }

  /// Offers item arriving at t_i.
  void Add(Timestamp ti, const T& item, Rng& rng) {
    const double w = decay_.StaticWeight(ti);
    if (w <= 0.0) return;  // zero-weight items can never be sampled
    total_weight_ += w;
    const double p = w / total_weight_;
    for (Chain& chain : chains_) {
      if (rng.NextDouble() < p) chain.candidate = item;
    }
  }

  /// The current sample: one (independent, with-replacement) draw per
  /// chain. Empty entries only before the first positive-weight arrival.
  std::vector<T> Sample() const {
    std::vector<T> out;
    out.reserve(chains_.size());
    for (const Chain& chain : chains_) {
      if (chain.candidate.has_value()) out.push_back(*chain.candidate);
    }
    return out;
  }

  double TotalStaticWeight() const { return total_weight_; }
  std::size_t sample_size() const { return chains_.size(); }
  const ForwardDecay<G>& decay() const { return decay_; }

  /// Representation audit (DESIGN.md §7): the running weight total is a
  /// sum of positive static weights (never negative, never NaN), and a
  /// chain can hold a candidate only after some positive weight arrived.
  void CheckInvariants() const {
    FWDECAY_CHECK_MSG(total_weight_ >= 0.0 && !std::isnan(total_weight_),
                      "with-replacement weight total corrupted");
    if (total_weight_ == 0.0) {
      for (const Chain& chain : chains_) {
        FWDECAY_CHECK_MSG(!chain.candidate.has_value(),
                          "chain holds a candidate with zero total weight");
      }
    }
  }

 private:
  struct Chain {
    std::optional<T> candidate;
  };

  ForwardDecay<G> decay_;
  double total_weight_ = 0.0;
  std::vector<Chain> chains_;
};

}  // namespace fwdecay

#endif  // FWDECAY_SAMPLING_WITH_REPLACEMENT_H_
