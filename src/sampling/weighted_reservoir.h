#ifndef FWDECAY_SAMPLING_WEIGHTED_RESERVOIR_H_
#define FWDECAY_SAMPLING_WEIGHTED_RESERVOIR_H_

#include <cmath>
#include <vector>

#include "core/forward_decay.h"
#include "util/check.h"
#include "util/random.h"
#include "util/top_k_heap.h"

namespace fwdecay {

/// Weighted reservoir sampling WITHOUT replacement under forward decay
/// (Section V-B, Theorem 6) — the algorithm of Efraimidis & Spirakis
/// (A-Res): item i gets key u_i^(1/w_i) with u_i uniform; the sample is
/// the k items with the largest keys.
///
/// Because sampling is invariant to globally scaling the weights, the
/// weight is simply the static weight g(t_i - L) — no normalizer needed.
/// Keys are compared in the log-log domain,
///     score_i = log w_i - log(-log u_i),
/// a strictly monotone transform of u_i^(1/w_i). This sidesteps the
/// overflow problem of Section VI-A entirely: exponential g over long
/// horizons would overflow w_i = exp(alpha n), but log w_i = alpha*n is
/// perfectly representable, so this sampler never needs landmark
/// rescaling.
template <typename T, ForwardG G>
class WeightedReservoirSampler {
 public:
  WeightedReservoirSampler(ForwardDecay<G> decay, std::size_t k)
      : decay_(std::move(decay)), heap_(k) {}

  /// Offers item arriving at t_i. O(log k).
  void Add(Timestamp ti, const T& item, Rng& rng) {
    const double log_w = decay_.LogStaticWeight(ti);
    if (log_w == -std::numeric_limits<double>::infinity()) return;
    const double u = rng.NextDoubleOpenZero();
    // -log u is an Exp(1) variate; key u^(1/w) ranks identically to
    // score = log w - log(-log u).
    const double score = log_w - std::log(-std::log(u));
    heap_.Offer(score, item);
  }

  /// The current without-replacement sample (unordered).
  std::vector<T> Sample() const {
    std::vector<T> out;
    out.reserve(heap_.size());
    for (const auto& entry : heap_.entries()) out.push_back(entry.value);
    return out;
  }

  std::size_t sample_size() const { return heap_.size(); }
  std::size_t capacity() const { return heap_.capacity(); }
  const ForwardDecay<G>& decay() const { return decay_; }

  /// Representation audit (DESIGN.md §7): the sample is exactly the heap,
  /// so its invariants are the heap's.
  void CheckInvariants() const { heap_.CheckInvariants(); }

 private:
  ForwardDecay<G> decay_;
  TopKHeap<T> heap_;
};

/// A-ExpJ: the "exponential jumps" variant of A-Res (Efraimidis &
/// Spirakis). Distribution-identical, but instead of drawing a key per
/// item it draws a *threshold jump*: items are skipped until the running
/// weight crosses the jump, so only O(k log(n/k)) random draws are made.
/// The admission test runs in the same log-log score domain as A-Res.
template <typename T, ForwardG G>
class ExpJumpsReservoirSampler {
 public:
  ExpJumpsReservoirSampler(ForwardDecay<G> decay, std::size_t k)
      : decay_(std::move(decay)), heap_(k) {}

  /// Offers item arriving at t_i. O(1) for skipped items, O(log k) for
  /// admitted ones.
  void Add(Timestamp ti, const T& item, Rng& rng) {
    const double log_w = decay_.LogStaticWeight(ti);
    if (log_w == -std::numeric_limits<double>::infinity()) return;
    if (!heap_.Full()) {
      const double u = rng.NextDoubleOpenZero();
      heap_.Offer(log_w - std::log(-std::log(u)), item);
      if (heap_.Full()) ScheduleJump(rng);
      return;
    }
    // Accumulate weight toward the pending jump in a numerically safe
    // way: weights within one jump window are summed relative to the
    // window's max log-weight.
    AccumulateLog(log_w);
    if (acc_log_weight_ < jump_log_weight_) return;
    // This item crosses the jump: admit it with key r^(1/w_i), r uniform
    // in (t_w, 1) where t_w = T_w^{w_i} and T_w is the threshold key
    // (per A-ExpJ). Since -log T_w = exp(-t_score), we have
    //   -log t_w = w_i * exp(-t_score),
    // computed in the log domain so exponential weights cannot overflow.
    // When t_w underflows to zero, r is simply uniform on (0, 1).
    const double t_score = heap_.MinScore();
    const double log_neg_log_tw_scaled = log_w - t_score;  // log(-log t_w)
    double r;
    if (log_neg_log_tw_scaled > 6.55) {  // -log t_w > ~700 => t_w ~ 0
      r = rng.NextDoubleOpenZero();
    } else {
      const double t_w = std::exp(-std::exp(log_neg_log_tw_scaled));
      r = t_w + rng.NextDouble() * (1.0 - t_w);
    }
    // score = log w_i - log(-log r), same domain as A-Res keys. The max
    // guards the measure-zero draws r -> 1 (score would be +inf) and
    // r -> t_w (tie with the threshold; Offer rejects ties, matching the
    // open interval in the algorithm).
    const double neg_log_r = std::max(-std::log(r), 1e-300);
    heap_.Offer(log_w - std::log(neg_log_r), item);
    ScheduleJump(rng);
  }

  std::vector<T> Sample() const {
    std::vector<T> out;
    out.reserve(heap_.size());
    for (const auto& entry : heap_.entries()) out.push_back(entry.value);
    return out;
  }

  std::size_t sample_size() const { return heap_.size(); }
  const ForwardDecay<G>& decay() const { return decay_; }

  /// Representation audit (DESIGN.md §7): heap invariants, plus the jump
  /// discipline — before the reservoir fills no weight may have been
  /// accumulated, and once full the accumulated log-weight must sit
  /// strictly below the pending jump (Add() reschedules the instant it
  /// crosses, so observing acc >= jump means a lost jump).
  void CheckInvariants() const {
    heap_.CheckInvariants();
    FWDECAY_CHECK_MSG(!std::isnan(acc_log_weight_) &&
                          !std::isnan(jump_log_weight_),
                      "A-ExpJ jump state is NaN");
    if (!heap_.Full()) {
      FWDECAY_CHECK_MSG(
          acc_log_weight_ == -std::numeric_limits<double>::infinity(),
          "A-ExpJ accumulated weight before the reservoir filled");
    } else {
      FWDECAY_CHECK_MSG(acc_log_weight_ < jump_log_weight_,
                        "A-ExpJ accumulated weight crossed the jump "
                        "without admitting an item");
    }
  }

 private:
  // The jump X_w satisfies: skip items until Σ w_i >= X_w where
  // X_w = log(u)/log(T_w) for u uniform — equivalently
  // X_w = (-log u)/(-log T_w). We track Σ w_i and X_w in a shifted
  // domain anchored at the threshold's log scale to avoid overflow.
  void ScheduleJump(Rng& rng) {
    const double t_score = heap_.MinScore();
    const double neg_log_tw = std::exp(-t_score);  // -log T_w
    const double u = rng.NextDoubleOpenZero();
    // jump weight X_w = -log(u) / -log(T_w)
    jump_log_weight_ = std::log(-std::log(u)) - std::log(neg_log_tw);
    acc_log_weight_ = -std::numeric_limits<double>::infinity();
  }

  // acc := log(exp(acc) + exp(x)), the standard log-sum-exp update.
  void AccumulateLog(double x) {
    if (acc_log_weight_ == -std::numeric_limits<double>::infinity()) {
      acc_log_weight_ = x;
      return;
    }
    const double hi = std::max(acc_log_weight_, x);
    const double lo = std::min(acc_log_weight_, x);
    acc_log_weight_ = hi + std::log1p(std::exp(lo - hi));
  }

  ForwardDecay<G> decay_;
  TopKHeap<T> heap_;
  double jump_log_weight_ = 0.0;
  double acc_log_weight_ = -std::numeric_limits<double>::infinity();
};

}  // namespace fwdecay

#endif  // FWDECAY_SAMPLING_WEIGHTED_RESERVOIR_H_
