#ifndef FWDECAY_SAMPLING_BIASED_RESERVOIR_H_
#define FWDECAY_SAMPLING_BIASED_RESERVOIR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace fwdecay {

/// Aggarwal's biased reservoir sampling (VLDB'06) — the prior-art
/// baseline the paper compares against in Figure 3 and improves on with
/// Corollary 1.
///
/// Maintains a reservoir of capacity k whose inclusion probabilities
/// follow a *backward exponential* bias e^(-lambda r) in the item's
/// arrival index r, with lambda = 1/k: on each arrival, with probability
/// fill = size/k the new item overwrites a uniformly random slot;
/// otherwise it is appended.
///
/// Limitations (the ones forward decay removes, per Section V-C):
///  * the decay rate is tied to the reservoir size (lambda = 1/k);
///  * the bias is in the arrival *index*, so it matches time-decay only
///    for unit-spaced, in-order timestamps ("sequential integers" in the
///    paper's phrasing);
///  * only exponential bias is supported.
template <typename T>
class BiasedReservoirSampler {
 public:
  explicit BiasedReservoirSampler(std::size_t k) : k_(k) {
    FWDECAY_CHECK(k > 0);
    sample_.reserve(k);
  }

  /// Offers the next stream item (arrival order defines the bias).
  void Add(const T& item, Rng& rng) {
    ++seen_;
    const double fill =
        static_cast<double>(sample_.size()) / static_cast<double>(k_);
    if (rng.NextDouble() < fill) {
      sample_[rng.NextBounded(sample_.size())] = item;
    } else {
      sample_.push_back(item);
    }
  }

  /// Effective exponential decay rate of the maintained bias.
  double lambda() const { return 1.0 / static_cast<double>(k_); }

  const std::vector<T>& sample() const { return sample_; }
  std::uint64_t seen() const { return seen_; }
  std::size_t capacity() const { return k_; }

  /// Restores a checkpointed reservoir verbatim (slot order included).
  /// The fill level is probabilistic, so the only hard invariants are
  /// size <= k and size <= seen.
  bool RestoreState(std::uint64_t seen, std::vector<T> sample) {
    if (sample.size() > k_ || sample.size() > seen) return false;
    seen_ = seen;
    sample_ = std::move(sample);
    return true;
  }

  /// Representation audit (DESIGN.md §7): the fill level is
  /// probabilistic, so the hard invariants are exactly RestoreState()'s —
  /// never more items than capacity or than arrivals.
  void CheckInvariants() const {
    FWDECAY_CHECK_MSG(sample_.size() <= k_,
                      "biased reservoir overflows capacity");
    FWDECAY_CHECK_MSG(sample_.size() <= seen_,
                      "biased reservoir holds more items than were seen");
  }

 private:
  std::size_t k_;
  std::uint64_t seen_ = 0;
  std::vector<T> sample_;
};

}  // namespace fwdecay

#endif  // FWDECAY_SAMPLING_BIASED_RESERVOIR_H_
